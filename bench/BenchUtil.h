//===- BenchUtil.h - Shared helpers for the benchmark harness ---*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCHUTIL_H
#define BENCH_BENCHUTIL_H

#include "bebop/Bebop.h"
#include "c2bp/C2bp.h"
#include "cfront/Normalize.h"
#include "support/Json.h"
#include "support/Timer.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

namespace slam {
namespace benchutil {

/// Result of one C2bp (+ optional Bebop) run on a workload.
struct RunRow {
  std::string Name;
  unsigned Lines = 0;
  size_t Predicates = 0;
  uint64_t ProverCalls = 0;
  uint64_t CubesChecked = 0;
  double C2bpSeconds = 0;
  double BebopSeconds = 0;
  bool Violated = false;
  bool Ok = false;
  size_t BddNodes = 0;
  /// Bebop-side counters (BDD node/cache statistics among them).
  std::map<std::string, uint64_t> BebopStats;
};

/// Runs C2bp (and Bebop when \p RunBebop) on one Table 2 workload.
inline RunRow runTable2(const workloads::Workload &W,
                        c2bp::C2bpOptions Options = {},
                        bool RunBebop = true) {
  RunRow Row;
  Row.Name = W.Name;
  DiagnosticEngine Diags;
  logic::LogicContext Ctx;
  auto P = cfront::frontend(W.Source, Diags);
  if (!P)
    return Row;
  Row.Lines = P->SourceLines;
  auto PS = c2bp::parsePredicateFile(Ctx, W.Predicates, Diags);
  if (!PS)
    return Row;
  Row.Predicates = PS->totalCount();
  StatsRegistry Stats;
  Timer T;
  auto BP = c2bp::abstractProgram(*P, *PS, Ctx, Diags, Options, &Stats);
  Row.C2bpSeconds = T.seconds();
  Row.ProverCalls = Stats.get("prover.calls");
  Row.CubesChecked = Stats.get("c2bp.cubes_checked");
  if (BP && RunBebop) {
    StatsRegistry BebopStats;
    Timer T2;
    bebop::Bebop Checker(*BP, &BebopStats);
    auto R = Checker.run(W.Entry);
    Row.BebopSeconds = T2.seconds();
    Row.Violated = R.AssertViolated;
    Row.BddNodes = Checker.bddNodes();
    Row.BebopStats = BebopStats.all();
  }
  Row.Ok = BP != nullptr;
  return Row;
}

/// Machine-readable snapshot shared by the benchmark mains' `--json`
/// modes, built on json::Writer so escaping and comma placement cannot
/// drift from the rest of the toolkit:
///
///   {"bench": "<tool>", "runs": [{"name": ..., "metrics": {...}}]}
///
/// Every measurement (time, node counts, counters) goes under
/// "metrics" so consumers can treat runs uniformly.
class JsonReport {
public:
  explicit JsonReport(std::string_view Bench) : W(Doc) {
    W.beginObject();
    W.kv("bench", Bench);
    W.key("runs");
    W.beginArray();
  }

  void beginRun(std::string_view Name) {
    W.beginObject();
    W.kv("name", Name);
    W.key("metrics");
    W.beginObject();
  }

  template <typename T> void metric(std::string_view Key, T Value) {
    W.kv(Key, Value);
  }

  void endRun() {
    W.endObject(); // metrics
    W.endObject(); // run
  }

  /// Finishes the document; call once.
  std::string str() {
    W.endArray();
    W.endObject();
    Doc += '\n';
    return Doc;
  }

private:
  std::string Doc;
  json::Writer W;
};

inline void printRowHeader(const char *Title) {
  std::printf("\n%s\n", Title);
  std::printf("%-10s %6s %6s %12s %10s %10s %9s\n", "program", "lines",
              "preds", "prover calls", "c2bp (s)", "bebop (s)",
              "violated");
}

inline void printRow(const RunRow &Row) {
  std::printf("%-10s %6u %6zu %12llu %10.2f %10.2f %9s\n",
              Row.Name.c_str(), Row.Lines, Row.Predicates,
              static_cast<unsigned long long>(Row.ProverCalls),
              Row.C2bpSeconds, Row.BebopSeconds,
              Row.Violated ? "yes" : "no");
}

} // namespace benchutil
} // namespace slam

#endif // BENCH_BENCHUTIL_H
