//===- bench_ablation_alias.cpp - Section 4.2's alias pruning ----------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Without a points-to analysis, Morris' axiom must case-split on every
// syntactically possible alias pair (2^k disjuncts for k locations); the
// analysis prunes no-alias pairs outright. Compares:
//
//   * the points-to-backed oracle (Das / Andersen / Steensgaard modes)
//     against the purely syntactic shape oracle,
//
// on the pointer-rich Table 2 programs. The shape to observe: prover
// calls and WP sizes drop sharply with the analysis on, and the three
// points-to modes behave identically here (the paper's drivers likewise
// needed only flow-insensitive precision).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace slam;
using namespace slam::benchutil;

namespace {

void BM_Alias(benchmark::State &State, const workloads::Workload *W,
              bool UseAnalysis, alias::Mode Mode) {
  for (auto _ : State) {
    c2bp::C2bpOptions Options;
    Options.Cubes.MaxCubeLength = 3;
    Options.UseAliasAnalysis = UseAnalysis;
    Options.AliasMode = Mode;
    RunRow Row = runTable2(*W, Options, /*RunBebop=*/false);
    State.counters["prover_calls"] =
        static_cast<double>(Row.ProverCalls);
  }
}

} // namespace

int main(int argc, char **argv) {
  std::printf("\nAblation: pointer analysis in the WP computation "
              "(Section 4.2), k = 3\n");
  std::printf("%-10s %-12s %12s %10s\n", "program", "oracle",
              "prover calls", "c2bp (s)");
  struct Config {
    const char *Name;
    bool Use;
    alias::Mode Mode;
  };
  const Config Configs[] = {
      {"das", true, alias::Mode::Das},
      {"andersen", true, alias::Mode::Andersen},
      {"steensgaard", true, alias::Mode::Steensgaard},
      {"syntactic", false, alias::Mode::Das},
  };
  for (const workloads::Workload *W :
       {&workloads::partitionWorkload(), &workloads::listfindWorkload(),
        &workloads::reverseWorkload()}) {
    for (const Config &C : Configs) {
      c2bp::C2bpOptions Options;
      Options.Cubes.MaxCubeLength = 3;
      Options.UseAliasAnalysis = C.Use;
      Options.AliasMode = C.Mode;
      RunRow Row = runTable2(*W, Options, /*RunBebop=*/false);
      std::printf("%-10s %-12s %12llu %10.2f\n", W->Name.c_str(), C.Name,
                  static_cast<unsigned long long>(Row.ProverCalls),
                  Row.C2bpSeconds);
    }
  }

  benchmark::RegisterBenchmark("alias/partition_das", BM_Alias,
                               &workloads::partitionWorkload(), true,
                               alias::Mode::Das)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("alias/partition_syntactic", BM_Alias,
                               &workloads::partitionWorkload(), false,
                               alias::Mode::Das)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
