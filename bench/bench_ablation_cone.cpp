//===- bench_ablation_cone.cpp - Section 5.2 optimization 3 ------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The cone-of-influence heuristic restricts each F_V query to the
// predicates (transitively) sharing aliased locations with the query.
// The paper: "In most cases, the cone-of-influence heuristics ... were
// able to reduce the number of theorem prover calls to a manageable
// number. In the case of the reverse example, every pair of pointers
// could potentially alias, and the cone-of-influence heuristics could
// not avoid the exponential number of calls."
//
// This bench shows both effects: partition/kmp benefit; reverse's cone
// degenerates to (nearly) the full predicate set.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace slam;
using namespace slam::benchutil;

namespace {

void BM_Cone(benchmark::State &State, const workloads::Workload *W,
             bool Cone) {
  for (auto _ : State) {
    c2bp::C2bpOptions Options;
    Options.Cubes.MaxCubeLength = 3;
    Options.Cubes.ConeOfInfluence = Cone;
    RunRow Row = runTable2(*W, Options, /*RunBebop=*/false);
    State.counters["prover_calls"] =
        static_cast<double>(Row.ProverCalls);
  }
}

} // namespace

int main(int argc, char **argv) {
  std::printf("\nAblation: cone of influence (Section 5.2, opt 3), "
              "k = 3\n");
  std::printf("%-10s %8s %12s %12s %10s\n", "program", "cone",
              "prover calls", "cubes", "c2bp (s)");
  for (const workloads::Workload *W :
       {&workloads::kmpWorkload(), &workloads::partitionWorkload(),
        &workloads::reverseWorkload()}) {
    uint64_t With = 0, Without = 0;
    for (bool Cone : {true, false}) {
      c2bp::C2bpOptions Options;
      Options.Cubes.MaxCubeLength = 3;
      Options.Cubes.ConeOfInfluence = Cone;
      RunRow Row = runTable2(*W, Options, /*RunBebop=*/false);
      (Cone ? With : Without) = Row.ProverCalls;
      std::printf("%-10s %8s %12llu %12llu %10.2f\n", W->Name.c_str(),
                  Cone ? "on" : "off",
                  static_cast<unsigned long long>(Row.ProverCalls),
                  static_cast<unsigned long long>(Row.CubesChecked),
                  Row.C2bpSeconds);
    }
    std::printf("%-10s saving: %.1f%%\n", "",
                Without == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(With) /
                                         static_cast<double>(Without)));
  }
  std::printf("\n(reverse shows the paper's pathology: the aliasing web "
              "keeps nearly every\n predicate in every cone.)\n");

  benchmark::RegisterBenchmark("cone/partition_on", BM_Cone,
                               &workloads::partitionWorkload(), true)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("cone/partition_off", BM_Cone,
                               &workloads::partitionWorkload(), false)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
