//===- bench_ablation_cubes.cpp - Section 5.2 optimizations 1 and k ----------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Ablates the cube-enumeration optimizations:
//
//   * optimization 1 (prime-implicant pruning): with it off, every cube
//     up to the length bound is checked — the prover-call count shows
//     the savings;
//   * the maximum cube length k in {1, 2, 3, unlimited}: the paper
//     reports k = 3 usually suffices; here k = 1 loses qsort's bounds
//     (2- and 3-literal cubes are needed) while k = 3 matches the exact
//     result at a fraction of the calls.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace slam;
using namespace slam::benchutil;

namespace {

void BM_CubeConfig(benchmark::State &State, const workloads::Workload *W,
                   int MaxLen, bool Prune) {
  for (auto _ : State) {
    c2bp::C2bpOptions Options;
    Options.Cubes.MaxCubeLength = MaxLen;
    Options.Cubes.PruneSupersets = Prune;
    RunRow Row = runTable2(*W, Options);
    State.counters["prover_calls"] =
        static_cast<double>(Row.ProverCalls);
    State.counters["cubes_checked"] =
        static_cast<double>(Row.CubesChecked);
    State.counters["validated"] = Row.Violated ? 0 : 1;
  }
}

} // namespace

int main(int argc, char **argv) {
  std::printf("\nAblation: cube length k and prime-implicant pruning "
              "(Section 5.2, opts 1 and k)\n");
  std::printf("%-10s %6s %6s %12s %12s %10s %9s\n", "program", "k",
              "prune", "prover calls", "cubes", "c2bp (s)", "validated");
  for (const workloads::Workload *W :
       {&workloads::qsortWorkload(), &workloads::partitionWorkload()}) {
    for (int K : {1, 2, 3, -1}) {
      for (bool Prune : {true, false}) {
        if (K == -1 && !Prune && W->Name == "qsort")
          continue; // Unbounded unpruned qsort is deliberately absurd.
        c2bp::C2bpOptions Options;
        Options.Cubes.MaxCubeLength = K;
        Options.Cubes.PruneSupersets = Prune;
        RunRow Row = runTable2(*W, Options);
        std::printf("%-10s %6s %6s %12llu %12llu %10.2f %9s\n",
                    W->Name.c_str(), K < 0 ? "inf" : std::to_string(K).c_str(),
                    Prune ? "on" : "off",
                    static_cast<unsigned long long>(Row.ProverCalls),
                    static_cast<unsigned long long>(Row.CubesChecked),
                    Row.C2bpSeconds, Row.Violated ? "no" : "yes");
      }
    }
  }
  std::printf("\n(k = 3 reproduces the exact result with far fewer "
              "calls — the paper's finding.)\n");

  benchmark::RegisterBenchmark("cubes/partition_k3", BM_CubeConfig,
                               &workloads::partitionWorkload(), 3, true)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("cubes/partition_kinf", BM_CubeConfig,
                               &workloads::partitionWorkload(), -1, true)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("cubes/qsort_k3", BM_CubeConfig,
                               &workloads::qsortWorkload(), 3, true)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
