//===- bench_bdd.cpp - BDD package micro-benchmarks ---------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The operations Bebop leans on: conjunction/disjunction of transfer
// relations, existential quantification of staged rails, and the
// order-preserving renames between rails.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include <benchmark/benchmark.h>

using namespace slam;
using namespace slam::bdd;

namespace {

/// Builds the "rail equality" relation AND_i (x_i <-> y_i) over N pairs
/// — the workhorse shape of Bebop's bind relations.
Node railEquality(BddManager &M, int N) {
  Node R = BddManager::True;
  for (int I = 0; I != N; ++I)
    R = M.mkAnd(R, M.mkXnor(M.varNode(2 * I), M.varNode(2 * I + 1)));
  return R;
}

void BM_RailEquality(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    BddManager M;
    for (int I = 0; I != 2 * N; ++I)
      M.newVar();
    benchmark::DoNotOptimize(railEquality(M, N));
    State.counters["nodes"] = static_cast<double>(M.numNodes());
  }
}
BENCHMARK(BM_RailEquality)->Arg(8)->Arg(16)->Arg(32);

void BM_ExistsSweep(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  BddManager M;
  for (int I = 0; I != 2 * N; ++I)
    M.newVar();
  Node R = railEquality(M, N);
  std::vector<int> Evens;
  for (int I = 0; I != N; ++I)
    Evens.push_back(2 * I);
  for (auto _ : State)
    benchmark::DoNotOptimize(M.exists(R, Evens));
}
BENCHMARK(BM_ExistsSweep)->Arg(8)->Arg(16)->Arg(32);

void BM_Rename(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  BddManager M;
  for (int I = 0; I != 2 * N; ++I)
    M.newVar();
  // A function over the even rail; rename to the odd rail.
  Node F = BddManager::True;
  for (int I = 0; I + 2 < N; ++I)
    F = M.mkAnd(F, M.mkOr(M.varNode(2 * I), M.varNode(2 * I + 2)));
  std::map<int, int> Ren;
  for (int I = 0; I != N; ++I)
    Ren[2 * I] = 2 * I + 1;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.rename(F, Ren));
}
BENCHMARK(BM_Rename)->Arg(8)->Arg(16)->Arg(32);

void BM_AndExists(benchmark::State &State) {
  // The fused relational product vs. its unfused spelling over the
  // post-image shape: exists(evens, states & transfer).
  int N = static_cast<int>(State.range(0));
  bool Fused = State.range(1) != 0;
  BddManager M;
  for (int I = 0; I != 2 * N; ++I)
    M.newVar();
  Node T = railEquality(M, N);
  // A nontrivial state set over the even rail.
  Node S = BddManager::True;
  for (int I = 0; I + 2 < N; ++I)
    S = M.mkAnd(S, M.mkOr(M.varNode(2 * I), M.varNode(2 * I + 2)));
  std::vector<int> Evens;
  for (int I = 0; I != N; ++I)
    Evens.push_back(2 * I);
  for (auto _ : State)
    benchmark::DoNotOptimize(Fused ? M.andExists(S, T, Evens)
                                   : M.exists(M.mkAnd(S, T), Evens));
}
BENCHMARK(BM_AndExists)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1});

void BM_IteChain(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    BddManager M;
    for (int I = 0; I != N; ++I)
      M.newVar();
    Node F = BddManager::False;
    for (int I = 0; I != N; ++I)
      F = M.mkIte(M.varNode(I), M.mkNot(F), F);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_IteChain)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
