//===- bench_bebop.cpp - Bebop scaling ("under 10 seconds") ------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The paper: "For all these examples ... Bebop ran in under 10 seconds
// on the boolean program output by C2bp." Two measurements:
//
//   1. Bebop on every boolean program our Table 1 / Table 2 runs
//      produce (all should be well under the bound);
//   2. a synthetic scaling sweep: generated boolean programs with
//      growing variable counts and loop nests, reporting time and peak
//      BDD node counts (the symbolic representation is what keeps the
//      2^n state spaces tractable).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "bp/BPParser.h"

#include <benchmark/benchmark.h>

using namespace slam;

namespace {

/// Generates a boolean program with N correlated variables updated in
/// nested nondeterministic control flow, plus an invariant assert.
std::string syntheticBP(int NumVars) {
  std::string Out = "void main() begin\n  decl ";
  for (int I = 0; I != NumVars; ++I)
    Out += (I ? ", b" : "b") + std::to_string(I);
  Out += ";\n";
  // Establish a parity invariant: b0 == b1, b2 == b3, ...
  for (int I = 0; I + 1 < NumVars; I += 2) {
    Out += "  b" + std::to_string(I) + " := *;\n";
    Out += "  b" + std::to_string(I + 1) + " := b" + std::to_string(I) +
           ";\n";
  }
  // Churn inside a loop, preserving the invariant pairwise.
  Out += "  while (*) begin\n";
  for (int I = 0; I + 1 < NumVars; I += 2) {
    Out += "    if (*) begin\n";
    Out += "      b" + std::to_string(I) + ", b" + std::to_string(I + 1) +
           " := !b" + std::to_string(I) + ", !b" + std::to_string(I + 1) +
           ";\n";
    Out += "    end\n";
  }
  Out += "  end\n";
  for (int I = 0; I + 1 < NumVars; I += 2)
    Out += "  assert(b" + std::to_string(I) + " == b" +
           std::to_string(I + 1) + ");\n";
  Out += "end\n";
  return Out;
}

double runSynthetic(int NumVars, size_t *BddNodes = nullptr) {
  DiagnosticEngine Diags;
  auto P = bp::parseBProgram(syntheticBP(NumVars), Diags);
  Timer T;
  bebop::Bebop Checker(*P);
  auto R = Checker.run("main");
  double Secs = T.seconds();
  if (R.AssertViolated)
    std::printf("  (unexpected violation at %d vars!)\n", NumVars);
  if (BddNodes)
    *BddNodes = Checker.bddNodes();
  return Secs;
}

void BM_BebopSynthetic(benchmark::State &State) {
  int NumVars = static_cast<int>(State.range(0));
  for (auto _ : State) {
    size_t Nodes = 0;
    double Secs = runSynthetic(NumVars, &Nodes);
    benchmark::DoNotOptimize(Secs);
    State.counters["bdd_nodes"] = static_cast<double>(Nodes);
  }
}

BENCHMARK(BM_BebopSynthetic)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("\nBebop on the Table 2 boolean programs (paper: \"under "
              "10 seconds\" each)\n");
  std::printf("%-10s %10s %9s\n", "program", "bebop (s)", "violated");
  for (const workloads::Workload *W : workloads::table2Workloads()) {
    c2bp::C2bpOptions Options;
    Options.Cubes.MaxCubeLength = 3;
    benchutil::RunRow Row = benchutil::runTable2(*W, Options);
    std::printf("%-10s %10.3f %9s\n", Row.Name.c_str(), Row.BebopSeconds,
                Row.Violated ? "yes" : "no");
  }

  std::printf("\nSynthetic scaling (N correlated variables, loop churn; "
              "2^N states):\n");
  std::printf("%6s %10s %12s\n", "vars", "time (s)", "bdd nodes");
  for (int N : {8, 16, 24, 32, 40}) {
    size_t Nodes = 0;
    double Secs = runSynthetic(N, &Nodes);
    std::printf("%6d %10.3f %12zu\n", N, Secs, Nodes);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
