//===- bench_bebop.cpp - Bebop scaling ("under 10 seconds") ------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The paper: "For all these examples ... Bebop ran in under 10 seconds
// on the boolean program output by C2bp." Three measurements:
//
//   1. Bebop on every boolean program our Table 1 / Table 2 runs
//      produce (all should be well under the bound);
//   2. a synthetic scaling sweep: generated boolean programs with
//      growing variable counts and loop nests, reporting time and peak
//      BDD node counts (the symbolic representation is what keeps the
//      2^n state spaces tractable);
//   3. a relational-product-heavy sweep: mirrored equalities spanning
//      the variable order force path-edge BDDs exponential in the pair
//      count, so the exists(and(...)) in Bebop's post-image dominates.
//
// `--json` prints the same measurements as a machine-readable snapshot
// ({"bench": "bench_bebop", "runs": [{"name", "metrics": {...}}]},
// the benchutil::JsonReport schema) and skips the registered
// benchmarks.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "bp/BPParser.h"

#include <benchmark/benchmark.h>

#include <cstring>

using namespace slam;

namespace {

/// Generates a boolean program with N correlated variables updated in
/// nested nondeterministic control flow, plus an invariant assert.
std::string syntheticBP(int NumVars) {
  std::string Out = "void main() begin\n  decl ";
  for (int I = 0; I != NumVars; ++I)
    Out += (I ? ", b" : "b") + std::to_string(I);
  Out += ";\n";
  // Establish a parity invariant: b0 == b1, b2 == b3, ...
  for (int I = 0; I + 1 < NumVars; I += 2) {
    Out += "  b" + std::to_string(I) + " := *;\n";
    Out += "  b" + std::to_string(I + 1) + " := b" + std::to_string(I) +
           ";\n";
  }
  // Churn inside a loop, preserving the invariant pairwise.
  Out += "  while (*) begin\n";
  for (int I = 0; I + 1 < NumVars; I += 2) {
    Out += "    if (*) begin\n";
    Out += "      b" + std::to_string(I) + ", b" + std::to_string(I + 1) +
           " := !b" + std::to_string(I) + ", !b" + std::to_string(I + 1) +
           ";\n";
    Out += "    end\n";
  }
  Out += "  end\n";
  for (int I = 0; I + 1 < NumVars; I += 2)
    Out += "  assert(b" + std::to_string(I) + " == b" +
           std::to_string(I + 1) + ");\n";
  Out += "end\n";
  return Out;
}

/// Generates the relational-product-heavy variant: the invariant pairs
/// b_i with b_{N-1-i}, so every equality spans the whole variable order
/// and the reachable-state BDD has ~2^(N/2) nodes. The loop churn then
/// pushes that BDD through Bebop's post-image (an exists of a
/// conjunction) on every iteration.
std::string mirrorBP(int NumVars) {
  std::string Out = "void main() begin\n  decl ";
  for (int I = 0; I != NumVars; ++I)
    Out += (I ? ", b" : "b") + std::to_string(I);
  Out += ";\n";
  for (int I = 0; I < NumVars / 2; ++I) {
    Out += "  b" + std::to_string(I) + " := *;\n";
    Out += "  b" + std::to_string(NumVars - 1 - I) + " := b" +
           std::to_string(I) + ";\n";
  }
  Out += "  while (*) begin\n";
  for (int I = 0; I < NumVars / 2; ++I) {
    Out += "    if (*) begin\n";
    Out += "      b" + std::to_string(I) + ", b" +
           std::to_string(NumVars - 1 - I) + " := !b" + std::to_string(I) +
           ", !b" + std::to_string(NumVars - 1 - I) + ";\n";
    Out += "    end\n";
  }
  Out += "  end\n";
  for (int I = 0; I < NumVars / 2; ++I)
    Out += "  assert(b" + std::to_string(I) + " == b" +
           std::to_string(NumVars - 1 - I) + ");\n";
  Out += "end\n";
  return Out;
}

struct SyntheticRun {
  double Seconds = 0;
  size_t BddNodes = 0;
  bool Violated = false;
  std::map<std::string, uint64_t> Stats;
};

SyntheticRun runGenerated(const std::string &Source) {
  SyntheticRun Run;
  DiagnosticEngine Diags;
  auto P = bp::parseBProgram(Source, Diags);
  StatsRegistry Stats;
  Timer T;
  bebop::Bebop Checker(*P, &Stats);
  auto R = Checker.run("main");
  Run.Seconds = T.seconds();
  Run.Violated = R.AssertViolated;
  Run.BddNodes = Checker.bddNodes();
  Run.Stats = Stats.all();
  return Run;
}

void BM_BebopSynthetic(benchmark::State &State) {
  int NumVars = static_cast<int>(State.range(0));
  for (auto _ : State) {
    SyntheticRun Run = runGenerated(syntheticBP(NumVars));
    benchmark::DoNotOptimize(Run.Seconds);
    State.counters["bdd_nodes"] = static_cast<double>(Run.BddNodes);
  }
}

BENCHMARK(BM_BebopSynthetic)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_BebopMirror(benchmark::State &State) {
  int NumVars = static_cast<int>(State.range(0));
  for (auto _ : State) {
    SyntheticRun Run = runGenerated(mirrorBP(NumVars));
    benchmark::DoNotOptimize(Run.Seconds);
    State.counters["bdd_nodes"] = static_cast<double>(Run.BddNodes);
  }
}

BENCHMARK(BM_BebopMirror)
    ->Arg(16)
    ->Arg(20)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  // Strip --json before google-benchmark sees the argument list.
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json"))
      Json = true;
    else
      argv[Out++] = argv[I];
  }
  argc = Out;

  benchutil::JsonReport Report("bench_bebop");
  auto emit = [&](const std::string &Name, double Seconds, size_t BddNodes,
                  bool Violated, const std::map<std::string, uint64_t> &Stats) {
    Report.beginRun(Name);
    Report.metric("seconds", Seconds);
    Report.metric("bdd_nodes", static_cast<uint64_t>(BddNodes));
    Report.metric("violated", Violated);
    for (const auto &[Key, Value] : Stats) {
      // Only the BDD-engine counters; step counts are noise here.
      if (Key.rfind("bebop.bdd", 0) != 0)
        continue;
      Report.metric(Key, Value);
    }
    Report.endRun();
  };

  if (!Json)
    std::printf("\nBebop on the Table 2 boolean programs (paper: \"under "
                "10 seconds\" each)\n%-10s %10s %9s\n", "program",
                "bebop (s)", "violated");
  for (const workloads::Workload *W : workloads::table2Workloads()) {
    c2bp::C2bpOptions Options;
    Options.Cubes.MaxCubeLength = 3;
    benchutil::RunRow Row = benchutil::runTable2(*W, Options);
    if (Json)
      emit("table2/" + Row.Name, Row.BebopSeconds, Row.BddNodes,
           Row.Violated, Row.BebopStats);
    else
      std::printf("%-10s %10.3f %9s\n", Row.Name.c_str(), Row.BebopSeconds,
                  Row.Violated ? "yes" : "no");
  }

  if (!Json)
    std::printf("\nSynthetic scaling (N correlated variables, loop churn; "
                "2^N states):\n%6s %10s %12s\n", "vars", "time (s)",
                "bdd nodes");
  for (int N : {8, 16, 24, 32, 40}) {
    SyntheticRun Run = runGenerated(syntheticBP(N));
    if (Run.Violated && !Json)
      std::printf("  (unexpected violation at %d vars!)\n", N);
    if (Json)
      emit("synthetic/" + std::to_string(N), Run.Seconds, Run.BddNodes,
           Run.Violated, Run.Stats);
    else
      std::printf("%6d %10.3f %12zu\n", N, Run.Seconds, Run.BddNodes);
  }

  if (!Json)
    std::printf("\nRelational-product-heavy (mirrored equalities; path "
                "edges ~2^(N/2) nodes):\n%6s %10s %12s %14s\n", "vars",
                "time (s)", "bdd nodes", "andexists hits");
  for (int N : {16, 20, 24}) {
    SyntheticRun Run = runGenerated(mirrorBP(N));
    if (Run.Violated && !Json)
      std::printf("  (unexpected violation at %d vars!)\n", N);
    if (Json)
      emit("relprod/" + std::to_string(N), Run.Seconds, Run.BddNodes,
           Run.Violated, Run.Stats);
    else
      std::printf("%6d %10.3f %12zu %14llu\n", N, Run.Seconds, Run.BddNodes,
                  static_cast<unsigned long long>(
                      Run.Stats.count("bebop.bdd.andexists.hits")
                          ? Run.Stats.at("bebop.bdd.andexists.hits")
                          : 0));
  }

  if (Json) {
    std::printf("%s", Report.str().c_str());
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
