//===- bench_parallel_c2bp.cpp - Worker scaling of the abstraction -----------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Scaling of the parallel per-statement abstraction: every Table 1 and
// Table 2 workload at -j 1/2/4/8, plus a -j 4 run with the shared
// prover cache disabled to isolate its contribution. The output is
// byte-identical at every worker count (the pass merges results in
// statement order), so the only things that move are wall-clock time
// and the cache counters reported alongside each benchmark.
//
// Speedup requires hardware parallelism: on a single-core container the
// pool adds only scheduling overhead and the interesting columns are
// the cache statistics, not the times.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace slam;
using namespace slam::benchutil;

namespace {

c2bp::C2bpOptions workerOptions(int Workers, bool SharedCache = true) {
  c2bp::C2bpOptions Options;
  Options.Cubes.MaxCubeLength = 3;
  Options.NumWorkers = Workers;
  Options.UseSharedProverCache = SharedCache;
  return Options;
}

/// One abstraction pass; Bebop is deliberately excluded so the timing
/// isolates the sharded cube searches.
void runOnce(benchmark::State &State, const workloads::Workload &W,
             const c2bp::C2bpOptions &Options) {
  DiagnosticEngine Diags;
  logic::LogicContext Ctx;
  auto P = cfront::frontend(W.Source, Diags);
  std::optional<c2bp::PredicateSet> PS;
  if (P)
    PS = c2bp::parsePredicateFile(Ctx, W.Predicates, Diags);
  if (!P || !PS) {
    State.SkipWithError("frontend failed");
    return;
  }
  StatsRegistry Stats;
  auto BP = c2bp::abstractProgram(*P, *PS, Ctx, Diags, Options, &Stats);
  benchmark::DoNotOptimize(BP);
  State.counters["prover_calls"] =
      static_cast<double>(Stats.get("prover.calls"));
  State.counters["shared_hits"] =
      static_cast<double>(Stats.get("prover.shared_cache_hits") +
                          Stats.get("prover.neg_cache_hits"));
}

void BM_Workload(benchmark::State &State, const workloads::Workload *W,
                 c2bp::C2bpOptions Options) {
  for (auto _ : State)
    runOnce(State, *W, Options);
}

void registerWorkload(const std::string &Group,
                      const workloads::Workload &W) {
  for (int Workers : {1, 2, 4, 8})
    benchmark::RegisterBenchmark(
        (Group + "/" + W.Name + "/j" + std::to_string(Workers)).c_str(),
        BM_Workload, &W, workerOptions(Workers))
        ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      (Group + "/" + W.Name + "/j4_nocache").c_str(), BM_Workload, &W,
      workerOptions(4, /*SharedCache=*/false))
      ->Unit(benchmark::kMillisecond);
}

} // namespace

int main(int argc, char **argv) {
  // Table 1 drivers check a safety property; their workload for this
  // harness is the abstraction of the driver source under the
  // instrumentation predicates, approximated here by the assert-based
  // entry (the C2bp pass itself is property-agnostic).
  static std::vector<workloads::Workload> Table1;
  for (const workloads::DriverModel &D : workloads::table1Drivers()) {
    workloads::Workload W;
    W.Name = D.Name;
    W.Source = D.Source;
    W.Predicates = ""; // Empty set: control-flow skeleton abstraction.
    W.Entry = "main";
    Table1.push_back(std::move(W));
  }
  for (const workloads::Workload &W : Table1)
    registerWorkload("parallel_table1", W);
  for (const workloads::Workload *W : workloads::table2Workloads())
    registerWorkload("parallel_table2", *W);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
