//===- bench_prover.cpp - Theorem prover micro-benchmarks --------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The paper: "Profiling shows that the running time of C2bp is
// dominated by the cost of theorem proving." These micro-benchmarks
// measure the cost of the query classes the cube search issues:
// equality-only (congruence closure fast path), linear arithmetic
// (Simplex + branch-and-bound), pointer queries (EUF/LIA combination),
// and the effect of the query cache.
//
//===----------------------------------------------------------------------===//

#include "logic/Parser.h"
#include "prover/Prover.h"

#include <benchmark/benchmark.h>

using namespace slam;

namespace {

logic::ExprRef parse(logic::LogicContext &Ctx, const std::string &Text) {
  DiagnosticEngine Diags;
  logic::ExprRef E = logic::parseExpr(Ctx, Text, Diags);
  assert(E && "benchmark formulas must parse");
  return E;
}

void BM_EqualityOnly(benchmark::State &State) {
  logic::LogicContext Ctx;
  logic::ExprRef A = parse(Ctx, "x == 1 && y == 2 && z == x");
  logic::ExprRef C = parse(Ctx, "z == 1");
  for (auto _ : State) {
    prover::Prover P(Ctx);
    benchmark::DoNotOptimize(P.implies(A, C));
  }
}
BENCHMARK(BM_EqualityOnly);

void BM_LinearArithmetic(benchmark::State &State) {
  logic::LogicContext Ctx;
  logic::ExprRef A =
      parse(Ctx, "lo >= 0 && hi < n && i <= hi && p <= i && lo < hi");
  logic::ExprRef C = parse(Ctx, "p < n");
  for (auto _ : State) {
    prover::Prover P(Ctx);
    benchmark::DoNotOptimize(P.implies(A, C));
  }
}
BENCHMARK(BM_LinearArithmetic);

void BM_PointerCombination(benchmark::State &State) {
  logic::LogicContext Ctx;
  // The Section 2.2 alias-refinement query: EUF + LIA combination.
  logic::ExprRef A = parse(
      Ctx, "curr != NULL && curr->val > v && prev->val <= v");
  logic::ExprRef C = parse(Ctx, "prev != curr");
  for (auto _ : State) {
    prover::Prover P(Ctx);
    benchmark::DoNotOptimize(P.implies(A, C));
  }
}
BENCHMARK(BM_PointerCombination);

void BM_IntegerBranchAndBound(benchmark::State &State) {
  logic::LogicContext Ctx;
  logic::ExprRef A = parse(Ctx, "x > 3 && x < 5");
  logic::ExprRef C = parse(Ctx, "x == 4");
  for (auto _ : State) {
    prover::Prover P(Ctx);
    benchmark::DoNotOptimize(P.implies(A, C));
  }
}
BENCHMARK(BM_IntegerBranchAndBound);

void BM_CacheHit(benchmark::State &State) {
  logic::LogicContext Ctx;
  prover::Prover P(Ctx);
  logic::ExprRef A = parse(Ctx, "x == 2");
  logic::ExprRef C = parse(Ctx, "x < 4");
  P.implies(A, C); // Warm the cache.
  for (auto _ : State)
    benchmark::DoNotOptimize(P.implies(A, C));
}
BENCHMARK(BM_CacheHit);

void BM_DisjunctiveSkeleton(benchmark::State &State) {
  logic::LogicContext Ctx;
  logic::ExprRef A = parse(Ctx, "(x == 1 || x == 2) && (y == x || y == 0)");
  logic::ExprRef C = parse(Ctx, "y <= 2");
  for (auto _ : State) {
    prover::Prover P(Ctx);
    benchmark::DoNotOptimize(P.implies(A, C));
  }
}
BENCHMARK(BM_DisjunctiveSkeleton);

} // namespace

BENCHMARK_MAIN();
