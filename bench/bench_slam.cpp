//===- bench_slam.cpp - Cold vs warm end-to-end SLAM runs -------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Measures what the incremental machinery buys on the driver models:
// each model is checked twice against one persistent prover cache — a
// cold run that fills the file and a warm run that should answer nearly
// every prover query from it — plus a memo-off run to isolate the
// cross-iteration abstraction reuse. `--json` emits the
// benchutil::JsonReport schema instead of the table.
//
//===----------------------------------------------------------------------===//

#include "prover/CacheBackend.h"
#include "slam/Cegar.h"
#include "support/Timer.h"
#include "workloads/Workloads.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace slam;
using slamtool::SlamResult;

namespace {

struct CheckedRun {
  double Seconds = 0;
  int Iterations = 0;
  uint64_t ProverCalls = 0;
  uint64_t DiskHits = 0;
  uint64_t MemoHits = 0;
  uint64_t StmtsReused = 0;
  bool Validated = false;
};

CheckedRun runOnce(const workloads::DriverModel &M,
                   const std::string &CachePath, bool Incremental) {
  logic::LogicContext Ctx;
  DiagnosticEngine Diags;
  StatsRegistry Stats;
  slamtool::PipelineOptions Options;
  Options.C2bp.Cubes.MaxCubeLength = 3;
  Options.ProverCachePath = CachePath;
  Options.Cegar.Incremental = Incremental;
  Timer T;
  auto R = slamtool::checkSafety(M.Source, M.Spec, Ctx, Diags, Options,
                                 &Stats);
  CheckedRun Out;
  Out.Seconds = T.seconds();
  if (R) {
    Out.Iterations = R->Iterations;
    Out.Validated = R->V == SlamResult::Verdict::Validated;
  }
  Out.ProverCalls = Stats.get("prover.calls");
  Out.DiskHits = Stats.get("prover.disk_cache_hits");
  Out.MemoHits = Stats.get("c2bp.memo_hits");
  Out.StmtsReused = Stats.get("c2bp.stmts_reused");
  return Out;
}

std::string cachePathFor(const std::string &Model) {
  const char *Dir = std::getenv("TMPDIR");
  return std::string(Dir && *Dir ? Dir : "/tmp") + "/bench_slam_" + Model +
         ".cache";
}

/// Steady-state CEGAR against a pre-warmed persistent cache.
void BM_WarmCegar(benchmark::State &State) {
  auto Drivers = workloads::table1Drivers();
  const workloads::DriverModel &M = Drivers.front();
  std::string Path = cachePathFor(M.Name + "_bm");
  std::remove(Path.c_str());
  runOnce(M, Path, /*Incremental=*/true); // Fill the cache.
  for (auto _ : State) {
    CheckedRun R = runOnce(M, Path, /*Incremental=*/true);
    State.counters["prover_calls"] = static_cast<double>(R.ProverCalls);
    State.counters["disk_hits"] = static_cast<double>(R.DiskHits);
  }
  std::remove(Path.c_str());
}

BENCHMARK(BM_WarmCegar)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  // Strip --json before google-benchmark sees the argument list.
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json"))
      Json = true;
    else
      argv[Out++] = argv[I];
  }
  argc = Out;

  benchutil::JsonReport Report("bench_slam");
  auto emit = [&](const std::string &Name, const CheckedRun &R) {
    Report.beginRun(Name);
    Report.metric("seconds", R.Seconds);
    Report.metric("iterations", static_cast<uint64_t>(R.Iterations));
    Report.metric("prover_calls", R.ProverCalls);
    Report.metric("disk_hits", R.DiskHits);
    Report.metric("memo_hits", R.MemoHits);
    Report.metric("stmts_reused", R.StmtsReused);
    Report.metric("validated", R.Validated);
    Report.endRun();
  };

  if (!Json)
    std::printf("\nCold vs warm SLAM runs (one persistent prover cache "
                "per model)\n%-14s %-8s %9s %6s %8s %7s %7s\n", "model",
                "run", "time (s)", "iters", "prover", "disk", "memo");
  for (const auto &M : workloads::table1Drivers()) {
    std::string Path = cachePathFor(M.Name);
    std::remove(Path.c_str());
    CheckedRun NoMemo = runOnce(M, "", /*Incremental=*/false);
    CheckedRun Cold = runOnce(M, Path, /*Incremental=*/true);
    CheckedRun Warm = runOnce(M, Path, /*Incremental=*/true);
    std::remove(Path.c_str());
    if (Json) {
      emit(M.Name + "/no-memo", NoMemo);
      emit(M.Name + "/cold", Cold);
      emit(M.Name + "/warm", Warm);
      continue;
    }
    auto row = [&](const char *Kind, const CheckedRun &R) {
      std::printf("%-14s %-8s %9.3f %6d %8llu %7llu %7llu\n",
                  M.Name.c_str(), Kind, R.Seconds, R.Iterations,
                  static_cast<unsigned long long>(R.ProverCalls),
                  static_cast<unsigned long long>(R.DiskHits),
                  static_cast<unsigned long long>(R.MemoHits));
    };
    row("no-memo", NoMemo);
    row("cold", Cold);
    row("warm", Warm);
  }

  if (Json) {
    std::printf("%s", Report.str().c_str());
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
