//===- bench_slam_cegar.cpp - Refinement convergence --------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The paper's convergence claim: "Although the SLAM process may not
// converge in theory ... it has converged on all NT device drivers we
// have analyzed (even though they contain loops) ... usually ... in a
// few iterations with a definite answer." Measures iterations-to-answer
// and predicates discovered per driver model, for both the released
// (validating) models and the buggy floppy, and sweeps the model size
// to show iterations grow with the number of dispatch routines (one
// spurious trace is refuted per routine).
//
//===----------------------------------------------------------------------===//

#include "slam/Cegar.h"
#include "support/Timer.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace slam;
using slamtool::SlamResult;

namespace {

SlamResult run(const workloads::DriverModel &M, double *Seconds) {
  logic::LogicContext Ctx;
  DiagnosticEngine Diags;
  slamtool::PipelineOptions Options;
  Options.C2bp.Cubes.MaxCubeLength = 3;
  Timer T;
  auto R = slamtool::checkSafety(M.Source, M.Spec, Ctx, Diags, Options);
  if (Seconds)
    *Seconds = T.seconds();
  return R.value_or(SlamResult{});
}

void BM_Cegar(benchmark::State &State) {
  int Dispatch = static_cast<int>(State.range(0));
  workloads::DriverConfig C;
  C.Name = "sweep";
  C.NumDispatch = Dispatch;
  auto M = workloads::generateDriver(C);
  for (auto _ : State) {
    SlamResult R = run(M, nullptr);
    State.counters["iterations"] = R.Iterations;
    State.counters["predicates"] =
        static_cast<double>(R.Predicates.totalCount());
  }
}

BENCHMARK(BM_Cegar)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("\nSLAM refinement convergence on the driver models\n");
  std::printf("%-14s %6s %6s %9s %s\n", "model", "iters", "preds",
              "time (s)", "verdict");
  auto Drivers = workloads::table1Drivers();
  // Also the de-bugged floppy, to separate the bug from the model.
  workloads::DriverConfig Fixed{"floppy-fixed", 10, 5, 3, 14, true,
                                false, 11};
  Drivers.push_back(workloads::generateDriver(Fixed));
  for (const auto &M : Drivers) {
    double Seconds = 0;
    SlamResult R = run(M, &Seconds);
    const char *Verdict =
        R.V == SlamResult::Verdict::Validated  ? "validated"
        : R.V == SlamResult::Verdict::BugFound ? "BUG FOUND"
                                               : "unknown";
    std::printf("%-14s %6d %6zu %9.2f %s\n", M.Name.c_str(), R.Iterations,
                R.Predicates.totalCount(), Seconds, Verdict);
  }
  std::printf("\nIterations scale with dispatch routines (one spurious "
              "trace refuted per\n routine) — the \"few iterations\" "
              "convergence of Section 6.1.\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
