//===- bench_table1.cpp - Reproduces Table 1 ---------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Table 1 of the paper: "the device drivers run through C2bp" with the
// columns (lines, predicates, theorem prover calls, runtime), obtained
// by running the full SLAM process (the predicates are discovered by
// the demand-driven refinement, exactly as in Section 6.1). The DDK
// sources are unavailable; generated driver models preserve the
// analysis-relevant structure (see DESIGN.md). The shape to compare:
//
//   * floppy and srdriver (the big drivers) dominate predicates, prover
//     calls and runtime; ioctl is the cheapest;
//   * the two DDK-style properties validate on the released models;
//   * the in-development floppy model is the one with a genuine bug,
//     reported with a concrete error path — never a spurious one.
//
//===----------------------------------------------------------------------===//

#include "slam/Cegar.h"
#include "support/Timer.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace slam;
using slamtool::SlamResult;

namespace {

struct DriverRow {
  std::string Name;
  unsigned Lines = 0;
  size_t Predicates = 0;
  uint64_t ProverCalls = 0;
  double Seconds = 0;
  int Iterations = 0;
  SlamResult::Verdict V = SlamResult::Verdict::Unknown;
};

DriverRow runDriver(const workloads::DriverModel &M) {
  DriverRow Row;
  Row.Name = M.Name;
  Row.Lines = M.SourceLines;
  logic::LogicContext Ctx;
  DiagnosticEngine Diags;
  StatsRegistry Stats;
  slamtool::PipelineOptions Options;
  Options.C2bp.Cubes.MaxCubeLength = 3;
  Timer T;
  auto R = slamtool::checkSafety(M.Source, M.Spec, Ctx, Diags, Options,
                                 &Stats);
  Row.Seconds = T.seconds();
  if (R) {
    Row.Predicates = R->Predicates.totalCount();
    Row.Iterations = R->Iterations;
    Row.V = R->V;
  }
  Row.ProverCalls = Stats.get("prover.calls");
  return Row;
}

void BM_Table1(benchmark::State &State, int Index) {
  auto Drivers = workloads::table1Drivers();
  for (auto _ : State) {
    DriverRow Row = runDriver(Drivers[Index]);
    State.counters["prover_calls"] =
        static_cast<double>(Row.ProverCalls);
    State.counters["predicates"] = static_cast<double>(Row.Predicates);
    State.counters["iterations"] = static_cast<double>(Row.Iterations);
  }
}

} // namespace

int main(int argc, char **argv) {
  std::printf("\nTable 1: device drivers through the SLAM toolkit "
              "(paper Section 6.1)\n");
  std::printf("%-10s %6s %6s %12s %9s %6s %s\n", "program", "lines",
              "preds", "prover calls", "time (s)", "iters", "verdict");
  auto Drivers = workloads::table1Drivers();
  for (const auto &M : Drivers) {
    DriverRow Row = runDriver(M);
    const char *Verdict =
        Row.V == SlamResult::Verdict::Validated  ? "validated"
        : Row.V == SlamResult::Verdict::BugFound ? "BUG FOUND"
                                                 : "unknown";
    std::printf("%-10s %6u %6zu %12llu %9.2f %6d %s\n", Row.Name.c_str(),
                Row.Lines, Row.Predicates,
                static_cast<unsigned long long>(Row.ProverCalls),
                Row.Seconds, Row.Iterations, Verdict);
  }
  std::printf("\n(The paper validated the four DDK drivers and found an "
              "error in the\n in-development floppy driver; our floppy "
              "model carries the analogous bug.)\n");

  for (size_t I = 0; I != Drivers.size(); ++I)
    benchmark::RegisterBenchmark(("table1/" + Drivers[I].Name).c_str(),
                                 BM_Table1, static_cast<int>(I))
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
