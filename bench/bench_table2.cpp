//===- bench_table2.cpp - Reproduces Table 2 ---------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Table 2 of the paper: "the array and heap intensive programs analyzed
// with C2bp" — kmp, qsort, partition, listfind, reverse — with the
// columns (lines, predicates, theorem prover calls, runtime). Absolute
// numbers differ from the paper's (different prover, different
// hardware); the shape to compare is: prover calls grow with
// predicates x statements, the pointer-heavy reverse is the hardest per
// line (the paper notes its aliasing defeats the cone of influence),
// and the scalar programs are cheap.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace slam;
using namespace slam::benchutil;

namespace {

c2bp::C2bpOptions tableOptions() {
  c2bp::C2bpOptions Options;
  // The paper reports k = 3 provides the needed precision in most
  // cases; it is also what keeps reverse's exponential cube space at
  // bay.
  Options.Cubes.MaxCubeLength = 3;
  return Options;
}

void BM_Table2(benchmark::State &State, const workloads::Workload *W) {
  for (auto _ : State) {
    RunRow Row = runTable2(*W, tableOptions());
    State.counters["prover_calls"] =
        static_cast<double>(Row.ProverCalls);
    State.counters["predicates"] = static_cast<double>(Row.Predicates);
    State.counters["lines"] = static_cast<double>(Row.Lines);
  }
}

} // namespace

int main(int argc, char **argv) {
  // The paper-style table first.
  printRowHeader("Table 2: array- and heap-intensive programs "
                 "(paper Section 6.2)");
  for (const workloads::Workload *W : workloads::table2Workloads())
    printRow(runTable2(*W, tableOptions()));
  std::printf(
      "\n(kmp/qsort/partition/listfind validate; reverse's abstract\n"
      " counterexample is rejected by Newton — see EXPERIMENTS.md.)\n");

  for (const workloads::Workload *W : workloads::table2Workloads())
    benchmark::RegisterBenchmark(("table2/" + W->Name).c_str(),
                                 BM_Table2, W)
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
