file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_alias.dir/bench_ablation_alias.cpp.o"
  "CMakeFiles/bench_ablation_alias.dir/bench_ablation_alias.cpp.o.d"
  "bench_ablation_alias"
  "bench_ablation_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
