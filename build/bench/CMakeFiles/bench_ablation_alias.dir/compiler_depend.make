# Empty compiler generated dependencies file for bench_ablation_alias.
# This may be replaced when dependencies are built.
