file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cubes.dir/bench_ablation_cubes.cpp.o"
  "CMakeFiles/bench_ablation_cubes.dir/bench_ablation_cubes.cpp.o.d"
  "bench_ablation_cubes"
  "bench_ablation_cubes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cubes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
