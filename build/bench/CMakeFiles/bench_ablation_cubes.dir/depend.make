# Empty dependencies file for bench_ablation_cubes.
# This may be replaced when dependencies are built.
