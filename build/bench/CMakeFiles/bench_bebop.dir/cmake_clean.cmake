file(REMOVE_RECURSE
  "CMakeFiles/bench_bebop.dir/bench_bebop.cpp.o"
  "CMakeFiles/bench_bebop.dir/bench_bebop.cpp.o.d"
  "bench_bebop"
  "bench_bebop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bebop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
