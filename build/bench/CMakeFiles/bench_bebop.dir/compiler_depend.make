# Empty compiler generated dependencies file for bench_bebop.
# This may be replaced when dependencies are built.
