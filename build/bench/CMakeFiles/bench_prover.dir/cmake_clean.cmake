file(REMOVE_RECURSE
  "CMakeFiles/bench_prover.dir/bench_prover.cpp.o"
  "CMakeFiles/bench_prover.dir/bench_prover.cpp.o.d"
  "bench_prover"
  "bench_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
