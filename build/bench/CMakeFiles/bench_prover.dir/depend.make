# Empty dependencies file for bench_prover.
# This may be replaced when dependencies are built.
