file(REMOVE_RECURSE
  "CMakeFiles/bench_slam_cegar.dir/bench_slam_cegar.cpp.o"
  "CMakeFiles/bench_slam_cegar.dir/bench_slam_cegar.cpp.o.d"
  "bench_slam_cegar"
  "bench_slam_cegar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slam_cegar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
