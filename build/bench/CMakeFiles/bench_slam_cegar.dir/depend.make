# Empty dependencies file for bench_slam_cegar.
# This may be replaced when dependencies are built.
