
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/driver_check.cpp" "examples/CMakeFiles/driver_check.dir/driver_check.cpp.o" "gcc" "examples/CMakeFiles/driver_check.dir/driver_check.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/slam_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/slam/CMakeFiles/slam_slam.dir/DependInfo.cmake"
  "/root/repo/build/src/c2bp/CMakeFiles/slam_c2bp.dir/DependInfo.cmake"
  "/root/repo/build/src/bebop/CMakeFiles/slam_bebop.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/slam_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/alias/CMakeFiles/slam_alias.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/slam_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/slam_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/prover/CMakeFiles/slam_prover.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/slam_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
