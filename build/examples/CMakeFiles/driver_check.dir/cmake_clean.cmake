file(REMOVE_RECURSE
  "CMakeFiles/driver_check.dir/driver_check.cpp.o"
  "CMakeFiles/driver_check.dir/driver_check.cpp.o.d"
  "driver_check"
  "driver_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
