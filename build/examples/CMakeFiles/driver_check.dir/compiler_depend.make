# Empty compiler generated dependencies file for driver_check.
# This may be replaced when dependencies are built.
