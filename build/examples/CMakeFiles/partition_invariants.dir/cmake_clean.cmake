file(REMOVE_RECURSE
  "CMakeFiles/partition_invariants.dir/partition_invariants.cpp.o"
  "CMakeFiles/partition_invariants.dir/partition_invariants.cpp.o.d"
  "partition_invariants"
  "partition_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
