# Empty dependencies file for partition_invariants.
# This may be replaced when dependencies are built.
