file(REMOVE_RECURSE
  "CMakeFiles/proccall_abstraction.dir/proccall_abstraction.cpp.o"
  "CMakeFiles/proccall_abstraction.dir/proccall_abstraction.cpp.o.d"
  "proccall_abstraction"
  "proccall_abstraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proccall_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
