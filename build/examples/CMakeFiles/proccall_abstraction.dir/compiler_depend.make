# Empty compiler generated dependencies file for proccall_abstraction.
# This may be replaced when dependencies are built.
