file(REMOVE_RECURSE
  "CMakeFiles/shape_reverse.dir/shape_reverse.cpp.o"
  "CMakeFiles/shape_reverse.dir/shape_reverse.cpp.o.d"
  "shape_reverse"
  "shape_reverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_reverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
