# Empty compiler generated dependencies file for shape_reverse.
# This may be replaced when dependencies are built.
