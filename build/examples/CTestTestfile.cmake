# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_c2bp_partition "/root/repo/build/tools/c2bp" "/root/repo/examples/programs/partition.c" "/root/repo/examples/programs/partition.preds")
set_tests_properties(tool_c2bp_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool_slam_locking "/root/repo/build/tools/slam" "/root/repo/examples/programs/locking.c" "--lock" "AcquireLock,ReleaseLock")
set_tests_properties(tool_slam_locking PROPERTIES  PASS_REGULAR_EXPRESSION "VALIDATED" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool_slam_locking_bug "/root/repo/build/tools/slam" "/root/repo/examples/programs/locking_bug.c" "--lock" "AcquireLock,ReleaseLock")
set_tests_properties(tool_slam_locking_bug PROPERTIES  PASS_REGULAR_EXPRESSION "BUG FOUND" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
