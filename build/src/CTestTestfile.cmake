# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("logic")
subdirs("prover")
subdirs("cfront")
subdirs("alias")
subdirs("bp")
subdirs("bdd")
subdirs("bebop")
subdirs("c2bp")
subdirs("slam")
subdirs("workloads")
