
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alias/ModRef.cpp" "src/alias/CMakeFiles/slam_alias.dir/ModRef.cpp.o" "gcc" "src/alias/CMakeFiles/slam_alias.dir/ModRef.cpp.o.d"
  "/root/repo/src/alias/Oracle.cpp" "src/alias/CMakeFiles/slam_alias.dir/Oracle.cpp.o" "gcc" "src/alias/CMakeFiles/slam_alias.dir/Oracle.cpp.o.d"
  "/root/repo/src/alias/PointsTo.cpp" "src/alias/CMakeFiles/slam_alias.dir/PointsTo.cpp.o" "gcc" "src/alias/CMakeFiles/slam_alias.dir/PointsTo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfront/CMakeFiles/slam_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/slam_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
