file(REMOVE_RECURSE
  "CMakeFiles/slam_alias.dir/ModRef.cpp.o"
  "CMakeFiles/slam_alias.dir/ModRef.cpp.o.d"
  "CMakeFiles/slam_alias.dir/Oracle.cpp.o"
  "CMakeFiles/slam_alias.dir/Oracle.cpp.o.d"
  "CMakeFiles/slam_alias.dir/PointsTo.cpp.o"
  "CMakeFiles/slam_alias.dir/PointsTo.cpp.o.d"
  "libslam_alias.a"
  "libslam_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
