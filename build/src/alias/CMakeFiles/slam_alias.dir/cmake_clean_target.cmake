file(REMOVE_RECURSE
  "libslam_alias.a"
)
