# Empty dependencies file for slam_alias.
# This may be replaced when dependencies are built.
