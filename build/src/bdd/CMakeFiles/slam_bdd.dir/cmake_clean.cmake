file(REMOVE_RECURSE
  "CMakeFiles/slam_bdd.dir/Bdd.cpp.o"
  "CMakeFiles/slam_bdd.dir/Bdd.cpp.o.d"
  "libslam_bdd.a"
  "libslam_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
