file(REMOVE_RECURSE
  "libslam_bdd.a"
)
