# Empty compiler generated dependencies file for slam_bdd.
# This may be replaced when dependencies are built.
