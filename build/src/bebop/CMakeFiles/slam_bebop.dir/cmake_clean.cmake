file(REMOVE_RECURSE
  "CMakeFiles/slam_bebop.dir/Bebop.cpp.o"
  "CMakeFiles/slam_bebop.dir/Bebop.cpp.o.d"
  "CMakeFiles/slam_bebop.dir/Cfg.cpp.o"
  "CMakeFiles/slam_bebop.dir/Cfg.cpp.o.d"
  "libslam_bebop.a"
  "libslam_bebop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_bebop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
