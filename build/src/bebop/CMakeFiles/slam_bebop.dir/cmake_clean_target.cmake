file(REMOVE_RECURSE
  "libslam_bebop.a"
)
