# Empty dependencies file for slam_bebop.
# This may be replaced when dependencies are built.
