file(REMOVE_RECURSE
  "CMakeFiles/slam_bp.dir/BPAst.cpp.o"
  "CMakeFiles/slam_bp.dir/BPAst.cpp.o.d"
  "CMakeFiles/slam_bp.dir/BPParser.cpp.o"
  "CMakeFiles/slam_bp.dir/BPParser.cpp.o.d"
  "libslam_bp.a"
  "libslam_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
