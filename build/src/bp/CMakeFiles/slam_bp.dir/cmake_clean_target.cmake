file(REMOVE_RECURSE
  "libslam_bp.a"
)
