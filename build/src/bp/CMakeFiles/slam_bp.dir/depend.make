# Empty dependencies file for slam_bp.
# This may be replaced when dependencies are built.
