
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/c2bp/C2bp.cpp" "src/c2bp/CMakeFiles/slam_c2bp.dir/C2bp.cpp.o" "gcc" "src/c2bp/CMakeFiles/slam_c2bp.dir/C2bp.cpp.o.d"
  "/root/repo/src/c2bp/CExprToLogic.cpp" "src/c2bp/CMakeFiles/slam_c2bp.dir/CExprToLogic.cpp.o" "gcc" "src/c2bp/CMakeFiles/slam_c2bp.dir/CExprToLogic.cpp.o.d"
  "/root/repo/src/c2bp/CubeSearch.cpp" "src/c2bp/CMakeFiles/slam_c2bp.dir/CubeSearch.cpp.o" "gcc" "src/c2bp/CMakeFiles/slam_c2bp.dir/CubeSearch.cpp.o.d"
  "/root/repo/src/c2bp/PredicateSet.cpp" "src/c2bp/CMakeFiles/slam_c2bp.dir/PredicateSet.cpp.o" "gcc" "src/c2bp/CMakeFiles/slam_c2bp.dir/PredicateSet.cpp.o.d"
  "/root/repo/src/c2bp/Signatures.cpp" "src/c2bp/CMakeFiles/slam_c2bp.dir/Signatures.cpp.o" "gcc" "src/c2bp/CMakeFiles/slam_c2bp.dir/Signatures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alias/CMakeFiles/slam_alias.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/slam_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/slam_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/slam_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/prover/CMakeFiles/slam_prover.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
