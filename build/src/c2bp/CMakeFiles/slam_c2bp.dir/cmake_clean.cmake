file(REMOVE_RECURSE
  "CMakeFiles/slam_c2bp.dir/C2bp.cpp.o"
  "CMakeFiles/slam_c2bp.dir/C2bp.cpp.o.d"
  "CMakeFiles/slam_c2bp.dir/CExprToLogic.cpp.o"
  "CMakeFiles/slam_c2bp.dir/CExprToLogic.cpp.o.d"
  "CMakeFiles/slam_c2bp.dir/CubeSearch.cpp.o"
  "CMakeFiles/slam_c2bp.dir/CubeSearch.cpp.o.d"
  "CMakeFiles/slam_c2bp.dir/PredicateSet.cpp.o"
  "CMakeFiles/slam_c2bp.dir/PredicateSet.cpp.o.d"
  "CMakeFiles/slam_c2bp.dir/Signatures.cpp.o"
  "CMakeFiles/slam_c2bp.dir/Signatures.cpp.o.d"
  "libslam_c2bp.a"
  "libslam_c2bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_c2bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
