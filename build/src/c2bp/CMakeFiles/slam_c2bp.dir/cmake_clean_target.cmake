file(REMOVE_RECURSE
  "libslam_c2bp.a"
)
