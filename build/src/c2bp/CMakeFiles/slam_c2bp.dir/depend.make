# Empty dependencies file for slam_c2bp.
# This may be replaced when dependencies are built.
