# CMake generated Testfile for 
# Source directory: /root/repo/src/c2bp
# Build directory: /root/repo/build/src/c2bp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
