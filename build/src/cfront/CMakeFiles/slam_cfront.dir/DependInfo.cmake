
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfront/AST.cpp" "src/cfront/CMakeFiles/slam_cfront.dir/AST.cpp.o" "gcc" "src/cfront/CMakeFiles/slam_cfront.dir/AST.cpp.o.d"
  "/root/repo/src/cfront/Interp.cpp" "src/cfront/CMakeFiles/slam_cfront.dir/Interp.cpp.o" "gcc" "src/cfront/CMakeFiles/slam_cfront.dir/Interp.cpp.o.d"
  "/root/repo/src/cfront/Lexer.cpp" "src/cfront/CMakeFiles/slam_cfront.dir/Lexer.cpp.o" "gcc" "src/cfront/CMakeFiles/slam_cfront.dir/Lexer.cpp.o.d"
  "/root/repo/src/cfront/Normalize.cpp" "src/cfront/CMakeFiles/slam_cfront.dir/Normalize.cpp.o" "gcc" "src/cfront/CMakeFiles/slam_cfront.dir/Normalize.cpp.o.d"
  "/root/repo/src/cfront/Parser.cpp" "src/cfront/CMakeFiles/slam_cfront.dir/Parser.cpp.o" "gcc" "src/cfront/CMakeFiles/slam_cfront.dir/Parser.cpp.o.d"
  "/root/repo/src/cfront/Sema.cpp" "src/cfront/CMakeFiles/slam_cfront.dir/Sema.cpp.o" "gcc" "src/cfront/CMakeFiles/slam_cfront.dir/Sema.cpp.o.d"
  "/root/repo/src/cfront/Types.cpp" "src/cfront/CMakeFiles/slam_cfront.dir/Types.cpp.o" "gcc" "src/cfront/CMakeFiles/slam_cfront.dir/Types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
