file(REMOVE_RECURSE
  "CMakeFiles/slam_cfront.dir/AST.cpp.o"
  "CMakeFiles/slam_cfront.dir/AST.cpp.o.d"
  "CMakeFiles/slam_cfront.dir/Interp.cpp.o"
  "CMakeFiles/slam_cfront.dir/Interp.cpp.o.d"
  "CMakeFiles/slam_cfront.dir/Lexer.cpp.o"
  "CMakeFiles/slam_cfront.dir/Lexer.cpp.o.d"
  "CMakeFiles/slam_cfront.dir/Normalize.cpp.o"
  "CMakeFiles/slam_cfront.dir/Normalize.cpp.o.d"
  "CMakeFiles/slam_cfront.dir/Parser.cpp.o"
  "CMakeFiles/slam_cfront.dir/Parser.cpp.o.d"
  "CMakeFiles/slam_cfront.dir/Sema.cpp.o"
  "CMakeFiles/slam_cfront.dir/Sema.cpp.o.d"
  "CMakeFiles/slam_cfront.dir/Types.cpp.o"
  "CMakeFiles/slam_cfront.dir/Types.cpp.o.d"
  "libslam_cfront.a"
  "libslam_cfront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_cfront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
