file(REMOVE_RECURSE
  "libslam_cfront.a"
)
