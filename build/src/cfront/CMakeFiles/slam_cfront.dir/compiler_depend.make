# Empty compiler generated dependencies file for slam_cfront.
# This may be replaced when dependencies are built.
