
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/AliasOracle.cpp" "src/logic/CMakeFiles/slam_logic.dir/AliasOracle.cpp.o" "gcc" "src/logic/CMakeFiles/slam_logic.dir/AliasOracle.cpp.o.d"
  "/root/repo/src/logic/Expr.cpp" "src/logic/CMakeFiles/slam_logic.dir/Expr.cpp.o" "gcc" "src/logic/CMakeFiles/slam_logic.dir/Expr.cpp.o.d"
  "/root/repo/src/logic/ExprUtils.cpp" "src/logic/CMakeFiles/slam_logic.dir/ExprUtils.cpp.o" "gcc" "src/logic/CMakeFiles/slam_logic.dir/ExprUtils.cpp.o.d"
  "/root/repo/src/logic/Parser.cpp" "src/logic/CMakeFiles/slam_logic.dir/Parser.cpp.o" "gcc" "src/logic/CMakeFiles/slam_logic.dir/Parser.cpp.o.d"
  "/root/repo/src/logic/WP.cpp" "src/logic/CMakeFiles/slam_logic.dir/WP.cpp.o" "gcc" "src/logic/CMakeFiles/slam_logic.dir/WP.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
