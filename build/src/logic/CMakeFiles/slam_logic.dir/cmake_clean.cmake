file(REMOVE_RECURSE
  "CMakeFiles/slam_logic.dir/AliasOracle.cpp.o"
  "CMakeFiles/slam_logic.dir/AliasOracle.cpp.o.d"
  "CMakeFiles/slam_logic.dir/Expr.cpp.o"
  "CMakeFiles/slam_logic.dir/Expr.cpp.o.d"
  "CMakeFiles/slam_logic.dir/ExprUtils.cpp.o"
  "CMakeFiles/slam_logic.dir/ExprUtils.cpp.o.d"
  "CMakeFiles/slam_logic.dir/Parser.cpp.o"
  "CMakeFiles/slam_logic.dir/Parser.cpp.o.d"
  "CMakeFiles/slam_logic.dir/WP.cpp.o"
  "CMakeFiles/slam_logic.dir/WP.cpp.o.d"
  "libslam_logic.a"
  "libslam_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
