file(REMOVE_RECURSE
  "libslam_logic.a"
)
