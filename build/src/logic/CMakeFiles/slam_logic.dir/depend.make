# Empty dependencies file for slam_logic.
# This may be replaced when dependencies are built.
