
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prover/CongruenceClosure.cpp" "src/prover/CMakeFiles/slam_prover.dir/CongruenceClosure.cpp.o" "gcc" "src/prover/CMakeFiles/slam_prover.dir/CongruenceClosure.cpp.o.d"
  "/root/repo/src/prover/Prover.cpp" "src/prover/CMakeFiles/slam_prover.dir/Prover.cpp.o" "gcc" "src/prover/CMakeFiles/slam_prover.dir/Prover.cpp.o.d"
  "/root/repo/src/prover/Sat.cpp" "src/prover/CMakeFiles/slam_prover.dir/Sat.cpp.o" "gcc" "src/prover/CMakeFiles/slam_prover.dir/Sat.cpp.o.d"
  "/root/repo/src/prover/Simplex.cpp" "src/prover/CMakeFiles/slam_prover.dir/Simplex.cpp.o" "gcc" "src/prover/CMakeFiles/slam_prover.dir/Simplex.cpp.o.d"
  "/root/repo/src/prover/Theory.cpp" "src/prover/CMakeFiles/slam_prover.dir/Theory.cpp.o" "gcc" "src/prover/CMakeFiles/slam_prover.dir/Theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/slam_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
