file(REMOVE_RECURSE
  "CMakeFiles/slam_prover.dir/CongruenceClosure.cpp.o"
  "CMakeFiles/slam_prover.dir/CongruenceClosure.cpp.o.d"
  "CMakeFiles/slam_prover.dir/Prover.cpp.o"
  "CMakeFiles/slam_prover.dir/Prover.cpp.o.d"
  "CMakeFiles/slam_prover.dir/Sat.cpp.o"
  "CMakeFiles/slam_prover.dir/Sat.cpp.o.d"
  "CMakeFiles/slam_prover.dir/Simplex.cpp.o"
  "CMakeFiles/slam_prover.dir/Simplex.cpp.o.d"
  "CMakeFiles/slam_prover.dir/Theory.cpp.o"
  "CMakeFiles/slam_prover.dir/Theory.cpp.o.d"
  "libslam_prover.a"
  "libslam_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
