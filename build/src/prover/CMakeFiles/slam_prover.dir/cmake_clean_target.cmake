file(REMOVE_RECURSE
  "libslam_prover.a"
)
