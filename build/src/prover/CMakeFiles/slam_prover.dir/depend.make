# Empty dependencies file for slam_prover.
# This may be replaced when dependencies are built.
