file(REMOVE_RECURSE
  "CMakeFiles/slam_slam.dir/Cegar.cpp.o"
  "CMakeFiles/slam_slam.dir/Cegar.cpp.o.d"
  "CMakeFiles/slam_slam.dir/Newton.cpp.o"
  "CMakeFiles/slam_slam.dir/Newton.cpp.o.d"
  "CMakeFiles/slam_slam.dir/SafetySpec.cpp.o"
  "CMakeFiles/slam_slam.dir/SafetySpec.cpp.o.d"
  "libslam_slam.a"
  "libslam_slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
