file(REMOVE_RECURSE
  "libslam_slam.a"
)
