# Empty compiler generated dependencies file for slam_slam.
# This may be replaced when dependencies are built.
