file(REMOVE_RECURSE
  "CMakeFiles/slam_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/slam_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/slam_support.dir/StringExtras.cpp.o"
  "CMakeFiles/slam_support.dir/StringExtras.cpp.o.d"
  "libslam_support.a"
  "libslam_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
