file(REMOVE_RECURSE
  "libslam_support.a"
)
