# Empty compiler generated dependencies file for slam_support.
# This may be replaced when dependencies are built.
