file(REMOVE_RECURSE
  "CMakeFiles/slam_workloads.dir/Table1.cpp.o"
  "CMakeFiles/slam_workloads.dir/Table1.cpp.o.d"
  "CMakeFiles/slam_workloads.dir/Table2.cpp.o"
  "CMakeFiles/slam_workloads.dir/Table2.cpp.o.d"
  "libslam_workloads.a"
  "libslam_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
