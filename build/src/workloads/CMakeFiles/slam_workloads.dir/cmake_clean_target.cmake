file(REMOVE_RECURSE
  "libslam_workloads.a"
)
