# Empty dependencies file for slam_workloads.
# This may be replaced when dependencies are built.
