
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alias/ModRefTest.cpp" "tests/alias/CMakeFiles/alias_tests.dir/ModRefTest.cpp.o" "gcc" "tests/alias/CMakeFiles/alias_tests.dir/ModRefTest.cpp.o.d"
  "/root/repo/tests/alias/OracleTest.cpp" "tests/alias/CMakeFiles/alias_tests.dir/OracleTest.cpp.o" "gcc" "tests/alias/CMakeFiles/alias_tests.dir/OracleTest.cpp.o.d"
  "/root/repo/tests/alias/PointsToTest.cpp" "tests/alias/CMakeFiles/alias_tests.dir/PointsToTest.cpp.o" "gcc" "tests/alias/CMakeFiles/alias_tests.dir/PointsToTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alias/CMakeFiles/slam_alias.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/slam_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/slam_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
