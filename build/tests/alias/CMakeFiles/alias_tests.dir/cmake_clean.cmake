file(REMOVE_RECURSE
  "CMakeFiles/alias_tests.dir/ModRefTest.cpp.o"
  "CMakeFiles/alias_tests.dir/ModRefTest.cpp.o.d"
  "CMakeFiles/alias_tests.dir/OracleTest.cpp.o"
  "CMakeFiles/alias_tests.dir/OracleTest.cpp.o.d"
  "CMakeFiles/alias_tests.dir/PointsToTest.cpp.o"
  "CMakeFiles/alias_tests.dir/PointsToTest.cpp.o.d"
  "alias_tests"
  "alias_tests.pdb"
  "alias_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alias_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
