# Empty compiler generated dependencies file for alias_tests.
# This may be replaced when dependencies are built.
