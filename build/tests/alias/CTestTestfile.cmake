# CMake generated Testfile for 
# Source directory: /root/repo/tests/alias
# Build directory: /root/repo/build/tests/alias
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/alias/alias_tests[1]_include.cmake")
