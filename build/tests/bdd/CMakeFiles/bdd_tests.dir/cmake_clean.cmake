file(REMOVE_RECURSE
  "CMakeFiles/bdd_tests.dir/BddTest.cpp.o"
  "CMakeFiles/bdd_tests.dir/BddTest.cpp.o.d"
  "bdd_tests"
  "bdd_tests.pdb"
  "bdd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
