# Empty dependencies file for bdd_tests.
# This may be replaced when dependencies are built.
