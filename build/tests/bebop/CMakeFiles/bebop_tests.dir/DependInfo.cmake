
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bebop/BebopTest.cpp" "tests/bebop/CMakeFiles/bebop_tests.dir/BebopTest.cpp.o" "gcc" "tests/bebop/CMakeFiles/bebop_tests.dir/BebopTest.cpp.o.d"
  "/root/repo/tests/bebop/CfgTest.cpp" "tests/bebop/CMakeFiles/bebop_tests.dir/CfgTest.cpp.o" "gcc" "tests/bebop/CMakeFiles/bebop_tests.dir/CfgTest.cpp.o.d"
  "/root/repo/tests/bebop/ExplicitStateTest.cpp" "tests/bebop/CMakeFiles/bebop_tests.dir/ExplicitStateTest.cpp.o" "gcc" "tests/bebop/CMakeFiles/bebop_tests.dir/ExplicitStateTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bebop/CMakeFiles/slam_bebop.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/slam_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/slam_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
