file(REMOVE_RECURSE
  "CMakeFiles/bebop_tests.dir/BebopTest.cpp.o"
  "CMakeFiles/bebop_tests.dir/BebopTest.cpp.o.d"
  "CMakeFiles/bebop_tests.dir/CfgTest.cpp.o"
  "CMakeFiles/bebop_tests.dir/CfgTest.cpp.o.d"
  "CMakeFiles/bebop_tests.dir/ExplicitStateTest.cpp.o"
  "CMakeFiles/bebop_tests.dir/ExplicitStateTest.cpp.o.d"
  "bebop_tests"
  "bebop_tests.pdb"
  "bebop_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bebop_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
