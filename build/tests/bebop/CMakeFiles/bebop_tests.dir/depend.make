# Empty dependencies file for bebop_tests.
# This may be replaced when dependencies are built.
