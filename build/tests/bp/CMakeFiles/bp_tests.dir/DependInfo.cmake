
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bp/BPParserTest.cpp" "tests/bp/CMakeFiles/bp_tests.dir/BPParserTest.cpp.o" "gcc" "tests/bp/CMakeFiles/bp_tests.dir/BPParserTest.cpp.o.d"
  "/root/repo/tests/bp/BPPrinterTest.cpp" "tests/bp/CMakeFiles/bp_tests.dir/BPPrinterTest.cpp.o" "gcc" "tests/bp/CMakeFiles/bp_tests.dir/BPPrinterTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bp/CMakeFiles/slam_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
