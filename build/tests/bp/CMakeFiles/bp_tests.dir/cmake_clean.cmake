file(REMOVE_RECURSE
  "CMakeFiles/bp_tests.dir/BPParserTest.cpp.o"
  "CMakeFiles/bp_tests.dir/BPParserTest.cpp.o.d"
  "CMakeFiles/bp_tests.dir/BPPrinterTest.cpp.o"
  "CMakeFiles/bp_tests.dir/BPPrinterTest.cpp.o.d"
  "bp_tests"
  "bp_tests.pdb"
  "bp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
