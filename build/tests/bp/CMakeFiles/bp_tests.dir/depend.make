# Empty dependencies file for bp_tests.
# This may be replaced when dependencies are built.
