# CMake generated Testfile for 
# Source directory: /root/repo/tests/bp
# Build directory: /root/repo/build/tests/bp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bp/bp_tests[1]_include.cmake")
