
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/c2bp/AbstractionTest.cpp" "tests/c2bp/CMakeFiles/c2bp_tests.dir/AbstractionTest.cpp.o" "gcc" "tests/c2bp/CMakeFiles/c2bp_tests.dir/AbstractionTest.cpp.o.d"
  "/root/repo/tests/c2bp/CubeSearchTest.cpp" "tests/c2bp/CMakeFiles/c2bp_tests.dir/CubeSearchTest.cpp.o" "gcc" "tests/c2bp/CMakeFiles/c2bp_tests.dir/CubeSearchTest.cpp.o.d"
  "/root/repo/tests/c2bp/PredicateSetTest.cpp" "tests/c2bp/CMakeFiles/c2bp_tests.dir/PredicateSetTest.cpp.o" "gcc" "tests/c2bp/CMakeFiles/c2bp_tests.dir/PredicateSetTest.cpp.o.d"
  "/root/repo/tests/c2bp/SignatureTest.cpp" "tests/c2bp/CMakeFiles/c2bp_tests.dir/SignatureTest.cpp.o" "gcc" "tests/c2bp/CMakeFiles/c2bp_tests.dir/SignatureTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/c2bp/CMakeFiles/slam_c2bp.dir/DependInfo.cmake"
  "/root/repo/build/src/bebop/CMakeFiles/slam_bebop.dir/DependInfo.cmake"
  "/root/repo/build/src/alias/CMakeFiles/slam_alias.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/slam_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/prover/CMakeFiles/slam_prover.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/slam_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/slam_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/slam_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
