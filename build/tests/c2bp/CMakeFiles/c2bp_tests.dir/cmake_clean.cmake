file(REMOVE_RECURSE
  "CMakeFiles/c2bp_tests.dir/AbstractionTest.cpp.o"
  "CMakeFiles/c2bp_tests.dir/AbstractionTest.cpp.o.d"
  "CMakeFiles/c2bp_tests.dir/CubeSearchTest.cpp.o"
  "CMakeFiles/c2bp_tests.dir/CubeSearchTest.cpp.o.d"
  "CMakeFiles/c2bp_tests.dir/PredicateSetTest.cpp.o"
  "CMakeFiles/c2bp_tests.dir/PredicateSetTest.cpp.o.d"
  "CMakeFiles/c2bp_tests.dir/SignatureTest.cpp.o"
  "CMakeFiles/c2bp_tests.dir/SignatureTest.cpp.o.d"
  "c2bp_tests"
  "c2bp_tests.pdb"
  "c2bp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2bp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
