# Empty compiler generated dependencies file for c2bp_tests.
# This may be replaced when dependencies are built.
