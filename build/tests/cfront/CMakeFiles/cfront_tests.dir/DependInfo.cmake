
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cfront/InterpTest.cpp" "tests/cfront/CMakeFiles/cfront_tests.dir/InterpTest.cpp.o" "gcc" "tests/cfront/CMakeFiles/cfront_tests.dir/InterpTest.cpp.o.d"
  "/root/repo/tests/cfront/LexerTest.cpp" "tests/cfront/CMakeFiles/cfront_tests.dir/LexerTest.cpp.o" "gcc" "tests/cfront/CMakeFiles/cfront_tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/cfront/NormalizeTest.cpp" "tests/cfront/CMakeFiles/cfront_tests.dir/NormalizeTest.cpp.o" "gcc" "tests/cfront/CMakeFiles/cfront_tests.dir/NormalizeTest.cpp.o.d"
  "/root/repo/tests/cfront/ParserTest.cpp" "tests/cfront/CMakeFiles/cfront_tests.dir/ParserTest.cpp.o" "gcc" "tests/cfront/CMakeFiles/cfront_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/cfront/SemaTest.cpp" "tests/cfront/CMakeFiles/cfront_tests.dir/SemaTest.cpp.o" "gcc" "tests/cfront/CMakeFiles/cfront_tests.dir/SemaTest.cpp.o.d"
  "/root/repo/tests/cfront/WPSemanticsTest.cpp" "tests/cfront/CMakeFiles/cfront_tests.dir/WPSemanticsTest.cpp.o" "gcc" "tests/cfront/CMakeFiles/cfront_tests.dir/WPSemanticsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfront/CMakeFiles/slam_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/slam_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
