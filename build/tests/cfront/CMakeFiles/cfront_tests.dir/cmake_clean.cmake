file(REMOVE_RECURSE
  "CMakeFiles/cfront_tests.dir/InterpTest.cpp.o"
  "CMakeFiles/cfront_tests.dir/InterpTest.cpp.o.d"
  "CMakeFiles/cfront_tests.dir/LexerTest.cpp.o"
  "CMakeFiles/cfront_tests.dir/LexerTest.cpp.o.d"
  "CMakeFiles/cfront_tests.dir/NormalizeTest.cpp.o"
  "CMakeFiles/cfront_tests.dir/NormalizeTest.cpp.o.d"
  "CMakeFiles/cfront_tests.dir/ParserTest.cpp.o"
  "CMakeFiles/cfront_tests.dir/ParserTest.cpp.o.d"
  "CMakeFiles/cfront_tests.dir/SemaTest.cpp.o"
  "CMakeFiles/cfront_tests.dir/SemaTest.cpp.o.d"
  "CMakeFiles/cfront_tests.dir/WPSemanticsTest.cpp.o"
  "CMakeFiles/cfront_tests.dir/WPSemanticsTest.cpp.o.d"
  "cfront_tests"
  "cfront_tests.pdb"
  "cfront_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfront_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
