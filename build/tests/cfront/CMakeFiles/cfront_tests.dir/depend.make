# Empty dependencies file for cfront_tests.
# This may be replaced when dependencies are built.
