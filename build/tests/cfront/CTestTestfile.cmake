# CMake generated Testfile for 
# Source directory: /root/repo/tests/cfront
# Build directory: /root/repo/build/tests/cfront
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cfront/cfront_tests[1]_include.cmake")
