
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/logic/AliasOracleTest.cpp" "tests/logic/CMakeFiles/logic_tests.dir/AliasOracleTest.cpp.o" "gcc" "tests/logic/CMakeFiles/logic_tests.dir/AliasOracleTest.cpp.o.d"
  "/root/repo/tests/logic/ExprTest.cpp" "tests/logic/CMakeFiles/logic_tests.dir/ExprTest.cpp.o" "gcc" "tests/logic/CMakeFiles/logic_tests.dir/ExprTest.cpp.o.d"
  "/root/repo/tests/logic/ExprUtilsTest.cpp" "tests/logic/CMakeFiles/logic_tests.dir/ExprUtilsTest.cpp.o" "gcc" "tests/logic/CMakeFiles/logic_tests.dir/ExprUtilsTest.cpp.o.d"
  "/root/repo/tests/logic/ParserTest.cpp" "tests/logic/CMakeFiles/logic_tests.dir/ParserTest.cpp.o" "gcc" "tests/logic/CMakeFiles/logic_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/logic/WPTest.cpp" "tests/logic/CMakeFiles/logic_tests.dir/WPTest.cpp.o" "gcc" "tests/logic/CMakeFiles/logic_tests.dir/WPTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/slam_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
