file(REMOVE_RECURSE
  "CMakeFiles/logic_tests.dir/AliasOracleTest.cpp.o"
  "CMakeFiles/logic_tests.dir/AliasOracleTest.cpp.o.d"
  "CMakeFiles/logic_tests.dir/ExprTest.cpp.o"
  "CMakeFiles/logic_tests.dir/ExprTest.cpp.o.d"
  "CMakeFiles/logic_tests.dir/ExprUtilsTest.cpp.o"
  "CMakeFiles/logic_tests.dir/ExprUtilsTest.cpp.o.d"
  "CMakeFiles/logic_tests.dir/ParserTest.cpp.o"
  "CMakeFiles/logic_tests.dir/ParserTest.cpp.o.d"
  "CMakeFiles/logic_tests.dir/WPTest.cpp.o"
  "CMakeFiles/logic_tests.dir/WPTest.cpp.o.d"
  "logic_tests"
  "logic_tests.pdb"
  "logic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
