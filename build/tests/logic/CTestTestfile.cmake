# CMake generated Testfile for 
# Source directory: /root/repo/tests/logic
# Build directory: /root/repo/build/tests/logic
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/logic/logic_tests[1]_include.cmake")
