
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/prover/CongruenceClosureTest.cpp" "tests/prover/CMakeFiles/prover_tests.dir/CongruenceClosureTest.cpp.o" "gcc" "tests/prover/CMakeFiles/prover_tests.dir/CongruenceClosureTest.cpp.o.d"
  "/root/repo/tests/prover/OracleSweepTest.cpp" "tests/prover/CMakeFiles/prover_tests.dir/OracleSweepTest.cpp.o" "gcc" "tests/prover/CMakeFiles/prover_tests.dir/OracleSweepTest.cpp.o.d"
  "/root/repo/tests/prover/ProverTest.cpp" "tests/prover/CMakeFiles/prover_tests.dir/ProverTest.cpp.o" "gcc" "tests/prover/CMakeFiles/prover_tests.dir/ProverTest.cpp.o.d"
  "/root/repo/tests/prover/RationalTest.cpp" "tests/prover/CMakeFiles/prover_tests.dir/RationalTest.cpp.o" "gcc" "tests/prover/CMakeFiles/prover_tests.dir/RationalTest.cpp.o.d"
  "/root/repo/tests/prover/SatTest.cpp" "tests/prover/CMakeFiles/prover_tests.dir/SatTest.cpp.o" "gcc" "tests/prover/CMakeFiles/prover_tests.dir/SatTest.cpp.o.d"
  "/root/repo/tests/prover/SimplexTest.cpp" "tests/prover/CMakeFiles/prover_tests.dir/SimplexTest.cpp.o" "gcc" "tests/prover/CMakeFiles/prover_tests.dir/SimplexTest.cpp.o.d"
  "/root/repo/tests/prover/TheoryTest.cpp" "tests/prover/CMakeFiles/prover_tests.dir/TheoryTest.cpp.o" "gcc" "tests/prover/CMakeFiles/prover_tests.dir/TheoryTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prover/CMakeFiles/slam_prover.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/slam_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
