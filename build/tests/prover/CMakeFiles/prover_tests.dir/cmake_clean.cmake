file(REMOVE_RECURSE
  "CMakeFiles/prover_tests.dir/CongruenceClosureTest.cpp.o"
  "CMakeFiles/prover_tests.dir/CongruenceClosureTest.cpp.o.d"
  "CMakeFiles/prover_tests.dir/OracleSweepTest.cpp.o"
  "CMakeFiles/prover_tests.dir/OracleSweepTest.cpp.o.d"
  "CMakeFiles/prover_tests.dir/ProverTest.cpp.o"
  "CMakeFiles/prover_tests.dir/ProverTest.cpp.o.d"
  "CMakeFiles/prover_tests.dir/RationalTest.cpp.o"
  "CMakeFiles/prover_tests.dir/RationalTest.cpp.o.d"
  "CMakeFiles/prover_tests.dir/SatTest.cpp.o"
  "CMakeFiles/prover_tests.dir/SatTest.cpp.o.d"
  "CMakeFiles/prover_tests.dir/SimplexTest.cpp.o"
  "CMakeFiles/prover_tests.dir/SimplexTest.cpp.o.d"
  "CMakeFiles/prover_tests.dir/TheoryTest.cpp.o"
  "CMakeFiles/prover_tests.dir/TheoryTest.cpp.o.d"
  "prover_tests"
  "prover_tests.pdb"
  "prover_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prover_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
