# Empty compiler generated dependencies file for prover_tests.
# This may be replaced when dependencies are built.
