file(REMOVE_RECURSE
  "CMakeFiles/slam_tests.dir/CegarTest.cpp.o"
  "CMakeFiles/slam_tests.dir/CegarTest.cpp.o.d"
  "CMakeFiles/slam_tests.dir/InstrumentTest.cpp.o"
  "CMakeFiles/slam_tests.dir/InstrumentTest.cpp.o.d"
  "CMakeFiles/slam_tests.dir/NewtonTest.cpp.o"
  "CMakeFiles/slam_tests.dir/NewtonTest.cpp.o.d"
  "slam_tests"
  "slam_tests.pdb"
  "slam_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
