# Empty dependencies file for slam_tests.
# This may be replaced when dependencies are built.
