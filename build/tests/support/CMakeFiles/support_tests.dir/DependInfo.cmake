
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/DiagnosticsTest.cpp" "tests/support/CMakeFiles/support_tests.dir/DiagnosticsTest.cpp.o" "gcc" "tests/support/CMakeFiles/support_tests.dir/DiagnosticsTest.cpp.o.d"
  "/root/repo/tests/support/StatsTest.cpp" "tests/support/CMakeFiles/support_tests.dir/StatsTest.cpp.o" "gcc" "tests/support/CMakeFiles/support_tests.dir/StatsTest.cpp.o.d"
  "/root/repo/tests/support/StringExtrasTest.cpp" "tests/support/CMakeFiles/support_tests.dir/StringExtrasTest.cpp.o" "gcc" "tests/support/CMakeFiles/support_tests.dir/StringExtrasTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/slam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
