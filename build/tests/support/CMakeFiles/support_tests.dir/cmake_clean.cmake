file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/DiagnosticsTest.cpp.o"
  "CMakeFiles/support_tests.dir/DiagnosticsTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/StatsTest.cpp.o"
  "CMakeFiles/support_tests.dir/StatsTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/StringExtrasTest.cpp.o"
  "CMakeFiles/support_tests.dir/StringExtrasTest.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
