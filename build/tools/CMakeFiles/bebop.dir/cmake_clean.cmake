file(REMOVE_RECURSE
  "CMakeFiles/bebop.dir/bebop_main.cpp.o"
  "CMakeFiles/bebop.dir/bebop_main.cpp.o.d"
  "bebop"
  "bebop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bebop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
