# Empty dependencies file for bebop.
# This may be replaced when dependencies are built.
