file(REMOVE_RECURSE
  "CMakeFiles/c2bp.dir/c2bp_main.cpp.o"
  "CMakeFiles/c2bp.dir/c2bp_main.cpp.o.d"
  "c2bp"
  "c2bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
