# Empty dependencies file for c2bp.
# This may be replaced when dependencies are built.
