file(REMOVE_RECURSE
  "CMakeFiles/slam.dir/slam_main.cpp.o"
  "CMakeFiles/slam.dir/slam_main.cpp.o.d"
  "slam"
  "slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
