# Empty dependencies file for slam.
# This may be replaced when dependencies are built.
