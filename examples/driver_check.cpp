//===- driver_check.cpp - SLAM on device-driver models (Section 6.1) --------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The flagship application: checking the locking discipline on device
// drivers with the full iterative SLAM process. The `ioctl` model
// validates; the in-development `floppy` model contains the planted
// double-acquire, which the toolkit finds with a concrete error path.
//
//===----------------------------------------------------------------------===//

#include "slam/Cegar.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace slam;
using slamtool::SlamResult;

static const char *verdictName(SlamResult::Verdict V) {
  switch (V) {
  case SlamResult::Verdict::Validated:
    return "VALIDATED (the property holds)";
  case SlamResult::Verdict::BugFound:
    return "BUG FOUND (concrete error path)";
  case SlamResult::Verdict::Unknown:
    return "UNKNOWN";
  }
  return "?";
}

int main() {
  auto Drivers = workloads::table1Drivers();
  for (const workloads::DriverModel &M : Drivers) {
    if (M.Name != "floppy" && M.Name != "ioctl")
      continue;

    std::printf("=== %s (%u lines, property: %s) ===\n", M.Name.c_str(),
                M.SourceLines, M.Spec.Name.c_str());
    logic::LogicContext Ctx;
    DiagnosticEngine Diags;
    StatsRegistry Stats;
    slamtool::PipelineOptions Options;
    Options.C2bp.Cubes.MaxCubeLength = 3;
    auto R =
        slamtool::checkSafety(M.Source, M.Spec, Ctx, Diags, Options, &Stats);
    if (!R) {
      std::printf("failed:\n%s", Diags.str().c_str());
      return 1;
    }
    std::printf("verdict: %s\n", verdictName(R->V));
    std::printf("SLAM iterations: %d\n", R->Iterations);
    std::printf("predicates: %zu  prover calls: %llu\n",
                R->Predicates.totalCount(),
                static_cast<unsigned long long>(Stats.get("prover.calls")));

    if (R->V == SlamResult::Verdict::BugFound) {
      std::printf("error path (procedures entered):\n  ");
      std::string Last;
      for (const auto &Step : R->Trace) {
        if (Step.ProcName != Last)
          std::printf("%s -> ", Step.ProcName.c_str());
        Last = Step.ProcName;
      }
      std::printf("VIOLATION\n");
    }
    std::printf("\n");
  }
  return 0;
}
