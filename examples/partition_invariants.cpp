//===- partition_invariants.cpp - Figures 1(a)/(b) and Section 2.2 ----------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's running example end to end:
//
//   * Figure 1(b): the boolean program C2bp builds from the list
//     partition procedure and the four predicates;
//   * Section 2.2: the Bebop invariant at label L,
//       (curr != NULL) && (curr->val > v) &&
//       ((prev->val <= v) || (prev == NULL));
//   * the alias refinement: a decision procedure shows the invariant
//     implies *prev and *curr are never aliases at L — which no
//     flow-sensitive alias analysis can see, since none use the values
//     of fields to rule out aliasing.
//
//===----------------------------------------------------------------------===//

#include "bebop/Bebop.h"
#include "c2bp/C2bp.h"
#include "cfront/Normalize.h"
#include "logic/Parser.h"
#include "prover/Prover.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace slam;

int main() {
  const workloads::Workload &W = workloads::partitionWorkload();
  std::printf("== Figure 1(a): the C procedure ==\n%s\n",
              W.Source.c_str());
  std::printf("== Predicate input file ==\n%s\n", W.Predicates.c_str());

  DiagnosticEngine Diags;
  auto Program = cfront::frontend(W.Source, Diags);
  if (!Program) {
    std::printf("front end failed:\n%s", Diags.str().c_str());
    return 1;
  }

  logic::LogicContext Ctx;
  auto Preds = c2bp::parsePredicateFile(Ctx, W.Predicates, Diags);
  StatsRegistry Stats;
  auto BP =
      c2bp::abstractProgram(*Program, *Preds, Ctx, Diags, {}, &Stats);
  std::printf("== Figure 1(b): the boolean program ==\n%s\n",
              BP->str().c_str());

  bebop::Bebop Checker(*BP, &Stats);
  auto Result = Checker.run(W.Entry);
  std::printf("== Section 2.2: model checking ==\n");
  std::printf("assert violations: %s\n",
              Result.AssertViolated ? "yes" : "none");
  std::printf("invariant at label L:\n  %s\n\n",
              Checker.invariantAtLabel(W.Entry, "L").c_str());

  // The alias refinement. Every cube of the invariant must imply
  // prev != curr; a Nelson-Oppen prover decides each implication.
  std::printf("== Alias refinement (prev != curr at L) ==\n");
  prover::Prover P(Ctx);
  auto Cubes = Checker.reachableAtLabel(W.Entry, "L");
  bool AllImply = Cubes && !Cubes->empty();
  for (const auto &Cube : *Cubes) {
    std::vector<logic::ExprRef> Facts;
    for (const auto &[Name, Value] : Cube) {
      DiagnosticEngine D;
      logic::ExprRef E = logic::parseExpr(Ctx, Name, D);
      Facts.push_back(Value ? E : Ctx.notE(E));
    }
    logic::ExprRef State = Ctx.andE(Facts);
    logic::ExprRef Goal = Ctx.ne(Ctx.var("prev"), Ctx.var("curr"));
    bool Implies = P.implies(State, Goal) == prover::Validity::Valid;
    std::printf("  %s  =>  prev != curr : %s\n", State->str().c_str(),
                Implies ? "valid" : "NOT valid");
    AllImply &= Implies;
  }
  std::printf("\n*prev and *curr are %s aliases at L.\n",
              AllImply ? "never" : "possibly");
  std::printf("(theorem prover calls total: %llu)\n",
              static_cast<unsigned long long>(Stats.get("prover.calls")));
  return AllImply && !Result.AssertViolated ? 0 : 1;
}
