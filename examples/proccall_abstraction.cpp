//===- proccall_abstraction.cpp - Figure 2 and Section 4.5 ------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The modular procedure-call machinery: signatures (formal-parameter
// predicates E_f and return predicates E_r, Section 4.5.2) computed for
// Figure 2's `bar`, and the abstraction of `r = bar(p, x)` in `foo` —
// choose(...) actuals, return-value temporaries, and the post-call
// update of the caller's invalidated predicates.
//
//===----------------------------------------------------------------------===//

#include "alias/ModRef.h"
#include "c2bp/C2bp.h"
#include "c2bp/Signatures.h"
#include "cfront/Normalize.h"

#include <cstdio>

using namespace slam;

int main() {
  const char *Source = R"(
int bar(int *q, int y) {
  int l1, l2;
  if (*q > y) {
    *q = y;
  }
  l1 = y;
  l2 = y - 1;
  return l1;
}

void foo(int *p, int x) {
  int r;
  if (*p <= x) {
    *p = x;
  } else {
    *p = *p + x;
  }
  r = bar(p, x);
}
)";
  const char *Predicates = R"(
bar:
  y >= 0, *q <= y, y == l1, y > l2
foo:
  *p <= 0, x == 0, r == 0
)";

  std::printf("== Figure 2: the C procedures ==\n%s\n", Source);
  std::printf("== Predicates ==\n%s\n", Predicates);

  DiagnosticEngine Diags;
  auto Program = cfront::frontend(Source, Diags);
  if (!Program) {
    std::printf("front end failed:\n%s", Diags.str().c_str());
    return 1;
  }
  logic::LogicContext Ctx;
  auto Preds = c2bp::parsePredicateFile(Ctx, Predicates, Diags);

  // The signature of bar, computable in isolation (Section 4.5.2).
  alias::PointsTo PT(*Program);
  alias::ModRef MR(*Program, PT);
  c2bp::ProcSignature Sig = c2bp::computeSignature(
      Ctx, *Program, *Program->findFunction("bar"),
      Preds->forProc("bar"), PT, MR);
  std::printf("== Signature of bar ==\n");
  std::printf("return variable r: %s\n",
              Sig.RetVar ? Sig.RetVar->Name.c_str() : "<void>");
  std::printf("E_f (formal parameter predicates):\n");
  for (logic::ExprRef E : Sig.Formals)
    std::printf("  %s\n", E->str().c_str());
  std::printf("E_r (return predicates):\n");
  for (logic::ExprRef E : Sig.Returns)
    std::printf("  %s\n", E->str().c_str());

  // The full abstraction: bar' gets bool<|E_r|> returns; the call in
  // foo' passes choose(...) actuals and updates r == 0 and *p <= 0
  // from the returned temporaries.
  StatsRegistry Stats;
  auto BP =
      c2bp::abstractProgram(*Program, *Preds, Ctx, Diags, {}, &Stats);
  std::printf("\n== BP(P, E) ==\n%s", BP->str().c_str());
  std::printf("theorem prover calls: %llu\n",
              static_cast<unsigned long long>(Stats.get("prover.calls")));
  return 0;
}
