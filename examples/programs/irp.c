/* A driver-style dispatch routine following the IRP completion
   discipline: every request is either completed or marked pending,
   never both, with the choice correlated through the status value
   (refinement must discover `status == 0` to validate). */
void CompleteRequest() { }
void MarkPending() { }
int nondet();

void dispatch(int status) {
  if (status == 0) {
    CompleteRequest();
  } else {
    MarkPending();
  }
}

void main() {
  int status;
  status = nondet();
  dispatch(status);
}
