/* A small driver-style program following the locking discipline only
   when the flag correlation is understood (the classic SLAM example:
   refinement must discover `flag > 0`). */
void AcquireLock() { }
void ReleaseLock() { }
int nondet();

void main() {
  int flag;
  int work;
  flag = nondet();
  work = 0;
  if (flag > 0) {
    AcquireLock();
  }
  work = work + 1;
  if (flag > 0) {
    ReleaseLock();
  }
}
