/* The buggy variant: the release guard has the wrong polarity, so the
   lock can be released without having been acquired. */
void AcquireLock() { }
void ReleaseLock() { }
int nondet();

void main() {
  int flag;
  flag = nondet();
  if (flag > 0) {
    AcquireLock();
  }
  if (flag <= 0) {
    ReleaseLock();
  }
}
