/* Figure 1(a) of the paper: destructively partition a list around v. */
typedef struct cell {
  int val;
  struct cell* next;
} *list;

list partition(list *l, int v) {
  list curr, prev, newl, nextcurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextcurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL)
        prev->next = nextcurr;
      if (curr == *l)
        *l = nextcurr;
      curr->next = newl;
      L: newl = curr;
    } else {
      prev = curr;
    }
    curr = nextcurr;
  }
  return newl;
}
