//===- quickstart.cpp - Five-minute tour of the toolkit --------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The smallest end-to-end use of the library: abstract a C program with
// respect to two predicates (C2bp), model check the resulting boolean
// program (Bebop), and read off an invariant.
//
//===----------------------------------------------------------------------===//

#include "bebop/Bebop.h"
#include "c2bp/C2bp.h"
#include "cfront/Normalize.h"

#include <cstdio>

using namespace slam;

int main() {
  // 1. A C program. `lock` follows a strict acquire/release discipline
  //    guarded by a status flag.
  const char *Source = R"(
int lock;
void main() {
  int status;
  status = 0;
  lock = 1;
  if (status == 0) {
    status = 1;
  }
  lock = 0;
  DONE: assert(lock == 0);
}
)";

  // 2. Predicates to track (a predicate input file, Section 2.1).
  const char *Predicates = R"(
global:
  lock == 0
main:
  status == 0
)";

  std::printf("== The C program ==\n%s\n", Source);

  // 3. Front end: parse, check, normalize to the simple intermediate
  //    form of Section 4.
  DiagnosticEngine Diags;
  auto Program = cfront::frontend(Source, Diags);
  if (!Program) {
    std::printf("front end failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // 4. C2bp: build the boolean program BP(P, E).
  logic::LogicContext Ctx;
  auto Preds = c2bp::parsePredicateFile(Ctx, Predicates, Diags);
  if (!Preds) {
    std::printf("bad predicates:\n%s", Diags.str().c_str());
    return 1;
  }
  StatsRegistry Stats;
  auto BP =
      c2bp::abstractProgram(*Program, *Preds, Ctx, Diags, {}, &Stats);
  std::printf("== BP(P, E), the boolean program ==\n%s\n",
              BP->str().c_str());
  std::printf("theorem prover calls during abstraction: %llu\n\n",
              static_cast<unsigned long long>(Stats.get("prover.calls")));

  // 5. Bebop: reachable states by interprocedural BDD dataflow.
  bebop::Bebop Checker(*BP);
  auto Result = Checker.run("main");
  std::printf("== Bebop ==\nassert violated: %s\n",
              Result.AssertViolated ? "yes" : "no");
  std::printf("invariant at label DONE: %s\n",
              Checker.invariantAtLabel("main", "DONE").c_str());
  return Result.AssertViolated ? 1 : 0;
}
