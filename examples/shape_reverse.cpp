//===- shape_reverse.cpp - Figure 3 and the no-spurious-errors guarantee ----===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Figure 3's mark procedure traverses a list twice, reversing and then
// restoring the next pointers; the auxiliary variables h and hnext
// witness that the shape is preserved (h->next == hnext at the end).
//
// This example also demonstrates the SLAM toolkit's central guarantee:
// it NEVER reports a spurious error path. When the abstraction over the
// paper's seven predicates admits an abstract violation of the shape
// property, Newton's symbolic replay shows the abstract path is not
// concretely executable, so nothing is reported to the user — instead
// new predicates are proposed for refinement.
//
//===----------------------------------------------------------------------===//

#include "bebop/Bebop.h"
#include "c2bp/C2bp.h"
#include "cfront/Normalize.h"
#include "prover/Prover.h"
#include "slam/Newton.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace slam;

int main() {
  const workloads::Workload &W = workloads::reverseWorkload();
  std::printf("== Figure 3: list traversal using back pointers ==\n%s\n",
              W.Source.c_str());
  std::printf("== Predicates (the paper's seven) ==\n%s\n",
              W.Predicates.c_str());

  DiagnosticEngine Diags;
  auto Program = cfront::frontend(W.Source, Diags);
  if (!Program) {
    std::printf("front end failed:\n%s", Diags.str().c_str());
    return 1;
  }
  logic::LogicContext Ctx;
  auto Preds = c2bp::parsePredicateFile(Ctx, W.Predicates, Diags);
  StatsRegistry Stats;
  c2bp::C2bpOptions Options;
  Options.Cubes.MaxCubeLength = 3; // The paper's practical k.
  auto BP = c2bp::abstractProgram(*Program, *Preds, Ctx, Diags, Options,
                                  &Stats);
  std::printf("abstraction: %llu theorem prover calls\n\n",
              static_cast<unsigned long long>(Stats.get("prover.calls")));

  bebop::Bebop Checker(*BP);
  auto Result = Checker.run(W.Entry);
  if (!Result.AssertViolated) {
    std::printf("Bebop: h->next == hnext holds at L — shape preserved.\n");
    return 0;
  }

  std::printf("Bebop: found an ABSTRACT violation of h->next == hnext\n");
  std::printf("       (a path over %zu statements).\n\n",
              Result.Trace.size());

  // The toolkit detects spurious paths instead of reporting them.
  prover::Prover P(Ctx);
  auto NR = slamtool::analyzeTrace(*Program, Result.Trace, Ctx, P, *Preds);
  if (NR.Feasible) {
    std::printf("Newton: the path is concretely executable — a real "
                "bug (unexpected!).\n");
    return 1;
  }
  std::printf("Newton: the abstract path is NOT concretely executable; "
              "no error is reported.\n");
  std::printf("Predicates proposed for the next refinement round:\n");
  for (const auto &[Proc, V] : NR.NewPreds.PerProc)
    for (logic::ExprRef E : V)
      std::printf("  %s: %s\n", Proc.c_str(), E->str().c_str());
  for (logic::ExprRef E : NR.NewPreds.Globals)
    std::printf("  global: %s\n", E->str().c_str());
  return 0;
}
