//===- ModRef.cpp -----------------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "alias/ModRef.h"

#include "support/Trace.h"

using namespace slam;
using namespace slam::alias;
using namespace slam::cfront;

void ModRef::collectDirect(const FuncDecl *F, const Stmt &S,
                           std::set<int> &Out) const {
  if (S.Kind == CStmtKind::Assign || (S.Kind == CStmtKind::CallStmt && S.Lhs)) {
    for (int C : PT.locationCells(*S.Lhs))
      Out.insert(C);
  }
  for (const Stmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
    if (Sub)
      collectDirect(F, *Sub, Out);
  for (const Stmt *Sub : S.Stmts)
    collectDirect(F, *Sub, Out);
}

ModRef::ModRef(const Program &P, const PointsTo &PT) : PT(PT) {
  TraceSpan Span("alias.modref", "alias");
  // Direct modifications per function; externs may write anything
  // reachable from their pointer parameters.
  for (const FuncDecl *F : P.Functions) {
    std::set<int> Direct;
    if (F->Body) {
      collectDirect(F, *F->Body, Direct);
    } else {
      for (const VarDecl *Param : F->Params) {
        if (!Param->Ty->isPointer())
          continue;
        // Everything reachable from the parameter.
        std::set<int> Frontier = PT.pointsToSet(*Param);
        std::set<int> Seen;
        while (!Frontier.empty()) {
          int C = *Frontier.begin();
          Frontier.erase(Frontier.begin());
          if (!Seen.insert(C).second)
            continue;
          Direct.insert(C);
          for (int T : PT.pts(C))
            Frontier.insert(T);
          // Fields of a record cell: conservatively include all field
          // cells of its record type.
          const Cell &Cl = PT.cell(C);
          if (Cl.Ty && Cl.Ty->isRecord())
            for (const auto &Fld : Cl.Ty->record()->Fields) {
              int FC = PT.fieldCell(Cl.Ty->record(), Fld.Name);
              if (FC >= 0)
                Frontier.insert(FC);
            }
        }
      }
    }
    Mods.emplace(F, std::move(Direct));
  }

  // Add callee effects transitively (the call graph may be cyclic).
  auto CollectCalls = [](const FuncDecl *F, auto &&Self,
                         const Stmt &S, std::set<const FuncDecl *> &Out) -> void {
    (void)F;
    if (S.Kind == CStmtKind::CallStmt)
      Out.insert(S.CallE->Callee);
    for (const Stmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
      if (Sub)
        Self(F, Self, *Sub, Out);
    for (const Stmt *Sub : S.Stmts)
      Self(F, Self, *Sub, Out);
  };

  std::map<const FuncDecl *, std::set<const FuncDecl *>> Callees;
  for (const FuncDecl *F : P.Functions) {
    std::set<const FuncDecl *> Out;
    if (F->Body)
      CollectCalls(F, CollectCalls, *F->Body, Out);
    Callees.emplace(F, std::move(Out));
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const FuncDecl *F : P.Functions) {
      std::set<int> &M = Mods[F];
      size_t Before = M.size();
      for (const FuncDecl *Callee : Callees[F])
        M.insert(Mods[Callee].begin(), Mods[Callee].end());
      Changed |= M.size() != Before;
    }
  }

  // Keep variable cells even when they name some function's locals: a
  // caller's own local can genuinely be written by a callee through an
  // escaped address, and distinct declarations have distinct cells, so
  // callee-local cells never collide with caller predicates. Only the
  // analysis-internal temporaries are dropped.
  for (const FuncDecl *F : P.Functions) {
    std::set<int> Filtered;
    for (int C : Mods[F])
      if (PT.cell(C).K != Cell::Kind::Temp)
        Filtered.insert(C);
    Mods[F] = std::move(Filtered);
  }
}

const std::set<int> &ModRef::mod(const FuncDecl *F) const {
  auto It = Mods.find(F);
  return It == Mods.end() ? Empty : It->second;
}
