//===- ModRef.h - Modification side-effect summaries ------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-procedure summaries of the abstract cells a call may modify — the
/// "standard modification side-effect analysis [24]" the paper relies on
/// when abstracting procedure calls (Section 4.5.3): after a call, the
/// caller must conservatively update every local predicate that mentions
/// a location the callee may have written.
///
//===----------------------------------------------------------------------===//

#ifndef ALIAS_MODREF_H
#define ALIAS_MODREF_H

#include "alias/PointsTo.h"

namespace slam {
namespace alias {

/// Transitive may-modify cell sets, one per function.
class ModRef {
public:
  ModRef(const cfront::Program &P, const PointsTo &PT);

  /// Cells that a call to \p F may modify (excluding F's own locals,
  /// which are invisible to callers, but including globals, fields,
  /// array elements and anonymous heap cells).
  const std::set<int> &mod(const cfront::FuncDecl *F) const;

private:
  void collectDirect(const cfront::FuncDecl *F, const cfront::Stmt &S,
                     std::set<int> &Out) const;

  const PointsTo &PT;
  std::map<const cfront::FuncDecl *, std::set<int>> Mods;
  std::set<int> Empty;
};

} // namespace alias
} // namespace slam

#endif // ALIAS_MODREF_H
