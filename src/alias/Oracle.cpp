//===- Oracle.cpp -----------------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "alias/Oracle.h"

using namespace slam;
using namespace slam::alias;
using namespace slam::cfront;
using logic::AliasResult;
using logic::ExprKind;
using logic::ExprRef;

const VarDecl *ProgramAliasOracle::resolve(const std::string &Name) const {
  if (Func)
    if (VarDecl *V = Func->findLocalOrParam(Name))
      return V;
  return P.findGlobal(Name);
}

const Type *ProgramAliasOracle::typeOf(ExprRef E) const {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return P.Types.intType();
  case ExprKind::NullLit:
    return nullptr; // Polymorphic; callers treat null as "unknown".
  case ExprKind::Var: {
    const VarDecl *V = resolve(E->name());
    return V ? V->Ty : nullptr;
  }
  case ExprKind::Deref: {
    const Type *T = typeOf(E->op(0));
    return T && T->isPointer() ? T->pointee() : nullptr;
  }
  case ExprKind::Field: {
    const Type *Base = typeOf(E->op(0));
    if (!Base || !Base->isRecord())
      return nullptr;
    const RecordDecl::Field *F = Base->record()->findField(E->name());
    return F ? F->Ty : nullptr;
  }
  case ExprKind::Index: {
    const Type *Base = typeOf(E->op(0));
    if (!Base)
      return nullptr;
    if (Base->isArray())
      return Base->elementType();
    if (Base->isPointer())
      return Base->pointee();
    return nullptr;
  }
  case ExprKind::AddrOf: {
    const Type *T = typeOf(E->op(0));
    // typeOf is used for equality pruning only, so interning through a
    // const TypeContext is not possible; report unknown instead.
    (void)T;
    return nullptr;
  }
  case ExprKind::Neg:
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
  case ExprKind::Div:
  case ExprKind::Mod: {
    // Pointer arithmetic keeps the pointer type (logical model).
    const Type *L = typeOf(E->op(0));
    if (L && L->isPointer())
      return L;
    if (E->numOperands() > 1) {
      const Type *R = typeOf(E->op(1));
      if (R && R->isPointer())
        return R;
    }
    return P.Types.intType();
  }
  default:
    return nullptr;
  }
}

std::optional<std::set<int>>
ProgramAliasOracle::valueCellsOf(ExprRef Ptr) const {
  switch (Ptr->kind()) {
  case ExprKind::NullLit:
    return std::set<int>{};
  case ExprKind::AddrOf:
    return cellsOf(Ptr->op(0));
  case ExprKind::Var:
  case ExprKind::Deref:
  case ExprKind::Field:
  case ExprKind::Index: {
    auto Cells = cellsOf(Ptr);
    if (!Cells)
      return std::nullopt;
    std::set<int> Out;
    for (int C : *Cells)
      Out.insert(PT.pts(C).begin(), PT.pts(C).end());
    return Out;
  }
  case ExprKind::Add:
  case ExprKind::Sub: {
    // Pointer arithmetic points into the same object.
    const Type *L = typeOf(Ptr->op(0));
    if (L && L->isPointer())
      return valueCellsOf(Ptr->op(0));
    if (Ptr->numOperands() > 1)
      return valueCellsOf(Ptr->op(1));
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

std::optional<std::set<int>> ProgramAliasOracle::cellsOf(ExprRef Loc) const {
  switch (Loc->kind()) {
  case ExprKind::Var: {
    const VarDecl *V = resolve(Loc->name());
    if (!V)
      return std::nullopt;
    int C = PT.varCell(V);
    if (C < 0)
      return std::nullopt;
    return std::set<int>{C};
  }
  case ExprKind::Field: {
    const Type *Base = typeOf(Loc->op(0));
    if (!Base || !Base->isRecord())
      return std::nullopt;
    int C = PT.fieldCell(Base->record(), Loc->name());
    if (C < 0)
      return std::nullopt;
    return std::set<int>{C};
  }
  case ExprKind::Deref:
    return valueCellsOf(Loc->op(0));
  case ExprKind::Index: {
    const Type *Base = typeOf(Loc->op(0));
    if (Base && Base->isArray() && Loc->op(0)->kind() == ExprKind::Var) {
      const VarDecl *V = resolve(Loc->op(0)->name());
      int C = V ? PT.elemCell(V) : -1;
      if (C < 0)
        return std::nullopt;
      return std::set<int>{C};
    }
    return valueCellsOf(Loc->op(0));
  }
  default:
    return std::nullopt;
  }
}

AliasResult ProgramAliasOracle::alias(ExprRef A, ExprRef B) const {
  // The purely syntactic rules are sound and already handle must-alias
  // and the variable/field/array shape distinctions.
  AliasResult ByShape = Shape.alias(A, B);
  if (ByShape != AliasResult::MayAlias)
    return ByShape;

  // Cells of different static types never overlap in SIL-C (there are
  // no unions or casts).
  const Type *TA = typeOf(A), *TB = typeOf(B);
  if (TA && TB && TA != TB)
    return AliasResult::NoAlias;

  auto CA = cellsOf(A), CB = cellsOf(B);
  if (CA && CB) {
    bool Overlap = false;
    for (int C : *CA)
      if (CB->count(C)) {
        Overlap = true;
        break;
      }
    if (!Overlap)
      return AliasResult::NoAlias;
  }
  return AliasResult::MayAlias;
}
