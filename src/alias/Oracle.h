//===- Oracle.h - Points-to-backed alias oracle -----------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the points-to analysis into the logic layer: answers
/// may/must-alias queries about predicate locations (logic::Expr) in the
/// scope of one procedure, using declaration types and abstract cells.
/// This is the component that lets C2bp prune Morris-axiom disjuncts
/// (Section 4.2) — e.g. in Figure 1, none of curr/prev/newl/nextcurr is
/// address-taken, so no assignment through a pointer can affect them.
///
//===----------------------------------------------------------------------===//

#ifndef ALIAS_ORACLE_H
#define ALIAS_ORACLE_H

#include "alias/PointsTo.h"
#include "logic/AliasOracle.h"

#include <optional>

namespace slam {
namespace alias {

/// A logic::AliasOracle for predicates local to one procedure (or
/// global, with Func == nullptr).
class ProgramAliasOracle : public logic::AliasOracle {
public:
  ProgramAliasOracle(const PointsTo &PT, const cfront::Program &P,
                     const cfront::FuncDecl *Func)
      : PT(PT), P(P), Func(Func) {}

  logic::AliasResult alias(logic::ExprRef A,
                           logic::ExprRef B) const override;

  /// Static type of a predicate-language term, or nullptr when it
  /// mentions names unknown to the program (auxiliary predicate
  /// variables are treated conservatively).
  const cfront::Type *typeOf(logic::ExprRef E) const;

  /// Abstract cells a predicate location may denote; nullopt when
  /// unresolvable.
  std::optional<std::set<int>> cellsOf(logic::ExprRef Loc) const;

private:
  const cfront::VarDecl *resolve(const std::string &Name) const;
  std::optional<std::set<int>> valueCellsOf(logic::ExprRef Ptr) const;

  const PointsTo &PT;
  const cfront::Program &P;
  const cfront::FuncDecl *Func;
  logic::ShapeAliasOracle Shape;
};

} // namespace alias
} // namespace slam

#endif // ALIAS_ORACLE_H
