//===- PointsTo.cpp - Inclusion/unification constraint solving -------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "alias/PointsTo.h"

#include "support/Trace.h"

using namespace slam;
using namespace slam::alias;
using namespace slam::cfront;

std::string Cell::str() const {
  switch (K) {
  case Kind::Var:
    return Var->Name;
  case Kind::Field:
    return Record->Name + "." + FieldName;
  case Kind::Elem:
    return Var->Name + "[]";
  case Kind::Ret:
    return "ret:" + Func->Name;
  case Kind::Anon:
    return "<anon " + Ty->str() + ">";
  case Kind::Temp:
    return "<temp>";
  }
  return "<cell>";
}

int PointsTo::makeVarCell(const VarDecl *V) {
  auto It = VarCells.find(V);
  if (It != VarCells.end())
    return It->second;
  int Id = static_cast<int>(Cells.size());
  Cell C;
  C.K = Cell::Kind::Var;
  C.Var = V;
  C.Ty = V->Ty;
  Cells.push_back(C);
  VarCells.emplace(V, Id);
  growTables();
  return Id;
}

int PointsTo::makeFieldCell(const RecordDecl *Rec, const std::string &F) {
  auto Key = std::make_pair(Rec, F);
  auto It = FieldCells.find(Key);
  if (It != FieldCells.end())
    return It->second;
  int Id = static_cast<int>(Cells.size());
  Cell C;
  C.K = Cell::Kind::Field;
  C.Record = Rec;
  C.FieldName = F;
  if (const RecordDecl::Field *FD = Rec->findField(F))
    C.Ty = FD->Ty;
  Cells.push_back(C);
  FieldCells.emplace(Key, Id);
  growTables();
  return Id;
}

int PointsTo::makeElemCell(const VarDecl *V) {
  auto It = ElemCells.find(V);
  if (It != ElemCells.end())
    return It->second;
  int Id = static_cast<int>(Cells.size());
  Cell C;
  C.K = Cell::Kind::Elem;
  C.Var = V;
  if (V->Ty->isArray())
    C.Ty = V->Ty->elementType();
  Cells.push_back(C);
  ElemCells.emplace(V, Id);
  growTables();
  return Id;
}

int PointsTo::makeRetCell(const FuncDecl *F) {
  auto It = RetCells.find(F);
  if (It != RetCells.end())
    return It->second;
  int Id = static_cast<int>(Cells.size());
  Cell C;
  C.K = Cell::Kind::Ret;
  C.Func = F;
  C.Ty = F->ReturnTy;
  Cells.push_back(C);
  RetCells.emplace(F, Id);
  growTables();
  return Id;
}

int PointsTo::makeAnonCell(const Type *Ty) {
  auto It = AnonCells.find(Ty);
  if (It != AnonCells.end())
    return It->second;
  int Id = static_cast<int>(Cells.size());
  Cell C;
  C.K = Cell::Kind::Anon;
  C.Ty = Ty;
  Cells.push_back(C);
  AnonCells.emplace(Ty, Id);
  growTables();
  return Id;
}

/// Open-program soundness: a pointer cell whose targets all come from
/// outside the analyzed code (parameters, struct fields linked by the
/// caller, extern results) must point to *something*. Every typed
/// pointer cell receives an anonymous per-type target, transitively.
void PointsTo::seedBoundaryCells() {
  for (int I = 0; I != static_cast<int>(Cells.size()); ++I) {
    const Cell &C = Cells[I];
    if (C.K == Cell::Kind::Temp || !C.Ty || !C.Ty->isPointer())
      continue;
    int Target = makeAnonCell(C.Ty->pointee());
    Pts[I].insert(Target);
    AddressTakenCells.insert(Target);
  }
}

int PointsTo::makeTempCell() {
  int Id = static_cast<int>(Cells.size());
  Cell C;
  C.K = Cell::Kind::Temp;
  Cells.push_back(C);
  growTables();
  return Id;
}

void PointsTo::growTables() {
  if (Pts.size() < Cells.size()) {
    Pts.resize(Cells.size());
    CopyEdges.resize(Cells.size());
  }
}

int PointsTo::varCell(const VarDecl *V) const {
  auto It = VarCells.find(V);
  return It == VarCells.end() ? -1 : It->second;
}

int PointsTo::fieldCell(const RecordDecl *Rec, const std::string &F) const {
  auto It = FieldCells.find(std::make_pair(Rec, F));
  return It == FieldCells.end() ? -1 : It->second;
}

int PointsTo::elemCell(const VarDecl *V) const {
  auto It = ElemCells.find(V);
  return It == ElemCells.end() ? -1 : It->second;
}

int PointsTo::retCell(const FuncDecl *F) const {
  auto It = RetCells.find(F);
  return It == RetCells.end() ? -1 : It->second;
}

void PointsTo::addCopy(int From, int To) {
  if (From < 0 || To < 0 || From == To)
    return;
  CopyEdges[From].insert(To);
  // Das and Steensgaard do not distinguish direction below the top
  // level; Steensgaard merges even top-level flows. Copy edges created
  // by loads/stores are added through addLoad/addStore, so a symmetric
  // top-level flow only occurs in Steensgaard mode.
  if (M == Mode::Steensgaard)
    CopyEdges[To].insert(From);
}

void PointsTo::addLoad(int Dst, int Ptr) {
  if (Dst < 0 || Ptr < 0)
    return;
  Loads.emplace_back(Dst, Ptr);
  // One-level flow / unification: reading through a pointer also merges
  // backwards.
  if (M != Mode::Andersen)
    Stores.emplace_back(Ptr, Dst);
}

void PointsTo::addStore(int Ptr, int Src) {
  if (Ptr < 0 || Src < 0)
    return;
  Stores.emplace_back(Ptr, Src);
  if (M != Mode::Andersen)
    Loads.emplace_back(Src, Ptr);
}

void PointsTo::addAddressOf(int Ptr, int Target) {
  if (Ptr < 0 || Target < 0)
    return;
  Pts[Ptr].insert(Target); // Pts is sized before constraint generation.
  AddressTakenCells.insert(Target);
}

namespace {

/// Walks the normalized program and generates constraints.
class Builder {
public:
  Builder(PointsTo &PT, const Program &P) : PT(PT), P(P) {}

  void run();

private:
  PointsTo &PT;
  const Program &P;
  const FuncDecl *F = nullptr;

  void genStmt(const Stmt &S);
  void genAssign(const Expr &Lhs, const Expr &Rhs);
  void genCall(const Stmt &S);

  /// A cell whose points-to set equals the value of \p E (pointers
  /// only; integer expressions yield a fresh empty cell).
  int valueCell(const Expr &E);

  /// Cells an lvalue denotes.
  std::vector<int> lvalueCells(const Expr &E);

  friend class ::slam::alias::PointsTo;
};

void Builder::run() {
  for (const FuncDecl *Func : P.Functions) {
    F = Func;
    if (Func->Body) {
      genStmt(*Func->Body);
      continue;
    }
    // Extern function: conservatively let every pointer parameter reach
    // every other and the return value.
    int Ret = PT.makeRetCell(Func);
    for (const VarDecl *A : Func->Params) {
      if (!A->Ty->isPointer())
        continue;
      int CA = PT.makeVarCell(A);
      PT.addCopy(CA, Ret);
      PT.addCopy(Ret, CA);
      for (const VarDecl *B : Func->Params) {
        if (B == A || !B->Ty->isPointer())
          continue;
        PT.addStore(CA, PT.makeVarCell(B));
      }
    }
  }
  F = nullptr;
}

void Builder::genStmt(const Stmt &S) {
  switch (S.Kind) {
  case CStmtKind::Assign:
    genAssign(*S.Lhs, *S.Rhs);
    break;
  case CStmtKind::CallStmt:
    genCall(S);
    break;
  case CStmtKind::Return:
    if (S.Rhs && S.Rhs->Ty && S.Rhs->Ty->isPointer())
      PT.addCopy(valueCell(*S.Rhs), PT.makeRetCell(F));
    break;
  default:
    break;
  }
  for (const Stmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
    if (Sub)
      genStmt(*Sub);
  for (const Stmt *Sub : S.Stmts)
    genStmt(*Sub);
}

int Builder::valueCell(const Expr &E) {
  switch (E.Kind) {
  case CExprKind::VarRef:
    return PT.makeVarCell(E.Var);
  case CExprKind::Member: {
    // Normalized: the base of -> is a variable; a dot base is a struct
    // variable. Field-based abstraction: one cell per (record, field).
    const Type *BaseTy = E.Ops[0]->Ty;
    const RecordDecl *Rec =
        E.IsArrow ? BaseTy->pointee()->record() : BaseTy->record();
    return PT.makeFieldCell(Rec, E.FieldName);
  }
  case CExprKind::Index: {
    const Expr &Base = *E.Ops[0];
    if (Base.Ty->isArray())
      return PT.makeElemCell(Base.Var);
    int T = PT.makeTempCell();
    PT.addLoad(T, PT.makeVarCell(Base.Var));
    return T;
  }
  case CExprKind::Unary:
    if (E.UOp == UnaryOp::Deref) {
      int T = PT.makeTempCell();
      PT.addLoad(T, valueCell(*E.Ops[0]));
      return T;
    }
    if (E.UOp == UnaryOp::AddrOf) {
      const Expr &L = *E.Ops[0];
      // Under the logical memory model &*p == p and &p[i] == p.
      if (L.Kind == CExprKind::Unary && L.UOp == UnaryOp::Deref)
        return valueCell(*L.Ops[0]);
      if (L.Kind == CExprKind::Index && !L.Ops[0]->Ty->isArray())
        return valueCell(*L.Ops[0]);
      int T = PT.makeTempCell();
      for (int C : lvalueCells(L))
        PT.addAddressOf(T, C);
      return T;
    }
    return PT.makeTempCell();
  case CExprKind::Binary: {
    // Pointer arithmetic points into the same object (logical model).
    if (E.Ty && E.Ty->isPointer()) {
      if (E.Ops[0]->Ty && E.Ops[0]->Ty->isPointer())
        return valueCell(*E.Ops[0]);
      if (E.Ops[1]->Ty && E.Ops[1]->Ty->isPointer())
        return valueCell(*E.Ops[1]);
    }
    return PT.makeTempCell();
  }
  default:
    return PT.makeTempCell();
  }
}

std::vector<int> Builder::lvalueCells(const Expr &E) {
  switch (E.Kind) {
  case CExprKind::VarRef:
    return {PT.makeVarCell(E.Var)};
  case CExprKind::Member: {
    const Type *BaseTy = E.Ops[0]->Ty;
    const RecordDecl *Rec =
        E.IsArrow ? BaseTy->pointee()->record() : BaseTy->record();
    return {PT.makeFieldCell(Rec, E.FieldName)};
  }
  case CExprKind::Index: {
    const Expr &Base = *E.Ops[0];
    if (Base.Ty->isArray())
      return {PT.makeElemCell(Base.Var)};
    // Through a pointer: the pointed-to cells.
    std::vector<int> Out;
    int T = PT.makeTempCell();
    PT.addLoad(T, PT.makeVarCell(Base.Var));
    Out.push_back(T);
    return Out;
  }
  case CExprKind::Unary:
    if (E.UOp == UnaryOp::Deref) {
      // Dereference target: model as store-through below; callers that
      // need the pointer use valueCell of the operand.
      return {};
    }
    return {};
  default:
    return {};
  }
}

void Builder::genAssign(const Expr &Lhs, const Expr &Rhs) {
  if (!Lhs.Ty || !Lhs.Ty->isPointer())
    return; // Only pointer flows constrain the analysis.
  int Val = valueCell(Rhs);
  switch (Lhs.Kind) {
  case CExprKind::VarRef:
    PT.addCopy(Val, PT.makeVarCell(Lhs.Var));
    break;
  case CExprKind::Member: {
    const Type *BaseTy = Lhs.Ops[0]->Ty;
    const RecordDecl *Rec =
        Lhs.IsArrow ? BaseTy->pointee()->record() : BaseTy->record();
    PT.addCopy(Val, PT.makeFieldCell(Rec, Lhs.FieldName));
    break;
  }
  case CExprKind::Index: {
    const Expr &Base = *Lhs.Ops[0];
    if (Base.Ty->isArray())
      PT.addCopy(Val, PT.makeElemCell(Base.Var));
    else
      PT.addStore(PT.makeVarCell(Base.Var), Val);
    break;
  }
  case CExprKind::Unary:
    assert(Lhs.UOp == UnaryOp::Deref && "lvalue unary must be deref");
    PT.addStore(valueCell(*Lhs.Ops[0]), Val);
    break;
  default:
    break;
  }
}

void Builder::genCall(const Stmt &S) {
  const Expr &Call = *S.CallE;
  const FuncDecl *Callee = Call.Callee;
  for (size_t I = 0; I != Call.Ops.size() && I != Callee->Params.size();
       ++I) {
    if (Callee->Params[I]->Ty->isPointer())
      PT.addCopy(valueCell(*Call.Ops[I]),
                 PT.makeVarCell(Callee->Params[I]));
  }
  if (S.Lhs && S.Lhs->Ty && S.Lhs->Ty->isPointer()) {
    int Ret = PT.makeRetCell(Callee);
    // Reuse assignment logic with the return cell as the value.
    switch (S.Lhs->Kind) {
    case CExprKind::VarRef:
      PT.addCopy(Ret, PT.makeVarCell(S.Lhs->Var));
      break;
    case CExprKind::Member: {
      const Type *BaseTy = S.Lhs->Ops[0]->Ty;
      const RecordDecl *Rec = S.Lhs->IsArrow ? BaseTy->pointee()->record()
                                             : BaseTy->record();
      PT.addCopy(Ret, PT.makeFieldCell(Rec, S.Lhs->FieldName));
      break;
    }
    case CExprKind::Unary:
      PT.addStore(valueCell(*S.Lhs->Ops[0]), Ret);
      break;
    case CExprKind::Index: {
      const Expr &Base = *S.Lhs->Ops[0];
      if (Base.Ty->isArray())
        PT.addCopy(Ret, PT.makeElemCell(Base.Var));
      else
        PT.addStore(PT.makeVarCell(Base.Var), Ret);
      break;
    }
    default:
      break;
    }
  }
}

} // namespace

PointsTo::PointsTo(const Program &P, Mode M) : M(M) {
  TraceSpan Span("alias.points_to", "alias");
  // Pre-create field cells for every record so oracle queries about
  // fields the program never touches still resolve.
  for (const RecordDecl *Rec : P.Types.allRecords())
    for (const auto &F : Rec->Fields)
      makeFieldCell(Rec, F.Name);
  // Pre-create cells for every declared variable so queries never miss.
  for (const VarDecl *G : P.Globals) {
    makeVarCell(G);
    if (G->Ty->isArray())
      makeElemCell(G);
  }
  for (const FuncDecl *F : P.Functions) {
    for (const VarDecl *V : F->Params)
      makeVarCell(V);
    for (const VarDecl *V : F->Locals) {
      makeVarCell(V);
      if (V->Ty->isArray())
        makeElemCell(V);
    }
    if (!F->ReturnTy->isVoid())
      makeRetCell(F);
  }

  growTables();
  Builder B(*this, P);
  B.run();
  growTables();
  seedBoundaryCells();
  solve();
}

void PointsTo::solve() {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Loads/stores generate copy edges as points-to sets grow.
    size_t NumLoads = Loads.size(), NumStores = Stores.size();
    for (size_t I = 0; I != NumLoads; ++I) {
      auto [Dst, Ptr] = Loads[I];
      for (int T : Pts[Ptr])
        if (CopyEdges[T].insert(Dst).second)
          Changed = true;
    }
    for (size_t I = 0; I != NumStores; ++I) {
      auto [Ptr, Src] = Stores[I];
      for (int T : Pts[Ptr])
        if (CopyEdges[Src].insert(T).second)
          Changed = true;
    }
    for (int From = 0; From != static_cast<int>(CopyEdges.size()); ++From) {
      for (int To : CopyEdges[From]) {
        for (int T : Pts[From])
          if (Pts[To].insert(T).second)
            Changed = true;
      }
    }
  }
}

std::set<int> PointsTo::locationCells(const Expr &Lvalue) const {
  switch (Lvalue.Kind) {
  case CExprKind::VarRef:
    return {varCell(Lvalue.Var)};
  case CExprKind::Member: {
    const Type *BaseTy = Lvalue.Ops[0]->Ty;
    const RecordDecl *Rec = Lvalue.IsArrow ? BaseTy->pointee()->record()
                                           : BaseTy->record();
    int C = fieldCell(Rec, Lvalue.FieldName);
    return C < 0 ? std::set<int>{} : std::set<int>{C};
  }
  case CExprKind::Index: {
    const Expr &Base = *Lvalue.Ops[0];
    if (Base.Ty->isArray()) {
      int C = elemCell(Base.Var);
      return C < 0 ? std::set<int>{} : std::set<int>{C};
    }
    return valueCells(Base);
  }
  case CExprKind::Unary:
    if (Lvalue.UOp == UnaryOp::Deref)
      return valueCells(*Lvalue.Ops[0]);
    return {};
  default:
    return {};
  }
}

std::set<int> PointsTo::valueCells(const Expr &PtrExpr) const {
  switch (PtrExpr.Kind) {
  case CExprKind::VarRef: {
    int C = varCell(PtrExpr.Var);
    return C < 0 ? std::set<int>{} : Pts[C];
  }
  case CExprKind::Unary:
    if (PtrExpr.UOp == UnaryOp::AddrOf)
      return locationCells(*PtrExpr.Ops[0]);
    if (PtrExpr.UOp == UnaryOp::Deref) {
      std::set<int> Out;
      for (int C : valueCells(*PtrExpr.Ops[0]))
        Out.insert(Pts[C].begin(), Pts[C].end());
      return Out;
    }
    return {};
  case CExprKind::Member:
  case CExprKind::Index: {
    std::set<int> Out;
    for (int C : locationCells(PtrExpr))
      Out.insert(Pts[C].begin(), Pts[C].end());
    return Out;
  }
  case CExprKind::Binary:
    if (PtrExpr.Ops[0]->Ty && PtrExpr.Ops[0]->Ty->isPointer())
      return valueCells(*PtrExpr.Ops[0]);
    if (PtrExpr.Ops.size() > 1 && PtrExpr.Ops[1]->Ty &&
        PtrExpr.Ops[1]->Ty->isPointer())
      return valueCells(*PtrExpr.Ops[1]);
    return {};
  default:
    return {};
  }
}

bool PointsTo::mayAlias(const Expr &A, const Expr &B) const {
  std::set<int> CA = locationCells(A), CB = locationCells(B);
  for (int C : CA)
    if (CB.count(C))
      return true;
  return false;
}

bool PointsTo::isAddressTaken(const VarDecl &V) const {
  int C = varCell(&V);
  if (C < 0)
    return false;
  if (AddressTakenCells.count(C))
    return true;
  // The cell may also be reachable as a points-to target.
  for (const std::set<int> &S : Pts)
    if (S.count(C))
      return true;
  return false;
}

const std::set<int> &PointsTo::pointsToSet(const VarDecl &V) const {
  static const std::set<int> Empty;
  int C = varCell(&V);
  return C < 0 ? Empty : Pts[C];
}
