//===- PointsTo.h - Flow-insensitive points-to analysis ---------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow-insensitive, context-insensitive may-point-to analysis over the
/// normalized program — the role Das's one-level-flow algorithm [12]
/// plays in the paper. Three precision modes are provided:
///
///   * Andersen — inclusion-based (directional) constraints;
///   * Das — directional top-level assignments, equality below one
///     level of dereference (one-level flow);
///   * Steensgaard — fully equality-based (every flow is symmetric).
///
/// Abstract cells: one per variable, one per (struct, field) pair
/// (field-based heap abstraction), one summary cell per array's
/// elements, and one per function return value.
///
//===----------------------------------------------------------------------===//

#ifndef ALIAS_POINTSTO_H
#define ALIAS_POINTSTO_H

#include "cfront/AST.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace slam {
namespace alias {

enum class Mode { Andersen, Das, Steensgaard };

/// One abstract memory cell.
struct Cell {
  enum class Kind { Var, Field, Elem, Ret, Anon, Temp } K;
  const cfront::VarDecl *Var = nullptr;       // Var / Elem.
  const cfront::RecordDecl *Record = nullptr; // Field.
  std::string FieldName;                      // Field.
  const cfront::FuncDecl *Func = nullptr;     // Ret.
  /// Static type of the cell's contents (null for temps).
  const cfront::Type *Ty = nullptr;

  /// Summary cells stand for many runtime cells, so co-location never
  /// implies must-alias.
  bool isSummary() const {
    return K == Kind::Field || K == Kind::Elem || K == Kind::Anon;
  }

  std::string str() const;
};

/// The analysis result: may-point-to sets over abstract cells.
class PointsTo {
public:
  PointsTo(const cfront::Program &P, Mode M = Mode::Das);

  Mode mode() const { return M; }

  /// Abstract cells a C lvalue expression may denote.
  std::set<int> locationCells(const cfront::Expr &Lvalue) const;

  /// Abstract cells a pointer-valued C expression may point to.
  std::set<int> valueCells(const cfront::Expr &PtrExpr) const;

  /// May the cells denoted by two C lvalues overlap?
  bool mayAlias(const cfront::Expr &A, const cfront::Expr &B) const;

  /// Has &V been taken anywhere in the program (directly or via the
  /// points-to closure)?
  bool isAddressTaken(const cfront::VarDecl &V) const;

  /// Points-to set of the cell for variable \p V.
  const std::set<int> &pointsToSet(const cfront::VarDecl &V) const;

  // -- Cell table (shared with ModRef and the oracle) ---------------------
  int varCell(const cfront::VarDecl *V) const;
  int fieldCell(const cfront::RecordDecl *Rec,
                const std::string &Field) const;
  int elemCell(const cfront::VarDecl *ArrayVar) const;
  int retCell(const cfront::FuncDecl *F) const;
  const Cell &cell(int Id) const { return Cells[Id]; }
  int numCells() const { return static_cast<int>(Cells.size()); }
  const std::set<int> &pts(int CellId) const { return Pts[CellId]; }

  // -- Constraint construction (used by the internal builder) -------------
  int makeVarCell(const cfront::VarDecl *V);
  int makeFieldCell(const cfront::RecordDecl *Rec, const std::string &F);
  int makeElemCell(const cfront::VarDecl *V);
  int makeRetCell(const cfront::FuncDecl *F);
  int makeAnonCell(const cfront::Type *Ty);
  int makeTempCell();

  void addCopy(int From, int To);
  void addLoad(int Dst, int Ptr);
  void addStore(int Ptr, int Src);
  void addAddressOf(int Ptr, int Target);

private:
  void growTables();
  void seedBoundaryCells();
  void solve();

  Mode M;
  std::vector<Cell> Cells;
  std::map<const cfront::VarDecl *, int> VarCells;
  std::map<std::pair<const cfront::RecordDecl *, std::string>, int>
      FieldCells;
  std::map<const cfront::VarDecl *, int> ElemCells;
  std::map<const cfront::FuncDecl *, int> RetCells;
  std::map<const cfront::Type *, int> AnonCells;

  std::vector<std::set<int>> Pts;
  std::vector<std::set<int>> CopyEdges; // From -> {To}.
  std::vector<std::pair<int, int>> Loads;  // (Dst, Ptr).
  std::vector<std::pair<int, int>> Stores; // (Ptr, Src).
  std::set<int> AddressTakenCells;
};

} // namespace alias
} // namespace slam

#endif // ALIAS_POINTSTO_H
