//===- Bdd.cpp - ROBDD operations ------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include <cassert>
#include <climits>
#include <cmath>
#include <set>

using namespace slam;
using namespace slam::bdd;

BddManager::BddManager() {
  Nodes.push_back({INT_MAX, False, False}); // 0 = false terminal.
  Nodes.push_back({INT_MAX, True, True});   // 1 = true terminal.
}

int BddManager::newVar() { return NumVars++; }

Node BddManager::mk(int Var, Node Lo, Node Hi) {
  if (Lo == Hi)
    return Lo;
  auto Key = std::make_tuple(Var, Lo, Hi);
  auto It = Unique.find(Key);
  if (It != Unique.end())
    return It->second;
  Node N = static_cast<Node>(Nodes.size());
  Nodes.push_back({Var, Lo, Hi});
  Unique.emplace(Key, N);
  return N;
}

Node BddManager::varNode(int Var) {
  assert(Var >= 0 && Var < NumVars && "unknown variable");
  return mk(Var, False, True);
}

Node BddManager::nvarNode(int Var) {
  assert(Var >= 0 && Var < NumVars && "unknown variable");
  return mk(Var, True, False);
}

Node BddManager::mkIte(Node F, Node G, Node H) {
  // Terminal cases.
  if (F == True)
    return G;
  if (F == False)
    return H;
  if (G == H)
    return G;
  if (G == True && H == False)
    return F;

  auto Key = std::make_tuple(F, G, H);
  auto It = IteCache.find(Key);
  if (It != IteCache.end())
    return It->second;

  int Top = std::min(level(F), std::min(level(G), level(H)));
  auto Cof = [this, Top](Node N, bool High) {
    if (level(N) != Top)
      return N;
    return High ? Nodes[N].Hi : Nodes[N].Lo;
  };
  Node Lo = mkIte(Cof(F, false), Cof(G, false), Cof(H, false));
  Node Hi = mkIte(Cof(F, true), Cof(G, true), Cof(H, true));
  Node R = mk(Top, Lo, Hi);
  IteCache.emplace(Key, R);
  return R;
}

Node BddManager::restrict(Node F, int Var, bool Value) {
  if (F <= True || level(F) > Var)
    return F;
  if (level(F) == Var)
    return Value ? Nodes[F].Hi : Nodes[F].Lo;
  // level(F) < Var: rebuild children. Use the ite cache indirectly by
  // routing through mkIte with the variable's literal. A direct
  // recursion with a local memo is faster and simpler:
  std::unordered_map<Node, Node> Memo;
  std::function<Node(Node)> Rec = [&](Node N) -> Node {
    if (N <= True || level(N) > Var)
      return N;
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    Node R;
    if (level(N) == Var)
      R = Value ? Nodes[N].Hi : Nodes[N].Lo;
    else
      R = mk(Nodes[N].Var, Rec(Nodes[N].Lo), Rec(Nodes[N].Hi));
    Memo.emplace(N, R);
    return R;
  };
  return Rec(F);
}

Node BddManager::exists(Node F, const std::vector<int> &Vars) {
  // Quantify highest-level (deepest) variables first to keep
  // intermediate results small.
  std::set<int> Sorted(Vars.begin(), Vars.end());
  Node R = F;
  for (auto It = Sorted.rbegin(); It != Sorted.rend(); ++It)
    R = mkOr(restrict(R, *It, false), restrict(R, *It, true));
  return R;
}

Node BddManager::forall(Node F, const std::vector<int> &Vars) {
  std::set<int> Sorted(Vars.begin(), Vars.end());
  Node R = F;
  for (auto It = Sorted.rbegin(); It != Sorted.rend(); ++It)
    R = mkAnd(restrict(R, *It, false), restrict(R, *It, true));
  return R;
}

Node BddManager::rename(Node F, const std::map<int, int> &VarMap) {
#ifndef NDEBUG
  // Order preservation: the map, extended with identity on unmapped
  // variables, must be strictly increasing.
  int PrevFrom = -1, PrevTo = -1;
  for (const auto &[From, To] : VarMap) {
    assert(From > PrevFrom && To > PrevTo &&
           "rename must be order-preserving");
    PrevFrom = From;
    PrevTo = To;
  }
#endif
  std::unordered_map<Node, Node> Memo;
  std::function<Node(Node)> Rec = [&](Node N) -> Node {
    if (N <= True)
      return N;
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    int Var = Nodes[N].Var;
    auto MapIt = VarMap.find(Var);
    int NewVar = MapIt == VarMap.end() ? Var : MapIt->second;
    Node R = mk(NewVar, Rec(Nodes[N].Lo), Rec(Nodes[N].Hi));
    Memo.emplace(N, R);
    return R;
  };
  return Rec(F);
}

double BddManager::satCount(Node F, int OverVars) {
  std::unordered_map<Node, double> Memo;
  std::function<double(Node)> Rec = [&](Node N) -> double {
    if (N == False)
      return 0.0;
    if (N == True)
      return 1.0;
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    // Each child count is scaled by skipped levels at the call site;
    // here count over the subspace below this node's variable.
    double Lo = Rec(Nodes[N].Lo);
    double Hi = Rec(Nodes[N].Hi);
    int LoSkip =
        (Nodes[N].Lo <= True ? OverVars : level(Nodes[N].Lo)) -
        Nodes[N].Var - 1;
    int HiSkip =
        (Nodes[N].Hi <= True ? OverVars : level(Nodes[N].Hi)) -
        Nodes[N].Var - 1;
    double R = Lo * std::pow(2.0, LoSkip) + Hi * std::pow(2.0, HiSkip);
    Memo.emplace(N, R);
    return R;
  };
  if (F == False)
    return 0.0;
  if (F == True)
    return std::pow(2.0, OverVars);
  return Rec(F) * std::pow(2.0, level(F));
}

void BddManager::forEachCube(
    Node F,
    const std::function<void(const std::map<int, bool> &)> &Callback) {
  std::map<int, bool> Path;
  std::function<void(Node)> Rec = [&](Node N) {
    if (N == False)
      return;
    if (N == True) {
      Callback(Path);
      return;
    }
    Path[Nodes[N].Var] = false;
    Rec(Nodes[N].Lo);
    Path[Nodes[N].Var] = true;
    Rec(Nodes[N].Hi);
    Path.erase(Nodes[N].Var);
  };
  Rec(F);
}

std::map<int, bool> BddManager::anySat(Node F) {
  std::map<int, bool> Out;
  Node N = F;
  while (N > True) {
    if (Nodes[N].Lo != False) {
      Out[Nodes[N].Var] = false;
      N = Nodes[N].Lo;
    } else {
      Out[Nodes[N].Var] = true;
      N = Nodes[N].Hi;
    }
  }
  return Out;
}

Node BddManager::cube(const std::vector<std::pair<int, bool>> &Literals) {
  Node R = True;
  for (const auto &[Var, Value] : Literals)
    R = mkAnd(R, Value ? varNode(Var) : nvarNode(Var));
  return R;
}

bool BddManager::eval(Node F, const std::map<int, bool> &Assignment) const {
  Node N = F;
  while (N > True) {
    auto It = Assignment.find(Nodes[N].Var);
    bool V = It != Assignment.end() && It->second;
    N = V ? Nodes[N].Hi : Nodes[N].Lo;
  }
  return N == True;
}

size_t BddManager::nodeCount(Node F) const {
  std::set<Node> Seen;
  std::function<void(Node)> Rec = [&](Node N) {
    if (N <= True || !Seen.insert(N).second)
      return;
    Rec(Nodes[N].Lo);
    Rec(Nodes[N].Hi);
  };
  Rec(F);
  return Seen.size() + 2;
}
