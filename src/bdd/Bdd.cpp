//===- Bdd.cpp - ROBDD operations ------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Every operator below is an explicit-worklist (iterative) version of
// the textbook recursion: a frame holds one subproblem, Phase tracks
// which cofactor results have arrived, and `Ret` carries the value a
// finished frame hands back to its parent. Operators call each other
// (quantify uses mkOr to merge cofactors, andExists falls back to
// quantify when one operand hits True) but never themselves, so each
// operator owns a distinct scratch stack.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <unordered_map>

using namespace slam;
using namespace slam::bdd;

namespace {

constexpr int InitialCacheLog = 12;
constexpr int MaxCacheLog = 20; // 1M entries per cache, then evict-only.
constexpr uint32_t InitialTableSize = 1u << 13;

inline uint64_t mix64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

inline uint64_t pack2(Node A, Node B) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(A)) << 32) |
         static_cast<uint32_t>(B);
}

inline uint64_t pack3(Node A, Node B, Node C) {
  uint64_t K = static_cast<uint32_t>(A);
  K = K * 0x9e3779b97f4a7c15ULL ^ static_cast<uint32_t>(B);
  K = K * 0x9e3779b97f4a7c15ULL ^ static_cast<uint32_t>(C);
  return K;
}

[[noreturn]] void fatalRenameOrder(int From, int To) {
  std::fprintf(stderr,
               "BddManager::rename: order-preservation violated while "
               "renaming variable %d to %d\n",
               From, To);
  std::abort();
}

} // namespace

//===----------------------------------------------------------------------===//
// Operation caches
//===----------------------------------------------------------------------===//

void BddManager::Cache2::init(int Log) {
  LogSize = Log;
  E.assign(size_t(1) << Log, Ent{});
  Mask = (1u << Log) - 1;
  InsertsSinceGrow = 0;
}

bool BddManager::Cache2::find(Node A, Node B, Node &R) {
  ++Lookups;
  const Ent &X = E[mix64(pack2(A, B)) & Mask];
  if (X.A == A && X.B == B) {
    ++Hits;
    R = X.R;
    return true;
  }
  return false;
}

void BddManager::Cache2::insert(Node A, Node B, Node R) {
  E[mix64(pack2(A, B)) & Mask] = {A, B, R};
  // Grow (clearing the entries) under sustained insert pressure, up to
  // the cap; past the cap the direct-mapped overwrite is the eviction.
  if (++InsertsSinceGrow >= E.size() * 2 && LogSize < MaxCacheLog)
    init(LogSize + 1);
}

void BddManager::Cache3::init(int Log) {
  LogSize = Log;
  E.assign(size_t(1) << Log, Ent{});
  Mask = (1u << Log) - 1;
  InsertsSinceGrow = 0;
}

bool BddManager::Cache3::find(Node A, Node B, Node C, Node &R) {
  ++Lookups;
  const Ent &X = E[mix64(pack3(A, B, C)) & Mask];
  if (X.A == A && X.B == B && X.C == C) {
    ++Hits;
    R = X.R;
    return true;
  }
  return false;
}

void BddManager::Cache3::insert(Node A, Node B, Node C, Node R) {
  E[mix64(pack3(A, B, C)) & Mask] = {A, B, C, R};
  if (++InsertsSinceGrow >= E.size() * 2 && LogSize < MaxCacheLog)
    init(LogSize + 1);
}

//===----------------------------------------------------------------------===//
// Node store and unique table
//===----------------------------------------------------------------------===//

BddManager::BddManager() {
  Nodes.push_back({INT_MAX, False, False}); // 0 = false terminal.
  Nodes.push_back({INT_MAX, True, True});   // 1 = true terminal.
  UniqueTable.assign(InitialTableSize, -1);
  UniqueMask = InitialTableSize - 1;
  IteCache.init(InitialCacheLog);
  AndCache.init(InitialCacheLog);
  OrCache.init(InitialCacheLog);
  XorCache.init(InitialCacheLog);
  ExistsCache.init(InitialCacheLog);
  ForallCache.init(InitialCacheLog);
  AndExistsCache.init(InitialCacheLog);
  RestrictCache.init(InitialCacheLog);
  RenameCache.init(InitialCacheLog);
}

int BddManager::newVar() { return NumVars++; }

void BddManager::growUniqueTable() {
  size_t NewSize = UniqueTable.size() * 2;
  UniqueTable.assign(NewSize, -1);
  UniqueMask = static_cast<uint32_t>(NewSize - 1);
  for (Node N = 2; N < static_cast<Node>(Nodes.size()); ++N) {
    const NodeData &D = Nodes[N];
    uint32_t Idx = static_cast<uint32_t>(
                       mix64(pack3(D.Var, D.Lo, D.Hi))) &
                   UniqueMask;
    while (UniqueTable[Idx] >= 0)
      Idx = (Idx + 1) & UniqueMask;
    UniqueTable[Idx] = N;
  }
}

Node BddManager::mk(int Var, Node Lo, Node Hi) {
  if (Lo == Hi)
    return Lo;
  uint32_t Idx =
      static_cast<uint32_t>(mix64(pack3(Var, Lo, Hi))) & UniqueMask;
  for (;;) {
    Node S = UniqueTable[Idx];
    if (S < 0)
      break;
    const NodeData &D = Nodes[S];
    if (D.Var == Var && D.Lo == Lo && D.Hi == Hi) {
      ++UniqueHits;
      return S;
    }
    Idx = (Idx + 1) & UniqueMask;
  }
  Node N = static_cast<Node>(Nodes.size());
  Nodes.push_back({Var, Lo, Hi});
  UniqueTable[Idx] = N;
  if (++UniqueUsed * 10 >= UniqueTable.size() * 7)
    growUniqueTable();
  return N;
}

Node BddManager::varNode(int Var) {
  assert(Var >= 0 && Var < NumVars && "unknown variable");
  return mk(Var, False, True);
}

Node BddManager::nvarNode(int Var) {
  assert(Var >= 0 && Var < NumVars && "unknown variable");
  return mk(Var, True, False);
}

//===----------------------------------------------------------------------===//
// If-then-else with standard-triple canonicalization
//===----------------------------------------------------------------------===//

Node BddManager::mkIte(Node F, Node G, Node H) {
  std::vector<IteFrame> &S = IteStack;
  S.clear();
  S.push_back({F, G, H, 0, 0, 0});
  Node Ret = False;
  while (!S.empty()) {
    size_t Ti = S.size() - 1;
    if (S[Ti].Phase == 0) {
      Node TF = S[Ti].F, TG = S[Ti].G, TH = S[Ti].H;
      if (TF == True) {
        Ret = TG;
        S.pop_back();
        continue;
      }
      if (TF == False) {
        Ret = TH;
        S.pop_back();
        continue;
      }
      // Standard triples: collapse repeated operands, then canonicalize
      // the commutative or/and forms so ite(F,1,H) and ite(H,1,F) (resp.
      // ite(F,G,0) / ite(G,F,0)) share one cache entry.
      if (TG == TF)
        TG = True;
      if (TH == TF)
        TH = False;
      if (TG == TH) {
        Ret = TG;
        S.pop_back();
        continue;
      }
      if (TG == True && TH == False) {
        Ret = TF;
        S.pop_back();
        continue;
      }
      if (TG == True && TH < TF)
        std::swap(TF, TH);
      if (TH == False && TG < TF)
        std::swap(TF, TG);
      Node R;
      if (IteCache.find(TF, TG, TH, R)) {
        Ret = R;
        S.pop_back();
        continue;
      }
      int Top = std::min(level(TF), std::min(level(TG), level(TH)));
      S[Ti] = {TF, TG, TH, 0, Top, 1};
      S.push_back({cof(TF, Top, false), cof(TG, Top, false),
                   cof(TH, Top, false), 0, 0, 0});
      continue;
    }
    if (S[Ti].Phase == 1) {
      S[Ti].Lo = Ret;
      S[Ti].Phase = 2;
      Node FH = cof(S[Ti].F, S[Ti].Top, true);
      Node GH = cof(S[Ti].G, S[Ti].Top, true);
      Node HH = cof(S[Ti].H, S[Ti].Top, true);
      S.push_back({FH, GH, HH, 0, 0, 0});
      continue;
    }
    Node R = mk(S[Ti].Top, S[Ti].Lo, Ret);
    IteCache.insert(S[Ti].F, S[Ti].G, S[Ti].H, R);
    Ret = R;
    S.pop_back();
  }
  return Ret;
}

//===----------------------------------------------------------------------===//
// Dedicated binary apply (and/or/xor)
//===----------------------------------------------------------------------===//

Node BddManager::applyBin(BinOp Op, Node A, Node B) {
  Cache2 &C = Op == BinOp::And ? AndCache
              : Op == BinOp::Or ? OrCache
                                : XorCache;
  std::vector<BinFrame> &S = BinStack;
  S.clear();
  S.push_back({A, B, 0, 0, 0});
  Node Ret = False;
  while (!S.empty()) {
    size_t Ti = S.size() - 1;
    if (S[Ti].Phase == 0) {
      Node TA = S[Ti].A, TB = S[Ti].B;
      bool Done = true;
      switch (Op) {
      case BinOp::And:
        if (TA == False || TB == False)
          Ret = False;
        else if (TA == True)
          Ret = TB;
        else if (TB == True || TA == TB)
          Ret = TA;
        else
          Done = false;
        break;
      case BinOp::Or:
        if (TA == True || TB == True)
          Ret = True;
        else if (TA == False)
          Ret = TB;
        else if (TB == False || TA == TB)
          Ret = TA;
        else
          Done = false;
        break;
      case BinOp::Xor:
        if (TA == TB)
          Ret = False;
        else if (TA == False)
          Ret = TB;
        else if (TB == False)
          Ret = TA;
        else if (TA == True)
          Ret = mkNot(TB);
        else if (TB == True)
          Ret = mkNot(TA);
        else
          Done = false;
        break;
      }
      if (Done) {
        S.pop_back();
        continue;
      }
      if (TA > TB)
        std::swap(TA, TB); // All three ops commute.
      Node R;
      if (C.find(TA, TB, R)) {
        Ret = R;
        S.pop_back();
        continue;
      }
      int Top = std::min(level(TA), level(TB));
      S[Ti] = {TA, TB, 0, Top, 1};
      S.push_back({cof(TA, Top, false), cof(TB, Top, false), 0, 0, 0});
      continue;
    }
    if (S[Ti].Phase == 1) {
      S[Ti].Lo = Ret;
      S[Ti].Phase = 2;
      Node AH = cof(S[Ti].A, S[Ti].Top, true);
      Node BH = cof(S[Ti].B, S[Ti].Top, true);
      S.push_back({AH, BH, 0, 0, 0});
      continue;
    }
    Node R = mk(S[Ti].Top, S[Ti].Lo, Ret);
    C.insert(S[Ti].A, S[Ti].B, R);
    Ret = R;
    S.pop_back();
  }
  return Ret;
}

Node BddManager::mkAnd(Node A, Node B) { return applyBin(BinOp::And, A, B); }
Node BddManager::mkOr(Node A, Node B) { return applyBin(BinOp::Or, A, B); }
Node BddManager::mkXor(Node A, Node B) { return applyBin(BinOp::Xor, A, B); }

//===----------------------------------------------------------------------===//
// Cofactors, quantification, and the fused relational product
//===----------------------------------------------------------------------===//

Node BddManager::restrict(Node F, int Var, bool Value) {
  if (F <= True || level(F) > Var)
    return F;
  Node Key = static_cast<Node>(2 * Var + (Value ? 1 : 0));
  std::vector<UnFrame> &S = RestrictStack;
  S.clear();
  S.push_back({F, 0, 0});
  Node Ret = False;
  while (!S.empty()) {
    size_t Ti = S.size() - 1;
    if (S[Ti].Phase == 0) {
      Node N = S[Ti].N;
      if (N <= True || level(N) > Var) {
        Ret = N;
        S.pop_back();
        continue;
      }
      if (level(N) == Var) {
        Ret = Value ? Nodes[N].Hi : Nodes[N].Lo;
        S.pop_back();
        continue;
      }
      Node R;
      if (RestrictCache.find(N, Key, R)) {
        Ret = R;
        S.pop_back();
        continue;
      }
      S[Ti].Phase = 1;
      S.push_back({Nodes[N].Lo, 0, 0});
      continue;
    }
    if (S[Ti].Phase == 1) {
      S[Ti].Lo = Ret;
      S[Ti].Phase = 2;
      Node Hi = Nodes[S[Ti].N].Hi;
      S.push_back({Hi, 0, 0});
      continue;
    }
    Node N = S[Ti].N;
    Node R = mk(Nodes[N].Var, S[Ti].Lo, Ret);
    RestrictCache.insert(N, Key, R);
    Ret = R;
    S.pop_back();
  }
  return Ret;
}

int BddManager::internCube(const std::vector<int> &Vars) {
  auto It = CubeIds.find(Vars);
  if (It != CubeIds.end())
    return It->second;
  int Id = static_cast<int>(CubeMasks.size());
  std::vector<uint8_t> Mask(Vars.empty() ? 0 : Vars.back() + 1, 0);
  for (int V : Vars)
    Mask[V] = 1;
  CubeMasks.push_back(std::move(Mask));
  CubeIds.emplace(Vars, Id);
  return Id;
}

Node BddManager::quantify(Node F, int CubeId, bool Exist) {
  Cache2 &C = Exist ? ExistsCache : ForallCache;
  std::vector<UnFrame> &S = QuantStack;
  S.clear();
  S.push_back({F, 0, 0});
  Node Ret = False;
  while (!S.empty()) {
    size_t Ti = S.size() - 1;
    if (S[Ti].Phase == 0) {
      Node N = S[Ti].N;
      if (N <= True) {
        Ret = N;
        S.pop_back();
        continue;
      }
      Node R;
      if (C.find(N, CubeId, R)) {
        Ret = R;
        S.pop_back();
        continue;
      }
      S[Ti].Phase = 1;
      S.push_back({Nodes[N].Lo, 0, 0});
      continue;
    }
    if (S[Ti].Phase == 1) {
      Node N = S[Ti].N;
      // When the tested variable is quantified, the dominating cofactor
      // short-circuits: exists is an OR of cofactors, forall an AND.
      if (inCube(CubeId, Nodes[N].Var) &&
          Ret == (Exist ? True : False)) {
        C.insert(N, CubeId, Ret);
        S.pop_back();
        continue;
      }
      S[Ti].Lo = Ret;
      S[Ti].Phase = 2;
      S.push_back({Nodes[N].Hi, 0, 0});
      continue;
    }
    Node N = S[Ti].N;
    Node Lo = S[Ti].Lo;
    Node R;
    if (inCube(CubeId, Nodes[N].Var))
      R = Exist ? mkOr(Lo, Ret) : mkAnd(Lo, Ret);
    else
      R = mk(Nodes[N].Var, Lo, Ret);
    C.insert(N, CubeId, R);
    Ret = R;
    S.pop_back();
  }
  return Ret;
}

Node BddManager::exists(Node F, const std::vector<int> &Vars) {
  if (F <= True || Vars.empty())
    return F;
  std::vector<int> Sorted(Vars);
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  return quantify(F, internCube(Sorted), /*Exist=*/true);
}

Node BddManager::forall(Node F, const std::vector<int> &Vars) {
  if (F <= True || Vars.empty())
    return F;
  std::vector<int> Sorted(Vars);
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  return quantify(F, internCube(Sorted), /*Exist=*/false);
}

Node BddManager::andExistsRec(Node F, Node G, int CubeId) {
  std::vector<BinFrame> &S = AndExStack;
  S.clear();
  S.push_back({F, G, 0, 0, 0});
  Node Ret = False;
  while (!S.empty()) {
    size_t Ti = S.size() - 1;
    if (S[Ti].Phase == 0) {
      Node A = S[Ti].A, B = S[Ti].B;
      if (A == False || B == False) {
        Ret = False;
        S.pop_back();
        continue;
      }
      if (A == True && B == True) {
        Ret = True;
        S.pop_back();
        continue;
      }
      if (A == True || B == True || A == B) {
        // One conjunct is trivial: plain existential quantification.
        Node Rest = A == True ? B : A;
        Ret = quantify(Rest, CubeId, /*Exist=*/true);
        S.pop_back();
        continue;
      }
      if (A > B)
        std::swap(A, B); // Conjunction commutes.
      Node R;
      if (AndExistsCache.find(A, B, CubeId, R)) {
        Ret = R;
        S.pop_back();
        continue;
      }
      int Top = std::min(level(A), level(B));
      S[Ti] = {A, B, 0, Top, 1};
      S.push_back({cof(A, Top, false), cof(B, Top, false), 0, 0, 0});
      continue;
    }
    if (S[Ti].Phase == 1) {
      // Quantified level: result is an OR of the cofactor products, so a
      // True low half short-circuits the whole subproblem.
      if (inCube(CubeId, S[Ti].Top) && Ret == True) {
        AndExistsCache.insert(S[Ti].A, S[Ti].B, CubeId, True);
        S.pop_back();
        continue;
      }
      S[Ti].Lo = Ret;
      S[Ti].Phase = 2;
      Node AH = cof(S[Ti].A, S[Ti].Top, true);
      Node BH = cof(S[Ti].B, S[Ti].Top, true);
      S.push_back({AH, BH, 0, 0, 0});
      continue;
    }
    Node R = inCube(CubeId, S[Ti].Top) ? mkOr(S[Ti].Lo, Ret)
                                       : mk(S[Ti].Top, S[Ti].Lo, Ret);
    AndExistsCache.insert(S[Ti].A, S[Ti].B, CubeId, R);
    Ret = R;
    S.pop_back();
  }
  return Ret;
}

Node BddManager::andExists(Node F, Node G, const std::vector<int> &Vars) {
  if (Vars.empty())
    return mkAnd(F, G);
  std::vector<int> Sorted(Vars);
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  Timer T;
  Node R = andExistsRec(F, G, internCube(Sorted));
  AndExistsHist.observe(static_cast<uint64_t>(T.seconds() * 1e6));
  return R;
}

//===----------------------------------------------------------------------===//
// Rename
//===----------------------------------------------------------------------===//

Node BddManager::rename(Node F, const std::map<int, int> &VarMap) {
  // Precondition (checked in every build mode): the mapped pairs alone
  // must be strictly order-preserving. This is necessary but not
  // sufficient — collisions with unmapped variables of F are caught
  // during the rebuild below.
  int PrevFrom = -1, PrevTo = -1;
  for (const auto &[From, To] : VarMap) {
    if (From <= PrevFrom || To <= PrevTo || To < 0)
      fatalRenameOrder(From, To);
    PrevFrom = From;
    PrevTo = To;
  }
  if (F <= True || VarMap.empty())
    return F;

  std::vector<std::pair<int, int>> Pairs(VarMap.begin(), VarMap.end());
  auto MapIt = RenameIds.find(Pairs);
  int RenameId;
  if (MapIt != RenameIds.end()) {
    RenameId = MapIt->second;
  } else {
    RenameId = static_cast<int>(RenameMaps.size());
    RenameMaps.push_back(Pairs);
    RenameIds.emplace(std::move(Pairs), RenameId);
  }
  const std::vector<std::pair<int, int>> &Map = RenameMaps[RenameId];
  auto MapVar = [&Map](int Var) {
    auto It = std::lower_bound(
        Map.begin(), Map.end(), Var,
        [](const std::pair<int, int> &P, int V) { return P.first < V; });
    return It != Map.end() && It->first == Var ? It->second : Var;
  };

  std::vector<UnFrame> &S = RenameStack;
  S.clear();
  S.push_back({F, 0, 0});
  Node Ret = False;
  while (!S.empty()) {
    size_t Ti = S.size() - 1;
    if (S[Ti].Phase == 0) {
      Node N = S[Ti].N;
      if (N <= True) {
        Ret = N;
        S.pop_back();
        continue;
      }
      Node R;
      if (RenameCache.find(N, RenameId, R)) {
        Ret = R;
        S.pop_back();
        continue;
      }
      S[Ti].Phase = 1;
      S.push_back({Nodes[N].Lo, 0, 0});
      continue;
    }
    if (S[Ti].Phase == 1) {
      S[Ti].Lo = Ret;
      S[Ti].Phase = 2;
      Node Hi = Nodes[S[Ti].N].Hi;
      S.push_back({Hi, 0, 0});
      continue;
    }
    Node N = S[Ti].N;
    int NewVar = MapVar(Nodes[N].Var);
    // The rebuilt children are canonical diagrams over the renamed
    // variables; if either one tests a level at or above NewVar, the
    // extended map was not order-preserving and the result would be an
    // unordered, unreduced diagram. Fail loudly in all build modes.
    if (level(S[Ti].Lo) <= NewVar || level(Ret) <= NewVar)
      fatalRenameOrder(Nodes[N].Var, NewVar);
    Node R = mk(NewVar, S[Ti].Lo, Ret);
    RenameCache.insert(N, RenameId, R);
    Ret = R;
    S.pop_back();
  }
  return Ret;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

double BddManager::satCount(Node F, int OverVars) {
  if (F == False)
    return 0.0;
  if (F == True)
    return std::pow(2.0, OverVars);
  std::unordered_map<Node, double> Memo;
  struct CountFrame {
    Node N;
    double Lo;
    uint8_t Phase;
  };
  std::vector<CountFrame> S;
  S.push_back({F, 0.0, 0});
  double Ret = 0.0;
  while (!S.empty()) {
    size_t Ti = S.size() - 1;
    if (S[Ti].Phase == 0) {
      Node N = S[Ti].N;
      if (N == False) {
        Ret = 0.0;
        S.pop_back();
        continue;
      }
      if (N == True) {
        Ret = 1.0;
        S.pop_back();
        continue;
      }
      auto It = Memo.find(N);
      if (It != Memo.end()) {
        Ret = It->second;
        S.pop_back();
        continue;
      }
      S[Ti].Phase = 1;
      S.push_back({Nodes[N].Lo, 0.0, 0});
      continue;
    }
    if (S[Ti].Phase == 1) {
      S[Ti].Lo = Ret;
      S[Ti].Phase = 2;
      Node Hi = Nodes[S[Ti].N].Hi;
      S.push_back({Hi, 0.0, 0});
      continue;
    }
    Node N = S[Ti].N;
    // Each child count is scaled by the levels skipped on that edge; a
    // count here covers the subspace below this node's variable. Zero
    // counts contribute zero outright — the skip exponent can exceed
    // double range, and 0 * inf would poison the total with NaN.
    int LoSkip =
        (Nodes[N].Lo <= True ? OverVars : level(Nodes[N].Lo)) -
        Nodes[N].Var - 1;
    int HiSkip =
        (Nodes[N].Hi <= True ? OverVars : level(Nodes[N].Hi)) -
        Nodes[N].Var - 1;
    double R =
        (S[Ti].Lo == 0.0 ? 0.0 : S[Ti].Lo * std::pow(2.0, LoSkip)) +
        (Ret == 0.0 ? 0.0 : Ret * std::pow(2.0, HiSkip));
    Memo.emplace(N, R);
    Ret = R;
    S.pop_back();
  }
  return Ret * std::pow(2.0, level(F));
}

void BddManager::forEachCube(
    Node F,
    const std::function<void(const std::map<int, bool> &)> &Callback) {
  // Action stack: visit-with-assignment actions interleaved with erase
  // actions so the path map mirrors the recursive traversal exactly
  // (low branch under Var=false first, then high under Var=true).
  struct Act {
    Node N;
    int Var;
    int8_t Kind; // 0 visit, 1 assign-false+visit, 2 assign-true+visit,
                 // 3 erase.
  };
  std::map<int, bool> Path;
  std::vector<Act> S;
  S.push_back({F, -1, 0});
  while (!S.empty()) {
    Act A = S.back();
    S.pop_back();
    if (A.Kind == 3) {
      Path.erase(A.Var);
      continue;
    }
    if (A.Kind == 1)
      Path[A.Var] = false;
    else if (A.Kind == 2)
      Path[A.Var] = true;
    if (A.N == False)
      continue;
    if (A.N == True) {
      Callback(Path);
      continue;
    }
    int Var = Nodes[A.N].Var;
    S.push_back({False, Var, 3});
    S.push_back({Nodes[A.N].Hi, Var, 2});
    S.push_back({Nodes[A.N].Lo, Var, 1});
  }
}

std::map<int, bool> BddManager::anySat(Node F) {
  std::map<int, bool> Out;
  Node N = F;
  while (N > True) {
    if (Nodes[N].Lo != False) {
      Out[Nodes[N].Var] = false;
      N = Nodes[N].Lo;
    } else {
      Out[Nodes[N].Var] = true;
      N = Nodes[N].Hi;
    }
  }
  return Out;
}

Node BddManager::cube(const std::vector<std::pair<int, bool>> &Literals) {
  Node R = True;
  for (const auto &[Var, Value] : Literals)
    R = mkAnd(R, Value ? varNode(Var) : nvarNode(Var));
  return R;
}

bool BddManager::eval(Node F, const std::map<int, bool> &Assignment) const {
  Node N = F;
  while (N > True) {
    auto It = Assignment.find(Nodes[N].Var);
    bool V = It != Assignment.end() && It->second;
    N = V ? Nodes[N].Hi : Nodes[N].Lo;
  }
  return N == True;
}

size_t BddManager::nodeCount(Node F) const {
  std::set<Node> Seen;
  std::vector<Node> S;
  S.push_back(F);
  while (!S.empty()) {
    Node N = S.back();
    S.pop_back();
    if (N <= True || !Seen.insert(N).second)
      continue;
    S.push_back(Nodes[N].Lo);
    S.push_back(Nodes[N].Hi);
  }
  return Seen.size() + 2;
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

void BddManager::reportStats(StatsRegistry &Stats,
                             const std::string &Prefix) const {
  // Node counts and capacities are peaks (gauges): merging registries
  // must take the max, not the sum — summed per-worker peaks would
  // report a node count no single manager ever held.
  Stats.setMax(Prefix + "nodes", Nodes.size());
  Stats.set(Prefix + "unique.hits", UniqueHits);
  Stats.setMax(Prefix + "unique.capacity", UniqueTable.size());
  auto Rep2 = [&](const char *Name, const Cache2 &C) {
    Stats.set(Prefix + Name + ".lookups", C.Lookups);
    Stats.set(Prefix + Name + ".hits", C.Hits);
    Stats.setMax(Prefix + Name + ".capacity", C.E.size());
  };
  auto Rep3 = [&](const char *Name, const Cache3 &C) {
    Stats.set(Prefix + Name + ".lookups", C.Lookups);
    Stats.set(Prefix + Name + ".hits", C.Hits);
    Stats.setMax(Prefix + Name + ".capacity", C.E.size());
  };
  Stats.observeHistogram(Prefix + "andexists.us", AndExistsHist);
  Rep3("ite", IteCache);
  Rep2("and", AndCache);
  Rep2("or", OrCache);
  Rep2("xor", XorCache);
  Rep2("exists", ExistsCache);
  Rep2("forall", ForallCache);
  Rep3("andexists", AndExistsCache);
  Rep2("restrict", RestrictCache);
  Rep2("rename", RenameCache);
}
