//===- Bdd.h - Reduced ordered binary decision diagrams ---------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch ROBDD package [9] — the symbolic representation Bebop
/// uses for reachable-state sets and statement transfer functions. Nodes
/// are interned in a unique table (so BDD equality is integer equality),
/// all boolean connectives route through a memoized ite, and the
/// quantification/rename operations Bebop needs (exists over a variable
/// set, order-preserving renaming between variable rails) are provided.
///
/// No garbage collection: the model-checking runs in this project peak
/// at well under a million nodes.
///
//===----------------------------------------------------------------------===//

#ifndef BDD_BDD_H
#define BDD_BDD_H

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

namespace slam {
namespace bdd {

/// BDD node handle; 0 and 1 are the terminals.
using Node = int32_t;

class BddManager {
public:
  static constexpr Node False = 0;
  static constexpr Node True = 1;

  BddManager();

  /// Creates the next variable (level == index).
  int newVar();

  int numVars() const { return NumVars; }
  size_t numNodes() const { return Nodes.size(); }

  // -- Basic constructors ---------------------------------------------------
  Node varNode(int Var);  ///< The function `Var`.
  Node nvarNode(int Var); ///< The function `!Var`.
  Node constant(bool B) { return B ? True : False; }

  // -- Connectives ------------------------------------------------------------
  Node mkIte(Node F, Node G, Node H);
  Node mkAnd(Node A, Node B) { return mkIte(A, B, False); }
  Node mkOr(Node A, Node B) { return mkIte(A, True, B); }
  Node mkNot(Node A) { return mkIte(A, False, True); }
  Node mkXor(Node A, Node B) { return mkIte(A, mkNot(B), B); }
  Node mkXnor(Node A, Node B) { return mkIte(A, B, mkNot(B)); }
  Node mkImplies(Node A, Node B) { return mkIte(A, B, True); }

  // -- Cofactors and quantification ------------------------------------------
  /// F with Var fixed to Value.
  Node restrict(Node F, int Var, bool Value);

  /// Existential quantification over each variable in \p Vars.
  Node exists(Node F, const std::vector<int> &Vars);

  /// Universal quantification.
  Node forall(Node F, const std::vector<int> &Vars);

  /// Renames variables: each (From -> To) pair replaces From by To. The
  /// map must be strictly order-preserving on levels and targets must
  /// not collide with remaining variables of F in a way that reorders
  /// levels (asserted). This covers Bebop's rail-to-rail renames.
  Node rename(Node F, const std::map<int, int> &VarMap);

  // -- Queries ------------------------------------------------------------
  bool isSat(Node F) const { return F != False; }
  bool isTautology(Node F) const { return F == True; }

  /// Number of satisfying assignments over \p OverVars variables.
  double satCount(Node F, int OverVars);

  /// Enumerates the cubes (paths to True): each cube maps a subset of
  /// variables to values; unmentioned variables are don't-cares.
  void forEachCube(Node F,
                   const std::function<void(const std::map<int, bool> &)>
                       &Callback);

  /// One satisfying cube (smallest-level greedy), or empty if F = false.
  std::map<int, bool> anySat(Node F);

  /// Builds the conjunction of literals.
  Node cube(const std::vector<std::pair<int, bool>> &Literals);

  /// Evaluates F under a total assignment (missing vars read false).
  bool eval(Node F, const std::map<int, bool> &Assignment) const;

  /// Structural node count of one BDD (distinct reachable nodes).
  size_t nodeCount(Node F) const;

private:
  struct NodeData {
    int Var;
    Node Lo;
    Node Hi;
  };

  int level(Node N) const {
    return Nodes[N].Var; // Terminals have Var = INT_MAX.
  }

  Node mk(int Var, Node Lo, Node Hi);

  std::vector<NodeData> Nodes;
  int NumVars = 0;

  struct TripleHash {
    size_t operator()(const std::tuple<int, Node, Node> &T) const {
      auto [A, B, C] = T;
      size_t H = std::hash<int>()(A);
      H = H * 1000003u ^ std::hash<Node>()(B);
      H = H * 1000003u ^ std::hash<Node>()(C);
      return H;
    }
  };
  struct IteHash {
    size_t operator()(const std::tuple<Node, Node, Node> &T) const {
      auto [A, B, C] = T;
      size_t H = std::hash<Node>()(A);
      H = H * 1000003u ^ std::hash<Node>()(B);
      H = H * 1000003u ^ std::hash<Node>()(C);
      return H;
    }
  };
  std::unordered_map<std::tuple<int, Node, Node>, Node, TripleHash> Unique;
  std::unordered_map<std::tuple<Node, Node, Node>, Node, IteHash> IteCache;
};

} // namespace bdd
} // namespace slam

#endif // BDD_BDD_H
