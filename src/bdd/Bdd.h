//===- Bdd.h - Reduced ordered binary decision diagrams ---------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch ROBDD package [9] — the symbolic representation Bebop
/// uses for reachable-state sets and statement transfer functions. Nodes
/// are interned in an open-addressing unique table (so BDD equality is
/// integer equality); the boolean connectives are memoized apply
/// operators with per-operation bounded caches, and the
/// quantification/rename operations Bebop needs (exists/forall over a
/// variable set, the fused relational product andExists, and
/// order-preserving renaming between variable rails) are provided.
///
/// Engine policy:
///  - Nodes are never garbage collected: they live for the manager's
///    lifetime and handles stay valid. The unique table grows as needed.
///  - Operation caches are direct-mapped, size-capped arrays with
///    overwrite-on-collision eviction, so memory stays bounded no matter
///    how many operations run. Eviction only costs recomputation; every
///    operator result is canonical regardless of cache contents.
///  - All traversals run on explicit worklists (no native recursion), so
///    diagrams that are hundreds of thousands of nodes deep cannot
///    overflow the C stack.
///
//===----------------------------------------------------------------------===//

#ifndef BDD_BDD_H
#define BDD_BDD_H

#include "support/Histogram.h"
#include "support/Stats.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace slam {
namespace bdd {

/// BDD node handle; 0 and 1 are the terminals.
using Node = int32_t;

class BddManager {
public:
  static constexpr Node False = 0;
  static constexpr Node True = 1;

  BddManager();

  /// Creates the next variable (level == index).
  int newVar();

  int numVars() const { return NumVars; }
  size_t numNodes() const { return Nodes.size(); }

  // -- Basic constructors ---------------------------------------------------
  Node varNode(int Var);  ///< The function `Var`.
  Node nvarNode(int Var); ///< The function `!Var`.
  Node constant(bool B) { return B ? True : False; }

  // -- Connectives ----------------------------------------------------------
  Node mkIte(Node F, Node G, Node H);
  Node mkAnd(Node A, Node B);
  Node mkOr(Node A, Node B);
  Node mkXor(Node A, Node B);
  Node mkNot(Node A) { return mkIte(A, False, True); }
  Node mkXnor(Node A, Node B) { return mkIte(A, B, mkNot(B)); }
  Node mkImplies(Node A, Node B) { return mkIte(A, B, True); }

  // -- Cofactors and quantification -----------------------------------------
  /// F with Var fixed to Value.
  Node restrict(Node F, int Var, bool Value);

  /// Existential quantification over each variable in \p Vars.
  Node exists(Node F, const std::vector<int> &Vars);

  /// Universal quantification.
  Node forall(Node F, const std::vector<int> &Vars);

  /// The fused relational product exists(Vars, F & G), computed in one
  /// traversal with its own memo instead of materializing the
  /// conjunction first. This is the hot operator of Bebop's post-image,
  /// summary-edge, and call-site computations.
  Node andExists(Node F, Node G, const std::vector<int> &Vars);

  /// Renames variables: each (From -> To) pair replaces From by To. The
  /// map, extended with the identity on unmapped variables, must be
  /// strictly order-preserving on levels; violations (including targets
  /// that collide with unmapped variables of F) are detected during the
  /// rebuild and abort in every build mode — a silently unordered
  /// diagram would poison all later operations. This covers Bebop's
  /// rail-to-rail renames.
  Node rename(Node F, const std::map<int, int> &VarMap);

  // -- Queries --------------------------------------------------------------
  bool isSat(Node F) const { return F != False; }
  bool isTautology(Node F) const { return F == True; }

  /// Number of satisfying assignments over \p OverVars variables.
  double satCount(Node F, int OverVars);

  /// Enumerates the cubes (paths to True): each cube maps a subset of
  /// variables to values; unmentioned variables are don't-cares.
  void forEachCube(Node F,
                   const std::function<void(const std::map<int, bool> &)>
                       &Callback);

  /// One satisfying cube (smallest-level greedy), or empty if F = false.
  std::map<int, bool> anySat(Node F);

  /// Builds the conjunction of literals.
  Node cube(const std::vector<std::pair<int, bool>> &Literals);

  /// Evaluates F under a total assignment (missing vars read false).
  bool eval(Node F, const std::map<int, bool> &Assignment) const;

  /// Structural node count of one BDD (distinct reachable nodes).
  size_t nodeCount(Node F) const;

  /// Publishes node and cache counters (lookups/hits/capacity per
  /// operation) into \p Stats under \p Prefix, e.g. "bebop.bdd.".
  void reportStats(StatsRegistry &Stats, const std::string &Prefix) const;

private:
  struct NodeData {
    int32_t Var;
    Node Lo;
    Node Hi;
  };

  int level(Node N) const {
    return Nodes[N].Var; // Terminals have Var = INT_MAX.
  }

  /// Child of N at \p Top: cofactor if N tests Top, else N itself.
  Node cof(Node N, int Top, bool High) const {
    if (level(N) != Top)
      return N;
    return High ? Nodes[N].Hi : Nodes[N].Lo;
  }

  Node mk(int Var, Node Lo, Node Hi);
  void growUniqueTable();

  // -- Bounded direct-mapped operation caches -------------------------------
  struct Cache2 {
    struct Ent {
      Node A = -1, B = -1, R = 0;
    };
    std::vector<Ent> E;
    uint32_t Mask = 0;
    uint64_t Lookups = 0, Hits = 0, InsertsSinceGrow = 0;
    int LogSize = 0;

    void init(int Log);
    bool find(Node A, Node B, Node &R);
    void insert(Node A, Node B, Node R);
  };
  struct Cache3 {
    struct Ent {
      Node A = -1, B = -1, C = -1, R = 0;
    };
    std::vector<Ent> E;
    uint32_t Mask = 0;
    uint64_t Lookups = 0, Hits = 0, InsertsSinceGrow = 0;
    int LogSize = 0;

    void init(int Log);
    bool find(Node A, Node B, Node C, Node &R);
    void insert(Node A, Node B, Node C, Node R);
  };

  enum class BinOp { And, Or, Xor };
  Node applyBin(BinOp Op, Node A, Node B);

  /// Interns a sorted, deduplicated variable set; returns its id.
  int internCube(const std::vector<int> &Vars);
  bool inCube(int CubeId, int Var) const {
    const std::vector<uint8_t> &Mask = CubeMasks[CubeId];
    return static_cast<size_t>(Var) < Mask.size() && Mask[Var];
  }

  Node quantify(Node F, int CubeId, bool Exist);
  Node andExistsRec(Node F, Node G, int CubeId);

  std::vector<NodeData> Nodes;
  int NumVars = 0;

  // Open-addressing unique table over node ids (-1 = empty slot).
  std::vector<Node> UniqueTable;
  uint32_t UniqueMask = 0;
  size_t UniqueUsed = 0;
  uint64_t UniqueHits = 0;

  Cache3 IteCache;
  Cache2 AndCache, OrCache, XorCache;
  Cache2 ExistsCache, ForallCache;
  Cache3 AndExistsCache; // (F, G, cube id).
  Cache2 RestrictCache;  // (F, 2*Var + Value).
  Cache2 RenameCache;    // (F, rename id).

  /// Latency of each top-level andExists call (the hot operator of
  /// Bebop's post-image); exported by reportStats.
  LatencyHistogram AndExistsHist;

  // Interned quantification cubes and rename maps.
  std::map<std::vector<int>, int> CubeIds;
  std::vector<std::vector<uint8_t>> CubeMasks;
  std::map<std::vector<std::pair<int, int>>, int> RenameIds;
  std::vector<std::vector<std::pair<int, int>>> RenameMaps;

  // Reused traversal scratch. Distinct per operation because operators
  // call each other (quantify -> mkOr, andExists -> quantify), but no
  // operator ever re-enters itself.
  struct IteFrame {
    Node F, G, H, Lo;
    int Top;
    uint8_t Phase;
  };
  struct BinFrame {
    Node A, B, Lo;
    int Top;
    uint8_t Phase;
  };
  struct UnFrame {
    Node N, Lo;
    uint8_t Phase;
  };
  std::vector<IteFrame> IteStack;
  std::vector<BinFrame> BinStack, AndExStack;
  std::vector<UnFrame> QuantStack, RestrictStack, RenameStack;
};

} // namespace bdd
} // namespace slam

#endif // BDD_BDD_H
