//===- Bebop.cpp - Summary-based BDD reachability ---------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Variable layout: every procedure owns a block of BDD variables, five
// "rails" per boolean program variable in scope (globals, parameters,
// locals, and one pseudo-variable per return value):
//
//   E  — value at procedure entry (the context half of a path edge);
//   C  — current value;
//   N  — next value (transfer staging for assignments);
//   SE — summary input (entry) rail;
//   SC — summary output rail.
//
// Path edges PE(n) live over (E, C). Summaries live over (SE, SC), so
// applying a summary at a call site — including a recursive one — never
// collides with the caller's own rails. All renames used (N->C, SE->E,
// E->SE / C->SC, C_t->N_t) are order-preserving by construction.
//
//===----------------------------------------------------------------------===//

#include "bebop/Bebop.h"

#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace slam;
using namespace slam::bebop;
using namespace slam::bp;
using bdd::BddManager;
using bdd::Node;

namespace {

enum Rail { RailE = 0, RailC = 1, RailN = 2, RailSE = 3, RailSC = 4 };

} // namespace

struct Bebop::Impl {
  const BProgram &Prog;
  StatsRegistry *Stats;
  BddManager M;
  DiagnosticEngine Diags;

  struct ProcInfo {
    const BProc *Proc = nullptr;
    std::unique_ptr<ProcCfg> Cfg;
    std::vector<std::string> Vars; // globals ++ params ++ locals ++ rets.
    std::map<std::string, int> VarIndex;
    int NumGlobals = 0, NumParams = 0, NumLocals = 0, NumRets = 0;
    int Base = 0;

    std::vector<Node> PE;
    /// Per node: (rank, cumulative PE) growth log for traces.
    std::vector<std::vector<std::pair<uint64_t, Node>>> Log;

    Node Summary = BddManager::False;
    std::vector<std::pair<uint64_t, Node>> SummaryLog;
    Node EntrySeen = BddManager::False;
    struct EntryRec {
      uint64_t Rank;
      Node States; // Over the E rail.
      int CallerProc;
      int CallerNode;
    };
    std::vector<EntryRec> EntryLog;

    Node EnforceBdd = BddManager::True; // Over the C rail.

    int numVars() const {
      return NumGlobals + NumParams + NumLocals + NumRets;
    }
  };

  std::vector<ProcInfo> Procs;
  std::map<std::string, int> ProcIndex;
  std::vector<int> ChoiceVars;
  uint64_t Rank = 0;
  std::deque<std::pair<int, int>> Worklist;
  /// Call sites per callee proc index: (caller proc, caller node).
  std::map<int, std::vector<std::pair<int, int>>> CallSites;

  // First observed assertion failure.
  bool Failed = false;
  int FailProc = -1, FailNode = -1;
  Node FailStates = BddManager::False;

  explicit Impl(const BProgram &P, StatsRegistry *Stats)
      : Prog(P), Stats(Stats) {
    TraceSpan Span("bebop.build", "bebop");
    build();
  }

  // -- Layout ----------------------------------------------------------------
  int railVar(const ProcInfo &PI, int VarIdx, Rail R) const {
    return PI.Base + 5 * VarIdx + R;
  }

  void build() {
    Procs.resize(Prog.Procs.size());
    for (size_t I = 0; I != Prog.Procs.size(); ++I) {
      const BProc *BP = Prog.Procs[I];
      ProcInfo &PI = Procs[I];
      PI.Proc = BP;
      ProcIndex[BP->Name] = static_cast<int>(I);
      PI.Cfg = std::make_unique<ProcCfg>(*BP, Diags);

      for (const std::string &G : Prog.Globals)
        PI.Vars.push_back(G);
      PI.NumGlobals = static_cast<int>(Prog.Globals.size());
      for (const std::string &Pm : BP->Params)
        PI.Vars.push_back(Pm);
      PI.NumParams = static_cast<int>(BP->Params.size());
      for (const std::string &L : BP->Locals)
        PI.Vars.push_back(L);
      PI.NumLocals = static_cast<int>(BP->Locals.size());
      for (unsigned K = 0; K != BP->NumReturns; ++K)
        PI.Vars.push_back("<ret" + std::to_string(K) + ">");
      PI.NumRets = static_cast<int>(BP->NumReturns);

      // Last declaration wins, so parameters and locals shadow globals.
      for (int V = 0; V != PI.numVars(); ++V)
        PI.VarIndex[PI.Vars[V]] = V;

      PI.Base = M.numVars();
      for (int V = 0; V != 5 * PI.numVars(); ++V)
        M.newVar();

      PI.PE.assign(PI.Cfg->numNodes(), BddManager::False);
      PI.Log.resize(PI.Cfg->numNodes());
    }

    // Enforce BDDs need the variable blocks allocated first.
    for (ProcInfo &PI : Procs) {
      if (PI.Proc->Enforce) {
        std::vector<int> Ch;
        PI.EnforceBdd = encode(PI, PI.Proc->Enforce, Ch);
        PI.EnforceBdd = M.exists(PI.EnforceBdd, Ch);
      }
    }

    // Call-site map.
    for (size_t I = 0; I != Procs.size(); ++I) {
      const ProcCfg &Cfg = *Procs[I].Cfg;
      for (int N = 0; N != Cfg.numNodes(); ++N) {
        if (Cfg.node(N).Op != NodeOp::Call)
          continue;
        auto It = ProcIndex.find(Cfg.node(N).Stmt->Callee);
        assert(It != ProcIndex.end() && "verified program");
        CallSites[It->second].emplace_back(static_cast<int>(I), N);
      }
    }
  }

  int ensureChoice(size_t K) {
    while (ChoiceVars.size() <= K)
      ChoiceVars.push_back(M.newVar());
    return ChoiceVars[K];
  }

  // -- Expression encoding ------------------------------------------------
  Node encode(ProcInfo &PI, const BExpr *E, std::vector<int> &Choices) {
    switch (E->Kind) {
    case BExprKind::Const:
      return M.constant(E->BoolValue);
    case BExprKind::Star: {
      int V = ensureChoice(Choices.size());
      Choices.push_back(V);
      return M.varNode(V);
    }
    case BExprKind::VarRef: {
      auto It = PI.VarIndex.find(E->Name);
      assert(It != PI.VarIndex.end() && "verified program");
      return M.varNode(railVar(PI, It->second, RailC));
    }
    case BExprKind::Not:
      return M.mkNot(encode(PI, E->Ops[0], Choices));
    case BExprKind::And:
      return M.mkAnd(encode(PI, E->Ops[0], Choices),
                     encode(PI, E->Ops[1], Choices));
    case BExprKind::Or:
      return M.mkOr(encode(PI, E->Ops[0], Choices),
                    encode(PI, E->Ops[1], Choices));
    case BExprKind::Eq:
      return M.mkXnor(encode(PI, E->Ops[0], Choices),
                      encode(PI, E->Ops[1], Choices));
    case BExprKind::Ne:
      return M.mkXor(encode(PI, E->Ops[0], Choices),
                     encode(PI, E->Ops[1], Choices));
    case BExprKind::Choose: {
      Node Pos = encode(PI, E->Ops[0], Choices);
      Node Neg = encode(PI, E->Ops[1], Choices);
      int V = ensureChoice(Choices.size());
      Choices.push_back(V);
      return M.mkIte(Pos, BddManager::True,
                     M.mkIte(Neg, BddManager::False, M.varNode(V)));
    }
    }
    return BddManager::False;
  }

  /// Encoded condition of an Assume/Assert node with choice vars
  /// quantified out (a condition containing `*` may pass either way).
  Node condBdd(ProcInfo &PI, const CfgNode &N) {
    if (!N.Cond)
      return BddManager::True;
    std::vector<int> Ch;
    Node C = encode(PI, N.Cond, Ch);
    if (N.NegateCond)
      C = M.mkNot(C);
    return M.exists(C, Ch);
  }

  // -- Transfers ----------------------------------------------------------
  /// The assignment staging relation for targets/exprs:
  /// AND_i (N_target_i <-> enc(expr_i)), plus the target index list.
  Node assignRelation(ProcInfo &PI, const std::vector<std::string> &Targets,
                      const std::vector<const BExpr *> &Exprs,
                      std::vector<int> &TargetIdx, std::vector<int> &Choices) {
    Node T = BddManager::True;
    for (size_t I = 0; I != Targets.size(); ++I) {
      int VI = PI.VarIndex.at(Targets[I]);
      TargetIdx.push_back(VI);
      Node Val = encode(PI, Exprs[I], Choices);
      T = M.mkAnd(T, M.mkXnor(M.varNode(railVar(PI, VI, RailN)), Val));
    }
    return T;
  }

  /// Return-node staging: bind <retK> pseudo-vars.
  Node returnRelation(ProcInfo &PI, const BStmt *S,
                      std::vector<int> &TargetIdx, std::vector<int> &Choices) {
    Node T = BddManager::True;
    int RetBase = PI.NumGlobals + PI.NumParams + PI.NumLocals;
    for (size_t I = 0; I != S->Exprs.size(); ++I) {
      int VI = RetBase + static_cast<int>(I);
      TargetIdx.push_back(VI);
      Node Val = encode(PI, S->Exprs[I], Choices);
      T = M.mkAnd(T, M.mkXnor(M.varNode(railVar(PI, VI, RailN)), Val));
    }
    return T;
  }

  /// Applies staged updates: S' = rename_{N->C}(exists(ch, C_t)(S & T)).
  Node applyStaged(ProcInfo &PI, Node S, Node T,
                   const std::vector<int> &TargetIdx,
                   const std::vector<int> &Choices) {
    std::vector<int> Quant = Choices;
    for (int VI : TargetIdx)
      Quant.push_back(railVar(PI, VI, RailC));
    Node R = M.andExists(S, T, Quant);
    std::map<int, int> Ren;
    for (int VI : TargetIdx)
      Ren[railVar(PI, VI, RailN)] = railVar(PI, VI, RailC);
    return M.rename(R, Ren);
  }

  /// Post-state of executing the operation of \p NodeId on states \p S.
  /// Call nodes are handled by the worklist, not here.
  Node post(ProcInfo &PI, int NodeId, Node S) {
    const CfgNode &N = PI.Cfg->node(NodeId);
    switch (N.Op) {
    case NodeOp::Entry:
    case NodeOp::Exit:
    case NodeOp::Skip:
      return S;
    case NodeOp::Assume:
    case NodeOp::Assert:
      return M.mkAnd(S, condBdd(PI, N));
    case NodeOp::Assign: {
      std::vector<int> TargetIdx, Choices;
      Node T = assignRelation(PI, N.Stmt->Targets, N.Stmt->Exprs, TargetIdx,
                              Choices);
      return M.mkAnd(applyStaged(PI, S, T, TargetIdx, Choices),
                     PI.EnforceBdd);
    }
    case NodeOp::Return: {
      std::vector<int> TargetIdx, Choices;
      Node T = returnRelation(PI, N.Stmt, TargetIdx, Choices);
      return applyStaged(PI, S, T, TargetIdx, Choices);
    }
    case NodeOp::Call:
      assert(false && "call handled by the worklist");
      return S;
    }
    return S;
  }

  // -- Call plumbing --------------------------------------------------------
  /// Binds the callee's SE rail to the caller's current state:
  /// globals pass through; parameters take the encoded arguments.
  Node bindIn(ProcInfo &Caller, ProcInfo &Callee, const BStmt *CallS,
              std::vector<int> &Choices) {
    Node B = BddManager::True;
    for (int G = 0; G != Callee.NumGlobals; ++G)
      B = M.mkAnd(B, M.mkXnor(M.varNode(railVar(Callee, G, RailSE)),
                              M.varNode(railVar(Caller, G, RailC))));
    for (int Pm = 0; Pm != Callee.NumParams; ++Pm) {
      Node Arg = encode(Caller, CallS->Exprs[Pm], Choices);
      B = M.mkAnd(
          B, M.mkXnor(
                 M.varNode(railVar(Callee, Callee.NumGlobals + Pm, RailSE)),
                 Arg));
    }
    return B;
  }

  /// Binds the caller's N rail to the callee's SC outputs: globals and
  /// the call's return targets.
  Node bindOut(ProcInfo &Caller, ProcInfo &Callee, const BStmt *CallS,
               std::vector<int> &ChangedIdx) {
    Node B = BddManager::True;
    for (int G = 0; G != Caller.NumGlobals; ++G) {
      ChangedIdx.push_back(G);
      B = M.mkAnd(B, M.mkXnor(M.varNode(railVar(Caller, G, RailN)),
                              M.varNode(railVar(Callee, G, RailSC))));
    }
    int RetBase =
        Callee.NumGlobals + Callee.NumParams + Callee.NumLocals;
    for (size_t K = 0; K != CallS->Targets.size(); ++K) {
      int VI = Caller.VarIndex.at(CallS->Targets[K]);
      ChangedIdx.push_back(VI);
      B = M.mkAnd(
          B,
          M.mkXnor(M.varNode(railVar(Caller, VI, RailN)),
                   M.varNode(railVar(
                       Callee, RetBase + static_cast<int>(K), RailSC))));
    }
    return B;
  }

  std::vector<int> allRailVars(ProcInfo &PI, std::initializer_list<Rail> Rails) {
    std::vector<int> Out;
    for (int V = 0; V != PI.numVars(); ++V)
      for (Rail R : Rails)
        Out.push_back(railVar(PI, V, R));
    return Out;
  }

  /// Identity over globals and parameters (E <-> C), used to seed entry
  /// path edges.
  Node identity(ProcInfo &PI) {
    Node Id = BddManager::True;
    for (int V = 0; V != PI.NumGlobals + PI.NumParams; ++V)
      Id = M.mkAnd(Id, M.mkXnor(M.varNode(railVar(PI, V, RailE)),
                                M.varNode(railVar(PI, V, RailC))));
    return Id;
  }

  // -- Propagation -------------------------------------------------------
  void updatePE(int ProcIdx, int NodeId, Node Add) {
    ProcInfo &PI = Procs[ProcIdx];
    Node U = M.mkOr(PI.PE[NodeId], Add);
    if (U == PI.PE[NodeId])
      return;
    PI.PE[NodeId] = U;
    PI.Log[NodeId].emplace_back(++Rank, U);
    Worklist.emplace_back(ProcIdx, NodeId);
    if (Stats)
      Stats->add("bebop.pe_updates");
  }

  void seedEntry(int ProcIdx, Node EntryStatesE, int CallerProc,
                 int CallerNode) {
    ProcInfo &PI = Procs[ProcIdx];
    Node NewStates = M.mkAnd(EntryStatesE, M.mkNot(PI.EntrySeen));
    if (NewStates == BddManager::False)
      return;
    PI.EntrySeen = M.mkOr(PI.EntrySeen, NewStates);
    PI.EntryLog.push_back(
        {++Rank, NewStates, CallerProc, CallerNode});
    Node Seed = M.mkAnd(M.mkAnd(NewStates, identity(PI)), PI.EnforceBdd);
    updatePE(ProcIdx, PI.Cfg->entry(), Seed);
  }

  void processCall(int ProcIdx, int NodeId) {
    ProcInfo &Caller = Procs[ProcIdx];
    const CfgNode &N = Caller.Cfg->node(NodeId);
    const BStmt *CallS = N.Stmt;
    int CalleeIdx = ProcIndex.at(CallS->Callee);
    ProcInfo &Callee = Procs[CalleeIdx];
    Node S = Caller.PE[NodeId];
    if (S == BddManager::False)
      return;

    // 1. Propagate entry states into the callee.
    {
      std::vector<int> Choices;
      Node In = bindIn(Caller, Callee, CallS, Choices);
      std::vector<int> Quant = allRailVars(Caller, {RailE, RailC});
      Quant.insert(Quant.end(), Choices.begin(), Choices.end());
      Node EntrySE = M.andExists(S, In, Quant);
      std::map<int, int> Ren;
      for (int V = 0; V != Callee.numVars(); ++V)
        Ren[railVar(Callee, V, RailSE)] = railVar(Callee, V, RailE);
      seedEntry(CalleeIdx, M.rename(EntrySE, Ren), ProcIdx, NodeId);
    }

    // 2. Apply the callee summary, if any.
    if (Callee.Summary == BddManager::False)
      return;
    std::vector<int> Choices;
    Node In = bindIn(Caller, Callee, CallS, Choices);
    std::vector<int> ChangedIdx;
    Node OutBind = bindOut(Caller, Callee, CallS, ChangedIdx);
    Node Left = M.mkAnd(M.mkAnd(S, In), OutBind);
    std::vector<int> Quant = allRailVars(Callee, {RailSE, RailSC});
    Quant.insert(Quant.end(), Choices.begin(), Choices.end());
    for (int VI : ChangedIdx)
      Quant.push_back(railVar(Caller, VI, RailC));
    Node Comb = M.andExists(Left, Callee.Summary, Quant);
    std::map<int, int> Ren;
    for (int VI : ChangedIdx)
      Ren[railVar(Caller, VI, RailN)] = railVar(Caller, VI, RailC);
    Node Out = M.mkAnd(M.rename(Comb, Ren), Caller.EnforceBdd);
    for (int Succ : N.Succs)
      updatePE(ProcIdx, Succ, Out);
  }

  void updateSummary(int ProcIdx) {
    ProcInfo &PI = Procs[ProcIdx];
    Node ExitPE = PI.PE[PI.Cfg->exit()];
    // Project away locals/params on the C rail and locals/rets on E.
    std::vector<int> Quant;
    for (int V = PI.NumGlobals;
         V != PI.NumGlobals + PI.NumParams + PI.NumLocals; ++V)
      Quant.push_back(railVar(PI, V, RailC));
    for (int V = PI.NumGlobals + PI.NumParams; V != PI.numVars(); ++V)
      Quant.push_back(railVar(PI, V, RailE));
    Node Sum = M.exists(ExitPE, Quant);
    // Rename E (globals+params) -> SE; C (globals) and C (rets) -> SC.
    std::map<int, int> Ren;
    for (int V = 0; V != PI.NumGlobals + PI.NumParams; ++V)
      Ren[railVar(PI, V, RailE)] = railVar(PI, V, RailSE);
    for (int V = 0; V != PI.NumGlobals; ++V)
      Ren[railVar(PI, V, RailC)] = railVar(PI, V, RailSC);
    int RetBase = PI.NumGlobals + PI.NumParams + PI.NumLocals;
    for (int V = RetBase; V != PI.numVars(); ++V)
      Ren[railVar(PI, V, RailC)] = railVar(PI, V, RailSC);
    Sum = M.rename(Sum, Ren);

    Node U = M.mkOr(PI.Summary, Sum);
    if (U == PI.Summary)
      return;
    PI.Summary = U;
    PI.SummaryLog.emplace_back(++Rank, U);
    auto It = CallSites.find(ProcIdx);
    if (It != CallSites.end())
      for (const auto &[CP, CN] : It->second)
        Worklist.emplace_back(CP, CN);
    if (Stats)
      Stats->add("bebop.summary_updates");
  }

  void checkAssert(int ProcIdx, int NodeId) {
    if (Failed)
      return;
    ProcInfo &PI = Procs[ProcIdx];
    const CfgNode &N = PI.Cfg->node(NodeId);
    std::vector<int> Ch;
    Node C = N.Cond ? encode(PI, N.Cond, Ch) : BddManager::True;
    Node Bad = M.exists(M.mkNot(C), Ch);
    Node Fail = M.mkAnd(PI.PE[NodeId], Bad);
    if (Fail == BddManager::False)
      return;
    Failed = true;
    FailProc = ProcIdx;
    FailNode = NodeId;
    FailStates = Fail;
  }

  // -- Main loop ------------------------------------------------------------
  void run(const std::string &EntryProc, bool StopAtFirstViolation) {
    auto It = ProcIndex.find(EntryProc);
    assert(It != ProcIndex.end() && "unknown entry procedure");
    seedEntry(It->second, BddManager::True, -1, -1);

    while (!Worklist.empty()) {
      if (Failed && StopAtFirstViolation)
        break;
      auto [ProcIdx, NodeId] = Worklist.front();
      Worklist.pop_front();
      ProcInfo &PI = Procs[ProcIdx];
      const CfgNode &N = PI.Cfg->node(NodeId);
      if (Stats)
        Stats->add("bebop.steps");

      if (N.Op == NodeOp::Call) {
        processCall(ProcIdx, NodeId);
        continue;
      }
      if (N.Op == NodeOp::Assert)
        checkAssert(ProcIdx, NodeId);
      if (N.Op == NodeOp::Exit) {
        updateSummary(ProcIdx);
        continue;
      }
      Node Out = post(PI, NodeId, PI.PE[NodeId]);
      for (int Succ : N.Succs)
        updatePE(ProcIdx, Succ, Out);
    }
  }

  // -- Trace reconstruction -------------------------------------------------
  /// PE of (Proc, Node) strictly before \p RankBound; False if none.
  Node peBefore(int ProcIdx, int NodeId, uint64_t RankBound,
                uint64_t *FoundRank = nullptr) {
    const auto &Log = Procs[ProcIdx].Log[NodeId];
    Node Best = BddManager::False;
    uint64_t BestRank = 0;
    for (const auto &[R, Cum] : Log) {
      if (R >= RankBound)
        break;
      Best = Cum;
      BestRank = R;
    }
    if (FoundRank)
      *FoundRank = BestRank;
    return Best;
  }

  /// Earliest rank at which (Proc,Node)'s PE intersects \p X (< Bound);
  /// 0 if never.
  uint64_t earliestRank(int ProcIdx, int NodeId, Node X, uint64_t Bound) {
    for (const auto &[R, Cum] : Procs[ProcIdx].Log[NodeId]) {
      if (R >= Bound)
        break;
      if (M.mkAnd(Cum, X) != BddManager::False)
        return R;
    }
    return 0;
  }

  Node summaryBefore(int ProcIdx, uint64_t RankBound) {
    Node Best = BddManager::False;
    for (const auto &[R, Sum] : Procs[ProcIdx].SummaryLog) {
      if (R >= RankBound)
        break;
      Best = Sum;
    }
    return Best;
  }

  /// Pre-image of X under the operation of node m (m not a Call).
  Node preOp(ProcInfo &PI, int NodeId, Node X, uint64_t RankBound) {
    const CfgNode &N = PI.Cfg->node(NodeId);
    switch (N.Op) {
    case NodeOp::Entry:
    case NodeOp::Exit:
    case NodeOp::Skip:
      return X;
    case NodeOp::Assume:
    case NodeOp::Assert:
      return M.mkAnd(X, condBdd(PI, N));
    case NodeOp::Assign:
    case NodeOp::Return: {
      std::vector<int> TargetIdx, Choices;
      Node T = N.Op == NodeOp::Assign
                   ? assignRelation(PI, N.Stmt->Targets, N.Stmt->Exprs,
                                    TargetIdx, Choices)
                   : returnRelation(PI, N.Stmt, TargetIdx, Choices);
      std::map<int, int> Ren;
      for (int VI : TargetIdx)
        Ren[railVar(PI, VI, RailC)] = railVar(PI, VI, RailN);
      Node XN = M.rename(X, Ren);
      std::vector<int> Quant = Choices;
      for (int VI : TargetIdx)
        Quant.push_back(railVar(PI, VI, RailN));
      return M.andExists(T, XN, Quant);
    }
    case NodeOp::Call: {
      ProcInfo &Callee = Procs[ProcIndex.at(N.Stmt->Callee)];
      std::vector<int> Choices;
      Node In = bindIn(PI, Callee, N.Stmt, Choices);
      std::vector<int> ChangedIdx;
      Node OutBind = bindOut(PI, Callee, N.Stmt, ChangedIdx);
      Node Sum = summaryBefore(ProcIndex.at(N.Stmt->Callee), RankBound);
      std::map<int, int> Ren;
      for (int VI : ChangedIdx)
        Ren[railVar(PI, VI, RailC)] = railVar(PI, VI, RailN);
      Node XN = M.rename(X, Ren);
      Node Left = M.mkAnd(M.mkAnd(In, OutBind), XN);
      std::vector<int> Quant = allRailVars(Callee, {RailSE, RailSC});
      Quant.insert(Quant.end(), Choices.begin(), Choices.end());
      for (int VI : ChangedIdx)
        Quant.push_back(railVar(PI, VI, RailN));
      return M.andExists(Left, Sum, Quant);
    }
    }
    return X;
  }

  void pushStep(std::vector<TraceStep> &Steps, int ProcIdx, int NodeId) {
    const CfgNode &N = Procs[ProcIdx].Cfg->node(NodeId);
    // Skips are kept when they originate from a real C statement (the
    // abstraction may have erased its effect on the predicates, but
    // Newton's concrete replay still needs it).
    if (N.Op == NodeOp::Skip) {
      if (!N.Stmt || N.Stmt->OriginId < 0)
        return;
      TraceStep S;
      S.ProcName = Procs[ProcIdx].Proc->Name;
      S.Stmt = N.Stmt;
      S.Op = N.Op;
      S.OriginId = N.Stmt->OriginId;
      Steps.push_back(std::move(S));
      return;
    }
    switch (N.Op) {
    case NodeOp::Assign:
    case NodeOp::Call:
    case NodeOp::Assume:
    case NodeOp::Assert:
    case NodeOp::Return: {
      TraceStep S;
      S.ProcName = Procs[ProcIdx].Proc->Name;
      S.Stmt = N.Stmt;
      S.Op = N.Op;
      S.OriginId = N.Stmt ? N.Stmt->OriginId : -1;
      Steps.push_back(std::move(S));
      return;
    }
    default:
      return;
    }
  }

  /// Builds the statement path from \p ProcIdx's entry to \p NodeId
  /// ending in states X (over (E, C)), using only facts established
  /// before \p RankBound. Returns the steps in execution order and the
  /// entry states actually used (over the E rail, context half).
  struct ProcTrace {
    std::vector<TraceStep> Steps;
    Node EntryStates; // Over E rail.
    uint64_t EntryRank;
  };

  ProcTrace traceWithin(int ProcIdx, int NodeId, Node X,
                        uint64_t RankBound) {
    ProcInfo &PI = Procs[ProcIdx];
    std::vector<TraceStep> Rev; // Built backwards.
    int Cur = NodeId;
    Node CurX = X;
    uint64_t Bound = RankBound;

    for (;;) {
      uint64_t R0 = earliestRank(ProcIdx, Cur, CurX, Bound);
      assert(R0 != 0 && "trace target not reachable under bound");
      CurX = M.mkAnd(CurX, peBefore(ProcIdx, Cur, R0 + 1));
      if (PI.Cfg->node(Cur).Op == NodeOp::Entry) {
        ProcTrace Out;
        std::reverse(Rev.begin(), Rev.end());
        Out.Steps = std::move(Rev);
        // Context half of the path edge.
        Out.EntryStates = M.exists(CurX, allRailVars(PI, {RailC}));
        Out.EntryRank = R0;
        return Out;
      }

      // Find the producing predecessor.
      int BestPred = -1;
      uint64_t BestRank = 0;
      Node BestY = BddManager::False;
      for (int Pred : PI.Cfg->preds()[Cur]) {
        Node Y = preOp(PI, Pred, CurX, R0);
        if (Y == BddManager::False)
          continue;
        uint64_t R = earliestRank(ProcIdx, Pred, Y, R0);
        if (R == 0)
          continue;
        if (BestPred < 0 || R < BestRank) {
          BestPred = Pred;
          BestRank = R;
          BestY = M.mkAnd(Y, peBefore(ProcIdx, Pred, R + 1));
        }
      }
      assert(BestPred >= 0 && "no producing predecessor found");

      const CfgNode &PredNode = PI.Cfg->node(BestPred);
      if (PredNode.Op == NodeOp::Call) {
        // Splice the callee's internal path between the call and here.
        int CalleeIdx = ProcIndex.at(PredNode.Stmt->Callee);
        ProcInfo &Callee = Procs[CalleeIdx];
        // Callee exit states consistent with (BestY -> CurX).
        std::vector<int> Choices;
        Node In = bindIn(PI, Callee, PredNode.Stmt, Choices);
        std::vector<int> ChangedIdx;
        Node OutBind = bindOut(PI, Callee, PredNode.Stmt, ChangedIdx);
        std::map<int, int> Ren;
        for (int VI : ChangedIdx)
          Ren[railVar(PI, VI, RailC)] = railVar(PI, VI, RailN);
        Node XN = M.rename(CurX, Ren);
        Node W = M.mkAnd(M.mkAnd(BestY, In), OutBind);
        std::vector<int> Quant = allRailVars(PI, {RailE, RailC});
        for (int VI : ChangedIdx)
          Quant.push_back(railVar(PI, VI, RailN));
        Quant.insert(Quant.end(), Choices.begin(), Choices.end());
        Node Z = M.andExists(W, XN, Quant); // Over callee (SE, SC).
        std::map<int, int> Back;
        for (int V = 0; V != Callee.numVars(); ++V) {
          Back[railVar(Callee, V, RailSE)] = railVar(Callee, V, RailE);
          Back[railVar(Callee, V, RailSC)] = railVar(Callee, V, RailC);
        }
        Z = M.rename(Z, Back);
        Node ExitTarget =
            M.mkAnd(Z, peBefore(CalleeIdx, Callee.Cfg->exit(), R0));
        if (ExitTarget != BddManager::False) {
          ProcTrace Sub = traceWithin(CalleeIdx, Callee.Cfg->exit(),
                                      ExitTarget, R0);
          for (auto It = Sub.Steps.rbegin(); It != Sub.Steps.rend(); ++It)
            Rev.push_back(*It);
        }
      }
      pushStep(Rev, ProcIdx, BestPred);
      Cur = BestPred;
      CurX = BestY;
      Bound = R0;
    }
  }

  /// Full interprocedural trace ending at the failing node.
  std::vector<TraceStep> buildTrace() {
    std::vector<TraceStep> Steps;
    int ProcIdx = FailProc;
    int NodeId = FailNode;
    Node X = FailStates;
    uint64_t Bound = Rank + 1;

    // The failing assert itself.
    pushStep(Steps, ProcIdx, NodeId);
    std::vector<TraceStep> Tail = std::move(Steps);

    for (;;) {
      ProcTrace T = traceWithin(ProcIdx, NodeId, X, Bound);
      std::vector<TraceStep> Combined = std::move(T.Steps);
      Combined.insert(Combined.end(), Tail.begin(), Tail.end());
      Tail = std::move(Combined);

      // Ascend to the caller that seeded these entry states.
      ProcInfo &PI = Procs[ProcIdx];
      const ProcInfo::EntryRec *Rec = nullptr;
      for (const auto &E : PI.EntryLog) {
        if (E.Rank > T.EntryRank)
          break;
        if (M.mkAnd(E.States, T.EntryStates) != BddManager::False)
          Rec = &E;
        if (Rec && E.Rank == T.EntryRank)
          break;
      }
      if (!Rec || Rec->CallerProc < 0)
        return Tail; // Entry procedure reached.

      // Caller states at the call node consistent with the entry states.
      ProcInfo &Caller = Procs[Rec->CallerProc];
      const CfgNode &CallN = Caller.Cfg->node(Rec->CallerNode);
      ProcInfo &Callee = PI;
      std::vector<int> Choices;
      Node In = bindIn(Caller, Callee, CallN.Stmt, Choices);
      std::map<int, int> Ren;
      for (int V = 0; V != Callee.numVars(); ++V)
        Ren[railVar(Callee, V, RailE)] = railVar(Callee, V, RailSE);
      Node EntrySE = M.rename(M.mkAnd(T.EntryStates, Rec->States), Ren);
      std::vector<int> Quant = allRailVars(Callee, {RailSE});
      Quant.insert(Quant.end(), Choices.begin(), Choices.end());
      Node CallerX = M.andExists(In, EntrySE, Quant);
      CallerX = M.mkAnd(
          CallerX, peBefore(Rec->CallerProc, Rec->CallerNode, Rec->Rank));

      // The call statement itself precedes the callee's steps.
      std::vector<TraceStep> CallStep;
      pushStep(CallStep, Rec->CallerProc, Rec->CallerNode);
      CallStep.insert(CallStep.end(), Tail.begin(), Tail.end());
      Tail = std::move(CallStep);

      ProcIdx = Rec->CallerProc;
      NodeId = Rec->CallerNode;
      X = CallerX;
      Bound = Rec->Rank;
    }
  }
};

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

Bebop::Bebop(const BProgram &P, StatsRegistry *Stats)
    : M(std::make_unique<Impl>(P, Stats)) {}

Bebop::~Bebop() = default;

CheckResult Bebop::run(const std::string &EntryProc,
                       bool StopAtFirstViolation) {
  TraceSpan Span("bebop.run", "bebop");
  M->run(EntryProc, StopAtFirstViolation);
  CheckResult R;
  R.AssertViolated = M->Failed;
  if (M->Failed) {
    R.FailingProc = M->Procs[M->FailProc].Proc->Name;
    R.FailingStmt = M->Procs[M->FailProc].Cfg->node(M->FailNode).Stmt;
    R.Trace = M->buildTrace();
  }
  if (M->Stats) {
    // Peak node count is a gauge: across CEGAR iterations (and merged
    // registries) the maximum, not the sum or the last value, is the
    // quantity the paper's tables report.
    M->Stats->setMax("bebop.bdd_nodes", M->M.numNodes());
    M->M.reportStats(*M->Stats, "bebop.bdd.");
  }
  if (Span.enabled()) {
    Span.arg("violated", R.AssertViolated ? "yes" : "no");
    Span.arg("bdd_nodes", static_cast<uint64_t>(M->M.numNodes()));
  }
  return R;
}

size_t Bebop::bddNodes() const { return M->M.numNodes(); }

std::optional<std::vector<std::map<std::string, bool>>>
Bebop::reachableAtLabel(const std::string &Proc,
                        const std::string &Label) const {
  auto It = M->ProcIndex.find(Proc);
  if (It == M->ProcIndex.end())
    return std::nullopt;
  Impl::ProcInfo &PI = M->Procs[It->second];
  int NodeId = PI.Cfg->nodeOfLabel(Label);
  if (NodeId < 0)
    return std::nullopt;
  // Project the path edge to the current state.
  Node Reach = M->M.exists(PI.PE[NodeId], M->allRailVars(PI, {RailE}));
  std::vector<std::map<std::string, bool>> Out;
  M->M.forEachCube(Reach, [&](const std::map<int, bool> &Cube) {
    std::map<std::string, bool> Named;
    for (const auto &[Var, Value] : Cube) {
      int Idx = (Var - PI.Base) / 5;
      Named[PI.Vars[Idx]] = Value;
    }
    Out.push_back(std::move(Named));
  });
  return Out;
}

bool Bebop::labelReachable(const std::string &Proc,
                           const std::string &Label) const {
  auto Cubes = reachableAtLabel(Proc, Label);
  return Cubes && !Cubes->empty();
}

std::string Bebop::invariantAtLabel(const std::string &Proc,
                                    const std::string &Label) const {
  auto Cubes = reachableAtLabel(Proc, Label);
  if (!Cubes)
    return "<unknown label>";
  if (Cubes->empty())
    return "false";
  std::string Out;
  bool FirstCube = true;
  for (const auto &Cube : *Cubes) {
    if (!FirstCube)
      Out += " || ";
    FirstCube = false;
    if (Cube.empty()) {
      Out += "true";
      continue;
    }
    bool Paren = Cubes->size() > 1 && Cube.size() > 1;
    if (Paren)
      Out += '(';
    bool First = true;
    for (const auto &[Name, Value] : Cube) {
      if (!First)
        Out += " && ";
      First = false;
      std::string Rendered = Name;
      if (Name.find_first_of(" ()<>=!&|*+-/%[]") != std::string::npos)
        Rendered = "{" + Name + "}";
      Out += (Value ? "" : "!") + Rendered;
    }
    if (Paren)
      Out += ')';
  }
  return Out;
}
