//===- Bebop.h - Interprocedural model checker for boolean programs -*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bebop [5]: computes the set of reachable states for each statement of
/// a boolean program by interprocedural dataflow analysis in the spirit
/// of Sharir–Pnueli and Reps–Horwitz–Sagiv [31, 28], with sets of bit
/// vectors represented as BDDs and control flow kept explicit.
///
/// The core object is the *path edge* PE(n) ⊆ Entry × Current for each
/// CFG node n of each procedure: pairs (state at procedure entry, state
/// at n). Procedure summaries are PE(exit) projected to the visible
/// state (globals in/out, parameters in, return values out) and are
/// applied at call sites, giving precise call/return matching including
/// recursion. Disjunctive completion is inherent to the BDD union.
///
/// Besides reachability, the checker reports assertion failures with a
/// hierarchical counterexample trace (used by SLAM's Newton step) and
/// renders per-label invariants as boolean functions over the predicate
/// variables — the output shown in Section 2.2 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef BEBOP_BEBOP_H
#define BEBOP_BEBOP_H

#include "bdd/Bdd.h"
#include "bebop/Cfg.h"
#include "bp/BPAst.h"
#include "support/Stats.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace slam {
namespace bebop {

/// One step of a counterexample trace: a statement of some procedure.
struct TraceStep {
  std::string ProcName;
  const bp::BStmt *Stmt; ///< May be null for entry/exit steps.
  NodeOp Op;
  /// Originating C statement id (from BStmt::OriginId), or -1.
  int OriginId = -1;
};

/// Result of a reachability check.
struct CheckResult {
  bool AssertViolated = false;
  /// Failing assert (when violated).
  std::string FailingProc;
  const bp::BStmt *FailingStmt = nullptr;
  /// Interprocedural statement path from the entry procedure to the
  /// failing assert (inclusive).
  std::vector<TraceStep> Trace;
};

/// The model checker. Construct once per boolean program, call run(),
/// then query invariants / results.
class Bebop {
public:
  explicit Bebop(const bp::BProgram &P, StatsRegistry *Stats = nullptr);
  ~Bebop();

  /// Runs reachability from \p EntryProc (globals and parameters
  /// unconstrained). Returns the verdict with a counterexample trace if
  /// some assert can fail. With \p StopAtFirstViolation (the default),
  /// propagation halts as soon as a violation is recorded — a
  /// "Validated" verdict always reflects the complete fixpoint either
  /// way, but label invariants queried after an early stop may be
  /// under-approximate.
  CheckResult run(const std::string &EntryProc = "main",
                  bool StopAtFirstViolation = true);

  /// The invariant (set of reachable states) at the statement labeled
  /// \p Label in \p Proc, as a disjunction of cubes over the variables
  /// in scope. Empty optional if the label is unknown or run() has not
  /// executed.
  std::optional<std::vector<std::map<std::string, bool>>>
  reachableAtLabel(const std::string &Proc, const std::string &Label) const;

  /// Renders reachableAtLabel as the paper prints invariants, e.g.
  /// "(!{curr == NULL} && {curr->val > v}) || (...)".
  std::string invariantAtLabel(const std::string &Proc,
                               const std::string &Label) const;

  /// True if the labeled statement is reachable at all.
  bool labelReachable(const std::string &Proc,
                      const std::string &Label) const;

  /// Peak BDD node count (reported in benchmarks).
  size_t bddNodes() const;

private:
  struct Impl;
  std::unique_ptr<Impl> M;
};

} // namespace bebop
} // namespace slam

#endif // BEBOP_BEBOP_H
