//===- Cfg.cpp - Lowering boolean procedures to explicit CFGs --------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "bebop/Cfg.h"

using namespace slam;
using namespace slam::bebop;
using namespace slam::bp;

int ProcCfg::makeNode(NodeOp Op, const BStmt *S, const BExpr *Cond) {
  CfgNode N;
  N.Op = Op;
  N.Stmt = S;
  N.Cond = Cond;
  Nodes.push_back(std::move(N));
  return static_cast<int>(Nodes.size() - 1);
}

ProcCfg::ProcCfg(const BProc &Proc, DiagnosticEngine &Diags)
    : Proc(Proc), Diags(Diags) {
  EntryNode = makeNode(NodeOp::Entry);
  ExitNode = makeNode(NodeOp::Exit);
  int Cur = EntryNode;
  if (Proc.Body)
    for (const BStmt *S : Proc.Body->Stmts) {
      // After goto/return/break, later statements are unreachable by
      // fall-through but may carry labels; anchor them to an orphan
      // node (which never accumulates states on its own).
      if (Cur < 0)
        Cur = makeNode(NodeOp::Skip);
      Cur = lower(*S, Cur);
    }
  if (Cur >= 0)
    addEdge(Cur, ExitNode); // Fall off the end.

  // Patch gotos.
  for (const auto &[S, NodeId] : PendingGotos) {
    for (const std::string &Label : S->Labels) {
      auto It = LabelNodes.find(Label);
      if (It == LabelNodes.end()) {
        Diags.error(SourceLoc(), "goto to undefined label '" + Label + "'");
        continue;
      }
      addEdge(NodeId, It->second);
    }
  }
}

int ProcCfg::lower(const BStmt &S, int Cur) {
  switch (S.Kind) {
  case BStmtKind::Block: {
    for (const BStmt *Sub : S.Stmts) {
      if (Cur < 0)
        Cur = makeNode(NodeOp::Skip); // Orphan anchor after a jump.
      Cur = lower(*Sub, Cur);
    }
    return Cur;
  }
  case BStmtKind::Skip: {
    int N = makeNode(NodeOp::Skip, &S);
    addEdge(Cur, N);
    return N;
  }
  case BStmtKind::Assign: {
    int N = makeNode(NodeOp::Assign, &S);
    addEdge(Cur, N);
    return N;
  }
  case BStmtKind::Call: {
    int N = makeNode(NodeOp::Call, &S);
    addEdge(Cur, N);
    return N;
  }
  case BStmtKind::Assume: {
    int N = makeNode(NodeOp::Assume, &S, S.Cond);
    addEdge(Cur, N);
    return N;
  }
  case BStmtKind::Assert: {
    int N = makeNode(NodeOp::Assert, &S, S.Cond);
    addEdge(Cur, N);
    return N;
  }
  case BStmtKind::If: {
    int TrueSide = makeNode(NodeOp::Assume, &S, S.Cond);
    int FalseSide = makeNode(NodeOp::Assume, &S, S.Cond);
    Nodes[FalseSide].NegateCond = true;
    addEdge(Cur, TrueSide);
    addEdge(Cur, FalseSide);
    int ThenEnd = lower(*S.Then, TrueSide);
    int ElseEnd = S.Else ? lower(*S.Else, FalseSide) : FalseSide;
    int Join = makeNode(NodeOp::Skip, &S);
    if (ThenEnd >= 0)
      addEdge(ThenEnd, Join);
    if (ElseEnd >= 0)
      addEdge(ElseEnd, Join);
    return Join;
  }
  case BStmtKind::While: {
    int Header = makeNode(NodeOp::Skip, &S);
    addEdge(Cur, Header);
    int EnterBody = makeNode(NodeOp::Assume, &S, S.Cond);
    int LeaveLoop = makeNode(NodeOp::Assume, &S, S.Cond);
    Nodes[LeaveLoop].NegateCond = true;
    addEdge(Header, EnterBody);
    addEdge(Header, LeaveLoop);
    int After = makeNode(NodeOp::Skip, &S);
    addEdge(LeaveLoop, After);
    BreakTargets.push_back(After);
    ContinueTargets.push_back(Header);
    int BodyEnd = lower(*S.Body, EnterBody);
    if (BodyEnd >= 0)
      addEdge(BodyEnd, Header);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    return After;
  }
  case BStmtKind::Goto: {
    int N = makeNode(NodeOp::Skip, &S);
    addEdge(Cur, N);
    PendingGotos.emplace_back(&S, N);
    return -1;
  }
  case BStmtKind::Label: {
    int N = makeNode(NodeOp::Skip, &S);
    addEdge(Cur, N);
    LabelNodes[S.LabelName] = N;
    return lower(*S.Sub, N);
  }
  case BStmtKind::Return: {
    int N = makeNode(NodeOp::Return, &S);
    addEdge(Cur, N);
    addEdge(N, ExitNode);
    return -1;
  }
  case BStmtKind::Break: {
    int N = makeNode(NodeOp::Skip, &S);
    addEdge(Cur, N);
    addEdge(N, BreakTargets.back());
    return -1;
  }
  case BStmtKind::Continue: {
    int N = makeNode(NodeOp::Skip, &S);
    addEdge(Cur, N);
    addEdge(N, ContinueTargets.back());
    return -1;
  }
  }
  return Cur;
}

int ProcCfg::nodeOfLabel(const std::string &Label) const {
  auto It = LabelNodes.find(Label);
  return It == LabelNodes.end() ? -1 : It->second;
}

const std::vector<std::vector<int>> &ProcCfg::preds() const {
  if (Preds.empty()) {
    Preds.resize(Nodes.size());
    for (int N = 0; N != numNodes(); ++N)
      for (int S : Nodes[N].Succs)
        Preds[S].push_back(N);
  }
  return Preds;
}
