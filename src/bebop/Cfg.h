//===- Cfg.h - Control-flow graphs for boolean programs ---------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit control-flow graph per boolean procedure — Bebop represents
/// control explicitly (like a compiler) and only the data portion of the
/// state symbolically [5]. Structured statements lower to edges:
/// `if (e)` becomes a fork through assume(e) / assume(!e) nodes (a `*`
/// condition leaves both assumes trivially true), `while` likewise with
/// a back edge, and `goto L1, L2` becomes a nondeterministic fork.
///
//===----------------------------------------------------------------------===//

#ifndef BEBOP_CFG_H
#define BEBOP_CFG_H

#include "bp/BPAst.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace slam {
namespace bebop {

/// Operation performed by one CFG node.
enum class NodeOp {
  Entry,
  Exit,   ///< Shared procedure exit; Return nodes feed into it.
  Skip,
  Assign,
  Call,
  Assume, ///< Cond holds (from `assume` or a lowered branch).
  Assert,
  Return, ///< Carries the return expressions.
};

struct CfgNode {
  NodeOp Op;
  /// Originating statement (null for Entry/Exit and synthesized
  /// assumes, which instead reference the branch statement).
  const bp::BStmt *Stmt = nullptr;
  /// Condition for Assume/Assert; null means `true`.
  const bp::BExpr *Cond = nullptr;
  /// Assume nodes lowered from the false side of a branch evaluate the
  /// negation of Cond.
  bool NegateCond = false;
  std::vector<int> Succs;
};

/// CFG of one boolean procedure.
class ProcCfg {
public:
  /// Builds the graph; label resolution errors go to \p Diags (the
  /// program should already have passed verifyBProgram).
  ProcCfg(const bp::BProc &Proc, DiagnosticEngine &Diags);

  const bp::BProc &proc() const { return Proc; }
  int entry() const { return EntryNode; }
  int exit() const { return ExitNode; }
  int numNodes() const { return static_cast<int>(Nodes.size()); }
  const CfgNode &node(int Id) const { return Nodes[Id]; }

  /// Node of the statement labeled \p Label, or -1.
  int nodeOfLabel(const std::string &Label) const;

  /// Predecessor lists (computed once on demand).
  const std::vector<std::vector<int>> &preds() const;

private:
  int makeNode(NodeOp Op, const bp::BStmt *S = nullptr,
               const bp::BExpr *Cond = nullptr);
  void addEdge(int From, int To) { Nodes[From].Succs.push_back(To); }
  /// Lowers \p S; control flows from \p Cur into the lowered nodes and
  /// the function returns the node control leaves from (-1 if control
  /// never falls through, e.g. after goto/return).
  int lower(const bp::BStmt &S, int Cur);

  const bp::BProc &Proc;
  DiagnosticEngine &Diags;
  std::vector<CfgNode> Nodes;
  int EntryNode = -1;
  int ExitNode = -1;
  std::map<std::string, int> LabelNodes;
  std::vector<std::pair<const bp::BStmt *, int>> PendingGotos;
  std::vector<int> BreakTargets;    // Stack of loop-exit join nodes.
  std::vector<int> ContinueTargets; // Stack of loop-header nodes.
  mutable std::vector<std::vector<int>> Preds;
};

} // namespace bebop
} // namespace slam

#endif // BEBOP_CFG_H
