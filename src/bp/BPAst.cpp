//===- BPAst.cpp - Boolean program printing and expression helpers ---------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "bp/BPAst.h"

#include <cctype>

using namespace slam;
using namespace slam::bp;

//===----------------------------------------------------------------------===//
// Expression helpers with light folding
//===----------------------------------------------------------------------===//

const BExpr *BProgram::constant(bool Value) {
  BExpr *E = makeExpr(BExprKind::Const);
  E->BoolValue = Value;
  return E;
}

const BExpr *BProgram::star() { return makeExpr(BExprKind::Star); }

const BExpr *BProgram::varRef(const std::string &Name) {
  BExpr *E = makeExpr(BExprKind::VarRef);
  E->Name = Name;
  return E;
}

const BExpr *BProgram::notE(const BExpr *E) {
  if (E->Kind == BExprKind::Const)
    return constant(!E->BoolValue);
  if (E->Kind == BExprKind::Not)
    return E->Ops[0];
  if (E->Kind == BExprKind::Star)
    return E; // !* is still *.
  BExpr *N = makeExpr(BExprKind::Not);
  N->Ops.push_back(E);
  return N;
}

const BExpr *BProgram::andE(const BExpr *L, const BExpr *R) {
  if (L->Kind == BExprKind::Const)
    return L->BoolValue ? R : L;
  if (R->Kind == BExprKind::Const)
    return R->BoolValue ? L : R;
  BExpr *N = makeExpr(BExprKind::And);
  N->Ops.push_back(L);
  N->Ops.push_back(R);
  return N;
}

const BExpr *BProgram::orE(const BExpr *L, const BExpr *R) {
  if (L->Kind == BExprKind::Const)
    return L->BoolValue ? L : R;
  if (R->Kind == BExprKind::Const)
    return R->BoolValue ? R : L;
  BExpr *N = makeExpr(BExprKind::Or);
  N->Ops.push_back(L);
  N->Ops.push_back(R);
  return N;
}

const BExpr *BProgram::choose(const BExpr *Pos, const BExpr *Neg) {
  // choose(true, _) = true; choose(false, true) = false;
  // choose(false, false) = *.
  if (Pos->Kind == BExprKind::Const) {
    if (Pos->BoolValue)
      return constant(true);
    if (Neg->Kind == BExprKind::Const)
      return Neg->BoolValue ? constant(false) : star();
  }
  BExpr *N = makeExpr(BExprKind::Choose);
  N->Ops.push_back(Pos);
  N->Ops.push_back(Neg);
  return N;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

bool isPlainIdentifier(const std::string &Name) {
  if (Name.empty())
    return false;
  if (!std::isalpha(static_cast<unsigned char>(Name[0])) && Name[0] != '_')
    return false;
  for (char C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
      return false;
  return true;
}

std::string printVarName(const std::string &Name) {
  return isPlainIdentifier(Name) ? Name : "{" + Name + "}";
}

enum Prec { PrecOr = 1, PrecAnd = 2, PrecEq = 3, PrecNot = 4 };

void printExpr(const BExpr &E, int ParentPrec, std::string &Out) {
  switch (E.Kind) {
  case BExprKind::Const:
    Out += E.BoolValue ? "true" : "false";
    return;
  case BExprKind::Star:
    Out += "*";
    return;
  case BExprKind::VarRef:
    Out += printVarName(E.Name);
    return;
  case BExprKind::Not:
    Out += "!";
    printExpr(*E.Ops[0], PrecNot, Out);
    return;
  case BExprKind::Choose:
    Out += "choose(";
    printExpr(*E.Ops[0], 0, Out);
    Out += ", ";
    printExpr(*E.Ops[1], 0, Out);
    Out += ")";
    return;
  default:
    break;
  }
  int Prec = E.Kind == BExprKind::Or    ? PrecOr
             : E.Kind == BExprKind::And ? PrecAnd
                                        : PrecEq;
  bool Paren = Prec < ParentPrec;
  if (Paren)
    Out += '(';
  const char *Op = E.Kind == BExprKind::Or    ? " || "
                   : E.Kind == BExprKind::And ? " && "
                   : E.Kind == BExprKind::Eq  ? " == "
                                              : " != ";
  printExpr(*E.Ops[0], Prec + 1, Out);
  Out += Op;
  printExpr(*E.Ops[1], Prec + 1, Out);
  if (Paren)
    Out += ')';
}

void printList(const std::vector<std::string> &Names, std::string &Out) {
  for (size_t I = 0; I != Names.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += printVarName(Names[I]);
  }
}

void printStmtImpl(const BStmt &S, unsigned Indent, std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  switch (S.Kind) {
  case BStmtKind::Block:
    for (const BStmt *Sub : S.Stmts)
      printStmtImpl(*Sub, Indent, Out);
    return;
  case BStmtKind::Assign: {
    Out += Pad;
    printList(S.Targets, Out);
    Out += " := ";
    for (size_t I = 0; I != S.Exprs.size(); ++I) {
      if (I != 0)
        Out += ", ";
      printExpr(*S.Exprs[I], 0, Out);
    }
    Out += ";\n";
    return;
  }
  case BStmtKind::Call: {
    Out += Pad;
    if (!S.Targets.empty()) {
      printList(S.Targets, Out);
      Out += " := ";
    }
    Out += "call " + S.Callee + "(";
    for (size_t I = 0; I != S.Exprs.size(); ++I) {
      if (I != 0)
        Out += ", ";
      printExpr(*S.Exprs[I], 0, Out);
    }
    Out += ");\n";
    return;
  }
  case BStmtKind::Skip:
    Out += Pad + "skip;\n";
    return;
  case BStmtKind::Assume:
    Out += Pad + "assume(";
    printExpr(*S.Cond, 0, Out);
    Out += ");\n";
    return;
  case BStmtKind::Assert:
    Out += Pad + "assert(";
    printExpr(*S.Cond, 0, Out);
    Out += ");\n";
    return;
  case BStmtKind::If:
    Out += Pad + "if (";
    printExpr(*S.Cond, 0, Out);
    Out += ") begin\n";
    printStmtImpl(*S.Then, Indent + 1, Out);
    if (S.Else) {
      Out += Pad + "end else begin\n";
      printStmtImpl(*S.Else, Indent + 1, Out);
    }
    Out += Pad + "end\n";
    return;
  case BStmtKind::While:
    Out += Pad + "while (";
    printExpr(*S.Cond, 0, Out);
    Out += ") begin\n";
    printStmtImpl(*S.Body, Indent + 1, Out);
    Out += Pad + "end\n";
    return;
  case BStmtKind::Goto: {
    Out += Pad + "goto ";
    for (size_t I = 0; I != S.Labels.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += S.Labels[I];
    }
    Out += ";\n";
    return;
  }
  case BStmtKind::Label:
    Out += Pad + S.LabelName + ":\n";
    printStmtImpl(*S.Sub, Indent, Out);
    return;
  case BStmtKind::Return: {
    Out += Pad + "return";
    for (size_t I = 0; I != S.Exprs.size(); ++I) {
      Out += I == 0 ? " " : ", ";
      printExpr(*S.Exprs[I], 0, Out);
    }
    Out += ";\n";
    return;
  }
  case BStmtKind::Break:
    Out += Pad + "break;\n";
    return;
  case BStmtKind::Continue:
    Out += Pad + "continue;\n";
    return;
  }
}

} // namespace

std::string BExpr::str() const {
  std::string Out;
  printExpr(*this, 0, Out);
  return Out;
}

std::string bp::printBStmt(const BStmt &S, unsigned Indent) {
  std::string Out;
  printStmtImpl(S, Indent, Out);
  return Out;
}

std::string BProgram::str() const {
  std::string Out;
  if (!Globals.empty()) {
    Out += "decl ";
    printList(Globals, Out);
    Out += ";\n\n";
  }
  for (const BProc *P : Procs) {
    if (P->NumReturns == 0)
      Out += "void ";
    else
      Out += "bool<" + std::to_string(P->NumReturns) + "> ";
    Out += P->Name + "(";
    printList(P->Params, Out);
    Out += ") begin\n";
    if (!P->Locals.empty()) {
      Out += "  decl ";
      printList(P->Locals, Out);
      Out += ";\n";
    }
    if (P->Enforce) {
      Out += "  enforce ";
      printExpr(*P->Enforce, 0, Out);
      Out += ";\n";
    }
    if (P->Body)
      printStmtImpl(*P->Body, 1, Out);
    Out += "end\n\n";
  }
  return Out;
}
