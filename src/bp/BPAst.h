//===- BPAst.h - Boolean program abstract syntax ----------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The boolean program language of Bebop [5] as used in the paper:
/// programs whose only type is bool, with global variables, procedures
/// with call-by-value parameters, local variables, and multiple return
/// values; parallel assignment; the nondeterministic expression `*`; the
/// `choose(pos, neg)` three-valued update; `assume`/`assert`; `goto`
/// with one or more (nondeterministically chosen) targets; and the
/// per-procedure `enforce` data invariant of Section 5.1.
///
/// Variable names may be arbitrary strings — C2bp names the variable
/// tracking predicate e as "{e}", exactly as in the paper's Figure 1(b).
///
//===----------------------------------------------------------------------===//

#ifndef BP_BPAST_H
#define BP_BPAST_H

#include "support/SourceLoc.h"

#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace slam {
namespace bp {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class BExprKind {
  Const,  ///< true / false.
  Star,   ///< `*` — nondeterministic boolean.
  VarRef, ///< By name; Bebop resolves against scopes.
  Not,
  And,
  Or,
  Eq, ///< Boolean equality (<=>).
  Ne,
  Choose, ///< choose(pos, neg): pos ? true : (neg ? false : *).
};

class BExpr {
public:
  BExprKind Kind;
  bool BoolValue = false;
  std::string Name;
  std::vector<const BExpr *> Ops;

  explicit BExpr(BExprKind Kind) : Kind(Kind) {}

  /// Renders with minimal parentheses; predicate-variable names print
  /// in their { } form.
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class BStmtKind {
  Block,
  Assign, ///< Parallel: Targets := Exprs.
  Call,   ///< Rets := call Callee(Args); Rets may be empty.
  Skip,
  Assume,
  Assert,
  If,
  While,
  Goto, ///< One or more targets; several = nondeterministic choice.
  Label,
  Return, ///< Returns Exprs (arity = proc return arity).
  Break,
  Continue,
};

class BStmt {
public:
  BStmtKind Kind;
  /// Id of the originating C statement (Stmt::Id), or -1 when the
  /// statement has no C counterpart. Counterexample traces map through
  /// this field.
  int OriginId = -1;
  /// For assume statements generated from a C branch: 1 if this assume
  /// guards the then/enter side, 0 for the else/exit side, -1 otherwise.
  /// SLAM's Newton step uses this to replay branch directions.
  int BranchTaken = -1;

  std::vector<std::string> Targets; // Assign / Call returns.
  std::vector<const BExpr *> Exprs; // Assign RHS / Return / Call args.
  const BExpr *Cond = nullptr;      // Assume / Assert / If / While.
  std::string Callee;               // Call.
  std::vector<std::string> Labels;  // Goto targets.
  std::string LabelName;            // Label.
  BStmt *Sub = nullptr;             // Label body.
  BStmt *Then = nullptr;            // If.
  BStmt *Else = nullptr;            // If (may be null).
  BStmt *Body = nullptr;            // While.
  std::vector<BStmt *> Stmts;       // Block.

  explicit BStmt(BStmtKind Kind) : Kind(Kind) {}
};

//===----------------------------------------------------------------------===//
// Procedures and programs
//===----------------------------------------------------------------------===//

struct BProc {
  std::string Name;
  std::vector<std::string> Params;
  /// Names of the return variables (their count is the return arity).
  /// Return statements carry matching expression lists.
  unsigned NumReturns = 0;
  std::vector<std::string> Locals;
  /// Section 5.1's data invariant; assumed between every statement.
  const BExpr *Enforce = nullptr;
  BStmt *Body = nullptr;

  bool hasLocal(const std::string &Name) const {
    for (const std::string &L : Locals)
      if (L == Name)
        return true;
    for (const std::string &P : Params)
      if (P == Name)
        return true;
    return false;
  }
};

/// A whole boolean program; owns all nodes.
class BProgram {
public:
  std::vector<std::string> Globals;
  std::vector<BProc *> Procs;

  BProc *findProc(const std::string &Name) const {
    for (BProc *P : Procs)
      if (P->Name == Name)
        return P;
    return nullptr;
  }

  // -- Node factories -----------------------------------------------------
  BExpr *makeExpr(BExprKind Kind) {
    ExprArena.emplace_back(Kind);
    return &ExprArena.back();
  }
  BStmt *makeStmt(BStmtKind Kind) {
    StmtArena.emplace_back(Kind);
    return &StmtArena.back();
  }
  BProc *makeProc() {
    ProcArena.emplace_back();
    return &ProcArena.back();
  }

  // -- Expression helpers ---------------------------------------------------
  const BExpr *constant(bool Value);
  const BExpr *star();
  const BExpr *varRef(const std::string &Name);
  const BExpr *notE(const BExpr *E);
  const BExpr *andE(const BExpr *L, const BExpr *R);
  const BExpr *orE(const BExpr *L, const BExpr *R);
  const BExpr *choose(const BExpr *Pos, const BExpr *Neg);

  /// Takes ownership of another program's arenas. The parallel
  /// abstraction workers each build expressions into a private
  /// BProgram (arena allocation is not thread-safe); once the pool has
  /// quiesced, the main program adopts the worker arenas so every node
  /// reachable from Procs stays alive. Node pointers remain valid: the
  /// donor's deques are moved wholesale, never spliced element-wise.
  /// The donor's Globals/Procs lists are deliberately ignored — callers
  /// wire procedure structure explicitly, in deterministic order.
  void adopt(std::unique_ptr<BProgram> Donor) {
    AdoptedArenas.push_back(std::move(Donor));
  }

  /// Renders the whole program in concrete syntax (parsable back).
  std::string str() const;

private:
  std::deque<BExpr> ExprArena;
  std::deque<BStmt> StmtArena;
  std::deque<BProc> ProcArena;
  std::vector<std::unique_ptr<BProgram>> AdoptedArenas;
};

/// Renders one statement at the given indent.
std::string printBStmt(const BStmt &S, unsigned Indent = 0);

} // namespace bp
} // namespace slam

#endif // BP_BPAST_H
