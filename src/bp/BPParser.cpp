//===- BPParser.cpp - Parse and verify boolean programs --------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "bp/BPParser.h"

#include <cctype>
#include <map>
#include <set>

using namespace slam;
using namespace slam::bp;

namespace {

enum class Tok {
  End,
  Ident, // Plain or {...} variable name (Text holds the name).
  Int,
  KwDecl,
  KwVoid,
  KwBool,
  KwBegin,
  KwEnd,
  KwSkip,
  KwGoto,
  KwReturn,
  KwAssume,
  KwAssert,
  KwEnforce,
  KwIf,
  KwElse,
  KwWhile,
  KwBreak,
  KwContinue,
  KwCall,
  KwTrue,
  KwFalse,
  LParen,
  RParen,
  Lt,
  Gt,
  Comma,
  Semi,
  Colon,
  ColonEq,
  Star,
  Bang,
  AmpAmp,
  PipePipe,
  EqEq,
  BangEq,
  KwChoose,
  Error,
};

struct Token {
  Tok Kind = Tok::End;
  std::string Text;
  int64_t IntValue = 0;
  SourceLoc Loc;
};

std::vector<Token> lex(std::string_view Source) {
  static const std::map<std::string, Tok> Keywords = {
      {"decl", Tok::KwDecl},     {"void", Tok::KwVoid},
      {"bool", Tok::KwBool},     {"begin", Tok::KwBegin},
      {"end", Tok::KwEnd},       {"skip", Tok::KwSkip},
      {"goto", Tok::KwGoto},     {"return", Tok::KwReturn},
      {"assume", Tok::KwAssume}, {"assert", Tok::KwAssert},
      {"enforce", Tok::KwEnforce}, {"if", Tok::KwIf},
      {"else", Tok::KwElse},     {"while", Tok::KwWhile},
      {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
      {"call", Tok::KwCall},     {"true", Tok::KwTrue},
      {"false", Tok::KwFalse},   {"choose", Tok::KwChoose},
  };

  std::vector<Token> Out;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
  auto Advance = [&](size_t N = 1) {
    for (size_t I = 0; I != N && Pos < Source.size(); ++I) {
      if (Source[Pos] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
      ++Pos;
    }
  };
  auto Peek = [&](size_t Off = 0) -> char {
    return Pos + Off < Source.size() ? Source[Pos + Off] : '\0';
  };

  while (Pos < Source.size()) {
    char C = Peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    if (C == '/' && Peek(1) == '/') {
      while (Pos < Source.size() && Peek() != '\n')
        Advance();
      continue;
    }
    Token T;
    T.Loc = SourceLoc(Line, Col);
    if (C == '{') {
      // A {…} predicate-variable name; braces may not nest.
      Advance();
      std::string Name;
      while (Pos < Source.size() && Peek() != '}') {
        Name += Peek();
        Advance();
      }
      Advance(); // '}'.
      // Trim surrounding blanks inside the braces.
      size_t B = Name.find_first_not_of(" \t");
      size_t E = Name.find_last_not_of(" \t");
      T.Kind = Tok::Ident;
      T.Text = B == std::string::npos ? "" : Name.substr(B, E - B + 1);
      Out.push_back(std::move(T));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Text;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        Text += Peek();
        Advance();
      }
      T.Kind = Tok::Int;
      T.IntValue = std::stoll(Text);
      Out.push_back(std::move(T));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (std::isalnum(static_cast<unsigned char>(Peek())) ||
             Peek() == '_') {
        Text += Peek();
        Advance();
      }
      auto It = Keywords.find(Text);
      T.Kind = It == Keywords.end() ? Tok::Ident : It->second;
      T.Text = std::move(Text);
      Out.push_back(std::move(T));
      continue;
    }
    auto Two = [&](char Next) { return Peek(1) == Next; };
    size_t Len = 1;
    switch (C) {
    case '(': T.Kind = Tok::LParen; break;
    case ')': T.Kind = Tok::RParen; break;
    case '<': T.Kind = Tok::Lt; break;
    case '>': T.Kind = Tok::Gt; break;
    case ',': T.Kind = Tok::Comma; break;
    case ';': T.Kind = Tok::Semi; break;
    case '*': T.Kind = Tok::Star; break;
    case ':':
      if (Two('=')) { T.Kind = Tok::ColonEq; Len = 2; }
      else T.Kind = Tok::Colon;
      break;
    case '!':
      if (Two('=')) { T.Kind = Tok::BangEq; Len = 2; }
      else T.Kind = Tok::Bang;
      break;
    case '&':
      if (Two('&')) { T.Kind = Tok::AmpAmp; Len = 2; }
      else T.Kind = Tok::Error;
      break;
    case '|':
      if (Two('|')) { T.Kind = Tok::PipePipe; Len = 2; }
      else T.Kind = Tok::Error;
      break;
    case '=':
      if (Two('=')) { T.Kind = Tok::EqEq; Len = 2; }
      else T.Kind = Tok::Error;
      break;
    default:
      T.Kind = Tok::Error;
      break;
    }
    T.Text = std::string(Source.substr(Pos, Len));
    Advance(Len);
    Out.push_back(std::move(T));
  }
  Token End;
  End.Loc = SourceLoc(Line, Col);
  Out.push_back(std::move(End));
  return Out;
}

class BPParserImpl {
public:
  BPParserImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Tokens(lex(Source)), Diags(Diags) {
    P = std::make_unique<BProgram>();
  }

  std::unique_ptr<BProgram> run() {
    while (!at(Tok::End)) {
      if (at(Tok::KwDecl)) {
        advance();
        if (!parseNameList(P->Globals) || !expect(Tok::Semi, "';'"))
          return nullptr;
        continue;
      }
      if (!parseProc())
        return nullptr;
    }
    return std::move(P);
  }

private:
  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  std::unique_ptr<BProgram> P;
  size_t Pos = 0;

  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Off = 1) const {
    size_t I = Pos + Off;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(Tok Kind) const { return cur().Kind == Kind; }
  void advance() {
    if (!at(Tok::End))
      ++Pos;
  }
  bool accept(Tok Kind) {
    if (!at(Kind))
      return false;
    advance();
    return true;
  }
  bool expect(Tok Kind, const char *What) {
    if (accept(Kind))
      return true;
    error(std::string("expected ") + What);
    return false;
  }
  void error(const std::string &Message) {
    Diags.error(cur().Loc, Message + " (found '" + cur().Text + "')");
  }

  bool parseNameList(std::vector<std::string> &Out) {
    do {
      if (!at(Tok::Ident)) {
        error("expected variable name");
        return false;
      }
      Out.push_back(cur().Text);
      advance();
    } while (accept(Tok::Comma));
    return true;
  }

  bool parseProc() {
    unsigned NumReturns = 0;
    if (accept(Tok::KwVoid)) {
      NumReturns = 0;
    } else if (accept(Tok::KwBool)) {
      if (!expect(Tok::Lt, "'<'"))
        return false;
      if (!at(Tok::Int)) {
        error("expected return arity");
        return false;
      }
      NumReturns = static_cast<unsigned>(cur().IntValue);
      advance();
      if (!expect(Tok::Gt, "'>'"))
        return false;
    } else {
      error("expected 'void' or 'bool<n>' procedure header");
      return false;
    }
    if (!at(Tok::Ident)) {
      error("expected procedure name");
      return false;
    }
    BProc *Proc = P->makeProc();
    Proc->Name = cur().Text;
    Proc->NumReturns = NumReturns;
    advance();
    if (!expect(Tok::LParen, "'('"))
      return false;
    if (!at(Tok::RParen) && !parseNameList(Proc->Params))
      return false;
    if (!expect(Tok::RParen, "')'") || !expect(Tok::KwBegin, "'begin'"))
      return false;
    while (at(Tok::KwDecl)) {
      advance();
      if (!parseNameList(Proc->Locals) || !expect(Tok::Semi, "';'"))
        return false;
    }
    if (accept(Tok::KwEnforce)) {
      Proc->Enforce = parseExpr();
      if (!Proc->Enforce || !expect(Tok::Semi, "';'"))
        return false;
    }
    BStmt *Body = P->makeStmt(BStmtKind::Block);
    while (!accept(Tok::KwEnd)) {
      if (at(Tok::End)) {
        error("unterminated procedure");
        return false;
      }
      BStmt *S = parseStmt();
      if (!S)
        return false;
      Body->Stmts.push_back(S);
    }
    Proc->Body = Body;
    P->Procs.push_back(Proc);
    return true;
  }

  BStmt *parseBlockUntil(std::initializer_list<Tok> Stops) {
    BStmt *Block = P->makeStmt(BStmtKind::Block);
    for (;;) {
      for (Tok Stop : Stops)
        if (at(Stop))
          return Block;
      if (at(Tok::End)) {
        error("unterminated block");
        return nullptr;
      }
      BStmt *S = parseStmt();
      if (!S)
        return nullptr;
      Block->Stmts.push_back(S);
    }
  }

  BStmt *parseStmt() {
    switch (cur().Kind) {
    case Tok::KwSkip: {
      advance();
      if (!expect(Tok::Semi, "';'"))
        return nullptr;
      return P->makeStmt(BStmtKind::Skip);
    }
    case Tok::KwGoto: {
      advance();
      BStmt *S = P->makeStmt(BStmtKind::Goto);
      do {
        if (!at(Tok::Ident)) {
          error("expected label");
          return nullptr;
        }
        S->Labels.push_back(cur().Text);
        advance();
      } while (accept(Tok::Comma));
      if (!expect(Tok::Semi, "';'"))
        return nullptr;
      return S;
    }
    case Tok::KwReturn: {
      advance();
      BStmt *S = P->makeStmt(BStmtKind::Return);
      if (!at(Tok::Semi)) {
        do {
          const BExpr *E = parseExpr();
          if (!E)
            return nullptr;
          S->Exprs.push_back(E);
        } while (accept(Tok::Comma));
      }
      if (!expect(Tok::Semi, "';'"))
        return nullptr;
      return S;
    }
    case Tok::KwAssume:
    case Tok::KwAssert: {
      bool IsAssume = at(Tok::KwAssume);
      advance();
      if (!expect(Tok::LParen, "'('"))
        return nullptr;
      const BExpr *E = parseExpr();
      if (!E || !expect(Tok::RParen, "')'") || !expect(Tok::Semi, "';'"))
        return nullptr;
      BStmt *S =
          P->makeStmt(IsAssume ? BStmtKind::Assume : BStmtKind::Assert);
      S->Cond = E;
      return S;
    }
    case Tok::KwIf: {
      advance();
      if (!expect(Tok::LParen, "'('"))
        return nullptr;
      const BExpr *Cond = parseExpr();
      if (!Cond || !expect(Tok::RParen, "')'") ||
          !expect(Tok::KwBegin, "'begin'"))
        return nullptr;
      BStmt *Then = parseBlockUntil({Tok::KwEnd});
      if (!Then || !expect(Tok::KwEnd, "'end'"))
        return nullptr;
      BStmt *S = P->makeStmt(BStmtKind::If);
      S->Cond = Cond;
      S->Then = Then;
      if (accept(Tok::KwElse)) {
        if (!expect(Tok::KwBegin, "'begin'"))
          return nullptr;
        S->Else = parseBlockUntil({Tok::KwEnd});
        if (!S->Else || !expect(Tok::KwEnd, "'end'"))
          return nullptr;
      }
      return S;
    }
    case Tok::KwWhile: {
      advance();
      if (!expect(Tok::LParen, "'('"))
        return nullptr;
      const BExpr *Cond = parseExpr();
      if (!Cond || !expect(Tok::RParen, "')'") ||
          !expect(Tok::KwBegin, "'begin'"))
        return nullptr;
      BStmt *Body = parseBlockUntil({Tok::KwEnd});
      if (!Body || !expect(Tok::KwEnd, "'end'"))
        return nullptr;
      BStmt *S = P->makeStmt(BStmtKind::While);
      S->Cond = Cond;
      S->Body = Body;
      return S;
    }
    case Tok::KwBreak:
      advance();
      if (!expect(Tok::Semi, "';'"))
        return nullptr;
      return P->makeStmt(BStmtKind::Break);
    case Tok::KwContinue:
      advance();
      if (!expect(Tok::Semi, "';'"))
        return nullptr;
      return P->makeStmt(BStmtKind::Continue);
    case Tok::KwCall: {
      BStmt *S = P->makeStmt(BStmtKind::Call);
      if (!parseCallRest(S))
        return nullptr;
      return S;
    }
    case Tok::Ident: {
      // Label, assignment, or call with returns.
      if (peek().Kind == Tok::Colon) {
        BStmt *S = P->makeStmt(BStmtKind::Label);
        S->LabelName = cur().Text;
        advance();
        advance();
        S->Sub = parseStmt();
        return S->Sub ? S : nullptr;
      }
      BStmt *S = P->makeStmt(BStmtKind::Assign);
      if (!parseNameList(S->Targets) || !expect(Tok::ColonEq, "':='"))
        return nullptr;
      if (at(Tok::KwCall)) {
        S->Kind = BStmtKind::Call;
        if (!parseCallRest(S))
          return nullptr;
        return S;
      }
      do {
        const BExpr *E = parseExpr();
        if (!E)
          return nullptr;
        S->Exprs.push_back(E);
      } while (accept(Tok::Comma));
      if (!expect(Tok::Semi, "';'"))
        return nullptr;
      return S;
    }
    default:
      error("expected a statement");
      return nullptr;
    }
  }

  bool parseCallRest(BStmt *S) {
    if (!expect(Tok::KwCall, "'call'"))
      return false;
    if (!at(Tok::Ident)) {
      error("expected procedure name");
      return false;
    }
    S->Callee = cur().Text;
    advance();
    if (!expect(Tok::LParen, "'('"))
      return false;
    if (!at(Tok::RParen)) {
      do {
        const BExpr *E = parseExpr();
        if (!E)
          return false;
        S->Exprs.push_back(E);
      } while (accept(Tok::Comma));
    }
    return expect(Tok::RParen, "')'") && expect(Tok::Semi, "';'");
  }

  // Expressions.
  const BExpr *parseExpr() { return parseOr(); }

  const BExpr *parseOr() {
    const BExpr *L = parseAnd();
    if (!L)
      return nullptr;
    while (accept(Tok::PipePipe)) {
      const BExpr *R = parseAnd();
      if (!R)
        return nullptr;
      L = P->orE(L, R);
    }
    return L;
  }

  const BExpr *parseAnd() {
    const BExpr *L = parseEq();
    if (!L)
      return nullptr;
    while (accept(Tok::AmpAmp)) {
      const BExpr *R = parseEq();
      if (!R)
        return nullptr;
      L = P->andE(L, R);
    }
    return L;
  }

  const BExpr *parseEq() {
    const BExpr *L = parseUnary();
    if (!L)
      return nullptr;
    while (at(Tok::EqEq) || at(Tok::BangEq)) {
      bool IsEq = at(Tok::EqEq);
      advance();
      const BExpr *R = parseUnary();
      if (!R)
        return nullptr;
      BExpr *E = P->makeExpr(IsEq ? BExprKind::Eq : BExprKind::Ne);
      E->Ops.push_back(L);
      E->Ops.push_back(R);
      L = E;
    }
    return L;
  }

  const BExpr *parseUnary() {
    if (accept(Tok::Bang)) {
      const BExpr *E = parseUnary();
      return E ? P->notE(E) : nullptr;
    }
    return parsePrimary();
  }

  const BExpr *parsePrimary() {
    switch (cur().Kind) {
    case Tok::KwTrue:
      advance();
      return P->constant(true);
    case Tok::KwFalse:
      advance();
      return P->constant(false);
    case Tok::Star:
      advance();
      return P->star();
    case Tok::KwChoose: {
      advance();
      if (!expect(Tok::LParen, "'('"))
        return nullptr;
      const BExpr *Pos = parseExpr();
      if (!Pos || !expect(Tok::Comma, "','"))
        return nullptr;
      const BExpr *Neg = parseExpr();
      if (!Neg || !expect(Tok::RParen, "')'"))
        return nullptr;
      return P->choose(Pos, Neg);
    }
    case Tok::Ident: {
      const BExpr *E = P->varRef(cur().Text);
      advance();
      return E;
    }
    case Tok::LParen: {
      advance();
      const BExpr *E = parseExpr();
      if (!E || !expect(Tok::RParen, "')'"))
        return nullptr;
      return E;
    }
    default:
      error("expected a boolean expression");
      return nullptr;
    }
  }
};

//===----------------------------------------------------------------------===//
// Verification
//===----------------------------------------------------------------------===//

class Verifier {
public:
  Verifier(const BProgram &P, DiagnosticEngine &Diags)
      : P(P), Diags(Diags) {}

  bool run() {
    for (const BProc *Proc : P.Procs)
      verifyProc(*Proc);
    return !Diags.hasErrors();
  }

private:
  const BProgram &P;
  DiagnosticEngine &Diags;
  const BProc *Cur = nullptr;
  std::set<std::string> Labels;
  unsigned LoopDepth = 0;

  void error(const std::string &Message) {
    Diags.error(SourceLoc(),
                (Cur ? "in " + Cur->Name + ": " : "") + Message);
  }

  bool isDeclared(const std::string &Name) const {
    if (Cur && Cur->hasLocal(Name))
      return true;
    for (const std::string &G : P.Globals)
      if (G == Name)
        return true;
    return false;
  }

  void collectLabels(const BStmt &S) {
    if (S.Kind == BStmtKind::Label) {
      if (!Labels.insert(S.LabelName).second)
        error("duplicate label '" + S.LabelName + "'");
      collectLabels(*S.Sub);
      return;
    }
    for (const BStmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
      if (Sub)
        collectLabels(*Sub);
    for (const BStmt *Sub : S.Stmts)
      collectLabels(*Sub);
  }

  void verifyProc(const BProc &Proc) {
    Cur = &Proc;
    Labels.clear();
    LoopDepth = 0;
    std::set<std::string> Seen;
    for (const std::string &Name : Proc.Params)
      if (!Seen.insert(Name).second)
        error("duplicate parameter '" + Name + "'");
    for (const std::string &Name : Proc.Locals)
      if (!Seen.insert(Name).second)
        error("duplicate local '" + Name + "'");
    if (Proc.Enforce)
      verifyExpr(*Proc.Enforce);
    if (Proc.Body) {
      collectLabels(*Proc.Body);
      verifyStmt(*Proc.Body);
    }
    Cur = nullptr;
  }

  void verifyExpr(const BExpr &E) {
    if (E.Kind == BExprKind::VarRef && !isDeclared(E.Name))
      error("use of undeclared variable '" + E.Name + "'");
    for (const BExpr *Op : E.Ops)
      verifyExpr(*Op);
  }

  void verifyStmt(const BStmt &S) {
    switch (S.Kind) {
    case BStmtKind::Assign:
      if (S.Targets.size() != S.Exprs.size())
        error("parallel assignment arity mismatch");
      for (const std::string &T : S.Targets)
        if (!isDeclared(T))
          error("assignment to undeclared variable '" + T + "'");
      break;
    case BStmtKind::Call: {
      const BProc *Callee = P.findProc(S.Callee);
      if (!Callee) {
        error("call to unknown procedure '" + S.Callee + "'");
        break;
      }
      if (S.Exprs.size() != Callee->Params.size())
        error("wrong number of arguments to '" + S.Callee + "'");
      if (!S.Targets.empty() && S.Targets.size() != Callee->NumReturns)
        error("wrong number of return targets for '" + S.Callee + "'");
      for (const std::string &T : S.Targets)
        if (!isDeclared(T))
          error("assignment to undeclared variable '" + T + "'");
      break;
    }
    case BStmtKind::Return:
      if (S.Exprs.size() != Cur->NumReturns)
        error("return arity mismatch in '" + Cur->Name + "'");
      break;
    case BStmtKind::Goto:
      for (const std::string &L : S.Labels)
        if (!Labels.count(L))
          error("goto to undefined label '" + L + "'");
      break;
    case BStmtKind::Break:
    case BStmtKind::Continue:
      if (LoopDepth == 0)
        error("break/continue outside of a loop");
      break;
    default:
      break;
    }
    if (S.Cond)
      verifyExpr(*S.Cond);
    for (const BExpr *E : S.Exprs)
      verifyExpr(*E);
    if (S.Kind == BStmtKind::While) {
      ++LoopDepth;
      verifyStmt(*S.Body);
      --LoopDepth;
      return;
    }
    for (const BStmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
      if (Sub)
        verifyStmt(*Sub);
    for (const BStmt *Sub : S.Stmts)
      verifyStmt(*Sub);
  }
};

} // namespace

std::unique_ptr<BProgram> bp::parseBProgram(std::string_view Source,
                                            DiagnosticEngine &Diags) {
  BPParserImpl Parser(Source, Diags);
  std::unique_ptr<BProgram> P = Parser.run();
  if (Diags.hasErrors())
    return nullptr;
  return P;
}

bool bp::verifyBProgram(const BProgram &P, DiagnosticEngine &Diags) {
  Verifier V(P, Diags);
  return V.run();
}
