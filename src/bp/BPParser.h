//===- BPParser.h - Boolean program parser ----------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser and well-formedness checker for the boolean program language,
/// so Bebop runs standalone on .bp files (as the original tool did) and
/// printed programs round-trip in tests.
///
//===----------------------------------------------------------------------===//

#ifndef BP_BPPARSER_H
#define BP_BPPARSER_H

#include "bp/BPAst.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>

namespace slam {
namespace bp {

/// Parses concrete syntax into a BProgram; nullptr on error.
std::unique_ptr<BProgram> parseBProgram(std::string_view Source,
                                        DiagnosticEngine &Diags);

/// Checks well-formedness: variables declared, labels defined and
/// unique per procedure, call/return arities consistent, break/continue
/// inside loops. Returns false with diagnostics on violations.
bool verifyBProgram(const BProgram &P, DiagnosticEngine &Diags);

} // namespace bp
} // namespace slam

#endif // BP_BPPARSER_H
