//===- AbstractionMemo.h - Cross-iteration cube-search reuse ----*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental-CEGAR memo: cube-search results carried from one
/// abstraction iteration to the next. Refinement grows the predicate
/// set monotonically, and most statements' weakest preconditions touch
/// none of the new predicates — their cone of influence is the same set
/// of predicates as last iteration, so F_V(phi) restricted to that cone
/// is *provably* the same disjunction. The memo captures exactly that:
/// results are keyed on (phi, the cone's predicates) and replayed when
/// the key recurs, skipping the cube enumeration and every prover call
/// under it.
///
/// Two properties make replay byte-exact rather than merely sound:
///
///   * Keys use hash-consed ids (stable within a run) of the *cone*
///     predicates in V order, and values store cube literals as
///     *positions in the cone*, not indices into any particular V.
///     Predicates are only ever appended, so surviving predicates keep
///     their relative order and a cone position maps to exactly one
///     index of the current V; the remapped Dnf is the one the search
///     would have produced (the enumeration visits cone indices
///     ascending, and ascending cone position == ascending V index).
///
///   * The memo is **generational**. Lookups see only entries committed
///     at the end of a previous iteration; fresh results are staged on
///     the side and promoted by commit(). Within an iteration a parallel
///     run therefore answers every lookup identically no matter how
///     tasks interleave across workers — intra-iteration hits, which
///     would depend on schedule, cannot happen by construction. This is
///     what keeps `c2bp.cubes_checked` (and all downstream output)
///     independent of the worker count.
///
/// The memo holds no ExprRefs, only ids: entries never extend the life
/// of expressions, and a stale id simply never matches again.
///
//===----------------------------------------------------------------------===//

#ifndef C2BP_ABSTRACTIONMEMO_H
#define C2BP_ABSTRACTIONMEMO_H

#include "c2bp/CubeSearch.h"

#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace slam {
namespace c2bp {

/// Cube-search results shared across CEGAR iterations. Thread-safety
/// contract: find() and stage() may race with each other (abstraction
/// workers); commit() must be called with no search running (the CEGAR
/// driver calls it between iterations).
class AbstractionMemo {
public:
  /// Identity of one search: the queried formula plus the cone of
  /// influence it was answered against, as in-run stable ids. The cone
  /// ids are listed in V order (ascending index), which — because
  /// refinement only appends predicates — is the same order in every
  /// later V containing them.
  struct Key {
    unsigned PhiId;
    std::vector<unsigned> ConeIds;

    bool operator<(const Key &O) const {
      if (PhiId != O.PhiId)
        return PhiId < O.PhiId;
      return ConeIds < O.ConeIds;
    }
  };

  /// Looks \p K up among committed entries only. The returned Dnf's
  /// literals are cone positions (indices into Key::ConeIds); the
  /// caller remaps them onto its current V.
  std::optional<Dnf> find(const Key &K) const {
    // Committed is mutated only by commit(), which is serialized
    // against all searches, so reads take no lock.
    auto It = Committed.find(K);
    if (It == Committed.end())
      return std::nullopt;
    return It->second;
  }

  /// Stages a freshly computed result (literals already cone-relative)
  /// for the next commit. First staging wins; concurrent duplicates are
  /// identical anyway (the search is deterministic in its key).
  void stage(Key K, Dnf ConeDnf) {
    std::lock_guard<std::mutex> L(M);
    Staged.emplace(std::move(K), std::move(ConeDnf));
  }

  /// Promotes staged entries into the committed generation. Call
  /// between iterations, never concurrently with find/stage.
  void commit() {
    std::lock_guard<std::mutex> L(M);
    Committed.merge(Staged);
    Staged.clear();
  }

  /// Committed entries (for reporting).
  size_t size() const { return Committed.size(); }

private:
  std::map<Key, Dnf> Committed;
  std::map<Key, Dnf> Staged;
  mutable std::mutex M; ///< Guards Staged.
};

} // namespace c2bp
} // namespace slam

#endif // C2BP_ABSTRACTIONMEMO_H
