//===- C2bp.cpp - Statement-by-statement abstraction -------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "c2bp/C2bp.h"

#include "alias/ModRef.h"
#include "alias/Oracle.h"
#include "c2bp/CExprToLogic.h"
#include "c2bp/Signatures.h"
#include "logic/ExprUtils.h"
#include "logic/WP.h"

#include <algorithm>

using namespace slam;
using namespace slam::c2bp;
using namespace slam::cfront;
using logic::ExprRef;

namespace {

/// Does a loop body contain a break/continue belonging to this loop?
bool hasLoopExits(const Stmt &S) {
  switch (S.Kind) {
  case CStmtKind::Break:
  case CStmtKind::Continue:
    return true;
  case CStmtKind::While:
    return false; // Inner loops own their breaks.
  case CStmtKind::Goto:
    return true; // A goto may leave the loop; use the robust form.
  default:
    break;
  }
  for (const Stmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
    if (Sub && hasLoopExits(*Sub))
      return true;
  for (const Stmt *Sub : S.Stmts)
    if (hasLoopExits(*Sub))
      return true;
  return false;
}

} // namespace

struct C2bpTool::Impl {
  const Program &P;
  const PredicateSet &Preds;
  logic::LogicContext &Ctx;
  C2bpOptions Options;
  StatsRegistry *Stats;

  prover::Prover Prover;
  std::unique_ptr<alias::PointsTo> PT;
  std::unique_ptr<alias::ModRef> MR;
  std::map<const FuncDecl *, ProcSignature> Signatures;

  // Per-procedure state while abstracting.
  std::unique_ptr<bp::BProgram> BP;
  bp::BProc *CurProc = nullptr;
  const FuncDecl *CurFunc = nullptr;
  std::unique_ptr<logic::AliasOracle> Oracle;
  /// Non-null only when the points-to-backed oracle is active.
  alias::ProgramAliasOracle *ProgOracle = nullptr;
  std::unique_ptr<logic::WPEngine> WP;
  std::unique_ptr<CubeSearch> Cubes;
  /// Predicates in scope: parallel vectors of formula and bp var name.
  std::vector<ExprRef> ScopePreds;
  std::vector<std::string> ScopeNames;

  Impl(const Program &P, const PredicateSet &Preds,
       logic::LogicContext &Ctx, C2bpOptions Options, StatsRegistry *Stats)
      : P(P), Preds(Preds), Ctx(Ctx), Options(Options), Stats(Stats),
        Prover(Ctx, Stats) {
    PT = std::make_unique<alias::PointsTo>(P, Options.AliasMode);
    MR = std::make_unique<alias::ModRef>(P, *PT);
    for (const FuncDecl *F : P.Functions)
      Signatures.emplace(F, computeSignature(Ctx, P, *F,
                                             Preds.forProc(F->Name), *PT,
                                             *MR));
  }

  static std::string predName(ExprRef E) { return E->str(); }

  // -- Scope management ------------------------------------------------------
  void enterFunction(const FuncDecl &F) {
    CurFunc = &F;
    if (Options.UseAliasAnalysis) {
      auto PO = std::make_unique<alias::ProgramAliasOracle>(*PT, P, &F);
      ProgOracle = PO.get();
      Oracle = std::move(PO);
    } else {
      ProgOracle = nullptr;
      Oracle = std::make_unique<logic::ShapeAliasOracle>();
    }
    WP = std::make_unique<logic::WPEngine>(Ctx, *Oracle);
    Cubes = std::make_unique<CubeSearch>(Ctx, Prover, *Oracle,
                                         Options.Cubes, Stats);
    ScopePreds.clear();
    ScopeNames.clear();
    for (ExprRef E : Preds.Globals) {
      ScopePreds.push_back(E);
      ScopeNames.push_back(predName(E));
    }
    for (ExprRef E : Preds.forProc(F.Name)) {
      ScopePreds.push_back(E);
      ScopeNames.push_back(predName(E));
    }
  }

  // -- DNF to boolean-program expressions -----------------------------------
  const bp::BExpr *dnfToBExpr(const Dnf &D) {
    if (D.empty())
      return BP->constant(false);
    const bp::BExpr *Or = nullptr;
    for (const Cube &C : D) {
      const bp::BExpr *And = nullptr;
      for (const CubeLit &L : C) {
        const bp::BExpr *Lit = BP->varRef(ScopeNames[L.Var]);
        if (!L.Positive)
          Lit = BP->notE(Lit);
        And = And ? BP->andE(And, Lit) : Lit;
      }
      if (!And)
        And = BP->constant(true);
      Or = Or ? BP->orE(Or, And) : And;
    }
    return Or;
  }

  /// choose(F(Phi), F(!Phi)) with the pretty special case
  /// choose(b, !b) == b (used all over Figure 1).
  const bp::BExpr *chooseExpr(ExprRef Phi) {
    if (logic::containsNullDeref(Phi))
      return BP->star();
    Dnf Pos = Cubes->findF(ScopePreds, Phi);
    Dnf Neg = Cubes->findF(ScopePreds, Ctx.notE(Phi));
    if (Pos.size() == 1 && Neg.size() == 1 && Pos[0].size() == 1 &&
        Neg[0].size() == 1 && Pos[0][0].Var == Neg[0][0].Var &&
        Pos[0][0].Positive != Neg[0][0].Positive) {
      const bp::BExpr *B = BP->varRef(ScopeNames[Pos[0][0].Var]);
      return Pos[0][0].Positive ? B : BP->notE(B);
    }
    return BP->choose(dnfToBExpr(Pos), dnfToBExpr(Neg));
  }

  /// G(Phi) = !E(F(!Phi)) — the strongest expressible consequence.
  const bp::BExpr *weakenG(ExprRef Phi) {
    Dnf D = Cubes->findF(ScopePreds, Ctx.notE(Phi));
    return BP->notE(dnfToBExpr(D));
  }

  // -- Statement translation ---------------------------------------------
  bp::BStmt *stmt(bp::BStmtKind K, const Stmt &Origin) {
    bp::BStmt *S = BP->makeStmt(K);
    S->OriginId = static_cast<int>(Origin.Id);
    return S;
  }

  bp::BStmt *makeAssume(const bp::BExpr *Cond, const Stmt &Origin,
                        int BranchTaken) {
    bp::BStmt *S = stmt(bp::BStmtKind::Assume, Origin);
    S->Cond = Cond;
    S->BranchTaken = BranchTaken;
    return S;
  }

  bp::BStmt *abstractStmt(const Stmt &S) {
    switch (S.Kind) {
    case CStmtKind::Block: {
      bp::BStmt *B = stmt(bp::BStmtKind::Block, S);
      for (const Stmt *Sub : S.Stmts)
        B->Stmts.push_back(abstractStmt(*Sub));
      return B;
    }
    case CStmtKind::Assign:
      return abstractAssign(S);
    case CStmtKind::CallStmt:
      return abstractCall(S);
    case CStmtKind::If: {
      bp::BStmt *B = stmt(bp::BStmtKind::If, S);
      B->Cond = BP->star();
      ExprRef C = conditionToLogic(Ctx, *S.Cond);

      // The assumes are emitted even when G is `true`: they carry the
      // branch direction that Newton replays concretely.
      bp::BStmt *Then = BP->makeStmt(bp::BStmtKind::Block);
      Then->Stmts.push_back(makeAssume(weakenG(C), S, 1));
      Then->Stmts.push_back(abstractStmt(*S.Then));
      B->Then = Then;

      bp::BStmt *Else = BP->makeStmt(bp::BStmtKind::Block);
      Else->Stmts.push_back(makeAssume(weakenG(Ctx.notE(C)), S, 0));
      if (S.Else)
        Else->Stmts.push_back(abstractStmt(*S.Else));
      B->Else = Else;
      return B;
    }
    case CStmtKind::While: {
      ExprRef C = conditionToLogic(Ctx, *S.Cond);
      bp::BStmt *W = stmt(bp::BStmtKind::While, S);
      W->Cond = BP->star();
      bp::BStmt *Body = BP->makeStmt(bp::BStmtKind::Block);

      if (hasLoopExits(*S.Body)) {
        // Robust form: breaks/gotos may leave the loop without the
        // condition turning false, so the exit test moves inside the
        // loop and the loop itself never falls out at the top (the
        // only exits are the modeled one, which assumes G(!c), and the
        // translated break/goto statements themselves).
        W->Cond = BP->constant(true);
        bp::BStmt *ExitIf = stmt(bp::BStmtKind::If, S);
        ExitIf->Cond = BP->star();
        bp::BStmt *ExitBlk = BP->makeStmt(bp::BStmtKind::Block);
        ExitBlk->Stmts.push_back(makeAssume(weakenG(Ctx.notE(C)), S, 0));
        ExitBlk->Stmts.push_back(stmt(bp::BStmtKind::Break, S));
        ExitIf->Then = ExitBlk;
        Body->Stmts.push_back(ExitIf);
        Body->Stmts.push_back(makeAssume(weakenG(C), S, 1));
        Body->Stmts.push_back(abstractStmt(*S.Body));
        W->Body = Body;
        return W;
      }

      // Figure 1(b) form: while(*) { assume(G(c)); body } assume(G(!c)).
      Body->Stmts.push_back(makeAssume(weakenG(C), S, 1));
      Body->Stmts.push_back(abstractStmt(*S.Body));
      W->Body = Body;
      bp::BStmt *Wrap = BP->makeStmt(bp::BStmtKind::Block);
      Wrap->Stmts.push_back(W);
      Wrap->Stmts.push_back(makeAssume(weakenG(Ctx.notE(C)), S, 0));
      return Wrap;
    }
    case CStmtKind::Goto: {
      bp::BStmt *G = stmt(bp::BStmtKind::Goto, S);
      G->Labels.push_back(S.LabelName);
      return G;
    }
    case CStmtKind::Label: {
      bp::BStmt *L = stmt(bp::BStmtKind::Label, S);
      L->LabelName = S.LabelName;
      L->Sub = abstractStmt(*S.Sub);
      return L;
    }
    case CStmtKind::Return: {
      bp::BStmt *R = stmt(bp::BStmtKind::Return, S);
      const ProcSignature &Sig = Signatures.at(CurFunc);
      for (ExprRef E : Sig.Returns)
        R->Exprs.push_back(BP->varRef(predName(E)));
      return R;
    }
    case CStmtKind::Assert: {
      // The abstract assert must fail whenever the abstraction cannot
      // *prove* the condition: use the strengthening F(c) (states
      // satisfying it provably satisfy c; anything else is a potential
      // violation for Newton to examine). Using the weakening G(c)
      // here would mask real bugs.
      bp::BStmt *A = stmt(bp::BStmtKind::Assert, S);
      A->Cond = dnfToBExpr(
          Cubes->findF(ScopePreds, conditionToLogic(Ctx, *S.Cond)));
      return A;
    }
    case CStmtKind::Break:
      return stmt(bp::BStmtKind::Break, S);
    case CStmtKind::Continue:
      return stmt(bp::BStmtKind::Continue, S);
    case CStmtKind::Skip:
      return stmt(bp::BStmtKind::Skip, S);
    }
    return stmt(bp::BStmtKind::Skip, S);
  }

  bp::BStmt *abstractAssign(const Stmt &S) {
    ExprRef Lhs = toLogic(Ctx, *S.Lhs);
    ExprRef Rhs = toLogic(Ctx, *S.Rhs);
    std::vector<std::string> Targets;
    std::vector<const bp::BExpr *> Values;
    for (size_t I = 0; I != ScopePreds.size(); ++I) {
      ExprRef E = ScopePreds[I];
      ExprRef WpPos = WP->assignment(Lhs, Rhs, E);
      if (Options.SkipUnchanged && WpPos == E)
        continue; // Optimization 2: definitely unaffected.
      Targets.push_back(ScopeNames[I]);
      // choose over F(WP(s, e)) / F(WP(s, !e)). A WP that dereferences
      // NULL is undefined; the predicate is invalidated to unknown.
      ExprRef WpNeg = WP->assignment(Lhs, Rhs, Ctx.notE(E));
      Dnf Pos = logic::containsNullDeref(WpPos)
                    ? Dnf{}
                    : Cubes->findF(ScopePreds, WpPos);
      Dnf Neg = logic::containsNullDeref(WpNeg)
                    ? Dnf{}
                    : Cubes->findF(ScopePreds, WpNeg);
      if (Pos.size() == 1 && Neg.size() == 1 && Pos[0].size() == 1 &&
          Neg[0].size() == 1 && Pos[0][0].Var == Neg[0][0].Var &&
          Pos[0][0].Positive != Neg[0][0].Positive) {
        const bp::BExpr *B = BP->varRef(ScopeNames[Pos[0][0].Var]);
        Values.push_back(Pos[0][0].Positive ? B : BP->notE(B));
      } else {
        Values.push_back(BP->choose(dnfToBExpr(Pos), dnfToBExpr(Neg)));
      }
    }
    if (Targets.empty())
      return stmt(bp::BStmtKind::Skip, S); // Figure 1(b)'s `skip;`.
    bp::BStmt *A = stmt(bp::BStmtKind::Assign, S);
    A->Targets = std::move(Targets);
    A->Exprs = std::move(Values);
    return A;
  }

  bp::BStmt *abstractCall(const Stmt &S) {
    const FuncDecl *Callee = S.CallE->Callee;
    const ProcSignature &Sig = Signatures.at(Callee);

    // Formal -> actual substitution map (logic terms).
    std::vector<std::pair<ExprRef, ExprRef>> ActualMap;
    for (size_t J = 0; J != Callee->Params.size(); ++J)
      ActualMap.emplace_back(Ctx.var(Callee->Params[J]->Name),
                             toLogic(Ctx, *S.CallE->Ops[J]));

    // Predicates of the caller that the call may invalidate: those
    // mentioning the assignment target or any location the callee may
    // modify (through the mod/ref summary and aliasing).
    const std::set<int> &Mod = MR->mod(Callee);
    std::set<int> LhsCells;
    if (S.Lhs) {
      for (int C : PT->locationCells(*S.Lhs))
        LhsCells.insert(C);
    }
    size_t NumGlobalPreds = Preds.Globals.size();
    std::vector<size_t> UpdateIdx; // Indices into ScopePreds (locals only).
    for (size_t I = NumGlobalPreds; I != ScopePreds.size(); ++I) {
      bool MayChange = false;
      for (ExprRef Loc : logic::collectLocations(ScopePreds[I])) {
        std::optional<std::set<int>> Cells =
            ProgOracle ? ProgOracle->cellsOf(Loc) : std::nullopt;
        if (!Cells) {
          // Unresolvable heap locations are treated conservatively; a
          // plain variable unknown to the program (an auxiliary
          // predicate variable) cannot be written by the callee.
          if (Loc->kind() != logic::ExprKind::Var)
            MayChange = true;
          continue;
        }
        for (int C : *Cells)
          if (Mod.count(C) || LhsCells.count(C))
            MayChange = true;
      }
      if (MayChange)
        UpdateIdx.push_back(I);
    }
    // The assignment target's own predicates: any local predicate
    // mentioning the lhs location syntactically is updated as well.
    if (S.Lhs) {
      ExprRef LhsL = toLogic(Ctx, *S.Lhs);
      for (size_t I = NumGlobalPreds; I != ScopePreds.size(); ++I)
        if (logic::mentions(ScopePreds[I], LhsL) &&
            std::find(UpdateIdx.begin(), UpdateIdx.end(), I) ==
                UpdateIdx.end())
          UpdateIdx.push_back(I);
    }
    std::sort(UpdateIdx.begin(), UpdateIdx.end());

    // Externs have no boolean-program counterpart: havoc the affected
    // predicates.
    if (Callee->isExtern()) {
      if (UpdateIdx.empty())
        return stmt(bp::BStmtKind::Skip, S);
      bp::BStmt *A = stmt(bp::BStmtKind::Assign, S);
      for (size_t I : UpdateIdx) {
        A->Targets.push_back(ScopeNames[I]);
        A->Exprs.push_back(BP->star());
      }
      return A;
    }

    // Actual parameters: choose(F(e'), F(!e')) per formal predicate.
    bp::BStmt *CallB = stmt(bp::BStmtKind::Call, S);
    CallB->Callee = Callee->Name;
    for (ExprRef E : Sig.Formals) {
      ExprRef Translated = logic::substituteAll(Ctx, E, ActualMap);
      CallB->Exprs.push_back(chooseExpr(Translated));
    }

    // Return temps t1..tp with their caller-context meanings.
    std::vector<std::pair<ExprRef, ExprRef>> RetMap = ActualMap;
    if (S.Lhs && Sig.RetVar)
      RetMap.insert(RetMap.begin(),
                    {Ctx.var(Sig.RetVar->Name), toLogic(Ctx, *S.Lhs)});
    std::vector<std::string> TempNames;
    std::vector<ExprRef> TempPreds;
    for (size_t K = 0; K != Sig.Returns.size(); ++K) {
      std::string TName =
          "t" + std::to_string(S.Id) + "_" + std::to_string(K);
      TempNames.push_back(TName);
      TempPreds.push_back(
          logic::substituteAll(Ctx, Sig.Returns[K], RetMap));
      CurProc->Locals.push_back(TName);
    }
    CallB->Targets = TempNames;

    if (UpdateIdx.empty())
      return CallB;

    // Update each invalidated predicate over E' = (E_S u E_G) - E_u
    // plus the translated return predicates.
    std::vector<ExprRef> VPrime;
    std::vector<std::string> VPrimeNames;
    for (size_t I = 0; I != ScopePreds.size(); ++I) {
      if (std::find(UpdateIdx.begin(), UpdateIdx.end(), I) !=
          UpdateIdx.end())
        continue;
      VPrime.push_back(ScopePreds[I]);
      VPrimeNames.push_back(ScopeNames[I]);
    }
    for (size_t K = 0; K != TempPreds.size(); ++K) {
      VPrime.push_back(TempPreds[K]);
      VPrimeNames.push_back(TempNames[K]);
    }

    bp::BStmt *Update = stmt(bp::BStmtKind::Assign, S);
    for (size_t I : UpdateIdx) {
      ExprRef E = ScopePreds[I];
      Dnf Pos = Cubes->findF(VPrime, E);
      Dnf Neg = Cubes->findF(VPrime, Ctx.notE(E));
      auto ToB = [&](const Dnf &D) {
        if (D.empty())
          return BP->constant(false);
        const bp::BExpr *Or = nullptr;
        for (const Cube &C : D) {
          const bp::BExpr *And = nullptr;
          for (const CubeLit &L : C) {
            const bp::BExpr *Lit = BP->varRef(VPrimeNames[L.Var]);
            if (!L.Positive)
              Lit = BP->notE(Lit);
            And = And ? BP->andE(And, Lit) : Lit;
          }
          if (!And)
            And = BP->constant(true);
          Or = Or ? BP->orE(Or, And) : And;
        }
        return Or;
      };
      Update->Targets.push_back(ScopeNames[I]);
      Update->Exprs.push_back(BP->choose(ToB(Pos), ToB(Neg)));
    }

    bp::BStmt *Seq = BP->makeStmt(bp::BStmtKind::Block);
    Seq->Stmts.push_back(CallB);
    Seq->Stmts.push_back(Update);
    return Seq;
  }

  // -- Procedure and program -----------------------------------------------
  void abstractFunction(const FuncDecl &F) {
    enterFunction(F);
    const ProcSignature &Sig = Signatures.at(&F);

    bp::BProc *Proc = BP->makeProc();
    Proc->Name = F.Name;
    Proc->NumReturns = static_cast<unsigned>(Sig.Returns.size());
    CurProc = Proc;

    std::set<std::string> FormalNames;
    for (ExprRef E : Sig.Formals) {
      Proc->Params.push_back(predName(E));
      FormalNames.insert(predName(E));
    }
    for (ExprRef E : Preds.forProc(F.Name))
      if (!FormalNames.count(predName(E)))
        Proc->Locals.push_back(predName(E));

    if (Options.UseEnforce) {
      Dnf Contradictions = Cubes->findContradictions(ScopePreds);
      if (!Contradictions.empty())
        Proc->Enforce = BP->notE(dnfToBExpr(Contradictions));
    }

    bp::BStmt *Body = BP->makeStmt(bp::BStmtKind::Block);
    for (const Stmt *S : F.Body->Stmts)
      Body->Stmts.push_back(abstractStmt(*S));
    // Non-void procedures whose C body can fall off the end still need
    // well-typed returns: append one returning current values.
    if (Proc->NumReturns != 0) {
      bp::BStmt *R = BP->makeStmt(bp::BStmtKind::Return);
      for (ExprRef E : Sig.Returns)
        R->Exprs.push_back(BP->varRef(predName(E)));
      Body->Stmts.push_back(R);
    }
    Proc->Body = Body;
    BP->Procs.push_back(Proc);
    CurProc = nullptr;
  }

  std::unique_ptr<bp::BProgram> run() {
    BP = std::make_unique<bp::BProgram>();
    for (ExprRef E : Preds.Globals)
      BP->Globals.push_back(predName(E));
    for (const FuncDecl *F : P.Functions)
      if (F->Body)
        abstractFunction(*F);
    if (Stats) {
      Stats->set("c2bp.predicates", Preds.totalCount());
      Stats->set("c2bp.prover_calls", Prover.numCalls());
    }
    return std::move(BP);
  }
};

C2bpTool::C2bpTool(const Program &P, const PredicateSet &Preds,
                   logic::LogicContext &Ctx, C2bpOptions Options,
                   StatsRegistry *Stats)
    : M(std::make_unique<Impl>(P, Preds, Ctx, Options, Stats)) {}

C2bpTool::~C2bpTool() = default;

std::unique_ptr<bp::BProgram> C2bpTool::run() { return M->run(); }

uint64_t C2bpTool::proverCalls() const { return M->Prover.numCalls(); }

std::unique_ptr<bp::BProgram>
c2bp::abstractProgram(const Program &P, const PredicateSet &Preds,
                      logic::LogicContext &Ctx, DiagnosticEngine &Diags,
                      C2bpOptions Options, StatsRegistry *Stats) {
  (void)Diags;
  C2bpTool Tool(P, Preds, Ctx, Options, Stats);
  return Tool.run();
}
