//===- C2bp.cpp - Statement-by-statement abstraction -------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The abstraction runs in two phases so it can be sharded across
// threads without giving up byte-for-byte deterministic output:
//
//   1. **Planning** (always sequential, cheap): walk every procedure in
//      program order, build the boolean-program statement skeleton,
//      compute weakest preconditions and call signatures, and record
//      one *task* per expensive transfer-function computation (a
//      predicate update, a branch weakening, an assert strengthening, a
//      call formal, an enforce invariant). Each task owns a distinct
//      output slot in the already-built skeleton.
//
//   2. **Execution**: with one worker the tasks run inline at their
//      planning site — exactly the classic sequential pass. With N
//      workers they run on a work-stealing thread pool; every worker
//      owns a private prover (results transfer through the shared
//      sharded query cache) and a private expression arena that the
//      main program adopts after the pool quiesces. Because tasks are
//      pure functions of their captured inputs (prover answers are
//      deterministic, caches are memoization only) and slots are
//      position-addressed, the merged output is identical for every
//      worker count and schedule.
//
//===----------------------------------------------------------------------===//

#include "c2bp/C2bp.h"

#include "alias/ModRef.h"
#include "alias/Oracle.h"
#include "c2bp/CExprToLogic.h"
#include "c2bp/Signatures.h"
#include "logic/ExprUtils.h"
#include "logic/WP.h"
#include "prover/ProverCache.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace slam;
using namespace slam::c2bp;
using namespace slam::cfront;
using logic::ExprRef;

namespace {

/// Does a loop body contain a break/continue belonging to this loop?
bool hasLoopExits(const Stmt &S) {
  switch (S.Kind) {
  case CStmtKind::Break:
  case CStmtKind::Continue:
    return true;
  case CStmtKind::While:
    return false; // Inner loops own their breaks.
  case CStmtKind::Goto:
    return true; // A goto may leave the loop; use the robust form.
  default:
    break;
  }
  for (const Stmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
    if (Sub && hasLoopExits(*Sub))
      return true;
  for (const Stmt *Sub : S.Stmts)
    if (hasLoopExits(*Sub))
      return true;
  return false;
}

/// DNF over \p Names rendered into \p Arena.
const bp::BExpr *dnfToBExpr(bp::BProgram &Arena,
                            const std::vector<std::string> &Names,
                            const Dnf &D) {
  if (D.empty())
    return Arena.constant(false);
  const bp::BExpr *Or = nullptr;
  for (const Cube &C : D) {
    const bp::BExpr *And = nullptr;
    for (const CubeLit &L : C) {
      const bp::BExpr *Lit = Arena.varRef(Names[L.Var]);
      if (!L.Positive)
        Lit = Arena.notE(Lit);
      And = And ? Arena.andE(And, Lit) : Lit;
    }
    if (!And)
      And = Arena.constant(true);
    Or = Or ? Arena.orE(Or, And) : And;
  }
  return Or;
}

/// choose(F(Phi), F(!Phi)) with the pretty special case
/// choose(b, !b) == b (used all over Figure 1).
const bp::BExpr *chooseFromDnfs(bp::BProgram &Arena,
                                const std::vector<std::string> &Names,
                                const Dnf &Pos, const Dnf &Neg) {
  if (Pos.size() == 1 && Neg.size() == 1 && Pos[0].size() == 1 &&
      Neg[0].size() == 1 && Pos[0][0].Var == Neg[0][0].Var &&
      Pos[0][0].Positive != Neg[0][0].Positive) {
    const bp::BExpr *B = Arena.varRef(Names[Pos[0][0].Var]);
    return Pos[0][0].Positive ? B : Arena.notE(B);
  }
  return Arena.choose(dnfToBExpr(Arena, Names, Pos),
                      dnfToBExpr(Arena, Names, Neg));
}

} // namespace

struct C2bpTool::Impl {
  const Program &P;
  const PredicateSet &Preds;
  logic::LogicContext &Ctx;
  C2bpOptions Options;
  StatsRegistry *Stats;

  /// Prover for the sequential (one-worker) mode.
  prover::Prover MainProver;
  /// Cross-worker result cache; created only for parallel runs.
  std::unique_ptr<prover::SharedProverCache> SharedCache;

  /// One per pool thread: a private prover and statistics registry
  /// (merged at report time) plus a private expression arena (adopted
  /// by the main program once the pool has quiesced). A worker is only
  /// ever touched by the pool thread with the matching id.
  struct Worker {
    StatsRegistry Stats;
    prover::Prover Prover;
    std::unique_ptr<bp::BProgram> Arena;
    Worker(logic::LogicContext &Ctx, prover::SharedProverCache *Shared)
        : Prover(Ctx, &Stats, Shared),
          Arena(std::make_unique<bp::BProgram>()) {}
  };
  std::vector<std::unique_ptr<Worker>> Workers;

  std::unique_ptr<alias::PointsTo> PT;
  std::unique_ptr<alias::ModRef> MR;
  std::map<const FuncDecl *, ProcSignature> Signatures;

  /// Per-procedure planning state, kept alive until the task pool has
  /// drained (tasks reference the oracle and the scope vectors).
  struct FuncScope {
    const FuncDecl *F = nullptr;
    std::unique_ptr<logic::AliasOracle> Oracle;
    /// Non-null only when the points-to-backed oracle is active.
    alias::ProgramAliasOracle *ProgOracle = nullptr;
    std::unique_ptr<logic::WPEngine> WP;
    /// Sequential mode only: one cube search per procedure so the F/G
    /// result cache spans statements, exactly as before the sharding.
    std::unique_ptr<CubeSearch> Cubes;
    /// Predicates in scope: parallel vectors of formula and bp var name.
    std::vector<ExprRef> ScopePreds;
    std::vector<std::string> ScopeNames;
  };
  std::vector<std::unique_ptr<FuncScope>> Scopes;

  /// One deferred transfer-function computation. The closure writes
  /// into a slot of the planned skeleton that no other task touches;
  /// the cube search and arena it receives depend on the worker that
  /// picks it up.
  struct DeferredTask {
    FuncScope *FS;
    std::function<void(CubeSearch &, bp::BProgram &)> Fn;
  };
  std::vector<DeferredTask> Pending;
  bool Parallel = false;

  // Planning cursor.
  std::unique_ptr<bp::BProgram> BP;
  bp::BProc *CurProc = nullptr;
  FuncScope *CurScope = nullptr;

  Impl(const Program &P, const PredicateSet &Preds,
       logic::LogicContext &Ctx, C2bpOptions Options, StatsRegistry *Stats)
      : P(P), Preds(Preds), Ctx(Ctx), Options(Options), Stats(Stats),
        MainProver(Ctx, Stats, Options.ExternalCache) {
    PT = std::make_unique<alias::PointsTo>(P, Options.AliasMode);
    MR = std::make_unique<alias::ModRef>(P, *PT);
    for (const FuncDecl *F : P.Functions)
      Signatures.emplace(F, computeSignature(Ctx, P, *F,
                                             Preds.forProc(F->Name), *PT,
                                             *MR));
  }

  static std::string predName(ExprRef E) { return E->str(); }

  /// Classifies one finished transfer-function task for the flight
  /// recorder: it *recomputed* if any raw cube enumeration ran, it was
  /// *reused* if it was answered purely from the cross-iteration memo.
  /// Tasks that needed neither (syntactic fast paths, F-cache hits,
  /// trivial WPs) are counted in neither column.
  static void noteTaskReuse(StatsRegistry *St, uint64_t Searches,
                            uint64_t MemoHits) {
    if (!St)
      return;
    if (Searches)
      St->add("c2bp.stmts_recomputed");
    else if (MemoHits)
      St->add("c2bp.stmts_reused");
  }

  /// Runs \p Fn now (sequential mode) or queues it for the pool.
  void defer(std::function<void(CubeSearch &, bp::BProgram &)> Fn) {
    if (!Parallel) {
      TraceSpan Span("c2bp.cube_search", "c2bp");
      if (Span.enabled())
        Span.arg("proc", CurScope->F->Name);
      CubeSearch &CS = *CurScope->Cubes;
      uint64_t Searches0 = CS.searchesRun(), MemoHits0 = CS.memoHits();
      Fn(CS, *BP);
      noteTaskReuse(Stats, CS.searchesRun() - Searches0,
                    CS.memoHits() - MemoHits0);
      return;
    }
    Pending.push_back({CurScope, std::move(Fn)});
  }

  // -- Scope management ------------------------------------------------------
  void enterFunction(const FuncDecl &F) {
    Scopes.push_back(std::make_unique<FuncScope>());
    FuncScope &FS = *Scopes.back();
    CurScope = &FS;
    FS.F = &F;
    if (Options.UseAliasAnalysis) {
      auto PO = std::make_unique<alias::ProgramAliasOracle>(*PT, P, &F);
      FS.ProgOracle = PO.get();
      FS.Oracle = std::move(PO);
    } else {
      FS.Oracle = std::make_unique<logic::ShapeAliasOracle>();
    }
    FS.WP = std::make_unique<logic::WPEngine>(Ctx, *FS.Oracle);
    if (!Parallel)
      FS.Cubes = std::make_unique<CubeSearch>(Ctx, MainProver, *FS.Oracle,
                                              Options.Cubes, Stats,
                                              Options.Memo);
    for (ExprRef E : Preds.Globals) {
      FS.ScopePreds.push_back(E);
      FS.ScopeNames.push_back(predName(E));
    }
    for (ExprRef E : Preds.forProc(F.Name)) {
      FS.ScopePreds.push_back(E);
      FS.ScopeNames.push_back(predName(E));
    }
  }

  // -- Statement translation ---------------------------------------------
  bp::BStmt *stmt(bp::BStmtKind K, const Stmt &Origin) {
    bp::BStmt *S = BP->makeStmt(K);
    S->OriginId = static_cast<int>(Origin.Id);
    return S;
  }

  /// An assume whose condition is the deferred weakening G(Phi) =
  /// !E(F(!Phi)) — the strongest expressible consequence.
  bp::BStmt *makeAssumeG(ExprRef Phi, const Stmt &Origin, int BranchTaken) {
    bp::BStmt *S = stmt(bp::BStmtKind::Assume, Origin);
    S->BranchTaken = BranchTaken;
    FuncScope *FS = CurScope;
    defer([S, FS, Phi, this](CubeSearch &CS, bp::BProgram &Arena) {
      Dnf D = CS.findF(FS->ScopePreds, Ctx.notE(Phi));
      S->Cond = Arena.notE(dnfToBExpr(Arena, FS->ScopeNames, D));
    });
    return S;
  }

  bp::BStmt *abstractStmt(const Stmt &S) {
    switch (S.Kind) {
    case CStmtKind::Block: {
      bp::BStmt *B = stmt(bp::BStmtKind::Block, S);
      for (const Stmt *Sub : S.Stmts)
        B->Stmts.push_back(abstractStmt(*Sub));
      return B;
    }
    case CStmtKind::Assign:
      return abstractAssign(S);
    case CStmtKind::CallStmt:
      return abstractCall(S);
    case CStmtKind::If: {
      bp::BStmt *B = stmt(bp::BStmtKind::If, S);
      B->Cond = BP->star();
      ExprRef C = conditionToLogic(Ctx, *S.Cond);

      // The assumes are emitted even when G is `true`: they carry the
      // branch direction that Newton replays concretely.
      bp::BStmt *Then = BP->makeStmt(bp::BStmtKind::Block);
      Then->Stmts.push_back(makeAssumeG(C, S, 1));
      Then->Stmts.push_back(abstractStmt(*S.Then));
      B->Then = Then;

      bp::BStmt *Else = BP->makeStmt(bp::BStmtKind::Block);
      Else->Stmts.push_back(makeAssumeG(Ctx.notE(C), S, 0));
      if (S.Else)
        Else->Stmts.push_back(abstractStmt(*S.Else));
      B->Else = Else;
      return B;
    }
    case CStmtKind::While: {
      ExprRef C = conditionToLogic(Ctx, *S.Cond);
      bp::BStmt *W = stmt(bp::BStmtKind::While, S);
      W->Cond = BP->star();
      bp::BStmt *Body = BP->makeStmt(bp::BStmtKind::Block);

      if (hasLoopExits(*S.Body)) {
        // Robust form: breaks/gotos may leave the loop without the
        // condition turning false, so the exit test moves inside the
        // loop and the loop itself never falls out at the top (the
        // only exits are the modeled one, which assumes G(!c), and the
        // translated break/goto statements themselves).
        W->Cond = BP->constant(true);
        bp::BStmt *ExitIf = stmt(bp::BStmtKind::If, S);
        ExitIf->Cond = BP->star();
        bp::BStmt *ExitBlk = BP->makeStmt(bp::BStmtKind::Block);
        ExitBlk->Stmts.push_back(makeAssumeG(Ctx.notE(C), S, 0));
        ExitBlk->Stmts.push_back(stmt(bp::BStmtKind::Break, S));
        ExitIf->Then = ExitBlk;
        Body->Stmts.push_back(ExitIf);
        Body->Stmts.push_back(makeAssumeG(C, S, 1));
        Body->Stmts.push_back(abstractStmt(*S.Body));
        W->Body = Body;
        return W;
      }

      // Figure 1(b) form: while(*) { assume(G(c)); body } assume(G(!c)).
      Body->Stmts.push_back(makeAssumeG(C, S, 1));
      Body->Stmts.push_back(abstractStmt(*S.Body));
      W->Body = Body;
      bp::BStmt *Wrap = BP->makeStmt(bp::BStmtKind::Block);
      Wrap->Stmts.push_back(W);
      Wrap->Stmts.push_back(makeAssumeG(Ctx.notE(C), S, 0));
      return Wrap;
    }
    case CStmtKind::Goto: {
      bp::BStmt *G = stmt(bp::BStmtKind::Goto, S);
      G->Labels.push_back(S.LabelName);
      return G;
    }
    case CStmtKind::Label: {
      bp::BStmt *L = stmt(bp::BStmtKind::Label, S);
      L->LabelName = S.LabelName;
      L->Sub = abstractStmt(*S.Sub);
      return L;
    }
    case CStmtKind::Return: {
      bp::BStmt *R = stmt(bp::BStmtKind::Return, S);
      const ProcSignature &Sig = Signatures.at(CurScope->F);
      for (ExprRef E : Sig.Returns)
        R->Exprs.push_back(BP->varRef(predName(E)));
      return R;
    }
    case CStmtKind::Assert: {
      // The abstract assert must fail whenever the abstraction cannot
      // *prove* the condition: use the strengthening F(c) (states
      // satisfying it provably satisfy c; anything else is a potential
      // violation for Newton to examine). Using the weakening G(c)
      // here would mask real bugs.
      bp::BStmt *A = stmt(bp::BStmtKind::Assert, S);
      ExprRef C = conditionToLogic(Ctx, *S.Cond);
      FuncScope *FS = CurScope;
      defer([A, FS, C](CubeSearch &CS, bp::BProgram &Arena) {
        A->Cond =
            dnfToBExpr(Arena, FS->ScopeNames, CS.findF(FS->ScopePreds, C));
      });
      return A;
    }
    case CStmtKind::Break:
      return stmt(bp::BStmtKind::Break, S);
    case CStmtKind::Continue:
      return stmt(bp::BStmtKind::Continue, S);
    case CStmtKind::Skip:
      return stmt(bp::BStmtKind::Skip, S);
    }
    return stmt(bp::BStmtKind::Skip, S);
  }

  bp::BStmt *abstractAssign(const Stmt &S) {
    ExprRef Lhs = toLogic(Ctx, *S.Lhs);
    ExprRef Rhs = toLogic(Ctx, *S.Rhs);
    FuncScope *FS = CurScope;
    std::vector<std::string> Targets;
    // Weakest preconditions are computed here, at planning time (the
    // WP engine is per-procedure state); the cube searches over them
    // are deferred, one task per updated predicate.
    struct Update {
      size_t Slot;
      ExprRef WpPos, WpNeg;
    };
    std::vector<Update> Updates;
    for (size_t I = 0; I != FS->ScopePreds.size(); ++I) {
      ExprRef E = FS->ScopePreds[I];
      ExprRef WpPos = FS->WP->assignment(Lhs, Rhs, E);
      if (Options.SkipUnchanged && WpPos == E)
        continue; // Optimization 2: definitely unaffected.
      // choose over F(WP(s, e)) / F(WP(s, !e)). A WP that dereferences
      // NULL is undefined; the predicate is invalidated to unknown.
      ExprRef WpNeg = FS->WP->assignment(Lhs, Rhs, Ctx.notE(E));
      Updates.push_back({Targets.size(), WpPos, WpNeg});
      Targets.push_back(FS->ScopeNames[I]);
    }
    if (Targets.empty())
      return stmt(bp::BStmtKind::Skip, S); // Figure 1(b)'s `skip;`.
    bp::BStmt *A = stmt(bp::BStmtKind::Assign, S);
    A->Targets = std::move(Targets);
    A->Exprs.assign(A->Targets.size(), nullptr);
    for (const Update &U : Updates) {
      defer([A, U, FS](CubeSearch &CS, bp::BProgram &Arena) {
        Dnf Pos = logic::containsNullDeref(U.WpPos)
                      ? Dnf{}
                      : CS.findF(FS->ScopePreds, U.WpPos);
        Dnf Neg = logic::containsNullDeref(U.WpNeg)
                      ? Dnf{}
                      : CS.findF(FS->ScopePreds, U.WpNeg);
        A->Exprs[U.Slot] = chooseFromDnfs(Arena, FS->ScopeNames, Pos, Neg);
      });
    }
    return A;
  }

  bp::BStmt *abstractCall(const Stmt &S) {
    const FuncDecl *Callee = S.CallE->Callee;
    const ProcSignature &Sig = Signatures.at(Callee);
    FuncScope *FS = CurScope;

    // Formal -> actual substitution map (logic terms).
    std::vector<std::pair<ExprRef, ExprRef>> ActualMap;
    for (size_t J = 0; J != Callee->Params.size(); ++J)
      ActualMap.emplace_back(Ctx.var(Callee->Params[J]->Name),
                             toLogic(Ctx, *S.CallE->Ops[J]));

    // Predicates of the caller that the call may invalidate: those
    // mentioning the assignment target or any location the callee may
    // modify (through the mod/ref summary and aliasing).
    const std::set<int> &Mod = MR->mod(Callee);
    std::set<int> LhsCells;
    if (S.Lhs) {
      for (int C : PT->locationCells(*S.Lhs))
        LhsCells.insert(C);
    }
    size_t NumGlobalPreds = Preds.Globals.size();
    std::vector<size_t> UpdateIdx; // Indices into ScopePreds (locals only).
    for (size_t I = NumGlobalPreds; I != FS->ScopePreds.size(); ++I) {
      bool MayChange = false;
      for (ExprRef Loc : logic::collectLocations(FS->ScopePreds[I])) {
        std::optional<std::set<int>> Cells =
            FS->ProgOracle ? FS->ProgOracle->cellsOf(Loc) : std::nullopt;
        if (!Cells) {
          // Unresolvable heap locations are treated conservatively; a
          // plain variable unknown to the program (an auxiliary
          // predicate variable) cannot be written by the callee.
          if (Loc->kind() != logic::ExprKind::Var)
            MayChange = true;
          continue;
        }
        for (int C : *Cells)
          if (Mod.count(C) || LhsCells.count(C))
            MayChange = true;
      }
      if (MayChange)
        UpdateIdx.push_back(I);
    }
    // The assignment target's own predicates: any local predicate
    // mentioning the lhs location syntactically is updated as well.
    if (S.Lhs) {
      ExprRef LhsL = toLogic(Ctx, *S.Lhs);
      for (size_t I = NumGlobalPreds; I != FS->ScopePreds.size(); ++I)
        if (logic::mentions(FS->ScopePreds[I], LhsL) &&
            std::find(UpdateIdx.begin(), UpdateIdx.end(), I) ==
                UpdateIdx.end())
          UpdateIdx.push_back(I);
    }
    std::sort(UpdateIdx.begin(), UpdateIdx.end());

    // Externs have no boolean-program counterpart: havoc the affected
    // predicates.
    if (Callee->isExtern()) {
      if (UpdateIdx.empty())
        return stmt(bp::BStmtKind::Skip, S);
      bp::BStmt *A = stmt(bp::BStmtKind::Assign, S);
      for (size_t I : UpdateIdx) {
        A->Targets.push_back(FS->ScopeNames[I]);
        A->Exprs.push_back(BP->star());
      }
      return A;
    }

    // Actual parameters: choose(F(e'), F(!e')) per formal predicate.
    bp::BStmt *CallB = stmt(bp::BStmtKind::Call, S);
    CallB->Callee = Callee->Name;
    CallB->Exprs.assign(Sig.Formals.size(), nullptr);
    for (size_t K = 0; K != Sig.Formals.size(); ++K) {
      ExprRef Translated =
          logic::substituteAll(Ctx, Sig.Formals[K], ActualMap);
      defer([CallB, K, FS, Translated, this](CubeSearch &CS,
                                             bp::BProgram &Arena) {
        if (logic::containsNullDeref(Translated)) {
          CallB->Exprs[K] = Arena.star();
          return;
        }
        Dnf Pos = CS.findF(FS->ScopePreds, Translated);
        Dnf Neg = CS.findF(FS->ScopePreds, Ctx.notE(Translated));
        CallB->Exprs[K] = chooseFromDnfs(Arena, FS->ScopeNames, Pos, Neg);
      });
    }

    // Return temps t1..tp with their caller-context meanings.
    std::vector<std::pair<ExprRef, ExprRef>> RetMap = ActualMap;
    if (S.Lhs && Sig.RetVar)
      RetMap.insert(RetMap.begin(),
                    {Ctx.var(Sig.RetVar->Name), toLogic(Ctx, *S.Lhs)});
    std::vector<std::string> TempNames;
    std::vector<ExprRef> TempPreds;
    for (size_t K = 0; K != Sig.Returns.size(); ++K) {
      std::string TName =
          "t" + std::to_string(S.Id) + "_" + std::to_string(K);
      TempNames.push_back(TName);
      TempPreds.push_back(
          logic::substituteAll(Ctx, Sig.Returns[K], RetMap));
      CurProc->Locals.push_back(TName);
    }
    CallB->Targets = TempNames;

    if (UpdateIdx.empty())
      return CallB;

    // Update each invalidated predicate over E' = (E_S u E_G) - E_u
    // plus the translated return predicates. The scope-prime vectors
    // are shared read-only by every update task of this call.
    auto VPrime = std::make_shared<std::vector<ExprRef>>();
    auto VPrimeNames = std::make_shared<std::vector<std::string>>();
    for (size_t I = 0; I != FS->ScopePreds.size(); ++I) {
      if (std::find(UpdateIdx.begin(), UpdateIdx.end(), I) !=
          UpdateIdx.end())
        continue;
      VPrime->push_back(FS->ScopePreds[I]);
      VPrimeNames->push_back(FS->ScopeNames[I]);
    }
    for (size_t K = 0; K != TempPreds.size(); ++K) {
      VPrime->push_back(TempPreds[K]);
      VPrimeNames->push_back(TempNames[K]);
    }

    bp::BStmt *Update = stmt(bp::BStmtKind::Assign, S);
    for (size_t I : UpdateIdx)
      Update->Targets.push_back(FS->ScopeNames[I]);
    Update->Exprs.assign(UpdateIdx.size(), nullptr);
    for (size_t Slot = 0; Slot != UpdateIdx.size(); ++Slot) {
      ExprRef E = FS->ScopePreds[UpdateIdx[Slot]];
      defer([Update, Slot, E, VPrime, VPrimeNames,
             this](CubeSearch &CS, bp::BProgram &Arena) {
        Dnf Pos = CS.findF(*VPrime, E);
        Dnf Neg = CS.findF(*VPrime, Ctx.notE(E));
        Update->Exprs[Slot] =
            Arena.choose(dnfToBExpr(Arena, *VPrimeNames, Pos),
                         dnfToBExpr(Arena, *VPrimeNames, Neg));
      });
    }

    bp::BStmt *Seq = BP->makeStmt(bp::BStmtKind::Block);
    Seq->Stmts.push_back(CallB);
    Seq->Stmts.push_back(Update);
    return Seq;
  }

  // -- Procedure and program -----------------------------------------------
  void abstractFunction(const FuncDecl &F) {
    enterFunction(F);
    FuncScope *FS = CurScope;
    const ProcSignature &Sig = Signatures.at(&F);

    bp::BProc *Proc = BP->makeProc();
    Proc->Name = F.Name;
    Proc->NumReturns = static_cast<unsigned>(Sig.Returns.size());
    CurProc = Proc;

    std::set<std::string> FormalNames;
    for (ExprRef E : Sig.Formals) {
      Proc->Params.push_back(predName(E));
      FormalNames.insert(predName(E));
    }
    for (ExprRef E : Preds.forProc(F.Name))
      if (!FormalNames.count(predName(E)))
        Proc->Locals.push_back(predName(E));

    if (Options.UseEnforce) {
      defer([Proc, FS](CubeSearch &CS, bp::BProgram &Arena) {
        Dnf Contradictions = CS.findContradictions(FS->ScopePreds);
        if (!Contradictions.empty())
          Proc->Enforce = Arena.notE(
              dnfToBExpr(Arena, FS->ScopeNames, Contradictions));
      });
    }

    bp::BStmt *Body = BP->makeStmt(bp::BStmtKind::Block);
    for (const Stmt *S : F.Body->Stmts)
      Body->Stmts.push_back(abstractStmt(*S));
    // Non-void procedures whose C body can fall off the end still need
    // well-typed returns: append one returning current values.
    if (Proc->NumReturns != 0) {
      bp::BStmt *R = BP->makeStmt(bp::BStmtKind::Return);
      for (ExprRef E : Sig.Returns)
        R->Exprs.push_back(BP->varRef(predName(E)));
      Body->Stmts.push_back(R);
    }
    Proc->Body = Body;
    BP->Procs.push_back(Proc);
    CurProc = nullptr;
  }

  uint64_t totalProverCalls() const {
    uint64_t N = MainProver.numCalls();
    for (const auto &W : Workers)
      N += W->Prover.numCalls();
    return N;
  }

  void runPending() {
    TraceSpan Span("c2bp.execute", "c2bp");
    if (Span.enabled())
      Span.arg("tasks", static_cast<uint64_t>(Pending.size()));
    ThreadPool Pool(static_cast<unsigned>(Options.NumWorkers));
    for (DeferredTask &T : Pending) {
      Pool.submit([this, &T] {
        int W = ThreadPool::currentWorkerId();
        assert(W >= 0 && static_cast<size_t>(W) < Workers.size());
        Worker &WK = *Workers[W];
        TraceSpan TaskSpan("c2bp.cube_search", "c2bp");
        if (TaskSpan.enabled())
          TaskSpan.arg("proc", T.FS->F->Name);
        // A fresh cube search per task: its F/G result cache is
        // task-local, which keeps every task a pure function of its
        // inputs — repeated sub-queries are absorbed by the shared
        // prover cache instead.
        CubeSearch CS(Ctx, WK.Prover, *T.FS->Oracle, Options.Cubes,
                      &WK.Stats, Options.Memo);
        T.Fn(CS, *WK.Arena);
        noteTaskReuse(&WK.Stats, CS.searchesRun(), CS.memoHits());
      });
    }
    Pool.wait();
    Pending.clear();
    // Results are merged in planning order by construction (tasks wrote
    // into position-addressed slots); all that remains is keeping the
    // worker-built expressions alive and folding the statistics.
    for (auto &W : Workers) {
      BP->adopt(std::move(W->Arena));
      if (Stats)
        Stats->mergeFrom(W->Stats);
    }
  }

  std::unique_ptr<bp::BProgram> run() {
    TraceSpan Span("c2bp.run", "c2bp");
    if (Span.enabled()) {
      Span.arg("predicates", static_cast<uint64_t>(Preds.totalCount()));
      Span.arg("workers", Options.NumWorkers);
    }
    Parallel = Options.NumWorkers > 1;
    if (Parallel) {
      // The caller's run-wide cache (when given) takes precedence over
      // a private per-run cache: it carries results across iterations
      // and down to the persistent backend.
      prover::SharedProverCache *Shared = Options.ExternalCache;
      if (!Shared && Options.UseSharedProverCache) {
        SharedCache = std::make_unique<prover::SharedProverCache>();
        Shared = SharedCache.get();
      }
      for (int W = 0; W != Options.NumWorkers; ++W)
        Workers.push_back(std::make_unique<Worker>(Ctx, Shared));
    }

    BP = std::make_unique<bp::BProgram>();
    {
      // Sequential mode folds the cube searches into the plan walk, so
      // this phase span covers both planning and (inline) execution.
      TraceSpan PlanSpan("c2bp.plan", "c2bp");
      for (ExprRef E : Preds.Globals)
        BP->Globals.push_back(predName(E));
      for (const FuncDecl *F : P.Functions)
        if (F->Body)
          abstractFunction(*F);
    }
    if (Parallel)
      runPending();
    if (Stats) {
      Stats->set("c2bp.predicates", Preds.totalCount());
      Stats->set("c2bp.prover_calls", totalProverCalls());
    }
    return std::move(BP);
  }
};

C2bpTool::C2bpTool(const Program &P, const PredicateSet &Preds,
                   logic::LogicContext &Ctx, C2bpOptions Options,
                   StatsRegistry *Stats)
    : M(std::make_unique<Impl>(P, Preds, Ctx, Options, Stats)) {}

C2bpTool::~C2bpTool() = default;

std::unique_ptr<bp::BProgram> C2bpTool::run() { return M->run(); }

uint64_t C2bpTool::proverCalls() const { return M->totalProverCalls(); }

std::unique_ptr<bp::BProgram>
c2bp::abstractProgram(const Program &P, const PredicateSet &Preds,
                      logic::LogicContext &Ctx, DiagnosticEngine &Diags,
                      C2bpOptions Options, StatsRegistry *Stats) {
  (void)Diags;
  C2bpTool Tool(P, Preds, Ctx, Options, Stats);
  return Tool.run();
}
