//===- C2bp.h - Predicate abstraction of C programs -------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution: given a (normalized) C program P and a set
/// E of predicates, constructs the boolean program BP(P, E) — same
/// control structure, one boolean variable per predicate, and for every
/// statement the strongest boolean transfer function expressible over E
/// (computed with weakest preconditions and the theorem prover).
///
///   * assignments  -> parallel `choose(F(WP(s,e)), F(WP(s,!e)))`
///                     updates (Section 4.3), with alias-aware WP
///                     (Section 4.2);
///   * conditionals -> `if (*)` with assume(G(c)) / assume(G(!c))
///                     (Section 4.4);
///   * procedures   -> modular translation through signatures with
///                     formal-parameter and return predicates
///                     (Section 4.5);
///   * enforce      -> the per-procedure data invariant F(false)
///                     (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef C2BP_C2BP_H
#define C2BP_C2BP_H

#include "alias/PointsTo.h"
#include "bp/BPAst.h"
#include "c2bp/CubeSearch.h"
#include "c2bp/PredicateSet.h"
#include "cfront/AST.h"
#include "prover/Prover.h"
#include "support/Stats.h"

#include <memory>

namespace slam {
namespace c2bp {

/// Tool configuration; every flag is an ablation axis.
struct C2bpOptions {
  CubeSearchOptions Cubes;
  /// Emit the enforce data invariant (Section 5.1).
  bool UseEnforce = true;
  /// Optimization 2: skip updates whose WP is syntactically unchanged.
  bool SkipUnchanged = true;
  /// Use the points-to analysis to prune Morris disjuncts; without it
  /// the purely syntactic shape oracle is used.
  bool UseAliasAnalysis = true;
  alias::Mode AliasMode = alias::Mode::Das;
  /// Worker threads for the per-statement cube searches. 1 = the
  /// classic sequential pass; N > 1 shards the statement-level
  /// abstraction tasks over a work-stealing pool with one private
  /// prover per worker and a shared query cache. Output is
  /// byte-identical for every N (results are merged in statement
  /// order); only wall-clock and cache statistics change.
  int NumWorkers = 1;
  /// Share prover results across workers (parallel mode only).
  bool UseSharedProverCache = true;
  /// Cross-iteration cube-search memo, owned by the CEGAR driver; this
  /// run replays results committed by earlier iterations and stages its
  /// own. Null = every search runs fresh (standalone c2bp, ablations).
  AbstractionMemo *Memo = nullptr;
  /// A caller-owned shared prover cache (the CEGAR driver's run-wide
  /// cache, possibly backed by a persistent CacheBackend). When set it
  /// is used by the sequential prover *and* all workers, overriding
  /// UseSharedProverCache; results then survive across iterations.
  prover::SharedProverCache *ExternalCache = nullptr;
};

/// One abstraction run. The logic context must be the one the
/// predicates were parsed into and must outlive the tool.
class C2bpTool {
public:
  C2bpTool(const cfront::Program &P, const PredicateSet &Preds,
           logic::LogicContext &Ctx, C2bpOptions Options = {},
           StatsRegistry *Stats = nullptr);
  ~C2bpTool();

  /// Builds BP(P, E).
  std::unique_ptr<bp::BProgram> run();

  /// Total theorem prover calls made (the paper's tables report this).
  uint64_t proverCalls() const;

private:
  struct Impl;
  std::unique_ptr<Impl> M;
};

/// Convenience: parse + analyze + normalize + abstract in one call.
/// Returns nullptr with diagnostics on failure.
std::unique_ptr<bp::BProgram>
abstractProgram(const cfront::Program &P, const PredicateSet &Preds,
                logic::LogicContext &Ctx, DiagnosticEngine &Diags,
                C2bpOptions Options = {}, StatsRegistry *Stats = nullptr);

} // namespace c2bp
} // namespace slam

#endif // C2BP_C2BP_H
