//===- CExprToLogic.cpp ------------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "c2bp/CExprToLogic.h"

using namespace slam;
using namespace slam::c2bp;
using namespace slam::cfront;
using logic::ExprRef;
using logic::LogicContext;

ExprRef c2bp::toLogic(LogicContext &Ctx, const Expr &E) {
  switch (E.Kind) {
  case CExprKind::IntLit:
    return Ctx.intLit(E.IntValue);
  case CExprKind::NullLit:
    return Ctx.nullLit();
  case CExprKind::VarRef:
    return Ctx.var(E.Name);
  case CExprKind::Unary:
    switch (E.UOp) {
    case UnaryOp::Deref:
      return Ctx.deref(toLogic(Ctx, *E.Ops[0]));
    case UnaryOp::AddrOf:
      return Ctx.addrOf(toLogic(Ctx, *E.Ops[0]));
    case UnaryOp::Neg:
      return Ctx.neg(toLogic(Ctx, *E.Ops[0]));
    case UnaryOp::Not:
      return Ctx.notE(conditionToLogic(Ctx, *E.Ops[0]));
    }
    break;
  case CExprKind::Binary: {
    if (E.BOp == BinaryOp::LAnd)
      return Ctx.andE(conditionToLogic(Ctx, *E.Ops[0]),
                      conditionToLogic(Ctx, *E.Ops[1]));
    if (E.BOp == BinaryOp::LOr)
      return Ctx.orE(conditionToLogic(Ctx, *E.Ops[0]),
                     conditionToLogic(Ctx, *E.Ops[1]));
    ExprRef L = toLogic(Ctx, *E.Ops[0]);
    ExprRef R = toLogic(Ctx, *E.Ops[1]);
    switch (E.BOp) {
    case BinaryOp::Add:
      return Ctx.add(L, R);
    case BinaryOp::Sub:
      return Ctx.sub(L, R);
    case BinaryOp::Mul:
      return Ctx.mul(L, R);
    case BinaryOp::Div:
      return Ctx.div(L, R);
    case BinaryOp::Mod:
      return Ctx.mod(L, R);
    case BinaryOp::Eq:
      return Ctx.eq(L, R);
    case BinaryOp::Ne:
      return Ctx.ne(L, R);
    case BinaryOp::Lt:
      return Ctx.lt(L, R);
    case BinaryOp::Le:
      return Ctx.le(L, R);
    case BinaryOp::Gt:
      return Ctx.gt(L, R);
    case BinaryOp::Ge:
      return Ctx.ge(L, R);
    default:
      break;
    }
    break;
  }
  case CExprKind::Member: {
    ExprRef Base = toLogic(Ctx, *E.Ops[0]);
    if (E.IsArrow)
      Base = Ctx.deref(Base);
    return Ctx.field(Base, E.FieldName);
  }
  case CExprKind::Index:
    return Ctx.index(toLogic(Ctx, *E.Ops[0]), toLogic(Ctx, *E.Ops[1]));
  case CExprKind::Call:
    assert(false && "calls must be hoisted before abstraction");
    break;
  }
  return Ctx.intLit(0);
}

ExprRef c2bp::conditionToLogic(LogicContext &Ctx, const Expr &E) {
  ExprRef L = toLogic(Ctx, E);
  if (L->isFormula())
    return L;
  // Residual scalar (should not occur post-normalization): e != 0.
  return Ctx.ne(L, Ctx.intLit(0));
}
