//===- CExprToLogic.h - Bridge C expressions into the logic -----*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts (normalized, side-effect-free) C expressions into the
/// predicate logic so the WP engine and prover can reason about them.
///
//===----------------------------------------------------------------------===//

#ifndef C2BP_CEXPRTOLOGIC_H
#define C2BP_CEXPRTOLOGIC_H

#include "cfront/AST.h"
#include "logic/Expr.h"

namespace slam {
namespace c2bp {

/// Translates \p E. The expression must be call-free (guaranteed after
/// normalization for every context C2bp visits).
logic::ExprRef toLogic(logic::LogicContext &Ctx, const cfront::Expr &E);

/// Translates a C condition, producing a formula (scalar conditions have
/// already been turned into comparisons by the normalizer).
logic::ExprRef conditionToLogic(logic::LogicContext &Ctx,
                                const cfront::Expr &E);

} // namespace c2bp
} // namespace slam

#endif // C2BP_CEXPRTOLOGIC_H
