//===- CubeSearch.cpp - Prime implicant enumeration -------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "c2bp/CubeSearch.h"

#include "c2bp/AbstractionMemo.h"
#include "logic/ExprUtils.h"

#include <algorithm>
#include <cassert>
#include <optional>

using namespace slam;
using namespace slam::c2bp;
using logic::ExprRef;
using prover::Validity;

ExprRef CubeSearch::concretize(const std::vector<ExprRef> &V,
                               const Cube &C) const {
  std::vector<ExprRef> Lits;
  Lits.reserve(C.size());
  for (const CubeLit &L : C)
    Lits.push_back(L.Positive ? V[L.Var] : Ctx.notE(V[L.Var]));
  return Ctx.andE(std::move(Lits));
}

std::vector<int>
CubeSearch::coneOfInfluence(const std::vector<ExprRef> &V,
                            ExprRef Phi) const {
  // Locations per predicate, plus the seed from phi; grow until fixpoint
  // (a predicate is relevant if one of its locations may alias a
  // location already in the cone).
  std::vector<std::vector<ExprRef>> PredLocs;
  PredLocs.reserve(V.size());
  for (ExprRef P : V)
    PredLocs.push_back(logic::collectLocations(P));

  std::vector<ExprRef> Seed = logic::collectLocations(Phi);
  std::vector<bool> InCone(V.size(), false);

  auto Touches = [&](const std::vector<ExprRef> &Locs) {
    for (ExprRef A : Locs)
      for (ExprRef B : Seed)
        if (Alias.alias(A, B) != logic::AliasResult::NoAlias)
          return true;
    return false;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I != V.size(); ++I) {
      if (InCone[I] || !Touches(PredLocs[I]))
        continue;
      InCone[I] = true;
      for (ExprRef L : PredLocs[I])
        if (std::find(Seed.begin(), Seed.end(), L) == Seed.end())
          Seed.push_back(L);
      Changed = true;
    }
  }

  std::vector<int> Out;
  for (size_t I = 0; I != V.size(); ++I)
    if (InCone[I])
      Out.push_back(static_cast<int>(I));
  return Out;
}

Dnf CubeSearch::searchWithMemo(const std::vector<ExprRef> &V, ExprRef Phi) {
  // Cone of influence shrinks the variable set per query (opt. 3). The
  // enforce query F(false) mentions no locations, so every predicate is
  // relevant to it. Computed here, before the memo, because the cone
  // *is* the reuse signature: a statement whose phi involves none of
  // the predicates added since last iteration has the same cone, hence
  // the same key, hence a replayable result.
  std::vector<int> Indices;
  if (Options.ConeOfInfluence && !Phi->isFalse()) {
    Indices = coneOfInfluence(V, Phi);
  } else {
    for (size_t I = 0; I != V.size(); ++I)
      Indices.push_back(static_cast<int>(I));
  }

  if (!Memo) {
    ++NumSearches;
    return searchRaw(V, Phi, Indices);
  }

  AbstractionMemo::Key K;
  K.PhiId = Phi->id();
  K.ConeIds.reserve(Indices.size());
  for (int Idx : Indices)
    K.ConeIds.push_back(V[static_cast<size_t>(Idx)]->id());

  if (std::optional<Dnf> Replay = Memo->find(K)) {
    // Stored literals are cone positions; rebind them to this V. The
    // enumeration visits cone indices in ascending order and appended
    // predicates never reorder survivors, so the remapped Dnf is
    // literal-for-literal what the search would have produced.
    for (Cube &C : *Replay)
      for (CubeLit &L : C)
        L.Var = Indices[static_cast<size_t>(L.Var)];
    ++NumMemoHits;
    if (Stats)
      Stats->add("c2bp.memo_hits");
    return std::move(*Replay);
  }

  ++NumSearches;
  if (Stats)
    Stats->add("c2bp.memo_misses");
  Dnf Result = searchRaw(V, Phi, Indices);

  // Stage with literals rewritten to cone positions. Every literal's
  // V index is in Indices (the search never leaves the cone), and
  // Indices is sorted, so a binary search recovers the position.
  Dnf ConeDnf = Result;
  for (Cube &C : ConeDnf)
    for (CubeLit &L : C) {
      auto It = std::lower_bound(Indices.begin(), Indices.end(), L.Var);
      assert(It != Indices.end() && *It == L.Var &&
             "cube literal outside the cone");
      L.Var = static_cast<int>(It - Indices.begin());
    }
  Memo->stage(std::move(K), std::move(ConeDnf));
  return Result;
}

Dnf CubeSearch::searchRaw(const std::vector<ExprRef> &V, ExprRef Phi,
                          const std::vector<int> &Indices) {
  // The empty cube: is phi already valid?
  if (!Phi->isFalse() &&
      P.implies(Ctx.trueE(), Phi) == Validity::Valid)
    return {Cube{}};

  int MaxLen = Options.MaxCubeLength < 0
                   ? static_cast<int>(Indices.size())
                   : std::min<int>(Options.MaxCubeLength,
                                   static_cast<int>(Indices.size()));

  ExprRef NotPhi = Ctx.notE(Phi);
  Dnf Result;
  std::vector<Cube> Rejected; // Cubes shown to imply !Phi.
  std::vector<Cube> Live;     // Cubes to extend, current length.
  Live.push_back({});         // Seed: the empty cube (length 0).

  // Subset test over literal-sorted cubes (for pruning supersets of
  // accepted implicants and of contradiction cubes, whichever parent
  // they were extended from).
  auto HasSubsetIn = [](const std::vector<Cube> &Set, const Cube &C) {
    for (const Cube &S : Set) {
      size_t I = 0;
      for (const CubeLit &L : C) {
        if (I < S.size() && S[I] == L)
          ++I;
      }
      if (I == S.size())
        return true;
    }
    return false;
  };

  for (int Len = 1; Len <= MaxLen && !Live.empty(); ++Len) {
    std::vector<Cube> Next;
    for (const Cube &C : Live) {
      int MaxVar = C.empty() ? -1 : C.back().Var;
      for (int Idx : Indices) {
        if (Idx <= MaxVar)
          continue;
        for (bool Positive : {true, false}) {
          Cube Ext = C;
          Ext.push_back({Idx, Positive});
          if (Options.PruneSupersets &&
              (HasSubsetIn(Result, Ext) || HasSubsetIn(Rejected, Ext)))
            continue;
          ++NumCubes;
          if (Stats)
            Stats->add("c2bp.cubes_checked");
          ExprRef EC = concretize(V, Ext);
          if (EC->isFalse()) {
            // Syntactically contradictory (b && !b can't arise here,
            // but folding may still produce false): an implicant of
            // anything, useful only for the enforce query.
            if (Phi->isFalse())
              Result.push_back(std::move(Ext));
            continue;
          }
          Validity Implies = P.implies(EC, Phi);
          if (Implies == Validity::Valid) {
            // A vacuous (unsatisfiable) cube implies anything but
            // denotes no concrete state; it contributes nothing to the
            // disjunction and would only clutter the output.
            if (!Phi->isFalse() &&
                P.checkSat(EC) == prover::Satisfiability::Unsat) {
              Rejected.push_back(std::move(Ext));
              continue;
            }
            Result.push_back(Ext);
            if (Options.PruneSupersets)
              continue; // Supersets are redundant (prime implicants).
            Next.push_back(std::move(Ext));
            continue;
          }
          if (Options.PruneSupersets && !Phi->isFalse() &&
              P.implies(EC, NotPhi) == Validity::Valid) {
            Rejected.push_back(std::move(Ext));
            continue; // No superset can imply phi non-vacuously.
          }
          Next.push_back(std::move(Ext));
        }
      }
    }
    Live = std::move(Next);
  }
  return Result;
}

Dnf CubeSearch::findContradictions(const std::vector<ExprRef> &V) {
  return searchWithMemo(V, Ctx.falseE());
}

Dnf CubeSearch::findF(const std::vector<ExprRef> &V, ExprRef Phi) {
  if (Phi->isTrue())
    return {Cube{}};
  if (Phi->isFalse())
    return {};

  if (Options.CacheResults) {
    auto It = Cache.find({V, Phi});
    if (It != Cache.end()) {
      if (Stats)
        Stats->add("c2bp.f_cache_hits");
      return It->second;
    }
  }

  Dnf Result;
  bool Done = false;

  // Optimization 4: phi (or its negation) may literally be in E(V).
  if (Options.SyntacticFastPaths) {
    for (size_t I = 0; I != V.size() && !Done; ++I) {
      if (V[I] == Phi) {
        Result = {Cube{{static_cast<int>(I), true}}};
        Done = true;
      } else if (Ctx.notE(V[I]) == Phi) {
        Result = {Cube{{static_cast<int>(I), false}}};
        Done = true;
      }
    }
  }

  // Optional recursive distribution through the connectives.
  if (!Done && Options.DistributeF &&
      (Phi->kind() == logic::ExprKind::And ||
       Phi->kind() == logic::ExprKind::Or)) {
    bool IsAnd = Phi->kind() == logic::ExprKind::And;
    std::vector<Dnf> Parts;
    for (ExprRef Op : Phi->operands())
      Parts.push_back(findF(V, Op));
    if (IsAnd) {
      // Conjunction of DNFs: cross product of cubes, dropping clashes.
      Dnf Acc = {Cube{}};
      for (const Dnf &Part : Parts) {
        Dnf NextAcc;
        for (const Cube &A : Acc) {
          for (const Cube &B : Part) {
            Cube Merged = A;
            bool Clash = false;
            for (const CubeLit &L : B) {
              auto Same = [&L](const CubeLit &X) { return X.Var == L.Var; };
              auto It = std::find_if(Merged.begin(), Merged.end(), Same);
              if (It == Merged.end())
                Merged.push_back(L);
              else if (It->Positive != L.Positive)
                Clash = true;
            }
            if (!Clash) {
              std::sort(Merged.begin(), Merged.end(),
                        [](const CubeLit &X, const CubeLit &Y) {
                          return X.Var < Y.Var;
                        });
              NextAcc.push_back(std::move(Merged));
            }
          }
        }
        Acc = std::move(NextAcc);
      }
      Result = std::move(Acc);
    } else {
      for (Dnf &Part : Parts)
        for (Cube &C : Part)
          if (std::find(Result.begin(), Result.end(), C) == Result.end())
            Result.push_back(std::move(C));
    }
    Done = true;
  }

  if (!Done)
    Result = searchWithMemo(V, Phi);

  if (Options.CacheResults)
    Cache[{V, Phi}] = Result;
  return Result;
}

ExprRef CubeSearch::concretizeF(const std::vector<ExprRef> &V,
                                ExprRef Phi) {
  Dnf D = findF(V, Phi);
  std::vector<ExprRef> Cubes;
  Cubes.reserve(D.size());
  for (const Cube &C : D)
    Cubes.push_back(concretize(V, C));
  return Ctx.orE(std::move(Cubes));
}
