//===- CubeSearch.h - The F_V / G_V computations ----------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4.1's strengthening: F_V(phi) is the largest disjunction of
/// cubes over the boolean variables V whose concretizations imply phi;
/// G_V(phi) = !F_V(!phi) is the corresponding weakening. Each cube
/// check is one theorem-prover call, so this module carries the
/// optimizations of Section 5.2:
///
///   1. cubes enumerated by increasing length, pruning supersets of
///      found implicants and of cubes implying !phi (so the result is a
///      disjunction of prime implicants);
///   3. a syntactic cone-of-influence pass shrinking V per query;
///   4. syntactic fast paths (phi or !phi textually in E(V)), and the
///      optional recursive distribution of F over && / || ;
///   5. result caching (on top of the prover's own query cache);
///   k. an optional maximum cube length (precision/speed trade-off —
///      the paper reports k = 3 suffices in most cases).
///
//===----------------------------------------------------------------------===//

#ifndef C2BP_CUBESEARCH_H
#define C2BP_CUBESEARCH_H

#include "logic/AliasOracle.h"
#include "logic/Expr.h"
#include "prover/Prover.h"
#include "support/Stats.h"

#include <map>
#include <vector>

namespace slam {
namespace c2bp {

/// One literal of a cube: an index into V plus a polarity.
struct CubeLit {
  int Var;
  bool Positive;
  bool operator==(const CubeLit &O) const {
    return Var == O.Var && Positive == O.Positive;
  }
};

/// A cube (conjunction of literals); a DNF is a vector of cubes.
using Cube = std::vector<CubeLit>;
using Dnf = std::vector<Cube>;

/// Tuning knobs (each is an ablation axis in bench/).
struct CubeSearchOptions {
  /// Maximum cube length; -1 = |V| (exact).
  int MaxCubeLength = -1;
  /// Optimization 3: restrict V to predicates sharing (aliased)
  /// locations with phi before enumerating.
  bool ConeOfInfluence = true;
  /// Optimization 4: return {b} / {!b} immediately when phi (or !phi)
  /// is textually a predicate of V.
  bool SyntacticFastPaths = true;
  /// Optimization 1: prune supersets of implicants and of
  /// contradiction cubes. Disabling enumerates every cube (ablation).
  bool PruneSupersets = true;
  /// Distribute F through && (exact) and || (may lose precision).
  bool DistributeF = false;
  /// Cache F results per (V, phi).
  bool CacheResults = true;
};

class AbstractionMemo; // From AbstractionMemo.h (which includes this).

/// Computes F_V and G_V against one prover instance.
class CubeSearch {
public:
  /// \p Memo, when non-null, replays cube searches committed by earlier
  /// CEGAR iterations and stages this search's results for later ones.
  CubeSearch(logic::LogicContext &Ctx, prover::Prover &P,
             const logic::AliasOracle &Alias, CubeSearchOptions Options,
             StatsRegistry *Stats = nullptr, AbstractionMemo *Memo = nullptr)
      : Ctx(Ctx), P(P), Alias(Alias), Options(Options), Stats(Stats),
        Memo(Memo) {}

  /// F_V(Phi): prime implicants of Phi over the predicates \p V.
  /// For Phi = false this returns the empty disjunction (contradictory
  /// cubes denote no concrete state); the enforce computation uses
  /// findContradictions instead.
  Dnf findF(const std::vector<logic::ExprRef> &V, logic::ExprRef Phi);

  /// Section 5.1: the mutually inconsistent cubes F_V(false), used to
  /// build the per-procedure enforce invariant.
  Dnf findContradictions(const std::vector<logic::ExprRef> &V);

  /// E(F_V(Phi)) as a formula (disjunction of concretized cubes).
  logic::ExprRef concretizeF(const std::vector<logic::ExprRef> &V,
                             logic::ExprRef Phi);

  /// The concretization E(c) of one cube.
  logic::ExprRef concretize(const std::vector<logic::ExprRef> &V,
                            const Cube &C) const;

  /// Number of cubes whose implication was checked.
  uint64_t cubesChecked() const { return NumCubes; }
  /// Number of raw cube enumerations actually run (memo misses plus
  /// all searches when no memo is attached). A statement none of whose
  /// queries ran a search was answered entirely from reuse.
  uint64_t searchesRun() const { return NumSearches; }
  /// Number of searches replayed from the cross-iteration memo.
  uint64_t memoHits() const { return NumMemoHits; }

private:
  /// Cone-of-influence restriction, memo replay, and (on a miss) the
  /// raw enumeration — the path shared by findF and findContradictions.
  Dnf searchWithMemo(const std::vector<logic::ExprRef> &V,
                     logic::ExprRef Phi);
  Dnf searchRaw(const std::vector<logic::ExprRef> &V, logic::ExprRef Phi,
                const std::vector<int> &Indices);
  std::vector<int> coneOfInfluence(const std::vector<logic::ExprRef> &V,
                                   logic::ExprRef Phi) const;

  logic::LogicContext &Ctx;
  prover::Prover &P;
  const logic::AliasOracle &Alias;
  CubeSearchOptions Options;
  StatsRegistry *Stats;
  AbstractionMemo *Memo;
  uint64_t NumCubes = 0;
  uint64_t NumSearches = 0;
  uint64_t NumMemoHits = 0;

  /// Keys on the stable hash-consed expression ids, not on ExprRef
  /// pointer values: pointer order varies run to run (allocator layout,
  /// ASLR), which made cache iteration — and any behavior derived from
  /// it — nondeterministic across runs, while ids are assigned in
  /// creation order and reproduce.
  struct CacheKey {
    std::vector<unsigned> VIds;
    unsigned PhiId;

    CacheKey(const std::vector<logic::ExprRef> &V, logic::ExprRef Phi)
        : PhiId(Phi->id()) {
      VIds.reserve(V.size());
      for (logic::ExprRef E : V)
        VIds.push_back(E->id());
    }

    bool operator<(const CacheKey &O) const {
      if (PhiId != O.PhiId)
        return PhiId < O.PhiId;
      return VIds < O.VIds;
    }
  };
  std::map<CacheKey, Dnf> Cache;
};

} // namespace c2bp
} // namespace slam

#endif // C2BP_CUBESEARCH_H
