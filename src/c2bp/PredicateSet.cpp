//===- PredicateSet.cpp ------------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "c2bp/PredicateSet.h"

#include "logic/Parser.h"
#include "support/StringExtras.h"

#include <algorithm>

using namespace slam;
using namespace slam::c2bp;
using logic::ExprRef;

bool PredicateSet::addGlobal(ExprRef E) {
  if (std::find(Globals.begin(), Globals.end(), E) != Globals.end())
    return false;
  Globals.push_back(E);
  return true;
}

bool PredicateSet::addLocal(const std::string &Proc, ExprRef E) {
  auto &V = PerProc[Proc];
  if (std::find(V.begin(), V.end(), E) != V.end())
    return false;
  V.push_back(E);
  return true;
}

std::optional<PredicateSet>
c2bp::parsePredicateFile(logic::LogicContext &Ctx, std::string_view Text,
                         DiagnosticEngine &Diags) {
  PredicateSet Out;
  std::string Scope; // Empty until the first header.
  bool SawHeader = false;

  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string_view::npos)
      Eol = Text.size();
    std::string_view Line = trim(Text.substr(Pos, Eol - Pos));
    Pos = Eol + 1;
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;

    // Scope header: `name:` alone on the line.
    if (Line.back() == ':' &&
        Line.find_first_of("=<>!&|()") == std::string_view::npos) {
      Scope = std::string(trim(Line.substr(0, Line.size() - 1)));
      SawHeader = true;
      continue;
    }
    if (!SawHeader) {
      Diags.error(SourceLoc(static_cast<unsigned>(LineNo), 1),
                  "predicate before any scope header "
                  "(expected 'global:' or '<proc>:')");
      return std::nullopt;
    }
    for (const std::string &Piece : splitAndTrim(Line, ',')) {
      DiagnosticEngine Local;
      ExprRef E = logic::parseExpr(Ctx, Piece, Local);
      if (!E) {
        Diags.error(SourceLoc(static_cast<unsigned>(LineNo), 1),
                    "bad predicate '" + Piece + "': " + Local.str());
        return std::nullopt;
      }
      if (!E->isFormula()) {
        Diags.error(SourceLoc(static_cast<unsigned>(LineNo), 1),
                    "predicate '" + Piece + "' is not boolean");
        return std::nullopt;
      }
      if (Scope == "global")
        Out.addGlobal(E);
      else
        Out.addLocal(Scope, E);
    }
  }
  return Out;
}
