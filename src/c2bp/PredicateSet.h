//===- PredicateSet.h - Predicate input files -------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predicate input file of Section 2.1: each predicate is a pure C
/// boolean expression annotated as global or local to one procedure.
/// Concrete syntax:
///
///   # comment
///   global:
///     lock == 1
///   partition:
///     curr == NULL, prev == NULL,
///     curr->val > v, prev->val > v
///
/// A scope header is `<name>:` (or `global:`) on its own; predicates are
/// separated by commas or newlines.
///
//===----------------------------------------------------------------------===//

#ifndef C2BP_PREDICATESET_H
#define C2BP_PREDICATESET_H

#include "logic/Expr.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace slam {
namespace c2bp {

/// The scoped predicate collection E of the paper.
struct PredicateSet {
  std::vector<logic::ExprRef> Globals;
  std::map<std::string, std::vector<logic::ExprRef>> PerProc;

  const std::vector<logic::ExprRef> &forProc(const std::string &Name) const {
    static const std::vector<logic::ExprRef> Empty;
    auto It = PerProc.find(Name);
    return It == PerProc.end() ? Empty : It->second;
  }

  /// Adds a predicate if not already present in its scope. Returns
  /// true if the set changed (used by the CEGAR refinement loop).
  bool addGlobal(logic::ExprRef E);
  bool addLocal(const std::string &Proc, logic::ExprRef E);

  size_t totalCount() const {
    size_t N = Globals.size();
    for (const auto &[_, V] : PerProc)
      N += V.size();
    return N;
  }
};

/// Parses a predicate file; nullopt on error.
std::optional<PredicateSet> parsePredicateFile(logic::LogicContext &Ctx,
                                               std::string_view Text,
                                               DiagnosticEngine &Diags);

} // namespace c2bp
} // namespace slam

#endif // C2BP_PREDICATESET_H
