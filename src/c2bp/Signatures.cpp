//===- Signatures.cpp --------------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "c2bp/Signatures.h"

#include "logic/ExprUtils.h"

using namespace slam;
using namespace slam::c2bp;
using namespace slam::cfront;
using logic::ExprRef;

const VarDecl *c2bp::findReturnVar(const FuncDecl &F) {
  if (F.ReturnTy->isVoid() || !F.Body)
    return nullptr;
  // Normalization guarantees a single `return v;` as the last
  // statement (possibly under the synthetic __exit label).
  const Stmt *Last =
      F.Body->Stmts.empty() ? nullptr : F.Body->Stmts.back();
  while (Last && Last->Kind == CStmtKind::Label)
    Last = Last->Sub;
  if (Last && Last->Kind == CStmtKind::Return && Last->Rhs &&
      Last->Rhs->Kind == CExprKind::VarRef)
    return Last->Rhs->Var;
  return nullptr;
}

ProcSignature c2bp::computeSignature(logic::LogicContext &Ctx,
                                     const Program &P, const FuncDecl &F,
                                     const std::vector<ExprRef> &ER,
                                     const alias::PointsTo &PT,
                                     const alias::ModRef &MR) {
  (void)Ctx;
  ProcSignature Sig;
  Sig.Func = &F;
  Sig.RetVar = findReturnVar(F);

  std::set<std::string> LocalNames, ParamNames;
  for (const VarDecl *V : F.Locals)
    LocalNames.insert(V->Name);
  for (const VarDecl *V : F.Params)
    ParamNames.insert(V->Name);
  std::set<std::string> GlobalNames;
  for (const VarDecl *V : P.Globals)
    GlobalNames.insert(V->Name);

  const std::string RetName = Sig.RetVar ? Sig.RetVar->Name : "";

  auto MentionsModifiedFormal = [&](ExprRef E) {
    // Footnote 4: formals that the procedure may modify no longer equal
    // their actuals at return; predicates over them leave E_r.
    const std::set<int> &Mod = MR.mod(&F);
    for (const std::string &Name : logic::collectVars(E)) {
      if (Name == RetName || !ParamNames.count(Name))
        continue;
      const VarDecl *V = F.findLocalOrParam(Name);
      if (V && Mod.count(PT.varCell(V)))
        return true;
    }
    return false;
  };

  for (ExprRef E : ER) {
    std::set<std::string> Vars = logic::collectVars(E);
    bool TouchesLocal = false;
    for (const std::string &Name : Vars)
      if (LocalNames.count(Name))
        TouchesLocal = true;

    bool IsFormalPred = !TouchesLocal;
    if (IsFormalPred)
      Sig.Formals.push_back(E);

    // Clause 1 of E_r: mentions r and no other local.
    bool AboutReturn = false;
    if (!RetName.empty() && Vars.count(RetName)) {
      AboutReturn = true;
      for (const std::string &Name : Vars)
        if (Name != RetName && LocalNames.count(Name))
          AboutReturn = false;
    }
    // Clause 2 of E_r: a formal predicate that reads a global or
    // dereferences a formal (so it reports side-effects to the caller).
    bool ReportsEffects = false;
    if (IsFormalPred) {
      for (const std::string &Name : Vars)
        if (GlobalNames.count(Name) && !ParamNames.count(Name))
          ReportsEffects = true;
      for (const std::string &Name : logic::collectDerefedVars(E))
        if (ParamNames.count(Name))
          ReportsEffects = true;
    }

    if ((AboutReturn || ReportsEffects) && !MentionsModifiedFormal(E))
      Sig.Returns.push_back(E);
  }
  return Sig;
}
