//===- Signatures.h - Procedure signatures (Section 4.5.2) ------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modular abstraction interface of a procedure: its formal
/// parameter predicates E_f (predicates of E_R free of locals) and its
/// return predicates E_r (predicates about the return variable, plus
/// formal predicates that reference globals or dereference formals).
/// Each signature is computable from the procedure and E_R alone, which
/// is what lets C2bp abstract procedures one at a time.
///
//===----------------------------------------------------------------------===//

#ifndef C2BP_SIGNATURES_H
#define C2BP_SIGNATURES_H

#include "alias/ModRef.h"
#include "cfront/AST.h"
#include "logic/Expr.h"

#include <vector>

namespace slam {
namespace c2bp {

/// Signature (F_R, r, E_f, E_r) of one procedure.
struct ProcSignature {
  const cfront::FuncDecl *Func = nullptr;
  /// The single return variable r (Section 4.5.1's normal form), or
  /// nullptr for void procedures.
  const cfront::VarDecl *RetVar = nullptr;
  std::vector<logic::ExprRef> Formals; // E_f.
  std::vector<logic::ExprRef> Returns; // E_r.
};

/// Finds the return variable of a normalized procedure (the variable of
/// its single trailing `return v;`), or nullptr.
const cfront::VarDecl *findReturnVar(const cfront::FuncDecl &F);

/// Computes the signature. \p ModSet is the may-modify summary used for
/// footnote 4: predicates mentioning a formal that the procedure may
/// modify are excluded from E_r (the formal no longer mirrors its
/// actual at return).
ProcSignature computeSignature(logic::LogicContext &Ctx,
                               const cfront::Program &P,
                               const cfront::FuncDecl &F,
                               const std::vector<logic::ExprRef> &ER,
                               const alias::PointsTo &PT,
                               const alias::ModRef &MR);

} // namespace c2bp
} // namespace slam

#endif // C2BP_SIGNATURES_H
