//===- AST.cpp - Expression and program printing ---------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "cfront/AST.h"

using namespace slam;
using namespace slam::cfront;

bool cfront::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return true;
  default:
    return false;
  }
}

namespace {

const char *binaryOpText(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::LAnd:
    return "&&";
  case BinaryOp::LOr:
    return "||";
  }
  return "?";
}

void printExpr(const Expr &E, std::string &Out) {
  switch (E.Kind) {
  case CExprKind::IntLit:
    Out += std::to_string(E.IntValue);
    break;
  case CExprKind::NullLit:
    Out += "NULL";
    break;
  case CExprKind::VarRef:
    Out += E.Name;
    break;
  case CExprKind::Unary: {
    const char *Op = E.UOp == UnaryOp::Deref    ? "*"
                     : E.UOp == UnaryOp::AddrOf ? "&"
                     : E.UOp == UnaryOp::Neg    ? "-"
                                                : "!";
    Out += Op;
    bool Paren = E.Ops[0]->Kind == CExprKind::Binary;
    if (Paren)
      Out += '(';
    printExpr(*E.Ops[0], Out);
    if (Paren)
      Out += ')';
    break;
  }
  case CExprKind::Binary: {
    auto Side = [&Out](const Expr &Sub) {
      bool Paren = Sub.Kind == CExprKind::Binary;
      if (Paren)
        Out += '(';
      printExpr(Sub, Out);
      if (Paren)
        Out += ')';
    };
    Side(*E.Ops[0]);
    Out += ' ';
    Out += binaryOpText(E.BOp);
    Out += ' ';
    Side(*E.Ops[1]);
    break;
  }
  case CExprKind::Member: {
    bool Paren = E.Ops[0]->Kind == CExprKind::Unary ||
                 E.Ops[0]->Kind == CExprKind::Binary;
    if (Paren)
      Out += '(';
    printExpr(*E.Ops[0], Out);
    if (Paren)
      Out += ')';
    Out += E.IsArrow ? "->" : ".";
    Out += E.FieldName;
    break;
  }
  case CExprKind::Index:
    printExpr(*E.Ops[0], Out);
    Out += '[';
    printExpr(*E.Ops[1], Out);
    Out += ']';
    break;
  case CExprKind::Call: {
    Out += E.Name;
    Out += '(';
    for (size_t I = 0; I != E.Ops.size(); ++I) {
      if (I != 0)
        Out += ", ";
      printExpr(*E.Ops[I], Out);
    }
    Out += ')';
    break;
  }
  }
}

void printStmtImpl(const Stmt &S, unsigned Indent, std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  switch (S.Kind) {
  case CStmtKind::Block:
    Out += Pad + "{\n";
    for (const Stmt *Sub : S.Stmts)
      printStmtImpl(*Sub, Indent + 1, Out);
    Out += Pad + "}\n";
    break;
  case CStmtKind::Assign:
    Out += Pad + S.Lhs->str() + " = " + S.Rhs->str() + ";\n";
    break;
  case CStmtKind::CallStmt:
    Out += Pad;
    if (S.Lhs)
      Out += S.Lhs->str() + " = ";
    Out += S.CallE->str() + ";\n";
    break;
  case CStmtKind::If:
    Out += Pad + "if (" + S.Cond->str() + ")\n";
    printStmtImpl(*S.Then, Indent + 1, Out);
    if (S.Else) {
      Out += Pad + "else\n";
      printStmtImpl(*S.Else, Indent + 1, Out);
    }
    break;
  case CStmtKind::While:
    Out += Pad + "while (" + S.Cond->str() + ")\n";
    printStmtImpl(*S.Body, Indent + 1, Out);
    break;
  case CStmtKind::Goto:
    Out += Pad + "goto " + S.LabelName + ";\n";
    break;
  case CStmtKind::Label:
    Out += Pad + S.LabelName + ":\n";
    printStmtImpl(*S.Sub, Indent, Out);
    break;
  case CStmtKind::Return:
    Out += Pad + (S.Rhs ? "return " + S.Rhs->str() + ";\n" : "return;\n");
    break;
  case CStmtKind::Assert:
    Out += Pad + "assert(" + S.Cond->str() + ");\n";
    break;
  case CStmtKind::Break:
    Out += Pad + "break;\n";
    break;
  case CStmtKind::Continue:
    Out += Pad + "continue;\n";
    break;
  case CStmtKind::Skip:
    Out += Pad + ";\n";
    break;
  }
}

} // namespace

std::string Expr::str() const {
  std::string Out;
  printExpr(*this, Out);
  return Out;
}

std::string cfront::printStmt(const Stmt &S, unsigned Indent) {
  std::string Out;
  printStmtImpl(S, Indent, Out);
  return Out;
}

std::string cfront::printFunction(const FuncDecl &F) {
  std::string Out = F.ReturnTy->str() + " " + F.Name + "(";
  for (size_t I = 0; I != F.Params.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += F.Params[I]->Ty->str() + " " + F.Params[I]->Name;
  }
  Out += ")";
  if (!F.Body)
    return Out + ";\n";
  Out += " {\n";
  for (const VarDecl *V : F.Locals)
    Out += "  " + V->Ty->str() + " " + V->Name + ";\n";
  for (const Stmt *S : F.Body->Stmts)
    Out += printStmt(*S, 1);
  Out += "}\n";
  return Out;
}

std::string cfront::printProgram(const Program &P) {
  std::string Out;
  for (const VarDecl *G : P.Globals)
    Out += G->Ty->str() + " " + G->Name + ";\n";
  for (const FuncDecl *F : P.Functions) {
    Out += printFunction(*F);
    Out += "\n";
  }
  return Out;
}
