//===- AST.h - SIL-C abstract syntax ----------------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the analyzed C subset. The tree is produced by
/// Parser, annotated by Sema (name resolution + types), and rewritten by
/// Normalize into the paper's simple intermediate form (Section 4):
/// side-effect-free expressions, calls only at the top level of
/// expression statements, no multiple dereferences.
///
/// Nodes are owned by an ASTContext arena and referenced by raw pointer.
///
//===----------------------------------------------------------------------===//

#ifndef CFRONT_AST_H
#define CFRONT_AST_H

#include "cfront/Types.h"
#include "support/SourceLoc.h"

#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace slam {
namespace cfront {

class Expr;
class Stmt;
class FuncDecl;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A variable: global, parameter, or procedure-local.
struct VarDecl {
  enum class Scope { Global, Param, Local };
  std::string Name;
  const Type *Ty = nullptr;
  Scope Sc = Scope::Local;
  SourceLoc Loc;

  bool isGlobal() const { return Sc == Scope::Global; }
};

/// A function with parameters, locals and a body ( nullptr body = extern
/// declaration, abstracted conservatively by C2bp).
struct FuncDecl {
  std::string Name;
  const Type *ReturnTy = nullptr;
  std::vector<VarDecl *> Params;
  std::vector<VarDecl *> Locals;
  Stmt *Body = nullptr; // Block, or nullptr for externs.
  SourceLoc Loc;

  bool isExtern() const { return Body == nullptr; }

  VarDecl *findLocalOrParam(const std::string &VarName) const {
    for (VarDecl *V : Params)
      if (V->Name == VarName)
        return V;
    for (VarDecl *V : Locals)
      if (V->Name == VarName)
        return V;
    return nullptr;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class CExprKind {
  IntLit,
  NullLit,
  VarRef,
  Unary,  // * & - !
  Binary, // arith, comparisons, && ||
  Member, // base.f or base->f
  Index,  // base[idx]
  Call,   // f(args) — removed from subexpressions by Normalize
};

enum class UnaryOp { Deref, AddrOf, Neg, Not };

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LAnd,
  LOr,
};

/// True for ==, !=, <, <=, >, >=.
bool isComparisonOp(BinaryOp Op);

/// An expression node; Sema fills in Ty and resolves VarRef/Call
/// referents.
class Expr {
public:
  CExprKind Kind;
  SourceLoc Loc;
  const Type *Ty = nullptr; // Set by Sema.

  // IntLit.
  int64_t IntValue = 0;
  // VarRef: name from the parser, declaration from Sema.
  std::string Name;
  VarDecl *Var = nullptr;
  // Unary / Binary.
  UnaryOp UOp = UnaryOp::Deref;
  BinaryOp BOp = BinaryOp::Add;
  // Member: FieldName + IsArrow; Call: resolved Callee.
  std::string FieldName;
  bool IsArrow = false;
  FuncDecl *Callee = nullptr;

  std::vector<Expr *> Ops; // Operands / call arguments.

  explicit Expr(CExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

  /// True for the location shapes that may appear on the left of an
  /// assignment: variable, *p, p->f, base.f, a[i].
  bool isLocation() const {
    switch (Kind) {
    case CExprKind::VarRef:
    case CExprKind::Member:
    case CExprKind::Index:
      return true;
    case CExprKind::Unary:
      return UOp == UnaryOp::Deref;
    default:
      return false;
    }
  }

  /// C-like rendering for diagnostics and golden tests.
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class CStmtKind {
  Block,
  Assign,  // Lhs = Rhs;
  CallStmt,// [Lhs =] f(args);
  If,
  While,
  Goto,
  Label,   // name: stmt
  Return,
  Assert,
  Break,
  Continue,
  Skip,    // ;
};

/// A statement node. Each statement carries a dense per-program id
/// (assigned by Sema) used to correlate boolean-program statements back
/// to their C origin in counterexample traces.
class Stmt {
public:
  CStmtKind Kind;
  SourceLoc Loc;
  unsigned Id = 0; // Dense id, set by Sema.

  // Assign: Ops[0] = Lhs location, Ops[1] = Rhs.
  // CallStmt: Lhs (may be null) + CallExpr.
  // If: Cond, Then, Else (Else may be null).
  // While: Cond, Body.
  // Return: Value (may be null).
  // Assert: Cond.
  // Goto / Label: LabelName (+ Sub for Label).
  Expr *Lhs = nullptr;
  Expr *Rhs = nullptr;
  Expr *Cond = nullptr;
  Expr *CallE = nullptr;
  Stmt *Then = nullptr;
  Stmt *Else = nullptr;
  Stmt *Body = nullptr;
  Stmt *Sub = nullptr;
  std::string LabelName;
  std::vector<Stmt *> Stmts; // Block members.

  explicit Stmt(CStmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Program and arena
//===----------------------------------------------------------------------===//

/// Owns all AST nodes, declarations and the type context for one
/// translation unit.
class Program {
public:
  TypeContext Types;
  std::vector<FuncDecl *> Functions;
  std::vector<VarDecl *> Globals;

  FuncDecl *findFunction(const std::string &Name) const {
    for (FuncDecl *F : Functions)
      if (F->Name == Name)
        return F;
    return nullptr;
  }

  VarDecl *findGlobal(const std::string &Name) const {
    for (VarDecl *V : Globals)
      if (V->Name == Name)
        return V;
    return nullptr;
  }

  // -- Node factories -----------------------------------------------------
  Expr *makeExpr(CExprKind Kind, SourceLoc Loc) {
    ExprArena.emplace_back(Kind, Loc);
    return &ExprArena.back();
  }
  Stmt *makeStmt(CStmtKind Kind, SourceLoc Loc) {
    StmtArena.emplace_back(Kind, Loc);
    return &StmtArena.back();
  }
  VarDecl *makeVar(std::string Name, const Type *Ty, VarDecl::Scope Sc,
                   SourceLoc Loc) {
    VarArena.push_back(VarDecl{std::move(Name), Ty, Sc, Loc});
    return &VarArena.back();
  }
  FuncDecl *makeFunc(std::string Name, SourceLoc Loc) {
    FuncArena.push_back(FuncDecl());
    FuncArena.back().Name = std::move(Name);
    FuncArena.back().Loc = Loc;
    return &FuncArena.back();
  }

  /// Total number of statement ids assigned (Sema sets this).
  unsigned NumStmts = 0;

  /// Textual line count of the original source (set by the parser; the
  /// "lines" column of the paper's tables).
  unsigned SourceLines = 0;

private:
  std::deque<Expr> ExprArena;
  std::deque<Stmt> StmtArena;
  std::deque<VarDecl> VarArena;
  std::deque<FuncDecl> FuncArena;
};

/// Renders a whole program (or one function) back to C-like source.
std::string printProgram(const Program &P);
std::string printFunction(const FuncDecl &F);
std::string printStmt(const Stmt &S, unsigned Indent = 0);

} // namespace cfront
} // namespace slam

#endif // CFRONT_AST_H
