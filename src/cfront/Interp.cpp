//===- Interp.cpp - Reference execution of SIL-C ---------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "cfront/Interp.h"

#include <cassert>

using namespace slam;
using namespace slam::cfront;

StepHook::~StepHook() = default;

Interpreter::Interpreter(const Program &P, uint64_t NondetSeed)
    : P(P), RngState(NondetSeed * 2654435761ULL + 0x9e3779b97f4a7c15ULL) {
  Objects.resize(1); // Object 0 is the NULL pseudo-object.
  for (const VarDecl *G : P.Globals) {
    int Obj = allocVar(G->Ty);
    // C semantics: globals are zero-initialized.
    if (Objects[Obj].K == Object::Kind::Cell)
      Objects[Obj].Scalar = G->Ty->isPointer() ? Value::null()
                                               : Value::makeInt(0);
    Globals[G] = Obj;
  }
}

uint32_t Interpreter::nextRandom() {
  RngState ^= RngState << 13;
  RngState ^= RngState >> 7;
  RngState ^= RngState << 17;
  return static_cast<uint32_t>(RngState >> 32);
}

Value Interpreter::havocValue(const Type *Ty) {
  if (Ty->isPointer())
    return Value::null(); // Uninitialized pointers read as NULL.
  // Small signed range keeps the prover's constants small too.
  return Value::makeInt(static_cast<int64_t>(nextRandom() % 21) - 10);
}

int Interpreter::allocVar(const Type *Ty) {
  Object O;
  if (Ty->isRecord()) {
    O.K = Object::Kind::Record;
    O.Rec = Ty->record();
    Objects.push_back(O);
    int Id = static_cast<int>(Objects.size() - 1);
    for (const auto &F : Ty->record()->Fields) {
      Object Cell;
      Cell.Scalar = havocValue(F.Ty);
      Objects.push_back(Cell);
      Objects[Id].Fields[F.Name] =
          static_cast<int>(Objects.size() - 1);
    }
    return Id;
  }
  if (Ty->isArray()) {
    O.K = Object::Kind::Array;
    Objects.push_back(O);
    int Id = static_cast<int>(Objects.size() - 1);
    for (int64_t I = 0; I != Ty->arraySize(); ++I) {
      Object Cell;
      Cell.Scalar = havocValue(Ty->elementType());
      Objects.push_back(Cell);
      Objects[Id].Elements.push_back(
          static_cast<int>(Objects.size() - 1));
    }
    return Id;
  }
  O.Scalar = havocValue(Ty);
  Objects.push_back(O);
  return static_cast<int>(Objects.size() - 1);
}

int Interpreter::allocStruct(const RecordDecl *Rec) {
  Object O;
  O.K = Object::Kind::Record;
  O.Rec = Rec;
  Objects.push_back(O);
  int Id = static_cast<int>(Objects.size() - 1);
  for (const auto &F : Rec->Fields) {
    Object Cell;
    Cell.Scalar = F.Ty->isPointer() ? Value::null() : Value::makeInt(0);
    Objects.push_back(Cell);
    Objects[Id].Fields[F.Name] = static_cast<int>(Objects.size() - 1);
  }
  return Id;
}

void Interpreter::setField(int Obj, const std::string &Field, Value V) {
  Objects[Objects[Obj].Fields.at(Field)].Scalar = V;
}

Value Interpreter::getField(int Obj, const std::string &Field) const {
  return Objects[Objects[Obj].Fields.at(Field)].Scalar;
}

int Interpreter::allocCell(Value V) {
  Object O;
  O.Scalar = V;
  Objects.push_back(O);
  return static_cast<int>(Objects.size() - 1);
}

Value Interpreter::cellValue(int Obj) const { return Objects[Obj].Scalar; }

void Interpreter::setGlobal(const std::string &Name, Value V) {
  const VarDecl *G = P.findGlobal(Name);
  assert(G && "unknown global");
  Objects[Globals.at(G)].Scalar = V;
}

Value Interpreter::getGlobal(const std::string &Name) const {
  const VarDecl *G = P.findGlobal(Name);
  assert(G && "unknown global");
  return Objects[Globals.at(G)].Scalar;
}

int Interpreter::slotOf(const VarDecl *V) {
  if (V->isGlobal())
    return Globals.at(V);
  return Stack.back().Slots.at(V);
}

Value Interpreter::load(int Obj) const { return Objects[Obj].Scalar; }

void Interpreter::store(int Obj, Value V) { Objects[Obj].Scalar = V; }

//===----------------------------------------------------------------------===//
// Flattening (structured control -> instructions)
//===----------------------------------------------------------------------===//

namespace {

struct FlatBuilder {
  std::vector<Interpreter::Instr> &Code;
  std::map<std::string, int> Labels;
  std::vector<std::pair<int, std::string>> GotoPatches;
  std::vector<std::vector<int>> BreakPatches;
  std::vector<int> ContinueTargets;

  explicit FlatBuilder(std::vector<Interpreter::Instr> &Code)
      : Code(Code) {}

  int emit(Interpreter::Instr I) {
    Code.push_back(I);
    return static_cast<int>(Code.size() - 1);
  }

  void lower(const Stmt &S) {
    using Op = Interpreter::Instr::Op;
    switch (S.Kind) {
    case CStmtKind::Block:
      for (const Stmt *Sub : S.Stmts)
        lower(*Sub);
      return;
    case CStmtKind::Assign:
      emit({Op::Assign, &S, -1, -1});
      return;
    case CStmtKind::CallStmt:
      emit({Op::Call, &S, -1, -1});
      return;
    case CStmtKind::Assert:
      emit({Op::Assert, &S, -1, -1});
      return;
    case CStmtKind::Skip:
      return;
    case CStmtKind::Label:
      Labels[S.LabelName] = static_cast<int>(Code.size());
      lower(*S.Sub);
      return;
    case CStmtKind::Goto: {
      int J = emit({Op::Jump, &S, -1, -1});
      GotoPatches.emplace_back(J, S.LabelName);
      return;
    }
    case CStmtKind::Return:
      emit({Op::Return, &S, -1, -1});
      return;
    case CStmtKind::If: {
      int B = emit({Op::Branch, &S, -1, -1});
      Code[B].ThenTarget = static_cast<int>(Code.size());
      lower(*S.Then);
      if (S.Else) {
        int SkipElse = emit({Op::Jump, nullptr, -1, -1});
        Code[B].Target = static_cast<int>(Code.size());
        lower(*S.Else);
        Code[SkipElse].Target = static_cast<int>(Code.size());
      } else {
        Code[B].Target = static_cast<int>(Code.size());
      }
      return;
    }
    case CStmtKind::While: {
      int Top = static_cast<int>(Code.size());
      int B = emit({Op::Branch, &S, -1, -1});
      Code[B].ThenTarget = static_cast<int>(Code.size());
      BreakPatches.emplace_back();
      ContinueTargets.push_back(Top);
      lower(*S.Body);
      emit({Op::Jump, nullptr, Top, -1});
      Code[B].Target = static_cast<int>(Code.size());
      for (int Patch : BreakPatches.back())
        Code[Patch].Target = static_cast<int>(Code.size());
      BreakPatches.pop_back();
      ContinueTargets.pop_back();
      return;
    }
    case CStmtKind::Break: {
      int J = emit({Op::Jump, &S, -1, -1});
      BreakPatches.back().push_back(J);
      return;
    }
    case CStmtKind::Continue:
      emit({Op::Jump, &S, ContinueTargets.back(), -1});
      return;
    }
  }

  void finish() {
    for (const auto &[Idx, Label] : GotoPatches) {
      auto It = Labels.find(Label);
      assert(It != Labels.end() && "checked by Sema");
      Code[Idx].Target = It->second;
    }
  }
};

} // namespace

const Interpreter::FlatFunction &Interpreter::flatten(const FuncDecl &F) {
  auto It = FlatCache.find(&F);
  if (It != FlatCache.end())
    return It->second;
  FlatFunction Flat;
  FlatBuilder B(Flat.Code);
  if (F.Body)
    B.lower(*F.Body);
  B.finish();
  return FlatCache.emplace(&F, std::move(Flat)).first->second;
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

int Interpreter::lvalueObject(const Expr &E) {
  switch (E.Kind) {
  case CExprKind::VarRef:
    return slotOf(E.Var);
  case CExprKind::Unary: {
    assert(E.UOp == UnaryOp::Deref);
    Value V = eval(*E.Ops[0]);
    return V.isNull() ? -1 : V.Obj;
  }
  case CExprKind::Member: {
    int Base;
    if (E.IsArrow) {
      Value V = eval(*E.Ops[0]);
      if (V.isNull())
        return -1;
      Base = V.Obj;
    } else {
      Base = lvalueObject(*E.Ops[0]);
      if (Base < 0)
        return -1;
    }
    const Object &O = Objects[Base];
    auto It = O.Fields.find(E.FieldName);
    return It == O.Fields.end() ? -1 : It->second;
  }
  case CExprKind::Index: {
    int Base = lvalueObject(*E.Ops[0]);
    if (Base < 0)
      return -1;
    const Object *O = &Objects[Base];
    if (O->K == Object::Kind::Cell) {
      // Pointer variable: index its target array-ish object.
      Value V = O->Scalar;
      if (V.isNull())
        return -1;
      O = &Objects[V.Obj];
    }
    Value Idx = eval(*E.Ops[1]);
    if (O->K != Object::Kind::Array || Idx.I < 0 ||
        Idx.I >= static_cast<int64_t>(O->Elements.size()))
      return -1;
    return O->Elements[static_cast<size_t>(Idx.I)];
  }
  default:
    return -1;
  }
}

Value Interpreter::eval(const Expr &E) {
  switch (E.Kind) {
  case CExprKind::IntLit:
    return Value::makeInt(E.IntValue);
  case CExprKind::NullLit:
    return Value::null();
  case CExprKind::VarRef:
  case CExprKind::Member:
  case CExprKind::Index: {
    int Obj = lvalueObject(E);
    if (Obj < 0) {
      Status = Outcome::RuntimeError;
      return Value::makeInt(0);
    }
    return load(Obj);
  }
  case CExprKind::Unary:
    switch (E.UOp) {
    case UnaryOp::Deref: {
      int Obj = lvalueObject(E);
      if (Obj < 0) {
        Status = Outcome::RuntimeError;
        return Value::makeInt(0);
      }
      return load(Obj);
    }
    case UnaryOp::AddrOf: {
      int Obj = lvalueObject(*E.Ops[0]);
      if (Obj < 0) {
        Status = Outcome::RuntimeError;
        return Value::null();
      }
      return Value::makePtr(Obj);
    }
    case UnaryOp::Neg:
      return Value::makeInt(-eval(*E.Ops[0]).I);
    case UnaryOp::Not:
      return Value::makeInt(evalCond(*E.Ops[0]) ? 0 : 1);
    }
    break;
  case CExprKind::Binary: {
    if (E.BOp == BinaryOp::LAnd)
      return Value::makeInt(evalCond(*E.Ops[0]) && evalCond(*E.Ops[1]));
    if (E.BOp == BinaryOp::LOr)
      return Value::makeInt(evalCond(*E.Ops[0]) || evalCond(*E.Ops[1]));
    Value L = eval(*E.Ops[0]);
    Value R = eval(*E.Ops[1]);
    switch (E.BOp) {
    case BinaryOp::Add:
      if (L.K == Value::Kind::Ptr)
        return L; // Logical model: p + i points to *p's object.
      return Value::makeInt(L.I + R.I);
    case BinaryOp::Sub:
      if (L.K == Value::Kind::Ptr)
        return L;
      return Value::makeInt(L.I - R.I);
    case BinaryOp::Mul:
      return Value::makeInt(L.I * R.I);
    case BinaryOp::Div:
      if (R.I == 0) {
        Status = Outcome::RuntimeError;
        return Value::makeInt(0);
      }
      return Value::makeInt(L.I / R.I);
    case BinaryOp::Mod:
      if (R.I == 0) {
        Status = Outcome::RuntimeError;
        return Value::makeInt(0);
      }
      return Value::makeInt(L.I % R.I);
    case BinaryOp::Eq:
      return Value::makeInt(L == R);
    case BinaryOp::Ne:
      return Value::makeInt(!(L == R));
    case BinaryOp::Lt:
      return Value::makeInt(L.I < R.I);
    case BinaryOp::Le:
      return Value::makeInt(L.I <= R.I);
    case BinaryOp::Gt:
      return Value::makeInt(L.I > R.I);
    case BinaryOp::Ge:
      return Value::makeInt(L.I >= R.I);
    default:
      break;
    }
    break;
  }
  case CExprKind::Call:
    assert(false && "calls are statement-level after normalization");
    break;
  }
  return Value::makeInt(0);
}

bool Interpreter::evalCond(const Expr &E) {
  Value V = eval(E);
  return V.K == Value::Kind::Int ? V.I != 0 : V.Obj != 0;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

Value Interpreter::callFunction(const FuncDecl &F,
                                std::vector<Value> Args) {
  if (F.isExtern()) {
    // Default extern behavior: a fresh nondeterministic value, no side
    // effects (test harnesses may override via externHandlers).
    auto It = ExternHandlers.find(F.Name);
    if (It != ExternHandlers.end())
      return It->second(*this, Args);
    (void)Args;
    return havocValue(F.ReturnTy->isVoid() ? P.Types.intType()
                                           : F.ReturnTy);
  }

  Frame Fr;
  Fr.F = &F;
  for (size_t I = 0; I != F.Params.size(); ++I) {
    int Slot = allocVar(F.Params[I]->Ty);
    if (I < Args.size())
      Objects[Slot].Scalar = Args[I];
    Fr.Slots[F.Params[I]] = Slot;
  }
  for (const VarDecl *L : F.Locals)
    Fr.Slots[L] = allocVar(L->Ty);
  Stack.push_back(std::move(Fr));

  const FlatFunction &Flat = flatten(F);
  Value Ret = Value::makeInt(0);
  size_t Pc = 0;
  while (Pc < Flat.Code.size() && Status == Outcome::Finished) {
    if (--StepsLeft <= 0) {
      Status = Outcome::StepLimit;
      break;
    }
    const Instr &I = Flat.Code[Pc];
    switch (I.K) {
    case Instr::Op::Assign: {
      if (Hook)
        Hook->onStep(*I.S, true);
      Value V = eval(*I.S->Rhs);
      int Obj = lvalueObject(*I.S->Lhs);
      if (Obj < 0 || Status != Outcome::Finished) {
        Status = Outcome::RuntimeError;
        StopAt = I.S;
        break;
      }
      store(Obj, V);
      if (Hook)
        Hook->afterStore(*I.S);
      ++Pc;
      break;
    }
    case Instr::Op::Call: {
      if (Hook)
        Hook->onStep(*I.S, true);
      std::vector<Value> CallArgs;
      for (const Expr *A : I.S->CallE->Ops)
        CallArgs.push_back(eval(*A));
      Value V = callFunction(*I.S->CallE->Callee, std::move(CallArgs));
      if (Status != Outcome::Finished)
        break;
      if (I.S->Lhs) {
        int Obj = lvalueObject(*I.S->Lhs);
        if (Obj < 0) {
          Status = Outcome::RuntimeError;
          StopAt = I.S;
          break;
        }
        store(Obj, V);
      }
      if (Hook)
        Hook->afterStore(*I.S);
      ++Pc;
      break;
    }
    case Instr::Op::Assert: {
      bool V = evalCond(*I.S->Cond);
      if (Hook)
        Hook->onStep(*I.S, V);
      if (!V) {
        Status = Outcome::AssertFailed;
        StopAt = I.S;
        break;
      }
      ++Pc;
      break;
    }
    case Instr::Op::Branch: {
      bool V = evalCond(*I.S->Cond);
      if (Hook)
        Hook->onStep(*I.S, V);
      Pc = static_cast<size_t>(V ? I.ThenTarget : I.Target);
      break;
    }
    case Instr::Op::Jump:
      Pc = static_cast<size_t>(I.Target);
      break;
    case Instr::Op::Return:
      if (I.S && I.S->Rhs)
        Ret = eval(*I.S->Rhs);
      Pc = Flat.Code.size();
      break;
    }
  }

  Stack.pop_back();
  return Ret;
}

Interpreter::Outcome Interpreter::run(const std::string &Func,
                                      std::vector<Value> Args,
                                      StepHook *RunHook, int MaxSteps) {
  const FuncDecl *F = P.findFunction(Func);
  assert(F && F->Body && "entry must be defined");
  Hook = RunHook;
  StepsLeft = MaxSteps;
  Status = Outcome::Finished;
  StopAt = nullptr;
  LastReturn = callFunction(*F, std::move(Args));
  Hook = nullptr;
  return Status;
}

//===----------------------------------------------------------------------===//
// Predicate evaluation (logic terms against the concrete state)
//===----------------------------------------------------------------------===//

namespace {
using logic::ExprKind;
using logic::ExprRef;
} // namespace

std::optional<Value> Interpreter::evalLogic(ExprRef E) const {
  auto LocObject = [this](ExprRef Loc,
                          auto &&Self) -> std::optional<int> {
    switch (Loc->kind()) {
    case ExprKind::Var: {
      const VarDecl *V = nullptr;
      if (!Stack.empty())
        V = Stack.back().F->findLocalOrParam(Loc->name());
      if (!V)
        V = P.findGlobal(Loc->name());
      if (!V)
        return std::nullopt;
      if (V->isGlobal())
        return Globals.at(V);
      auto It = Stack.back().Slots.find(V);
      return It == Stack.back().Slots.end() ? std::optional<int>()
                                            : std::optional<int>(It->second);
    }
    case ExprKind::Deref: {
      std::optional<Value> Ptr = evalLogic(Loc->op(0));
      if (!Ptr || Ptr->isNull() || Ptr->K != Value::Kind::Ptr)
        return std::nullopt;
      return Ptr->Obj;
    }
    case ExprKind::Field: {
      std::optional<int> Base = Self(Loc->op(0), Self);
      if (!Base)
        return std::nullopt;
      const Object &O = Objects[*Base];
      auto It = O.Fields.find(Loc->name());
      if (It == O.Fields.end())
        return std::nullopt;
      return It->second;
    }
    case ExprKind::Index: {
      std::optional<int> Base = Self(Loc->op(0), Self);
      std::optional<Value> Idx = evalLogic(Loc->op(1));
      if (!Base || !Idx || Idx->K != Value::Kind::Int)
        return std::nullopt;
      const Object *O = &Objects[*Base];
      if (O->K == Object::Kind::Cell) {
        if (O->Scalar.isNull() || O->Scalar.K != Value::Kind::Ptr)
          return std::nullopt;
        O = &Objects[O->Scalar.Obj];
      }
      if (O->K != Object::Kind::Array || Idx->I < 0 ||
          Idx->I >= static_cast<int64_t>(O->Elements.size()))
        return std::nullopt;
      return O->Elements[static_cast<size_t>(Idx->I)];
    }
    default:
      return std::nullopt;
    }
  };

  switch (E->kind()) {
  case ExprKind::IntLit:
    return Value::makeInt(E->intValue());
  case ExprKind::NullLit:
    return Value::null();
  case ExprKind::BoolLit:
    return Value::makeInt(E->boolValue());
  case ExprKind::Var:
  case ExprKind::Deref:
  case ExprKind::Field:
  case ExprKind::Index: {
    std::optional<int> Obj = LocObject(E, LocObject);
    if (!Obj)
      return std::nullopt;
    const Object &O = Objects[*Obj];
    if (O.K != Object::Kind::Cell)
      return std::nullopt; // Whole structs/arrays have no scalar value.
    return O.Scalar;
  }
  case ExprKind::AddrOf: {
    std::optional<int> Obj = LocObject(E->op(0), LocObject);
    if (!Obj)
      return std::nullopt;
    return Value::makePtr(*Obj);
  }
  default:
    break;
  }

  // Compound terms/formulas.
  auto Int = [](const std::optional<Value> &V) -> std::optional<int64_t> {
    if (!V || V->K != Value::Kind::Int)
      return std::nullopt;
    return V->I;
  };
  switch (E->kind()) {
  case ExprKind::Neg: {
    auto V = Int(evalLogic(E->op(0)));
    if (!V)
      return std::nullopt;
    return Value::makeInt(-*V);
  }
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
  case ExprKind::Div:
  case ExprKind::Mod: {
    auto L = Int(evalLogic(E->op(0)));
    auto R = Int(evalLogic(E->op(1)));
    if (!L || !R)
      return std::nullopt;
    switch (E->kind()) {
    case ExprKind::Add:
      return Value::makeInt(*L + *R);
    case ExprKind::Sub:
      return Value::makeInt(*L - *R);
    case ExprKind::Mul:
      return Value::makeInt(*L * *R);
    case ExprKind::Div:
      return *R == 0 ? std::optional<Value>()
                     : Value::makeInt(*L / *R);
    default:
      return *R == 0 ? std::optional<Value>()
                     : Value::makeInt(*L % *R);
    }
  }
  case ExprKind::Eq:
  case ExprKind::Ne: {
    auto L = evalLogic(E->op(0));
    auto R = evalLogic(E->op(1));
    if (!L || !R)
      return std::nullopt;
    bool Equal = *L == *R;
    return Value::makeInt(E->kind() == ExprKind::Eq ? Equal : !Equal);
  }
  case ExprKind::Lt:
  case ExprKind::Le:
  case ExprKind::Gt:
  case ExprKind::Ge: {
    auto L = Int(evalLogic(E->op(0)));
    auto R = Int(evalLogic(E->op(1)));
    if (!L || !R)
      return std::nullopt;
    switch (E->kind()) {
    case ExprKind::Lt:
      return Value::makeInt(*L < *R);
    case ExprKind::Le:
      return Value::makeInt(*L <= *R);
    case ExprKind::Gt:
      return Value::makeInt(*L > *R);
    default:
      return Value::makeInt(*L >= *R);
    }
  }
  case ExprKind::Not: {
    auto V = Int(evalLogic(E->op(0)));
    if (!V)
      return std::nullopt;
    return Value::makeInt(*V == 0);
  }
  case ExprKind::And:
  case ExprKind::Or: {
    bool IsAnd = E->kind() == ExprKind::And;
    for (ExprRef Op : E->operands()) {
      auto V = Int(evalLogic(Op));
      if (!V)
        return std::nullopt;
      if (IsAnd && *V == 0)
        return Value::makeInt(0);
      if (!IsAnd && *V != 0)
        return Value::makeInt(1);
    }
    return Value::makeInt(IsAnd ? 1 : 0);
  }
  default:
    return std::nullopt;
  }
}
