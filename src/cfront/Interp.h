//===- Interp.h - Concrete interpreter for SIL-C ----------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for the analyzed C subset, used by the
/// soundness tests: the paper's Section 4.6 theorem says every feasible
/// concrete execution of P is simulated by BP(P, E) with matching
/// predicate valuations, and the test harness runs programs concretely
/// while checking each boolean transfer function against the observed
/// predicate values.
///
/// Memory model: a table of objects — scalar cells, struct instances
/// and arrays — matching the paper's logical model. Pointer values are
/// object references (0 = NULL); &x refers to x's cell. Uninitialized
/// scalars and extern (nondet) calls draw from a seeded deterministic
/// generator.
///
//===----------------------------------------------------------------------===//

#ifndef CFRONT_INTERP_H
#define CFRONT_INTERP_H

#include "cfront/AST.h"
#include "logic/Expr.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace slam {
namespace cfront {

/// A runtime value: an integer or a pointer (object id; 0 = NULL).
struct Value {
  enum class Kind { Int, Ptr } K = Kind::Int;
  int64_t I = 0;
  int Obj = 0;

  static Value makeInt(int64_t V) { return {Kind::Int, V, 0}; }
  static Value makePtr(int Obj) { return {Kind::Ptr, 0, Obj}; }
  static Value null() { return makePtr(0); }

  bool isNull() const { return K == Kind::Ptr && Obj == 0; }

  bool operator==(const Value &O) const {
    if (K != O.K) {
      // NULL compares equal to the integer 0 (SIL-C's null constant).
      if (isNull() && O.K == Kind::Int)
        return O.I == 0;
      if (O.isNull() && K == Kind::Int)
        return I == 0;
      return false;
    }
    return K == Kind::Int ? I == O.I : Obj == O.Obj;
  }
};

/// Observes execution; used by the lockstep soundness checker.
class StepHook {
public:
  virtual ~StepHook();
  /// Fires before each executed statement. For If/While/Assert,
  /// \p CondValue is the evaluated condition.
  virtual void onStep(const Stmt &S, bool CondValue) = 0;
  /// Fires after an Assign or CallStmt completed its store.
  virtual void afterStore(const Stmt &S) = 0;
};

/// Tree-walking interpreter over the normalized program.
class Interpreter {
public:
  enum class Outcome { Finished, AssertFailed, StepLimit, RuntimeError };

  Interpreter(const Program &P, uint64_t NondetSeed);

  // -- Heap construction for test harnesses --------------------------------
  /// Allocates a struct instance (fields zero/null-initialized).
  int allocStruct(const RecordDecl *Rec);
  void setField(int Obj, const std::string &Field, Value V);
  Value getField(int Obj, const std::string &Field) const;

  /// Allocates a scalar cell holding \p V (for int* arguments).
  int allocCell(Value V);
  Value cellValue(int Obj) const;

  void setGlobal(const std::string &Name, Value V);
  Value getGlobal(const std::string &Name) const;

  // -- Execution --------------------------------------------------------------
  /// Runs \p Func with \p Args. The hook (if any) observes each step.
  Outcome run(const std::string &Func, std::vector<Value> Args,
              StepHook *Hook = nullptr, int MaxSteps = 100000);

  /// The returned value of the last completed run (if non-void).
  std::optional<Value> returnValue() const { return LastReturn; }

  /// Statement at which the last run stopped (assert failure / error).
  const Stmt *stopStmt() const { return StopAt; }

  // -- State inspection ----------------------------------------------------
  /// Evaluates a predicate-logic formula or term in the current top
  /// frame's scope. Returns nullopt when undefined (NULL dereference,
  /// unknown variable). Boolean results are Int 0/1.
  std::optional<Value> evalLogic(logic::ExprRef E) const;

private:
  struct Object {
    enum class Kind { Cell, Record, Array } K = Kind::Cell;
    Value Scalar;                    // Cell.
    const RecordDecl *Rec = nullptr; // Record.
    std::map<std::string, int> Fields;
    std::vector<int> Elements; // Array.
  };

  struct Frame {
    const FuncDecl *F = nullptr;
    std::map<const VarDecl *, int> Slots; // Var -> cell/array object.
  };

  uint32_t nextRandom();
  Value havocValue(const Type *Ty);
  int allocVar(const Type *Ty);

  int slotOf(const VarDecl *V);
  Value load(int Obj) const;
  void store(int Obj, Value V);

  /// Object id a C lvalue denotes (its cell). -1 on NULL dereference.
  int lvalueObject(const Expr &E);
  Value eval(const Expr &E);
  bool evalCond(const Expr &E);

public:
  /// Flattened instruction form of one function body (labels resolved,
  /// structured control lowered) — gotos become jumps. Public for the
  /// internal builder; not part of the stable interface.
  struct Instr {
    enum class Op { Assign, Call, Assert, Branch, Jump, Return } K;
    const Stmt *S = nullptr;
    int Target = -1;      // Jump target / Branch false-target.
    int ThenTarget = -1;  // Branch true-target.
  };
  struct FlatFunction {
    std::vector<Instr> Code;
  };

private:
  const FlatFunction &flatten(const FuncDecl &F);

  Value callFunction(const FuncDecl &F, std::vector<Value> Args);

  const Program &P;
  uint64_t RngState;
  std::vector<Object> Objects; // Index 0 reserved for NULL.
  std::map<const VarDecl *, int> Globals;
  std::vector<Frame> Stack;
  StepHook *Hook = nullptr;
  int StepsLeft = 0;
  Outcome Status = Outcome::Finished;
  const Stmt *StopAt = nullptr;
  std::optional<Value> LastReturn;
  std::map<const FuncDecl *, FlatFunction> FlatCache;

public:
  /// Test harnesses may script extern functions (e.g. a list-node
  /// allocator); the default is a fresh nondeterministic value with no
  /// side effects.
  using ExternFn = std::function<Value(Interpreter &, std::vector<Value> &)>;
  void setExternHandler(const std::string &Name, ExternFn Fn) {
    ExternHandlers[Name] = std::move(Fn);
  }

private:
  std::map<std::string, ExternFn> ExternHandlers;
};

} // namespace cfront
} // namespace slam

#endif // CFRONT_INTERP_H
