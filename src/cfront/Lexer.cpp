//===- Lexer.cpp ----------------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "cfront/Lexer.h"

#include <cctype>
#include <map>

using namespace slam;
using namespace slam::cfront;

unsigned cfront::countLines(std::string_view Source) {
  unsigned Lines = 0;
  bool NonEmpty = false;
  for (char C : Source) {
    NonEmpty = true;
    if (C == '\n')
      ++Lines;
  }
  if (NonEmpty && Source.back() != '\n')
    ++Lines;
  return Lines;
}

std::vector<Token> cfront::tokenize(std::string_view Source) {
  static const std::map<std::string, TokKind> Keywords = {
      {"int", TokKind::KwInt},         {"void", TokKind::KwVoid},
      {"struct", TokKind::KwStruct},   {"typedef", TokKind::KwTypedef},
      {"if", TokKind::KwIf},           {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},     {"goto", TokKind::KwGoto},
      {"return", TokKind::KwReturn},   {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"assert", TokKind::KwAssert},
      {"NULL", TokKind::KwNull},
  };

  std::vector<Token> Tokens;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;

  auto Advance = [&](size_t N = 1) {
    for (size_t I = 0; I != N && Pos < Source.size(); ++I) {
      if (Source[Pos] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
      ++Pos;
    }
  };
  auto Peek = [&](size_t Off = 0) -> char {
    return Pos + Off < Source.size() ? Source[Pos + Off] : '\0';
  };
  auto Push = [&](TokKind Kind, std::string Text, SourceLoc Loc) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Loc = Loc;
    Tokens.push_back(std::move(T));
  };

  while (Pos < Source.size()) {
    char C = Peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    // Comments.
    if (C == '/' && Peek(1) == '/') {
      while (Pos < Source.size() && Peek() != '\n')
        Advance();
      continue;
    }
    if (C == '/' && Peek(1) == '*') {
      Advance(2);
      while (Pos < Source.size() && !(Peek() == '*' && Peek(1) == '/'))
        Advance();
      Advance(2);
      continue;
    }

    SourceLoc Loc(Line, Col);
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Text;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        Text += Peek();
        Advance();
      }
      Token T;
      T.Kind = TokKind::IntLit;
      T.IntValue = std::stoll(Text);
      T.Text = std::move(Text);
      T.Loc = Loc;
      Tokens.push_back(std::move(T));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (std::isalnum(static_cast<unsigned char>(Peek())) ||
             Peek() == '_') {
        Text += Peek();
        Advance();
      }
      auto It = Keywords.find(Text);
      Push(It == Keywords.end() ? TokKind::Ident : It->second,
           std::move(Text), Loc);
      continue;
    }

    auto Two = [&](char Next) { return Peek(1) == Next; };
    TokKind Kind = TokKind::Error;
    size_t Len = 1;
    switch (C) {
    case '(':
      Kind = TokKind::LParen;
      break;
    case ')':
      Kind = TokKind::RParen;
      break;
    case '{':
      Kind = TokKind::LBrace;
      break;
    case '}':
      Kind = TokKind::RBrace;
      break;
    case '[':
      Kind = TokKind::LBracket;
      break;
    case ']':
      Kind = TokKind::RBracket;
      break;
    case ';':
      Kind = TokKind::Semi;
      break;
    case ',':
      Kind = TokKind::Comma;
      break;
    case ':':
      Kind = TokKind::Colon;
      break;
    case '+':
      Kind = TokKind::Plus;
      break;
    case '.':
      Kind = TokKind::Dot;
      break;
    case '%':
      Kind = TokKind::Percent;
      break;
    case '/':
      Kind = TokKind::Slash;
      break;
    case '*':
      Kind = TokKind::Star;
      break;
    case '-':
      if (Two('>')) {
        Kind = TokKind::Arrow;
        Len = 2;
      } else {
        Kind = TokKind::Minus;
      }
      break;
    case '=':
      if (Two('=')) {
        Kind = TokKind::EqEq;
        Len = 2;
      } else {
        Kind = TokKind::Assign;
      }
      break;
    case '!':
      if (Two('=')) {
        Kind = TokKind::BangEq;
        Len = 2;
      } else {
        Kind = TokKind::Bang;
      }
      break;
    case '&':
      if (Two('&')) {
        Kind = TokKind::AmpAmp;
        Len = 2;
      } else {
        Kind = TokKind::Amp;
      }
      break;
    case '|':
      if (Two('|')) {
        Kind = TokKind::PipePipe;
        Len = 2;
      }
      break;
    case '<':
      if (Two('=')) {
        Kind = TokKind::Le;
        Len = 2;
      } else {
        Kind = TokKind::Lt;
      }
      break;
    case '>':
      if (Two('=')) {
        Kind = TokKind::Ge;
        Len = 2;
      } else {
        Kind = TokKind::Gt;
      }
      break;
    default:
      break;
    }
    Push(Kind, std::string(Source.substr(Pos, Len)), Loc);
    Advance(Len);
  }

  Token End;
  End.Kind = TokKind::End;
  End.Loc = SourceLoc(Line, Col);
  Tokens.push_back(std::move(End));
  return Tokens;
}
