//===- Lexer.h - SIL-C tokenizer --------------------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef CFRONT_LEXER_H
#define CFRONT_LEXER_H

#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace slam {
namespace cfront {

enum class TokKind {
  End,
  Ident,
  IntLit,
  // Keywords.
  KwInt,
  KwVoid,
  KwStruct,
  KwTypedef,
  KwIf,
  KwElse,
  KwWhile,
  KwGoto,
  KwReturn,
  KwBreak,
  KwContinue,
  KwAssert,
  KwNull,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  Assign, // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  AmpAmp,
  PipePipe,
  Bang,
  Arrow,
  Dot,
  EqEq,
  BangEq,
  Lt,
  Le,
  Gt,
  Ge,
  Error,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  int64_t IntValue = 0;
  SourceLoc Loc;
};

/// Tokenizes a whole buffer; comments (// and /* */) are skipped. A
/// TokKind::Error token carries the offending character in Text.
std::vector<Token> tokenize(std::string_view Source);

/// Counts the newline-terminated lines of \p Source (the "lines" column
/// of the paper's tables).
unsigned countLines(std::string_view Source);

} // namespace cfront
} // namespace slam

#endif // CFRONT_LEXER_H
