//===- Normalize.cpp - Section 4's intermediate form ------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "cfront/Normalize.h"

#include "cfront/Parser.h"
#include "cfront/Sema.h"
#include "support/Trace.h"

using namespace slam;
using namespace slam::cfront;

namespace {

class Normalizer {
public:
  Normalizer(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run() {
    for (FuncDecl *F : P.Functions)
      if (F->Body)
        normalizeFunction(*F);
    return !Diags.hasErrors();
  }

private:
  Program &P;
  DiagnosticEngine &Diags;
  FuncDecl *F = nullptr;
  unsigned TempCounter = 0;
  VarDecl *RetVal = nullptr; // Set when returns are rewritten.

  void error(SourceLoc Loc, const std::string &Message) {
    Diags.error(Loc, Message);
  }

  VarDecl *makeTemp(const Type *Ty, SourceLoc Loc) {
    std::string Name = "__t" + std::to_string(TempCounter++);
    VarDecl *V = P.makeVar(Name, Ty, VarDecl::Scope::Local, Loc);
    F->Locals.push_back(V);
    return V;
  }

  Expr *varRef(VarDecl *V, SourceLoc Loc) {
    Expr *E = P.makeExpr(CExprKind::VarRef, Loc);
    E->Name = V->Name;
    E->Var = V;
    E->Ty = V->Ty;
    return E;
  }

  // -- Return-shape analysis ------------------------------------------------
  void countReturns(const Stmt &S, unsigned &Count, const Stmt *&Last) {
    if (S.Kind == CStmtKind::Return) {
      ++Count;
      Last = &S;
    }
    for (const Stmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
      if (Sub)
        countReturns(*Sub, Count, Last);
    for (const Stmt *Sub : S.Stmts)
      countReturns(*Sub, Count, Last);
  }

  void normalizeFunction(FuncDecl &Func) {
    F = &Func;
    TempCounter = 0;
    RetVal = nullptr;

    // Decide whether returns must be funneled through __retval: a single
    // trailing `return v;` already has the Section 4.5 shape.
    if (!Func.ReturnTy->isVoid()) {
      unsigned Count = 0;
      const Stmt *Last = nullptr;
      countReturns(*Func.Body, Count, Last);
      bool SimpleShape = Count == 1 && !Func.Body->Stmts.empty() &&
                         Func.Body->Stmts.back() == Last && Last->Rhs &&
                         Last->Rhs->Kind == CExprKind::VarRef;
      if (!SimpleShape)
        RetVal = makeRetVal(Func);
    }

    Stmt *NewBody = P.makeStmt(CStmtKind::Block, Func.Body->Loc);
    for (Stmt *S : Func.Body->Stmts)
      normalizeStmt(S, NewBody->Stmts);

    if (RetVal) {
      // __exit: return __retval;
      Stmt *Ret = P.makeStmt(CStmtKind::Return, Func.Loc);
      Ret->Rhs = varRef(RetVal, Func.Loc);
      Stmt *Exit = P.makeStmt(CStmtKind::Label, Func.Loc);
      Exit->LabelName = "__exit";
      Exit->Sub = Ret;
      NewBody->Stmts.push_back(Exit);
    }
    Func.Body = NewBody;
    F = nullptr;
  }

  VarDecl *makeRetVal(FuncDecl &Func) {
    VarDecl *V =
        P.makeVar("__retval", Func.ReturnTy, VarDecl::Scope::Local, Func.Loc);
    Func.Locals.push_back(V);
    return V;
  }

  // -- Statements -------------------------------------------------------------
  void normalizeStmt(Stmt *S, std::vector<Stmt *> &Out) {
    switch (S->Kind) {
    case CStmtKind::Block: {
      Stmt *B = P.makeStmt(CStmtKind::Block, S->Loc);
      for (Stmt *Sub : S->Stmts)
        normalizeStmt(Sub, B->Stmts);
      Out.push_back(B);
      return;
    }
    case CStmtKind::Assign: {
      Expr *Rhs = normTerm(S->Rhs, Out);
      Expr *Lhs = normLocation(S->Lhs, Out);
      if (!Rhs || !Lhs)
        return;
      // `x = f(...)` arrives as an Assign only when synthesized; route
      // it through a CallStmt shape.
      Stmt *N = P.makeStmt(CStmtKind::Assign, S->Loc);
      N->Lhs = Lhs;
      N->Rhs = Rhs;
      Out.push_back(N);
      return;
    }
    case CStmtKind::CallStmt: {
      Expr *Call = normCallTopLevel(S->CallE, Out);
      Expr *Lhs = S->Lhs ? normLocation(S->Lhs, Out) : nullptr;
      if (!Call || (S->Lhs && !Lhs))
        return;
      Stmt *N = P.makeStmt(CStmtKind::CallStmt, S->Loc);
      N->Lhs = Lhs;
      N->CallE = Call;
      Out.push_back(N);
      return;
    }
    case CStmtKind::If: {
      std::vector<Stmt *> Hoisted;
      Expr *Cond = normCond(S->Cond, Hoisted);
      if (!Cond)
        return;
      for (Stmt *H : Hoisted)
        Out.push_back(H);
      Stmt *N = P.makeStmt(CStmtKind::If, S->Loc);
      N->Cond = Cond;
      N->Then = normalizeToSingle(S->Then);
      N->Else = S->Else ? normalizeToSingle(S->Else) : nullptr;
      Out.push_back(N);
      return;
    }
    case CStmtKind::While: {
      std::vector<Stmt *> Hoisted;
      Expr *Cond = normCond(S->Cond, Hoisted);
      if (!Cond)
        return;
      Stmt *N = P.makeStmt(CStmtKind::While, S->Loc);
      if (Hoisted.empty()) {
        N->Cond = Cond;
        N->Body = normalizeToSingle(S->Body);
        Out.push_back(N);
        return;
      }
      // The condition needed per-iteration statements (a call or a
      // dereference chain): lower to
      //   while (1) { <hoisted>; if (!cond) break; body }
      Expr *One = P.makeExpr(CExprKind::IntLit, S->Loc);
      One->IntValue = 1;
      One->Ty = P.Types.intType();
      Expr *True = P.makeExpr(CExprKind::Binary, S->Loc);
      True->BOp = BinaryOp::Ne;
      True->Ops.push_back(One);
      Expr *Zero = P.makeExpr(CExprKind::IntLit, S->Loc);
      Zero->IntValue = 0;
      Zero->Ty = P.Types.intType();
      True->Ops.push_back(Zero);
      True->Ty = P.Types.intType();
      N->Cond = True;

      Stmt *Body = P.makeStmt(CStmtKind::Block, S->Loc);
      for (Stmt *H : Hoisted)
        Body->Stmts.push_back(H);
      Expr *NotCond = P.makeExpr(CExprKind::Unary, S->Loc);
      NotCond->UOp = UnaryOp::Not;
      NotCond->Ops.push_back(Cond);
      NotCond->Ty = P.Types.intType();
      Stmt *Exit = P.makeStmt(CStmtKind::If, S->Loc);
      Exit->Cond = NotCond;
      Exit->Then = P.makeStmt(CStmtKind::Break, S->Loc);
      Body->Stmts.push_back(Exit);
      Body->Stmts.push_back(normalizeToSingle(S->Body));
      N->Body = Body;
      Out.push_back(N);
      return;
    }
    case CStmtKind::Label: {
      Stmt *N = P.makeStmt(CStmtKind::Label, S->Loc);
      N->LabelName = S->LabelName;
      std::vector<Stmt *> Sub;
      normalizeStmt(S->Sub, Sub);
      if (Sub.size() == 1) {
        N->Sub = Sub.front();
      } else {
        Stmt *B = P.makeStmt(CStmtKind::Block, S->Loc);
        B->Stmts = std::move(Sub);
        N->Sub = B;
      }
      Out.push_back(N);
      return;
    }
    case CStmtKind::Return: {
      if (!RetVal) {
        Stmt *N = P.makeStmt(CStmtKind::Return, S->Loc);
        if (S->Rhs) {
          N->Rhs = normTerm(S->Rhs, Out);
          if (!N->Rhs)
            return;
        }
        Out.push_back(N);
        return;
      }
      // return e  =>  __retval = e; goto __exit;
      if (S->Rhs) {
        Expr *Val = normTerm(S->Rhs, Out);
        if (!Val)
          return;
        Stmt *A = P.makeStmt(CStmtKind::Assign, S->Loc);
        A->Lhs = varRef(RetVal, S->Loc);
        A->Rhs = Val;
        Out.push_back(A);
      }
      Stmt *G = P.makeStmt(CStmtKind::Goto, S->Loc);
      G->LabelName = "__exit";
      Out.push_back(G);
      return;
    }
    case CStmtKind::Assert: {
      Expr *Cond = normCond(S->Cond, Out);
      if (!Cond)
        return;
      Stmt *N = P.makeStmt(CStmtKind::Assert, S->Loc);
      N->Cond = Cond;
      Out.push_back(N);
      return;
    }
    case CStmtKind::Goto:
    case CStmtKind::Break:
    case CStmtKind::Continue:
    case CStmtKind::Skip: {
      Stmt *N = P.makeStmt(S->Kind, S->Loc);
      N->LabelName = S->LabelName;
      Out.push_back(N);
      return;
    }
    }
  }

  Stmt *normalizeToSingle(Stmt *S) {
    std::vector<Stmt *> Items;
    normalizeStmt(S, Items);
    if (Items.size() == 1)
      return Items.front();
    Stmt *B = P.makeStmt(CStmtKind::Block, S->Loc);
    B->Stmts = std::move(Items);
    return B;
  }

  // -- Expressions ------------------------------------------------------------
  /// A "simple" base is a plain variable; anything else gets hoisted
  /// into a temporary so no expression performs two dereferences.
  Expr *simplifyBase(Expr *Base, std::vector<Stmt *> &Out) {
    if (Base->Kind == CExprKind::VarRef)
      return Base;
    assert(Base->Ty && "operand must be typed before normalization");
    VarDecl *Tmp = makeTemp(Base->Ty, Base->Loc);
    Stmt *A = P.makeStmt(CStmtKind::Assign, Base->Loc);
    A->Lhs = varRef(Tmp, Base->Loc);
    A->Rhs = Base;
    Out.push_back(A);
    return varRef(Tmp, Base->Loc);
  }

  /// Normalizes a call and hoists it into a temporary.
  Expr *hoistCall(Expr *Call, std::vector<Stmt *> &Out) {
    Expr *Normed = normCallTopLevel(Call, Out);
    if (!Normed)
      return nullptr;
    if (Normed->Ty->isVoid()) {
      error(Call->Loc, "void call used as a value");
      return nullptr;
    }
    VarDecl *Tmp = makeTemp(Normed->Ty, Call->Loc);
    Stmt *CS = P.makeStmt(CStmtKind::CallStmt, Call->Loc);
    CS->Lhs = varRef(Tmp, Call->Loc);
    CS->CallE = Normed;
    Out.push_back(CS);
    return varRef(Tmp, Call->Loc);
  }

  Expr *normCallTopLevel(Expr *Call, std::vector<Stmt *> &Out) {
    Expr *N = P.makeExpr(CExprKind::Call, Call->Loc);
    N->Name = Call->Name;
    N->Callee = Call->Callee;
    N->Ty = Call->Ty;
    for (Expr *Arg : Call->Ops) {
      Expr *NA = normTerm(Arg, Out);
      if (!NA)
        return nullptr;
      N->Ops.push_back(NA);
    }
    return N;
  }

  /// Term position: no boolean operators allowed; calls hoisted;
  /// dereference bases simplified.
  Expr *normTerm(Expr *E, std::vector<Stmt *> &Out) {
    switch (E->Kind) {
    case CExprKind::IntLit:
    case CExprKind::NullLit:
    case CExprKind::VarRef:
      return E;
    case CExprKind::Call:
      return hoistCall(E, Out);
    case CExprKind::Unary: {
      if (E->UOp == UnaryOp::Not) {
        error(E->Loc, "boolean operator used as a value; SIL-C keeps "
                      "formulas in conditions only");
        return nullptr;
      }
      Expr *Sub = normTerm(E->Ops[0], Out);
      if (!Sub)
        return nullptr;
      if (E->UOp == UnaryOp::Deref)
        Sub = simplifyBase(Sub, Out);
      Expr *N = P.makeExpr(CExprKind::Unary, E->Loc);
      N->UOp = E->UOp;
      N->Ops.push_back(Sub);
      N->Ty = E->Ty;
      return N;
    }
    case CExprKind::Binary: {
      if (isComparisonOp(E->BOp) || E->BOp == BinaryOp::LAnd ||
          E->BOp == BinaryOp::LOr) {
        error(E->Loc, "boolean expression used as a value; SIL-C keeps "
                      "formulas in conditions only");
        return nullptr;
      }
      Expr *L = normTerm(E->Ops[0], Out);
      Expr *R = normTerm(E->Ops[1], Out);
      if (!L || !R)
        return nullptr;
      Expr *N = P.makeExpr(CExprKind::Binary, E->Loc);
      N->BOp = E->BOp;
      N->Ops.push_back(L);
      N->Ops.push_back(R);
      N->Ty = E->Ty;
      return N;
    }
    case CExprKind::Member: {
      Expr *Base = normTerm(E->Ops[0], Out);
      if (!Base)
        return nullptr;
      bool Arrow = E->IsArrow;
      // (*p).f is canonicalized to p->f.
      if (!Arrow && Base->Kind == CExprKind::Unary &&
          Base->UOp == UnaryOp::Deref) {
        Base = Base->Ops[0];
        Arrow = true;
      }
      if (Arrow)
        Base = simplifyBase(Base, Out);
      Expr *N = P.makeExpr(CExprKind::Member, E->Loc);
      N->Ops.push_back(Base);
      N->FieldName = E->FieldName;
      N->IsArrow = Arrow;
      N->Ty = E->Ty;
      return N;
    }
    case CExprKind::Index: {
      Expr *Base = normTerm(E->Ops[0], Out);
      Expr *Idx = normTerm(E->Ops[1], Out);
      if (!Base || !Idx)
        return nullptr;
      Base = simplifyBase(Base, Out);
      Expr *N = P.makeExpr(CExprKind::Index, E->Loc);
      N->Ops.push_back(Base);
      N->Ops.push_back(Idx);
      N->Ty = E->Ty;
      return N;
    }
    }
    return nullptr;
  }

  /// Location position (assignment target): like normTerm but the outer
  /// node must remain a location.
  Expr *normLocation(Expr *E, std::vector<Stmt *> &Out) {
    Expr *N = normTerm(E, Out);
    if (N && !N->isLocation()) {
      error(E->Loc, "assignment target is not a location");
      return nullptr;
    }
    return N;
  }

  /// Condition position: boolean structure preserved; scalar conditions
  /// become explicit comparisons with 0 / NULL.
  Expr *normCond(Expr *E, std::vector<Stmt *> &Out) {
    switch (E->Kind) {
    case CExprKind::Binary:
      if (E->BOp == BinaryOp::LAnd || E->BOp == BinaryOp::LOr) {
        size_t Before = Out.size();
        Expr *L = normCond(E->Ops[0], Out);
        Expr *R = normCond(E->Ops[1], Out);
        if (!L || !R)
          return nullptr;
        if (Out.size() != Before) {
          // Hoisted statements under && / || would not respect
          // short-circuit evaluation; the subset rules them out.
          error(E->Loc, "calls and dereference chains are not allowed "
                        "under && / ||");
          return nullptr;
        }
        Expr *N = P.makeExpr(CExprKind::Binary, E->Loc);
        N->BOp = E->BOp;
        N->Ops.push_back(L);
        N->Ops.push_back(R);
        N->Ty = P.Types.intType();
        return N;
      }
      if (isComparisonOp(E->BOp)) {
        Expr *L = normTerm(E->Ops[0], Out);
        Expr *R = normTerm(E->Ops[1], Out);
        if (!L || !R)
          return nullptr;
        Expr *N = P.makeExpr(CExprKind::Binary, E->Loc);
        N->BOp = E->BOp;
        N->Ops.push_back(L);
        N->Ops.push_back(R);
        N->Ty = P.Types.intType();
        return N;
      }
      break;
    case CExprKind::Unary:
      if (E->UOp == UnaryOp::Not) {
        Expr *Sub = normCond(E->Ops[0], Out);
        if (!Sub)
          return nullptr;
        Expr *N = P.makeExpr(CExprKind::Unary, E->Loc);
        N->UOp = UnaryOp::Not;
        N->Ops.push_back(Sub);
        N->Ty = P.Types.intType();
        return N;
      }
      break;
    default:
      break;
    }
    // Scalar used as a truth value: e != 0 or e != NULL.
    Expr *Term = normTerm(E, Out);
    if (!Term)
      return nullptr;
    Expr *Zero;
    if (Term->Ty && Term->Ty->isPointer()) {
      Zero = P.makeExpr(CExprKind::NullLit, E->Loc);
      Zero->Ty = Term->Ty;
    } else {
      Zero = P.makeExpr(CExprKind::IntLit, E->Loc);
      Zero->IntValue = 0;
      Zero->Ty = P.Types.intType();
    }
    Expr *N = P.makeExpr(CExprKind::Binary, E->Loc);
    N->BOp = BinaryOp::Ne;
    N->Ops.push_back(Term);
    N->Ops.push_back(Zero);
    N->Ty = P.Types.intType();
    return N;
  }
};

} // namespace

bool cfront::normalize(Program &P, DiagnosticEngine &Diags) {
  Normalizer N(P, Diags);
  return N.run();
}

std::unique_ptr<Program> cfront::frontend(std::string_view Source,
                                          DiagnosticEngine &Diags) {
  std::unique_ptr<Program> P;
  {
    TraceSpan Span("cfront.parse", "cfront");
    P = parseProgram(Source, Diags);
  }
  if (!P)
    return nullptr;
  {
    TraceSpan Span("cfront.analyze", "cfront");
    if (!analyze(*P, Diags))
      return nullptr;
  }
  TraceSpan Span("cfront.normalize", "cfront");
  if (!normalize(*P, Diags))
    return nullptr;
  // Re-run Sema: types the synthesized nodes and renumbers statements.
  DiagnosticEngine Rerun;
  if (!analyze(*P, Rerun)) {
    // A failure here is a normalizer bug; surface it to the caller.
    for (const Diagnostic &D : Rerun.diagnostics())
      Diags.error(D.Loc, "internal (normalizer): " + D.Message);
    return nullptr;
  }
  return P;
}
