//===- Normalize.h - Lowering to the simple intermediate form ---*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites a checked program into the paper's simple intermediate form
/// (Section 4):
///
///   1. expressions are free of side effects: calls occur only at the
///      top level of expression statements (`z = x + f(y)` becomes
///      `t = f(y); z = x + t;`);
///   2. no expression contains multiple dereferences of a pointer —
///      every Deref / `->` / `[]` base is a plain variable (`**p`
///      becomes `t = *p; ... *t`);
///   3. conditions are boolean formulas (scalar conditions become
///      `e != 0` / `e != NULL`), and boolean operators never appear in
///      value positions;
///   4. each non-void procedure has a single return statement returning
///      a variable (synthesizing `__retval` and an `__exit` label when
///      the source has several returns).
///
/// The pass introduces fresh locals `__t0, __t1, ...`; callers should
/// re-run Sema afterwards to type the new nodes and renumber statements.
///
//===----------------------------------------------------------------------===//

#ifndef CFRONT_NORMALIZE_H
#define CFRONT_NORMALIZE_H

#include "cfront/AST.h"
#include "support/Diagnostics.h"

namespace slam {
namespace cfront {

/// Normalizes \p P in place. Returns false (with diagnostics) if the
/// program uses constructs outside the normalizable subset (calls under
/// short-circuit operators, boolean values in term positions).
bool normalize(Program &P, DiagnosticEngine &Diags);

/// Convenience front door: parse + analyze + normalize + re-analyze.
/// Returns nullptr with diagnostics on any failure.
std::unique_ptr<Program> frontend(std::string_view Source,
                                  DiagnosticEngine &Diags);

} // namespace cfront
} // namespace slam

#endif // CFRONT_NORMALIZE_H
