//===- Parser.cpp - Recursive descent for SIL-C ----------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "cfront/Parser.h"

#include "cfront/Lexer.h"

#include <map>

using namespace slam;
using namespace slam::cfront;

namespace {

class ParserImpl {
public:
  ParserImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Tokens(tokenize(Source)), Diags(Diags) {
    P = std::make_unique<Program>();
    P->SourceLines = countLines(Source);
  }

  std::unique_ptr<Program> run() {
    while (!at(TokKind::End)) {
      if (!parseTopLevel())
        return nullptr;
    }
    return std::move(P);
  }

private:
  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  std::unique_ptr<Program> P;
  size_t Pos = 0;
  std::map<std::string, const Type *> Typedefs;
  FuncDecl *CurFunc = nullptr;

  // -- Token helpers ------------------------------------------------------
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Off = 1) const {
    size_t I = Pos + Off;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokKind Kind) const { return cur().Kind == Kind; }
  void advance() {
    if (!at(TokKind::End))
      ++Pos;
  }
  bool accept(TokKind Kind) {
    if (!at(Kind))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind Kind, const char *What) {
    if (accept(Kind))
      return true;
    error(std::string("expected ") + What);
    return false;
  }
  void error(const std::string &Message) {
    Diags.error(cur().Loc, Message + " (found '" + cur().Text + "')");
  }

  // -- Types ----------------------------------------------------------------
  /// True if the current token starts a type specifier.
  bool atTypeSpec() const {
    switch (cur().Kind) {
    case TokKind::KwInt:
    case TokKind::KwVoid:
    case TokKind::KwStruct:
      return true;
    case TokKind::Ident:
      return Typedefs.count(cur().Text) != 0;
    default:
      return false;
    }
  }

  /// typespec := int | void | struct Ident [{ fields }] | TypedefName
  const Type *parseTypeSpec() {
    if (accept(TokKind::KwInt))
      return P->Types.intType();
    if (accept(TokKind::KwVoid))
      return P->Types.voidType();
    if (accept(TokKind::KwStruct)) {
      if (!at(TokKind::Ident)) {
        error("expected struct name");
        return nullptr;
      }
      std::string Name = cur().Text;
      advance();
      RecordDecl *Rec = P->Types.getOrCreateRecord(Name);
      if (at(TokKind::LBrace) && !parseRecordBody(Rec))
        return nullptr;
      return P->Types.recordType(Rec);
    }
    if (at(TokKind::Ident)) {
      auto It = Typedefs.find(cur().Text);
      if (It != Typedefs.end()) {
        advance();
        return It->second;
      }
    }
    error("expected a type");
    return nullptr;
  }

  bool parseRecordBody(RecordDecl *Rec) {
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    if (!Rec->Fields.empty()) {
      error("struct '" + Rec->Name + "' is already defined");
      return false;
    }
    while (!accept(TokKind::RBrace)) {
      const Type *Base = parseTypeSpec();
      if (!Base)
        return false;
      do {
        auto [Ty, Name] = parseDeclarator(Base);
        if (Name.empty())
          return false;
        if (Rec->findField(Name)) {
          error("duplicate field '" + Name + "'");
          return false;
        }
        Rec->Fields.push_back({Name, Ty});
      } while (accept(TokKind::Comma));
      if (!expect(TokKind::Semi, "';' after field"))
        return false;
    }
    return true;
  }

  /// declarator := '*'* Ident ('[' IntLit ']')?
  std::pair<const Type *, std::string> parseDeclarator(const Type *Base) {
    const Type *Ty = Base;
    while (accept(TokKind::Star))
      Ty = P->Types.pointerTo(Ty);
    if (!at(TokKind::Ident)) {
      error("expected identifier in declarator");
      return {nullptr, ""};
    }
    std::string Name = cur().Text;
    advance();
    if (accept(TokKind::LBracket)) {
      if (!at(TokKind::IntLit)) {
        error("expected array size");
        return {nullptr, ""};
      }
      int64_t Size = cur().IntValue;
      advance();
      if (!expect(TokKind::RBracket, "']'"))
        return {nullptr, ""};
      Ty = P->Types.arrayOf(Ty, Size);
    }
    return {Ty, Name};
  }

  // -- Top level ------------------------------------------------------------
  bool parseTopLevel() {
    if (accept(TokKind::KwTypedef)) {
      const Type *Base = parseTypeSpec();
      if (!Base)
        return false;
      auto [Ty, Name] = parseDeclarator(Base);
      if (Name.empty())
        return false;
      Typedefs[Name] = Ty;
      return expect(TokKind::Semi, "';' after typedef");
    }
    // `struct S { ... };` as a standalone definition.
    if (at(TokKind::KwStruct) && peek().Kind == TokKind::Ident &&
        peek(2).Kind == TokKind::LBrace) {
      advance();
      RecordDecl *Rec = P->Types.getOrCreateRecord(cur().Text);
      advance();
      if (!parseRecordBody(Rec))
        return false;
      return expect(TokKind::Semi, "';' after struct definition");
    }

    SourceLoc Loc = cur().Loc;
    const Type *Base = parseTypeSpec();
    if (!Base)
      return false;
    auto [Ty, Name] = parseDeclarator(Base);
    if (Name.empty())
      return false;

    if (at(TokKind::LParen))
      return parseFunctionRest(Ty, Name, Loc);

    // Global variable(s).
    P->Globals.push_back(P->makeVar(Name, Ty, VarDecl::Scope::Global, Loc));
    while (accept(TokKind::Comma)) {
      auto [Ty2, Name2] = parseDeclarator(Base);
      if (Name2.empty())
        return false;
      P->Globals.push_back(
          P->makeVar(Name2, Ty2, VarDecl::Scope::Global, Loc));
    }
    return expect(TokKind::Semi, "';' after global declaration");
  }

  bool parseFunctionRest(const Type *RetTy, const std::string &Name,
                         SourceLoc Loc) {
    FuncDecl *F = P->makeFunc(Name, Loc);
    F->ReturnTy = RetTy;
    CurFunc = F;
    expect(TokKind::LParen, "'('");
    if (!at(TokKind::RParen)) {
      if (at(TokKind::KwVoid) && peek().Kind == TokKind::RParen) {
        advance(); // `f(void)`.
      } else {
        do {
          const Type *Base = parseTypeSpec();
          if (!Base)
            return false;
          auto [Ty, PName] = parseDeclarator(Base);
          if (PName.empty())
            return false;
          F->Params.push_back(
              P->makeVar(PName, Ty, VarDecl::Scope::Param, Loc));
        } while (accept(TokKind::Comma));
      }
    }
    if (!expect(TokKind::RParen, "')'"))
      return false;
    if (accept(TokKind::Semi)) {
      P->Functions.push_back(F); // Extern declaration.
      CurFunc = nullptr;
      return true;
    }
    Stmt *Body = parseBlock();
    if (!Body)
      return false;
    F->Body = Body;
    P->Functions.push_back(F);
    CurFunc = nullptr;
    return true;
  }

  // -- Statements -------------------------------------------------------------
  Stmt *parseBlock() {
    SourceLoc Loc = cur().Loc;
    if (!expect(TokKind::LBrace, "'{'"))
      return nullptr;
    Stmt *Block = P->makeStmt(CStmtKind::Block, Loc);
    while (!accept(TokKind::RBrace)) {
      if (at(TokKind::End)) {
        error("unterminated block");
        return nullptr;
      }
      if (atTypeSpec() && !atLabel()) {
        if (!parseLocalDecl(Block))
          return nullptr;
        continue;
      }
      Stmt *S = parseStmt();
      if (!S)
        return nullptr;
      Block->Stmts.push_back(S);
    }
    return Block;
  }

  /// A typedef name followed by ':' is a label, not a declaration.
  bool atLabel() const {
    return at(TokKind::Ident) && peek().Kind == TokKind::Colon;
  }

  bool parseLocalDecl(Stmt *Block) {
    SourceLoc Loc = cur().Loc;
    const Type *Base = parseTypeSpec();
    if (!Base)
      return false;
    do {
      auto [Ty, Name] = parseDeclarator(Base);
      if (Name.empty())
        return false;
      VarDecl *V = P->makeVar(Name, Ty, VarDecl::Scope::Local, Loc);
      CurFunc->Locals.push_back(V);
      if (accept(TokKind::Assign)) {
        Expr *Init = parseExpr();
        if (!Init)
          return false;
        Stmt *S = P->makeStmt(CStmtKind::Assign, Loc);
        Expr *Ref = P->makeExpr(CExprKind::VarRef, Loc);
        Ref->Name = Name;
        S->Lhs = Ref;
        S->Rhs = Init;
        Block->Stmts.push_back(S);
      }
    } while (accept(TokKind::Comma));
    return expect(TokKind::Semi, "';' after declaration");
  }

  Stmt *parseStmt() {
    SourceLoc Loc = cur().Loc;
    switch (cur().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::Semi:
      advance();
      return P->makeStmt(CStmtKind::Skip, Loc);
    case TokKind::KwIf: {
      advance();
      if (!expect(TokKind::LParen, "'(' after if"))
        return nullptr;
      Expr *Cond = parseExpr();
      if (!Cond || !expect(TokKind::RParen, "')'"))
        return nullptr;
      Stmt *Then = parseStmt();
      if (!Then)
        return nullptr;
      Stmt *Else = nullptr;
      if (accept(TokKind::KwElse)) {
        Else = parseStmt();
        if (!Else)
          return nullptr;
      }
      Stmt *S = P->makeStmt(CStmtKind::If, Loc);
      S->Cond = Cond;
      S->Then = Then;
      S->Else = Else;
      return S;
    }
    case TokKind::KwWhile: {
      advance();
      if (!expect(TokKind::LParen, "'(' after while"))
        return nullptr;
      Expr *Cond = parseExpr();
      if (!Cond || !expect(TokKind::RParen, "')'"))
        return nullptr;
      Stmt *Body = parseStmt();
      if (!Body)
        return nullptr;
      Stmt *S = P->makeStmt(CStmtKind::While, Loc);
      S->Cond = Cond;
      S->Body = Body;
      return S;
    }
    case TokKind::KwGoto: {
      advance();
      if (!at(TokKind::Ident)) {
        error("expected label after goto");
        return nullptr;
      }
      Stmt *S = P->makeStmt(CStmtKind::Goto, Loc);
      S->LabelName = cur().Text;
      advance();
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      return S;
    }
    case TokKind::KwReturn: {
      advance();
      Stmt *S = P->makeStmt(CStmtKind::Return, Loc);
      if (!at(TokKind::Semi)) {
        S->Rhs = parseExpr();
        if (!S->Rhs)
          return nullptr;
      }
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      return S;
    }
    case TokKind::KwAssert: {
      advance();
      if (!expect(TokKind::LParen, "'('"))
        return nullptr;
      Expr *Cond = parseExpr();
      if (!Cond || !expect(TokKind::RParen, "')'") ||
          !expect(TokKind::Semi, "';'"))
        return nullptr;
      Stmt *S = P->makeStmt(CStmtKind::Assert, Loc);
      S->Cond = Cond;
      return S;
    }
    case TokKind::KwBreak:
      advance();
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      return P->makeStmt(CStmtKind::Break, Loc);
    case TokKind::KwContinue:
      advance();
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      return P->makeStmt(CStmtKind::Continue, Loc);
    default:
      break;
    }

    // Label.
    if (atLabel()) {
      Stmt *S = P->makeStmt(CStmtKind::Label, Loc);
      S->LabelName = cur().Text;
      advance();
      advance(); // ':'.
      S->Sub = parseStmt();
      return S->Sub ? S : nullptr;
    }

    // Assignment or call statement.
    Expr *First = parseExpr();
    if (!First)
      return nullptr;
    if (accept(TokKind::Assign)) {
      Expr *Rhs = parseExpr();
      if (!Rhs || !expect(TokKind::Semi, "';'"))
        return nullptr;
      if (Rhs->Kind == CExprKind::Call) {
        Stmt *S = P->makeStmt(CStmtKind::CallStmt, Loc);
        S->Lhs = First;
        S->CallE = Rhs;
        return S;
      }
      Stmt *S = P->makeStmt(CStmtKind::Assign, Loc);
      S->Lhs = First;
      S->Rhs = Rhs;
      return S;
    }
    if (!expect(TokKind::Semi, "';'"))
      return nullptr;
    if (First->Kind != CExprKind::Call) {
      Diags.error(Loc, "expression statement must be a call");
      return nullptr;
    }
    Stmt *S = P->makeStmt(CStmtKind::CallStmt, Loc);
    S->CallE = First;
    return S;
  }

  // -- Expressions -------------------------------------------------------------
  Expr *parseExpr() { return parseOr(); }

  Expr *parseOr() {
    Expr *L = parseAnd();
    if (!L)
      return nullptr;
    while (at(TokKind::PipePipe)) {
      SourceLoc Loc = cur().Loc;
      advance();
      Expr *R = parseAnd();
      if (!R)
        return nullptr;
      L = makeBinary(BinaryOp::LOr, L, R, Loc);
    }
    return L;
  }

  Expr *parseAnd() {
    Expr *L = parseCmp();
    if (!L)
      return nullptr;
    while (at(TokKind::AmpAmp)) {
      SourceLoc Loc = cur().Loc;
      advance();
      Expr *R = parseCmp();
      if (!R)
        return nullptr;
      L = makeBinary(BinaryOp::LAnd, L, R, Loc);
    }
    return L;
  }

  Expr *parseCmp() {
    Expr *L = parseAdd();
    if (!L)
      return nullptr;
    BinaryOp Op;
    switch (cur().Kind) {
    case TokKind::EqEq:
      Op = BinaryOp::Eq;
      break;
    case TokKind::BangEq:
      Op = BinaryOp::Ne;
      break;
    case TokKind::Lt:
      Op = BinaryOp::Lt;
      break;
    case TokKind::Le:
      Op = BinaryOp::Le;
      break;
    case TokKind::Gt:
      Op = BinaryOp::Gt;
      break;
    case TokKind::Ge:
      Op = BinaryOp::Ge;
      break;
    default:
      return L;
    }
    SourceLoc Loc = cur().Loc;
    advance();
    Expr *R = parseAdd();
    if (!R)
      return nullptr;
    return makeBinary(Op, L, R, Loc);
  }

  Expr *parseAdd() {
    Expr *L = parseMul();
    if (!L)
      return nullptr;
    while (at(TokKind::Plus) || at(TokKind::Minus)) {
      BinaryOp Op = at(TokKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
      SourceLoc Loc = cur().Loc;
      advance();
      Expr *R = parseMul();
      if (!R)
        return nullptr;
      L = makeBinary(Op, L, R, Loc);
    }
    return L;
  }

  Expr *parseMul() {
    Expr *L = parseUnary();
    if (!L)
      return nullptr;
    while (at(TokKind::Star) || at(TokKind::Slash) || at(TokKind::Percent)) {
      BinaryOp Op = at(TokKind::Star)    ? BinaryOp::Mul
                    : at(TokKind::Slash) ? BinaryOp::Div
                                         : BinaryOp::Mod;
      SourceLoc Loc = cur().Loc;
      advance();
      Expr *R = parseUnary();
      if (!R)
        return nullptr;
      L = makeBinary(Op, L, R, Loc);
    }
    return L;
  }

  Expr *parseUnary() {
    SourceLoc Loc = cur().Loc;
    UnaryOp Op;
    if (accept(TokKind::Star))
      Op = UnaryOp::Deref;
    else if (accept(TokKind::Amp))
      Op = UnaryOp::AddrOf;
    else if (accept(TokKind::Minus))
      Op = UnaryOp::Neg;
    else if (accept(TokKind::Bang))
      Op = UnaryOp::Not;
    else
      return parsePostfix();
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    Expr *E = P->makeExpr(CExprKind::Unary, Loc);
    E->UOp = Op;
    E->Ops.push_back(Sub);
    return E;
  }

  Expr *parsePostfix() {
    Expr *E = parsePrimary();
    if (!E)
      return nullptr;
    for (;;) {
      SourceLoc Loc = cur().Loc;
      if (accept(TokKind::Arrow) || (at(TokKind::Dot) && (advance(), true))) {
        bool Arrow = Tokens[Pos - 1].Kind == TokKind::Arrow;
        if (!at(TokKind::Ident)) {
          error("expected field name");
          return nullptr;
        }
        Expr *M = P->makeExpr(CExprKind::Member, Loc);
        M->Ops.push_back(E);
        M->FieldName = cur().Text;
        M->IsArrow = Arrow;
        advance();
        E = M;
        continue;
      }
      if (accept(TokKind::LBracket)) {
        Expr *Idx = parseExpr();
        if (!Idx || !expect(TokKind::RBracket, "']'"))
          return nullptr;
        Expr *I = P->makeExpr(CExprKind::Index, Loc);
        I->Ops.push_back(E);
        I->Ops.push_back(Idx);
        E = I;
        continue;
      }
      return E;
    }
  }

  Expr *parsePrimary() {
    SourceLoc Loc = cur().Loc;
    switch (cur().Kind) {
    case TokKind::IntLit: {
      Expr *E = P->makeExpr(CExprKind::IntLit, Loc);
      E->IntValue = cur().IntValue;
      advance();
      return E;
    }
    case TokKind::KwNull:
      advance();
      return P->makeExpr(CExprKind::NullLit, Loc);
    case TokKind::Ident: {
      std::string Name = cur().Text;
      advance();
      if (accept(TokKind::LParen)) {
        Expr *Call = P->makeExpr(CExprKind::Call, Loc);
        Call->Name = Name;
        if (!at(TokKind::RParen)) {
          do {
            Expr *Arg = parseExpr();
            if (!Arg)
              return nullptr;
            Call->Ops.push_back(Arg);
          } while (accept(TokKind::Comma));
        }
        if (!expect(TokKind::RParen, "')'"))
          return nullptr;
        return Call;
      }
      Expr *E = P->makeExpr(CExprKind::VarRef, Loc);
      E->Name = Name;
      return E;
    }
    case TokKind::LParen: {
      advance();
      Expr *E = parseExpr();
      if (!E || !expect(TokKind::RParen, "')'"))
        return nullptr;
      return E;
    }
    default:
      error("expected an expression");
      return nullptr;
    }
  }

  Expr *makeBinary(BinaryOp Op, Expr *L, Expr *R, SourceLoc Loc) {
    Expr *E = P->makeExpr(CExprKind::Binary, Loc);
    E->BOp = Op;
    E->Ops.push_back(L);
    E->Ops.push_back(R);
    return E;
  }
};

} // namespace

std::unique_ptr<Program> cfront::parseProgram(std::string_view Source,
                                              DiagnosticEngine &Diags) {
  ParserImpl Parser(Source, Diags);
  std::unique_ptr<Program> P = Parser.run();
  if (Diags.hasErrors())
    return nullptr;
  return P;
}
