//===- Parser.h - SIL-C parser ----------------------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the analyzed C subset: struct
/// definitions, typedefs, globals, and functions with the statement forms
/// of Figure 1 / Figure 3 (assignments, calls, if/else, while, goto and
/// labels, return, break/continue, assert). Produces an unresolved AST;
/// Sema performs name resolution and type checking.
///
//===----------------------------------------------------------------------===//

#ifndef CFRONT_PARSER_H
#define CFRONT_PARSER_H

#include "cfront/AST.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>

namespace slam {
namespace cfront {

/// Parses \p Source into a Program. Returns nullptr if any syntax error
/// was reported to \p Diags.
std::unique_ptr<Program> parseProgram(std::string_view Source,
                                      DiagnosticEngine &Diags);

} // namespace cfront
} // namespace slam

#endif // CFRONT_PARSER_H
