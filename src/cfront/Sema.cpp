//===- Sema.cpp - Name resolution and type checking ------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "cfront/Sema.h"

#include <set>

using namespace slam;
using namespace slam::cfront;

namespace {

class SemaImpl {
public:
  SemaImpl(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run() {
    checkUniqueTopLevelNames();
    for (FuncDecl *F : P.Functions)
      analyzeFunction(*F);
    P.NumStmts = NextStmtId;
    return !Diags.hasErrors();
  }

private:
  Program &P;
  DiagnosticEngine &Diags;
  FuncDecl *CurFunc = nullptr;
  std::set<std::string> Labels;
  std::vector<std::pair<std::string, SourceLoc>> GotoTargets;
  unsigned LoopDepth = 0;
  unsigned NextStmtId = 0;

  void error(SourceLoc Loc, const std::string &Message) {
    Diags.error(Loc, Message);
  }

  void checkUniqueTopLevelNames() {
    std::set<std::string> Seen;
    for (VarDecl *G : P.Globals)
      if (!Seen.insert(G->Name).second)
        error(G->Loc, "duplicate global '" + G->Name + "'");
    std::set<std::string> Funcs;
    for (FuncDecl *F : P.Functions) {
      if (!Funcs.insert(F->Name).second)
        error(F->Loc, "duplicate function '" + F->Name + "'");
      if (Seen.count(F->Name))
        error(F->Loc, "'" + F->Name + "' is both a global and a function");
    }
  }

  void analyzeFunction(FuncDecl &F) {
    CurFunc = &F;
    Labels.clear();
    GotoTargets.clear();
    LoopDepth = 0;

    std::set<std::string> Names;
    for (VarDecl *V : F.Params)
      if (!Names.insert(V->Name).second)
        error(V->Loc, "duplicate parameter '" + V->Name + "'");
    for (VarDecl *V : F.Locals) {
      if (!Names.insert(V->Name).second)
        error(V->Loc, "duplicate local '" + V->Name + "'");
      if (P.findGlobal(V->Name))
        Diags.warning(V->Loc,
                      "local '" + V->Name + "' shadows a global variable");
    }
    for (VarDecl *V : F.Params)
      if (P.findGlobal(V->Name))
        Diags.warning(V->Loc,
                      "parameter '" + V->Name + "' shadows a global");

    if (!F.Body)
      return; // Extern.
    collectLabels(*F.Body);
    analyzeStmt(*F.Body);
    for (const auto &[Name, Loc] : GotoTargets)
      if (!Labels.count(Name))
        error(Loc, "goto to undefined label '" + Name + "'");
    CurFunc = nullptr;
  }

  void collectLabels(Stmt &S) {
    if (S.Kind == CStmtKind::Label) {
      if (!Labels.insert(S.LabelName).second)
        error(S.Loc, "duplicate label '" + S.LabelName + "'");
      collectLabels(*S.Sub);
      return;
    }
    for (Stmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
      if (Sub)
        collectLabels(*Sub);
    for (Stmt *Sub : S.Stmts)
      collectLabels(*Sub);
  }

  // -- Statements -----------------------------------------------------------
  void analyzeStmt(Stmt &S) {
    S.Id = NextStmtId++;
    switch (S.Kind) {
    case CStmtKind::Block:
      for (Stmt *Sub : S.Stmts)
        analyzeStmt(*Sub);
      break;
    case CStmtKind::Assign: {
      const Type *LTy = analyzeExpr(*S.Lhs);
      const Type *RTy = analyzeExpr(*S.Rhs);
      if (!LTy || !RTy)
        break;
      if (!S.Lhs->isLocation()) {
        error(S.Lhs->Loc, "assignment target is not a location");
        break;
      }
      if (!LTy->isScalar())
        error(S.Lhs->Loc, "SIL-C assigns only scalars (int or pointer)");
      else if (!assignable(LTy, RTy, S.Rhs))
        error(S.Loc, "cannot assign '" + RTy->str() + "' to '" +
                         LTy->str() + "'");
      break;
    }
    case CStmtKind::CallStmt: {
      const Type *RetTy = analyzeCall(*S.CallE);
      if (S.Lhs) {
        const Type *LTy = analyzeExpr(*S.Lhs);
        if (LTy && RetTy) {
          if (!S.Lhs->isLocation())
            error(S.Lhs->Loc, "assignment target is not a location");
          else if (RetTy->isVoid())
            error(S.Loc, "void function used as a value");
          else if (!assignable(LTy, RetTy, nullptr))
            error(S.Loc, "cannot assign '" + RetTy->str() + "' to '" +
                             LTy->str() + "'");
        }
      }
      break;
    }
    case CStmtKind::If:
      checkCondition(*S.Cond);
      analyzeStmt(*S.Then);
      if (S.Else)
        analyzeStmt(*S.Else);
      break;
    case CStmtKind::While:
      checkCondition(*S.Cond);
      ++LoopDepth;
      analyzeStmt(*S.Body);
      --LoopDepth;
      break;
    case CStmtKind::Goto:
      GotoTargets.emplace_back(S.LabelName, S.Loc);
      break;
    case CStmtKind::Label:
      analyzeStmt(*S.Sub);
      break;
    case CStmtKind::Return: {
      const Type *Want = CurFunc->ReturnTy;
      if (S.Rhs) {
        const Type *Got = analyzeExpr(*S.Rhs);
        if (Want->isVoid())
          error(S.Loc, "void function returns a value");
        else if (Got && !assignable(Want, Got, S.Rhs))
          error(S.Loc, "return type mismatch");
      } else if (!Want->isVoid()) {
        error(S.Loc, "non-void function must return a value");
      }
      break;
    }
    case CStmtKind::Assert:
      checkCondition(*S.Cond);
      break;
    case CStmtKind::Break:
    case CStmtKind::Continue:
      if (LoopDepth == 0)
        error(S.Loc, "break/continue outside of a loop");
      break;
    case CStmtKind::Skip:
      break;
    }
  }

  void checkCondition(Expr &Cond) {
    const Type *Ty = analyzeExpr(Cond);
    if (Ty && !Ty->isScalar())
      error(Cond.Loc, "condition must be int or pointer");
  }

  // -- Expressions ------------------------------------------------------------
  /// Null literals type as int* and are assignable to every pointer.
  const Type *nullType() { return P.Types.pointerTo(P.Types.voidType()); }

  bool isNullConstant(const Expr *E) const {
    if (!E)
      return false;
    return E->Kind == CExprKind::NullLit ||
           (E->Kind == CExprKind::IntLit && E->IntValue == 0);
  }

  bool assignable(const Type *To, const Type *From, const Expr *FromE) {
    if (To == From)
      return true;
    if (To->isPointer() && isNullConstant(FromE))
      return true;
    return false;
  }

  const Type *analyzeCall(Expr &Call) {
    FuncDecl *Callee = P.findFunction(Call.Name);
    if (!Callee) {
      error(Call.Loc, "call to undefined function '" + Call.Name + "'");
      return nullptr;
    }
    Call.Callee = Callee;
    Call.Ty = Callee->ReturnTy;
    if (Call.Ops.size() != Callee->Params.size()) {
      error(Call.Loc, "wrong number of arguments to '" + Call.Name + "'");
      return Call.Ty;
    }
    for (size_t I = 0; I != Call.Ops.size(); ++I) {
      const Type *ArgTy = analyzeExpr(*Call.Ops[I]);
      if (ArgTy && !assignable(Callee->Params[I]->Ty, ArgTy, Call.Ops[I]))
        error(Call.Ops[I]->Loc, "argument type mismatch for parameter '" +
                                    Callee->Params[I]->Name + "'");
    }
    return Call.Ty;
  }

  const Type *analyzeExpr(Expr &E) {
    switch (E.Kind) {
    case CExprKind::IntLit:
      return E.Ty = P.Types.intType();
    case CExprKind::NullLit:
      return E.Ty = nullType();
    case CExprKind::VarRef: {
      VarDecl *V = CurFunc ? CurFunc->findLocalOrParam(E.Name) : nullptr;
      if (!V)
        V = P.findGlobal(E.Name);
      if (!V) {
        error(E.Loc, "use of undeclared variable '" + E.Name + "'");
        return nullptr;
      }
      E.Var = V;
      return E.Ty = V->Ty;
    }
    case CExprKind::Unary: {
      const Type *Sub = analyzeExpr(*E.Ops[0]);
      if (!Sub)
        return nullptr;
      switch (E.UOp) {
      case UnaryOp::Deref:
        if (!Sub->isPointer()) {
          error(E.Loc, "cannot dereference non-pointer '" + Sub->str() + "'");
          return nullptr;
        }
        return E.Ty = Sub->pointee();
      case UnaryOp::AddrOf:
        if (!E.Ops[0]->isLocation()) {
          error(E.Loc, "cannot take the address of a non-location");
          return nullptr;
        }
        return E.Ty = P.Types.pointerTo(Sub);
      case UnaryOp::Neg:
        if (!Sub->isInt()) {
          error(E.Loc, "operand of unary - must be int");
          return nullptr;
        }
        return E.Ty = P.Types.intType();
      case UnaryOp::Not:
        if (!Sub->isScalar()) {
          error(E.Loc, "operand of ! must be scalar");
          return nullptr;
        }
        return E.Ty = P.Types.intType();
      }
      return nullptr;
    }
    case CExprKind::Binary: {
      const Type *L = analyzeExpr(*E.Ops[0]);
      const Type *R = analyzeExpr(*E.Ops[1]);
      if (!L || !R)
        return nullptr;
      if (isComparisonOp(E.BOp)) {
        bool Ok = (L->isInt() && R->isInt()) || (L == R) ||
                  (L->isPointer() && isNullConstant(E.Ops[1])) ||
                  (R->isPointer() && isNullConstant(E.Ops[0]));
        if (!Ok) {
          error(E.Loc, "cannot compare '" + L->str() + "' with '" +
                           R->str() + "'");
          return nullptr;
        }
        return E.Ty = P.Types.intType();
      }
      if (E.BOp == BinaryOp::LAnd || E.BOp == BinaryOp::LOr) {
        if (!L->isScalar() || !R->isScalar()) {
          error(E.Loc, "operands of &&/|| must be scalar");
          return nullptr;
        }
        return E.Ty = P.Types.intType();
      }
      // Arithmetic; the logical memory model also admits ptr + int,
      // which yields a pointer to the same object (Section 4).
      if (L->isPointer() && R->isInt())
        return E.Ty = L;
      if (!L->isInt() || !R->isInt()) {
        error(E.Loc, "arithmetic requires int operands");
        return nullptr;
      }
      return E.Ty = P.Types.intType();
    }
    case CExprKind::Member: {
      const Type *Base = analyzeExpr(*E.Ops[0]);
      if (!Base)
        return nullptr;
      const Type *RecTy = Base;
      if (E.IsArrow) {
        if (!Base->isPointer() || !Base->pointee()->isRecord()) {
          error(E.Loc, "-> requires a pointer to struct");
          return nullptr;
        }
        RecTy = Base->pointee();
      } else if (!Base->isRecord()) {
        error(E.Loc, ". requires a struct");
        return nullptr;
      }
      const RecordDecl::Field *F =
          RecTy->record()->findField(E.FieldName);
      if (!F) {
        error(E.Loc, "no field '" + E.FieldName + "' in struct '" +
                         RecTy->record()->Name + "'");
        return nullptr;
      }
      return E.Ty = F->Ty;
    }
    case CExprKind::Index: {
      const Type *Base = analyzeExpr(*E.Ops[0]);
      const Type *Idx = analyzeExpr(*E.Ops[1]);
      if (!Base || !Idx)
        return nullptr;
      if (!Idx->isInt()) {
        error(E.Loc, "array index must be int");
        return nullptr;
      }
      if (Base->isArray())
        return E.Ty = Base->elementType();
      if (Base->isPointer())
        return E.Ty = Base->pointee();
      error(E.Loc, "subscript of non-array");
      return nullptr;
    }
    case CExprKind::Call:
      // Calls are validated by analyzeCall from statement context; a call
      // nested in an expression is legal input (Normalize hoists it).
      return analyzeCall(E);
    }
    return nullptr;
  }
};

} // namespace

bool cfront::analyze(Program &P, DiagnosticEngine &Diags) {
  SemaImpl Sema(P, Diags);
  return Sema.run();
}
