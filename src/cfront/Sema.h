//===- Sema.h - Semantic analysis for SIL-C ---------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and type checking. On success every Expr has a Ty,
/// every VarRef points at its VarDecl, every Call at its FuncDecl, and
/// every statement carries a dense program-wide id used to correlate
/// abstract counterexamples back to C statements.
///
//===----------------------------------------------------------------------===//

#ifndef CFRONT_SEMA_H
#define CFRONT_SEMA_H

#include "cfront/AST.h"
#include "support/Diagnostics.h"

namespace slam {
namespace cfront {

/// Runs semantic analysis in place. Returns false (with diagnostics) on
/// any error.
bool analyze(Program &P, DiagnosticEngine &Diags);

} // namespace cfront
} // namespace slam

#endif // CFRONT_SEMA_H
