//===- Types.cpp ----------------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "cfront/Types.h"

using namespace slam;
using namespace slam::cfront;

std::string Type::str() const {
  switch (K) {
  case Kind::Int:
    return "int";
  case Kind::Void:
    return "void";
  case Kind::Pointer:
    return Inner->str() + "*";
  case Kind::Record:
    return "struct " + Rec->Name;
  case Kind::Array:
    return Inner->str() + "[" + std::to_string(Size) + "]";
  }
  return "<type>";
}

TypeContext::TypeContext() {
  Types.push_back(Type(Type::Kind::Int, nullptr, nullptr, 0));
  Int = &Types.back();
  Types.push_back(Type(Type::Kind::Void, nullptr, nullptr, 0));
  Void = &Types.back();
}

const Type *TypeContext::pointerTo(const Type *Pointee) {
  auto It = PointerTypes.find(Pointee);
  if (It != PointerTypes.end())
    return It->second;
  Types.push_back(Type(Type::Kind::Pointer, Pointee, nullptr, 0));
  const Type *T = &Types.back();
  PointerTypes.emplace(Pointee, T);
  return T;
}

const Type *TypeContext::arrayOf(const Type *Element, int64_t Size) {
  auto Key = std::make_pair(Element, Size);
  auto It = ArrayTypes.find(Key);
  if (It != ArrayTypes.end())
    return It->second;
  Types.push_back(Type(Type::Kind::Array, Element, nullptr, Size));
  const Type *T = &Types.back();
  ArrayTypes.emplace(Key, T);
  return T;
}

const Type *TypeContext::recordType(const RecordDecl *Rec) {
  auto It = RecordTypes.find(Rec);
  if (It != RecordTypes.end())
    return It->second;
  Types.push_back(Type(Type::Kind::Record, nullptr, Rec, 0));
  const Type *T = &Types.back();
  RecordTypes.emplace(Rec, T);
  return T;
}

RecordDecl *TypeContext::getOrCreateRecord(const std::string &Name) {
  auto It = RecordsByName.find(Name);
  if (It != RecordsByName.end())
    return It->second;
  Records.push_back(RecordDecl{Name, {}});
  RecordDecl *Rec = &Records.back();
  RecordsByName.emplace(Name, Rec);
  return Rec;
}

RecordDecl *TypeContext::findRecord(const std::string &Name) {
  auto It = RecordsByName.find(Name);
  return It == RecordsByName.end() ? nullptr : It->second;
}
