//===- Types.h - SIL-C type system ------------------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of the analyzed C subset ("SIL-C"): int, void, pointers, named
/// structs, and fixed-size arrays. Types are interned in a TypeContext so
/// pointer equality is type equality. The memory model is the paper's
/// logical model (Section 4): pointer arithmetic yields a pointer to the
/// same object, array elements are cells of the array object.
///
//===----------------------------------------------------------------------===//

#ifndef CFRONT_TYPES_H
#define CFRONT_TYPES_H

#include <cassert>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace slam {
namespace cfront {

class Type;

/// A named struct with ordered fields.
struct RecordDecl {
  std::string Name;
  struct Field {
    std::string Name;
    const Type *Ty;
  };
  std::vector<Field> Fields;

  const Field *findField(const std::string &FieldName) const {
    for (const Field &F : Fields)
      if (F.Name == FieldName)
        return &F;
    return nullptr;
  }
};

/// An interned SIL-C type.
class Type {
public:
  enum class Kind { Int, Void, Pointer, Record, Array };

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isVoid() const { return K == Kind::Void; }
  bool isPointer() const { return K == Kind::Pointer; }
  bool isRecord() const { return K == Kind::Record; }
  bool isArray() const { return K == Kind::Array; }

  /// Scalar types can be assigned and compared: int and pointers.
  bool isScalar() const { return isInt() || isPointer(); }

  const Type *pointee() const {
    assert(isPointer());
    return Inner;
  }

  const Type *elementType() const {
    assert(isArray());
    return Inner;
  }

  int64_t arraySize() const {
    assert(isArray());
    return Size;
  }

  const RecordDecl *record() const {
    assert(isRecord());
    return Rec;
  }

  /// C-like rendering ("struct cell *", "int [10]").
  std::string str() const;

private:
  friend class TypeContext;
  Type(Kind K, const Type *Inner, const RecordDecl *Rec, int64_t Size)
      : K(K), Inner(Inner), Rec(Rec), Size(Size) {}

  Kind K;
  const Type *Inner;
  const RecordDecl *Rec;
  int64_t Size;
};

/// Owns and interns types and record declarations.
class TypeContext {
public:
  TypeContext();

  const Type *intType() const { return Int; }
  const Type *voidType() const { return Void; }
  const Type *pointerTo(const Type *Pointee);
  const Type *arrayOf(const Type *Element, int64_t Size);
  const Type *recordType(const RecordDecl *Rec);

  /// Creates (or returns the existing, possibly still field-less) record
  /// named \p Name; SIL-C allows `struct cell*` before the definition.
  RecordDecl *getOrCreateRecord(const std::string &Name);

  RecordDecl *findRecord(const std::string &Name);

  /// All records declared so far (stable order of first mention).
  std::vector<const RecordDecl *> allRecords() const {
    std::vector<const RecordDecl *> Out;
    for (const RecordDecl &R : Records)
      Out.push_back(&R);
    return Out;
  }

private:
  std::deque<Type> Types;
  std::deque<RecordDecl> Records;
  const Type *Int;
  const Type *Void;
  std::map<const Type *, const Type *> PointerTypes;
  std::map<std::pair<const Type *, int64_t>, const Type *> ArrayTypes;
  std::map<const RecordDecl *, const Type *> RecordTypes;
  std::map<std::string, RecordDecl *> RecordsByName;
};

} // namespace cfront
} // namespace slam

#endif // CFRONT_TYPES_H
