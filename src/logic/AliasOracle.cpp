//===- AliasOracle.cpp ----------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "logic/AliasOracle.h"

using namespace slam;
using namespace slam::logic;

AliasOracle::~AliasOracle() = default;

void ShapeAliasOracle::anchor() {}

AliasResult ShapeAliasOracle::alias(ExprRef A, ExprRef B) const {
  assert(A->isLocation() && B->isLocation() && "alias query on non-location");
  if (A == B)
    return AliasResult::MustAlias;

  ExprKind KA = A->kind(), KB = B->kind();

  // Two distinct named variables are distinct objects.
  if (KA == ExprKind::Var && KB == ExprKind::Var)
    return AliasResult::NoAlias;

  // Field cells are strictly inside struct objects; they can never be a
  // whole variable or an array element in SIL-C.
  if ((KA == ExprKind::Field) !=
      (KB == ExprKind::Field)) {
    ExprKind Other = KA == ExprKind::Field ? KB : KA;
    if (Other == ExprKind::Var || Other == ExprKind::Index)
      return AliasResult::NoAlias;
  }

  // Fields of different names occupy different offsets.
  if (KA == ExprKind::Field && KB == ExprKind::Field) {
    if (A->name() != B->name())
      return AliasResult::NoAlias;
    // Same field name: alias iff the bases denote the same object.
    AliasResult Base = alias(A->op(0), B->op(0));
    // A must-aliasing base pair would have made A == B (hash-consing), so
    // the recursive result here is No or May.
    return Base;
  }

  // Array elements live inside array objects.
  if (KA == ExprKind::Index && KB == ExprKind::Index) {
    ExprRef BaseA = A->op(0), BaseB = B->op(0);
    if (BaseA->kind() == ExprKind::Var && BaseB->kind() == ExprKind::Var &&
        BaseA != BaseB)
      return AliasResult::NoAlias;
    return AliasResult::MayAlias;
  }
  if ((KA == ExprKind::Index && KB == ExprKind::Var) ||
      (KA == ExprKind::Var && KB == ExprKind::Index))
    return AliasResult::NoAlias;

  return AliasResult::MayAlias;
}
