//===- AliasOracle.h - May/must alias queries for WP ------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface through which the weakest-precondition engine (and C2bp)
/// asks alias questions about locations (Section 4.2). The `alias`
/// library provides an implementation backed by a points-to analysis and
/// the program's types; ShapeAliasOracle is a sound, purely syntactic
/// fallback used when no analysis has been run.
///
//===----------------------------------------------------------------------===//

#ifndef LOGIC_ALIASORACLE_H
#define LOGIC_ALIASORACLE_H

#include "logic/Expr.h"

namespace slam {
namespace logic {

/// Outcome of an alias query between two locations.
enum class AliasResult {
  NoAlias,   ///< The locations are definitely distinct cells.
  MayAlias,  ///< Unknown; the WP must case-split on &x == &y.
  MustAlias, ///< Definitely the same cell.
};

/// Abstract oracle. Both arguments must satisfy Expr::isLocation().
class AliasOracle {
public:
  virtual ~AliasOracle();

  virtual AliasResult alias(ExprRef A, ExprRef B) const = 0;
};

/// Syntactic alias rules that need no program analysis:
///   * identical locations must-alias;
///   * distinct named variables never alias;
///   * fields with different names never alias;
///   * fields never alias plain variables or array elements
///     (SIL-C has no whole-struct assignment and no arrays in structs);
///   * elements of distinct array variables never alias;
///   * everything else may-alias.
class ShapeAliasOracle : public AliasOracle {
public:
  AliasResult alias(ExprRef A, ExprRef B) const override;

private:
  virtual void anchor();
};

} // namespace logic
} // namespace slam

#endif // LOGIC_ALIASORACLE_H
