//===- Expr.cpp - Interned logic expressions ------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "logic/Expr.h"

#include <algorithm>
#include <functional>

using namespace slam;
using namespace slam::logic;

bool logic::isCmpKind(ExprKind Kind) {
  switch (Kind) {
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Lt:
  case ExprKind::Le:
  case ExprKind::Gt:
  case ExprKind::Ge:
    return true;
  default:
    return false;
  }
}

ExprKind logic::negateCmp(ExprKind Kind) {
  switch (Kind) {
  case ExprKind::Eq:
    return ExprKind::Ne;
  case ExprKind::Ne:
    return ExprKind::Eq;
  case ExprKind::Lt:
    return ExprKind::Ge;
  case ExprKind::Le:
    return ExprKind::Gt;
  case ExprKind::Gt:
    return ExprKind::Le;
  case ExprKind::Ge:
    return ExprKind::Lt;
  default:
    assert(false && "not a comparison kind");
    return Kind;
  }
}

size_t LogicContext::KeyHash::operator()(const Key &K) const {
  size_t H = std::hash<int>()(static_cast<int>(K.Kind));
  auto Mix = [&H](size_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  };
  Mix(std::hash<int64_t>()(K.IntValue));
  Mix(std::hash<std::string>()(K.Name));
  for (ExprRef Op : K.Ops)
    Mix(std::hash<unsigned>()(Op->id()));
  return H;
}

LogicContext::LogicContext() {
  False = make(ExprKind::BoolLit, 0, "", {});
  True = make(ExprKind::BoolLit, 1, "", {});
}

ExprRef LogicContext::make(ExprKind Kind, int64_t IntValue, std::string Name,
                           std::vector<ExprRef> Ops) {
  // The sole interning funnel, and with it the context's entire mutable
  // state; holding the mutex here makes concurrent expression building
  // safe (nodes are immutable once the pointer escapes the lock).
  std::lock_guard<std::mutex> L(InternM);
  Key K{Kind, IntValue, Name, Ops};
  auto It = Interned.find(K);
  if (It != Interned.end())
    return It->second;
  unsigned Size = 1;
  for (ExprRef Op : Ops)
    Size += Op->size();
  Nodes.emplace_back(Expr(Kind, IntValue, std::move(Name), std::move(Ops),
                          static_cast<unsigned>(Nodes.size()), Size));
  ExprRef E = &Nodes.back();
  Interned.emplace(std::move(K), E);
  return E;
}

ExprRef LogicContext::intLit(int64_t Value) {
  return make(ExprKind::IntLit, Value, "", {});
}

ExprRef LogicContext::nullLit() { return make(ExprKind::NullLit, 0, "", {}); }

ExprRef LogicContext::var(const std::string &Name) {
  return make(ExprKind::Var, 0, Name, {});
}

ExprRef LogicContext::addrOf(ExprRef Loc) {
  assert(Loc->isLocation() && "can only take the address of a location");
  // &*p == p under the logical memory model.
  if (Loc->kind() == ExprKind::Deref)
    return Loc->op(0);
  return make(ExprKind::AddrOf, 0, "", {Loc});
}

ExprRef LogicContext::deref(ExprRef Ptr) {
  // *&x == x.
  if (Ptr->kind() == ExprKind::AddrOf)
    return Ptr->op(0);
  return make(ExprKind::Deref, 0, "", {Ptr});
}

ExprRef LogicContext::field(ExprRef Base, const std::string &FieldName) {
  return make(ExprKind::Field, 0, FieldName, {Base});
}

ExprRef LogicContext::index(ExprRef Base, ExprRef Idx) {
  return make(ExprKind::Index, 0, "", {Base, Idx});
}

ExprRef LogicContext::neg(ExprRef E) {
  if (E->kind() == ExprKind::IntLit)
    return intLit(-E->intValue());
  if (E->kind() == ExprKind::Neg)
    return E->op(0);
  return make(ExprKind::Neg, 0, "", {E});
}

ExprRef LogicContext::add(ExprRef L, ExprRef R) {
  if (L->kind() == ExprKind::IntLit && R->kind() == ExprKind::IntLit)
    return intLit(L->intValue() + R->intValue());
  if (L->kind() == ExprKind::IntLit && L->intValue() == 0)
    return R;
  if (R->kind() == ExprKind::IntLit && R->intValue() == 0)
    return L;
  return make(ExprKind::Add, 0, "", {L, R});
}

ExprRef LogicContext::sub(ExprRef L, ExprRef R) {
  if (L->kind() == ExprKind::IntLit && R->kind() == ExprKind::IntLit)
    return intLit(L->intValue() - R->intValue());
  if (R->kind() == ExprKind::IntLit && R->intValue() == 0)
    return L;
  return make(ExprKind::Sub, 0, "", {L, R});
}

ExprRef LogicContext::mul(ExprRef L, ExprRef R) {
  if (L->kind() == ExprKind::IntLit && R->kind() == ExprKind::IntLit)
    return intLit(L->intValue() * R->intValue());
  if (L->kind() == ExprKind::IntLit && L->intValue() == 1)
    return R;
  if (R->kind() == ExprKind::IntLit && R->intValue() == 1)
    return L;
  if ((L->kind() == ExprKind::IntLit && L->intValue() == 0) ||
      (R->kind() == ExprKind::IntLit && R->intValue() == 0))
    return intLit(0);
  return make(ExprKind::Mul, 0, "", {L, R});
}

ExprRef LogicContext::div(ExprRef L, ExprRef R) {
  if (L->kind() == ExprKind::IntLit && R->kind() == ExprKind::IntLit &&
      R->intValue() != 0)
    return intLit(L->intValue() / R->intValue());
  if (R->kind() == ExprKind::IntLit && R->intValue() == 1)
    return L;
  return make(ExprKind::Div, 0, "", {L, R});
}

ExprRef LogicContext::mod(ExprRef L, ExprRef R) {
  if (L->kind() == ExprKind::IntLit && R->kind() == ExprKind::IntLit &&
      R->intValue() != 0)
    return intLit(L->intValue() % R->intValue());
  return make(ExprKind::Mod, 0, "", {L, R});
}

ExprRef LogicContext::boolLit(bool Value) { return Value ? True : False; }

ExprRef LogicContext::cmp(ExprKind Kind, ExprRef L, ExprRef R) {
  assert(isCmpKind(Kind) && "cmp() requires a comparison kind");
  // Fold comparisons of equal pure terms.
  if (L == R) {
    switch (Kind) {
    case ExprKind::Eq:
    case ExprKind::Le:
    case ExprKind::Ge:
      return True;
    case ExprKind::Ne:
    case ExprKind::Lt:
    case ExprKind::Gt:
      return False;
    default:
      break;
    }
  }
  // Fold comparisons of integer constants.
  if (L->kind() == ExprKind::IntLit && R->kind() == ExprKind::IntLit) {
    int64_t A = L->intValue(), B = R->intValue();
    switch (Kind) {
    case ExprKind::Eq:
      return boolLit(A == B);
    case ExprKind::Ne:
      return boolLit(A != B);
    case ExprKind::Lt:
      return boolLit(A < B);
    case ExprKind::Le:
      return boolLit(A <= B);
    case ExprKind::Gt:
      return boolLit(A > B);
    case ExprKind::Ge:
      return boolLit(A >= B);
    default:
      break;
    }
  }
  return make(Kind, 0, "", {L, R});
}

ExprRef LogicContext::notE(ExprRef E) {
  assert(E->isFormula() && "! applies to formulas");
  if (E->kind() == ExprKind::BoolLit)
    return boolLit(!E->boolValue());
  if (E->kind() == ExprKind::Not)
    return E->op(0);
  if (isCmpKind(E->kind()))
    return cmp(negateCmp(E->kind()), E->op(0), E->op(1));
  return make(ExprKind::Not, 0, "", {E});
}

ExprRef LogicContext::andE(ExprRef L, ExprRef R) {
  return andE(std::vector<ExprRef>{L, R});
}

ExprRef LogicContext::andE(std::vector<ExprRef> Ops) {
  std::vector<ExprRef> Flat;
  for (ExprRef Op : Ops) {
    assert(Op->isFormula() && "&& applies to formulas");
    if (Op->isTrue())
      continue;
    if (Op->isFalse())
      return False;
    if (Op->kind() == ExprKind::And) {
      for (ExprRef Sub : Op->operands())
        if (std::find(Flat.begin(), Flat.end(), Sub) == Flat.end())
          Flat.push_back(Sub);
      continue;
    }
    if (std::find(Flat.begin(), Flat.end(), Op) == Flat.end())
      Flat.push_back(Op);
  }
  // A conjunction containing both phi and !phi is false.
  for (ExprRef Op : Flat)
    if (std::find(Flat.begin(), Flat.end(), notE(Op)) != Flat.end())
      return False;
  if (Flat.empty())
    return True;
  if (Flat.size() == 1)
    return Flat.front();
  return make(ExprKind::And, 0, "", std::move(Flat));
}

ExprRef LogicContext::orE(ExprRef L, ExprRef R) {
  return orE(std::vector<ExprRef>{L, R});
}

ExprRef LogicContext::orE(std::vector<ExprRef> Ops) {
  std::vector<ExprRef> Flat;
  for (ExprRef Op : Ops) {
    assert(Op->isFormula() && "|| applies to formulas");
    if (Op->isFalse())
      continue;
    if (Op->isTrue())
      return True;
    if (Op->kind() == ExprKind::Or) {
      for (ExprRef Sub : Op->operands())
        if (std::find(Flat.begin(), Flat.end(), Sub) == Flat.end())
          Flat.push_back(Sub);
      continue;
    }
    if (std::find(Flat.begin(), Flat.end(), Op) == Flat.end())
      Flat.push_back(Op);
  }
  for (ExprRef Op : Flat)
    if (std::find(Flat.begin(), Flat.end(), notE(Op)) != Flat.end())
      return True;
  if (Flat.empty())
    return False;
  if (Flat.size() == 1)
    return Flat.front();
  return make(ExprKind::Or, 0, "", std::move(Flat));
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

/// Binding strengths for parenthesization; higher binds tighter.
enum Prec {
  PrecOr = 1,
  PrecAnd = 2,
  PrecCmp = 3,
  PrecAdd = 4,
  PrecMul = 5,
  PrecUnary = 6,
  PrecPostfix = 7,
};

int precedenceOf(ExprKind Kind) {
  switch (Kind) {
  case ExprKind::Or:
    return PrecOr;
  case ExprKind::And:
    return PrecAnd;
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Lt:
  case ExprKind::Le:
  case ExprKind::Gt:
  case ExprKind::Ge:
    return PrecCmp;
  case ExprKind::Add:
  case ExprKind::Sub:
    return PrecAdd;
  case ExprKind::Mul:
  case ExprKind::Div:
  case ExprKind::Mod:
    return PrecMul;
  case ExprKind::Not:
  case ExprKind::Neg:
  case ExprKind::Deref:
  case ExprKind::AddrOf:
    return PrecUnary;
  case ExprKind::Field:
  case ExprKind::Index:
    return PrecPostfix;
  default:
    return 100; // Atoms never need parens.
  }
}

const char *binaryOpText(ExprKind Kind) {
  switch (Kind) {
  case ExprKind::Add:
    return " + ";
  case ExprKind::Sub:
    return " - ";
  case ExprKind::Mul:
    return " * ";
  case ExprKind::Div:
    return " / ";
  case ExprKind::Mod:
    return " % ";
  case ExprKind::Eq:
    return " == ";
  case ExprKind::Ne:
    return " != ";
  case ExprKind::Lt:
    return " < ";
  case ExprKind::Le:
    return " <= ";
  case ExprKind::Gt:
    return " > ";
  case ExprKind::Ge:
    return " >= ";
  default:
    assert(false && "not a binary operator");
    return "?";
  }
}

void print(const Expr *E, int ParentPrec, std::string &Out) {
  int Prec = precedenceOf(E->kind());
  bool Paren = Prec < ParentPrec;
  if (Paren)
    Out += '(';
  switch (E->kind()) {
  case ExprKind::IntLit:
    Out += std::to_string(E->intValue());
    break;
  case ExprKind::NullLit:
    Out += "NULL";
    break;
  case ExprKind::BoolLit:
    Out += E->boolValue() ? "true" : "false";
    break;
  case ExprKind::Var:
    Out += E->name();
    break;
  case ExprKind::AddrOf:
    Out += '&';
    print(E->op(0), PrecUnary, Out);
    break;
  case ExprKind::Deref:
    Out += '*';
    print(E->op(0), PrecUnary, Out);
    break;
  case ExprKind::Field:
    // Render Field(Deref(p), f) as p->f, anything else as base.f.
    if (E->op(0)->kind() == ExprKind::Deref) {
      print(E->op(0)->op(0), PrecPostfix, Out);
      Out += "->";
    } else {
      print(E->op(0), PrecPostfix, Out);
      Out += '.';
    }
    Out += E->name();
    break;
  case ExprKind::Index:
    print(E->op(0), PrecPostfix, Out);
    Out += '[';
    print(E->op(1), 0, Out);
    Out += ']';
    break;
  case ExprKind::Neg:
    Out += '-';
    print(E->op(0), PrecUnary, Out);
    break;
  case ExprKind::Not:
    Out += '!';
    print(E->op(0), PrecUnary, Out);
    break;
  case ExprKind::And:
  case ExprKind::Or: {
    bool IsAnd = E->kind() == ExprKind::And;
    const char *Sep = IsAnd ? " && " : " || ";
    // Operands of || that are && get parentheses for readability even
    // though C precedence would not require them.
    int ChildPrec = IsAnd ? Prec + 1 : PrecCmp;
    for (unsigned I = 0; I != E->numOperands(); ++I) {
      if (I != 0)
        Out += Sep;
      print(E->op(I), ChildPrec, Out);
    }
    break;
  }
  default:
    print(E->op(0), Prec + 1, Out);
    Out += binaryOpText(E->kind());
    print(E->op(1), Prec + 1, Out);
    break;
  }
  if (Paren)
    Out += ')';
}

} // namespace

std::string Expr::str() const {
  std::string Out;
  print(this, 0, Out);
  return Out;
}
