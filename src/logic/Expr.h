//===- Expr.h - Quantifier-free logic expressions ---------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quantifier-free predicate language of the paper (Section 4):
/// pure C boolean expressions over program variables and constants, with
/// pointer dereference, field access, array indexing under the logical
/// memory model, and address-of (used by Morris' axiom, Section 4.2).
///
/// Expressions are immutable and hash-consed inside a LogicContext, so
/// structural equality is pointer equality and every node has a stable
/// small integer id (assigned in creation order, hence deterministic).
///
//===----------------------------------------------------------------------===//

#ifndef LOGIC_EXPR_H
#define LOGIC_EXPR_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace slam {
namespace logic {

class LogicContext;

/// Node kinds. Terms come first, formulas second; \c Expr::isFormula()
/// relies on this ordering.
enum class ExprKind {
  // Terms.
  IntLit,  ///< Integer constant.
  NullLit, ///< The NULL pointer constant.
  Var,     ///< Named program variable (scalar, pointer or struct root).
  AddrOf,  ///< &loc — address of a location.
  Deref,   ///< *e — pointer dereference.
  Field,   ///< e.f — field access (p->f is Field(Deref(p), f)).
  Index,   ///< a[e] — array element, logical memory model.
  Neg,     ///< -e.
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  // Formulas.
  BoolLit,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Not,
  And, ///< N-ary, flattened conjunction.
  Or,  ///< N-ary, flattened disjunction.
};

/// One immutable, interned expression node.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  unsigned id() const { return Id; }

  /// Integer value; valid for IntLit (and 0/1 for BoolLit).
  int64_t intValue() const {
    assert(Kind == ExprKind::IntLit || Kind == ExprKind::BoolLit);
    return IntValue;
  }

  bool boolValue() const {
    assert(Kind == ExprKind::BoolLit);
    return IntValue != 0;
  }

  /// Variable name (Var) or field name (Field).
  const std::string &name() const { return Name; }

  const std::vector<const Expr *> &operands() const { return Ops; }

  const Expr *op(unsigned I) const {
    assert(I < Ops.size());
    return Ops[I];
  }

  unsigned numOperands() const { return static_cast<unsigned>(Ops.size()); }

  /// True for boolean-valued nodes (comparisons, connectives, BoolLit).
  bool isFormula() const { return Kind >= ExprKind::BoolLit; }

  /// True for the location shapes of Section 4.2: a variable, a field
  /// access from a location, an array element, or a dereference.
  bool isLocation() const {
    switch (Kind) {
    case ExprKind::Var:
    case ExprKind::Deref:
    case ExprKind::Field:
    case ExprKind::Index:
      return true;
    default:
      return false;
    }
  }

  bool isTrue() const {
    return Kind == ExprKind::BoolLit && IntValue != 0;
  }
  bool isFalse() const {
    return Kind == ExprKind::BoolLit && IntValue == 0;
  }

  /// Number of nodes in this expression tree (memoized at creation).
  unsigned size() const { return Size; }

  /// C-like rendering; `Field(Deref(p), f)` prints as `p->f`.
  std::string str() const;

private:
  friend class LogicContext;
  Expr(ExprKind Kind, int64_t IntValue, std::string Name,
       std::vector<const Expr *> Ops, unsigned Id, unsigned Size)
      : Kind(Kind), IntValue(IntValue), Name(std::move(Name)),
        Ops(std::move(Ops)), Id(Id), Size(Size) {}

  ExprKind Kind;
  int64_t IntValue;
  std::string Name;
  std::vector<const Expr *> Ops;
  unsigned Id;
  unsigned Size;
};

using ExprRef = const Expr *;

/// Owns and interns Expr nodes. Smart constructors perform light
/// canonicalization (constant folding, flattening of And/Or, double
/// negation, pushing ! through comparisons) so that the weakest
/// precondition computation produces formulas of manageable size.
///
/// Construction is thread-safe: the single interning funnel (make())
/// takes a mutex, and nodes are immutable once published, so the
/// parallel abstraction workers may build expressions concurrently.
/// Node ids then depend on thread interleaving, which is why nothing
/// downstream may let ids (or pointers) influence *output* — only
/// per-run cache keys and orderings.
class LogicContext {
public:
  LogicContext();

  // -- Terms --------------------------------------------------------------
  ExprRef intLit(int64_t Value);
  ExprRef nullLit();
  ExprRef var(const std::string &Name);
  ExprRef addrOf(ExprRef Loc);
  ExprRef deref(ExprRef Ptr);
  ExprRef field(ExprRef Base, const std::string &FieldName);
  ExprRef index(ExprRef Base, ExprRef Idx);
  ExprRef neg(ExprRef E);
  ExprRef add(ExprRef L, ExprRef R);
  ExprRef sub(ExprRef L, ExprRef R);
  ExprRef mul(ExprRef L, ExprRef R);
  ExprRef div(ExprRef L, ExprRef R);
  ExprRef mod(ExprRef L, ExprRef R);

  // -- Formulas -----------------------------------------------------------
  ExprRef boolLit(bool Value);
  ExprRef trueE() { return True; }
  ExprRef falseE() { return False; }
  ExprRef cmp(ExprKind Kind, ExprRef L, ExprRef R);
  ExprRef eq(ExprRef L, ExprRef R) { return cmp(ExprKind::Eq, L, R); }
  ExprRef ne(ExprRef L, ExprRef R) { return cmp(ExprKind::Ne, L, R); }
  ExprRef lt(ExprRef L, ExprRef R) { return cmp(ExprKind::Lt, L, R); }
  ExprRef le(ExprRef L, ExprRef R) { return cmp(ExprKind::Le, L, R); }
  ExprRef gt(ExprRef L, ExprRef R) { return cmp(ExprKind::Gt, L, R); }
  ExprRef ge(ExprRef L, ExprRef R) { return cmp(ExprKind::Ge, L, R); }
  ExprRef notE(ExprRef E);
  ExprRef andE(ExprRef L, ExprRef R);
  ExprRef andE(std::vector<ExprRef> Ops);
  ExprRef orE(ExprRef L, ExprRef R);
  ExprRef orE(std::vector<ExprRef> Ops);
  ExprRef implies(ExprRef L, ExprRef R) { return orE(notE(L), R); }

  /// Number of distinct nodes created so far.
  size_t numNodes() const {
    std::lock_guard<std::mutex> L(InternM);
    return Nodes.size();
  }

private:
  ExprRef make(ExprKind Kind, int64_t IntValue, std::string Name,
               std::vector<ExprRef> Ops);

  struct Key {
    ExprKind Kind;
    int64_t IntValue;
    std::string Name;
    std::vector<ExprRef> Ops;
    bool operator==(const Key &O) const {
      return Kind == O.Kind && IntValue == O.IntValue && Name == O.Name &&
             Ops == O.Ops;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };

  mutable std::mutex InternM;
  std::deque<Expr> Nodes;
  std::unordered_map<Key, ExprRef, KeyHash> Interned;
  ExprRef True = nullptr;
  ExprRef False = nullptr;
};

/// Negates a comparison kind (Eq <-> Ne, Lt <-> Ge, ...).
ExprKind negateCmp(ExprKind Kind);

/// True if \p Kind is one of the six comparison kinds.
bool isCmpKind(ExprKind Kind);

} // namespace logic
} // namespace slam

#endif // LOGIC_EXPR_H
