//===- ExprUtils.cpp ------------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "logic/ExprUtils.h"

#include <algorithm>
#include <unordered_map>

using namespace slam;
using namespace slam::logic;

namespace {

void collectVarsImpl(ExprRef E, std::set<std::string> &Out) {
  if (E->kind() == ExprKind::Var)
    Out.insert(E->name());
  for (ExprRef Op : E->operands())
    collectVarsImpl(Op, Out);
}

void collectDerefedImpl(ExprRef E, std::set<std::string> &Out) {
  if (E->kind() == ExprKind::Deref || E->kind() == ExprKind::Index) {
    ExprRef Base = E->op(0);
    if (Base->kind() == ExprKind::Var)
      Out.insert(Base->name());
  }
  for (ExprRef Op : E->operands())
    collectDerefedImpl(Op, Out);
}

void collectLocationsImpl(ExprRef E, std::vector<ExprRef> &Out,
                          bool IsFieldBase) {
  // The direct base of a field access denotes a whole struct object;
  // SIL-C has no whole-struct assignment, so it is never a Morris
  // substitution candidate itself (its scalar cells are, via their own
  // Field locations). Skip it but keep recursing: in p->f the base *p
  // is skipped while the pointer p is collected.
  if (!IsFieldBase && E->isLocation() &&
      std::find(Out.begin(), Out.end(), E) == Out.end())
    Out.push_back(E);
  for (unsigned I = 0; I != E->numOperands(); ++I)
    collectLocationsImpl(E->op(I), Out,
                         E->kind() == ExprKind::Field && I == 0);
}

} // namespace

std::set<std::string> logic::collectVars(ExprRef E) {
  std::set<std::string> Out;
  collectVarsImpl(E, Out);
  return Out;
}

std::set<std::string> logic::collectDerefedVars(ExprRef E) {
  std::set<std::string> Out;
  collectDerefedImpl(E, Out);
  return Out;
}

std::vector<ExprRef> logic::collectLocations(ExprRef E) {
  std::vector<ExprRef> Out;
  collectLocationsImpl(E, Out, /*IsFieldBase=*/false);
  return Out;
}

bool logic::containsNullDeref(ExprRef E) {
  if ((E->kind() == ExprKind::Deref || E->kind() == ExprKind::Index) &&
      E->op(0)->kind() == ExprKind::NullLit)
    return true;
  for (ExprRef Op : E->operands())
    if (containsNullDeref(Op))
      return true;
  return false;
}

bool logic::mentions(ExprRef E, ExprRef Loc) {
  if (E == Loc)
    return true;
  for (ExprRef Op : E->operands())
    if (mentions(Op, Loc))
      return true;
  return false;
}

namespace {

ExprRef rebuild(LogicContext &Ctx, ExprRef E, std::vector<ExprRef> Ops) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return Ctx.intLit(E->intValue());
  case ExprKind::NullLit:
    return Ctx.nullLit();
  case ExprKind::BoolLit:
    return Ctx.boolLit(E->boolValue());
  case ExprKind::Var:
    return Ctx.var(E->name());
  case ExprKind::AddrOf:
    return Ctx.addrOf(Ops[0]);
  case ExprKind::Deref:
    return Ctx.deref(Ops[0]);
  case ExprKind::Field:
    return Ctx.field(Ops[0], E->name());
  case ExprKind::Index:
    return Ctx.index(Ops[0], Ops[1]);
  case ExprKind::Neg:
    return Ctx.neg(Ops[0]);
  case ExprKind::Add:
    return Ctx.add(Ops[0], Ops[1]);
  case ExprKind::Sub:
    return Ctx.sub(Ops[0], Ops[1]);
  case ExprKind::Mul:
    return Ctx.mul(Ops[0], Ops[1]);
  case ExprKind::Div:
    return Ctx.div(Ops[0], Ops[1]);
  case ExprKind::Mod:
    return Ctx.mod(Ops[0], Ops[1]);
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Lt:
  case ExprKind::Le:
  case ExprKind::Gt:
  case ExprKind::Ge:
    return Ctx.cmp(E->kind(), Ops[0], Ops[1]);
  case ExprKind::Not:
    return Ctx.notE(Ops[0]);
  case ExprKind::And:
    return Ctx.andE(std::move(Ops));
  case ExprKind::Or:
    return Ctx.orE(std::move(Ops));
  }
  assert(false && "unhandled expression kind");
  return nullptr;
}

ExprRef substImpl(LogicContext &Ctx, ExprRef E,
                  const std::vector<std::pair<ExprRef, ExprRef>> &Map) {
  for (const auto &[From, To] : Map)
    if (E == From)
      return To;
  if (E->numOperands() == 0)
    return rebuild(Ctx, E, {});
  std::vector<ExprRef> Ops;
  Ops.reserve(E->numOperands());
  for (ExprRef Op : E->operands())
    Ops.push_back(substImpl(Ctx, Op, Map));
  return rebuild(Ctx, E, std::move(Ops));
}

} // namespace

ExprRef logic::substitute(LogicContext &Ctx, ExprRef E, ExprRef From,
                          ExprRef To) {
  return substImpl(Ctx, E, {{From, To}});
}

ExprRef logic::substituteAll(
    LogicContext &Ctx, ExprRef E,
    const std::vector<std::pair<ExprRef, ExprRef>> &Map) {
  return substImpl(Ctx, E, Map);
}

ExprRef logic::clone(LogicContext &Ctx, ExprRef E) {
  return substImpl(Ctx, E, {});
}

support::Fingerprint logic::structuralFingerprint(ExprRef E) {
  // Post-order over the DAG with memoization on the interned node, so
  // shared subterms are hashed once and deep Not/And chains cannot
  // overflow the stack.
  std::unordered_map<ExprRef, support::Fingerprint> Memo;
  struct Frame {
    ExprRef E;
    unsigned NextOp;
  };
  std::vector<Frame> Stack;
  Stack.push_back({E, 0});
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (Memo.count(F.E)) {
      Stack.pop_back();
      continue;
    }
    if (F.NextOp < F.E->numOperands()) {
      ExprRef Child = F.E->op(F.NextOp++);
      if (!Memo.count(Child))
        Stack.push_back({Child, 0});
      continue;
    }
    support::Fingerprint FP;
    FP.combine(0x534c414d31ull); // Domain tag ("SLAM1"): versions the scheme.
    FP.combine(static_cast<uint64_t>(F.E->kind()));
    if (F.E->kind() == ExprKind::IntLit || F.E->kind() == ExprKind::BoolLit)
      FP.combine(static_cast<uint64_t>(F.E->intValue()));
    if (!F.E->name().empty())
      FP.combine(support::hashBytes(F.E->name()));
    FP.combine(F.E->numOperands());
    for (ExprRef Op : F.E->operands()) {
      const support::Fingerprint &C = Memo.at(Op);
      FP.combine(C.Hi);
      FP.combine(C.Lo);
    }
    Memo.emplace(F.E, FP);
    Stack.pop_back();
  }
  return Memo.at(E);
}
