//===- ExprUtils.h - Queries and substitution over expressions --*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural queries the abstraction algorithm needs: the variables
/// referenced by an expression (vars(e)), the variables dereferenced by it
/// (drfs(e)), the set of locations mentioned (Section 4.2), and capture-free
/// structural substitution phi[e/x].
///
//===----------------------------------------------------------------------===//

#ifndef LOGIC_EXPRUTILS_H
#define LOGIC_EXPRUTILS_H

#include "logic/Expr.h"
#include "support/Fingerprint.h"

#include <set>
#include <string>
#include <vector>

namespace slam {
namespace logic {

/// Names of all variables referenced anywhere in \p E (the paper's
/// vars(e)).
std::set<std::string> collectVars(ExprRef E);

/// Names of variables that are dereferenced in \p E — i.e. appear as the
/// pointer operand of a Deref or as the base of an Index (the paper's
/// drfs(e)).
std::set<std::string> collectDerefedVars(ExprRef E);

/// All location subterms of \p E (variables, derefs, fields, indices),
/// in first-occurrence order, each listed once. Includes nested
/// locations: `p->val > v` yields {p->val, p, v}.
std::vector<ExprRef> collectLocations(ExprRef E);

/// True if location \p Loc occurs as a subterm of \p E.
bool mentions(ExprRef E, ExprRef Loc);

/// True if \p E dereferences the NULL constant anywhere (*NULL,
/// NULL->f, NULL[i]). Such terms are undefined in C; the abstraction
/// invalidates predicates whose weakest precondition contains one
/// (Section 2.1's "invalidated by unknown()").
bool containsNullDeref(ExprRef E);

/// Structural substitution: every occurrence of subterm \p From in \p E
/// is replaced by \p To, rebuilding through the smart constructors (so
/// folding applies). All terms are pure, so this is semantics-preserving
/// capture-free substitution.
ExprRef substitute(LogicContext &Ctx, ExprRef E, ExprRef From, ExprRef To);

/// Applies a parallel substitution (all pairs replaced simultaneously,
/// outermost match wins). Used to translate predicates between caller
/// and callee scopes (Section 4.5).
ExprRef substituteAll(LogicContext &Ctx, ExprRef E,
                      const std::vector<std::pair<ExprRef, ExprRef>> &Map);

/// Rebuilds \p E inside \p Ctx when it was created by another context.
/// (All tools share one context in practice; this supports tests.)
ExprRef clone(LogicContext &Ctx, ExprRef E);

/// A structural 128-bit fingerprint of \p E: a Merkle hash over
/// (kind, integer value, name, child fingerprints). Two structurally
/// equal expressions fingerprint identically in *any* process on *any*
/// platform — unlike hash-consed ids, which are creation-order within
/// one context — so fingerprints are the keys of everything persisted
/// across runs (the on-disk prover cache). Iterative (explicit
/// worklist): weakest preconditions nest tens of thousands of nodes
/// deep. Cost is O(nodes) with sharing-aware memoization per call.
support::Fingerprint structuralFingerprint(ExprRef E);

} // namespace logic
} // namespace slam

#endif // LOGIC_EXPRUTILS_H
