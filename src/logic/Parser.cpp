//===- Parser.cpp - Recursive-descent predicate parser --------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "logic/Parser.h"

#include <cctype>

using namespace slam;
using namespace slam::logic;

namespace {

enum class Tok {
  End,
  Int,
  Ident,
  Null,
  True,
  False,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Arrow,
  Dot,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,
  Amp,
  AmpAmp,
  PipePipe,
  EqEq,
  BangEq,
  Lt,
  Le,
  Gt,
  Ge,
  Error,
};

/// Single-expression lexer + precedence-climbing parser.
class PredParser {
public:
  PredParser(LogicContext &Ctx, std::string_view Text,
             DiagnosticEngine &Diags)
      : Ctx(Ctx), Text(Text), Diags(Diags) {
    advance();
  }

  ExprRef run() {
    ExprRef E = parseOr();
    if (!E)
      return nullptr;
    if (Cur != Tok::End) {
      error("unexpected trailing input in predicate");
      return nullptr;
    }
    return E;
  }

private:
  LogicContext &Ctx;
  std::string_view Text;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  Tok Cur = Tok::End;
  std::string CurText;
  int64_t CurInt = 0;

  void error(const std::string &Message) {
    Diags.error(SourceLoc(1, static_cast<unsigned>(Pos + 1)), Message);
  }

  void advance() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos >= Text.size()) {
      Cur = Tok::End;
      return;
    }
    char C = Text[Pos];
    auto Two = [&](char Next) {
      return Pos + 1 < Text.size() && Text[Pos + 1] == Next;
    };
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      CurInt = std::stoll(std::string(Text.substr(Start, Pos - Start)));
      Cur = Tok::Int;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        ++Pos;
      CurText = std::string(Text.substr(Start, Pos - Start));
      if (CurText == "NULL")
        Cur = Tok::Null;
      else if (CurText == "true")
        Cur = Tok::True;
      else if (CurText == "false")
        Cur = Tok::False;
      else
        Cur = Tok::Ident;
      return;
    }
    switch (C) {
    case '(':
      Cur = Tok::LParen;
      break;
    case ')':
      Cur = Tok::RParen;
      break;
    case '[':
      Cur = Tok::LBracket;
      break;
    case ']':
      Cur = Tok::RBracket;
      break;
    case '+':
      Cur = Tok::Plus;
      break;
    case '-':
      if (Two('>')) {
        Cur = Tok::Arrow;
        ++Pos;
      } else {
        Cur = Tok::Minus;
      }
      break;
    case '.':
      Cur = Tok::Dot;
      break;
    case '*':
      Cur = Tok::Star;
      break;
    case '/':
      Cur = Tok::Slash;
      break;
    case '%':
      Cur = Tok::Percent;
      break;
    case '!':
      if (Two('=')) {
        Cur = Tok::BangEq;
        ++Pos;
      } else {
        Cur = Tok::Bang;
      }
      break;
    case '&':
      if (Two('&')) {
        Cur = Tok::AmpAmp;
        ++Pos;
      } else {
        Cur = Tok::Amp;
      }
      break;
    case '|':
      if (Two('|')) {
        Cur = Tok::PipePipe;
        ++Pos;
      } else {
        Cur = Tok::Error;
      }
      break;
    case '=':
      if (Two('=')) {
        Cur = Tok::EqEq;
        ++Pos;
      } else {
        Cur = Tok::Error;
      }
      break;
    case '<':
      if (Two('=')) {
        Cur = Tok::Le;
        ++Pos;
      } else {
        Cur = Tok::Lt;
      }
      break;
    case '>':
      if (Two('=')) {
        Cur = Tok::Ge;
        ++Pos;
      } else {
        Cur = Tok::Gt;
      }
      break;
    default:
      Cur = Tok::Error;
      break;
    }
    ++Pos;
  }

  bool accept(Tok T) {
    if (Cur != T)
      return false;
    advance();
    return true;
  }

  ExprRef parseOr() {
    ExprRef L = parseAnd();
    if (!L)
      return nullptr;
    while (accept(Tok::PipePipe)) {
      ExprRef R = parseAnd();
      if (!R)
        return nullptr;
      L = Ctx.orE(L, R);
    }
    return L;
  }

  ExprRef parseAnd() {
    ExprRef L = parseCmp();
    if (!L)
      return nullptr;
    while (accept(Tok::AmpAmp)) {
      ExprRef R = parseCmp();
      if (!R)
        return nullptr;
      L = Ctx.andE(L, R);
    }
    return L;
  }

  ExprRef parseCmp() {
    ExprRef L = parseAdd();
    if (!L)
      return nullptr;
    ExprKind Kind;
    switch (Cur) {
    case Tok::EqEq:
      Kind = ExprKind::Eq;
      break;
    case Tok::BangEq:
      Kind = ExprKind::Ne;
      break;
    case Tok::Lt:
      Kind = ExprKind::Lt;
      break;
    case Tok::Le:
      Kind = ExprKind::Le;
      break;
    case Tok::Gt:
      Kind = ExprKind::Gt;
      break;
    case Tok::Ge:
      Kind = ExprKind::Ge;
      break;
    default:
      return L;
    }
    advance();
    ExprRef R = parseAdd();
    if (!R)
      return nullptr;
    return Ctx.cmp(Kind, L, R);
  }

  ExprRef parseAdd() {
    ExprRef L = parseMul();
    if (!L)
      return nullptr;
    while (Cur == Tok::Plus || Cur == Tok::Minus) {
      bool IsAdd = Cur == Tok::Plus;
      advance();
      ExprRef R = parseMul();
      if (!R)
        return nullptr;
      L = IsAdd ? Ctx.add(L, R) : Ctx.sub(L, R);
    }
    return L;
  }

  ExprRef parseMul() {
    ExprRef L = parseUnary();
    if (!L)
      return nullptr;
    while (Cur == Tok::Star || Cur == Tok::Slash || Cur == Tok::Percent) {
      Tok Op = Cur;
      advance();
      ExprRef R = parseUnary();
      if (!R)
        return nullptr;
      if (Op == Tok::Star)
        L = Ctx.mul(L, R);
      else if (Op == Tok::Slash)
        L = Ctx.div(L, R);
      else
        L = Ctx.mod(L, R);
    }
    return L;
  }

  ExprRef parseUnary() {
    if (accept(Tok::Bang)) {
      ExprRef E = parseUnary();
      if (!E)
        return nullptr;
      if (!E->isFormula()) {
        // C-style !e over an integer term means e == 0.
        return Ctx.eq(E, Ctx.intLit(0));
      }
      return Ctx.notE(E);
    }
    if (accept(Tok::Minus)) {
      ExprRef E = parseUnary();
      return E ? Ctx.neg(E) : nullptr;
    }
    if (accept(Tok::Star)) {
      ExprRef E = parseUnary();
      return E ? Ctx.deref(E) : nullptr;
    }
    if (accept(Tok::Amp)) {
      ExprRef E = parseUnary();
      if (!E)
        return nullptr;
      if (!E->isLocation()) {
        error("operand of & must be a location");
        return nullptr;
      }
      return Ctx.addrOf(E);
    }
    return parsePostfix();
  }

  ExprRef parsePostfix() {
    ExprRef E = parsePrimary();
    if (!E)
      return nullptr;
    for (;;) {
      if (accept(Tok::Arrow)) {
        if (Cur != Tok::Ident) {
          error("expected field name after '->'");
          return nullptr;
        }
        E = Ctx.field(Ctx.deref(E), CurText);
        advance();
        continue;
      }
      if (accept(Tok::Dot)) {
        if (Cur != Tok::Ident) {
          error("expected field name after '.'");
          return nullptr;
        }
        E = Ctx.field(E, CurText);
        advance();
        continue;
      }
      if (accept(Tok::LBracket)) {
        ExprRef Idx = parseOr();
        if (!Idx)
          return nullptr;
        if (!accept(Tok::RBracket)) {
          error("expected ']'");
          return nullptr;
        }
        E = Ctx.index(E, Idx);
        continue;
      }
      return E;
    }
  }

  ExprRef parsePrimary() {
    switch (Cur) {
    case Tok::Int: {
      int64_t V = CurInt;
      advance();
      return Ctx.intLit(V);
    }
    case Tok::Null:
      advance();
      return Ctx.nullLit();
    case Tok::True:
      advance();
      return Ctx.trueE();
    case Tok::False:
      advance();
      return Ctx.falseE();
    case Tok::Ident: {
      std::string Name = CurText;
      advance();
      return Ctx.var(Name);
    }
    case Tok::LParen: {
      advance();
      ExprRef E = parseOr();
      if (!E)
        return nullptr;
      if (!accept(Tok::RParen)) {
        error("expected ')'");
        return nullptr;
      }
      return E;
    }
    default:
      error("expected an expression");
      return nullptr;
    }
  }
};

} // namespace

ExprRef logic::parseExpr(LogicContext &Ctx, std::string_view Text,
                         DiagnosticEngine &Diags) {
  return PredParser(Ctx, Text, Diags).run();
}
