//===- Parser.h - Parse predicate expressions -------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the predicate language: pure C boolean expressions with no
/// function calls (Section 4). This is what appears in predicate input
/// files such as `curr->val > v` in Figure 1.
///
//===----------------------------------------------------------------------===//

#ifndef LOGIC_PARSER_H
#define LOGIC_PARSER_H

#include "logic/Expr.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace slam {
namespace logic {

/// Parses one C-like expression from \p Text. Returns nullptr after
/// reporting to \p Diags when the text is malformed or has trailing
/// garbage.
ExprRef parseExpr(LogicContext &Ctx, std::string_view Text,
                  DiagnosticEngine &Diags);

} // namespace logic
} // namespace slam

#endif // LOGIC_PARSER_H
