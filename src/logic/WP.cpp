//===- WP.cpp - Morris' axiom with alias pruning --------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "logic/WP.h"

#include "logic/ExprUtils.h"

#include <algorithm>

using namespace slam;
using namespace slam::logic;

ExprRef logic::substituteLoc(LogicContext &Ctx, ExprRef E, ExprRef From,
                             ExprRef To) {
  if (E == From)
    return To;
  // &From is invariant under an assignment to From itself; occurrences of
  // From strictly inside the operand still determine the address and are
  // substituted (e.g. &(p->f) does change when p changes).
  if (E->kind() == ExprKind::AddrOf && E->op(0) == From)
    return E;
  if (E->numOperands() == 0)
    return E;
  bool Changed = false;
  std::vector<ExprRef> Ops;
  Ops.reserve(E->numOperands());
  for (ExprRef Op : E->operands()) {
    ExprRef New = substituteLoc(Ctx, Op, From, To);
    Changed |= New != Op;
    Ops.push_back(New);
  }
  if (!Changed)
    return E;
  // Rebuild through substituteAll's machinery by delegating to the
  // generic rebuilder: substituting nothing reconstructs with new ops.
  // We inline the relevant cases instead for clarity.
  switch (E->kind()) {
  case ExprKind::AddrOf:
    return Ctx.addrOf(Ops[0]);
  case ExprKind::Deref:
    return Ctx.deref(Ops[0]);
  case ExprKind::Field:
    return Ctx.field(Ops[0], E->name());
  case ExprKind::Index:
    return Ctx.index(Ops[0], Ops[1]);
  case ExprKind::Neg:
    return Ctx.neg(Ops[0]);
  case ExprKind::Add:
    return Ctx.add(Ops[0], Ops[1]);
  case ExprKind::Sub:
    return Ctx.sub(Ops[0], Ops[1]);
  case ExprKind::Mul:
    return Ctx.mul(Ops[0], Ops[1]);
  case ExprKind::Div:
    return Ctx.div(Ops[0], Ops[1]);
  case ExprKind::Mod:
    return Ctx.mod(Ops[0], Ops[1]);
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Lt:
  case ExprKind::Le:
  case ExprKind::Gt:
  case ExprKind::Ge:
    return Ctx.cmp(E->kind(), Ops[0], Ops[1]);
  case ExprKind::Not:
    return Ctx.notE(Ops[0]);
  case ExprKind::And:
    return Ctx.andE(std::move(Ops));
  case ExprKind::Or:
    return Ctx.orE(std::move(Ops));
  default:
    assert(false && "leaf kinds handled above");
    return E;
  }
}

ExprRef WPEngine::guardEq(ExprRef A, ExprRef B) const {
  if (A == B)
    return Ctx.trueE();
  // Same array, symbolic indices: the cells coincide iff the indices do.
  if (A->kind() == ExprKind::Index && B->kind() == ExprKind::Index &&
      A->op(0) == B->op(0))
    return Ctx.eq(A->op(1), B->op(1));
  // Fields with the same name coincide iff their bases do.
  if (A->kind() == ExprKind::Field && B->kind() == ExprKind::Field &&
      A->name() == B->name())
    return guardEq(A->op(0), B->op(0));
  // General case: compare addresses. addrOf folds &*p to p, so
  // *p vs. x renders as p == &x and *p vs. *q as p == q.
  return Ctx.eq(Ctx.addrOf(A), Ctx.addrOf(B));
}

ExprRef WPEngine::assignment(ExprRef Lhs, ExprRef Rhs, ExprRef Phi) const {
  assert(Lhs->isLocation() && "assignment target must be a location");

  // Locations mentioned in phi, largest first so that enclosing
  // locations (p->val) are resolved before their sub-locations (p).
  std::vector<ExprRef> Locs = collectLocations(Phi);
  std::stable_sort(Locs.begin(), Locs.end(),
                   [](ExprRef A, ExprRef B) { return A->size() > B->size(); });

  ExprRef Result = Phi;
  for (ExprRef Y : Locs) {
    switch (Alias.alias(Lhs, Y)) {
    case AliasResult::NoAlias:
      break; // This pair's disjunct is pruned entirely.
    case AliasResult::MustAlias:
      Result = substituteLoc(Ctx, Result, Y, Rhs);
      break;
    case AliasResult::MayAlias: {
      ExprRef G = guardEq(Lhs, Y);
      ExprRef Then = Ctx.andE(G, substituteLoc(Ctx, Result, Y, Rhs));
      ExprRef Else = Ctx.andE(Ctx.notE(G), Result);
      Result = Ctx.orE(Then, Else);
      break;
    }
    }
  }
  return Result;
}
