//===- WP.h - Weakest liberal preconditions ---------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Weakest liberal precondition of assignments (Sections 4.1 and 4.2).
/// For a scalar target, WP(x = e, phi) = phi[e/x]. In the presence of
/// pointers we adapt Morris' general axiom of assignment: for each
/// location y mentioned in phi that may alias the target x,
///
///   phi[x,e,y] = (&x == &y && phi[e/y]) || (&x != &y && phi)
///
/// and WP is the sequential composition over all such y. The alias
/// oracle prunes the disjuncts: no-alias pairs are skipped outright and
/// must-alias pairs substitute unconditionally, which is the optimization
/// the paper attributes to Das's points-to analysis.
///
//===----------------------------------------------------------------------===//

#ifndef LOGIC_WP_H
#define LOGIC_WP_H

#include "logic/AliasOracle.h"
#include "logic/Expr.h"

namespace slam {
namespace logic {

/// Computes weakest preconditions against a fixed alias oracle.
class WPEngine {
public:
  WPEngine(LogicContext &Ctx, const AliasOracle &Alias)
      : Ctx(Ctx), Alias(Alias) {}

  /// WP of the assignment `Lhs = Rhs;` with respect to \p Phi.
  /// \p Lhs must be a location.
  ExprRef assignment(ExprRef Lhs, ExprRef Rhs, ExprRef Phi) const;

  /// The formula meaning &A == &B, specialized so the prover can decide
  /// it: same-array index guards become index equalities, *p vs. x
  /// becomes p == &x, and so on.
  ExprRef guardEq(ExprRef A, ExprRef B) const;

private:
  LogicContext &Ctx;
  const AliasOracle &Alias;
};

/// Substitution that respects address-of: occurrences of the location
/// \p From are replaced by \p To everywhere except when From is the
/// entire operand of an AddrOf (the address of a cell is unaffected by
/// assigning to the cell).
ExprRef substituteLoc(LogicContext &Ctx, ExprRef E, ExprRef From, ExprRef To);

} // namespace logic
} // namespace slam

#endif // LOGIC_WP_H
