//===- CacheBackend.cpp - The append-only prover-result log ---------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "prover/CacheBackend.h"

#include "prover/Prover.h"
#include "support/Json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace slam;
using namespace slam::prover;

namespace {

std::string headerLine() {
  std::string Doc;
  json::Writer W(Doc);
  W.beginObject();
  W.kv("format", FileCacheBackend::formatName());
  W.kv("version", FileCacheBackend::FormatVersion);
  W.endObject();
  return Doc;
}

/// Header validation without a general JSON parser: the line must be a
/// valid JSON document and contain exactly the expected format/version
/// pair. We compare against the canonical emission (the writer is the
/// only thing that ever produces headers), accepting it byte for byte.
bool isCurrentHeader(const std::string &Line) {
  return json::isValid(Line) && Line == headerLine();
}

} // namespace

FileCacheBackend::FileCacheBackend(std::string Path)
    : Path(std::move(Path)) {
  load();
}

FileCacheBackend::~FileCacheBackend() {
  std::string Err;
  if (!flush(&Err))
    std::fprintf(stderr, "prover-cache: %s\n", Err.c_str());
}

void FileCacheBackend::load() {
  std::ifstream In(Path);
  if (!In)
    return; // No file yet: a normal cold start; flush will create it.

  auto Warn = [&](const char *Reason) {
    if (LoadOk) // One warning per load, for the first damage found.
      std::fprintf(stderr,
                   "prover-cache: ignoring '%s': %s (proceeding with a "
                   "cold cache)\n",
                   Path.c_str(), Reason);
    LoadOk = false;
    // Appending after damage would strand the new entries behind the
    // torn line; the next flush rewrites the file whole instead (which
    // also heals it).
    CanAppend = false;
  };

  std::string Line;
  if (!std::getline(In, Line) || !isCurrentHeader(Line)) {
    // Wrong magic or a future/old version: nothing in the body can be
    // trusted to mean what this build thinks it means. Drop it all; the
    // next flush rewrites the file in the current format.
    Warn("missing or unsupported header");
    return;
  }
  CanAppend = true;

  size_t LineNo = 1;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    if (Line.back() == '\r') // getline strips '\n' but not a CRLF's '\r'.
      Line.pop_back();
    // "<32 hex> <+|-> <S|U>" — 36 characters exactly.
    support::Fingerprint FP;
    bool Damaged =
        Line.size() != 36 || Line[32] != ' ' || Line[34] != ' ' ||
        (Line[33] != '+' && Line[33] != '-') ||
        (Line[35] != 'S' && Line[35] != 'U') ||
        !support::Fingerprint::parseHex(std::string_view(Line).substr(0, 32),
                                        FP);
    if (Damaged) {
      // A torn tail (crash mid-append) or hand-editing. The prefix
      // already loaded is intact entries and stays usable; nothing
      // after the damage is trusted.
      char Reason[64];
      std::snprintf(Reason, sizeof(Reason),
                    "malformed entry at line %zu", LineNo);
      Warn(Reason);
      return;
    }
    Key K{FP, Line[33] == '+'};
    Satisfiability V =
        Line[35] == 'S' ? Satisfiability::Sat : Satisfiability::Unsat;
    auto [It, Inserted] = Entries.emplace(K, V);
    if (!Inserted && It->second != V) {
      // The same key with two different answers can only mean file
      // damage (or a fingerprint collision); neither answer can be
      // trusted, so forget the key entirely.
      char Reason[80];
      std::snprintf(Reason, sizeof(Reason),
                    "conflicting results for one fingerprint at line %zu",
                    LineNo);
      Warn(Reason);
      Entries.erase(It);
    }
  }
}

std::optional<Satisfiability>
FileCacheBackend::probe(const support::Fingerprint &FP, bool Positive) {
  std::lock_guard<std::mutex> L(M);
  auto It = Entries.find(Key{FP, Positive});
  if (It == Entries.end())
    return std::nullopt;
  return It->second;
}

void FileCacheBackend::record(const support::Fingerprint &FP, bool Positive,
                              Satisfiability Result) {
  if (Result != Satisfiability::Sat && Result != Satisfiability::Unsat)
    return; // Unknown is a budget artifact, not a persistable fact.
  std::lock_guard<std::mutex> L(M);
  Key K{FP, Positive};
  auto [It, Inserted] = Entries.emplace(K, Result);
  if (!Inserted)
    return; // Already loaded or recorded; append-only log stays minimal.
  (void)It;
  Pending.push_back(K);
}

bool FileCacheBackend::flush(std::string *Err) {
  std::lock_guard<std::mutex> L(M);
  if (Pending.empty() && CanAppend)
    return true; // Nothing new and the file is already valid.

  std::ostringstream Body;
  auto WriteEntry = [&](const Key &K) {
    Body << K.FP.hex() << ' ' << (K.Positive ? '+' : '-') << ' '
         << (Entries.at(K) == Satisfiability::Sat ? 'S' : 'U') << '\n';
  };

  std::ofstream Out;
  if (CanAppend) {
    Out.open(Path, std::ios::app);
    if (Out)
      for (const Key &K : Pending)
        WriteEntry(K);
  } else {
    // The file was absent or untrusted: rewrite it whole in the
    // current format from the entries we believe.
    Out.open(Path, std::ios::trunc);
    if (Out) {
      Body << headerLine() << '\n';
      for (const auto &[K, V] : Entries) {
        (void)V;
        WriteEntry(K);
      }
    }
  }
  if (!Out) {
    if (Err)
      *Err = "cannot write '" + Path + "'";
    return false;
  }
  Out << Body.str();
  Out.flush();
  if (!Out) {
    if (Err)
      *Err = "short write to '" + Path + "'";
    return false;
  }
  Pending.clear();
  CanAppend = true;
  return true;
}

size_t FileCacheBackend::loadedEntries() const {
  std::lock_guard<std::mutex> L(M);
  return Entries.size() - Pending.size();
}

size_t FileCacheBackend::pendingEntries() const {
  std::lock_guard<std::mutex> L(M);
  return Pending.size();
}
