//===- CacheBackend.h - Persistent prover-result storage --------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence seam under the in-memory SharedProverCache. Prover
/// calls dominate abstraction cost (Section 5.2), and a SLAM re-run on
/// the same input re-decides the same queries; a CacheBackend lets those
/// answers survive the process. The layering is strict:
///
///     Prover (private per worker)
///       -> SharedProverCache (sharded, in-memory, per run)
///            -> CacheBackend (persistent, keyed on structural
///               fingerprints — ids are not stable across runs)
///
/// The backend is consulted only on an in-memory miss and appended to
/// only when a genuinely new result is published, so a warm run does no
/// redundant writes. Only definite answers (Sat/Unsat) are stored:
/// Unknown encodes an exhausted search budget, not a fact.
///
/// FileCacheBackend implements the seam as a versioned, append-only
/// text log:
///
///     {"format":"slam-prover-cache","version":1}
///     <32-hex-char fingerprint> <+|-> <S|U>
///     ...
///
/// The JSON header (written with json::Writer, validated with
/// json::isValid) carries the format version; `+`/`-` is the query
/// polarity relative to the negation-stripped base formula; `S`/`U` is
/// Sat/Unsat. A corrupt or version-mismatched file is *never* fatal and
/// never trusted: the loader warns, drops everything it cannot parse,
/// and the run proceeds cold (a truncated tail — the expected
/// crash-mid-flush artifact — keeps its intact prefix).
///
//===----------------------------------------------------------------------===//

#ifndef PROVER_CACHEBACKEND_H
#define PROVER_CACHEBACKEND_H

#include "support/Fingerprint.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace slam {
namespace prover {

enum class Satisfiability; // From Prover.h.

/// Abstract persistent result store. Implementations must be
/// thread-safe: the shared cache probes and records from every worker.
class CacheBackend {
public:
  virtual ~CacheBackend() = default;

  /// Looks up the stored result for (\p FP, \p Positive); nullopt when
  /// the backend has no definite answer.
  virtual std::optional<Satisfiability>
  probe(const support::Fingerprint &FP, bool Positive) = 0;

  /// Records a freshly-decided result. Unknown results are ignored.
  virtual void record(const support::Fingerprint &FP, bool Positive,
                      Satisfiability Result) = 0;

  /// Persists anything recorded since load/last flush. Returns false
  /// with \p Err set when the store cannot be written.
  virtual bool flush(std::string *Err) = 0;
};

/// The append-only log file backend behind `--prover-cache <path>`.
class FileCacheBackend : public CacheBackend {
public:
  /// Binds to \p Path and loads any existing log. A missing file is a
  /// normal cold start; a corrupt one warns on stderr (once, naming the
  /// path and the reason) and proceeds cold.
  explicit FileCacheBackend(std::string Path);
  ~FileCacheBackend() override; // Flushes; load/flush warnings on stderr.

  std::optional<Satisfiability> probe(const support::Fingerprint &FP,
                                      bool Positive) override;
  void record(const support::Fingerprint &FP, bool Positive,
              Satisfiability Result) override;
  bool flush(std::string *Err) override;

  /// Entries answered from / resident in the loaded log.
  size_t loadedEntries() const;
  /// Entries recorded this run and not yet flushed.
  size_t pendingEntries() const;
  /// False when the file existed but could not be (fully) parsed.
  bool loadedCleanly() const { return LoadOk; }

  /// The current on-disk format version.
  static constexpr int FormatVersion = 1;
  /// The header's "format" value.
  static const char *formatName() { return "slam-prover-cache"; }

private:
  struct Key {
    support::Fingerprint FP;
    bool Positive;
    bool operator<(const Key &O) const {
      if (!(FP == O.FP))
        return FP < O.FP;
      return Positive < O.Positive;
    }
  };

  void load();

  std::string Path;
  mutable std::mutex M;
  /// Loaded + recorded entries (probe source).
  std::map<Key, Satisfiability> Entries;
  /// Keys recorded since the last flush, in record order (append log).
  std::vector<Key> Pending;
  /// The file parsed without damage (missing counts as clean).
  bool LoadOk = true;
  /// The file existed and had a valid header (flush may append);
  /// otherwise flush rewrites the file from scratch.
  bool CanAppend = false;
};

} // namespace prover
} // namespace slam

#endif // PROVER_CACHEBACKEND_H
