//===- CongruenceClosure.cpp ----------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "prover/CongruenceClosure.h"

#include <deque>

using namespace slam;
using namespace slam::prover;
using logic::ExprKind;
using logic::ExprRef;

int CongruenceClosure::addTerm(ExprRef E) {
  auto It = Ids.find(E);
  if (It != Ids.end())
    return It->second;

  std::vector<int> Kids;
  Kids.reserve(E->numOperands());
  for (ExprRef Op : E->operands())
    Kids.push_back(addTerm(Op));

  int Id = static_cast<int>(Exprs.size());
  Exprs.push_back(E);
  Children.push_back(Kids);
  Parent.push_back(Id);
  Rank.push_back(0);
  Uses.emplace_back();
  Ids.emplace(E, Id);

  for (int Kid : Kids)
    Uses[find(Kid)].push_back(Id);

  // Congruence at creation: if a term with the same signature already
  // exists, the two are equal.
  std::string Sig = signatureOf(Id);
  auto [SigIt, Inserted] = Signatures.emplace(Sig, Id);
  if (!Inserted && !areEqual(SigIt->second, Id))
    mergeClasses(SigIt->second, Id);
  return Id;
}

int CongruenceClosure::find(int A) {
  while (Parent[A] != A) {
    Parent[A] = Parent[Parent[A]];
    A = Parent[A];
  }
  return A;
}

std::string CongruenceClosure::signatureOf(int Id) {
  ExprRef E = Exprs[Id];
  std::string Sig = std::to_string(static_cast<int>(E->kind()));
  Sig += '#';
  if (E->kind() == ExprKind::IntLit || E->kind() == ExprKind::BoolLit)
    Sig += std::to_string(E->intValue());
  Sig += E->name();
  // Leaves are their own unique signatures; keying them by expression id
  // keeps distinct variables in distinct classes.
  if (Children[Id].empty() && E->kind() != ExprKind::IntLit &&
      E->kind() != ExprKind::NullLit && E->kind() != ExprKind::BoolLit)
    Sig += "@" + std::to_string(Id);
  for (int Kid : Children[Id]) {
    Sig += ',';
    Sig += std::to_string(find(Kid));
  }
  return Sig;
}

bool CongruenceClosure::mergeClasses(int A, int B) {
  std::deque<std::pair<int, int>> Pending;
  Pending.emplace_back(A, B);

  while (!Pending.empty()) {
    auto [X, Y] = Pending.front();
    Pending.pop_front();
    int RX = find(X), RY = find(Y);
    if (RX == RY)
      continue;
    if (Rank[RX] < Rank[RY])
      std::swap(RX, RY);
    else if (Rank[RX] == Rank[RY])
      ++Rank[RX];

    // RY joins RX. Any term using a member of RY changes signature.
    std::vector<int> Affected = std::move(Uses[RY]);
    Uses[RY].clear();
    for (int Term : Affected)
      Signatures.erase(signatureOf(Term));
    Parent[RY] = RX;
    for (int Term : Affected) {
      std::string Sig = signatureOf(Term);
      auto [It, Inserted] = Signatures.emplace(Sig, Term);
      if (!Inserted && !areEqual(It->second, Term))
        Pending.emplace_back(It->second, Term);
      Uses[RX].push_back(Term);
    }
  }
  return checkDisequalities();
}

bool CongruenceClosure::checkDisequalities() {
  for (const auto &[A, B] : Disequalities) {
    if (find(A) == find(B)) {
      Conflict = true;
      return false;
    }
  }
  return true;
}

bool CongruenceClosure::assertEqual(int A, int B) {
  if (Conflict)
    return false;
  if (find(A) == find(B))
    return checkDisequalities();
  return mergeClasses(A, B);
}

bool CongruenceClosure::assertDisequal(int A, int B) {
  if (Conflict)
    return false;
  Disequalities.emplace_back(A, B);
  if (find(A) == find(B)) {
    Conflict = true;
    return false;
  }
  return true;
}
