//===- CongruenceClosure.h - EUF decision procedure -------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Congruence closure over uninterpreted terms — the equality half of the
/// Nelson–Oppen combination (Section 4.1 relies on a prover for the
/// theory of equality with uninterpreted functions plus linear
/// arithmetic). Terms are logic::Expr nodes; every operator (including
/// the arithmetic ones, which the Simplex side interprets) is treated as
/// an uninterpreted function here, which is sound and lets congruence
/// derive facts like p == q  ==>  p->f == q->f — exactly the
/// contrapositive aliasing rule of the paper's footnote 3.
///
//===----------------------------------------------------------------------===//

#ifndef PROVER_CONGRUENCECLOSURE_H
#define PROVER_CONGRUENCECLOSURE_H

#include "logic/Expr.h"

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace slam {
namespace prover {

/// Union-find based congruence closure with use-lists.
class CongruenceClosure {
public:
  /// Registers \p E (and its subterms) and returns its node id. Adding
  /// the same expression twice returns the same id.
  int addTerm(logic::ExprRef E);

  /// Asserts A == B and propagates congruence. Returns false if this
  /// contradicts an asserted disequality.
  bool assertEqual(int A, int B);

  /// Asserts A != B. Returns false if A and B are already equal.
  bool assertDisequal(int A, int B);

  bool areEqual(int A, int B) { return find(A) == find(B); }

  /// Representative node id of A's class.
  int find(int A);

  int numTerms() const { return static_cast<int>(Exprs.size()); }

  logic::ExprRef exprOf(int Id) const { return Exprs[Id]; }

  /// True if some asserted disequality has been violated.
  bool inConflict() const { return Conflict; }

private:
  std::string signatureOf(int Id);
  bool mergeClasses(int A, int B);
  bool checkDisequalities();

  std::vector<logic::ExprRef> Exprs;
  std::vector<std::vector<int>> Children;
  std::vector<int> Parent; // Union-find parent links.
  std::vector<int> Rank;
  /// Terms that have a child in a given class representative.
  std::vector<std::vector<int>> Uses;
  std::unordered_map<logic::ExprRef, int> Ids;
  std::map<std::string, int> Signatures;
  std::vector<std::pair<int, int>> Disequalities;
  bool Conflict = false;
};

} // namespace prover
} // namespace slam

#endif // PROVER_CONGRUENCECLOSURE_H
