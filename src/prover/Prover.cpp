//===- Prover.cpp - Lazy SMT over the predicate logic ---------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "prover/Prover.h"

#include "prover/Sat.h"
#include "prover/Theory.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cstdio>
#include <map>

using namespace slam;
using namespace slam::prover;
using logic::ExprKind;
using logic::ExprRef;

namespace {

/// Orders atoms by their stable hash-consed id rather than by pointer,
/// so the skeleton's variable numbering (and with it the enumeration
/// order of candidate models) is deterministic within a run.
struct IdLess {
  bool operator()(ExprRef A, ExprRef B) const { return A->id() < B->id(); }
};

/// Tseitin encoder from formulas to CNF over atom variables.
///
/// encode() is an explicit-worklist post-order walk: the weakest
/// preconditions of long statement sequences (and especially the
/// enforce-invariant conjunctions) nest Not/And chains thousands of
/// nodes deep, which overflowed the stack in the naive recursive
/// formulation. The iterative walk visits children left to right and
/// emits clauses at the same points the recursion did, so the produced
/// CNF (variable numbering included) is identical.
class SkeletonEncoder {
public:
  explicit SkeletonEncoder(SatSolver &Solver) : Solver(Solver) {}

  /// Returns the literal representing \p E.
  int encode(ExprRef Root) {
    struct Frame {
      ExprRef E;
      size_t NextOp;         // Next child to descend into.
      std::vector<int> Lits; // Completed children's literals (And/Or).
    };
    std::vector<Frame> Stack;
    Stack.push_back({Root, 0, {}});
    int Result = 0; // Literal of the most recently completed subtree.
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      switch (F.E->kind()) {
      case ExprKind::BoolLit:
        Result = F.E->boolValue() ? constantTrue() : -constantTrue();
        Stack.pop_back();
        continue;
      case ExprKind::Not:
        if (F.NextOp == 0) {
          F.NextOp = 1;
          Stack.push_back({F.E->op(0), 0, {}});
        } else {
          Result = -Result;
          Stack.pop_back();
        }
        continue;
      case ExprKind::And:
      case ExprKind::Or: {
        if (F.NextOp > 0)
          F.Lits.push_back(Result); // Collect the child just finished.
        if (F.NextOp < F.E->numOperands()) {
          ExprRef Child = F.E->op(F.NextOp++);
          Stack.push_back({Child, 0, {}});
          continue;
        }
        bool IsAnd = F.E->kind() == ExprKind::And;
        int Aux = Solver.newVar() + 1;
        std::vector<int> Big;
        Big.push_back(IsAnd ? Aux : -Aux);
        for (int Lit : F.Lits) {
          Solver.addClause(IsAnd ? std::vector<int>{-Aux, Lit}
                                 : std::vector<int>{Aux, -Lit});
          Big.push_back(IsAnd ? -Lit : Lit);
        }
        Solver.addClause(std::move(Big));
        Result = Aux;
        Stack.pop_back();
        continue;
      }
      default:
        assert(logic::isCmpKind(F.E->kind()) &&
               "formula leaf must be an atom");
        Result = atomLit(F.E);
        Stack.pop_back();
        continue;
      }
    }
    return Result;
  }

  const std::map<ExprRef, int, IdLess> &atoms() const { return Atoms; }

private:
  int constantTrue() {
    if (TrueVar < 0) {
      TrueVar = Solver.newVar();
      Solver.addClause({TrueVar + 1});
    }
    return TrueVar + 1;
  }

  int atomLit(ExprRef Atom) {
    auto It = Atoms.find(Atom);
    if (It != Atoms.end())
      return It->second + 1;
    int Var = Solver.newVar();
    Atoms.emplace(Atom, Var);
    return Var + 1;
  }

  SatSolver &Solver;
  std::map<ExprRef, int, IdLess> Atoms;
  int TrueVar = -1;
};

/// Greedy unsat-core minimization: drop literals whose removal keeps the
/// conjunction unsatisfiable. Produces much stronger blocking clauses
/// than blocking the full model.
std::vector<Literal> minimizeCore(std::vector<Literal> Core) {
  if (Core.size() > 24)
    return Core; // Too expensive to shrink; block the full model.
  for (size_t I = 0; I < Core.size();) {
    std::vector<Literal> Without;
    Without.reserve(Core.size() - 1);
    for (size_t J = 0; J != Core.size(); ++J)
      if (J != I)
        Without.push_back(Core[J]);
    if (checkConjunction(Without) == TheoryResult::Unsat)
      Core = std::move(Without);
    else
      ++I;
  }
  return Core;
}

} // namespace

Satisfiability Prover::checkSatUncached(ExprRef Phi) {
  SatSolver Solver;
  SkeletonEncoder Encoder(Solver);
  int Root = Encoder.encode(Phi);
  Solver.addClause({Root});

  bool SawUnknownModel = false;
  for (int Iteration = 0; Iteration != 20000; ++Iteration) {
    if (Solver.solve() == SatSolver::Result::Unsat)
      return SawUnknownModel ? Satisfiability::Unknown : Satisfiability::Unsat;

    std::vector<Literal> Lits;
    Lits.reserve(Encoder.atoms().size());
    for (const auto &[Atom, Var] : Encoder.atoms())
      Lits.push_back({Atom, Solver.modelValue(Var)});

    TheoryResult TR = checkConjunction(Lits);
    if (TR == TheoryResult::Sat)
      return Satisfiability::Sat;
    if (TR == TheoryResult::Unknown)
      SawUnknownModel = true;

    std::vector<Literal> Core =
        TR == TheoryResult::Unsat ? minimizeCore(Lits) : Lits;
    std::vector<int> Blocking;
    Blocking.reserve(Core.size());
    for (const Literal &L : Core) {
      int Var = Encoder.atoms().at(L.Atom);
      Blocking.push_back(L.Positive ? -(Var + 1) : (Var + 1));
    }
    Solver.addClause(std::move(Blocking));
  }
  return Satisfiability::Unknown;
}

Satisfiability Prover::timedCheck(ExprRef Phi) {
  TraceSpan Span("prover.query", "prover");
  Timer T;
  Satisfiability Result = checkSatUncached(Phi);
  double Millis = T.millis();
  uint64_t Micros = static_cast<uint64_t>(Millis * 1000.0);
  if (Stats)
    Stats->observe("prover.query_us", Micros);
  if (Span.enabled()) {
    Span.arg("result", Result == Satisfiability::Sat     ? "sat"
                       : Result == Satisfiability::Unsat ? "unsat"
                                                         : "unknown");
  }
  double SlowMs = trace::slowQueryMillis();
  if (SlowMs >= 0 && Millis >= SlowMs) {
    if (Stats)
      Stats->add("prover.slow_queries");
    // Print the implication being decided when we know it (the cube
    // searches drive everything through implies); fall back to the raw
    // satisfiability query.
    if (CurAntecedent && CurConsequent)
      std::fprintf(stderr, "prover: slow query (%.2f ms): %s => %s\n",
                   Millis, CurAntecedent->str().c_str(),
                   CurConsequent->str().c_str());
    else
      std::fprintf(stderr, "prover: slow query (%.2f ms): sat? %s\n",
                   Millis, Phi->str().c_str());
  }
  return Result;
}

Satisfiability Prover::noteSharedHit(SharedProverCache::Outcome Kind,
                                     Satisfiability Value) {
  const char *Counter = nullptr;
  switch (Kind) {
  case SharedProverCache::Outcome::Hit:
    ++NumCacheHits;
    Counter = "prover.shared_cache_hits";
    break;
  case SharedProverCache::Outcome::WaitHit:
    ++NumCacheHits;
    Counter = "prover.shared_cache_hits";
    if (Stats)
      Stats->add("prover.shared_wait_hits");
    break;
  case SharedProverCache::Outcome::NegHit:
    ++NumNegCacheHits;
    Counter = "prover.neg_cache_hits";
    break;
  case SharedProverCache::Outcome::DiskHit:
    ++NumCacheHits;
    Counter = "prover.disk_cache_hits";
    break;
  case SharedProverCache::Outcome::Miss:
    assert(false && "a miss is not a hit");
    break;
  }
  if (Stats && Counter)
    Stats->add(Counter);
  return Value;
}

Satisfiability Prover::checkSat(ExprRef Phi) {
  assert(Phi->isFormula() && "checkSat takes a formula");
  if (Phi->isTrue())
    return Satisfiability::Sat;
  if (Phi->isFalse())
    return Satisfiability::Unsat;

  if (!CachingEnabled) {
    ++NumCalls;
    if (Stats)
      Stats->add("prover.calls");
    return timedCheck(Phi);
  }

  // Shared (cross-worker) cache path: the shared cache subsumes the
  // private one so hit accounting stays comparable across workers. On
  // a miss the Lookup carries the reserved slot; publishing through it
  // releases it, and any path that skips the publish (a throwing
  // decision procedure) abandons it on destruction rather than leaving
  // waiters parked forever.
  if (Shared) {
    SharedProverCache::Lookup L = Shared->lookupOrReserve(Phi);
    if (L.Kind != SharedProverCache::Outcome::Miss)
      return noteSharedHit(L.Kind, L.Value);
    ++NumCalls;
    if (Stats)
      Stats->add("prover.calls");
    Satisfiability Result = timedCheck(Phi);
    L.Slot.publish(Result);
    return Result;
  }

  // Private cache, negation-canonical: strip a top-level ! and keep one
  // slot per polarity, deriving Sat for one side from Unsat of the
  // other (the validity pairs of the cube search make this common).
  bool Positive = Phi->kind() != ExprKind::Not;
  ExprRef Base = Positive ? Phi : Phi->op(0);
  auto It = Cache.find(Base);
  if (It != Cache.end()) {
    std::optional<Satisfiability> &Own =
        Positive ? It->second.Pos : It->second.Neg;
    if (Own) {
      ++NumCacheHits;
      if (Stats)
        Stats->add("prover.cache_hits");
      return *Own;
    }
    std::optional<Satisfiability> &Opposite =
        Positive ? It->second.Neg : It->second.Pos;
    if (Opposite && *Opposite == Satisfiability::Unsat) {
      Own = Satisfiability::Sat; // !psi Unsat => psi valid => psi Sat.
      ++NumNegCacheHits;
      if (Stats)
        Stats->add("prover.neg_cache_hits");
      return Satisfiability::Sat;
    }
  }

  ++NumCalls;
  if (Stats)
    Stats->add("prover.calls");
  Satisfiability Result = timedCheck(Phi);
  CacheEntry &E = Cache[Base];
  (Positive ? E.Pos : E.Neg) = Result;
  return Result;
}

Validity Prover::implies(ExprRef Antecedent, ExprRef Consequent) {
  CurAntecedent = Antecedent;
  CurConsequent = Consequent;
  ExprRef Query = Ctx.andE(Antecedent, Ctx.notE(Consequent));
  Validity V = [&] {
    switch (checkSat(Query)) {
    case Satisfiability::Unsat:
      return Validity::Valid;
    case Satisfiability::Sat:
      return Validity::Invalid;
    case Satisfiability::Unknown:
      return Validity::Unknown;
    }
    return Validity::Unknown;
  }();
  CurAntecedent = CurConsequent = nullptr;
  return V;
}
