//===- Prover.cpp - Lazy SMT over the predicate logic ---------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "prover/Prover.h"

#include "prover/Sat.h"
#include "prover/Theory.h"

#include <map>

using namespace slam;
using namespace slam::prover;
using logic::ExprKind;
using logic::ExprRef;

namespace {

/// Tseitin encoder from formulas to CNF over atom variables.
class SkeletonEncoder {
public:
  explicit SkeletonEncoder(SatSolver &Solver) : Solver(Solver) {}

  /// Returns the literal representing \p E.
  int encode(ExprRef E) {
    switch (E->kind()) {
    case ExprKind::BoolLit:
      return E->boolValue() ? constantTrue() : -constantTrue();
    case ExprKind::Not:
      return -encode(E->op(0));
    case ExprKind::And:
    case ExprKind::Or: {
      bool IsAnd = E->kind() == ExprKind::And;
      std::vector<int> Lits;
      Lits.reserve(E->numOperands());
      for (ExprRef Op : E->operands())
        Lits.push_back(encode(Op));
      int Aux = Solver.newVar() + 1;
      std::vector<int> Big;
      Big.push_back(IsAnd ? Aux : -Aux);
      for (int Lit : Lits) {
        Solver.addClause(IsAnd ? std::vector<int>{-Aux, Lit}
                               : std::vector<int>{Aux, -Lit});
        Big.push_back(IsAnd ? -Lit : Lit);
      }
      Solver.addClause(std::move(Big));
      return Aux;
    }
    default:
      assert(logic::isCmpKind(E->kind()) && "formula leaf must be an atom");
      return atomLit(E);
    }
  }

  const std::map<ExprRef, int> &atoms() const { return Atoms; }

private:
  int constantTrue() {
    if (TrueVar < 0) {
      TrueVar = Solver.newVar();
      Solver.addClause({TrueVar + 1});
    }
    return TrueVar + 1;
  }

  int atomLit(ExprRef Atom) {
    auto It = Atoms.find(Atom);
    if (It != Atoms.end())
      return It->second + 1;
    int Var = Solver.newVar();
    Atoms.emplace(Atom, Var);
    return Var + 1;
  }

  SatSolver &Solver;
  std::map<ExprRef, int> Atoms;
  int TrueVar = -1;
};

/// Greedy unsat-core minimization: drop literals whose removal keeps the
/// conjunction unsatisfiable. Produces much stronger blocking clauses
/// than blocking the full model.
std::vector<Literal> minimizeCore(std::vector<Literal> Core) {
  if (Core.size() > 24)
    return Core; // Too expensive to shrink; block the full model.
  for (size_t I = 0; I < Core.size();) {
    std::vector<Literal> Without;
    Without.reserve(Core.size() - 1);
    for (size_t J = 0; J != Core.size(); ++J)
      if (J != I)
        Without.push_back(Core[J]);
    if (checkConjunction(Without) == TheoryResult::Unsat)
      Core = std::move(Without);
    else
      ++I;
  }
  return Core;
}

} // namespace

Satisfiability Prover::checkSatUncached(ExprRef Phi) {
  SatSolver Solver;
  SkeletonEncoder Encoder(Solver);
  int Root = Encoder.encode(Phi);
  Solver.addClause({Root});

  bool SawUnknownModel = false;
  for (int Iteration = 0; Iteration != 20000; ++Iteration) {
    if (Solver.solve() == SatSolver::Result::Unsat)
      return SawUnknownModel ? Satisfiability::Unknown : Satisfiability::Unsat;

    std::vector<Literal> Lits;
    Lits.reserve(Encoder.atoms().size());
    for (const auto &[Atom, Var] : Encoder.atoms())
      Lits.push_back({Atom, Solver.modelValue(Var)});

    TheoryResult TR = checkConjunction(Lits);
    if (TR == TheoryResult::Sat)
      return Satisfiability::Sat;
    if (TR == TheoryResult::Unknown)
      SawUnknownModel = true;

    std::vector<Literal> Core =
        TR == TheoryResult::Unsat ? minimizeCore(Lits) : Lits;
    std::vector<int> Blocking;
    Blocking.reserve(Core.size());
    for (const Literal &L : Core) {
      int Var = Encoder.atoms().at(L.Atom);
      Blocking.push_back(L.Positive ? -(Var + 1) : (Var + 1));
    }
    Solver.addClause(std::move(Blocking));
  }
  return Satisfiability::Unknown;
}

Satisfiability Prover::checkSat(ExprRef Phi) {
  assert(Phi->isFormula() && "checkSat takes a formula");
  if (Phi->isTrue())
    return Satisfiability::Sat;
  if (Phi->isFalse())
    return Satisfiability::Unsat;

  if (CachingEnabled) {
    auto It = Cache.find(Phi);
    if (It != Cache.end()) {
      ++NumCacheHits;
      if (Stats)
        Stats->add("prover.cache_hits");
      return It->second;
    }
  }

  ++NumCalls;
  if (Stats)
    Stats->add("prover.calls");
  Satisfiability Result = checkSatUncached(Phi);
  if (CachingEnabled)
    Cache.emplace(Phi, Result);
  return Result;
}

Validity Prover::implies(ExprRef Antecedent, ExprRef Consequent) {
  ExprRef Query = Ctx.andE(Antecedent, Ctx.notE(Consequent));
  switch (checkSat(Query)) {
  case Satisfiability::Unsat:
    return Validity::Valid;
  case Satisfiability::Sat:
    return Validity::Invalid;
  case Satisfiability::Unknown:
    return Validity::Unknown;
  }
  return Validity::Unknown;
}
