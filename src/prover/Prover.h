//===- Prover.h - Validity checking for the abstraction ---------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The theorem-prover interface C2bp depends on (Section 4.1): deciding
/// whether `cube => phi` is valid. Plays the role of Simplify/Vampyre in
/// the paper's implementation. Internally a lazy-SMT loop: a DPLL
/// enumeration of the boolean skeleton, with each candidate model's atom
/// conjunction decided by the Nelson–Oppen EUF+LIA combination, and a
/// greedily minimized conflict core fed back as a blocking clause.
///
/// All query results are cached (Section 5.2, optimization five). The
/// cache is negation-canonical: entries are keyed on the formula with a
/// top-level `!` stripped and hold one result per polarity, so the
/// UNSAT(phi) half of a validity pair answers the UNSAT(!phi) half for
/// free whenever phi was unsatisfiable. A Prover may additionally be
/// attached to a SharedProverCache, in which case results transfer
/// between the worker provers of a parallel abstraction run; each
/// worker remains single-threaded and owns its Prover exclusively.
///
/// The caller's statistics registry records the number of genuine
/// prover calls and cache hits so benchmarks can reproduce the paper's
/// tables.
///
//===----------------------------------------------------------------------===//

#ifndef PROVER_PROVER_H
#define PROVER_PROVER_H

#include "logic/Expr.h"
#include "prover/ProverCache.h"
#include "support/Stats.h"

#include <optional>
#include <unordered_map>

namespace slam {
namespace prover {

/// Result of a validity query. Unknown means the prover could not
/// decide (search budget exhausted); the abstraction treats Unknown
/// like Invalid, which is conservative and sound.
enum class Validity { Valid, Invalid, Unknown };

/// Result of a satisfiability query.
enum class Satisfiability { Sat, Unsat, Unknown };

/// A caching validity/satisfiability checker over the predicate logic.
/// Not thread-safe itself: a parallel run gives each worker its own
/// Prover, sharing results only through an (internally synchronized)
/// SharedProverCache.
class Prover {
public:
  explicit Prover(logic::LogicContext &Ctx, StatsRegistry *Stats = nullptr,
                  SharedProverCache *Shared = nullptr)
      : Ctx(Ctx), Stats(Stats), Shared(Shared) {}

  /// Is `Antecedent => Consequent` valid?
  Validity implies(logic::ExprRef Antecedent, logic::ExprRef Consequent);

  /// Is \p Phi satisfiable?
  Satisfiability checkSat(logic::ExprRef Phi);

  /// Number of non-cached satisfiability decisions performed. This is
  /// the "theorem prover calls" column of Tables 1 and 2.
  uint64_t numCalls() const { return NumCalls; }
  /// Exact-entry cache hits (private or shared, including hits obtained
  /// by waiting out another worker's in-flight call).
  uint64_t numCacheHits() const { return NumCacheHits; }
  /// Hits answered from the opposite polarity's Unsat result.
  uint64_t numNegCacheHits() const { return NumNegCacheHits; }

  /// Enables/disables the query cache (ablation hook).
  void setCachingEnabled(bool Enabled) { CachingEnabled = Enabled; }

  /// Attaches/detaches a cross-worker result cache.
  void setSharedCache(SharedProverCache *Cache) { Shared = Cache; }

private:
  Satisfiability checkSatUncached(logic::ExprRef Phi);

  /// Counts a non-Miss shared-cache outcome into the right counters
  /// (prover.shared_cache_hits / neg_cache_hits / disk_cache_hits) and
  /// returns its value.
  Satisfiability noteSharedHit(SharedProverCache::Outcome Kind,
                               Satisfiability Value);

  /// checkSatUncached plus observability: a "prover.query" trace span,
  /// a sample in the prover.query_us latency histogram, and the
  /// slow-query log (trace::slowQueryMillis).
  Satisfiability timedCheck(logic::ExprRef Phi);

  /// Private per-prover entry: one result slot per polarity of the
  /// negation-stripped base formula.
  struct CacheEntry {
    std::optional<Satisfiability> Pos, Neg;
  };

  logic::LogicContext &Ctx;
  StatsRegistry *Stats;
  SharedProverCache *Shared;
  /// Antecedent/consequent of the implication currently being decided
  /// (set by implies() so the slow-query log can print the implication
  /// rather than its desugared satisfiability query). The Prover is
  /// single-threaded, so plain members suffice.
  logic::ExprRef CurAntecedent = nullptr;
  logic::ExprRef CurConsequent = nullptr;
  std::unordered_map<logic::ExprRef, CacheEntry> Cache;
  uint64_t NumCalls = 0;
  uint64_t NumCacheHits = 0;
  uint64_t NumNegCacheHits = 0;
  bool CachingEnabled = true;
};

} // namespace prover
} // namespace slam

#endif // PROVER_PROVER_H
