//===- ProverCache.cpp - Shared cross-worker query cache ------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "prover/ProverCache.h"

#include "logic/ExprUtils.h"
#include "prover/CacheBackend.h"
#include "prover/Prover.h"

#include <cassert>

using namespace slam;
using namespace slam::prover;
using logic::ExprKind;
using logic::ExprRef;

std::pair<ExprRef, bool> SharedProverCache::canonicalize(ExprRef Phi) {
  if (Phi->kind() == ExprKind::Not)
    return {Phi->op(0), false};
  return {Phi, true};
}

support::Fingerprint SharedProverCache::fingerprintFor(ExprRef Base) {
  {
    std::lock_guard<std::mutex> L(FpM);
    auto It = FpMemo.find(Base);
    if (It != FpMemo.end())
      return It->second;
  }
  // Hash outside the lock — this is the expensive part — and tolerate
  // two workers racing to compute the same (identical) value.
  support::Fingerprint FP = logic::structuralFingerprint(Base);
  std::lock_guard<std::mutex> L(FpM);
  FpMemo.emplace(Base, FP);
  return FP;
}

SharedProverCache::Lookup SharedProverCache::lookupOrReserve(ExprRef Phi) {
  auto [Base, Positive] = canonicalize(Phi);
  int Slot = Positive ? 0 : 1;
  Shard &S = shardFor(Base);

  {
    std::unique_lock<std::mutex> L(S.M);
    Entry &E = S.Map[Base];
    bool Waited = false;
    while (E.State[Slot] == SlotState::InFlight) {
      // Another worker is deciding this exact query; ride its
      // coattails. Waking to an Empty slot means that worker abandoned
      // its reservation — fall through and claim it ourselves.
      S.Cv.wait(L);
      Waited = true;
    }
    if (E.State[Slot] == SlotState::Done) {
      if (Waited)
        return {Outcome::WaitHit, E.Value[Slot], Reservation()};
      return {E.Derived[Slot] ? Outcome::NegHit : Outcome::Hit,
              E.Value[Slot], Reservation()};
    }
    E.State[Slot] = SlotState::InFlight;
  }

  // In-memory miss with the slot held in-flight: probe the persistent
  // layer (outside the shard lock — fingerprinting and the backend's
  // own lock must not serialize the shard). Concurrent identical
  // queries are parked on the condition variable, so the backend sees
  // one probe per query, and a disk answer published here wakes them
  // as ordinary WaitHits.
  if (Backend) {
    support::Fingerprint FP = fingerprintFor(Base);
    std::optional<Satisfiability> OnDisk = Backend->probe(FP, Positive);
    if (!OnDisk) {
      // The disk stores only genuine decisions, never derived entries,
      // so re-derive here: opposite-polarity Unsat => this side Sat.
      std::optional<Satisfiability> Opposite = Backend->probe(FP, !Positive);
      if (Opposite && *Opposite == Satisfiability::Unsat)
        OnDisk = Satisfiability::Sat;
    }
    if (OnDisk) {
      publishImpl(Phi, *OnDisk, /*Persist=*/false);
      return {Outcome::DiskHit, *OnDisk, Reservation()};
    }
  }

  return {Outcome::Miss, Satisfiability::Unknown, Reservation(this, Phi)};
}

void SharedProverCache::publishImpl(ExprRef Phi, Satisfiability Result,
                                    bool Persist) {
  auto [Base, Positive] = canonicalize(Phi);
  int Slot = Positive ? 0 : 1;
  Shard &S = shardFor(Base);
  {
    std::lock_guard<std::mutex> L(S.M);
    Entry &E = S.Map[Base];
    E.State[Slot] = SlotState::Done;
    E.Value[Slot] = Result;
    E.Derived[Slot] = false;
    // phi unsatisfiable => !phi valid => !phi satisfiable. The converse
    // direction gives nothing (Sat tells us nothing about the negation),
    // and an Unknown must not poison the other polarity.
    int Other = 1 - Slot;
    if (Result == Satisfiability::Unsat &&
        E.State[Other] == SlotState::Empty) {
      E.State[Other] = SlotState::Done;
      E.Value[Other] = Satisfiability::Sat;
      E.Derived[Other] = true;
    }
  }
  S.Cv.notify_all();
  // Only the polarity actually decided is persisted; the derived
  // opposite is recomputed from it on every load.
  if (Persist && Backend)
    Backend->record(fingerprintFor(Base), Positive, Result);
}

void SharedProverCache::abandonImpl(ExprRef Phi) {
  auto [Base, Positive] = canonicalize(Phi);
  int Slot = Positive ? 0 : 1;
  Shard &S = shardFor(Base);
  {
    std::lock_guard<std::mutex> L(S.M);
    Entry &E = S.Map[Base];
    assert(E.State[Slot] == SlotState::InFlight &&
           "abandoning a slot we do not hold");
    E.State[Slot] = SlotState::Empty;
  }
  S.Cv.notify_all();
}

void SharedProverCache::Reservation::publish(Satisfiability Result) {
  assert(Cache && "publishing through an empty reservation");
  SharedProverCache *C = std::exchange(Cache, nullptr);
  C->publishImpl(Phi, Result, /*Persist=*/true);
}

void SharedProverCache::Reservation::abandon() {
  if (SharedProverCache *C = std::exchange(Cache, nullptr))
    C->abandonImpl(Phi);
}

size_t SharedProverCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> L(S.M);
    N += S.Map.size();
  }
  return N;
}
