//===- ProverCache.cpp - Shared cross-worker query cache ------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "prover/ProverCache.h"

#include "prover/Prover.h"

using namespace slam;
using namespace slam::prover;
using logic::ExprKind;
using logic::ExprRef;

std::pair<ExprRef, bool> SharedProverCache::canonicalize(ExprRef Phi) {
  if (Phi->kind() == ExprKind::Not)
    return {Phi->op(0), false};
  return {Phi, true};
}

SharedProverCache::Lookup SharedProverCache::lookupOrReserve(ExprRef Phi) {
  auto [Base, Positive] = canonicalize(Phi);
  int Slot = Positive ? 0 : 1;
  Shard &S = shardFor(Base);

  std::unique_lock<std::mutex> L(S.M);
  Entry &E = S.Map[Base];
  bool Waited = false;
  while (E.State[Slot] == SlotState::InFlight) {
    // Another worker is deciding this exact query; ride its coattails.
    S.Cv.wait(L);
    Waited = true;
  }
  if (E.State[Slot] == SlotState::Done) {
    if (Waited)
      return {Outcome::WaitHit, E.Value[Slot]};
    return {E.Derived[Slot] ? Outcome::NegHit : Outcome::Hit, E.Value[Slot]};
  }
  E.State[Slot] = SlotState::InFlight;
  return {Outcome::Miss, Satisfiability::Unknown};
}

void SharedProverCache::publish(ExprRef Phi, Satisfiability Result) {
  auto [Base, Positive] = canonicalize(Phi);
  int Slot = Positive ? 0 : 1;
  Shard &S = shardFor(Base);
  {
    std::lock_guard<std::mutex> L(S.M);
    Entry &E = S.Map[Base];
    E.State[Slot] = SlotState::Done;
    E.Value[Slot] = Result;
    // phi unsatisfiable => !phi valid => !phi satisfiable. The converse
    // direction gives nothing (Sat tells us nothing about the negation),
    // and an Unknown must not poison the other polarity.
    int Other = 1 - Slot;
    if (Result == Satisfiability::Unsat &&
        E.State[Other] == SlotState::Empty) {
      E.State[Other] = SlotState::Done;
      E.Value[Other] = Satisfiability::Sat;
      E.Derived[Other] = true;
    }
  }
  S.Cv.notify_all();
}

size_t SharedProverCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> L(S.M);
    N += S.Map.size();
  }
  return N;
}
