//===- ProverCache.h - Shared cross-worker query cache ----------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A satisfiability-query cache shared by all worker provers of a
/// parallel abstraction run, so a cube implication discharged on one
/// worker is a cache hit on every other (Section 5.2's caching,
/// extended across threads — prover-call volume is the cost the paper
/// and its successors engineer around).
///
/// Four design points:
///
///   * **Sharded + mutex-striped.** Entries are distributed over a fixed
///     set of shards by the stable hash-consed id of the queried
///     formula; each shard has its own mutex, so writers on different
///     shards never contend.
///
///   * **Negation-canonical.** checkSat(phi) and checkSat(!phi) are
///     issued in validity pairs by the cube search (F(phi) next to
///     F(!phi)). An entry is keyed on the negation-stripped base
///     formula and holds one slot per polarity; publishing Unsat for
///     one polarity derives Sat for the other (phi unsatisfiable =>
///     !phi valid => !phi satisfiable), so half of each pair is often
///     answered without a prover call.
///
///   * **Single-flight.** A worker that starts deciding a query marks
///     its slot in-flight; a second worker asking the same query blocks
///     on the shard's condition variable instead of burning a duplicate
///     prover call, and is woken with the published result. A miss
///     hands the caller a Reservation — an RAII claim on the in-flight
///     slot. Publishing through it fills the slot; destroying it
///     unpublished (an exception, an early return) abandons the slot
///     back to Empty and wakes waiters so they can re-reserve, instead
///     of deadlocking them on a result that will never come.
///
///   * **Persistent under, memory over.** An optional CacheBackend sits
///     below the in-memory shards: an in-memory miss probes the backend
///     (keyed on structural fingerprints — hash-consed ids are not
///     stable across runs) before the caller is told to run the prover,
///     and each genuinely new result is recorded for the next run. The
///     backend is consulted while the slot is held in-flight, so
///     concurrent identical queries cost one disk probe, not N.
///
//===----------------------------------------------------------------------===//

#ifndef PROVER_PROVERCACHE_H
#define PROVER_PROVERCACHE_H

#include "logic/Expr.h"
#include "support/Fingerprint.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace slam {
namespace prover {

enum class Satisfiability; // From Prover.h (included by users of both).
class CacheBackend;

/// Shared, sharded satisfiability cache. Bound to one LogicContext:
/// keys are interned expression nodes of that context.
class SharedProverCache {
public:
  /// \p Backend, when non-null, persists results across runs; it must
  /// outlive the cache. No backend means a purely in-memory cache.
  explicit SharedProverCache(CacheBackend *Backend = nullptr)
      : Backend(Backend) {}

  /// How a lookup was (or was not) answered.
  enum class Outcome {
    Miss,    ///< Not cached; the caller holds the slot and must publish.
    Hit,     ///< Answered from a completed in-memory entry.
    NegHit,  ///< Answered from the opposite polarity's Unsat result.
    WaitHit, ///< Answered after blocking on another worker's in-flight call.
    DiskHit, ///< Answered from the persistent backend.
  };

  /// RAII claim on an in-flight slot. Exactly one of two things happens
  /// to a reservation: publish() fills the slot and wakes waiters, or
  /// destruction abandons it — the slot returns to Empty and waiters
  /// are woken to re-reserve. Movable, not copyable.
  class Reservation {
  public:
    Reservation() = default;
    Reservation(Reservation &&O) noexcept
        : Cache(std::exchange(O.Cache, nullptr)), Phi(O.Phi) {}
    Reservation &operator=(Reservation &&O) noexcept {
      if (this != &O) {
        abandon();
        Cache = std::exchange(O.Cache, nullptr);
        Phi = O.Phi;
      }
      return *this;
    }
    ~Reservation() { abandon(); }

    /// True while the slot is held (i.e. publish is still owed).
    explicit operator bool() const { return Cache != nullptr; }

    /// Publishes \p Result into the reserved slot, records it to the
    /// backend, wakes waiters, and releases the claim.
    void publish(Satisfiability Result);

  private:
    friend class SharedProverCache;
    Reservation(SharedProverCache *Cache, logic::ExprRef Phi)
        : Cache(Cache), Phi(Phi) {}
    void abandon();

    SharedProverCache *Cache = nullptr;
    logic::ExprRef Phi = nullptr;
  };

  struct Lookup {
    Outcome Kind;
    Satisfiability Value; ///< Meaningful unless Kind == Miss.
    Reservation Slot;     ///< Engaged exactly when Kind == Miss.
  };

  /// Looks \p Phi up in memory, then (on a miss) in the backend. A Miss
  /// returns an engaged Reservation the caller publishes through; all
  /// other outcomes carry the answer.
  Lookup lookupOrReserve(logic::ExprRef Phi);

  /// Entries resident across all shards (for reporting).
  size_t size() const;

private:
  enum class SlotState : uint8_t { Empty, InFlight, Done };

  struct Entry {
    SlotState State[2] = {SlotState::Empty, SlotState::Empty};
    Satisfiability Value[2];
    /// Set when the slot was filled by negation derivation rather than
    /// a prover call; hits on such slots are reported distinctly.
    bool Derived[2] = {false, false};
  };

  struct Shard {
    mutable std::mutex M;
    std::condition_variable Cv;
    std::unordered_map<logic::ExprRef, Entry> Map;
  };

  static constexpr size_t NumShards = 16;

  /// Strips a top-level negation: returns the base formula and whether
  /// the query was the positive polarity. The logic context pushes !
  /// through comparisons and folds double negation, so at most one Not
  /// survives at the root.
  static std::pair<logic::ExprRef, bool> canonicalize(logic::ExprRef Phi);

  Shard &shardFor(logic::ExprRef Base) {
    return Shards[Base->id() % NumShards];
  }

  /// Fills the slot for \p Phi with \p Result and wakes waiters.
  /// \p Persist additionally records it to the backend (false for
  /// results that *came from* the backend, so warm runs append
  /// nothing they already know).
  void publishImpl(logic::ExprRef Phi, Satisfiability Result, bool Persist);
  void abandonImpl(logic::ExprRef Phi);

  /// The structural fingerprint of \p Base, memoized: WPs recur across
  /// cubes and fingerprinting is O(formula size).
  support::Fingerprint fingerprintFor(logic::ExprRef Base);

  Shard Shards[NumShards];
  CacheBackend *Backend;
  std::mutex FpM;
  std::unordered_map<logic::ExprRef, support::Fingerprint> FpMemo;
};

} // namespace prover
} // namespace slam

#endif // PROVER_PROVERCACHE_H
