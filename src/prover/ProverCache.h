//===- ProverCache.h - Shared cross-worker query cache ----------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A satisfiability-query cache shared by all worker provers of a
/// parallel abstraction run, so a cube implication discharged on one
/// worker is a cache hit on every other (Section 5.2's caching,
/// extended across threads — prover-call volume is the cost the paper
/// and its successors engineer around).
///
/// Three design points:
///
///   * **Sharded + mutex-striped.** Entries are distributed over a fixed
///     set of shards by the stable hash-consed id of the queried
///     formula; each shard has its own mutex, so writers on different
///     shards never contend.
///
///   * **Negation-canonical.** checkSat(phi) and checkSat(!phi) are
///     issued in validity pairs by the cube search (F(phi) next to
///     F(!phi)). An entry is keyed on the negation-stripped base
///     formula and holds one slot per polarity; publishing Unsat for
///     one polarity derives Sat for the other (phi unsatisfiable =>
///     !phi valid => !phi satisfiable), so half of each pair is often
///     answered without a prover call.
///
///   * **Single-flight.** A worker that starts deciding a query marks
///     its slot in-flight; a second worker asking the same query blocks
///     on the shard's condition variable instead of burning a duplicate
///     prover call, and is woken with the published result.
///
//===----------------------------------------------------------------------===//

#ifndef PROVER_PROVERCACHE_H
#define PROVER_PROVERCACHE_H

#include "logic/Expr.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace slam {
namespace prover {

enum class Satisfiability; // From Prover.h (included by users of both).

/// Shared, sharded satisfiability cache. Bound to one LogicContext:
/// keys are interned expression nodes of that context.
class SharedProverCache {
public:
  /// How a lookup was (or was not) answered.
  enum class Outcome {
    Miss,    ///< Not cached; the caller reserved the slot and must publish.
    Hit,     ///< Answered from a completed entry.
    NegHit,  ///< Answered from the opposite polarity's Unsat result.
    WaitHit, ///< Answered after blocking on another worker's in-flight call.
  };

  struct Lookup {
    Outcome Kind;
    Satisfiability Value; ///< Meaningful unless Kind == Miss.
  };

  /// Looks \p Phi up; on a miss the slot is reserved in-flight and the
  /// caller MUST call publish(Phi, result) exactly once (there is no
  /// abandonment path — the decision procedures do not throw).
  Lookup lookupOrReserve(logic::ExprRef Phi);

  /// Publishes the result of a reserved query and wakes waiters.
  void publish(logic::ExprRef Phi, Satisfiability Result);

  /// Entries resident across all shards (for reporting).
  size_t size() const;

private:
  enum class SlotState : uint8_t { Empty, InFlight, Done };

  struct Entry {
    SlotState State[2] = {SlotState::Empty, SlotState::Empty};
    Satisfiability Value[2];
    /// Set when the slot was filled by negation derivation rather than
    /// a prover call; hits on such slots are reported distinctly.
    bool Derived[2] = {false, false};
  };

  struct Shard {
    mutable std::mutex M;
    std::condition_variable Cv;
    std::unordered_map<logic::ExprRef, Entry> Map;
  };

  static constexpr size_t NumShards = 16;

  /// Strips a top-level negation: returns the base formula and whether
  /// the query was the positive polarity. The logic context pushes !
  /// through comparisons and folds double negation, so at most one Not
  /// survives at the root.
  static std::pair<logic::ExprRef, bool> canonicalize(logic::ExprRef Phi);

  Shard &shardFor(logic::ExprRef Base) {
    return Shards[Base->id() % NumShards];
  }

  Shard Shards[NumShards];
};

} // namespace prover
} // namespace slam

#endif // PROVER_PROVERCACHE_H
