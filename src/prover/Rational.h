//===- Rational.h - Exact rational arithmetic -------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over 64-bit integers (with 128-bit intermediates) for
/// the Simplex-based linear-arithmetic decision procedure. Program
/// constants are tiny, so this range is ample; overflow would indicate a
/// malformed query and is caught by assertions.
///
//===----------------------------------------------------------------------===//

#ifndef PROVER_RATIONAL_H
#define PROVER_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <numeric>
#include <string>

namespace slam {
namespace prover {

/// An exact rational number num/den with den > 0, always normalized.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(int64_t Num, int64_t Den) : Num(Num), Den(Den) { normalize(); }

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isInteger() const { return Den == 1; }
  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }

  /// Largest integer <= this.
  int64_t floor() const {
    if (Num >= 0)
      return Num / Den;
    return -((-Num + Den - 1) / Den);
  }

  /// Smallest integer >= this.
  int64_t ceil() const { return -(-*this).floor(); }

  Rational operator-() const { return fromRaw(-Num, Den); }

  Rational operator+(const Rational &O) const {
    __int128 N = (__int128)Num * O.Den + (__int128)O.Num * Den;
    __int128 D = (__int128)Den * O.Den;
    return fromWide(N, D);
  }

  Rational operator-(const Rational &O) const { return *this + (-O); }

  Rational operator*(const Rational &O) const {
    __int128 N = (__int128)Num * O.Num;
    __int128 D = (__int128)Den * O.Den;
    return fromWide(N, D);
  }

  Rational operator/(const Rational &O) const {
    assert(!O.isZero() && "division by zero");
    __int128 N = (__int128)Num * O.Den;
    __int128 D = (__int128)Den * O.Num;
    if (D < 0) {
      N = -N;
      D = -D;
    }
    return fromWide(N, D);
  }

  Rational &operator+=(const Rational &O) { return *this = *this + O; }
  Rational &operator-=(const Rational &O) { return *this = *this - O; }
  Rational &operator*=(const Rational &O) { return *this = *this * O; }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const {
    return (__int128)Num * O.Den < (__int128)O.Num * Den;
  }
  bool operator<=(const Rational &O) const { return !(O < *this); }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return !(*this < O); }

  std::string str() const {
    if (Den == 1)
      return std::to_string(Num);
    return std::to_string(Num) + "/" + std::to_string(Den);
  }

private:
  static Rational fromRaw(int64_t Num, int64_t Den) {
    Rational R;
    R.Num = Num;
    R.Den = Den;
    return R;
  }

  static Rational fromWide(__int128 N, __int128 D) {
    assert(D > 0 && "denominator must be positive");
    __int128 G = gcdWide(N < 0 ? -N : N, D);
    if (G > 1) {
      N /= G;
      D /= G;
    }
    assert(N >= INT64_MIN && N <= INT64_MAX && D <= INT64_MAX &&
           "rational overflow");
    return fromRaw(static_cast<int64_t>(N), static_cast<int64_t>(D));
  }

  static __int128 gcdWide(__int128 A, __int128 B) {
    while (B != 0) {
      __int128 T = A % B;
      A = B;
      B = T;
    }
    return A == 0 ? 1 : A;
  }

  void normalize() {
    assert(Den != 0 && "zero denominator");
    if (Den < 0) {
      Num = -Num;
      Den = -Den;
    }
    int64_t G = std::gcd(Num < 0 ? -Num : Num, Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
  }

  int64_t Num;
  int64_t Den;
};

} // namespace prover
} // namespace slam

#endif // PROVER_RATIONAL_H
