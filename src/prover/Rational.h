//===- Rational.h - Exact rational arithmetic -------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over 64-bit integers (with 128-bit intermediates) for
/// the Simplex-based linear-arithmetic decision procedure. Program
/// constants are tiny, so this range is ample for well-formed queries;
/// when a computation does exceed it, the value becomes a sticky
/// "overflow" poison (checked unconditionally, in every build mode) that
/// Simplex surfaces as LinResult::Unknown — conservative, like budget
/// exhaustion — instead of silently truncating and answering wrong.
///
//===----------------------------------------------------------------------===//

#ifndef PROVER_RATIONAL_H
#define PROVER_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <numeric>
#include <string>

namespace slam {
namespace prover {

/// An exact rational number num/den with den > 0, always normalized.
/// The reserved representation den == 0 is the overflow poison: any
/// operation with a poisoned operand (or whose result leaves the 64-bit
/// range) yields poison.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(int64_t Num, int64_t Den) : Num(Num), Den(Den) { normalize(); }

  /// The overflow poison value.
  static Rational overflow() { return fromRaw(0, 0); }
  bool isOverflow() const { return Den == 0; }

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isInteger() const { return Den == 1; }
  bool isZero() const { return Den != 0 && Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }

  /// Largest integer <= this (0 for the overflow poison; callers must
  /// test isOverflow() before relying on the result).
  int64_t floor() const {
    if (isOverflow())
      return 0;
    if (Num >= 0)
      return Num / Den;
    return -((-Num + Den - 1) / Den);
  }

  /// Smallest integer >= this.
  int64_t ceil() const { return -(-*this).floor(); }

  Rational operator-() const {
    if (isOverflow() || Num == INT64_MIN)
      return overflow();
    return fromRaw(-Num, Den);
  }

  Rational operator+(const Rational &O) const {
    if (isOverflow() || O.isOverflow())
      return overflow();
    __int128 N = (__int128)Num * O.Den + (__int128)O.Num * Den;
    __int128 D = (__int128)Den * O.Den;
    return fromWide(N, D);
  }

  Rational operator-(const Rational &O) const { return *this + (-O); }

  Rational operator*(const Rational &O) const {
    if (isOverflow() || O.isOverflow())
      return overflow();
    __int128 N = (__int128)Num * O.Num;
    __int128 D = (__int128)Den * O.Den;
    return fromWide(N, D);
  }

  Rational operator/(const Rational &O) const {
    assert(!O.isZero() && "division by zero");
    if (isOverflow() || O.isOverflow() || O.isZero())
      return overflow();
    __int128 N = (__int128)Num * O.Den;
    __int128 D = (__int128)Den * O.Num;
    if (D < 0) {
      N = -N;
      D = -D;
    }
    return fromWide(N, D);
  }

  Rational &operator+=(const Rational &O) { return *this = *this + O; }
  Rational &operator-=(const Rational &O) { return *this = *this - O; }
  Rational &operator*=(const Rational &O) { return *this = *this * O; }
  Rational &operator/=(const Rational &O) { return *this = *this / O; }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const {
    return (__int128)Num * O.Den < (__int128)O.Num * Den;
  }
  bool operator<=(const Rational &O) const { return !(O < *this); }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return !(*this < O); }

  std::string str() const {
    if (isOverflow())
      return "overflow";
    if (Den == 1)
      return std::to_string(Num);
    return std::to_string(Num) + "/" + std::to_string(Den);
  }

private:
  static Rational fromRaw(int64_t Num, int64_t Den) {
    Rational R;
    R.Num = Num;
    R.Den = Den;
    return R;
  }

  static Rational fromWide(__int128 N, __int128 D) {
    if (D <= 0)
      return overflow();
    __int128 G = gcdWide(N < 0 ? -N : N, D);
    if (G > 1) {
      N /= G;
      D /= G;
    }
    if (N < INT64_MIN || N > INT64_MAX || D > INT64_MAX)
      return overflow();
    return fromRaw(static_cast<int64_t>(N), static_cast<int64_t>(D));
  }

  static __int128 gcdWide(__int128 A, __int128 B) {
    while (B != 0) {
      __int128 T = A % B;
      A = B;
      B = T;
    }
    return A == 0 ? 1 : A;
  }

  void normalize() {
    if (Den == 0) {
      Num = 0; // Canonical poison, however it was constructed.
      return;
    }
    if (Den < 0) {
      if (Num == INT64_MIN || Den == INT64_MIN) {
        Num = 0;
        Den = 0;
        return;
      }
      Num = -Num;
      Den = -Den;
    }
    // std::gcd over unsigned magnitudes so INT64_MIN cannot overflow
    // the negation.
    uint64_t Mag = Num < 0 ? ~static_cast<uint64_t>(Num) + 1
                           : static_cast<uint64_t>(Num);
    uint64_t G = std::gcd(Mag, static_cast<uint64_t>(Den));
    if (G > 1) {
      Num /= static_cast<int64_t>(G);
      Den /= static_cast<int64_t>(G);
    }
  }

  int64_t Num;
  int64_t Den;
};

} // namespace prover
} // namespace slam

#endif // PROVER_RATIONAL_H
