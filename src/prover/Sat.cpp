//===- Sat.cpp - DPLL with unit propagation --------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "prover/Sat.h"

#include <cassert>
#include <cstddef>

using namespace slam;
using namespace slam::prover;

void SatSolver::addClause(std::vector<int> Literals) {
  if (Literals.empty()) {
    TriviallyUnsat = true;
    return;
  }
  for (int Lit : Literals) {
    assert(Lit != 0 && "literals are +-(var+1)");
    int Var = (Lit > 0 ? Lit : -Lit) - 1;
    assert(Var < NumVars && "literal references unknown variable");
    (void)Var;
  }
  Clauses.push_back(std::move(Literals));
}

bool SatSolver::propagate(std::vector<signed char> &Assign) const {
  bool Changed = true;
  // Sweeps alternate direction. An implication chain whose clauses run
  // counter to the scan order (the Tseitin skeleton of a deep formula:
  // leaf clauses first, the root unit clause last) would otherwise
  // advance one assignment per sweep — quadratic in formula depth; the
  // return sweep completes such a chain in a single pass. The fixpoint
  // is the same either way.
  bool Forward = true;
  while (Changed) {
    Changed = false;
    for (std::size_t I = 0, N = Clauses.size(); I != N; ++I) {
      const std::vector<int> &Clause = Clauses[Forward ? I : N - 1 - I];
      int FreeCount = 0;
      int LastFree = 0;
      bool Satisfied = false;
      for (int Lit : Clause) {
        int Var = (Lit > 0 ? Lit : -Lit) - 1;
        signed char Val = Assign[Var];
        if (Val == Unassigned) {
          ++FreeCount;
          LastFree = Lit;
          continue;
        }
        if ((Val == True) == (Lit > 0)) {
          Satisfied = true;
          break;
        }
      }
      if (Satisfied)
        continue;
      if (FreeCount == 0)
        return false; // Conflict.
      if (FreeCount == 1) {
        int Var = (LastFree > 0 ? LastFree : -LastFree) - 1;
        Assign[Var] = LastFree > 0 ? True : False;
        Changed = true;
      }
    }
    Forward = !Forward;
  }
  return true;
}

bool SatSolver::search(std::vector<signed char> &Assign) const {
  if (!propagate(Assign))
    return false;
  int Branch = -1;
  for (int Var = 0; Var != NumVars; ++Var) {
    if (Assign[Var] == Unassigned) {
      Branch = Var;
      break;
    }
  }
  if (Branch < 0)
    return true;
  for (signed char Value : {True, False}) {
    std::vector<signed char> Saved = Assign;
    Saved[Branch] = Value;
    if (search(Saved)) {
      Assign = std::move(Saved);
      return true;
    }
  }
  return false;
}

SatSolver::Result SatSolver::solve() {
  if (TriviallyUnsat)
    return Result::Unsat;
  std::vector<signed char> Assign(NumVars, Unassigned);
  if (!search(Assign))
    return Result::Unsat;
  Model = std::move(Assign);
  return Result::Sat;
}
