//===- Sat.h - Propositional satisfiability ---------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small DPLL SAT solver used as the boolean-skeleton enumerator of the
/// lazy-SMT loop in Prover. Queries produced by the abstraction are tiny
/// (a cube plus one weakest precondition), so unit propagation with
/// chronological backtracking is entirely adequate.
///
//===----------------------------------------------------------------------===//

#ifndef PROVER_SAT_H
#define PROVER_SAT_H

#include <vector>

namespace slam {
namespace prover {

/// Literals are encoded as +-(var+1); variables are dense indices.
class SatSolver {
public:
  int newVar() { return NumVars++; }

  /// Adds a clause (disjunction of literals). An empty clause makes the
  /// instance trivially unsatisfiable.
  void addClause(std::vector<int> Literals);

  enum class Result { Sat, Unsat };

  /// Solves from scratch; clauses persist across calls, so callers can
  /// add blocking clauses and re-solve.
  Result solve();

  /// After a Sat solve(), the value of \p Var in the model.
  bool modelValue(int Var) const { return Model[Var] == 1; }

private:
  enum : signed char { Unassigned = -1, False = 0, True = 1 };

  bool propagate(std::vector<signed char> &Assign) const;
  bool search(std::vector<signed char> &Assign) const;

  int NumVars = 0;
  std::vector<std::vector<int>> Clauses;
  bool TriviallyUnsat = false;
  std::vector<signed char> Model;
};

} // namespace prover
} // namespace slam

#endif // PROVER_SAT_H
