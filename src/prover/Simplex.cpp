//===- Simplex.cpp - Dutertre–de Moura general simplex --------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "prover/Simplex.h"

#include <cassert>

using namespace slam;
using namespace slam::prover;

int Simplex::newVar(bool Integer) {
  int Var = numVars();
  Lower.emplace_back();
  Upper.emplace_back();
  Assignment.emplace_back(0);
  IsInteger.push_back(Integer);
  IsBasic.push_back(false);
  return Var;
}

int Simplex::defineVar(const LinearExpr &Definition, bool Integer) {
  // Expand any basic variables in the definition so the row mentions
  // only nonbasic variables, and compute the initial assignment.
  LinearExpr Row;
  auto Accumulate = [this, &Row](int Var, const Rational &Coeff) {
    Rational &Slot = Row[Var];
    Slot += Coeff;
    note(Slot);
    if (Slot.isZero())
      Row.erase(Var);
  };
  for (const auto &[Var, Coeff] : Definition) {
    if (Coeff.isZero())
      continue;
    if (IsBasic[Var]) {
      for (const auto &[Sub, SubCoeff] : Rows[Var])
        Accumulate(Sub, Coeff * SubCoeff);
    } else {
      Accumulate(Var, Coeff);
    }
  }
  int Var = newVar(Integer);
  Rational Value(0);
  for (const auto &[Sub, Coeff] : Row)
    Value += Coeff * Assignment[Sub];
  note(Value);
  Assignment[Var] = Value;
  IsBasic[Var] = true;
  Rows.emplace(Var, std::move(Row));
  return Var;
}

bool Simplex::assertLower(int Var, const Rational &Bound) {
  note(Bound);
  if (Lower[Var] && *Lower[Var] >= Bound)
    return true; // Not a tightening.
  if (Upper[Var] && Bound > *Upper[Var])
    return false;
  Lower[Var] = Bound;
  if (!IsBasic[Var] && Assignment[Var] < Bound) {
    // Move the nonbasic variable onto its new bound and ripple the
    // change through every dependent basic variable.
    Rational Delta = Bound - Assignment[Var];
    for (auto &[Basic, Row] : Rows) {
      auto It = Row.find(Var);
      if (It != Row.end()) {
        Assignment[Basic] += It->second * Delta;
        note(Assignment[Basic]);
      }
    }
    Assignment[Var] = Bound;
  }
  return true;
}

bool Simplex::assertUpper(int Var, const Rational &Bound) {
  note(Bound);
  if (Upper[Var] && *Upper[Var] <= Bound)
    return true;
  if (Lower[Var] && Bound < *Lower[Var])
    return false;
  Upper[Var] = Bound;
  if (!IsBasic[Var] && Assignment[Var] > Bound) {
    Rational Delta = Bound - Assignment[Var];
    for (auto &[Basic, Row] : Rows) {
      auto It = Row.find(Var);
      if (It != Row.end()) {
        Assignment[Basic] += It->second * Delta;
        note(Assignment[Basic]);
      }
    }
    Assignment[Var] = Bound;
  }
  return true;
}

void Simplex::pivot(int Basic, int NonBasic) {
  LinearExpr Row = std::move(Rows[Basic]);
  Rows.erase(Basic);
  Rational A = Row[NonBasic];
  assert(!A.isZero() && "pivot coefficient must be nonzero");

  // NonBasic = (Basic - sum_{j != NonBasic} c_j * y_j) / A.
  LinearExpr NewRow;
  NewRow[Basic] = Rational(1) / A;
  note(NewRow[Basic]);
  for (const auto &[Var, Coeff] : Row) {
    if (Var == NonBasic)
      continue;
    NewRow[Var] = -(Coeff / A);
    note(NewRow[Var]);
  }

  IsBasic[Basic] = false;
  IsBasic[NonBasic] = true;

  // Substitute NonBasic out of every other row.
  for (auto &[OtherBasic, OtherRow] : Rows) {
    auto It = OtherRow.find(NonBasic);
    if (It == OtherRow.end())
      continue;
    Rational C = It->second;
    OtherRow.erase(It);
    for (const auto &[Var, Coeff] : NewRow) {
      Rational &Slot = OtherRow[Var];
      Slot += C * Coeff;
      note(Slot);
      if (Slot.isZero())
        OtherRow.erase(Var);
    }
  }
  Rows.emplace(NonBasic, std::move(NewRow));
}

void Simplex::pivotAndUpdate(int Basic, int NonBasic,
                             const Rational &NewValue) {
  Rational A = Rows[Basic][NonBasic];
  Rational Theta = (NewValue - Assignment[Basic]) / A;
  note(Theta);
  Assignment[Basic] = NewValue;
  Assignment[NonBasic] += Theta;
  note(Assignment[NonBasic]);
  for (const auto &[OtherBasic, Row] : Rows) {
    if (OtherBasic == Basic)
      continue;
    auto It = Row.find(NonBasic);
    if (It != Row.end()) {
      Assignment[OtherBasic] += It->second * Theta;
      note(Assignment[OtherBasic]);
    }
  }
  pivot(Basic, NonBasic);
}

LinResult Simplex::checkRational() {
  for (;;) {
    // A poisoned tableau cannot be trusted in either direction.
    if (Poisoned)
      return LinResult::Unknown;
    // Bland's rule: smallest-index violating basic variable.
    int Violating = -1;
    bool BelowLower = false;
    for (const auto &[Basic, Row] : Rows) {
      (void)Row;
      if (Lower[Basic] && Assignment[Basic] < *Lower[Basic]) {
        Violating = Basic;
        BelowLower = true;
        break;
      }
      if (Upper[Basic] && Assignment[Basic] > *Upper[Basic]) {
        Violating = Basic;
        BelowLower = false;
        break;
      }
    }
    if (Violating < 0)
      return LinResult::Sat;

    const LinearExpr &Row = Rows[Violating];
    int Pivot = -1;
    for (const auto &[Var, Coeff] : Row) {
      bool CanIncrease = !Upper[Var] || Assignment[Var] < *Upper[Var];
      bool CanDecrease = !Lower[Var] || Assignment[Var] > *Lower[Var];
      bool Suitable = BelowLower
                          ? ((Coeff.isPositive() && CanIncrease) ||
                             (Coeff.isNegative() && CanDecrease))
                          : ((Coeff.isPositive() && CanDecrease) ||
                             (Coeff.isNegative() && CanIncrease));
      if (Suitable && (Pivot < 0 || Var < Pivot))
        Pivot = Var;
    }
    if (Pivot < 0)
      return LinResult::Unsat;
    Rational Target =
        BelowLower ? *Lower[Violating] : *Upper[Violating];
    pivotAndUpdate(Violating, Pivot, Target);
  }
}

LinResult Simplex::branchAndBound(int &NodeBudget) {
  if (NodeBudget-- <= 0)
    return LinResult::Unknown;

  LinResult Relaxed = checkRational();
  if (Relaxed != LinResult::Sat)
    return Relaxed;

  // Find an integer variable with a fractional value.
  int Fractional = -1;
  for (int Var = 0; Var != numVars(); ++Var) {
    if (IsInteger[Var] && !Assignment[Var].isInteger()) {
      Fractional = Var;
      break;
    }
  }
  if (Fractional < 0)
    return LinResult::Sat;

  int64_t Floor = Assignment[Fractional].floor();
  bool SawUnknown = false;

  {
    Simplex Down(*this);
    bool BoundOk = Down.assertUpper(Fractional, Rational(Floor));
    Poisoned |= Down.Poisoned; // Sticks even when the branch is cut.
    if (BoundOk) {
      LinResult R = Down.branchAndBound(NodeBudget);
      Poisoned |= Down.Poisoned;
      if (R == LinResult::Sat) {
        *this = std::move(Down);
        return LinResult::Sat;
      }
      SawUnknown |= R == LinResult::Unknown;
    }
  }
  {
    Simplex Up(*this);
    bool BoundOk = Up.assertLower(Fractional, Rational(Floor + 1));
    Poisoned |= Up.Poisoned;
    if (BoundOk) {
      LinResult R = Up.branchAndBound(NodeBudget);
      Poisoned |= Up.Poisoned;
      if (R == LinResult::Sat) {
        *this = std::move(Up);
        return LinResult::Sat;
      }
      SawUnknown |= R == LinResult::Unknown;
    }
  }
  return SawUnknown ? LinResult::Unknown : LinResult::Unsat;
}

LinResult Simplex::check(int NodeBudget) {
  LinResult R = branchAndBound(NodeBudget);
  return Poisoned ? LinResult::Unknown : R;
}

Rational Simplex::value(int Var) const { return Assignment[Var]; }

LinResult Simplex::probeUpper(const LinearExpr &Expr, const Rational &Bound,
                              int NodeBudget) const {
  Simplex Probe(*this);
  bool Integral = true;
  for (const auto &[Var, Coeff] : Expr)
    Integral &= Probe.IsInteger[Var] && Coeff.isInteger();
  int Slack = Probe.defineVar(Expr, Integral);
  bool BoundOk = Probe.assertUpper(Slack, Bound);
  if (Probe.Poisoned)
    return LinResult::Unknown; // A poisoned clash may be spurious.
  if (!BoundOk)
    return LinResult::Unsat;
  return Probe.check(NodeBudget);
}

LinResult Simplex::probeLower(const LinearExpr &Expr, const Rational &Bound,
                              int NodeBudget) const {
  Simplex Probe(*this);
  bool Integral = true;
  for (const auto &[Var, Coeff] : Expr)
    Integral &= Probe.IsInteger[Var] && Coeff.isInteger();
  int Slack = Probe.defineVar(Expr, Integral);
  bool BoundOk = Probe.assertLower(Slack, Bound);
  if (Probe.Poisoned)
    return LinResult::Unknown; // A poisoned clash may be spurious.
  if (!BoundOk)
    return LinResult::Unsat;
  return Probe.check(NodeBudget);
}
