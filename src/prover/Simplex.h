//===- Simplex.h - Linear integer arithmetic solver -------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A general Simplex solver in the style of Dutertre & de Moura ("A Fast
/// Linear-Arithmetic Solver for DPLL(T)"): variables with optional lower
/// and upper bounds, a tableau of basic-variable definitions, Bland's
/// rule for termination, plus branch-and-bound over the rational
/// relaxation for integer feasibility. This is the arithmetic half of
/// the Nelson–Oppen prover the paper obtains from Simplify/Vampyre.
///
//===----------------------------------------------------------------------===//

#ifndef PROVER_SIMPLEX_H
#define PROVER_SIMPLEX_H

#include "prover/Rational.h"

#include <map>
#include <optional>
#include <vector>

namespace slam {
namespace prover {

/// A linear combination of solver variables: var index -> coefficient.
using LinearExpr = std::map<int, Rational>;

/// Feasibility answer; Unknown arises when the branch-and-bound node
/// budget is exhausted or when Rational arithmetic overflows 64 bits
/// (the poisoned solver answers conservatively rather than wrong).
enum class LinResult { Sat, Unsat, Unknown };

/// Incremental-by-copy Simplex instance. Build the problem with
/// newVar/addRow/assertBound, then call check(). The object is cheap to
/// copy, which is how branch-and-bound and entailment probes explore
/// hypothetical constraints.
class Simplex {
public:
  /// Creates a fresh variable; \p Integer requests integrality during
  /// branch-and-bound (every SIL-C variable is an integer).
  int newVar(bool Integer = true);

  /// Creates a variable constrained to equal \p Definition (a slack
  /// variable with a tableau row). Bounds placed on the result constrain
  /// the linear expression.
  int defineVar(const LinearExpr &Definition, bool Integer = true);

  /// Asserts Var >= Bound. Returns false on an immediately detected
  /// bound clash (lower > upper).
  bool assertLower(int Var, const Rational &Bound);

  /// Asserts Var <= Bound.
  bool assertUpper(int Var, const Rational &Bound);

  /// Decides feasibility over the integers (for integer-marked vars).
  /// \p NodeBudget bounds branch-and-bound nodes.
  LinResult check(int NodeBudget = 200);

  /// After a Sat check(), the value of \p Var in the found model.
  Rational value(int Var) const;

  /// Convenience probe: is the current system plus `Expr <= Bound`
  /// satisfiable? Does not modify this solver.
  LinResult probeUpper(const LinearExpr &Expr, const Rational &Bound,
                       int NodeBudget = 200) const;

  /// Probe for `Expr >= Bound`.
  LinResult probeLower(const LinearExpr &Expr, const Rational &Bound,
                       int NodeBudget = 200) const;

  int numVars() const { return static_cast<int>(Lower.size()); }

private:
  LinResult checkRational();
  void pivot(int Basic, int NonBasic);
  void pivotAndUpdate(int Basic, int NonBasic, const Rational &NewValue);
  LinResult branchAndBound(int &NodeBudget);

  /// Records whether \p R is the overflow poison; once set, check()
  /// answers Unknown (the tableau can no longer be trusted).
  void note(const Rational &R) { Poisoned |= R.isOverflow(); }

  /// Row per basic variable: Basic = sum of coeff * nonbasic.
  std::map<int, LinearExpr> Rows;
  std::vector<std::optional<Rational>> Lower;
  std::vector<std::optional<Rational>> Upper;
  std::vector<Rational> Assignment;
  std::vector<bool> IsInteger;
  std::vector<bool> IsBasic;
  bool Poisoned = false;
};

} // namespace prover
} // namespace slam

#endif // PROVER_SIMPLEX_H
