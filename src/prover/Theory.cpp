//===- Theory.cpp - EUF + LIA with equality propagation -------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "prover/Theory.h"

#include "prover/CongruenceClosure.h"
#include "prover/Simplex.h"

#include <algorithm>
#include <map>
#include <optional>

using namespace slam;
using namespace slam::prover;
using logic::ExprKind;
using logic::ExprRef;

namespace {

/// True if \p E contains an arithmetic operator (so LIA has work to do).
bool containsArith(ExprRef E) {
  switch (E->kind()) {
  case ExprKind::Neg:
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
  case ExprKind::Div:
  case ExprKind::Mod:
    return true;
  default:
    break;
  }
  for (ExprRef Op : E->operands())
    if (containsArith(Op))
      return true;
  return false;
}

/// One combined-check instance.
class Combination {
public:
  TheoryResult run(const std::vector<Literal> &Literals);

private:
  /// Linearizes a term into unit-var + leaf-var coefficients. Leaves
  /// (variables, derefs, fields, indices, address-ofs, non-linear
  /// operators) become LIA variables shared with the EUF side.
  LinearExpr linearize(ExprRef E);

  int leafVar(ExprRef E);

  /// Adds one literal's arithmetic meaning to \p S; negative equalities
  /// are deferred to the split check. Returns false on infeasibility.
  bool addAtomToLIA(Simplex &S, ExprRef Atom, bool Positive);

  void collectConstantsAndAddrs(ExprRef E);

  static constexpr int UnitVar = 0;

  CongruenceClosure CC;
  std::map<ExprRef, int> LeafVars;
  std::vector<ExprRef> LeafOrder;
  std::vector<ExprRef> ConstantTerms;
  std::vector<ExprRef> AddrOfVarTerms;
  std::vector<std::pair<ExprRef, ExprRef>> Disequalities;
  bool SawUnknown = false;
};

LinearExpr Combination::linearize(ExprRef E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return {{UnitVar, Rational(E->intValue())}};
  case ExprKind::NullLit:
    return {};
  case ExprKind::Neg: {
    LinearExpr Inner = linearize(E->op(0));
    for (auto &[Var, Coeff] : Inner)
      Coeff = -Coeff;
    return Inner;
  }
  case ExprKind::Add:
  case ExprKind::Sub: {
    LinearExpr L = linearize(E->op(0));
    LinearExpr R = linearize(E->op(1));
    bool Negate = E->kind() == ExprKind::Sub;
    for (const auto &[Var, Coeff] : R) {
      Rational &Slot = L[Var];
      Slot += Negate ? -Coeff : Coeff;
      if (Slot.isZero())
        L.erase(Var);
    }
    return L;
  }
  case ExprKind::Mul: {
    // Linear only when one side is a constant.
    LinearExpr L = linearize(E->op(0));
    LinearExpr R = linearize(E->op(1));
    auto ConstantOf = [](const LinearExpr &X) -> std::optional<Rational> {
      if (X.empty())
        return Rational(0);
      if (X.size() == 1 && X.begin()->first == UnitVar)
        return X.begin()->second;
      return std::nullopt;
    };
    if (auto C = ConstantOf(L)) {
      for (auto &[Var, Coeff] : R)
        Coeff *= *C;
      return R;
    }
    if (auto C = ConstantOf(R)) {
      for (auto &[Var, Coeff] : L)
        Coeff *= *C;
      return L;
    }
    return {{leafVar(E), Rational(1)}};
  }
  default:
    return {{leafVar(E), Rational(1)}};
  }
}

int Combination::leafVar(ExprRef E) {
  auto It = LeafVars.find(E);
  if (It != LeafVars.end())
    return It->second;
  int Var = static_cast<int>(LeafOrder.size()) + 1; // 0 is the unit var.
  LeafVars.emplace(E, Var);
  LeafOrder.push_back(E);
  return Var;
}

void Combination::collectConstantsAndAddrs(ExprRef E) {
  if (E->kind() == ExprKind::IntLit || E->kind() == ExprKind::NullLit) {
    if (std::find(ConstantTerms.begin(), ConstantTerms.end(), E) ==
        ConstantTerms.end())
      ConstantTerms.push_back(E);
  }
  if (E->kind() == ExprKind::AddrOf && E->op(0)->kind() == ExprKind::Var) {
    if (std::find(AddrOfVarTerms.begin(), AddrOfVarTerms.end(), E) ==
        AddrOfVarTerms.end())
      AddrOfVarTerms.push_back(E);
  }
  for (ExprRef Op : E->operands())
    collectConstantsAndAddrs(Op);
}

bool Combination::addAtomToLIA(Simplex &S, ExprRef Atom, bool Positive) {
  ExprKind Kind = Positive ? Atom->kind() : logic::negateCmp(Atom->kind());
  if (Kind == ExprKind::Ne) {
    Disequalities.emplace_back(Atom->op(0), Atom->op(1));
    return true;
  }
  LinearExpr Diff = linearize(Atom->op(0));
  for (const auto &[Var, Coeff] : linearize(Atom->op(1))) {
    Rational &Slot = Diff[Var];
    Slot -= Coeff;
    if (Slot.isZero())
      Diff.erase(Var);
  }
  int Slack = S.defineVar(Diff, /*Integer=*/true);
  switch (Kind) {
  case ExprKind::Eq:
    return S.assertLower(Slack, Rational(0)) &&
           S.assertUpper(Slack, Rational(0));
  case ExprKind::Lt:
    return S.assertUpper(Slack, Rational(-1));
  case ExprKind::Le:
    return S.assertUpper(Slack, Rational(0));
  case ExprKind::Gt:
    return S.assertLower(Slack, Rational(1));
  case ExprKind::Ge:
    return S.assertLower(Slack, Rational(0));
  default:
    assert(false && "not a comparison");
    return true;
  }
}

TheoryResult Combination::run(const std::vector<Literal> &Literals) {
  // ---- EUF side ---------------------------------------------------------
  bool HasArith = false;
  for (const Literal &L : Literals) {
    assert(logic::isCmpKind(L.Atom->kind()) && "atoms are comparisons");
    int A = CC.addTerm(L.Atom->op(0));
    int B = CC.addTerm(L.Atom->op(1));
    collectConstantsAndAddrs(L.Atom);
    HasArith |= containsArith(L.Atom);
    ExprKind Kind =
        L.Positive ? L.Atom->kind() : logic::negateCmp(L.Atom->kind());
    bool Ok = true;
    switch (Kind) {
    case ExprKind::Eq:
      Ok = CC.assertEqual(A, B);
      break;
    case ExprKind::Ne:
    case ExprKind::Lt:
    case ExprKind::Gt:
      // Strict comparisons imply disequality.
      Ok = CC.assertDisequal(A, B);
      break;
    default:
      HasArith = true; // Le / Ge orderings are arithmetic facts.
      break;
    }
    if (Kind == ExprKind::Lt || Kind == ExprKind::Gt)
      HasArith = true;
    if (!Ok)
      return TheoryResult::Unsat;
  }

  // ---- Memory-model axioms ----------------------------------------------
  // Distinct integer literals differ; NULL is 0.
  for (size_t I = 0; I != ConstantTerms.size(); ++I) {
    for (size_t J = I + 1; J != ConstantTerms.size(); ++J) {
      ExprRef A = ConstantTerms[I], B = ConstantTerms[J];
      auto ValueOf = [](ExprRef E) {
        return E->kind() == ExprKind::NullLit ? 0 : E->intValue();
      };
      bool Ok = ValueOf(A) == ValueOf(B)
                    ? CC.assertEqual(CC.addTerm(A), CC.addTerm(B))
                    : CC.assertDisequal(CC.addTerm(A), CC.addTerm(B));
      if (!Ok)
        return TheoryResult::Unsat;
    }
  }
  // Addresses of distinct variables differ and are non-null/non-zero.
  for (size_t I = 0; I != AddrOfVarTerms.size(); ++I) {
    for (size_t J = I + 1; J != AddrOfVarTerms.size(); ++J) {
      if (AddrOfVarTerms[I]->op(0) == AddrOfVarTerms[J]->op(0))
        continue;
      if (!CC.assertDisequal(CC.addTerm(AddrOfVarTerms[I]),
                             CC.addTerm(AddrOfVarTerms[J])))
        return TheoryResult::Unsat;
    }
    for (ExprRef C : ConstantTerms) {
      int64_t V = C->kind() == ExprKind::NullLit ? 0 : C->intValue();
      if (V == 0 &&
          !CC.assertDisequal(CC.addTerm(AddrOfVarTerms[I]), CC.addTerm(C)))
        return TheoryResult::Unsat;
    }
  }

  // Fast path: with no orderings and no arithmetic operators, congruence
  // closure alone is a decision procedure for the conjunction.
  if (!HasArith)
    return TheoryResult::Sat; // EUF conflicts were detected above.

  // ---- Leaf discovery (fixes simplex variable ids) ------------------------
  for (const Literal &L : Literals) {
    (void)linearize(L.Atom->op(0));
    (void)linearize(L.Atom->op(1));
  }

  // Propagation between the theories only matters when some leaf has
  // functional structure (congruence can then derive new facts).
  bool NeedPropagation = false;
  for (ExprRef Leaf : LeafOrder)
    NeedPropagation |= Leaf->numOperands() != 0;
  int MaxRounds = NeedPropagation ? 8 : 1;

  // ---- Combination loop ---------------------------------------------------
  // Rebuild the LIA instance with all EUF-known equalities, decide, then
  // import LIA-entailed equalities back into the EUF side; repeat to a
  // fixpoint. Negative equalities get a complete integer split check.
  for (int Round = 0; Round != MaxRounds; ++Round) {
    Disequalities.clear();
    Simplex S;
    int Unit = S.newVar(true);
    (void)Unit;
    assert(Unit == UnitVar && "unit variable must be variable 0");
    if (!S.assertLower(UnitVar, Rational(1)) ||
        !S.assertUpper(UnitVar, Rational(1)))
      return TheoryResult::Unsat;
    for (size_t I = 0; I != LeafOrder.size(); ++I)
      S.newVar(true);

    for (const Literal &L : Literals)
      if (!addAtomToLIA(S, L.Atom, L.Positive))
        return TheoryResult::Unsat;

    // AddrOf leaves are positive addresses.
    for (ExprRef Leaf : LeafOrder)
      if (Leaf->kind() == ExprKind::AddrOf)
        if (!S.assertLower(LeafVars[Leaf], Rational(1)))
          return TheoryResult::Unsat;

    // EUF -> LIA: leaves in the same congruence class are equal numbers;
    // a leaf congruent to an integer literal is pinned to its value.
    for (size_t I = 0; I != LeafOrder.size(); ++I) {
      int TI = CC.addTerm(LeafOrder[I]);
      for (size_t J = I + 1; J != LeafOrder.size(); ++J) {
        int TJ = CC.addTerm(LeafOrder[J]);
        if (!CC.areEqual(TI, TJ))
          continue;
        LinearExpr Diff{{LeafVars[LeafOrder[I]], Rational(1)},
                        {LeafVars[LeafOrder[J]], Rational(-1)}};
        int Slack = S.defineVar(Diff, true);
        if (!S.assertLower(Slack, Rational(0)) ||
            !S.assertUpper(Slack, Rational(0)))
          return TheoryResult::Unsat;
      }
      for (ExprRef C : ConstantTerms) {
        if (!CC.areEqual(TI, CC.addTerm(C)))
          continue;
        int64_t V = C->kind() == ExprKind::NullLit ? 0 : C->intValue();
        if (!S.assertLower(LeafVars[LeafOrder[I]], Rational(V)) ||
            !S.assertUpper(LeafVars[LeafOrder[I]], Rational(V)))
          return TheoryResult::Unsat;
      }
    }

    LinResult Base = S.check();
    if (Base == LinResult::Unsat)
      return TheoryResult::Unsat;
    if (Base == LinResult::Unknown)
      SawUnknown = true;

    // Integer split check for each disequality: if both t < u and t > u
    // are infeasible then t = u is entailed, refuting the disequality.
    // If exactly one side is feasible, assert it (e.g. x >= 0 && x != 0
    // strengthens to x >= 1).
    bool Strengthened = true;
    while (Strengthened) {
      Strengthened = false;
      for (auto It = Disequalities.begin(); It != Disequalities.end();) {
        LinearExpr Diff = linearize(It->first);
        for (const auto &[Var, Coeff] : linearize(It->second)) {
          Rational &Slot = Diff[Var];
          Slot -= Coeff;
          if (Slot.isZero())
            Diff.erase(Var);
        }
        LinResult Lo = S.probeUpper(Diff, Rational(-1));
        LinResult Hi = S.probeLower(Diff, Rational(1));
        if (Lo == LinResult::Unsat && Hi == LinResult::Unsat)
          return TheoryResult::Unsat;
        if (Lo == LinResult::Unknown || Hi == LinResult::Unknown)
          SawUnknown = true;
        if (Lo == LinResult::Unsat && Hi == LinResult::Sat) {
          int Slack = S.defineVar(Diff, true);
          if (!S.assertLower(Slack, Rational(1)))
            return TheoryResult::Unsat;
          It = Disequalities.erase(It);
          Strengthened = true;
          continue;
        }
        if (Hi == LinResult::Unsat && Lo == LinResult::Sat) {
          int Slack = S.defineVar(Diff, true);
          if (!S.assertUpper(Slack, Rational(-1)))
            return TheoryResult::Unsat;
          It = Disequalities.erase(It);
          Strengthened = true;
          continue;
        }
        ++It;
      }
      if (Strengthened && S.check() == LinResult::Unsat)
        return TheoryResult::Unsat;
    }

    if (!NeedPropagation)
      break;

    // LIA -> EUF: entailed equalities between shared leaves (and between
    // leaves and integer constants) feed congruence closure.
    bool Merged = false;
    auto Entailed = [&](const LinearExpr &Diff) {
      return S.probeUpper(Diff, Rational(-1)) == LinResult::Unsat &&
             S.probeLower(Diff, Rational(1)) == LinResult::Unsat;
    };
    for (size_t I = 0; I != LeafOrder.size() && !Merged; ++I) {
      int TI = CC.addTerm(LeafOrder[I]);
      for (size_t J = I + 1; J != LeafOrder.size() && !Merged; ++J) {
        int TJ = CC.addTerm(LeafOrder[J]);
        if (CC.areEqual(TI, TJ))
          continue;
        LinearExpr Diff{{LeafVars[LeafOrder[I]], Rational(1)},
                        {LeafVars[LeafOrder[J]], Rational(-1)}};
        if (Entailed(Diff)) {
          if (!CC.assertEqual(TI, TJ))
            return TheoryResult::Unsat;
          Merged = true;
        }
      }
      if (Merged)
        break;
      for (ExprRef C : ConstantTerms) {
        if (CC.areEqual(TI, CC.addTerm(C)))
          continue;
        int64_t V = C->kind() == ExprKind::NullLit ? 0 : C->intValue();
        LinearExpr Diff{{LeafVars[LeafOrder[I]], Rational(1)},
                        {UnitVar, Rational(-V)}};
        if (Entailed(Diff)) {
          if (!CC.assertEqual(TI, CC.addTerm(C)))
            return TheoryResult::Unsat;
          Merged = true;
          break;
        }
      }
    }
    if (!Merged)
      break;
  }

  return SawUnknown ? TheoryResult::Unknown : TheoryResult::Sat;
}

} // namespace

TheoryResult prover::checkConjunction(const std::vector<Literal> &Literals) {
  // A trivially empty conjunction is satisfiable.
  if (Literals.empty())
    return TheoryResult::Sat;
  Combination C;
  return C.run(Literals);
}
