//===- Theory.h - Nelson–Oppen combination of EUF and LIA -------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides satisfiability of conjunctions of comparison literals over the
/// predicate language by combining congruence closure (equality with
/// uninterpreted functions) and Simplex (linear integer arithmetic) with
/// bidirectional equality propagation — the architecture of the
/// Nelson–Oppen provers (Simplify, Vampyre) the paper builds on.
///
/// Built-in axioms of the memory model:
///   * distinct integer literals are distinct;
///   * NULL equals the integer 0;
///   * addresses of distinct variables are distinct;
///   * the address of a variable is neither NULL nor 0.
///
/// The procedure is sound for Unsat answers; a Sat answer may be
/// approximate (the combination is propagation-based, not exhaustive),
/// which the abstraction tolerates by conservatively weakening — exactly
/// the paper's treatment of incomplete provers.
///
//===----------------------------------------------------------------------===//

#ifndef PROVER_THEORY_H
#define PROVER_THEORY_H

#include "logic/Expr.h"

#include <vector>

namespace slam {
namespace prover {

/// A theory literal: a comparison atom with a polarity.
struct Literal {
  logic::ExprRef Atom;
  bool Positive;
};

enum class TheoryResult { Sat, Unsat, Unknown };

/// Stateless entry point: decides one conjunction of literals.
TheoryResult checkConjunction(const std::vector<Literal> &Literals);

} // namespace prover
} // namespace slam

#endif // PROVER_THEORY_H
