//===- Cegar.cpp - abstract / check / refine ----------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "slam/Cegar.h"

#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "cfront/Sema.h"
#include "slam/Newton.h"

using namespace slam;
using namespace slam::slamtool;
using namespace slam::cfront;

SlamResult slamtool::checkProgram(const Program &P,
                                  const c2bp::PredicateSet &InitialPreds,
                                  logic::LogicContext &Ctx,
                                  const SlamOptions &Options,
                                  StatsRegistry *Stats) {
  SlamResult Result;
  Result.Predicates = InitialPreds;
  prover::Prover NewtonProver(Ctx, Stats);

  for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
    Result.Iterations = Iter + 1;
    if (Stats)
      Stats->add("slam.iterations");

    // Phase 1: abstraction.
    c2bp::C2bpTool Tool(P, Result.Predicates, Ctx, Options.C2bp, Stats);
    std::unique_ptr<bp::BProgram> BP = Tool.run();

    // Phase 2: model checking.
    bebop::Bebop Checker(*BP, Stats);
    bebop::CheckResult Check = Checker.run(Options.EntryProc);
    if (!Check.AssertViolated) {
      Result.V = SlamResult::Verdict::Validated;
      return Result;
    }

    // Phase 3: predicate discovery on the abstract counterexample.
    NewtonResult NR = analyzeTrace(P, Check.Trace, Ctx, NewtonProver,
                                   Result.Predicates, Stats);
    if (NR.Feasible) {
      Result.V = SlamResult::Verdict::BugFound;
      Result.Trace = std::move(Check.Trace);
      return Result;
    }
    if (NR.NewPreds.totalCount() == 0) {
      Result.V = SlamResult::Verdict::Unknown;
      Result.Trace = std::move(Check.Trace);
      return Result;
    }
    for (logic::ExprRef E : NR.NewPreds.Globals)
      Result.Predicates.addGlobal(E);
    for (const auto &[ProcName, V] : NR.NewPreds.PerProc)
      for (logic::ExprRef E : V)
        Result.Predicates.addLocal(ProcName, E);
  }
  Result.V = SlamResult::Verdict::Unknown;
  return Result;
}

std::optional<SlamResult> slamtool::checkSafety(
    std::string_view Source, const SafetySpec &Spec,
    logic::LogicContext &Ctx, DiagnosticEngine &Diags,
    const SlamOptions &Options, StatsRegistry *Stats) {
  std::unique_ptr<Program> P = parseProgram(Source, Diags);
  if (!P)
    return std::nullopt;
  if (!analyze(*P, Diags))
    return std::nullopt;
  if (!instrument(*P, Spec, Options.EntryProc, Diags))
    return std::nullopt;
  if (!normalize(*P, Diags))
    return std::nullopt;
  DiagnosticEngine Rerun;
  if (!analyze(*P, Rerun)) {
    for (const Diagnostic &D : Rerun.diagnostics())
      Diags.error(D.Loc, "internal (instrumentation): " + D.Message);
    return std::nullopt;
  }

  c2bp::PredicateSet Seeds;
  seedPredicates(Ctx, Spec, Seeds);
  return checkProgram(*P, Seeds, Ctx, Options, Stats);
}
