//===- Cegar.cpp - abstract / check / refine ----------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "slam/Cegar.h"

#include "c2bp/AbstractionMemo.h"
#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "cfront/Sema.h"
#include "prover/CacheBackend.h"
#include "slam/Newton.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace slam;
using namespace slam::slamtool;
using namespace slam::cfront;

SlamResult slamtool::checkProgram(const Program &P,
                                  const c2bp::PredicateSet &InitialPreds,
                                  logic::LogicContext &Ctx,
                                  const PipelineOptions &Options,
                                  StatsRegistry *Stats) {
  SlamResult Result;
  Result.Predicates = InitialPreds;
  // The flight recorder reads per-iteration counter deltas, so run over
  // a local registry when the caller did not supply one.
  StatsRegistry LocalStats;
  StatsRegistry *S = Stats ? Stats : &LocalStats;

  // Cross-run persistence: a backend (injected, or opened from
  // --prover-cache) is layered under a *run-wide* shared prover cache,
  // which every iteration's abstraction and Newton's feasibility
  // queries go through — so results flow across iterations in memory
  // and across runs on disk. No backend, no run-wide cache: each
  // iteration keeps its classic per-run caching behavior.
  std::unique_ptr<prover::FileCacheBackend> OwnedBackend;
  prover::CacheBackend *Backend = Options.Backend;
  if (!Backend && !Options.ProverCachePath.empty()) {
    OwnedBackend =
        std::make_unique<prover::FileCacheBackend>(Options.ProverCachePath);
    Backend = OwnedBackend.get();
  }
  std::unique_ptr<prover::SharedProverCache> RunCache;
  if (Backend)
    RunCache = std::make_unique<prover::SharedProverCache>(Backend);

  prover::Prover NewtonProver(Ctx, S, RunCache.get());

  // Cross-iteration reuse: the memo outlives the per-iteration C2bp
  // tools; each iteration replays searches committed by earlier ones
  // and commits its own at the end of the round.
  c2bp::AbstractionMemo Memo;
  c2bp::C2bpOptions C2bpOpts = Options.C2bp;
  if (Options.Cegar.Incremental)
    C2bpOpts.Memo = &Memo;
  if (RunCache)
    C2bpOpts.ExternalCache = RunCache.get();

  auto CacheHits = [&] {
    return S->get("prover.cache_hits") + S->get("prover.shared_cache_hits") +
           S->get("prover.neg_cache_hits");
  };

  for (int Iter = 0; Iter != Options.Cegar.MaxIterations; ++Iter) {
    Result.Iterations = Iter + 1;
    S->add("slam.iterations");

    TraceSpan IterSpan("slam.iteration", "slam");
    if (IterSpan.enabled())
      IterSpan.arg("iter", Iter + 1);

    IterationRecord Rec;
    Rec.Iteration = Iter + 1;
    Rec.Predicates = Result.Predicates.totalCount();
    uint64_t Calls0 = S->get("prover.calls");
    uint64_t Hits0 = CacheHits();
    uint64_t Disk0 = S->get("prover.disk_cache_hits");
    uint64_t Cubes0 = S->get("c2bp.cubes_checked");
    uint64_t Reused0 = S->get("c2bp.stmts_reused");
    uint64_t Recomp0 = S->get("c2bp.stmts_recomputed");

    // Phase 1: abstraction.
    Timer C2bpTime;
    c2bp::C2bpTool Tool(P, Result.Predicates, Ctx, C2bpOpts, S);
    std::unique_ptr<bp::BProgram> BP = Tool.run();
    // Promote this round's staged cube-search results; iteration k+1
    // re-searches only statements whose (phi, cone) signature the new
    // predicates changed. Committing between iterations (never during
    // one) is what keeps replay decisions schedule-independent.
    Memo.commit();
    Rec.C2bpSeconds = C2bpTime.seconds();

    // Phase 2: model checking.
    Timer BebopTime;
    bebop::Bebop Checker(*BP, S);
    bebop::CheckResult Check = Checker.run(Options.Cegar.EntryProc);
    Rec.BebopSeconds = BebopTime.seconds();
    Rec.BddNodes = Checker.bddNodes();

    auto FinishRecord = [&] {
      Rec.ProverCalls = S->get("prover.calls") - Calls0;
      Rec.CacheHits = CacheHits() - Hits0;
      Rec.DiskHits = S->get("prover.disk_cache_hits") - Disk0;
      Rec.Cubes = S->get("c2bp.cubes_checked") - Cubes0;
      Rec.StmtsReused = S->get("c2bp.stmts_reused") - Reused0;
      Rec.StmtsRecomputed = S->get("c2bp.stmts_recomputed") - Recomp0;
      Result.FlightLog.push_back(Rec);
    };

    if (!Check.AssertViolated) {
      Result.V = SlamResult::Verdict::Validated;
      FinishRecord();
      return Result;
    }

    // Phase 3: predicate discovery on the abstract counterexample.
    Timer NewtonTime;
    NewtonResult NR = analyzeTrace(P, Check.Trace, Ctx, NewtonProver,
                                   Result.Predicates, S);
    Rec.NewtonSeconds = NewtonTime.seconds();
    Rec.NewPredicates = NR.NewPreds.totalCount();
    FinishRecord();
    if (NR.Feasible) {
      Result.V = SlamResult::Verdict::BugFound;
      Result.Trace = std::move(Check.Trace);
      return Result;
    }
    if (NR.NewPreds.totalCount() == 0) {
      Result.V = SlamResult::Verdict::Unknown;
      Result.Trace = std::move(Check.Trace);
      return Result;
    }
    for (logic::ExprRef E : NR.NewPreds.Globals)
      Result.Predicates.addGlobal(E);
    for (const auto &[ProcName, V] : NR.NewPreds.PerProc)
      for (logic::ExprRef E : V)
        Result.Predicates.addLocal(ProcName, E);
  }
  Result.V = SlamResult::Verdict::Unknown;
  return Result;
}

std::optional<SlamResult> slamtool::checkSafety(
    std::string_view Source, const SafetySpec &Spec,
    logic::LogicContext &Ctx, DiagnosticEngine &Diags,
    const PipelineOptions &Options, StatsRegistry *Stats) {
  std::unique_ptr<Program> P;
  {
    TraceSpan Span("cfront.parse", "cfront");
    P = parseProgram(Source, Diags);
  }
  if (!P)
    return std::nullopt;
  {
    TraceSpan Span("cfront.analyze", "cfront");
    if (!analyze(*P, Diags))
      return std::nullopt;
  }
  {
    TraceSpan Span("cfront.instrument", "cfront");
    if (!instrument(*P, Spec, Options.Cegar.EntryProc, Diags))
      return std::nullopt;
  }
  {
    TraceSpan Span("cfront.normalize", "cfront");
    if (!normalize(*P, Diags))
      return std::nullopt;
    DiagnosticEngine Rerun;
    if (!analyze(*P, Rerun)) {
      for (const Diagnostic &D : Rerun.diagnostics())
        Diags.error(D.Loc, "internal (instrumentation): " + D.Message);
      return std::nullopt;
    }
  }

  c2bp::PredicateSet Seeds;
  seedPredicates(Ctx, Spec, Seeds);
  return checkProgram(*P, Seeds, Ctx, Options, Stats);
}
