//===- Cegar.cpp - abstract / check / refine ----------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "slam/Cegar.h"

#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "cfront/Sema.h"
#include "slam/Newton.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace slam;
using namespace slam::slamtool;
using namespace slam::cfront;

SlamResult slamtool::checkProgram(const Program &P,
                                  const c2bp::PredicateSet &InitialPreds,
                                  logic::LogicContext &Ctx,
                                  const SlamOptions &Options,
                                  StatsRegistry *Stats) {
  SlamResult Result;
  Result.Predicates = InitialPreds;
  // The flight recorder reads per-iteration counter deltas, so run over
  // a local registry when the caller did not supply one.
  StatsRegistry LocalStats;
  StatsRegistry *S = Stats ? Stats : &LocalStats;
  prover::Prover NewtonProver(Ctx, S);

  auto CacheHits = [&] {
    return S->get("prover.cache_hits") + S->get("prover.shared_cache_hits") +
           S->get("prover.neg_cache_hits");
  };

  for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
    Result.Iterations = Iter + 1;
    S->add("slam.iterations");

    TraceSpan IterSpan("slam.iteration", "slam");
    if (IterSpan.enabled())
      IterSpan.arg("iter", Iter + 1);

    IterationRecord Rec;
    Rec.Iteration = Iter + 1;
    Rec.Predicates = Result.Predicates.totalCount();
    uint64_t Calls0 = S->get("prover.calls");
    uint64_t Hits0 = CacheHits();
    uint64_t Cubes0 = S->get("c2bp.cubes_checked");

    // Phase 1: abstraction.
    Timer C2bpTime;
    c2bp::C2bpTool Tool(P, Result.Predicates, Ctx, Options.C2bp, S);
    std::unique_ptr<bp::BProgram> BP = Tool.run();
    Rec.C2bpSeconds = C2bpTime.seconds();

    // Phase 2: model checking.
    Timer BebopTime;
    bebop::Bebop Checker(*BP, S);
    bebop::CheckResult Check = Checker.run(Options.EntryProc);
    Rec.BebopSeconds = BebopTime.seconds();
    Rec.BddNodes = Checker.bddNodes();

    auto FinishRecord = [&] {
      Rec.ProverCalls = S->get("prover.calls") - Calls0;
      Rec.CacheHits = CacheHits() - Hits0;
      Rec.Cubes = S->get("c2bp.cubes_checked") - Cubes0;
      Result.FlightLog.push_back(Rec);
    };

    if (!Check.AssertViolated) {
      Result.V = SlamResult::Verdict::Validated;
      FinishRecord();
      return Result;
    }

    // Phase 3: predicate discovery on the abstract counterexample.
    Timer NewtonTime;
    NewtonResult NR = analyzeTrace(P, Check.Trace, Ctx, NewtonProver,
                                   Result.Predicates, S);
    Rec.NewtonSeconds = NewtonTime.seconds();
    Rec.NewPredicates = NR.NewPreds.totalCount();
    FinishRecord();
    if (NR.Feasible) {
      Result.V = SlamResult::Verdict::BugFound;
      Result.Trace = std::move(Check.Trace);
      return Result;
    }
    if (NR.NewPreds.totalCount() == 0) {
      Result.V = SlamResult::Verdict::Unknown;
      Result.Trace = std::move(Check.Trace);
      return Result;
    }
    for (logic::ExprRef E : NR.NewPreds.Globals)
      Result.Predicates.addGlobal(E);
    for (const auto &[ProcName, V] : NR.NewPreds.PerProc)
      for (logic::ExprRef E : V)
        Result.Predicates.addLocal(ProcName, E);
  }
  Result.V = SlamResult::Verdict::Unknown;
  return Result;
}

std::optional<SlamResult> slamtool::checkSafety(
    std::string_view Source, const SafetySpec &Spec,
    logic::LogicContext &Ctx, DiagnosticEngine &Diags,
    const SlamOptions &Options, StatsRegistry *Stats) {
  std::unique_ptr<Program> P;
  {
    TraceSpan Span("cfront.parse", "cfront");
    P = parseProgram(Source, Diags);
  }
  if (!P)
    return std::nullopt;
  {
    TraceSpan Span("cfront.analyze", "cfront");
    if (!analyze(*P, Diags))
      return std::nullopt;
  }
  {
    TraceSpan Span("cfront.instrument", "cfront");
    if (!instrument(*P, Spec, Options.EntryProc, Diags))
      return std::nullopt;
  }
  {
    TraceSpan Span("cfront.normalize", "cfront");
    if (!normalize(*P, Diags))
      return std::nullopt;
    DiagnosticEngine Rerun;
    if (!analyze(*P, Rerun)) {
      for (const Diagnostic &D : Rerun.diagnostics())
        Diags.error(D.Loc, "internal (instrumentation): " + D.Message);
      return std::nullopt;
    }
  }

  c2bp::PredicateSet Seeds;
  seedPredicates(Ctx, Spec, Seeds);
  return checkProgram(*P, Seeds, Ctx, Options, Stats);
}
