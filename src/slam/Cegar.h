//===- Cegar.h - The SLAM iterative refinement loop -------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SLAM process (Section 6.1): abstraction (C2bp), model checking
/// (Bebop), and predicate discovery (Newton), iterated until the
/// property is validated, a concrete error path is found, or refinement
/// makes no progress. The toolkit never reports a spurious error path:
/// every abstract counterexample is checked for concrete feasibility
/// before being surfaced.
///
//===----------------------------------------------------------------------===//

#ifndef SLAM_CEGAR_H
#define SLAM_CEGAR_H

#include "bebop/Bebop.h"
#include "c2bp/C2bp.h"
#include "slam/Pipeline.h"
#include "slam/SafetySpec.h"

#include <optional>
#include <string>
#include <vector>

namespace slam {
namespace slamtool {

/// One row of the CEGAR flight recorder: what a single
/// abstract-check-refine iteration cost and what it produced. Counter
/// fields are per-iteration deltas of the run's StatsRegistry; the BDD
/// node count is the checker's live total after the Bebop phase.
struct IterationRecord {
  int Iteration = 0;        ///< 1-based iteration number.
  size_t Predicates = 0;    ///< Predicates entering the iteration.
  uint64_t ProverCalls = 0; ///< Uncached prover decisions this iteration.
  uint64_t CacheHits = 0;   ///< Prover cache hits (private+shared+negation).
  uint64_t DiskHits = 0;    ///< Queries answered from the persistent cache.
  uint64_t Cubes = 0;       ///< Cubes enumerated by the C2bp searches.
  uint64_t StmtsReused = 0; ///< Statements replayed from the memo untouched.
  uint64_t StmtsRecomputed = 0; ///< Statements that re-ran a cube search.
  uint64_t BddNodes = 0;    ///< BDD nodes live after model checking.
  double C2bpSeconds = 0;
  double BebopSeconds = 0;
  double NewtonSeconds = 0;
  size_t NewPredicates = 0; ///< Predicates Newton added (0 on the last round).
};

struct SlamResult {
  enum class Verdict {
    Validated, ///< No assert can fail: the property holds.
    BugFound,  ///< A concretely feasible violating path exists.
    Unknown,   ///< Refinement stopped making progress (or hit the cap).
  };
  Verdict V = Verdict::Unknown;
  int Iterations = 0;
  /// The violating path (for BugFound), as C statement ids with
  /// procedure names.
  std::vector<bebop::TraceStep> Trace;
  /// Final predicate set (for reporting).
  c2bp::PredicateSet Predicates;
  /// Per-iteration flight recorder, one record per CEGAR round.
  std::vector<IterationRecord> FlightLog;
};

/// Runs the SLAM loop on a parsed+analyzed+normalized program with the
/// given initial predicates (often just the property seeds). Honors
/// Options.Cegar (loop control, incremental reuse), Options.C2bp (the
/// per-iteration abstraction), and Options.ProverCachePath/Backend
/// (cross-run prover-result persistence).
SlamResult checkProgram(const cfront::Program &P,
                        const c2bp::PredicateSet &InitialPreds,
                        logic::LogicContext &Ctx,
                        const PipelineOptions &Options = {},
                        StatsRegistry *Stats = nullptr);

/// End-to-end front door: parse \p Source, weave \p Spec, normalize,
/// seed `__state` predicates, and run the loop. Returns nullopt with
/// diagnostics on front-end failure.
std::optional<SlamResult> checkSafety(std::string_view Source,
                                      const SafetySpec &Spec,
                                      logic::LogicContext &Ctx,
                                      DiagnosticEngine &Diags,
                                      const PipelineOptions &Options = {},
                                      StatsRegistry *Stats = nullptr);

} // namespace slamtool
} // namespace slam

#endif // SLAM_CEGAR_H
