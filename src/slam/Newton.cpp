//===- Newton.cpp - Symbolic path replay ---------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "slam/Newton.h"

#include "c2bp/CExprToLogic.h"
#include "logic/ExprUtils.h"
#include "logic/WP.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>

using namespace slam;
using namespace slam::slamtool;
using namespace slam::cfront;
using logic::ExprRef;

namespace {

/// Statement-id index over the whole program.
struct StmtIndex {
  std::map<unsigned, const Stmt *> ById;
  std::map<const Stmt *, const FuncDecl *> Owner;

  void addStmt(const Stmt *S, const FuncDecl *F) {
    ById[S->Id] = S;
    Owner[S] = F;
    for (const Stmt *Sub : {S->Then, S->Else, S->Body, S->Sub})
      if (Sub)
        addStmt(Sub, F);
    for (const Stmt *Sub : S->Stmts)
      addStmt(Sub, F);
  }

  explicit StmtIndex(const Program &P) {
    for (const FuncDecl *F : P.Functions)
      if (F->Body)
        addStmt(F->Body, F);
  }
};

/// One collected path constraint with its provenance.
struct PathConstraint {
  ExprRef Sym;         ///< Over symbolic values.
  ExprRef ProgramForm; ///< Over program variables (for predicates).
  const FuncDecl *Proc;
  size_t TraceIdx;
};

/// Forward symbolic executor over the flattened trace.
class SymExec {
public:
  SymExec(const Program &P, logic::LogicContext &Ctx)
      : P(P), Ctx(Ctx), Index(P) {}

  /// Replays the trace; returns false if the trace is malformed (e.g.
  /// an origin id is missing — treated as "don't know" upstream).
  bool replay(const std::vector<bebop::TraceStep> &Trace);

  const std::vector<PathConstraint> &constraints() const {
    return Constraints;
  }
  const std::vector<bebop::TraceStep> *trace() const { return Tr; }

  const StmtIndex &index() const { return Index; }

private:
  struct Frame {
    const FuncDecl *F;
    int Activation;
    std::map<const VarDecl *, ExprRef> Vars;
    const Stmt *PendingCall = nullptr; // Call awaiting its Return.
  };

  ExprRef fresh(const std::string &Hint) {
    return Ctx.var("$" + Hint + "_" + std::to_string(FreshCounter++));
  }

  /// Stable per-activation identity for address-of and globals.
  ExprRef locIdent(const VarDecl *V) {
    if (V->isGlobal())
      return Ctx.var(V->Name);
    return Ctx.var(V->Name + "@" + std::to_string(topFrame().Activation));
  }

  Frame &topFrame() { return Stack.back(); }

  ExprRef readVar(const VarDecl *V) {
    auto &Map = V->isGlobal() ? GlobalVars : topFrame().Vars;
    auto It = Map.find(V);
    if (It != Map.end())
      return It->second;
    ExprRef S = fresh(V->Name);
    Map.emplace(V, S);
    return S;
  }

  void writeVar(const VarDecl *V, ExprRef Value) {
    (V->isGlobal() ? GlobalVars : topFrame().Vars)[V] = Value;
  }

  /// Symbolic heap key for an lvalue that is not a plain variable.
  ExprRef heapKey(const Expr &Lvalue) {
    switch (Lvalue.Kind) {
    case CExprKind::Unary:
      assert(Lvalue.UOp == UnaryOp::Deref);
      return Ctx.deref(eval(*Lvalue.Ops[0]));
    case CExprKind::Member: {
      ExprRef Base = Lvalue.IsArrow
                         ? Ctx.deref(eval(*Lvalue.Ops[0]))
                         : heapBase(*Lvalue.Ops[0]);
      return Ctx.field(Base, Lvalue.FieldName);
    }
    case CExprKind::Index: {
      const Expr &Base = *Lvalue.Ops[0];
      ExprRef B = Base.Ty && Base.Ty->isArray() ? locIdent(Base.Var)
                                                : eval(Base);
      return Ctx.index(B, eval(*Lvalue.Ops[1]));
    }
    default:
      assert(false && "not a heap lvalue");
      return Ctx.intLit(0);
    }
  }

  ExprRef heapBase(const Expr &E) {
    if (E.Kind == CExprKind::VarRef)
      return locIdent(E.Var);
    return heapKey(E);
  }

  ExprRef heapRead(ExprRef Key) {
    auto It = Heap.find(Key);
    if (It != Heap.end())
      return It->second;
    ExprRef S = fresh("mem");
    Heap.emplace(Key, S);
    return S;
  }

  void heapWrite(ExprRef Key, ExprRef Value) {
    // Invalidate may-aliases (syntactic shapes only), keep the rest.
    for (auto It = Heap.begin(); It != Heap.end();) {
      if (It->first != Key &&
          Shape.alias(It->first, Key) != logic::AliasResult::NoAlias)
        It = Heap.erase(It);
      else
        ++It;
    }
    Heap[Key] = Value;
  }

  void havocHeap() { Heap.clear(); }

  ExprRef eval(const Expr &E) {
    switch (E.Kind) {
    case CExprKind::IntLit:
      return Ctx.intLit(E.IntValue);
    case CExprKind::NullLit:
      return Ctx.nullLit();
    case CExprKind::VarRef:
      return readVar(E.Var);
    case CExprKind::Unary:
      switch (E.UOp) {
      case UnaryOp::Deref:
        return heapRead(heapKey(E));
      case UnaryOp::AddrOf: {
        const Expr &L = *E.Ops[0];
        if (L.Kind == CExprKind::VarRef)
          return Ctx.addrOf(locIdent(L.Var));
        return Ctx.addrOf(heapKey(L));
      }
      case UnaryOp::Neg:
        return Ctx.neg(eval(*E.Ops[0]));
      case UnaryOp::Not:
        return Ctx.notE(evalCond(*E.Ops[0]));
      }
      break;
    case CExprKind::Binary: {
      if (E.BOp == BinaryOp::LAnd || E.BOp == BinaryOp::LOr ||
          isComparisonOp(E.BOp))
        return evalCond(E);
      ExprRef L = eval(*E.Ops[0]);
      ExprRef R = eval(*E.Ops[1]);
      switch (E.BOp) {
      case BinaryOp::Add:
        return Ctx.add(L, R);
      case BinaryOp::Sub:
        return Ctx.sub(L, R);
      case BinaryOp::Mul:
        return Ctx.mul(L, R);
      case BinaryOp::Div:
        return Ctx.div(L, R);
      case BinaryOp::Mod:
        return Ctx.mod(L, R);
      default:
        break;
      }
      break;
    }
    case CExprKind::Member:
    case CExprKind::Index:
      return heapRead(heapKey(E));
    case CExprKind::Call:
      break; // Normalized away.
    }
    return fresh("e");
  }

  ExprRef evalCond(const Expr &E) {
    if (E.Kind == CExprKind::Binary) {
      if (E.BOp == BinaryOp::LAnd)
        return Ctx.andE(evalCond(*E.Ops[0]), evalCond(*E.Ops[1]));
      if (E.BOp == BinaryOp::LOr)
        return Ctx.orE(evalCond(*E.Ops[0]), evalCond(*E.Ops[1]));
      if (isComparisonOp(E.BOp)) {
        ExprRef L = eval(*E.Ops[0]);
        ExprRef R = eval(*E.Ops[1]);
        switch (E.BOp) {
        case BinaryOp::Eq:
          return Ctx.eq(L, R);
        case BinaryOp::Ne:
          return Ctx.ne(L, R);
        case BinaryOp::Lt:
          return Ctx.lt(L, R);
        case BinaryOp::Le:
          return Ctx.le(L, R);
        case BinaryOp::Gt:
          return Ctx.gt(L, R);
        default:
          return Ctx.ge(L, R);
        }
      }
    }
    if (E.Kind == CExprKind::Unary && E.UOp == UnaryOp::Not)
      return Ctx.notE(evalCond(*E.Ops[0]));
    ExprRef V = eval(E);
    return Ctx.ne(V, Ctx.intLit(0));
  }

  void execAssign(const Stmt &S) {
    ExprRef Value = eval(*S.Rhs);
    if (S.Lhs->Kind == CExprKind::VarRef)
      writeVar(S.Lhs->Var, Value);
    else
      heapWrite(heapKey(*S.Lhs), Value);
  }

  void addConstraint(ExprRef Sym, ExprRef ProgramForm, size_t TraceIdx) {
    Constraints.push_back(
        {Sym, ProgramForm, topFrame().F, TraceIdx});
  }

  const Program &P;
  logic::LogicContext &Ctx;
  StmtIndex Index;
  logic::ShapeAliasOracle Shape;
  std::vector<Frame> Stack;
  std::map<const VarDecl *, ExprRef> GlobalVars;
  std::map<ExprRef, ExprRef> Heap;
  std::vector<PathConstraint> Constraints;
  const std::vector<bebop::TraceStep> *Tr = nullptr;
  int FreshCounter = 0;
  int ActivationCounter = 0;
};

bool SymExec::replay(const std::vector<bebop::TraceStep> &Trace) {
  Tr = &Trace;
  if (Trace.empty())
    return false;
  // The entry procedure is the first step's procedure.
  const FuncDecl *Entry = P.findFunction(Trace.front().ProcName);
  if (!Entry)
    return false;
  Stack.push_back({Entry, ActivationCounter++, {}, nullptr});

  for (size_t I = 0; I != Trace.size(); ++I) {
    const bebop::TraceStep &Step = Trace[I];
    const Stmt *Origin = nullptr;
    if (Step.OriginId >= 0) {
      auto It = Index.ById.find(static_cast<unsigned>(Step.OriginId));
      if (It != Index.ById.end())
        Origin = It->second;
    }

    switch (Step.Op) {
    case bebop::NodeOp::Skip:
    case bebop::NodeOp::Assign: {
      if (!Origin)
        break;
      if (Origin->Kind == CStmtKind::Assign) {
        execAssign(*Origin);
        break;
      }
      if (Origin->Kind == CStmtKind::CallStmt) {
        // Either an extern-call havoc or the caller-side predicate
        // update after a real call (already modeled by the Call step).
        const FuncDecl *Callee = Origin->CallE->Callee;
        if (Callee && Callee->isExtern()) {
          if (Origin->Lhs && Origin->Lhs->Kind == CExprKind::VarRef)
            writeVar(Origin->Lhs->Var, fresh("ext"));
          else if (Origin->Lhs)
            heapWrite(heapKey(*Origin->Lhs), fresh("ext"));
          bool TakesPointers = false;
          for (const VarDecl *Param : Callee->Params)
            TakesPointers |= Param->Ty->isPointer();
          if (TakesPointers)
            havocHeap();
        }
      }
      break;
    }
    case bebop::NodeOp::Call: {
      if (!Origin || Origin->Kind != CStmtKind::CallStmt)
        return false;
      const FuncDecl *Callee = Origin->CallE->Callee;
      std::vector<ExprRef> Args;
      for (const Expr *A : Origin->CallE->Ops)
        Args.push_back(eval(*A));
      topFrame().PendingCall = Origin;
      Stack.push_back({Callee, ActivationCounter++, {}, nullptr});
      for (size_t J = 0; J != Callee->Params.size() && J != Args.size();
           ++J)
        writeVar(Callee->Params[J], Args[J]);
      break;
    }
    case bebop::NodeOp::Return: {
      if (Stack.size() <= 1)
        break; // Terminal return of the entry procedure.
      ExprRef Value =
          Origin && Origin->Rhs ? eval(*Origin->Rhs) : fresh("ret");
      Stack.pop_back();
      const Stmt *CallSite = topFrame().PendingCall;
      topFrame().PendingCall = nullptr;
      if (CallSite && CallSite->Lhs) {
        if (CallSite->Lhs->Kind == CExprKind::VarRef)
          writeVar(CallSite->Lhs->Var, Value);
        else
          heapWrite(heapKey(*CallSite->Lhs), Value);
      }
      break;
    }
    case bebop::NodeOp::Assume: {
      if (!Origin || !Origin->Cond || Step.Stmt == nullptr)
        break;
      int Taken = Step.Stmt->BranchTaken;
      if (Taken < 0)
        break; // Not a branch assume.
      ExprRef Sym = evalCond(*Origin->Cond);
      ExprRef Prog = c2bp::conditionToLogic(Ctx, *Origin->Cond);
      if (Taken == 0) {
        Sym = Ctx.notE(Sym);
        Prog = Ctx.notE(Prog);
      }
      addConstraint(Sym, Prog, I);
      break;
    }
    case bebop::NodeOp::Assert: {
      if (!Origin || !Origin->Cond)
        break;
      // The violation: the assert's condition is false.
      addConstraint(Ctx.notE(evalCond(*Origin->Cond)),
                    Ctx.notE(c2bp::conditionToLogic(Ctx, *Origin->Cond)),
                    I);
      break;
    }
    default:
      break;
    }
  }
  return true;
}

/// Comparison atoms of a formula.
void collectAtoms(ExprRef E, std::vector<ExprRef> &Out) {
  if (logic::isCmpKind(E->kind())) {
    if (std::find(Out.begin(), Out.end(), E) == Out.end())
      Out.push_back(E);
    return;
  }
  for (ExprRef Op : E->operands())
    collectAtoms(Op, Out);
}

} // namespace

NewtonResult slamtool::analyzeTrace(const Program &P,
                                    const std::vector<bebop::TraceStep> &Trace,
                                    logic::LogicContext &Ctx,
                                    prover::Prover &Prover,
                                    const c2bp::PredicateSet &Existing,
                                    StatsRegistry *Stats) {
  TraceSpan Span("newton.analyze_trace", "newton");
  if (Span.enabled())
    Span.arg("steps", static_cast<uint64_t>(Trace.size()));
  NewtonResult Result;
  SymExec Exec(P, Ctx);
  if (!Exec.replay(Trace))
    return Result; // Malformed: infeasible with no predicates = unknown.
  if (Stats)
    Stats->add("newton.paths");

  const std::vector<PathConstraint> &Cs = Exec.constraints();
  std::vector<ExprRef> Conj;
  for (const PathConstraint &C : Cs)
    Conj.push_back(C.Sym);
  ExprRef Path = Ctx.andE(Conj);

  prover::Satisfiability Sat = Prover.checkSat(Path);
  if (Sat == prover::Satisfiability::Sat) {
    Result.Feasible = true;
    return Result;
  }
  if (Sat == prover::Satisfiability::Unknown)
    return Result; // Cannot refute or confirm: no predicates, unknown.

  // Infeasible: minimize the core greedily, then harvest predicates.
  std::vector<size_t> Core;
  for (size_t I = 0; I != Cs.size(); ++I)
    Core.push_back(I);
  for (size_t I = 0; I < Core.size();) {
    std::vector<ExprRef> Without;
    for (size_t J = 0; J != Core.size(); ++J)
      if (J != I)
        Without.push_back(Cs[Core[J]].Sym);
    if (Prover.checkSat(Ctx.andE(Without)) ==
        prover::Satisfiability::Unsat)
      Core.erase(Core.begin() + I);
    else
      ++I;
  }

  // Which names are globals (for predicate scoping)?
  std::set<std::string> GlobalNames;
  for (const VarDecl *G : P.Globals)
    GlobalNames.insert(G->Name);
  auto AddPredicate = [&](ExprRef Atom, const FuncDecl *Proc) {
    if (Atom->isTrue() || Atom->isFalse())
      return;
    // Canonical polarity: a boolean variable for x == 5 carries the
    // same information as one for x != 5; prefer the equality.
    if (Atom->kind() == logic::ExprKind::Ne)
      Atom = Ctx.eq(Atom->op(0), Atom->op(1));
    // Reject atoms that escaped the program-variable level.
    for (const std::string &Name : logic::collectVars(Atom))
      if (Name.find('$') != std::string::npos ||
          Name.find('@') != std::string::npos)
        return;
    bool AllGlobal = true;
    for (const std::string &Name : logic::collectVars(Atom))
      AllGlobal &= GlobalNames.count(Name) != 0;
    if (AllGlobal)
      Result.NewPreds.addGlobal(Atom);
    else
      Result.NewPreds.addLocal(Proc->Name, Atom);
  };

  for (size_t I : Core) {
    std::vector<ExprRef> Atoms;
    collectAtoms(Cs[I].ProgramForm, Atoms);
    for (ExprRef A : Atoms)
      AddPredicate(A, Cs[I].Proc);
  }

  // Backward WP pass from the final violated condition through the
  // trace's assignments (same-procedure, bounded).
  if (!Cs.empty()) {
    const PathConstraint &Last = Cs.back();
    ExprRef Phi = Last.ProgramForm;
    logic::ShapeAliasOracle Shape;
    logic::WPEngine WP(Ctx, Shape);
    const StmtIndex &Index = Exec.index();
    for (size_t I = Last.TraceIdx; I-- > 0;) {
      const bebop::TraceStep &Step = Trace[I];
      if (Step.Op == bebop::NodeOp::Call ||
          Step.Op == bebop::NodeOp::Return)
        break; // Stop at frame boundaries.
      if ((Step.Op != bebop::NodeOp::Assign &&
           Step.Op != bebop::NodeOp::Skip) ||
          Step.OriginId < 0)
        continue;
      auto It = Index.ById.find(static_cast<unsigned>(Step.OriginId));
      if (It == Index.ById.end() ||
          It->second->Kind != CStmtKind::Assign)
        continue;
      const Stmt *A = It->second;
      Phi = WP.assignment(c2bp::toLogic(Ctx, *A->Lhs),
                          c2bp::toLogic(Ctx, *A->Rhs), Phi);
      if (Phi->size() > 200)
        break;
      std::vector<ExprRef> Atoms;
      collectAtoms(Phi, Atoms);
      const FuncDecl *Proc = Index.Owner.at(A);
      for (ExprRef At : Atoms)
        AddPredicate(At, Proc);
    }
  }

  // Drop predicates the abstraction already has.
  c2bp::PredicateSet Fresh;
  for (ExprRef E : Result.NewPreds.Globals)
    if (std::find(Existing.Globals.begin(), Existing.Globals.end(), E) ==
        Existing.Globals.end())
      Fresh.addGlobal(E);
  for (const auto &[ProcName, V] : Result.NewPreds.PerProc) {
    const auto &Have = Existing.forProc(ProcName);
    for (ExprRef E : V)
      if (std::find(Have.begin(), Have.end(), E) == Have.end())
        Fresh.addLocal(ProcName, E);
  }
  Result.NewPreds = std::move(Fresh);
  if (Stats)
    Stats->add("newton.predicates", Result.NewPreds.totalCount());
  return Result;
}
