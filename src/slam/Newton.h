//===- Newton.h - Path feasibility and predicate discovery ------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SLAM's refinement step: given an abstract counterexample from Bebop
/// (a path over boolean-program statements mapped back to C statements),
/// decide whether the path is concretely feasible by symbolic execution
/// plus the theorem prover. If it is, the toolkit reports a genuine
/// error path; if not, new predicates relevant to the infeasibility are
/// extracted (branch-condition atoms on a minimized infeasible core, and
/// atoms of weakest preconditions pushed backward through the path's
/// assignments) and fed to the next C2bp round.
///
//===----------------------------------------------------------------------===//

#ifndef SLAM_NEWTON_H
#define SLAM_NEWTON_H

#include "bebop/Bebop.h"
#include "c2bp/PredicateSet.h"
#include "cfront/AST.h"
#include "prover/Prover.h"

#include <string>
#include <vector>

namespace slam {
namespace slamtool {

/// Outcome of analyzing one abstract counterexample.
struct NewtonResult {
  /// The path is concretely executable: a real bug.
  bool Feasible = false;
  /// New predicates discovered (empty + infeasible means refinement is
  /// stuck and SLAM answers "don't know").
  c2bp::PredicateSet NewPreds;
};

/// Analyzes the trace against the (normalized, instrumented) program.
NewtonResult analyzeTrace(const cfront::Program &P,
                          const std::vector<bebop::TraceStep> &Trace,
                          logic::LogicContext &Ctx, prover::Prover &Prover,
                          const c2bp::PredicateSet &Existing,
                          StatsRegistry *Stats = nullptr);

} // namespace slamtool
} // namespace slam

#endif // SLAM_NEWTON_H
