//===- Pipeline.h - Unified pipeline configuration --------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One options aggregate for the whole toolkit. The three drivers
/// (slam, c2bp, bebop) and every embedded use of the pipeline configure
/// themselves from a single PipelineOptions value, so a knob added for
/// one phase is visible — with the same name and default — everywhere
/// the phase runs. tools/PipelineFlags.h maps command lines onto this
/// struct; nothing here parses anything.
///
//===----------------------------------------------------------------------===//

#ifndef SLAM_PIPELINE_H
#define SLAM_PIPELINE_H

#include "c2bp/C2bp.h"

#include <string>

namespace slam {
namespace prover {
class CacheBackend;
}

namespace slamtool {

/// The CEGAR driver's knobs (Section 6.1's loop).
struct CegarOptions {
  /// Refinement cap; hitting it yields Verdict::Unknown.
  int MaxIterations = 24;
  std::string EntryProc = "main";
  /// Carry cube-search results across iterations: a statement whose
  /// relevant-predicate signature is unchanged from an earlier round
  /// replays its abstraction instead of re-searching. Off = every
  /// iteration abstracts from scratch (the ablation baseline; output
  /// is byte-identical either way).
  bool Incremental = true;
};

/// The standalone bebop driver's knobs.
struct BebopToolOptions {
  std::string EntryProc = "main";
  /// When both set: print the reachable-state invariant at this
  /// labeled statement after checking.
  std::string InvariantProc;
  std::string InvariantLabel;
  /// Print the counterexample trace on failure.
  bool PrintTrace = false;
};

/// Observability settings, as plain data. Installation of the trace
/// recorder / slow-query threshold and emission of the files is the
/// drivers' job (tools/ObservabilityFlags.h); the pipeline itself only
/// ever reads the already-installed globals.
struct ObservabilityOptions {
  /// Chrome trace-event JSON output path; empty = tracing off.
  std::string TraceOutPath;
  /// Statistics-registry JSON output path; empty = none.
  std::string StatsJsonPath;
  /// Print the per-tool report (flight recorder / stats summary).
  bool Report = false;
  /// Log prover queries at/above this many ms to stderr; < 0 = off.
  double SlowQueryMillis = -1;
};

/// Everything one pipeline run is configured by.
struct PipelineOptions {
  c2bp::C2bpOptions C2bp;
  BebopToolOptions Bebop;
  CegarOptions Cegar;
  ObservabilityOptions Obs;

  /// Path of the persistent prover-result log (`--prover-cache`);
  /// empty = no persistence. The CEGAR driver (or the c2bp driver)
  /// opens a FileCacheBackend here and layers a run-wide shared prover
  /// cache over it.
  std::string ProverCachePath;
  /// An injected backend (tests); takes precedence over
  /// ProverCachePath and is not owned.
  prover::CacheBackend *Backend = nullptr;
  /// c2bp --stats: dump the raw counter registry to stderr.
  bool PrintStats = false;
};

} // namespace slamtool
} // namespace slam

#endif // SLAM_PIPELINE_H
