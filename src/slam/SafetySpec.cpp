//===- SafetySpec.cpp - Automaton weaving -------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "slam/SafetySpec.h"

#include "cfront/Sema.h"

#include <set>

using namespace slam;
using namespace slam::slamtool;
using namespace slam::cfront;

SafetySpec SafetySpec::lockDiscipline(const std::string &AcquireFn,
                                      const std::string &ReleaseFn) {
  SafetySpec S;
  S.Name = "locking";
  S.NumStates = 2; // 0 = unlocked, 1 = locked.
  S.Transitions = {
      {AcquireFn, 0, 1},
      {AcquireFn, 1, Error}, // Double acquire.
      {ReleaseFn, 1, 0},
      {ReleaseFn, 0, Error}, // Release without acquire.
  };
  return S;
}

SafetySpec SafetySpec::irpDiscipline(const std::string &CompleteFn,
                                     const std::string &MarkPendingFn) {
  SafetySpec S;
  S.Name = "irp";
  S.NumStates = 3; // 0 = fresh, 1 = completed, 2 = pending.
  S.Transitions = {
      {CompleteFn, 0, 1},
      {CompleteFn, 1, Error}, // Completed twice.
      {CompleteFn, 2, Error}, // Completed after marked pending.
      {MarkPendingFn, 0, 2},
      {MarkPendingFn, 1, Error}, // Pending after completion.
      {MarkPendingFn, 2, Error}, // Marked pending twice.
  };
  return S;
}

namespace {

Expr *intLit(Program &P, int64_t V) {
  Expr *E = P.makeExpr(CExprKind::IntLit, SourceLoc());
  E->IntValue = V;
  return E;
}

Expr *stateRef(Program &P) {
  Expr *E = P.makeExpr(CExprKind::VarRef, SourceLoc());
  E->Name = "__state";
  return E;
}

Expr *stateEquals(Program &P, int K) {
  Expr *E = P.makeExpr(CExprKind::Binary, SourceLoc());
  E->BOp = BinaryOp::Eq;
  E->Ops.push_back(stateRef(P));
  E->Ops.push_back(intLit(P, K));
  return E;
}

Stmt *assignState(Program &P, int K) {
  Stmt *S = P.makeStmt(CStmtKind::Assign, SourceLoc());
  S->Lhs = stateRef(P);
  S->Rhs = intLit(P, K);
  return S;
}

/// `assert(0 == 1);` — the violation marker.
Stmt *violation(Program &P) {
  Stmt *S = P.makeStmt(CStmtKind::Assert, SourceLoc());
  Expr *E = P.makeExpr(CExprKind::Binary, SourceLoc());
  E->BOp = BinaryOp::Eq;
  E->Ops.push_back(intLit(P, 0));
  E->Ops.push_back(intLit(P, 1));
  S->Cond = E;
  return S;
}

/// Builds the if-chain dispatching the transitions of one event.
Stmt *transitionChain(Program &P, const SafetySpec &Spec,
                      const std::string &Event) {
  Stmt *Chain = nullptr;
  Stmt *LastIf = nullptr;
  for (const SafetySpec::Transition &T : Spec.Transitions) {
    if (T.Event != Event)
      continue;
    Stmt *If = P.makeStmt(CStmtKind::If, SourceLoc());
    If->Cond = stateEquals(P, T.From);
    If->Then = T.To == SafetySpec::Error ? violation(P)
                                         : assignState(P, T.To);
    if (LastIf)
      LastIf->Else = If;
    else
      Chain = If;
    LastIf = If;
  }
  return Chain;
}

} // namespace

bool slamtool::instrument(Program &P, const SafetySpec &Spec,
                          const std::string &EntryProc,
                          DiagnosticEngine &Diags) {
  // The automaton state variable.
  if (!P.findGlobal("__state"))
    P.Globals.push_back(P.makeVar("__state", P.Types.intType(),
                                  VarDecl::Scope::Global, SourceLoc()));

  // Reset at the entry.
  FuncDecl *Entry = P.findFunction(EntryProc);
  if (!Entry || !Entry->Body) {
    Diags.error(SourceLoc(), "entry procedure '" + EntryProc +
                                 "' not found or extern");
    return false;
  }
  Entry->Body->Stmts.insert(Entry->Body->Stmts.begin(),
                            assignState(P, 0));

  // Transition code at the head of each monitored function.
  std::set<std::string> Events;
  for (const SafetySpec::Transition &T : Spec.Transitions)
    Events.insert(T.Event);
  for (const std::string &Event : Events) {
    FuncDecl *F = P.findFunction(Event);
    if (!F) {
      Diags.error(SourceLoc(),
                  "monitored function '" + Event + "' not found");
      return false;
    }
    if (!F->Body)
      F->Body = P.makeStmt(CStmtKind::Block, F->Loc); // Extern: stub body.
    Stmt *Chain = transitionChain(P, Spec, Event);
    if (Chain)
      F->Body->Stmts.insert(F->Body->Stmts.begin(), Chain);
  }

  // Renumber statements and resolve the synthesized nodes.
  return analyze(P, Diags);
}

void slamtool::seedPredicates(logic::LogicContext &Ctx,
                              const SafetySpec &Spec,
                              c2bp::PredicateSet &Preds) {
  for (int K = 0; K != Spec.NumStates; ++K)
    Preds.addGlobal(Ctx.eq(Ctx.var("__state"), Ctx.intLit(K)));
}
