//===- SafetySpec.h - Temporal safety properties ----------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Temporal safety properties in the style of SLAM's interface rules
/// (e.g. "a lock is never released without first being acquired"): a
/// finite automaton whose events are calls to named interface functions
/// and whose error state encodes the violation. The instrumenter weaves
/// the automaton into the C program as a global `__state` variable with
/// transition code at the top of each monitored function; reaching the
/// error transition becomes a failing assert, which the SLAM loop then
/// checks for reachability.
///
//===----------------------------------------------------------------------===//

#ifndef SLAM_SAFETYSPEC_H
#define SLAM_SAFETYSPEC_H

#include "c2bp/PredicateSet.h"
#include "cfront/AST.h"

#include <string>
#include <vector>

namespace slam {
namespace slamtool {

/// A deterministic safety automaton. State 0 is initial; transitions
/// to Error (-1) mark violations. Events without a transition from the
/// current state self-loop.
struct SafetySpec {
  static constexpr int Error = -1;

  struct Transition {
    std::string Event; ///< Name of the monitored function.
    int From;
    int To; ///< Error for a violation.
  };

  std::string Name;
  int NumStates = 1;
  std::vector<Transition> Transitions;

  /// "A lock is never acquired twice nor released when free."
  static SafetySpec lockDiscipline(const std::string &AcquireFn,
                                   const std::string &ReleaseFn);

  /// "An IRP is completed exactly once and not after being marked
  /// pending" (the interrupt-request-packet discipline of Section 6.1).
  static SafetySpec irpDiscipline(const std::string &CompleteFn,
                                  const std::string &MarkPendingFn);
};

/// Weaves \p Spec into \p P: declares the global `__state`, resets it at
/// the top of \p EntryProc, and prepends transition code to each
/// monitored function (externs receive a body). Re-runs Sema; returns
/// false with diagnostics if a monitored function is missing.
bool instrument(cfront::Program &P, const SafetySpec &Spec,
                const std::string &EntryProc, DiagnosticEngine &Diags);

/// The seed predicates for checking \p Spec: `__state == k` for every
/// automaton state, as global predicates.
void seedPredicates(logic::LogicContext &Ctx, const SafetySpec &Spec,
                    c2bp::PredicateSet &Preds);

} // namespace slamtool
} // namespace slam

#endif // SLAM_SAFETYSPEC_H
