//===- CliArgs.h - Strict flag-value parsing for the tool mains -*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One flag-parsing helper shared by the slam/c2bp/bebop mains. The
/// mains used to funnel numeric flags through atoi, which silently
/// turns `--max-iters banana` into 0; these helpers accept exactly the
/// decimal integers (or finite decimals, for millisecond thresholds)
/// and report everything else as a usage error naming the flag.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_CLIARGS_H
#define SUPPORT_CLIARGS_H

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace slam {
namespace cli {

/// Strict decimal integer: optional sign, then digits, nothing else.
inline bool parseInt(const char *Text, long long &Out) {
  if (!Text || !*Text)
    return false;
  char *End = nullptr;
  errno = 0;
  long long V = std::strtoll(Text, &End, 10);
  if (errno == ERANGE || End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// Strict finite decimal number (for millisecond thresholds).
inline bool parseDouble(const char *Text, double &Out) {
  if (!Text || !*Text)
    return false;
  char *End = nullptr;
  errno = 0;
  double V = std::strtod(Text, &End);
  if (errno == ERANGE || End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// Parses \p Text as the integer value of \p Flag with an inclusive
/// minimum; on failure prints "<tool>: invalid value ... " to stderr
/// and returns false (the main should exit 2).
inline bool intArg(const char *Tool, const char *Flag, const char *Text,
                   long long Min, long long &Out) {
  if (!parseInt(Text, Out)) {
    std::fprintf(stderr, "%s: invalid value '%s' for %s (expected an integer)\n",
                 Tool, Text ? Text : "", Flag);
    return false;
  }
  if (Out < Min) {
    std::fprintf(stderr, "%s: value %lld for %s is below the minimum %lld\n",
                 Tool, Out, Flag, Min);
    return false;
  }
  return true;
}

/// Parses \p Text as the non-negative millisecond value of \p Flag.
inline bool msArg(const char *Tool, const char *Flag, const char *Text,
                  double &Out) {
  if (!parseDouble(Text, Out) || Out < 0) {
    std::fprintf(
        stderr,
        "%s: invalid value '%s' for %s (expected milliseconds >= 0)\n",
        Tool, Text ? Text : "", Flag);
    return false;
  }
  return true;
}

/// Worker-count flag (-j): 0 means "one per hardware thread", which the
/// caller maps through ThreadPool::defaultConcurrency().
inline bool workersArg(const char *Tool, const char *Text, int &Out) {
  long long V;
  if (!intArg(Tool, "-j", Text, 0, V))
    return false;
  Out = static_cast<int>(V);
  return true;
}

} // namespace cli
} // namespace slam

#endif // SUPPORT_CLIARGS_H
