//===- Diagnostics.cpp ----------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace slam;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "diagnostic";
}

std::string Diagnostic::str() const {
  return Loc.str() + ": " + kindName(Kind) + ": " + Message;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
