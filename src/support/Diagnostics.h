//===- Diagnostics.h - Error reporting engine -------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine used by every parser and semantic pass in the
/// toolkit. Diagnostics are collected (not printed eagerly) so that tests
/// can assert on them and tools can decide how to render them.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_DIAGNOSTICS_H
#define SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace slam {

/// Severity of a diagnostic message.
enum class DiagKind { Error, Warning, Note };

/// One collected diagnostic: severity, position and rendered message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "line:col: error: message" in the style of a C compiler.
  std::string str() const;
};

/// Collects diagnostics emitted by parsers and semantic checks.
///
/// The engine never aborts; callers query \c hasErrors() at phase
/// boundaries and bail out themselves, which keeps error recovery local
/// to each pass.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every collected diagnostic, one per line.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace slam

#endif // SUPPORT_DIAGNOSTICS_H
