//===- Fingerprint.h - Stable 128-bit content fingerprints ------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 128-bit fingerprint type for content-addressed caching across
/// process runs. Hash-consed expression ids are stable only *within* a
/// run (they are assigned in creation order, which depends on the input
/// and, under the parallel abstraction, on thread interleaving), so
/// anything persisted to disk — the prover result log in particular —
/// must be keyed on a structural hash instead. 128 bits keep the
/// accidental-collision probability negligible at any realistic cache
/// size (~2^-64 per pair), which matters because a collision in the
/// persistent prover cache would silently mis-answer a query.
///
/// The mixing functions are fixed-width and explicitly seeded, so
/// fingerprints are identical across platforms, compilers, and ASLR —
/// a cache file written on one machine loads on another.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_FINGERPRINT_H
#define SUPPORT_FINGERPRINT_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace slam {
namespace support {

/// splitmix64 finalizer: the standard full-avalanche 64-bit mixer.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// FNV-1a over a byte string (names, tags). Explicit 64-bit constants —
/// never std::hash, whose value is implementation-defined.
inline uint64_t hashBytes(std::string_view S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

/// A 128-bit fingerprint as two independently-mixed 64-bit lanes.
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Fingerprint &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }
  bool operator<(const Fingerprint &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }

  /// Folds one 64-bit word into both lanes (with distinct per-lane
  /// tweaks so the lanes stay independent).
  void combine(uint64_t X) {
    Hi = mix64(Hi ^ X);
    Lo = mix64(Lo ^ (X * 0xff51afd7ed558ccdull + 1));
  }

  /// 32 lowercase hex characters, high lane first.
  std::string hex() const {
    char Buf[33];
    std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                  static_cast<unsigned long long>(Hi),
                  static_cast<unsigned long long>(Lo));
    return std::string(Buf, 32);
  }

  /// Parses exactly 32 hex characters; returns false on anything else.
  static bool parseHex(std::string_view S, Fingerprint &Out) {
    if (S.size() != 32)
      return false;
    uint64_t Lanes[2] = {0, 0};
    for (int Lane = 0; Lane != 2; ++Lane) {
      for (int I = 0; I != 16; ++I) {
        char C = S[static_cast<size_t>(Lane * 16 + I)];
        uint64_t D;
        if (C >= '0' && C <= '9')
          D = static_cast<uint64_t>(C - '0');
        else if (C >= 'a' && C <= 'f')
          D = static_cast<uint64_t>(C - 'a' + 10);
        else if (C >= 'A' && C <= 'F')
          D = static_cast<uint64_t>(C - 'A' + 10);
        else
          return false;
        Lanes[Lane] = (Lanes[Lane] << 4) | D;
      }
    }
    Out.Hi = Lanes[0];
    Out.Lo = Lanes[1];
    return true;
  }
};

struct FingerprintHash {
  size_t operator()(const Fingerprint &F) const {
    return static_cast<size_t>(F.Hi ^ F.Lo);
  }
};

} // namespace support
} // namespace slam

#endif // SUPPORT_FINGERPRINT_H
