//===- Histogram.h - Fixed log-scale latency histograms ---------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-bucket, log-scale latency histogram for the quantities whose
/// *distribution* matters (theorem-prover query times, BDD andExists
/// times), not just their count. Buckets are powers of two of
/// microseconds, so the layout is identical in every process and
/// cross-registry merging is plain element-wise addition — per-worker
/// histograms fold into the main registry exactly like the per-worker
/// counters do.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_HISTOGRAM_H
#define SUPPORT_HISTOGRAM_H

#include <algorithm>
#include <cstdint>

namespace slam {

/// Log2 histogram over microsecond samples.
///
/// Bucket 0 holds samples of 0us; bucket i (i >= 1) holds samples in
/// [2^(i-1), 2^i) us; the last bucket absorbs everything at or above
/// 2^(NumBuckets-2) us (~17 minutes), so no sample is ever dropped.
class LatencyHistogram {
public:
  static constexpr int NumBuckets = 32;

  /// Bucket index for a sample of \p Micros microseconds.
  static int bucketFor(uint64_t Micros) {
    int B = 0;
    while (Micros != 0 && B < NumBuckets - 1) {
      Micros >>= 1;
      ++B;
    }
    return B;
  }

  /// Exclusive upper bound of bucket \p B in microseconds (the last
  /// bucket is unbounded; its nominal bound is returned).
  static uint64_t bucketUpperBound(int B) { return uint64_t(1) << B; }

  void observe(uint64_t Micros) {
    ++Buckets[bucketFor(Micros)];
    ++Count;
    Sum += Micros;
    Max = std::max(Max, Micros);
  }

  void mergeFrom(const LatencyHistogram &Other) {
    for (int I = 0; I != NumBuckets; ++I)
      Buckets[I] += Other.Buckets[I];
    Count += Other.Count;
    Sum += Other.Sum;
    Max = std::max(Max, Other.Max);
  }

  uint64_t count() const { return Count; }
  uint64_t sumMicros() const { return Sum; }
  uint64_t maxMicros() const { return Max; }
  uint64_t bucket(int B) const { return Buckets[B]; }

  /// Highest non-empty bucket + 1 (for compact rendering); 0 if empty.
  int numUsedBuckets() const {
    for (int I = NumBuckets; I != 0; --I)
      if (Buckets[I - 1] != 0)
        return I;
    return 0;
  }

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;
};

} // namespace slam

#endif // SUPPORT_HISTOGRAM_H
