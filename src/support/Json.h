//===- Json.h - Minimal correct JSON emission -------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON writer shared by the trace emitter, the statistics
/// export, and the benchmark harnesses (which used to hand-roll their
/// JSON and got string escaping subtly wrong). The writer tracks
/// object/array nesting and comma placement so call sites only state
/// structure; escaping handles quotes, backslashes, and control
/// characters (non-ASCII bytes pass through — JSON is UTF-8).
///
/// A syntax checker (json::isValid) rides along for tests that want to
/// assert emitted output actually parses without shelling out to an
/// external validator.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_JSON_H
#define SUPPORT_JSON_H

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace slam {
namespace json {

/// Escapes the *contents* of a JSON string (no surrounding quotes).
inline std::string escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

/// Streaming writer appending to a caller-owned string. Structure is
/// expressed with begin/end calls; the writer inserts commas and
/// asserts (in debug builds) that keys and values alternate correctly.
class Writer {
public:
  explicit Writer(std::string &Out) : Out(Out) {}

  void beginObject() {
    prefix();
    Out += '{';
    Stack.push_back(Frame::Object);
    First = true;
  }
  void endObject() {
    assert(!Stack.empty() && Stack.back() == Frame::Object);
    Stack.pop_back();
    Out += '}';
    First = false;
  }
  void beginArray() {
    prefix();
    Out += '[';
    Stack.push_back(Frame::Array);
    First = true;
  }
  void endArray() {
    assert(!Stack.empty() && Stack.back() == Frame::Array);
    Stack.pop_back();
    Out += ']';
    First = false;
  }

  void key(std::string_view K) {
    assert(!Stack.empty() && Stack.back() == Frame::Object &&
           "key outside an object");
    assert(!AfterKey && "two keys in a row");
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += escape(K);
    Out += "\":";
    AfterKey = true;
  }

  void value(std::string_view V) {
    prefix();
    Out += '"';
    Out += escape(V);
    Out += '"';
  }
  void value(const char *V) { value(std::string_view(V)); }
  void value(bool B) {
    prefix();
    Out += B ? "true" : "false";
  }
  void value(uint64_t V) {
    prefix();
    Out += std::to_string(V);
  }
  void value(int64_t V) {
    prefix();
    Out += std::to_string(V);
  }
  void value(int V) { value(static_cast<int64_t>(V)); }
  void value(unsigned V) { value(static_cast<uint64_t>(V)); }
  void value(double V) {
    prefix();
    if (!std::isfinite(V)) { // JSON has no NaN/Inf literal.
      Out += "null";
      return;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.9g", V);
    Out += Buf;
  }
  void null() {
    prefix();
    Out += "null";
  }

  template <typename T> void kv(std::string_view K, T V) {
    key(K);
    value(V);
  }

  /// True once every begin has been matched by its end.
  bool complete() const { return Stack.empty(); }

private:
  enum class Frame { Object, Array };

  /// Comma/position bookkeeping before any value or container opener.
  void prefix() {
    if (AfterKey) {
      AfterKey = false;
      return; // The key already emitted its separator.
    }
    assert((Stack.empty() || Stack.back() == Frame::Array) &&
           "object member needs a key first");
    if (!Stack.empty() && !First)
      Out += ',';
    First = false;
  }

  std::string &Out;
  std::vector<Frame> Stack;
  bool First = true;
  bool AfterKey = false;
};

namespace detail {

/// Recursive-descent syntax check. Depth-capped: our emitted documents
/// are a handful of levels deep, and the cap keeps adversarial inputs
/// from overflowing the stack.
class Checker {
public:
  explicit Checker(std::string_view S) : S(S) {}

  bool run() {
    skipWs();
    if (!parseValue(0))
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  static constexpr int MaxDepth = 256;

  bool parseValue(int Depth) {
    if (Depth > MaxDepth || Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return parseObject(Depth);
    case '[':
      return parseArray(Depth);
    case '"':
      return parseString();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return parseNumber();
    }
  }

  bool parseObject(int Depth) {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!parseString())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!parseValue(Depth + 1))
        return false;
      skipWs();
      char C = peek();
      if (C == ',') {
        ++Pos;
        continue;
      }
      if (C == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool parseArray(int Depth) {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!parseValue(Depth + 1))
        return false;
      skipWs();
      char C = peek();
      if (C == ',') {
        ++Pos;
        continue;
      }
      if (C == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool parseString() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size()) {
      unsigned char C = static_cast<unsigned char>(S[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return false; // Unescaped control character.
      if (C == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
        char E = S[Pos];
        if (E == 'u') {
          for (int I = 0; I != 4; ++I) {
            ++Pos;
            if (Pos >= S.size() || !std::isxdigit(
                                       static_cast<unsigned char>(S[Pos])))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      }
      ++Pos;
    }
    return false;
  }

  bool parseNumber() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      return false;
    if (S[Pos] == '0')
      ++Pos;
    else
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    if (peek() == '.') {
      ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    return Pos > Start;
  }

  bool literal(const char *L) {
    size_t N = std::strlen(L);
    if (S.substr(Pos, N) != L)
      return false;
    Pos += N;
    return true;
  }

  void skipWs() {
    while (Pos < S.size() &&
           (S[Pos] == ' ' || S[Pos] == '\t' || S[Pos] == '\n' ||
            S[Pos] == '\r'))
      ++Pos;
  }

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }

  std::string_view S;
  size_t Pos = 0;
};

} // namespace detail

/// Is \p S one syntactically valid JSON document?
inline bool isValid(std::string_view S) { return detail::Checker(S).run(); }

} // namespace json
} // namespace slam

#endif // SUPPORT_JSON_H
