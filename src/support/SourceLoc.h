//===- SourceLoc.h - Source positions for diagnostics ----------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source locations shared by the C-subset frontend, the
/// predicate-file parser and the boolean-program parser.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_SOURCELOC_H
#define SUPPORT_SOURCELOC_H

#include <string>

namespace slam {

/// A (line, column) position within one input buffer. Line and column are
/// 1-based; a default-constructed location is "unknown" (line 0).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  SourceLoc() = default;
  SourceLoc(unsigned Line, unsigned Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &O) const {
    return Line == O.Line && Col == O.Col;
  }

  /// Renders the location as "line:col", or "<unknown>" if invalid.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace slam

#endif // SUPPORT_SOURCELOC_H
