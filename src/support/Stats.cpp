//===- Stats.cpp - Statistics JSON export ------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include "support/Json.h"

using namespace slam;

std::string slam::statsToJson(const StatsRegistry &Stats) {
  std::map<std::string, LatencyHistogram> Hists = Stats.allHistograms();
  std::string Out;
  json::Writer W(Out);
  W.beginObject();

  W.key("counters");
  W.beginObject();
  for (const auto &[Name, Value] : Stats.allCounters())
    W.kv(Name, Value);
  W.endObject();

  W.key("gauges");
  W.beginObject();
  for (const auto &[Name, Value] : Stats.allGauges())
    W.kv(Name, Value);
  W.endObject();

  W.key("histograms");
  W.beginObject();
  for (const auto &[Name, H] : Hists) {
    W.key(Name);
    W.beginObject();
    W.kv("count", H.count());
    W.kv("sum_us", H.sumMicros());
    W.kv("max_us", H.maxMicros());
    W.key("buckets");
    W.beginArray();
    int Used = H.numUsedBuckets();
    for (int B = 0; B != Used; ++B) {
      W.beginObject();
      W.kv("le_us", LatencyHistogram::bucketUpperBound(B));
      W.kv("count", H.bucket(B));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();

  W.endObject();
  Out += '\n';
  return Out;
}
