//===- Stats.h - Named statistic counters -----------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters in the spirit of LLVM's Statistic class, used to report
/// the quantities the paper tabulates (theorem-prover calls, cache hits,
/// cubes enumerated, BDD nodes, ...). Counters live in an explicit
/// registry object rather than global state so that benchmark harnesses
/// can run many configurations in one process without cross-talk.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STATS_H
#define SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <string>

namespace slam {

/// A registry of named 64-bit counters.
///
/// Lookup is by name; creating a counter on first use keeps call sites
/// terse: \c Stats.add("prover.queries").
class StatsRegistry {
public:
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  void set(const std::string &Name, uint64_t Value) { Counters[Name] = Value; }

  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  const std::map<std::string, uint64_t> &all() const { return Counters; }

  /// Renders "name = value" lines sorted by name.
  std::string str() const {
    std::string Out;
    for (const auto &[Name, Value] : Counters)
      Out += Name + " = " + std::to_string(Value) + "\n";
    return Out;
  }

  void clear() { Counters.clear(); }

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace slam

#endif // SUPPORT_STATS_H
