//===- Stats.h - Named statistic counters -----------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters in the spirit of LLVM's Statistic class, used to report
/// the quantities the paper tabulates (theorem-prover calls, cache hits,
/// cubes enumerated, BDD nodes, ...). Counters live in an explicit
/// registry object rather than global state so that benchmark harnesses
/// can run many configurations in one process without cross-talk.
///
/// The registry is thread-safe: counters may be bumped concurrently from
/// worker threads. The parallel abstraction nevertheless prefers one
/// registry per worker merged at report time (mergeFrom), keeping the
/// hot add() path uncontended; the internal mutex makes the occasional
/// shared registry safe rather than fast.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STATS_H
#define SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace slam {

/// A registry of named 64-bit counters.
///
/// Lookup is by name; creating a counter on first use keeps call sites
/// terse: \c Stats.add("prover.queries").
class StatsRegistry {
public:
  void add(const std::string &Name, uint64_t Delta = 1) {
    std::lock_guard<std::mutex> L(M);
    Counters[Name] += Delta;
  }

  void set(const std::string &Name, uint64_t Value) {
    std::lock_guard<std::mutex> L(M);
    Counters[Name] = Value;
  }

  uint64_t get(const std::string &Name) const {
    std::lock_guard<std::mutex> L(M);
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  std::map<std::string, uint64_t> all() const {
    std::lock_guard<std::mutex> L(M);
    return Counters;
  }

  /// Adds every counter of \p Other into this registry. Used to fold
  /// per-worker registries into the caller's registry once a parallel
  /// phase has quiesced; the result is independent of merge order.
  void mergeFrom(const StatsRegistry &Other) {
    std::map<std::string, uint64_t> Snapshot = Other.all();
    std::lock_guard<std::mutex> L(M);
    for (const auto &[Name, Value] : Snapshot)
      Counters[Name] += Value;
  }

  /// Renders "name = value" lines sorted by name.
  std::string str() const {
    std::lock_guard<std::mutex> L(M);
    std::string Out;
    for (const auto &[Name, Value] : Counters)
      Out += Name + " = " + std::to_string(Value) + "\n";
    return Out;
  }

  void clear() {
    std::lock_guard<std::mutex> L(M);
    Counters.clear();
  }

private:
  mutable std::mutex M;
  std::map<std::string, uint64_t> Counters;
};

} // namespace slam

#endif // SUPPORT_STATS_H
