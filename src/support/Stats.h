//===- Stats.h - Named statistic counters -----------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters in the spirit of LLVM's Statistic class, used to report
/// the quantities the paper tabulates (theorem-prover calls, cache hits,
/// cubes enumerated, BDD nodes, ...). Counters live in an explicit
/// registry object rather than global state so that benchmark harnesses
/// can run many configurations in one process without cross-talk.
///
/// The registry is thread-safe: counters may be bumped concurrently from
/// worker threads. The parallel abstraction nevertheless prefers one
/// registry per worker merged at report time (mergeFrom), keeping the
/// hot add() path uncontended; the internal mutex makes the occasional
/// shared registry safe rather than fast.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STATS_H
#define SUPPORT_STATS_H

#include "support/Histogram.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace slam {

/// A registry of named 64-bit counters, gauges, and latency histograms.
///
/// Lookup is by name; creating a counter on first use keeps call sites
/// terse: \c Stats.add("prover.queries"). Three kinds of statistic
/// differ only in how \c mergeFrom combines them:
///
///   * counters (add/set)    — summed across registries;
///   * gauges   (setMax)     — maximum across registries. Peak values
///     (BDD node counts) must not be summed when per-worker registries
///     fold into the main one: the sum of per-worker peaks over-reports
///     a quantity no single worker ever observed;
///   * histograms (observe)  — merged bucket-wise (fixed log-scale
///     buckets, so addition is exact).
///
/// A name identifies one kind; using the same name as both a counter
/// and a gauge is a call-site bug (the gauge value wins in reports).
class StatsRegistry {
public:
  void add(const std::string &Name, uint64_t Delta = 1) {
    std::lock_guard<std::mutex> L(M);
    Counters[Name] += Delta;
  }

  void set(const std::string &Name, uint64_t Value) {
    std::lock_guard<std::mutex> L(M);
    Counters[Name] = Value;
  }

  /// Gauge write: keeps the maximum of all values ever set. mergeFrom
  /// takes the max for gauges instead of summing them.
  void setMax(const std::string &Name, uint64_t Value) {
    std::lock_guard<std::mutex> L(M);
    uint64_t &Slot = Gauges[Name];
    if (Value > Slot)
      Slot = Value;
  }

  /// Records one latency sample (microseconds) into the named
  /// histogram.
  void observe(const std::string &Name, uint64_t Micros) {
    std::lock_guard<std::mutex> L(M);
    Histograms[Name].observe(Micros);
  }

  /// Folds a whole externally-accumulated histogram into the named one
  /// (used by subsystems that keep private histograms on hot paths).
  void observeHistogram(const std::string &Name,
                        const LatencyHistogram &H) {
    std::lock_guard<std::mutex> L(M);
    Histograms[Name].mergeFrom(H);
  }

  uint64_t get(const std::string &Name) const {
    std::lock_guard<std::mutex> L(M);
    auto It = Counters.find(Name);
    if (It != Counters.end())
      return It->second;
    auto G = Gauges.find(Name);
    return G == Gauges.end() ? 0 : G->second;
  }

  /// Counters and gauges, merged and sorted by name.
  std::map<std::string, uint64_t> all() const {
    std::lock_guard<std::mutex> L(M);
    std::map<std::string, uint64_t> Out = Counters;
    for (const auto &[Name, Value] : Gauges)
      Out[Name] = Value;
    return Out;
  }

  std::map<std::string, uint64_t> allCounters() const {
    std::lock_guard<std::mutex> L(M);
    return Counters;
  }

  std::map<std::string, uint64_t> allGauges() const {
    std::lock_guard<std::mutex> L(M);
    return Gauges;
  }

  std::map<std::string, LatencyHistogram> allHistograms() const {
    std::lock_guard<std::mutex> L(M);
    return Histograms;
  }

  LatencyHistogram histogram(const std::string &Name) const {
    std::lock_guard<std::mutex> L(M);
    auto It = Histograms.find(Name);
    return It == Histograms.end() ? LatencyHistogram() : It->second;
  }

  /// Folds \p Other into this registry: counters add, gauges max,
  /// histograms merge bucket-wise. Used to fold per-worker registries
  /// into the caller's registry once a parallel phase has quiesced; the
  /// result is independent of merge order.
  void mergeFrom(const StatsRegistry &Other) {
    std::map<std::string, uint64_t> Snapshot;
    std::map<std::string, uint64_t> GaugeSnapshot;
    std::map<std::string, LatencyHistogram> HistSnapshot;
    {
      std::lock_guard<std::mutex> L(Other.M);
      Snapshot = Other.Counters;
      GaugeSnapshot = Other.Gauges;
      HistSnapshot = Other.Histograms;
    }
    std::lock_guard<std::mutex> L(M);
    for (const auto &[Name, Value] : Snapshot)
      Counters[Name] += Value;
    for (const auto &[Name, Value] : GaugeSnapshot) {
      uint64_t &Slot = Gauges[Name];
      if (Value > Slot)
        Slot = Value;
    }
    for (const auto &[Name, H] : HistSnapshot)
      Histograms[Name].mergeFrom(H);
  }

  /// Renders "name = value" lines sorted by name (counters and gauges;
  /// histograms are reported only through the JSON export, keeping this
  /// output stable for golden expectations).
  std::string str() const {
    std::string Out;
    for (const auto &[Name, Value] : all())
      Out += Name + " = " + std::to_string(Value) + "\n";
    return Out;
  }

  void clear() {
    std::lock_guard<std::mutex> L(M);
    Counters.clear();
    Gauges.clear();
    Histograms.clear();
  }

private:
  mutable std::mutex M;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, uint64_t> Gauges;
  std::map<std::string, LatencyHistogram> Histograms;
};

/// Serializes a registry as one JSON document:
/// {"counters": {...}, "gauges": {...}, "histograms": {name:
///  {"count", "sum_us", "max_us", "buckets": [{"le_us", "count"}...]}}}.
std::string statsToJson(const StatsRegistry &Stats);

} // namespace slam

#endif // SUPPORT_STATS_H
