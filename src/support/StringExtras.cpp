//===- StringExtras.cpp ---------------------------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/StringExtras.h"

#include <cctype>

using namespace slam;

std::string slam::join(const std::vector<std::string> &Parts,
                       std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string_view slam::trim(std::string_view Text) {
  size_t B = 0, E = Text.size();
  while (B < E && std::isspace(static_cast<unsigned char>(Text[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(Text[E - 1])))
    --E;
  return Text.substr(B, E - B);
}

std::vector<std::string> slam::splitAndTrim(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Next = Text.find(Sep, Pos);
    if (Next == std::string_view::npos)
      Next = Text.size();
    std::string_view Piece = trim(Text.substr(Pos, Next - Pos));
    if (!Piece.empty())
      Out.emplace_back(Piece);
    Pos = Next + 1;
  }
  return Out;
}

bool slam::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}
