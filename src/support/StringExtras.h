//===- StringExtras.h - String helpers --------------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STRINGEXTRAS_H
#define SUPPORT_STRINGEXTRAS_H

#include <string>
#include <string_view>
#include <vector>

namespace slam {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Splits \p Text on \p Sep, trimming ASCII whitespace from each piece and
/// dropping empty pieces.
std::vector<std::string> splitAndTrim(std::string_view Text, char Sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

} // namespace slam

#endif // SUPPORT_STRINGEXTRAS_H
