//===- ThreadPool.cpp - Work-stealing task pool ---------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cassert>

using namespace slam;

namespace {
/// Worker id of the calling thread; -1 off-pool. Thread-local rather
/// than a map so currentWorkerId() is a plain load on the hot path.
thread_local int CurrentWorker = -1;
} // namespace

int ThreadPool::currentWorkerId() { return CurrentWorker; }

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Deques.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Deques.push_back(std::make_unique<WorkerDeque>());
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> L(StateM);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(Task && "null task");
  unsigned Target;
  {
    std::lock_guard<std::mutex> L(StateM);
    assert(!ShuttingDown && "submit after shutdown");
    ++Outstanding;
    int Self = CurrentWorker;
    // A worker submits to its own deque (popped LIFO below); external
    // submitters spray round-robin so the initial distribution is even
    // before stealing kicks in.
    Target = Self >= 0 ? static_cast<unsigned>(Self)
                       : NextQueue++ % Deques.size();
  }
  {
    std::lock_guard<std::mutex> L(Deques[Target]->M);
    Deques[Target]->Q.push_back(std::move(Task));
  }
  WorkCv.notify_one();
}

bool ThreadPool::popOrSteal(unsigned Id, std::function<void()> &Out) {
  // Own deque first, newest task first: depth-first execution keeps the
  // working set hot and bounds memory for task trees.
  {
    std::lock_guard<std::mutex> L(Deques[Id]->M);
    if (!Deques[Id]->Q.empty()) {
      Out = std::move(Deques[Id]->Q.back());
      Deques[Id]->Q.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the other deques — the classic Arora/
  // Blumofe/Plank discipline: victims lose the work they would get to
  // last, minimizing contention with their own LIFO end.
  for (size_t Off = 1; Off != Deques.size(); ++Off) {
    WorkerDeque &V = *Deques[(Id + Off) % Deques.size()];
    std::lock_guard<std::mutex> L(V.M);
    if (!V.Q.empty()) {
      Out = std::move(V.Q.front());
      V.Q.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Id) {
  CurrentWorker = static_cast<int>(Id);
  for (;;) {
    std::function<void()> Task;
    if (popOrSteal(Id, Task)) {
      Task();
      std::lock_guard<std::mutex> L(StateM);
      if (--Outstanding == 0)
        DoneCv.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> L(StateM);
    if (ShuttingDown)
      return;
    // Re-check under the lock: a submit may have raced the empty scan.
    // Outstanding > 0 with empty deques can also mean tasks are running
    // on other workers; sleeping is correct either way because every
    // submit notifies.
    bool MayHaveWork = false;
    for (auto &D : Deques) {
      std::lock_guard<std::mutex> DL(D->M);
      if (!D->Q.empty()) {
        MayHaveWork = true;
        break;
      }
    }
    if (MayHaveWork)
      continue;
    WorkCv.wait(L);
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> L(StateM);
  DoneCv.wait(L, [this] { return Outstanding == 0; });
}
