//===- ThreadPool.h - Work-stealing task pool -------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool used to shard the per-statement
/// abstraction work of C2bp (and any other embarrassingly parallel
/// phase) across worker threads. Each worker owns a bounded deque: it
/// pushes and pops its own work LIFO (cache-friendly) and steals FIFO
/// from the other workers when its deque runs dry, which balances the
/// highly uneven per-statement cube-search costs without a central
/// contended queue.
///
/// The pool is deliberately result-agnostic: callers submit void
/// closures that write into pre-allocated, task-private slots, then
/// call wait(). Determinism is the caller's job (and C2bp's merge
/// preserves statement order); the pool only guarantees that every
/// submitted task runs exactly once and that wait() returns after all
/// of them (including tasks spawned by tasks) have finished.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_THREADPOOL_H
#define SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slam {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers (at least one).
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues one task. Thread-safe; may be called from inside a task
  /// (the task lands on the calling worker's own deque).
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has completed.
  void wait();

  unsigned numWorkers() const { return static_cast<unsigned>(Threads.size()); }

  /// Index of the pool worker the calling thread is, or -1 when called
  /// from a thread outside the pool. Lets callers keep per-worker state
  /// (a private prover, a statistics registry) without locking.
  static int currentWorkerId();

  /// A reasonable worker count for this machine.
  static unsigned defaultConcurrency();

private:
  struct WorkerDeque {
    std::mutex M;
    std::deque<std::function<void()>> Q;
  };

  void workerLoop(unsigned Id);
  bool popOrSteal(unsigned Id, std::function<void()> &Out);

  std::vector<std::unique_ptr<WorkerDeque>> Deques;
  std::vector<std::thread> Threads;

  // Task accounting and sleep/wake coordination.
  std::mutex StateM;
  std::condition_variable WorkCv; ///< Signals workers: work or shutdown.
  std::condition_variable DoneCv; ///< Signals waiters: all tasks drained.
  unsigned Outstanding = 0;       ///< Submitted but not yet finished.
  unsigned NextQueue = 0;         ///< Round-robin target for external submits.
  bool ShuttingDown = false;
};

} // namespace slam

#endif // SUPPORT_THREADPOOL_H
