//===- Timer.h - Wall-clock timing ------------------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer for the per-tool runtimes the paper reports
/// in Tables 1 and 2.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TIMER_H
#define SUPPORT_TIMER_H

#include <chrono>

namespace slam {

/// Measures elapsed wall-clock time from construction (or \c reset()).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction / last reset.
  double millis() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace slam

#endif // SUPPORT_TIMER_H
