//===- Trace.cpp - Chrome trace-event recording -------------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <fstream>

using namespace slam;

std::atomic<TraceRecorder *> TraceRecorder::ActiveRecorder{nullptr};

TraceRecorder::TraceRecorder() : Epoch(std::chrono::steady_clock::now()) {}

uint64_t TraceRecorder::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void TraceRecorder::record(TraceEvent E) {
  std::lock_guard<std::mutex> L(M);
  E.Seq = NextSeq++;
  Events.push_back(std::move(E));
}

size_t TraceRecorder::numEvents() const {
  std::lock_guard<std::mutex> L(M);
  return Events.size();
}

std::vector<TraceEvent> TraceRecorder::sortedEvents() const {
  std::vector<TraceEvent> Out;
  {
    std::lock_guard<std::mutex> L(M);
    Out = Events;
  }
  std::sort(Out.begin(), Out.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              if (A.StartUs != B.StartUs)
                return A.StartUs < B.StartUs;
              // Starts can tie at microsecond resolution; the longer
              // span is the enclosing one, so it goes first.
              if (A.DurUs != B.DurUs)
                return A.DurUs > B.DurUs;
              return A.Seq < B.Seq;
            });
  return Out;
}

std::string TraceRecorder::toChromeJson() const {
  std::vector<TraceEvent> Sorted = sortedEvents();
  int MaxTid = 0;
  for (const TraceEvent &E : Sorted)
    MaxTid = std::max(MaxTid, E.Tid);

  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();

  // Thread-name metadata rows so the viewer labels the pool workers.
  for (int Tid = 0; Tid <= MaxTid; ++Tid) {
    W.beginObject();
    W.kv("name", "thread_name");
    W.kv("ph", "M");
    W.kv("pid", 1);
    W.kv("tid", Tid);
    W.key("args");
    W.beginObject();
    W.kv("name", Tid == 0 ? std::string("main")
                          : "worker-" + std::to_string(Tid));
    W.endObject();
    W.endObject();
  }

  for (const TraceEvent &E : Sorted) {
    W.beginObject();
    W.kv("name", E.Name);
    W.kv("cat", E.Category);
    W.kv("ph", "X");
    W.kv("ts", E.StartUs);
    W.kv("dur", E.DurUs);
    W.kv("pid", 1);
    W.kv("tid", E.Tid);
    if (!E.Args.empty()) {
      W.key("args");
      W.beginObject();
      for (const auto &[K, V] : E.Args)
        W.kv(K, V);
      W.endObject();
    }
    W.endObject();
  }

  W.endArray();
  W.kv("displayTimeUnit", "ms");
  W.endObject();
  Out += '\n';
  return Out;
}

bool TraceRecorder::writeChromeJson(const std::string &Path,
                                    std::string *Err) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  std::string J = toChromeJson();
  Out.write(J.data(), static_cast<std::streamsize>(J.size()));
  Out.flush();
  if (!Out) {
    if (Err)
      *Err = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

TraceSpan::~TraceSpan() {
  if (!R)
    return;
  TraceEvent E;
  E.Name = Name;
  E.Category = Category;
  int Worker = ThreadPool::currentWorkerId();
  E.Tid = Worker < 0 ? 0 : Worker + 1;
  E.StartUs = StartUs;
  uint64_t End = R->nowUs();
  E.DurUs = End > StartUs ? End - StartUs : 0;
  E.Args = std::move(Args);
  R->record(std::move(E));
}

namespace {
std::atomic<double> SlowQueryMs{-1.0};
} // namespace

void trace::setSlowQueryMillis(double Millis) {
  SlowQueryMs.store(Millis, std::memory_order_relaxed);
}

double trace::slowQueryMillis() {
  return SlowQueryMs.load(std::memory_order_relaxed);
}
