//===- Trace.h - Pipeline-wide span tracing ---------------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock span tracing across the whole pipeline (cfront, alias,
/// C2bp, the prover, Bebop, Newton, the CEGAR driver), serialized as
/// Chrome trace-event JSON loadable in chrome://tracing or Perfetto.
///
/// Design (modeled on LLVM's TimeTraceProfiler):
///
///   * One process-global active TraceRecorder, installed by the tool
///     main when `--trace-out` is passed. Library code never sees a
///     recorder parameter; it opens RAII TraceSpan scopes that consult
///     the global.
///   * Disabled mode is near-zero-cost: a TraceSpan constructor is one
///     relaxed atomic load and a branch — no clock read, no allocation
///     (members are a pointer and PODs; the args vector stays empty).
///   * Span completion appends one event under a mutex. Spans may be
///     opened concurrently from ThreadPool workers; events carry the
///     pool worker id (tid = worker + 1, main/external threads are
///     tid 0) and serialization orders events deterministically by
///     (tid, start, sequence) so equal runs produce equal files.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TRACE_H
#define SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace slam {

/// One completed span (a "ph":"X" Chrome trace event).
struct TraceEvent {
  std::string Name;
  const char *Category = "slam";
  int Tid = 0;        ///< 0 = main/external, worker id + 1 otherwise.
  uint64_t StartUs = 0; ///< Relative to the recorder's epoch.
  uint64_t DurUs = 0;
  uint64_t Seq = 0;   ///< Completion order (tie-break for sorting).
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Collects completed spans; thread-safe. Construct, install with
/// setActive(), run the pipeline, uninstall, serialize.
class TraceRecorder {
public:
  TraceRecorder();

  /// Microseconds since this recorder's construction.
  uint64_t nowUs() const;

  /// Appends one completed event (called by ~TraceSpan, possibly from
  /// several threads at once).
  void record(TraceEvent E);

  size_t numEvents() const;

  /// Events sorted by (tid, start, -duration, seq) — a deterministic
  /// order for a fixed schedule that places enclosing spans before the
  /// spans they contain when starts tie at microsecond resolution.
  std::vector<TraceEvent> sortedEvents() const;

  /// The Chrome trace-event document ({"traceEvents": [...]}).
  std::string toChromeJson() const;

  /// Writes toChromeJson() to \p Path; false (with \p Err set) on I/O
  /// failure.
  bool writeChromeJson(const std::string &Path, std::string *Err) const;

  /// Installs/clears the process-global recorder consulted by
  /// TraceSpan. Pass nullptr to disable tracing. Not synchronized with
  /// in-flight spans: install before the traced work starts and clear
  /// after it quiesces.
  static void setActive(TraceRecorder *R) {
    ActiveRecorder.store(R, std::memory_order_release);
  }
  static TraceRecorder *active() {
    return ActiveRecorder.load(std::memory_order_acquire);
  }

private:
  static std::atomic<TraceRecorder *> ActiveRecorder;

  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex M;
  std::vector<TraceEvent> Events;
  uint64_t NextSeq = 0;
};

/// RAII span: records [construction, destruction) against the active
/// recorder. When tracing is disabled the whole object is inert.
class TraceSpan {
public:
  /// \p Name must outlive the span (string literals at every call
  /// site).
  explicit TraceSpan(const char *Name, const char *Category = "slam")
      : R(TraceRecorder::active()), Name(Name), Category(Category) {
    if (R)
      StartUs = R->nowUs();
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches a key-value argument shown in the trace viewer. No-op
  /// when tracing is disabled.
  void arg(const char *Key, std::string Value) {
    if (R)
      Args.emplace_back(Key, std::move(Value));
  }
  void arg(const char *Key, uint64_t Value) {
    if (R)
      Args.emplace_back(Key, std::to_string(Value));
  }
  void arg(const char *Key, int Value) {
    if (R)
      Args.emplace_back(Key, std::to_string(Value));
  }

  /// True when a recorder is active (lets call sites skip building
  /// expensive argument strings).
  bool enabled() const { return R != nullptr; }

  ~TraceSpan();

private:
  TraceRecorder *R;
  const char *Name;
  const char *Category;
  uint64_t StartUs = 0;
  std::vector<std::pair<std::string, std::string>> Args;
};

namespace trace {

/// Threshold for the prover's slow-query log, in milliseconds; queries
/// at or above it print the implication being decided to stderr.
/// Negative (the default) disables the log. Set by the tools'
/// `--slow-query-ms`; read on every genuine prover call.
void setSlowQueryMillis(double Millis);
double slowQueryMillis();

} // namespace trace
} // namespace slam

#endif // SUPPORT_TRACE_H
