//===- Table1.cpp - Generated device-driver models (Section 6.1) -----------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The Windows 2000 DDK drivers the paper analyzed are not available, so
// these models recreate their analysis-relevant structure: a main
// routine dispatching to IRP_MJ_*-style handlers, each acquiring and
// releasing a spin lock around control-intensive status handling, with
// many helper routines of plain data manipulation (the paper notes the
// checked properties are "very control-intensive [with] relatively
// simple dependencies on data", which is exactly what makes the
// cone-of-influence optimization effective). Generation is
// deterministic per seed.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "cfront/Lexer.h"

using namespace slam;
using namespace slam::workloads;

namespace {

/// xorshift64* — deterministic filler-shape choices.
struct Rng {
  uint64_t State;
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return static_cast<uint32_t>(State >> 32);
  }
  uint32_t range(uint32_t N) { return next() % N; }
};

/// Emits a block of plain data-manipulation statements over the helper's
/// locals (the bulk of a real driver's line count). Branch and loop
/// conditions test fresh nondeterministic values: the checked properties
/// are control-intensive with "relatively simple dependencies on data"
/// (Section 6.1), and independent conditions keep every abstract path
/// concretely feasible so refinement converges on the property itself.
void emitFiller(std::string &Out, Rng &R, int Count, int Indent) {
  std::string Pad(Indent, ' ');
  for (int I = 0; I != Count; ++I) {
    switch (R.range(5)) {
    case 0:
      Out += Pad + "a = a + " + std::to_string(1 + R.range(9)) + ";\n";
      break;
    case 1:
      Out += Pad + "b = a - c;\n";
      break;
    case 2:
      Out += Pad + "t = nondet();\n";
      Out += Pad + "if (t > " + std::to_string(R.range(50)) +
             ") {\n" + Pad + "  c = c + 1;\n" + Pad + "} else {\n" + Pad +
             "  c = c - 1;\n" + Pad + "}\n";
      break;
    case 3:
      Out += Pad + "t = nondet();\n";
      Out += Pad + "while (t > 0) {\n" + Pad + "  b = b + " +
             std::to_string(1 + R.range(3)) + ";\n" + Pad +
             "  t = t - 1;\n" + Pad + "}\n";
      break;
    default:
      Out += Pad + "c = a * 2 + b;\n";
      break;
    }
  }
}

void emitHelper(std::string &Out, Rng &R, const std::string &Name,
                int Filler) {
  // Helpers are plain data manipulation: no early exits, no influence
  // on the locking discipline (the paper's "simple dependencies on
  // data"), so they inflate the statement count without stalling the
  // refinement loop.
  Out += "int " + Name + "(int status) {\n";
  Out += "  int a;\n  int b;\n  int c;\n  int t;\n";
  Out += "  a = status;\n  b = status + 1;\n  c = 0;\n";
  emitFiller(Out, R, Filler, 2);
  Out += "  return status + c - c;\n";
  Out += "}\n\n";
}

/// One dispatch routine: the lock is taken and released under the
/// same flag condition — the classic SLAM pattern whose verification
/// requires Newton to discover the flag predicate.
void emitDispatch(std::string &Out, Rng &R, const DriverConfig &C,
                  int Index, bool Buggy) {
  (void)R;
  std::string Name = "dispatch_" + std::to_string(Index);
  Out += "void " + Name + "() {\n";
  Out += "  int status;\n  int flag;\n  int retry;\n";
  Out += "  status = nondet();\n";
  Out += "  flag = nondet();\n";
  Out += "  if (flag > 0) {\n    AcquireLock();\n  }\n";

  // Nested status checks calling helpers.
  std::string Pad = "  ";
  for (int D = 0; D != C.BranchDepth; ++D) {
    int Helper = Index * C.HelpersPerDispatch + D % C.HelpersPerDispatch;
    Out += Pad + "if (status > " + std::to_string(D) + ") {\n";
    Out += Pad + "  status = helper_" + std::to_string(Helper) +
           "(status);\n";
    Pad += "  ";
  }
  if (Buggy) {
    // The in-development floppy driver's error: re-acquiring the lock
    // on a rare retry path while it is already held.
    Out += Pad + "retry = nondet();\n";
    Out += Pad + "if (flag > 0) {\n";
    Out += Pad + "  if (retry == 7) {\n";
    Out += Pad + "    AcquireLock();\n";
    Out += Pad + "  }\n";
    Out += Pad + "}\n";
  }
  for (int D = C.BranchDepth; D-- > 0;) {
    Pad = std::string(2 * (D + 1), ' ');
    Out += Pad + "}\n";
  }

  // Retry loop exercising the summary machinery.
  Out += "  retry = nondet();\n";
  Out += "  while (retry > 0) {\n";
  Out += "    status = helper_" +
         std::to_string(Index * C.HelpersPerDispatch) + "(status);\n";
  Out += "    retry = retry - 1;\n";
  Out += "  }\n";

  Out += "  if (flag > 0) {\n    ReleaseLock();\n  }\n";
  if (C.UseIrp) {
    Out += "  if (status >= 0) {\n";
    Out += "    CompleteRequest();\n";
    Out += "  } else {\n";
    Out += "    MarkPending();\n";
    Out += "  }\n";
  }
  Out += "}\n\n";
}

} // namespace

DriverModel workloads::generateDriver(const DriverConfig &C) {
  Rng R{C.Seed * 2654435761ULL + 0x9e3779b97f4a7c15ULL};
  std::string Out;
  Out += "/* Generated driver model '" + C.Name +
         "' (see DESIGN.md: DDK substitution). */\n";
  Out += "int lockHeld;\n";
  Out += "int deviceBusy;\n\n";
  Out += "int nondet();\n\n";
  Out += "void AcquireLock() {\n  lockHeld = 1;\n}\n\n";
  Out += "void ReleaseLock() {\n  lockHeld = 0;\n}\n\n";
  if (C.UseIrp) {
    Out += "void CompleteRequest() {\n  deviceBusy = 0;\n}\n\n";
    Out += "void MarkPending() {\n  deviceBusy = 1;\n}\n\n";
  }

  int NumHelpers = C.NumDispatch * C.HelpersPerDispatch;
  for (int H = 0; H != NumHelpers; ++H)
    emitHelper(Out, R, "helper_" + std::to_string(H),
               C.FillerPerHelper);

  for (int D = 0; D != C.NumDispatch; ++D)
    emitDispatch(Out, R, C, D, C.InjectBug && D == C.NumDispatch / 2);

  // The driver entry: dispatch on the request major code.
  Out += "void main() {\n";
  Out += "  int mj;\n";
  Out += "  mj = nondet();\n";
  for (int D = 0; D != C.NumDispatch; ++D) {
    Out += D == 0 ? "  if" : "  } else if";
    Out += " (mj == " + std::to_string(D) + ") {\n";
    Out += "    dispatch_" + std::to_string(D) + "();\n";
  }
  Out += "  }\n";
  Out += "}\n";

  DriverModel M;
  M.Name = C.Name;
  M.Source = std::move(Out);
  M.Spec = slamtool::SafetySpec::lockDiscipline("AcquireLock",
                                                "ReleaseLock");
  M.SourceLines = cfront::countLines(M.Source);
  return M;
}

std::vector<DriverModel> workloads::table1Drivers() {
  std::vector<DriverModel> Out;

  // Sizes follow the paper's relative ordering: floppy and srdriver are
  // the big ones, ioctl the smallest. floppy carries the planted bug
  // (the paper reports finding an IRP-handling error in the
  // in-development floppy driver; our models carry the analogous
  // locking error).
  DriverConfig Floppy{"floppy", 10, 5, 3, 14, true, true, 11};
  DriverConfig Ioctl{"ioctl", 3, 3, 2, 8, false, false, 22};
  DriverConfig Openclos{"openclos", 4, 3, 2, 9, false, false, 33};
  DriverConfig Srdriver{"srdriver", 9, 5, 3, 14, true, false, 44};
  DriverConfig Log{"log", 5, 4, 2, 11, false, false, 55};

  for (const DriverConfig &C :
       {Floppy, Ioctl, Openclos, Srdriver, Log})
    Out.push_back(generateDriver(C));
  return Out;
}
