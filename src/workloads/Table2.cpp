//===- Table2.cpp - Array and heap intensive programs (Section 6.2) ---------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace slam;
using namespace slam::workloads;

const Workload &workloads::partitionWorkload() {
  static const Workload W{
      "partition",
      R"(/* Figure 1(a): destructively partition a list around v. */
typedef struct cell {
  int val;
  struct cell* next;
} *list;

list partition(list *l, int v) {
  list curr, prev, newl, nextcurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextcurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL)
        prev->next = nextcurr;
      if (curr == *l)
        *l = nextcurr;
      curr->next = newl;
      L: newl = curr;
    } else {
      prev = curr;
    }
    curr = nextcurr;
  }
  return newl;
}
)",
      R"(partition:
  curr == NULL, prev == NULL,
  curr->val > v, prev->val > v
)",
      "partition", "L"};
  return W;
}

const Workload &workloads::listfindWorkload() {
  static const Workload W{
      "listfind",
      R"(/* Search a list for a value; bounds on the traversal pointer. */
typedef struct cell {
  int val;
  struct cell* next;
} *list;

int listfind(list l, int v) {
  list curr;
  int found;
  found = 0;
  curr = l;
  while (curr != NULL) {
    L: assert(curr != NULL);
    if (curr->val == v) {
      found = 1;
      curr = NULL;
    } else {
      curr = curr->next;
    }
  }
  return found;
}
)",
      R"(listfind:
  curr == NULL, curr->val == v, found == 1
)",
      "listfind", "L"};
  return W;
}

const Workload &workloads::reverseWorkload() {
  static const Workload W{
      "reverse",
      R"(/* Figure 3: mark-and-sweep style traversal with back pointers.
   The auxiliary variables h / hnext witness that the procedure
   leaves the shape of the list unchanged: at the end,
   h->next == hnext for an arbitrary list node h. */
struct node {
  int mark;
  struct node *next;
};

struct node *anynode();

void mark(struct node *list) {
  struct node *this;
  struct node *tmp;
  struct node *prev;
  struct node *h;
  struct node *hnext;

  h = anynode();
  if (h == 0) { return; }
  hnext = h->next;

  prev = 0;
  this = list;
  /* traverse list and mark, setting back pointers */
  while (this != 0) {
    if (this->mark == 1) {
      break;
    }
    this->mark = 1;
    tmp = prev;
    prev = this;
    this = this->next;
    prev->next = tmp;
  }
  /* traverse back, resetting the pointers */
  while (prev != 0) {
    tmp = this;
    this = prev;
    prev = prev->next;
    this->next = tmp;
  }
  L: assert(h->next == hnext);
}
)",
      R"(mark:
  h == 0, prev == h, this == h,
  this->next == hnext, h->next == hnext,
  prev == this, hnext->next == h
)",
      "mark", "L"};
  return W;
}

const Workload &workloads::kmpWorkload() {
  static const Workload W{
      "kmp",
      R"(/* Knuth-Morris-Pratt string matching over int arrays (after
   Necula's proof-carrying-code example): every array access is
   guarded by the bounds the PCC compiler had to certify. */
int pat[10];
int txt[100];
int fail[10];

int kmpsearch(int m, int n) {
  int i;
  int j;
  int result;
  result = 0 - 1;
  if (m <= 0) { return result; }
  if (m > 10) { return result; }
  if (n < 0) { return result; }
  if (n > 100) { return result; }
  i = 0;
  j = 0;
  while (i < n) {
    B: assert(i >= 0);
    assert(j >= 0);
    assert(j < m);
    if (txt[i] == pat[j]) {
      i = i + 1;
      j = j + 1;
      if (j == m) {
        result = i - m;
        return result;
      }
    } else {
      if (j > 0) {
        j = fail[j - 1];
        /* defensive clamp: the table is data we know nothing about */
        if (j < 0) { j = 0; }
        if (j >= m) { j = 0; }
      } else {
        i = i + 1;
      }
    }
  }
  return result;
}
)",
      R"(kmpsearch:
  i >= 0, j >= 0, j < m, j <= m, m > 0, j == m
)",
      "kmpsearch", "B"};
  return W;
}

const Workload &workloads::qsortWorkload() {
  static const Workload W{
      "qsort",
      R"(/* Array quicksort (Lomuto partition), recursive, with the array
   bounds assertions of Necula's PCC example. */
int arr[100];

void quicksort(int lo, int hi, int n) {
  int i;
  int p;
  int t;
  int pivot;
  if (lo < 0) { return; }
  if (hi >= n) { return; }
  if (lo >= hi) { return; }
  pivot = arr[hi];
  i = lo;
  p = lo;
  while (i < hi) {
    B: assert(i >= 0);
    assert(i < n);
    assert(p >= 0);
    assert(p < n);
    if (arr[i] < pivot) {
      t = arr[i];
      arr[i] = arr[p];
      arr[p] = t;
      i = i + 1;
      p = p + 1;
    } else {
      i = i + 1;
    }
  }
  assert(p >= 0);
  assert(p < n);
  t = arr[p];
  arr[p] = arr[hi];
  arr[hi] = t;
  quicksort(lo, p - 1, n);
  quicksort(p + 1, hi, n);
}
)",
      R"(quicksort:
  lo >= 0, hi < n, lo < hi,
  i >= lo, i <= hi, i < hi, p >= lo, p <= i, p < i
)",
      "quicksort", "B"};
  return W;
}

std::vector<const Workload *> workloads::table2Workloads() {
  return {&kmpWorkload(), &qsortWorkload(), &partitionWorkload(),
          &listfindWorkload(), &reverseWorkload()};
}
