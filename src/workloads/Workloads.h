//===- Workloads.h - The paper's evaluation programs ------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The programs of the paper's evaluation (Section 6):
///
///   * Table 2's array- and heap-intensive programs — kmp and qsort
///     (from Necula's proof-carrying-code examples), the list partition
///     of Figure 1, a list search, and Figure 3's mark/reverse list
///     traversal — each with its predicate input file;
///   * Table 1's device drivers. The Windows DDK sources are not
///     available, so driver *models* are generated: control-intensive
///     dispatch routines and helpers exercising the lock and IRP
///     disciplines, sized per configuration (see DESIGN.md for the
///     substitution rationale).
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_WORKLOADS_H
#define WORKLOADS_WORKLOADS_H

#include "slam/SafetySpec.h"

#include <string>
#include <vector>

namespace slam {
namespace workloads {

/// One Table 2 workload: a SIL-C program plus its predicate file.
struct Workload {
  std::string Name;
  std::string Source;
  std::string Predicates;
  /// Entry procedure for reachability (the analyzed procedure).
  std::string Entry;
  /// Label whose invariant the experiment inspects ("" if none).
  std::string InvariantLabel;
};

const Workload &partitionWorkload(); ///< Figure 1.
const Workload &listfindWorkload();
const Workload &reverseWorkload(); ///< Figure 3's mark.
const Workload &kmpWorkload();     ///< Necula's KMP matcher.
const Workload &qsortWorkload();   ///< Array quicksort.

/// All five Table 2 rows in paper order.
std::vector<const Workload *> table2Workloads();

//===----------------------------------------------------------------------===//
// Driver models (Table 1)
//===----------------------------------------------------------------------===//

/// Configuration of one generated driver model.
struct DriverConfig {
  std::string Name;
  int NumDispatch = 4;      ///< Dispatch routines (IRP_MJ_* handlers).
  int HelpersPerDispatch = 3;
  int BranchDepth = 2;      ///< Nesting of status-checking conditionals.
  int FillerPerHelper = 6;  ///< Data-manipulation statements per helper.
  bool UseIrp = false;      ///< Check the IRP discipline too.
  bool InjectBug = false;   ///< Plant a double-acquire on one path.
  unsigned Seed = 1;
};

/// One Table 1 driver model: generated source + the property to check.
struct DriverModel {
  std::string Name;
  std::string Source;
  slamtool::SafetySpec Spec;
  unsigned SourceLines = 0;
};

/// Generates a deterministic driver model from \p Config.
DriverModel generateDriver(const DriverConfig &Config);

/// The five Table 1 rows: floppy, ioctl, openclos, srdriver, log.
/// Sizes are scaled relative to the paper's drivers (floppy and
/// srdriver largest); floppy carries the injected bug the paper reports
/// finding in the in-development floppy driver.
std::vector<DriverModel> table1Drivers();

} // namespace workloads
} // namespace slam

#endif // WORKLOADS_WORKLOADS_H
