//===- ModRefTest.cpp - Side-effect summaries -------------------------------===//

#include "alias/ModRef.h"

#include "cfront/Normalize.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::alias;
using namespace slam::cfront;

namespace {

class ModRefTest : public ::testing::Test {
protected:
  void load(const std::string &Source) {
    DiagnosticEngine Diags;
    P = frontend(Source, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str();
    PT = std::make_unique<PointsTo>(*P);
    MR = std::make_unique<ModRef>(*P, *PT);
  }

  bool modifiesVar(const std::string &Func, const VarDecl *V) {
    return MR->mod(P->findFunction(Func)).count(PT->varCell(V)) != 0;
  }

  std::unique_ptr<Program> P;
  std::unique_ptr<PointsTo> PT;
  std::unique_ptr<ModRef> MR;
};

TEST_F(ModRefTest, DirectGlobalWrite) {
  load("int g; void f() { g = 1; }");
  EXPECT_TRUE(modifiesVar("f", P->findGlobal("g")));
}

TEST_F(ModRefTest, TransitiveThroughCalls) {
  load(R"(
    int g;
    void inner() { g = 1; }
    void outer() { inner(); }
    void clean() { int x; x = 0; }
  )");
  EXPECT_TRUE(modifiesVar("inner", P->findGlobal("g")));
  EXPECT_TRUE(modifiesVar("outer", P->findGlobal("g")));
  EXPECT_FALSE(modifiesVar("clean", P->findGlobal("g")));
}

TEST_F(ModRefTest, WriteThroughPointerParameter) {
  load(R"(
    void set(int *p) { *p = 1; }
    void caller() { int x; set(&x); }
  )");
  const FuncDecl *Caller = P->findFunction("caller");
  const VarDecl *X = Caller->findLocalOrParam("x");
  // set's mod includes x's cell (reached via the actual &x).
  EXPECT_TRUE(modifiesVar("set", X));
}

TEST_F(ModRefTest, FieldWritesSummarized) {
  load(R"(
    struct cell { int val; struct cell *next; };
    void touch(struct cell *c) { c->val = 0; }
    void nochange(struct cell *c) { int x; x = c->val; }
  )");
  const RecordDecl *Rec = P->Types.findRecord("cell");
  ASSERT_TRUE(Rec != nullptr);
  int ValCell = PT->fieldCell(Rec, "val");
  EXPECT_TRUE(MR->mod(P->findFunction("touch")).count(ValCell));
  EXPECT_FALSE(MR->mod(P->findFunction("nochange")).count(ValCell));
}

TEST_F(ModRefTest, ExternWithPointerParamIsConservative) {
  load(R"(
    struct cell { int val; struct cell *next; };
    void external(struct cell *c);
    void pureExternal(int x);
  )");
  const RecordDecl *Rec = P->Types.findRecord("cell");
  int ValCell = PT->fieldCell(Rec, "val");
  EXPECT_TRUE(MR->mod(P->findFunction("external")).count(ValCell));
  EXPECT_TRUE(MR->mod(P->findFunction("pureExternal")).empty());
}

TEST_F(ModRefTest, RecursionTerminates) {
  load(R"(
    int g;
    void even(int n);
    void odd(int n) { g = 1; even(n - 1); }
    void evenDef(int n) { odd(n - 1); }
  )");
  EXPECT_TRUE(modifiesVar("evenDef", P->findGlobal("g")));
}

} // namespace
