//===- OracleTest.cpp - Points-to-backed alias queries on predicates -------===//

#include "alias/Oracle.h"

#include "cfront/Normalize.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::alias;
using namespace slam::cfront;
using logic::AliasResult;
using logic::ExprRef;

namespace {

const char *PartitionSource = R"(
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev, newl, nextcurr;
  curr = *l; prev = NULL; newl = NULL;
  while (curr != NULL) {
    nextcurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) prev->next = nextcurr;
      if (curr == *l) *l = nextcurr;
      curr->next = newl;
      newl = curr;
    } else { prev = curr; }
    curr = nextcurr;
  }
  return newl;
}
)";

class OracleTest : public ::testing::Test {
protected:
  void SetUp() override {
    DiagnosticEngine Diags;
    P = frontend(PartitionSource, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str();
    PT = std::make_unique<PointsTo>(*P);
    Oracle = std::make_unique<ProgramAliasOracle>(
        *PT, *P, P->findFunction("partition"));
  }

  ExprRef loc(const std::string &Text) {
    DiagnosticEngine Diags;
    ExprRef E = logic::parseExpr(Ctx, Text, Diags);
    EXPECT_TRUE(E != nullptr) << Diags.str();
    return E;
  }

  std::unique_ptr<Program> P;
  std::unique_ptr<PointsTo> PT;
  std::unique_ptr<ProgramAliasOracle> Oracle;
  logic::LogicContext Ctx;
};

TEST_F(OracleTest, LocalPointersNotAliasedThroughDerefs) {
  // Section 2.1: the assignment prev = NULL can only affect the prev
  // predicates, because *l cannot alias a non-address-taken local.
  EXPECT_EQ(Oracle->alias(loc("prev"), loc("*l")), AliasResult::NoAlias);
  EXPECT_EQ(Oracle->alias(loc("curr"), loc("*l")), AliasResult::NoAlias);
}

TEST_F(OracleTest, TypeBasedPruning) {
  // v is an int; curr is a struct cell*.
  EXPECT_EQ(Oracle->alias(loc("v"), loc("curr")), AliasResult::NoAlias);
  // curr->val (int) vs curr->next (cell*): distinct fields anyway.
  EXPECT_EQ(Oracle->alias(loc("curr->val"), loc("curr->next")),
            AliasResult::NoAlias);
}

TEST_F(OracleTest, SameFieldDifferentBaseStillMay) {
  EXPECT_EQ(Oracle->alias(loc("curr->val"), loc("prev->val")),
            AliasResult::MayAlias);
}

TEST_F(OracleTest, IdenticalLocationsMust) {
  EXPECT_EQ(Oracle->alias(loc("curr->next"), loc("curr->next")),
            AliasResult::MustAlias);
}

TEST_F(OracleTest, DerefOfLAliasesAnonymousCellsOnly) {
  // *l may alias another deref of the same type...
  EXPECT_EQ(Oracle->alias(loc("*l"), loc("*l")), AliasResult::MustAlias);
  // ...but not an int variable.
  EXPECT_EQ(Oracle->alias(loc("*l"), loc("v")), AliasResult::NoAlias);
}

TEST_F(OracleTest, UnknownNamesStayConservative) {
  // Auxiliary predicate variables unknown to the program: the oracle
  // cannot prove disjointness against derefs.
  EXPECT_EQ(Oracle->alias(loc("mystery"), loc("*l")),
            AliasResult::MayAlias);
  // Two distinct variables never alias even when unknown (shape rule).
  EXPECT_EQ(Oracle->alias(loc("mystery"), loc("curr")),
            AliasResult::NoAlias);
}

} // namespace
