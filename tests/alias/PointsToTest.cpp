//===- PointsToTest.cpp - May-point-to analysis -----------------------------===//

#include "alias/PointsTo.h"

#include "cfront/Normalize.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::alias;
using namespace slam::cfront;

namespace {

class PointsToTest : public ::testing::Test {
protected:
  std::unique_ptr<Program> load(const std::string &Source) {
    DiagnosticEngine Diags;
    auto P = frontend(Source, Diags);
    EXPECT_TRUE(P != nullptr) << Diags.str();
    return P;
  }

  static const VarDecl *var(const Program &P, const std::string &Func,
                            const std::string &Name) {
    if (const FuncDecl *F = P.findFunction(Func))
      if (VarDecl *V = F->findLocalOrParam(Name))
        return V;
    return P.findGlobal(Name);
  }
};

TEST_F(PointsToTest, AddressOfSeedsPointsTo) {
  auto P = load("void f() { int x; int *p; p = &x; }");
  PointsTo PT(*P);
  const VarDecl *X = var(*P, "f", "x");
  const VarDecl *Pp = var(*P, "f", "p");
  EXPECT_TRUE(PT.pointsToSet(*Pp).count(PT.varCell(X)));
  EXPECT_TRUE(PT.isAddressTaken(*X));
  EXPECT_FALSE(PT.isAddressTaken(*Pp));
}

TEST_F(PointsToTest, CopyPropagates) {
  auto P = load("void f() { int x; int *p; int *q; p = &x; q = p; }");
  PointsTo PT(*P);
  const VarDecl *X = var(*P, "f", "x");
  const VarDecl *Q = var(*P, "f", "q");
  EXPECT_TRUE(PT.pointsToSet(*Q).count(PT.varCell(X)));
}

TEST_F(PointsToTest, AndersenIsDirectional) {
  // q = p must not make p point to q's other targets in Andersen mode.
  const char *Src =
      "void f() { int x; int y; int *p; int *q; p = &x; q = &y; q = p; }";
  auto P = load(Src);
  const VarDecl *Y = var(*P, "f", "y");
  const VarDecl *Pp = var(*P, "f", "p");
  {
    PointsTo PT(*P, Mode::Andersen);
    EXPECT_FALSE(PT.pointsToSet(*Pp).count(PT.varCell(Y)));
  }
  {
    PointsTo PT(*P, Mode::Steensgaard);
    EXPECT_TRUE(PT.pointsToSet(*Pp).count(PT.varCell(Y)));
  }
}

TEST_F(PointsToTest, LoadThroughDoublePointer) {
  auto P = load(R"(
    void f() {
      int x; int *p; int **pp; int *q;
      p = &x;
      pp = &p;
      q = *pp;
    }
  )");
  PointsTo PT(*P, Mode::Andersen);
  const VarDecl *X = var(*P, "f", "x");
  const VarDecl *Q = var(*P, "f", "q");
  EXPECT_TRUE(PT.pointsToSet(*Q).count(PT.varCell(X)));
}

TEST_F(PointsToTest, StoreThroughPointer) {
  auto P = load(R"(
    void f() {
      int x; int *p; int *q; int **pp;
      pp = &p;
      *pp = &x;
      q = p;
    }
  )");
  PointsTo PT(*P, Mode::Andersen);
  const VarDecl *X = var(*P, "f", "x");
  const VarDecl *Q = var(*P, "f", "q");
  EXPECT_TRUE(PT.pointsToSet(*Q).count(PT.varCell(X)));
}

TEST_F(PointsToTest, FieldsAreFieldBased) {
  auto P = load(R"(
    struct cell { int val; struct cell *next; };
    void f(struct cell *a, struct cell *b) {
      struct cell *t;
      a->next = b;
      t = a->next;
    }
  )");
  PointsTo PT(*P, Mode::Andersen);
  const VarDecl *T = var(*P, "f", "t");
  const VarDecl *B = var(*P, "f", "b");
  // t = a->next reads what was stored: t may point where b points.
  for (int C : PT.pointsToSet(*B))
    EXPECT_TRUE(PT.pointsToSet(*T).count(C));
}

TEST_F(PointsToTest, PartitionPointersNotAddressTaken) {
  // Section 2.1: none of {curr, prev, nextcurr, newl} has its address
  // taken, so none can be aliased by any other expression.
  auto P = load(R"(
    typedef struct cell { int val; struct cell* next; } *list;
    list partition(list *l, int v) {
      list curr, prev, newl, nextcurr;
      curr = *l; prev = NULL; newl = NULL;
      while (curr != NULL) {
        nextcurr = curr->next;
        if (curr->val > v) {
          if (prev != NULL) prev->next = nextcurr;
          if (curr == *l) *l = nextcurr;
          curr->next = newl;
          newl = curr;
        } else { prev = curr; }
        curr = nextcurr;
      }
      return newl;
    }
  )");
  PointsTo PT(*P); // Das mode, as in the paper.
  for (const char *Name : {"curr", "prev", "newl", "nextcurr"})
    EXPECT_FALSE(PT.isAddressTaken(*var(*P, "partition", Name))) << Name;
}

TEST_F(PointsToTest, ParameterHasAnonymousTarget) {
  // Open-program soundness: *l must denote something even with no
  // callers in sight.
  auto P = load(R"(
    void f(int *p) {
      int x;
      x = *p;
    }
  )");
  PointsTo PT(*P);
  const VarDecl *Pp = var(*P, "f", "p");
  EXPECT_FALSE(PT.pointsToSet(*Pp).empty());
}

TEST_F(PointsToTest, CallBindsActualsToFormals) {
  auto P = load(R"(
    int *g(int *q) { return q; }
    void f() {
      int x; int *p; int *r;
      p = &x;
      r = g(p);
    }
  )");
  PointsTo PT(*P, Mode::Andersen);
  const VarDecl *X = var(*P, "f", "x");
  const VarDecl *Q = var(*P, "g", "q");
  const VarDecl *R = var(*P, "f", "r");
  EXPECT_TRUE(PT.pointsToSet(*Q).count(PT.varCell(X)));
  EXPECT_TRUE(PT.pointsToSet(*R).count(PT.varCell(X)));
}

TEST_F(PointsToTest, ArrayElementsSummarized) {
  auto P = load(R"(
    void f() {
      int a[4];
      int *p;
      p = &a[0];
    }
  )");
  PointsTo PT(*P);
  const VarDecl *A = var(*P, "f", "a");
  const VarDecl *Pp = var(*P, "f", "p");
  EXPECT_TRUE(PT.pointsToSet(*Pp).count(PT.elemCell(A)));
}

TEST_F(PointsToTest, DasAtLeastAsPreciseAsSteensgaard) {
  const char *Src = R"(
    void f() {
      int x; int y;
      int *p; int *q; int *r;
      p = &x;
      q = &y;
      r = p;
      r = q;
    }
  )";
  auto P = load(Src);
  PointsTo Das(*P, Mode::Das);
  PointsTo Steens(*P, Mode::Steensgaard);
  // In both, r points to x and y. In Steensgaard, p and q are merged
  // with r so each also points to both; in Das, p keeps only x.
  const VarDecl *Pp = var(*P, "f", "p");
  const VarDecl *Y = var(*P, "f", "y");
  EXPECT_FALSE(Das.pointsToSet(*Pp).count(Das.varCell(Y)));
  EXPECT_TRUE(Steens.pointsToSet(*Pp).count(Steens.varCell(Y)));
}

} // namespace
