//===- BddTest.cpp - ROBDD algebra, incl. truth-table oracle ---------------===//

#include "bdd/Bdd.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slam;
using namespace slam::bdd;

namespace {

class BddTest : public ::testing::Test {
protected:
  BddTest() {
    for (int I = 0; I != 5; ++I)
      V.push_back(M.newVar());
  }
  BddManager M;
  std::vector<int> V;
};

TEST_F(BddTest, TerminalIdentities) {
  Node A = M.varNode(V[0]);
  EXPECT_EQ(M.mkAnd(A, BddManager::True), A);
  EXPECT_EQ(M.mkAnd(A, BddManager::False), BddManager::False);
  EXPECT_EQ(M.mkOr(A, BddManager::False), A);
  EXPECT_EQ(M.mkOr(A, BddManager::True), BddManager::True);
  EXPECT_EQ(M.mkNot(M.mkNot(A)), A);
}

TEST_F(BddTest, CanonicityGivesEquality) {
  Node A = M.varNode(V[0]), B = M.varNode(V[1]);
  EXPECT_EQ(M.mkAnd(A, B), M.mkAnd(B, A));
  EXPECT_EQ(M.mkOr(A, B), M.mkNot(M.mkAnd(M.mkNot(A), M.mkNot(B))));
  Node C = M.varNode(V[2]);
  EXPECT_EQ(M.mkAnd(M.mkAnd(A, B), C), M.mkAnd(A, M.mkAnd(B, C)));
}

TEST_F(BddTest, ContradictionAndTautology) {
  Node A = M.varNode(V[0]);
  EXPECT_EQ(M.mkAnd(A, M.mkNot(A)), BddManager::False);
  EXPECT_EQ(M.mkOr(A, M.mkNot(A)), BddManager::True);
  EXPECT_TRUE(M.isTautology(M.mkImplies(A, A)));
}

TEST_F(BddTest, RestrictIsCofactor) {
  Node F = M.mkOr(M.mkAnd(M.varNode(V[0]), M.varNode(V[1])),
                  M.varNode(V[2]));
  EXPECT_EQ(M.restrict(F, V[0], false), M.varNode(V[2]));
  EXPECT_EQ(M.restrict(F, V[0], true),
            M.mkOr(M.varNode(V[1]), M.varNode(V[2])));
  // Restricting a variable not in the support is the identity.
  EXPECT_EQ(M.restrict(F, V[4], true), F);
}

TEST_F(BddTest, Quantification) {
  // exists v1. (v0 && v1) == v0; forall v1. (v0 || v1) == v0.
  Node F = M.mkAnd(M.varNode(V[0]), M.varNode(V[1]));
  EXPECT_EQ(M.exists(F, {V[1]}), M.varNode(V[0]));
  Node G = M.mkOr(M.varNode(V[0]), M.varNode(V[1]));
  EXPECT_EQ(M.forall(G, {V[1]}), M.varNode(V[0]));
  // exists over everything: sat <=> not false.
  EXPECT_EQ(M.exists(F, V), BddManager::True);
}

TEST_F(BddTest, RenameShiftsRails) {
  // Map even "current" vars to odd "shadow" vars: v0->v1, v2->v3.
  Node F = M.mkAnd(M.varNode(V[0]), M.mkNot(M.varNode(V[2])));
  Node R = M.rename(F, {{V[0], V[1]}, {V[2], V[3]}});
  EXPECT_EQ(R, M.mkAnd(M.varNode(V[1]), M.mkNot(M.varNode(V[3]))));
  // Renaming back round-trips.
  EXPECT_EQ(M.rename(R, {{V[1], V[0]}, {V[3], V[2]}}), F);
}

TEST_F(BddTest, SatCount) {
  EXPECT_EQ(M.satCount(BddManager::True, 3), 8.0);
  EXPECT_EQ(M.satCount(BddManager::False, 3), 0.0);
  EXPECT_EQ(M.satCount(M.varNode(V[0]), 3), 4.0);
  Node F = M.mkAnd(M.varNode(V[0]), M.varNode(V[2]));
  EXPECT_EQ(M.satCount(F, 3), 2.0);
  Node G = M.mkOr(M.varNode(V[1]), M.varNode(V[2]));
  EXPECT_EQ(M.satCount(G, 3), 6.0);
}

TEST_F(BddTest, AnySatSatisfies) {
  Node F = M.mkAnd(M.mkOr(M.varNode(V[0]), M.varNode(V[1])),
                   M.mkNot(M.varNode(V[2])));
  auto A = M.anySat(F);
  EXPECT_TRUE(M.eval(F, A));
  EXPECT_TRUE(M.anySat(BddManager::False).empty());
}

TEST_F(BddTest, CubesPartitionTheOnSet) {
  Node F = M.mkOr(M.mkAnd(M.varNode(V[0]), M.varNode(V[1])),
                  M.mkAnd(M.mkNot(M.varNode(V[0])), M.varNode(V[2])));
  double Count = 0;
  M.forEachCube(F, [&](const std::map<int, bool> &Cube) {
    EXPECT_TRUE(M.eval(F, Cube));
    Count += std::pow(2.0, 3 - static_cast<int>(Cube.size()));
  });
  EXPECT_EQ(Count, M.satCount(F, 3));
}

TEST_F(BddTest, CubeBuilder) {
  Node C = M.cube({{V[0], true}, {V[2], false}});
  EXPECT_EQ(C, M.mkAnd(M.varNode(V[0]), M.mkNot(M.varNode(V[2]))));
}

//===----------------------------------------------------------------------===//
// Property test: random 4-variable formulas against a truth-table oracle.
//===----------------------------------------------------------------------===//

struct Rng {
  uint64_t State;
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return static_cast<uint32_t>(State >> 32);
  }
};

/// A formula is evaluated both as a BDD and as a 16-row truth table.
struct RandomFormula {
  Node Bdd;
  uint16_t Table; // Bit i = value under assignment i (v0..v3 = bits).
};

RandomFormula randomFormula(BddManager &M, const std::vector<int> &V,
                            Rng &R, int Depth) {
  static const uint16_t VarTables[4] = {0xAAAA, 0xCCCC, 0xF0F0, 0xFF00};
  if (Depth == 0 || R.next() % 4 == 0) {
    int I = R.next() % 4;
    return {M.varNode(V[I]), VarTables[I]};
  }
  switch (R.next() % 3) {
  case 0: {
    RandomFormula A = randomFormula(M, V, R, Depth - 1);
    return {M.mkNot(A.Bdd), static_cast<uint16_t>(~A.Table)};
  }
  case 1: {
    RandomFormula A = randomFormula(M, V, R, Depth - 1);
    RandomFormula B = randomFormula(M, V, R, Depth - 1);
    return {M.mkAnd(A.Bdd, B.Bdd),
            static_cast<uint16_t>(A.Table & B.Table)};
  }
  default: {
    RandomFormula A = randomFormula(M, V, R, Depth - 1);
    RandomFormula B = randomFormula(M, V, R, Depth - 1);
    return {M.mkOr(A.Bdd, B.Bdd),
            static_cast<uint16_t>(A.Table | B.Table)};
  }
  }
}

class BddOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(BddOracleTest, MatchesTruthTable) {
  BddManager M;
  std::vector<int> V;
  for (int I = 0; I != 4; ++I)
    V.push_back(M.newVar());
  Rng R{static_cast<uint64_t>(GetParam()) * 2654435761u + 1};

  RandomFormula F = randomFormula(M, V, R, 5);
  for (int A = 0; A != 16; ++A) {
    std::map<int, bool> Assign;
    for (int I = 0; I != 4; ++I)
      Assign[V[I]] = (A >> I) & 1;
    bool Expected = (F.Table >> A) & 1;
    EXPECT_EQ(M.eval(F.Bdd, Assign), Expected)
        << "assignment " << A << " seed " << GetParam();
  }
  // satCount agrees with popcount.
  int Pop = 0;
  for (int A = 0; A != 16; ++A)
    Pop += (F.Table >> A) & 1;
  EXPECT_EQ(M.satCount(F.Bdd, 4), static_cast<double>(Pop));

  // Quantification oracle: exists v0 F == F[v0=0] | F[v0=1].
  uint16_t Lo = 0, Hi = 0;
  for (int A = 0; A != 16; ++A) {
    if (!((A >> 0) & 1)) {
      int Bit = (F.Table >> A) & 1;
      int Partner = (F.Table >> (A | 1)) & 1;
      uint16_t Or = Bit | Partner;
      Lo |= Or << A;
      Hi |= Or << (A | 1);
    }
  }
  uint16_t ExTable = Lo | Hi;
  Node Ex = M.exists(F.Bdd, {V[0]});
  for (int A = 0; A != 16; ++A) {
    std::map<int, bool> Assign;
    for (int I = 0; I != 4; ++I)
      Assign[V[I]] = (A >> I) & 1;
    EXPECT_EQ(M.eval(Ex, Assign), static_cast<bool>((ExTable >> A) & 1));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, BddOracleTest,
                         ::testing::Range(0, 25));

} // namespace
