//===- DeepBddTest.cpp - deep-diagram stack-safety regression --------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Regression for the recursion-depth failure class (the skeleton encoder
// hit the same one in PR 1): every BDD operator must survive a diagram
// whose longest path is >= 100k nodes. The recursive implementations
// this replaced overflowed the C stack here; the explicit-worklist
// versions must not.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include <gtest/gtest.h>

using namespace slam::bdd;

namespace {

constexpr int ChainVars = 120000;

/// Conjunction of the positive literals of vars 0..ChainVars-1 — one
/// path of ChainVars nodes. Built bottom-up (descending variable order)
/// so each conjunction step is O(1) instead of re-walking the chain.
Node buildChain(BddManager &M, int Extra = 0) {
  for (int V = 0; V != ChainVars + Extra; ++V)
    M.newVar();
  std::vector<std::pair<int, bool>> Lits;
  for (int V = ChainVars - 1; V >= 0; --V)
    Lits.push_back({V, true});
  return M.cube(Lits);
}

TEST(DeepBdd, OperatorsSurviveHundredThousandNodeChains) {
  BddManager M;
  Node Chain = buildChain(M, /*Extra=*/1);
  ASSERT_EQ(M.nodeCount(Chain), static_cast<size_t>(ChainVars) + 2);

  // Exactly one satisfying assignment.
  EXPECT_DOUBLE_EQ(M.satCount(Chain, ChainVars), 1.0);

  // eval along the full path, and off it.
  std::map<int, bool> AllTrue;
  for (int V = 0; V != ChainVars; ++V)
    AllTrue[V] = true;
  EXPECT_TRUE(M.eval(Chain, AllTrue));
  AllTrue[ChainVars / 2] = false;
  EXPECT_FALSE(M.eval(Chain, AllTrue));

  // forEachCube enumerates the single full-length cube.
  int Cubes = 0;
  M.forEachCube(Chain, [&](const std::map<int, bool> &Cube) {
    ++Cubes;
    EXPECT_EQ(Cube.size(), static_cast<size_t>(ChainVars));
  });
  EXPECT_EQ(Cubes, 1);

  // mkNot drives a full-depth mkIte.
  Node NotChain = M.mkNot(Chain);
  EXPECT_EQ(M.mkOr(Chain, NotChain), BddManager::True);
  EXPECT_EQ(M.mkAnd(Chain, NotChain), BddManager::False);
  EXPECT_EQ(M.mkXor(Chain, NotChain), BddManager::True);

  // restrict deep inside the chain drops exactly one level.
  Node Restricted = M.restrict(Chain, ChainVars - 1, true);
  EXPECT_EQ(M.nodeCount(Restricted), static_cast<size_t>(ChainVars) + 1);
  EXPECT_EQ(M.restrict(Chain, ChainVars - 1, false), BddManager::False);

  // Order-preserving rename of every level by +1.
  std::map<int, int> Shift;
  for (int V = 0; V != ChainVars; ++V)
    Shift[V] = V + 1;
  Node Shifted = M.rename(Chain, Shift);
  EXPECT_EQ(M.nodeCount(Shifted), static_cast<size_t>(ChainVars) + 2);
  std::map<int, int> Back;
  for (int V = 0; V != ChainVars; ++V)
    Back[V + 1] = V;
  EXPECT_EQ(M.rename(Shifted, Back), Chain);

  // Quantifying every variable collapses the cube to True.
  std::vector<int> All;
  for (int V = 0; V != ChainVars; ++V)
    All.push_back(V);
  EXPECT_EQ(M.exists(Chain, All), BddManager::True);
  EXPECT_EQ(M.forall(Chain, All), BddManager::False);
}

TEST(DeepBdd, AndExistsSurvivesDeepOperands) {
  // Fused relational product over two interleaved half-chains whose
  // conjunction is the full 120k-level cube.
  BddManager M;
  for (int V = 0; V != ChainVars; ++V)
    M.newVar();
  std::vector<std::pair<int, bool>> Even, Odd;
  for (int V = ChainVars - 1; V >= 0; --V)
    (V % 2 ? Odd : Even).push_back({V, true});
  Node E = M.cube(Even);
  Node O = M.cube(Odd);

  std::vector<int> All;
  for (int V = 0; V != ChainVars; ++V)
    All.push_back(V);
  EXPECT_EQ(M.andExists(E, O, All), BddManager::True);

  // Quantify only the odd half: the even half-chain remains.
  std::vector<int> OddVars;
  for (int V = 1; V < ChainVars; V += 2)
    OddVars.push_back(V);
  EXPECT_EQ(M.andExists(E, O, OddVars), E);
}

} // namespace
