//===- DifferentialBddTest.cpp - BDD engine vs truth-table oracle ----------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Differential test for the BDD engine: random formulas over 8 variables
// are built twice — once as BDDs, once as 256-bit truth tables — and
// every operator (mkIte, mkAnd/mkOr/mkXor, restrict, exists, forall,
// andExists, satCount, eval) is checked against the brute-force oracle
// on every step. Hash-consing makes BDD equality integer equality, so a
// single wrong cache hit or a broken canonicalization rule shows up as
// a truth-table mismatch.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include <gtest/gtest.h>

#include <array>
#include <random>

using namespace slam::bdd;

namespace {

constexpr int NumVars = 8;
constexpr int NumAssignments = 1 << NumVars; // 256.

/// A complete truth table over NumVars variables: bit i holds the value
/// of the function under the assignment where variable v reads bit v of
/// i. 256 bits = four 64-bit words.
struct Table {
  std::array<uint64_t, 4> W{};

  bool get(int I) const { return (W[I >> 6] >> (I & 63)) & 1; }
  void set(int I, bool B) {
    if (B)
      W[I >> 6] |= uint64_t(1) << (I & 63);
  }

  static Table constant(bool B) {
    Table T;
    if (B)
      T.W = {~0ull, ~0ull, ~0ull, ~0ull};
    return T;
  }

  static Table var(int V) {
    Table T;
    for (int I = 0; I != NumAssignments; ++I)
      T.set(I, (I >> V) & 1);
    return T;
  }

  Table operator&(const Table &O) const {
    Table T;
    for (int I = 0; I != 4; ++I)
      T.W[I] = W[I] & O.W[I];
    return T;
  }
  Table operator|(const Table &O) const {
    Table T;
    for (int I = 0; I != 4; ++I)
      T.W[I] = W[I] | O.W[I];
    return T;
  }
  Table operator^(const Table &O) const {
    Table T;
    for (int I = 0; I != 4; ++I)
      T.W[I] = W[I] ^ O.W[I];
    return T;
  }
  Table operator~() const {
    Table T;
    for (int I = 0; I != 4; ++I)
      T.W[I] = ~W[I];
    return T;
  }

  static Table ite(const Table &F, const Table &G, const Table &H) {
    return (F & G) | (~F & H);
  }

  Table restrict(int Var, bool Value) const {
    Table T;
    for (int I = 0; I != NumAssignments; ++I) {
      int J = Value ? (I | (1 << Var)) : (I & ~(1 << Var));
      T.set(I, get(J));
    }
    return T;
  }

  Table exists(const std::vector<int> &Vars) const {
    Table T = *this;
    for (int V : Vars)
      T = T.restrict(V, false) | T.restrict(V, true);
    return T;
  }

  Table forall(const std::vector<int> &Vars) const {
    Table T = *this;
    for (int V : Vars)
      T = T.restrict(V, false) & T.restrict(V, true);
    return T;
  }

  int popCount() const {
    int N = 0;
    for (int I = 0; I != NumAssignments; ++I)
      N += get(I);
    return N;
  }
};

std::map<int, bool> assignmentOf(int I) {
  std::map<int, bool> A;
  for (int V = 0; V != NumVars; ++V)
    A[V] = (I >> V) & 1;
  return A;
}

/// Checks that BDD \p F computes exactly the oracle table \p T.
void expectMatch(BddManager &M, Node F, const Table &T,
                 const char *What) {
  for (int I = 0; I != NumAssignments; ++I)
    ASSERT_EQ(M.eval(F, assignmentOf(I)), T.get(I))
        << What << " differs at assignment " << I;
  EXPECT_DOUBLE_EQ(M.satCount(F, NumVars), double(T.popCount()))
      << What << " satCount mismatch";
}

TEST(DifferentialBdd, RandomFormulasMatchTruthTables) {
  BddManager M;
  for (int V = 0; V != NumVars; ++V)
    M.newVar();

  std::mt19937 Rng(12345);
  auto Rand = [&Rng](int N) {
    return std::uniform_int_distribution<int>(0, N - 1)(Rng);
  };
  auto randVarSet = [&]() {
    std::vector<int> Vars;
    for (int V = 0; V != NumVars; ++V)
      if (Rand(2))
        Vars.push_back(V);
    return Vars;
  };

  // Pool of (BDD, oracle) pairs, seeded with terminals and literals.
  std::vector<std::pair<Node, Table>> Pool;
  Pool.push_back({BddManager::False, Table::constant(false)});
  Pool.push_back({BddManager::True, Table::constant(true)});
  for (int V = 0; V != NumVars; ++V) {
    Pool.push_back({M.varNode(V), Table::var(V)});
    Pool.push_back({M.nvarNode(V), ~Table::var(V)});
  }

  for (int Step = 0; Step != 600; ++Step) {
    const auto &[FA, TA] = Pool[Rand(static_cast<int>(Pool.size()))];
    const auto &[FB, TB] = Pool[Rand(static_cast<int>(Pool.size()))];
    const auto &[FC, TC] = Pool[Rand(static_cast<int>(Pool.size()))];
    Node R = BddManager::False;
    Table T;
    const char *What = "";
    switch (Rand(9)) {
    case 0:
      R = M.mkIte(FA, FB, FC);
      T = Table::ite(TA, TB, TC);
      What = "mkIte";
      break;
    case 1:
      R = M.mkAnd(FA, FB);
      T = TA & TB;
      What = "mkAnd";
      break;
    case 2:
      R = M.mkOr(FA, FB);
      T = TA | TB;
      What = "mkOr";
      break;
    case 3:
      R = M.mkXor(FA, FB);
      T = TA ^ TB;
      What = "mkXor";
      break;
    case 4:
      R = M.mkNot(FA);
      T = ~TA;
      What = "mkNot";
      break;
    case 5: {
      int Var = Rand(NumVars);
      bool Value = Rand(2);
      R = M.restrict(FA, Var, Value);
      T = TA.restrict(Var, Value);
      What = "restrict";
      break;
    }
    case 6: {
      std::vector<int> Vars = randVarSet();
      R = M.exists(FA, Vars);
      T = TA.exists(Vars);
      What = "exists";
      break;
    }
    case 7: {
      std::vector<int> Vars = randVarSet();
      R = M.forall(FA, Vars);
      T = TA.forall(Vars);
      What = "forall";
      break;
    }
    case 8: {
      std::vector<int> Vars = randVarSet();
      R = M.andExists(FA, FB, Vars);
      T = (TA & TB).exists(Vars);
      What = "andExists";
      break;
    }
    }
    expectMatch(M, R, T, What);

    // The fused operator must agree with its unfused spelling exactly
    // (both are canonical nodes, so equality is integer equality).
    if (Step % 7 == 0) {
      std::vector<int> Vars = randVarSet();
      EXPECT_EQ(M.andExists(FA, FB, Vars),
                M.exists(M.mkAnd(FA, FB), Vars));
    }

    Pool.push_back({R, T});
  }
}

TEST(DifferentialBdd, RenameMatchesShiftedOracle) {
  // Build random functions over vars 0..7 in a 16-var manager, rename
  // every variable up by 8, and check the result against the oracle
  // under correspondingly shifted assignments.
  BddManager M;
  for (int V = 0; V != 2 * NumVars; ++V)
    M.newVar();
  std::mt19937 Rng(99);
  auto Rand = [&Rng](int N) {
    return std::uniform_int_distribution<int>(0, N - 1)(Rng);
  };

  std::vector<std::pair<Node, Table>> Pool;
  for (int V = 0; V != NumVars; ++V)
    Pool.push_back({M.varNode(V), Table::var(V)});
  for (int Step = 0; Step != 60; ++Step) {
    const auto &[FA, TA] = Pool[Rand(static_cast<int>(Pool.size()))];
    const auto &[FB, TB] = Pool[Rand(static_cast<int>(Pool.size()))];
    bool UseAnd = Rand(2) != 0;
    Node R = UseAnd ? M.mkAnd(FA, FB) : M.mkXor(FA, FB);
    Table T = UseAnd ? TA & TB : TA ^ TB;
    Pool.push_back({R, T});

    std::map<int, int> Shift;
    for (int V = 0; V != NumVars; ++V)
      Shift[V] = V + NumVars;
    Node Renamed = M.rename(R, Shift);
    for (int I = 0; I != NumAssignments; ++I) {
      std::map<int, bool> A;
      for (int V = 0; V != NumVars; ++V)
        A[V + NumVars] = (I >> V) & 1;
      ASSERT_EQ(M.eval(Renamed, A), T.get(I));
    }
    // Round trip back down.
    std::map<int, int> Back;
    for (int V = 0; V != NumVars; ++V)
      Back[V + NumVars] = V;
    EXPECT_EQ(M.rename(Renamed, Back), R);
  }
}

TEST(DifferentialBdd, CubeEnumerationCoversOnSet) {
  // forEachCube must partition the on-set: expanding every enumerated
  // cube recovers exactly the oracle's satisfying assignments.
  BddManager M;
  for (int V = 0; V != NumVars; ++V)
    M.newVar();
  std::mt19937 Rng(7);
  auto Rand = [&Rng](int N) {
    return std::uniform_int_distribution<int>(0, N - 1)(Rng);
  };
  for (int Trial = 0; Trial != 20; ++Trial) {
    Node F = BddManager::False;
    Table T;
    for (int K = 0; K != 6; ++K) {
      Node C = BddManager::True;
      Table TC = Table::constant(true);
      for (int V = 0; V != NumVars; ++V) {
        int Mode = Rand(3);
        if (Mode == 0) {
          C = M.mkAnd(C, M.varNode(V));
          TC = TC & Table::var(V);
        } else if (Mode == 1) {
          C = M.mkAnd(C, M.nvarNode(V));
          TC = TC & ~Table::var(V);
        }
      }
      F = M.mkOr(F, C);
      T = T | TC;
    }
    Table Covered;
    M.forEachCube(F, [&](const std::map<int, bool> &Cube) {
      for (int I = 0; I != NumAssignments; ++I) {
        bool In = true;
        for (const auto &[Var, Value] : Cube)
          In &= ((I >> Var) & 1) == Value;
        if (In) {
          EXPECT_FALSE(Covered.get(I)) << "cubes overlap at " << I;
          Covered.set(I, true);
        }
      }
    });
    for (int I = 0; I != NumAssignments; ++I)
      ASSERT_EQ(Covered.get(I), T.get(I));
  }
}

} // namespace
