//===- BebopTest.cpp - Model checking boolean programs ---------------------===//

#include "bebop/Bebop.h"

#include "bp/BPParser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::bebop;
using namespace slam::bp;

namespace {

class BebopTest : public ::testing::Test {
protected:
  std::unique_ptr<BProgram> parse(const std::string &Source) {
    DiagnosticEngine Diags;
    auto P = parseBProgram(Source, Diags);
    EXPECT_TRUE(P != nullptr) << Diags.str();
    EXPECT_TRUE(verifyBProgram(*P, Diags)) << Diags.str();
    return P;
  }

  CheckResult check(const std::string &Source,
                    const std::string &Entry = "main") {
    Prog = parse(Source);
    Checker = std::make_unique<Bebop>(*Prog);
    return Checker->run(Entry);
  }

  std::unique_ptr<BProgram> Prog;
  std::unique_ptr<Bebop> Checker;
};

TEST_F(BebopTest, PassingAssert) {
  auto R = check(R"(
    void main() begin
      decl a;
      a := true;
      assert(a);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
}

TEST_F(BebopTest, FailingAssert) {
  auto R = check(R"(
    void main() begin
      decl a;
      a := false;
      assert(a);
    end
  )");
  EXPECT_TRUE(R.AssertViolated);
  ASSERT_FALSE(R.Trace.empty());
  EXPECT_EQ(R.Trace.back().Op, NodeOp::Assert);
}

TEST_F(BebopTest, UnconstrainedInitialValues) {
  // Initial values are unconstrained, so the assert can fail.
  auto R = check("void main() begin decl a; assert(a); end");
  EXPECT_TRUE(R.AssertViolated);
}

TEST_F(BebopTest, AssumeFilters) {
  auto R = check(R"(
    void main() begin
      decl a;
      assume(a);
      assert(a);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
}

TEST_F(BebopTest, CorrelationsAreTracked) {
  // Bebop computes over sets of bit vectors, capturing correlations.
  auto R = check(R"(
    void main() begin
      decl a, b;
      a := *;
      b := a;
      assert(a == b);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
}

TEST_F(BebopTest, ParallelAssignmentSwaps) {
  auto R = check(R"(
    void main() begin
      decl a, b;
      a := true;
      b := false;
      a, b := b, a;
      assert(!a && b);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
}

TEST_F(BebopTest, BranchesJoin) {
  auto R = check(R"(
    void main() begin
      decl a, b;
      if (*) begin
        a := true; b := true;
      end else begin
        a := false; b := false;
      end
      assert(a == b);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
  // But a is not always true:
  auto R2 = check(R"(
    void main() begin
      decl a;
      if (*) begin a := true; end else begin a := false; end
      assert(a);
    end
  )");
  EXPECT_TRUE(R2.AssertViolated);
}

TEST_F(BebopTest, LoopReachesFixpoint) {
  auto R = check(R"(
    void main() begin
      decl a;
      a := true;
      while (*) begin
        a := !a;
        a := !a;
      end
      assert(a);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
}

TEST_F(BebopTest, ChooseSemantics) {
  // choose(p, n): p forces true, n forces false, neither is nondet.
  auto R = check(R"(
    void main() begin
      decl p, b;
      p := true;
      b := choose(p, !p);
      assert(b);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
  auto R2 = check(R"(
    void main() begin
      decl p, b;
      p := false;
      b := choose(p, false);
      assert(b);
    end
  )");
  EXPECT_TRUE(R2.AssertViolated); // choose(false,false) is unknown.
}

TEST_F(BebopTest, ProcedureSummaries) {
  auto R = check(R"(
    bool<1> negate(x) begin
      return !x;
    end
    void main() begin
      decl a, b;
      a := *;
      b := call negate(a);
      assert(a != b);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
}

TEST_F(BebopTest, MultipleReturnValues) {
  auto R = check(R"(
    bool<2> pair(x) begin
      return x, !x;
    end
    void main() begin
      decl a, t1, t2;
      a := *;
      t1, t2 := call pair(a);
      assert(t1 == a && t2 != a);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
}

TEST_F(BebopTest, GlobalsFlowThroughCalls) {
  auto R = check(R"(
    decl g;
    void set() begin
      g := true;
    end
    void main() begin
      g := false;
      call set();
      assert(g);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
}

TEST_F(BebopTest, SummariesAreContextSensitive) {
  // The identity procedure must not conflate different call sites.
  auto R = check(R"(
    bool<1> id(x) begin
      return x;
    end
    void main() begin
      decl a, b;
      a := call id(true);
      b := call id(false);
      assert(a && !b);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
}

TEST_F(BebopTest, RecursionConverges) {
  // flip calls itself through a star guard; g's parity is preserved
  // two flips at a time.
  auto R = check(R"(
    decl g;
    void flip2() begin
      g := !g;
      g := !g;
      if (*) begin
        call flip2();
      end
    end
    void main() begin
      g := true;
      call flip2();
      assert(g);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
}

TEST_F(BebopTest, AssertInsideCalleeUsesCallingContext) {
  auto R = check(R"(
    void expects(x) begin
      assert(x);
    end
    void main() begin
      call expects(true);
    end
  )");
  EXPECT_FALSE(R.AssertViolated);
  auto R2 = check(R"(
    void expects(x) begin
      assert(x);
    end
    void main() begin
      call expects(false);
    end
  )");
  EXPECT_TRUE(R2.AssertViolated);
  EXPECT_EQ(R2.FailingProc, "expects");
}

TEST_F(BebopTest, EnforcePrunesStates) {
  // Without enforce, x1 and x2 can be simultaneously true and the
  // assert fails; the invariant rules the state out.
  const char *Body = R"(
    void main() begin
      decl {x == 1}, {x == 2};
      %ENFORCE%
      {x == 1} := *;
      {x == 2} := *;
      assume({x == 1});
      assert(!{x == 2});
    end
  )";
  std::string NoEnforce(Body);
  NoEnforce.replace(NoEnforce.find("%ENFORCE%"), 9, "");
  EXPECT_TRUE(check(NoEnforce).AssertViolated);
  std::string WithEnforce(Body);
  WithEnforce.replace(WithEnforce.find("%ENFORCE%"), 9,
                      "enforce !({x == 1} && {x == 2});");
  EXPECT_FALSE(check(WithEnforce).AssertViolated);
}

TEST_F(BebopTest, GotoNondeterminism) {
  auto R = check(R"(
    void main() begin
      decl a;
      a := false;
      goto L1, L2;
      L1: a := true;
      L2: skip;
      assert(a);
    end
  )");
  // Via L2 directly, a stays false.
  EXPECT_TRUE(R.AssertViolated);
}

TEST_F(BebopTest, LabelInvariants) {
  check(R"(
    void main() begin
      decl a, b;
      a := true;
      b := !a;
      L: skip;
    end
  )");
  EXPECT_TRUE(Checker->labelReachable("main", "L"));
  std::string Inv = Checker->invariantAtLabel("main", "L");
  EXPECT_EQ(Inv, "a && !b");
}

TEST_F(BebopTest, UnreachableLabel) {
  check(R"(
    void main() begin
      decl a;
      a := true;
      assume(!a);
      L: skip;
    end
  )");
  EXPECT_FALSE(Checker->labelReachable("main", "L"));
  EXPECT_EQ(Checker->invariantAtLabel("main", "L"), "false");
}

TEST_F(BebopTest, DisjunctiveInvariant) {
  check(R"(
    void main() begin
      decl a, b;
      if (*) begin
        a := true; b := false;
      end else begin
        a := false; b := true;
      end
      L: skip;
    end
  )");
  auto Cubes = Checker->reachableAtLabel("main", "L");
  ASSERT_TRUE(Cubes.has_value());
  // Exactly the two correlated states (as cubes covering them).
  for (const auto &Cube : *Cubes) {
    auto A = Cube.find("a"), B = Cube.find("b");
    ASSERT_TRUE(A != Cube.end() && B != Cube.end());
    EXPECT_NE(A->second, B->second);
  }
}

TEST_F(BebopTest, TraceEndsAtFailingAssert) {
  auto R = check(R"(
    void main() begin
      decl a, b;
      a := true;
      b := false;
      if (a) begin
        b := true;
      end
      assert(!b);
    end
  )");
  ASSERT_TRUE(R.AssertViolated);
  ASSERT_GE(R.Trace.size(), 3u);
  EXPECT_EQ(R.Trace.back().Op, NodeOp::Assert);
  // The trace passes through both assignments to b.
  int AssignsToB = 0;
  for (const TraceStep &S : R.Trace)
    if (S.Op == NodeOp::Assign && S.Stmt &&
        S.Stmt->Targets == std::vector<std::string>{"b"})
      ++AssignsToB;
  EXPECT_EQ(AssignsToB, 2);
}

TEST_F(BebopTest, InterproceduralTrace) {
  auto R = check(R"(
    decl g;
    void setg(v) begin
      g := v;
    end
    void main() begin
      call setg(false);
      assert(g);
    end
  )");
  ASSERT_TRUE(R.AssertViolated);
  // Trace: call setg -> g := v -> (return) -> assert.
  bool SawCall = false, SawAssign = false;
  for (const TraceStep &S : R.Trace) {
    if (S.Op == NodeOp::Call)
      SawCall = true;
    if (S.Op == NodeOp::Assign && S.ProcName == "setg")
      SawAssign = true;
  }
  EXPECT_TRUE(SawCall);
  EXPECT_TRUE(SawAssign);
  EXPECT_EQ(R.Trace.back().Op, NodeOp::Assert);
  EXPECT_EQ(R.Trace.back().ProcName, "main");
}

TEST_F(BebopTest, WhileLoopTraceUnrolls) {
  // Failing state requires one loop iteration.
  auto R = check(R"(
    void main() begin
      decl a;
      a := false;
      while (*) begin
        a := true;
      end
      assert(!a);
    end
  )");
  ASSERT_TRUE(R.AssertViolated);
  EXPECT_EQ(R.Trace.back().Op, NodeOp::Assert);
}

} // namespace
