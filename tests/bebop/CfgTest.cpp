//===- CfgTest.cpp - Boolean-program CFG lowering ---------------------------===//

#include "bebop/Cfg.h"

#include "bp/BPParser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::bebop;
using namespace slam::bp;

namespace {

class CfgTest : public ::testing::Test {
protected:
  std::unique_ptr<BProgram> parse(const std::string &Source) {
    DiagnosticEngine Diags;
    auto P = parseBProgram(Source, Diags);
    EXPECT_TRUE(P != nullptr) << Diags.str();
    EXPECT_TRUE(verifyBProgram(*P, Diags)) << Diags.str();
    return P;
  }

  static int countOp(const ProcCfg &Cfg, NodeOp Op) {
    int N = 0;
    for (int I = 0; I != Cfg.numNodes(); ++I)
      if (Cfg.node(I).Op == Op)
        ++N;
    return N;
  }

  DiagnosticEngine Diags;
};

TEST_F(CfgTest, StraightLine) {
  auto P = parse("void f() begin decl a; a := true; skip; end");
  ProcCfg Cfg(*P->Procs[0], Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(countOp(Cfg, NodeOp::Assign), 1);
  EXPECT_EQ(countOp(Cfg, NodeOp::Entry), 1);
  EXPECT_EQ(countOp(Cfg, NodeOp::Exit), 1);
  // Entry -> assign -> skip -> exit.
  int Cur = Cfg.entry();
  for (int Hops = 0; Hops != 3; ++Hops) {
    ASSERT_EQ(Cfg.node(Cur).Succs.size(), 1u);
    Cur = Cfg.node(Cur).Succs[0];
  }
  EXPECT_EQ(Cur, Cfg.exit());
}

TEST_F(CfgTest, IfForksThroughAssumes) {
  auto P = parse(R"(
    void f() begin
      decl a;
      if (a) begin a := false; end else begin a := true; end
    end
  )");
  ProcCfg Cfg(*P->Procs[0], Diags);
  // Two assume nodes, one negated.
  int Assumes = 0, Negated = 0;
  for (int I = 0; I != Cfg.numNodes(); ++I) {
    if (Cfg.node(I).Op == NodeOp::Assume) {
      ++Assumes;
      Negated += Cfg.node(I).NegateCond;
    }
  }
  EXPECT_EQ(Assumes, 2);
  EXPECT_EQ(Negated, 1);
  EXPECT_EQ(Cfg.node(Cfg.entry()).Succs.size(), 2u);
}

TEST_F(CfgTest, WhileHasBackEdge) {
  auto P = parse("void f() begin decl a; while (a) begin a := *; end end");
  ProcCfg Cfg(*P->Procs[0], Diags);
  // The assign node's successor chain leads back to the loop header.
  int AssignNode = -1;
  for (int I = 0; I != Cfg.numNodes(); ++I)
    if (Cfg.node(I).Op == NodeOp::Assign)
      AssignNode = I;
  ASSERT_GE(AssignNode, 0);
  int Header = Cfg.node(AssignNode).Succs[0];
  // Header forks into enter/leave assumes.
  EXPECT_EQ(Cfg.node(Header).Succs.size(), 2u);
}

TEST_F(CfgTest, BreakAndContinueTargets) {
  auto P = parse(R"(
    void f() begin
      decl a;
      while (*) begin
        if (a) begin break; end
        if (!a) begin continue; end
        a := *;
      end
      skip;
    end
  )");
  ProcCfg Cfg(*P->Procs[0], Diags);
  EXPECT_FALSE(Diags.hasErrors());
  // All nodes reachable from entry (no dangling break/continue).
  std::vector<bool> Seen(Cfg.numNodes());
  std::vector<int> Stack{Cfg.entry()};
  while (!Stack.empty()) {
    int N = Stack.back();
    Stack.pop_back();
    if (Seen[N])
      continue;
    Seen[N] = true;
    for (int S : Cfg.node(N).Succs)
      Stack.push_back(S);
  }
  EXPECT_TRUE(Seen[Cfg.exit()]);
}

TEST_F(CfgTest, GotoAndLabels) {
  auto P = parse(R"(
    void f() begin
      decl a;
      goto L1, L2;
      L1: a := true;
      L2: a := false;
    end
  )");
  ProcCfg Cfg(*P->Procs[0], Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_GE(Cfg.nodeOfLabel("L1"), 0);
  EXPECT_GE(Cfg.nodeOfLabel("L2"), 0);
  EXPECT_EQ(Cfg.nodeOfLabel("nope"), -1);
}

TEST_F(CfgTest, ReturnLinksToExit) {
  auto P = parse("bool<1> f(a) begin return a; end");
  ProcCfg Cfg(*P->Procs[0], Diags);
  int Ret = -1;
  for (int I = 0; I != Cfg.numNodes(); ++I)
    if (Cfg.node(I).Op == NodeOp::Return)
      Ret = I;
  ASSERT_GE(Ret, 0);
  ASSERT_EQ(Cfg.node(Ret).Succs.size(), 1u);
  EXPECT_EQ(Cfg.node(Ret).Succs[0], Cfg.exit());
}

TEST_F(CfgTest, PredsAreInverse) {
  auto P = parse("void f() begin decl a; if (*) begin a := true; end end");
  ProcCfg Cfg(*P->Procs[0], Diags);
  const auto &Preds = Cfg.preds();
  for (int N = 0; N != Cfg.numNodes(); ++N)
    for (int S : Cfg.node(N).Succs)
      EXPECT_NE(std::find(Preds[S].begin(), Preds[S].end(), N),
                Preds[S].end());
}

} // namespace
