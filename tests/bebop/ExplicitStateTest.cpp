//===- ExplicitStateTest.cpp - Bebop vs. explicit enumeration ---------------===//
//
// Property test: random single-procedure boolean programs are checked
// both by Bebop (symbolic, BDD path edges) and by an explicit-state BFS
// over (node, bit-vector) pairs; the "some assert can fail" verdicts
// must coincide. This pins Bebop's transfer semantics — parallel
// assignment, choose/star nondeterminism, assume filtering, branch
// lowering — against an independent, obviously-correct implementation.
//
//===----------------------------------------------------------------------===//

#include "bebop/Bebop.h"
#include "bebop/Cfg.h"
#include "bp/BPParser.h"

#include <gtest/gtest.h>

#include <set>

using namespace slam;
using namespace slam::bebop;
using namespace slam::bp;

namespace {

struct Rng {
  uint64_t State;
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return static_cast<uint32_t>(State >> 32);
  }
  uint32_t range(uint32_t N) { return next() % N; }
};

/// Random boolean expression over b0..b{N-1} (may contain `*`).
std::string randomBExpr(Rng &R, int NumVars, int Depth) {
  if (Depth == 0 || R.range(3) == 0) {
    switch (R.range(5)) {
    case 0:
      return "true";
    case 1:
      return "false";
    case 2:
      return "*";
    default:
      return "b" + std::to_string(R.range(NumVars));
    }
  }
  switch (R.range(4)) {
  case 0:
    return "!" + randomBExpr(R, NumVars, Depth - 1);
  case 1:
    return "(" + randomBExpr(R, NumVars, Depth - 1) + " && " +
           randomBExpr(R, NumVars, Depth - 1) + ")";
  case 2:
    return "(" + randomBExpr(R, NumVars, Depth - 1) + " || " +
           randomBExpr(R, NumVars, Depth - 1) + ")";
  default:
    return "choose(" + randomBExpr(R, NumVars, Depth - 1) + ", " +
           randomBExpr(R, NumVars, Depth - 1) + ")";
  }
}

std::string randomBProgram(Rng &R, int NumVars, int NumStmts) {
  std::string Out = "void main() begin\n  decl ";
  for (int I = 0; I != NumVars; ++I)
    Out += (I ? ", b" : "b") + std::to_string(I);
  Out += ";\n";
  std::function<void(int, int)> Emit = [&](int Count, int Indent) {
    std::string Pad(2 * Indent, ' ');
    for (int I = 0; I != Count; ++I) {
      switch (R.range(6)) {
      case 0:
      case 1:
        Out += Pad + "b" + std::to_string(R.range(NumVars)) + " := " +
               randomBExpr(R, NumVars, 2) + ";\n";
        break;
      case 2:
        Out += Pad + "assume(" + randomBExpr(R, NumVars, 1) + ");\n";
        break;
      case 3: {
        Out += Pad + "if (" + randomBExpr(R, NumVars, 1) + ") begin\n";
        Emit(1, Indent + 1);
        Out += Pad + "end else begin\n";
        Emit(1, Indent + 1);
        Out += Pad + "end\n";
        break;
      }
      case 4:
        if (Indent < 3) {
          Out += Pad + "while (*) begin\n";
          Emit(1, Indent + 1);
          Out += Pad + "  " + "b" + std::to_string(R.range(NumVars)) +
                 " := !" + "b" + std::to_string(R.range(NumVars)) +
                 ";\n";
          Out += Pad + "end\n";
          break;
        }
        [[fallthrough]];
      default:
        Out += Pad + "skip;\n";
        break;
      }
    }
  };
  Emit(NumStmts, 1);
  Out += "  assert(" + randomBExpr(R, NumVars, 1) + ");\n";
  Out += "end\n";
  return Out;
}

/// Kleene-free explicit checker: BFS over (cfg node, bits), splitting
/// on every `*`.
class ExplicitChecker {
public:
  ExplicitChecker(const BProc &Proc, DiagnosticEngine &Diags)
      : Cfg(Proc, Diags) {
    for (size_t I = 0; I != Proc.Locals.size(); ++I)
      VarIndex[Proc.Locals[I]] = static_cast<int>(I);
    NumVars = static_cast<int>(Proc.Locals.size());
  }

  bool anyAssertFails() {
    std::set<std::pair<int, unsigned>> Seen;
    std::vector<std::pair<int, unsigned>> Work;
    for (unsigned Bits = 0; Bits != (1u << NumVars); ++Bits)
      Work.push_back({Cfg.entry(), Bits});
    while (!Work.empty()) {
      auto [Node, Bits] = Work.back();
      Work.pop_back();
      if (!Seen.insert({Node, Bits}).second)
        continue;
      const CfgNode &N = Cfg.node(Node);
      std::vector<unsigned> Outs;
      switch (N.Op) {
      case NodeOp::Entry:
      case NodeOp::Exit:
      case NodeOp::Skip:
      case NodeOp::Return:
        Outs.push_back(Bits);
        break;
      case NodeOp::Assume: {
        for (bool V : evalAll(N.Cond, Bits)) {
          bool Pass = N.NegateCond ? !V : V;
          if (Pass)
            Outs.push_back(Bits);
        }
        break;
      }
      case NodeOp::Assert: {
        for (bool V : evalAll(N.Cond, Bits))
          if (!V)
            return true;
        Outs.push_back(Bits);
        break;
      }
      case NodeOp::Assign: {
        // Parallel assignment; each star splits independently, so
        // enumerate value tuples recursively.
        std::vector<unsigned> States{Bits};
        // Evaluate each RHS over the ORIGINAL bits.
        std::vector<std::vector<bool>> Choices;
        for (const BExpr *E : N.Stmt->Exprs)
          Choices.push_back(evalAll(E, Bits));
        std::vector<unsigned> Results;
        std::function<void(size_t, unsigned)> Go = [&](size_t K,
                                                       unsigned Cur) {
          if (K == N.Stmt->Targets.size()) {
            Results.push_back(Cur);
            return;
          }
          int Var = VarIndex.at(N.Stmt->Targets[K]);
          for (bool V : Choices[K]) {
            unsigned Nxt = (Cur & ~(1u << Var)) |
                           (static_cast<unsigned>(V) << Var);
            Go(K + 1, Nxt);
          }
        };
        Go(0, Bits);
        Outs = std::move(Results);
        break;
      }
      case NodeOp::Call:
        ADD_FAILURE() << "no calls in generated programs";
        break;
      }
      for (int Succ : N.Succs)
        for (unsigned O : Outs)
          Work.push_back({Succ, O});
    }
    return false;
  }

private:
  /// All possible values of a boolean expression given the bits (the
  /// set has two elements when the expression consults `*`).
  std::vector<bool> evalAll(const BExpr *E, unsigned Bits) {
    if (!E)
      return {true};
    switch (E->Kind) {
    case BExprKind::Const:
      return {E->BoolValue};
    case BExprKind::Star:
      return {false, true};
    case BExprKind::VarRef:
      return {(Bits >> VarIndex.at(E->Name)) & 1u ? true : false};
    case BExprKind::Not: {
      std::set<bool> Out;
      for (bool V : evalAll(E->Ops[0], Bits))
        Out.insert(!V);
      return {Out.begin(), Out.end()};
    }
    case BExprKind::And:
    case BExprKind::Or:
    case BExprKind::Eq:
    case BExprKind::Ne: {
      std::set<bool> Out;
      for (bool L : evalAll(E->Ops[0], Bits))
        for (bool R : evalAll(E->Ops[1], Bits)) {
          switch (E->Kind) {
          case BExprKind::And:
            Out.insert(L && R);
            break;
          case BExprKind::Or:
            Out.insert(L || R);
            break;
          case BExprKind::Eq:
            Out.insert(L == R);
            break;
          default:
            Out.insert(L != R);
            break;
          }
        }
      return {Out.begin(), Out.end()};
    }
    case BExprKind::Choose: {
      std::set<bool> Out;
      for (bool Pos : evalAll(E->Ops[0], Bits)) {
        if (Pos) {
          Out.insert(true);
          continue;
        }
        for (bool Neg : evalAll(E->Ops[1], Bits)) {
          if (Neg) {
            Out.insert(false);
          } else {
            Out.insert(false);
            Out.insert(true);
          }
        }
      }
      return {Out.begin(), Out.end()};
    }
    }
    return {true};
  }

  ProcCfg Cfg;
  std::map<std::string, int> VarIndex;
  int NumVars = 0;
};

class BebopVsExplicit : public ::testing::TestWithParam<int> {};

TEST_P(BebopVsExplicit, VerdictsAgree) {
  Rng R{static_cast<uint64_t>(GetParam()) * 0x2545F4914F6CDD1DULL + 17};
  for (int Trial = 0; Trial != 6; ++Trial) {
    int NumVars = 2 + static_cast<int>(R.range(3));
    std::string Source = randomBProgram(R, NumVars, 3 + R.range(4));
    DiagnosticEngine Diags;
    auto P = parseBProgram(Source, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str() << "\n" << Source;
    ASSERT_TRUE(verifyBProgram(*P, Diags)) << Diags.str();

    Bebop Symbolic(*P);
    bool SymbolicFails = Symbolic.run("main").AssertViolated;

    DiagnosticEngine CfgDiags;
    ExplicitChecker Explicit(*P->Procs[0], CfgDiags);
    bool ExplicitFails = Explicit.anyAssertFails();

    EXPECT_EQ(SymbolicFails, ExplicitFails)
        << "disagreement on:\n"
        << Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, BebopVsExplicit, ::testing::Range(0, 25));

} // namespace
