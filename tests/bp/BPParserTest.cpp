//===- BPParserTest.cpp - Round-trips and verification ---------------------===//

#include "bp/BPParser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::bp;

namespace {

const char *ExampleBP = R"(
decl g, {x == 0};

bool<2> bar(prm1, prm2) begin
  decl l1;
  l1 := choose(prm1, !prm1);
  return l1, prm2;
end

void main() begin
  decl {curr == NULL}, t1, t2;
  {curr == NULL} := *;
  while (*) begin
    assume(!{curr == NULL});
    if (*) begin
      L: skip;
    end else begin
      {curr == NULL} := choose(g, !g);
      break;
    end
  end
  t1, t2 := call bar(g, {x == 0});
  call bar(true, false);
  assume({curr == NULL});
  assert(!t1 || t2);
  goto L2, L3;
  L2: skip;
  L3: return;
end
)";

class BPParserTest : public ::testing::Test {
protected:
  std::unique_ptr<BProgram> parse(const std::string &Source) {
    DiagnosticEngine Diags;
    auto P = parseBProgram(Source, Diags);
    EXPECT_TRUE(P != nullptr) << Diags.str();
    return P;
  }

  void expectInvalid(const std::string &Source, const std::string &Needle) {
    DiagnosticEngine Diags;
    auto P = parseBProgram(Source, Diags);
    if (P) {
      EXPECT_FALSE(verifyBProgram(*P, Diags));
    }
    EXPECT_NE(Diags.str().find(Needle), std::string::npos) << Diags.str();
  }
};

TEST_F(BPParserTest, ParsesExample) {
  auto P = parse(ExampleBP);
  ASSERT_EQ(P->Procs.size(), 2u);
  EXPECT_EQ(P->Procs[0]->Name, "bar");
  EXPECT_EQ(P->Procs[0]->NumReturns, 2u);
  EXPECT_EQ(P->Procs[1]->NumReturns, 0u);
  ASSERT_EQ(P->Globals.size(), 2u);
  EXPECT_EQ(P->Globals[1], "x == 0");
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyBProgram(*P, Diags)) << Diags.str();
}

TEST_F(BPParserTest, RoundTripThroughPrinter) {
  auto P = parse(ExampleBP);
  std::string Once = P->str();
  auto P2 = parse(Once);
  EXPECT_EQ(Once, P2->str());
}

TEST_F(BPParserTest, ParsesEnforce) {
  auto P = parse(R"(
    void f() begin
      decl {x == 1}, {x == 2};
      enforce !({x == 1} && {x == 2});
      skip;
    end
  )");
  ASSERT_TRUE(P->Procs[0]->Enforce != nullptr);
  EXPECT_EQ(P->Procs[0]->Enforce->str(), "!({x == 1} && {x == 2})");
}

TEST_F(BPParserTest, VerifyCatchesErrors) {
  expectInvalid("void f() begin nope := true; end", "undeclared");
  expectInvalid("void f() begin goto missing; end", "undefined label");
  expectInvalid("void f() begin return true; end", "return arity");
  expectInvalid("void f() begin break; end", "outside of a loop");
  expectInvalid("void f() begin call g(); end", "unknown procedure");
  expectInvalid(R"(
    bool<1> g(a) begin return a; end
    void f() begin decl t; t := call g(); end
  )",
                "wrong number of arguments");
  expectInvalid("void f() begin decl a; a, a := true; end",
                "arity mismatch");
}

TEST_F(BPParserTest, SyntaxErrors) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseBProgram("void f() begin skip end", Diags), nullptr);
  Diags.clear();
  EXPECT_EQ(parseBProgram("bool f() begin end", Diags), nullptr);
  Diags.clear();
  EXPECT_EQ(parseBProgram("void f() begin x := ; end", Diags), nullptr);
}

} // namespace
