//===- BPPrinterTest.cpp - Boolean-program AST and printing ----------------===//

#include "bp/BPAst.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::bp;

namespace {

TEST(BPPrinter, ExpressionFolding) {
  BProgram P;
  const BExpr *T = P.constant(true);
  const BExpr *F = P.constant(false);
  const BExpr *V = P.varRef("b");
  EXPECT_EQ(P.andE(T, V), V);
  EXPECT_EQ(P.andE(F, V)->Kind, BExprKind::Const);
  EXPECT_EQ(P.orE(F, V), V);
  EXPECT_TRUE(P.orE(T, V)->BoolValue);
  EXPECT_EQ(P.notE(P.notE(V)), V);
  EXPECT_EQ(P.notE(P.star())->Kind, BExprKind::Star);
}

TEST(BPPrinter, ChooseFolding) {
  BProgram P;
  // choose(true, _) = true; choose(false, true) = false;
  // choose(false, false) = *.
  EXPECT_TRUE(P.choose(P.constant(true), P.varRef("x"))->BoolValue);
  const BExpr *CF = P.choose(P.constant(false), P.constant(true));
  EXPECT_EQ(CF->Kind, BExprKind::Const);
  EXPECT_FALSE(CF->BoolValue);
  EXPECT_EQ(P.choose(P.constant(false), P.constant(false))->Kind,
            BExprKind::Star);
  EXPECT_EQ(P.choose(P.varRef("p"), P.varRef("n"))->Kind,
            BExprKind::Choose);
}

TEST(BPPrinter, PredicateVariableNamesUseBraces) {
  BProgram P;
  const BExpr *V = P.varRef("curr == NULL");
  EXPECT_EQ(V->str(), "{curr == NULL}");
  EXPECT_EQ(P.varRef("plain")->str(), "plain");
  EXPECT_EQ(P.notE(V)->str(), "!{curr == NULL}");
}

TEST(BPPrinter, StatementForms) {
  BProgram P;
  BStmt *Assign = P.makeStmt(BStmtKind::Assign);
  Assign->Targets = {"prev == NULL", "prev->val > v"};
  Assign->Exprs = {P.varRef("curr == NULL"),
                   P.choose(P.varRef("a"), P.varRef("b"))};
  EXPECT_EQ(printBStmt(*Assign),
            "{prev == NULL}, {prev->val > v} := {curr == NULL}, "
            "choose(a, b);\n");

  BStmt *Assume = P.makeStmt(BStmtKind::Assume);
  Assume->Cond = P.notE(P.varRef("curr == NULL"));
  EXPECT_EQ(printBStmt(*Assume), "assume(!{curr == NULL});\n");

  BStmt *Call = P.makeStmt(BStmtKind::Call);
  Call->Targets = {"t1", "t2"};
  Call->Callee = "bar";
  Call->Exprs = {P.varRef("prm1"), P.varRef("prm2")};
  EXPECT_EQ(printBStmt(*Call), "t1, t2 := call bar(prm1, prm2);\n");

  BStmt *Goto = P.makeStmt(BStmtKind::Goto);
  Goto->Labels = {"L1", "L2"};
  EXPECT_EQ(printBStmt(*Goto), "goto L1, L2;\n");
}

TEST(BPPrinter, WholeProgram) {
  BProgram P;
  P.Globals = {"g"};
  BProc *Proc = P.makeProc();
  Proc->Name = "partition";
  Proc->NumReturns = 0;
  Proc->Locals = {"curr == NULL"};
  Proc->Body = P.makeStmt(BStmtKind::Block);
  BStmt *W = P.makeStmt(BStmtKind::While);
  W->Cond = P.star();
  W->Body = P.makeStmt(BStmtKind::Block);
  BStmt *A = P.makeStmt(BStmtKind::Assume);
  A->Cond = P.notE(P.varRef("curr == NULL"));
  W->Body->Stmts.push_back(A);
  Proc->Body->Stmts.push_back(W);
  P.Procs.push_back(Proc);

  std::string Text = P.str();
  EXPECT_NE(Text.find("decl g;"), std::string::npos);
  EXPECT_NE(Text.find("void partition() begin"), std::string::npos);
  EXPECT_NE(Text.find("decl {curr == NULL};"), std::string::npos);
  EXPECT_NE(Text.find("while (*) begin"), std::string::npos);
  EXPECT_NE(Text.find("assume(!{curr == NULL});"), std::string::npos);
}

} // namespace
