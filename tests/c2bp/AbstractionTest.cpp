//===- AbstractionTest.cpp - C2bp against the paper's figures ---------------===//

#include "c2bp/C2bp.h"

#include "bebop/Bebop.h"
#include "bp/BPParser.h"
#include "cfront/Normalize.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::c2bp;
using namespace slam::cfront;

namespace {

const char *PartitionSource = R"(
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev, newl, nextcurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextcurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL)
        prev->next = nextcurr;
      if (curr == *l)
        *l = nextcurr;
      curr->next = newl;
      L: newl = curr;
    } else {
      prev = curr;
    }
    curr = nextcurr;
  }
  return newl;
}
)";

const char *PartitionPreds = R"(
partition:
  curr == NULL, prev == NULL,
  curr->val > v, prev->val > v
)";

class AbstractionTest : public ::testing::Test {
protected:
  std::unique_ptr<bp::BProgram> abstract(const std::string &Source,
                                         const std::string &PredText,
                                         C2bpOptions Options = {}) {
    DiagnosticEngine Diags;
    Prog = frontend(Source, Diags);
    EXPECT_TRUE(Prog != nullptr) << Diags.str();
    if (!Prog)
      return nullptr;
    auto PS = parsePredicateFile(Ctx, PredText, Diags);
    EXPECT_TRUE(PS.has_value()) << Diags.str();
    if (!PS)
      return nullptr;
    Preds = *PS;
    auto BP = abstractProgram(*Prog, Preds, Ctx, Diags, Options, &Stats);
    EXPECT_TRUE(BP != nullptr) << Diags.str();
    // Every abstraction we emit must be a well-formed boolean program.
    if (BP) {
      DiagnosticEngine VDiags;
      EXPECT_TRUE(bp::verifyBProgram(*BP, VDiags)) << VDiags.str() << "\n"
                                                   << BP->str();
    }
    return BP;
  }

  logic::LogicContext Ctx;
  StatsRegistry Stats;
  std::unique_ptr<Program> Prog;
  PredicateSet Preds;
};

TEST_F(AbstractionTest, Figure1PartitionStatements) {
  auto BP = abstract(PartitionSource, PartitionPreds);
  ASSERT_TRUE(BP);
  std::string Text = BP->str();

  // prev = NULL: {prev == NULL} := true and {prev->val > v} := *.
  EXPECT_NE(Text.find("{prev == NULL}, {prev->val > v} := true, *;"),
            std::string::npos)
      << Text;
  // prev = curr: both prev predicates take the curr predicates' values.
  EXPECT_NE(Text.find("{prev == NULL}, {prev->val > v} := "
                      "{curr == NULL}, {curr->val > v};"),
            std::string::npos)
      << Text;
  // newl = NULL affects no predicate: skip.
  EXPECT_NE(Text.find("skip;"), std::string::npos) << Text;
  // The while loop: while (*) with assume(!{curr == NULL}) inside and
  // assume({curr == NULL}) after.
  EXPECT_NE(Text.find("while (*) begin"), std::string::npos) << Text;
  EXPECT_NE(Text.find("assume(!{curr == NULL});"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("assume({curr == NULL});"), std::string::npos)
      << Text;
  // The inner conditional keeps the guard via assumes.
  EXPECT_NE(Text.find("assume({curr->val > v});"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("assume(!{curr->val > v});"), std::string::npos)
      << Text;
  // curr = nextcurr invalidates both curr predicates (no nextcurr info).
  EXPECT_NE(Text.find("{curr == NULL}, {curr->val > v} := *, *;"),
            std::string::npos)
      << Text;
  // Label L survives.
  EXPECT_NE(Text.find("L:"), std::string::npos) << Text;
}

TEST_F(AbstractionTest, Figure1HeapStoresDontTouchPredicates) {
  auto BP = abstract(PartitionSource, PartitionPreds);
  ASSERT_TRUE(BP);
  std::string Text = BP->str();
  // prev->next = nextcurr, *l = nextcurr and curr->next = newl cannot
  // affect any of the four predicates (field disjointness + the
  // locals are not address-taken): each becomes skip. Together with
  // newl = NULL and nextcurr = curr->next that is at least 5 skips.
  size_t Skips = 0, Pos = 0;
  while ((Pos = Text.find("skip;", Pos)) != std::string::npos) {
    ++Skips;
    Pos += 5;
  }
  EXPECT_GE(Skips, 5u) << Text;
}

TEST_F(AbstractionTest, Section22InvariantViaBebop) {
  auto BP = abstract(PartitionSource, PartitionPreds);
  ASSERT_TRUE(BP);
  bebop::Bebop Checker(*BP);
  auto R = Checker.run("partition");
  EXPECT_FALSE(R.AssertViolated);
  ASSERT_TRUE(Checker.labelReachable("partition", "L"));

  // The paper's invariant at L:
  //   (curr != NULL) && (curr->val > v) &&
  //   ((prev->val <= v) || (prev == NULL)).
  auto Cubes = Checker.reachableAtLabel("partition", "L");
  ASSERT_TRUE(Cubes.has_value());
  ASSERT_FALSE(Cubes->empty());
  for (const auto &Cube : *Cubes) {
    auto Get = [&Cube](const std::string &Name) {
      auto It = Cube.find(Name);
      return It == Cube.end() ? std::optional<bool>()
                              : std::optional<bool>(It->second);
    };
    EXPECT_EQ(Get("curr == NULL"), std::optional<bool>(false));
    EXPECT_EQ(Get("curr->val > v"), std::optional<bool>(true));
    // !(prev->val > v) || prev == NULL must hold in each cube.
    auto PrevVal = Get("prev->val > v");
    auto PrevNull = Get("prev == NULL");
    bool Disjunct = (PrevVal && !*PrevVal) || (PrevNull && *PrevNull);
    EXPECT_TRUE(Disjunct) << "cube violates the paper's invariant";
  }
}

TEST_F(AbstractionTest, Figure2AssignmentThroughPointer) {
  const char *Source = R"(
    int bar(int *q, int y) {
      int l1, l2;
      if (*q > y) { *q = y; }
      l1 = y;
      l2 = y - 1;
      return l1;
    }
    void foo(int *p, int x) {
      int r;
      if (*p <= x) {
        *p = x;
      } else {
        *p = *p + x;
      }
      r = bar(p, x);
    }
  )";
  const char *PredText = R"(
bar:
  y >= 0, *q <= y, y == l1, y > l2
foo:
  *p <= 0, x == 0, r == 0
)";
  auto BP = abstract(Source, PredText);
  ASSERT_TRUE(BP);
  std::string Text = BP->str();

  // Section 4.3's worked example: *p = *p + x gives
  //   {*p<=0} := choose({*p<=0} && {x==0}, !{*p<=0} && {x==0}).
  EXPECT_NE(
      Text.find("{*p <= 0} := choose({*p <= 0} && {x == 0}, "
                "!{*p <= 0} && {x == 0});"),
      std::string::npos)
      << Text;

  // Section 4.4: the conditional's assumes mention the implication
  // structure (x == 0 rules out one side).
  EXPECT_NE(Text.find("assume(!(!{*p <= 0} && {x == 0}));"),
            std::string::npos)
      << Text;

  // Section 4.5.3: the call passes choose(...) actuals and receives two
  // return predicates into temps, then rebuilds r == 0 and *p <= 0.
  EXPECT_NE(Text.find(":= call bar("), std::string::npos) << Text;
  EXPECT_NE(Text.find("choose({*p <= 0} && {x == 0}, !{*p <= 0} && "
                      "{x == 0})"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("choose({x == 0}, false)"), std::string::npos)
      << Text;
  // bar' has two return values.
  EXPECT_NE(Text.find("bool<2> bar("), std::string::npos) << Text;
}

TEST_F(AbstractionTest, PaperSection41AssignmentExample) {
  // x = x + 1 over E = {x < 5, x == 2}:
  //   {x<5} := choose({x==2}, !{x<5});  {x==2} := choose(false, ...).
  auto BP = abstract("void f() { int x; x = x + 1; }",
                     "f:\n x < 5, x == 2\n");
  ASSERT_TRUE(BP);
  std::string Text = BP->str();
  EXPECT_NE(Text.find("choose({x == 2}, !{x < 5})"), std::string::npos)
      << Text;
}

TEST_F(AbstractionTest, EnforceGeneratedForExclusivePredicates) {
  auto BP = abstract("void f(int x) { x = 1; }", "f:\n x == 1, x == 2\n");
  ASSERT_TRUE(BP);
  std::string Text = BP->str();
  EXPECT_NE(Text.find("enforce !({x == 1} && {x == 2});"),
            std::string::npos)
      << Text;
  // x = 1 sets the predicates deterministically.
  EXPECT_NE(Text.find("{x == 1}, {x == 2} := true, false;"),
            std::string::npos)
      << Text;

  C2bpOptions NoEnforce;
  NoEnforce.UseEnforce = false;
  auto BP2 = abstract("void f(int x) { x = 1; }",
                      "f:\n x == 1, x == 2\n", NoEnforce);
  EXPECT_EQ(BP2->str().find("enforce"), std::string::npos);
}

TEST_F(AbstractionTest, ExternCallsHavocAffectedPredicates) {
  auto BP = abstract(R"(
    int nondet();
    void f() {
      int y;
      y = 0;
      y = nondet();
    }
  )",
                     "f:\n y == 0\n");
  ASSERT_TRUE(BP);
  std::string Text = BP->str();
  EXPECT_NE(Text.find("{y == 0} := *;"), std::string::npos) << Text;
}

TEST_F(AbstractionTest, AssertBecomesAbstractAssert) {
  auto BP = abstract("void f(int x) { assert(x >= 0); }",
                     "f:\n x >= 0\n");
  ASSERT_TRUE(BP);
  EXPECT_NE(BP->str().find("assert({x >= 0});"), std::string::npos)
      << BP->str();
}

TEST_F(AbstractionTest, GlobalPredicatesDeclaredGlobally) {
  auto BP = abstract(R"(
    int lock;
    void acquire() { lock = 1; }
    void release() { lock = 0; }
  )",
                     "global:\n lock == 1\n");
  ASSERT_TRUE(BP);
  std::string Text = BP->str();
  EXPECT_NE(Text.find("decl {lock == 1};"), std::string::npos) << Text;
  EXPECT_NE(Text.find("{lock == 1} := true;"), std::string::npos) << Text;
  EXPECT_NE(Text.find("{lock == 1} := false;"), std::string::npos)
      << Text;
}

TEST_F(AbstractionTest, BreakLoopUsesRobustForm) {
  auto BP = abstract(R"(
    void f(int x) {
      while (x < 10) {
        if (x == 5)
          break;
        x = x + 1;
      }
    }
  )",
                     "f:\n x < 10, x == 5\n");
  ASSERT_TRUE(BP);
  std::string Text = BP->str();
  EXPECT_NE(Text.find("break;"), std::string::npos) << Text;
  // No trailing assume directly after `end` claiming !(x<10): the exit
  // assume lives inside the loop in the robust form.
  EXPECT_NE(Text.find("assume(!{x < 10});"), std::string::npos) << Text;
}

TEST_F(AbstractionTest, RoundTripsThroughBPParser) {
  auto BP = abstract(PartitionSource, PartitionPreds);
  ASSERT_TRUE(BP);
  DiagnosticEngine Diags;
  auto Re = bp::parseBProgram(BP->str(), Diags);
  ASSERT_TRUE(Re != nullptr) << Diags.str();
  EXPECT_EQ(Re->str(), BP->str());
}

TEST_F(AbstractionTest, OutputIsDeterministic) {
  // Two independent abstractions (fresh contexts, fresh provers) must
  // print byte-identical boolean programs: no pointer-ordering or
  // hash-iteration nondeterminism may leak into results.
  auto Once = [&]() {
    DiagnosticEngine Diags;
    logic::LogicContext LocalCtx;
    auto Prog2 = frontend(PartitionSource, Diags);
    auto PS = parsePredicateFile(LocalCtx, PartitionPreds, Diags);
    auto BP = abstractProgram(*Prog2, *PS, LocalCtx, Diags);
    return BP->str();
  };
  EXPECT_EQ(Once(), Once());
}

TEST_F(AbstractionTest, StatsReportProverCalls) {
  abstract(PartitionSource, PartitionPreds);
  EXPECT_GT(Stats.get("c2bp.prover_calls"), 0u);
  EXPECT_EQ(Stats.get("c2bp.predicates"), 4u);
}

} // namespace
