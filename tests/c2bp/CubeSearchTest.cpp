//===- CubeSearchTest.cpp - F_V / G_V (Section 4.1, 5.2) --------------------===//

#include "c2bp/CubeSearch.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::c2bp;
using logic::ExprRef;

namespace {

class CubeSearchTest : public ::testing::Test {
protected:
  CubeSearchTest() : P(Ctx) {}

  ExprRef parse(const std::string &Text) {
    DiagnosticEngine Diags;
    ExprRef E = logic::parseExpr(Ctx, Text, Diags);
    EXPECT_TRUE(E != nullptr) << Diags.str();
    return E;
  }

  std::vector<ExprRef> preds(const std::vector<std::string> &Texts) {
    std::vector<ExprRef> Out;
    for (const std::string &T : Texts)
      Out.push_back(parse(T));
    return Out;
  }

  CubeSearch make(CubeSearchOptions Options = {}) {
    return CubeSearch(Ctx, P, Oracle, Options, nullptr);
  }

  logic::LogicContext Ctx;
  prover::Prover P;
  logic::ShapeAliasOracle Oracle;
};

TEST_F(CubeSearchTest, PaperExampleStrengthening) {
  // E = {x < 5, x == 2}: E(F_V(x < 4)) = (x == 2).
  CubeSearch CS = make();
  auto V = preds({"x < 5", "x == 2"});
  Dnf D = CS.findF(V, parse("x < 4"));
  ASSERT_EQ(D.size(), 1u);
  ASSERT_EQ(D[0].size(), 1u);
  EXPECT_EQ(D[0][0].Var, 1);
  EXPECT_TRUE(D[0][0].Positive);
  EXPECT_EQ(CS.concretizeF(V, parse("x < 4")), parse("x == 2"));
}

TEST_F(CubeSearchTest, TrueYieldsEmptyCube) {
  CubeSearch CS = make();
  Dnf D = CS.findF(preds({"x < 5"}), Ctx.trueE());
  ASSERT_EQ(D.size(), 1u);
  EXPECT_TRUE(D[0].empty());
}

TEST_F(CubeSearchTest, NoImplicantGivesEmptyDnf) {
  CubeSearch CS = make();
  // Nothing about y follows from predicates about x.
  Dnf D = CS.findF(preds({"x < 5"}), parse("y > 0"));
  EXPECT_TRUE(D.empty());
  EXPECT_TRUE(CS.concretizeF(preds({"x < 5"}), parse("y > 0"))->isFalse());
}

TEST_F(CubeSearchTest, ConjunctionNeedsLongerCube) {
  // Figure 2: F(*p + x <= 0) over {*p <= 0, x == 0, r == 0} is the
  // two-literal cube {*p <= 0} && {x == 0}.
  CubeSearch CS = make();
  auto V = preds({"*p <= 0", "x == 0", "r == 0"});
  Dnf D = CS.findF(V, parse("*p + x <= 0"));
  ASSERT_EQ(D.size(), 1u);
  ASSERT_EQ(D[0].size(), 2u);
  EXPECT_EQ(D[0][0].Var, 0);
  EXPECT_TRUE(D[0][0].Positive);
  EXPECT_EQ(D[0][1].Var, 1);
  EXPECT_TRUE(D[0][1].Positive);
  // And the negative side: !(*p <= 0) && x == 0.
  Dnf DN = CS.findF(V, parse("!(*p + x <= 0)"));
  ASSERT_EQ(DN.size(), 1u);
  ASSERT_EQ(DN[0].size(), 2u);
  EXPECT_FALSE(DN[0][0].Positive);
  EXPECT_TRUE(DN[0][1].Positive);
}

TEST_F(CubeSearchTest, PrimeImplicantsOnly) {
  // phi = x < 5 with V = {x < 5, x == 2}: the prime implicant {x<5}
  // subsumes {x<5, x==2}.
  CubeSearch CS = make();
  auto V = preds({"x < 5", "x == 2"});
  Dnf D = CS.findF(V, parse("x < 5"));
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0].size(), 1u);
}

TEST_F(CubeSearchTest, DisjunctionOfImplicants) {
  // Both x == 1 and x == 2 imply x >= 1 (with x <= 9 irrelevant).
  CubeSearchOptions O;
  O.SyntacticFastPaths = false;
  CubeSearch CS = make(O);
  auto V = preds({"x == 1", "x == 2", "y == 7"});
  Dnf D = CS.findF(V, parse("x >= 1"));
  // Expect at least the two positive singleton cubes.
  int Singles = 0;
  for (const Cube &C : D)
    if (C.size() == 1 && C[0].Positive && C[0].Var <= 1)
      ++Singles;
  EXPECT_EQ(Singles, 2);
}

TEST_F(CubeSearchTest, FalseFindsContradictions) {
  // The enforce computation: mutually exclusive predicates.
  CubeSearch CS = make();
  auto V = preds({"x == 1", "x == 2"});
  Dnf D = CS.findContradictions(V);
  EXPECT_TRUE(CS.findF(V, Ctx.falseE()).empty());
  ASSERT_EQ(D.size(), 1u);
  ASSERT_EQ(D[0].size(), 2u);
  EXPECT_TRUE(D[0][0].Positive);
  EXPECT_TRUE(D[0][1].Positive);
}

TEST_F(CubeSearchTest, MaxCubeLengthTrades) {
  CubeSearchOptions Short;
  Short.MaxCubeLength = 1;
  CubeSearch CS = make(Short);
  auto V = preds({"*p <= 0", "x == 0"});
  // Needs a 2-cube; with k=1 nothing is found (precision loss).
  EXPECT_TRUE(CS.findF(V, parse("*p + x <= 0")).empty());
  CubeSearch Full = make();
  EXPECT_FALSE(Full.findF(V, parse("*p + x <= 0")).empty());
}

TEST_F(CubeSearchTest, ConeOfInfluenceSavesQueries) {
  auto V = preds({"x < 5", "x == 2", "a == 1", "b == 2", "c == 3"});
  CubeSearchOptions NoCone;
  NoCone.ConeOfInfluence = false;
  NoCone.SyntacticFastPaths = false;
  NoCone.CacheResults = false;
  CubeSearch CS1 = make(NoCone);
  CS1.findF(V, parse("x < 4"));
  uint64_t Without = CS1.cubesChecked();

  CubeSearchOptions Cone;
  Cone.SyntacticFastPaths = false;
  Cone.CacheResults = false;
  CubeSearch CS2 = make(Cone);
  Dnf D = CS2.findF(V, parse("x < 4"));
  uint64_t With = CS2.cubesChecked();
  EXPECT_LT(With, Without);
  // Same result.
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0][0].Var, 1);
}

TEST_F(CubeSearchTest, SyntacticFastPathNeedsNoProver) {
  auto V = preds({"x < 5", "x == 2"});
  CubeSearch CS = make();
  Dnf D = CS.findF(V, parse("x == 2"));
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0][0].Var, 1);
  EXPECT_EQ(CS.cubesChecked(), 0u);
  // Negation fast path.
  Dnf DN = CS.findF(V, parse("x != 2"));
  ASSERT_EQ(DN.size(), 1u);
  EXPECT_FALSE(DN[0][0].Positive);
  EXPECT_EQ(CS.cubesChecked(), 0u);
}

TEST_F(CubeSearchTest, CachingAvoidsRecomputation) {
  auto V = preds({"x < 5", "x == 2"});
  CubeSearchOptions O;
  O.SyntacticFastPaths = false;
  CubeSearch CS = make(O);
  CS.findF(V, parse("x < 4"));
  uint64_t Once = CS.cubesChecked();
  CS.findF(V, parse("x < 4"));
  EXPECT_EQ(CS.cubesChecked(), Once);
}

TEST_F(CubeSearchTest, DistributionThroughAnd) {
  CubeSearchOptions O;
  O.DistributeF = true;
  CubeSearch CS = make(O);
  auto V = preds({"x == 0", "y == 0"});
  Dnf D = CS.findF(V, parse("x <= 0 && y <= 0"));
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0].size(), 2u);
}

TEST_F(CubeSearchTest, GViaConcretization) {
  // G_V(phi) = !E(F_V(!phi)): with V = {x < 5}, G(x < 7) is true
  // (nothing over V implies x >= 7), while G(x < 5) is {x < 5}.
  CubeSearch CS = make();
  auto V = preds({"x < 5"});
  EXPECT_TRUE(CS.concretizeF(V, parse("!(x < 7)"))->isFalse());
  EXPECT_EQ(CS.concretizeF(V, parse("x < 5")), parse("x < 5"));
}

TEST(CubeSearchDeterminism, IdenticalDnfsAcrossInstancesAndContexts) {
  // Regression: the result cache used to key on raw ExprRef pointers,
  // so its ordering (and with it any behavior derived from iteration)
  // depended on allocation addresses. Keys are now stable hash-consed
  // ids. Run the same query battery in two contexts whose arenas are
  // skewed so equal predicates get different ids and addresses, and
  // demand literally identical DNFs.
  auto RunBattery = [](int Skew) {
    logic::LogicContext Ctx;
    DiagnosticEngine Diags;
    for (int I = 0; I != Skew; ++I)
      (void)logic::parseExpr(Ctx, "skew" + std::to_string(I) + " == 0",
                             Diags);
    prover::Prover P(Ctx);
    logic::ShapeAliasOracle Oracle;
    CubeSearchOptions O;
    O.SyntacticFastPaths = false; // Route everything through the cache.
    CubeSearch CS(Ctx, P, Oracle, O, nullptr);
    std::vector<ExprRef> V;
    for (const char *T : {"x < 5", "x == 2", "*p <= 0", "x == 0", "y == 7"})
      V.push_back(logic::parseExpr(Ctx, T, Diags));
    std::vector<Dnf> Out;
    for (const char *Q :
         {"x < 4", "*p + x <= 0", "x >= 1", "!(x < 5)", "x < 4"})
      Out.push_back(CS.findF(V, logic::parseExpr(Ctx, Q, Diags)));
    Out.push_back(CS.findContradictions(V));
    return Out;
  };

  std::vector<Dnf> A = RunBattery(0);
  std::vector<Dnf> B = RunBattery(137);
  ASSERT_EQ(A.size(), B.size());
  for (size_t Q = 0; Q != A.size(); ++Q) {
    ASSERT_EQ(A[Q].size(), B[Q].size()) << "query " << Q;
    for (size_t C = 0; C != A[Q].size(); ++C) {
      ASSERT_EQ(A[Q][C].size(), B[Q][C].size()) << "query " << Q;
      for (size_t L = 0; L != A[Q][C].size(); ++L) {
        EXPECT_EQ(A[Q][C][L].Var, B[Q][C][L].Var) << "query " << Q;
        EXPECT_EQ(A[Q][C][L].Positive, B[Q][C][L].Positive)
            << "query " << Q;
      }
    }
  }
}

// Property sweep: for every found implicant cube c, the prover agrees
// E(c) => phi, across a family of bound predicates.
class CubeSoundness : public CubeSearchTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(CubeSoundness, ImplicantsReallyImply) {
  int K = GetParam();
  auto V = preds({"x < " + std::to_string(K), "x == " + std::to_string(K - 2),
                  "x > " + std::to_string(K + 3)});
  ExprRef Phi = parse("x < " + std::to_string(K + 1));
  CubeSearch CS = make();
  for (const Cube &C : CS.findF(V, Phi)) {
    ExprRef EC = CS.concretize(V, C);
    EXPECT_EQ(P.implies(EC, Phi), prover::Validity::Valid)
        << EC->str() << " => " << Phi->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, CubeSoundness,
                         ::testing::Values(-3, 0, 2, 7, 50));

} // namespace
