//===- ParallelAbstractionTest.cpp - -j N determinism (tentpole) ------------===//
//
// The parallel abstraction contract: for every worker count N the
// produced boolean program is byte-identical to the sequential pass,
// and the shared prover cache only ever helps (its hit counters are
// monotone nondecreasing in N).
//
//===----------------------------------------------------------------------===//

#include "c2bp/C2bp.h"

#include "cfront/Normalize.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::c2bp;

namespace {

struct RunResult {
  bool Ok = false;
  std::string Text;
  uint64_t SharedHits = 0;
  uint64_t ProverCalls = 0;
};

RunResult abstractWith(const std::string &Source, const std::string &PredText,
                       int Workers) {
  RunResult R;
  DiagnosticEngine Diags;
  logic::LogicContext Ctx;
  auto P = cfront::frontend(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.str();
  if (!P)
    return R;
  auto PS = parsePredicateFile(Ctx, PredText, Diags);
  EXPECT_TRUE(PS.has_value()) << Diags.str();
  if (!PS)
    return R;
  C2bpOptions Options;
  Options.NumWorkers = Workers;
  StatsRegistry Stats;
  auto BP = abstractProgram(*P, *PS, Ctx, Diags, Options, &Stats);
  EXPECT_TRUE(BP != nullptr) << Diags.str();
  if (!BP)
    return R;
  R.Ok = true;
  R.Text = BP->str();
  R.SharedHits = Stats.get("prover.shared_cache_hits") +
                 Stats.get("prover.neg_cache_hits");
  R.ProverCalls = Stats.get("prover.calls");
  return R;
}

// One sweep over every Table 2 workload at -j 1/2/4/8 checks both
// halves of the parallel contract: (a) the boolean program is
// byte-identical to the sequential pass at every worker count, and
// (b) the shared prover cache only helps — combined hit counters are
// monotone nondecreasing in N. (N = 1 runs the sequential pass with no
// shared cache, so its shared-hit count is zero and anchors the chain.)
TEST(ParallelAbstraction, ByteIdenticalAndCacheMonotoneAcrossWorkerCounts) {
  for (const workloads::Workload *W : workloads::table2Workloads()) {
    SCOPED_TRACE(W->Name);
    RunResult Sequential = abstractWith(W->Source, W->Predicates, 1);
    ASSERT_TRUE(Sequential.Ok);
    uint64_t PreviousHits = 0;
    for (int N : {2, 4, 8}) {
      SCOPED_TRACE("N=" + std::to_string(N));
      RunResult Parallel = abstractWith(W->Source, W->Predicates, N);
      ASSERT_TRUE(Parallel.Ok);
      EXPECT_EQ(Parallel.Text, Sequential.Text);
      EXPECT_GE(Parallel.SharedHits, PreviousHits);
      PreviousHits = Parallel.SharedHits;
    }
  }
}

// Repeated parallel runs of the same abstraction must also agree with
// each other (no schedule-dependent output).
TEST(ParallelAbstraction, RepeatedRunsAgree) {
  const workloads::Workload &W = workloads::partitionWorkload();
  RunResult First = abstractWith(W.Source, W.Predicates, 8);
  ASSERT_TRUE(First.Ok);
  for (int Run = 0; Run != 3; ++Run) {
    RunResult Again = abstractWith(W.Source, W.Predicates, 8);
    ASSERT_TRUE(Again.Ok);
    EXPECT_EQ(Again.Text, First.Text);
  }
}

// Disabling the shared cache must not change the output either — only
// the number of prover calls.
TEST(ParallelAbstraction, OutputUnchangedWithoutSharedCache) {
  const workloads::Workload &W = workloads::partitionWorkload();
  RunResult Shared = abstractWith(W.Source, W.Predicates, 4);
  ASSERT_TRUE(Shared.Ok);

  DiagnosticEngine Diags;
  logic::LogicContext Ctx;
  auto P = cfront::frontend(W.Source, Diags);
  ASSERT_TRUE(P != nullptr) << Diags.str();
  auto PS = parsePredicateFile(Ctx, W.Predicates, Diags);
  ASSERT_TRUE(PS.has_value()) << Diags.str();
  C2bpOptions Options;
  Options.NumWorkers = 4;
  Options.UseSharedProverCache = false;
  StatsRegistry Stats;
  auto BP = abstractProgram(*P, *PS, Ctx, Diags, Options, &Stats);
  ASSERT_TRUE(BP != nullptr) << Diags.str();
  EXPECT_EQ(BP->str(), Shared.Text);
  EXPECT_EQ(Stats.get("prover.shared_cache_hits"), 0u);
  EXPECT_GE(Stats.get("prover.calls"), Shared.ProverCalls);
}

} // namespace
