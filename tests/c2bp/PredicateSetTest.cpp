//===- PredicateSetTest.cpp - Predicate input files -------------------------===//

#include "c2bp/PredicateSet.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::c2bp;

namespace {

class PredicateSetTest : public ::testing::Test {
protected:
  logic::LogicContext Ctx;
  DiagnosticEngine Diags;
};

TEST_F(PredicateSetTest, ParsesFigure1File) {
  auto PS = parsePredicateFile(Ctx, R"(
# Figure 1's predicate input file.
partition:
  curr == NULL, prev == NULL,
  curr->val > v, prev->val > v
)",
                               Diags);
  ASSERT_TRUE(PS.has_value()) << Diags.str();
  EXPECT_TRUE(PS->Globals.empty());
  ASSERT_EQ(PS->forProc("partition").size(), 4u);
  EXPECT_EQ(PS->forProc("partition")[2]->str(), "curr->val > v");
  EXPECT_EQ(PS->totalCount(), 4u);
}

TEST_F(PredicateSetTest, GlobalScope) {
  auto PS = parsePredicateFile(Ctx, R"(
global:
  lock == 1
foo:
  x == 0
)",
                               Diags);
  ASSERT_TRUE(PS.has_value()) << Diags.str();
  ASSERT_EQ(PS->Globals.size(), 1u);
  EXPECT_EQ(PS->Globals[0]->str(), "lock == 1");
  EXPECT_EQ(PS->forProc("foo").size(), 1u);
}

TEST_F(PredicateSetTest, DeduplicatesWithinScope) {
  auto PS = parsePredicateFile(Ctx, "f:\n x == 0\n x == 0\n", Diags);
  ASSERT_TRUE(PS.has_value());
  EXPECT_EQ(PS->forProc("f").size(), 1u);
}

TEST_F(PredicateSetTest, AddForRefinement) {
  PredicateSet PS;
  logic::ExprRef E = Ctx.eq(Ctx.var("x"), Ctx.intLit(0));
  EXPECT_TRUE(PS.addLocal("f", E));
  EXPECT_FALSE(PS.addLocal("f", E));
  EXPECT_TRUE(PS.addGlobal(E));
  EXPECT_FALSE(PS.addGlobal(E));
}

TEST_F(PredicateSetTest, Errors) {
  EXPECT_FALSE(parsePredicateFile(Ctx, "x == 0\n", Diags).has_value());
  Diags.clear();
  EXPECT_FALSE(parsePredicateFile(Ctx, "f:\n x ==\n", Diags).has_value());
  Diags.clear();
  EXPECT_FALSE(parsePredicateFile(Ctx, "f:\n x + 1\n", Diags).has_value());
}

} // namespace
