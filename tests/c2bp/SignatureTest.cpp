//===- SignatureTest.cpp - Section 4.5.2 signatures -------------------------===//

#include "c2bp/Signatures.h"

#include "cfront/Normalize.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::c2bp;
using namespace slam::cfront;
using logic::ExprRef;

namespace {

/// Figure 2's bar, completed with a body consistent with its predicates.
const char *BarSource = R"(
int bar(int *q, int y) {
  int l1, l2;
  if (*q > y) {
    *q = y;
  }
  l1 = y;
  l2 = y - 1;
  return l1;
}
)";

class SignatureTest : public ::testing::Test {
protected:
  void load(const std::string &Source) {
    DiagnosticEngine Diags;
    P = frontend(Source, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str();
    PT = std::make_unique<alias::PointsTo>(*P);
    MR = std::make_unique<alias::ModRef>(*P, *PT);
  }

  std::vector<ExprRef> preds(const std::vector<std::string> &Texts) {
    std::vector<ExprRef> Out;
    for (const std::string &T : Texts) {
      DiagnosticEngine Diags;
      ExprRef E = logic::parseExpr(Ctx, T, Diags);
      EXPECT_TRUE(E != nullptr) << Diags.str();
      Out.push_back(E);
    }
    return Out;
  }

  static std::vector<std::string> strs(const std::vector<ExprRef> &V) {
    std::vector<std::string> Out;
    for (ExprRef E : V)
      Out.push_back(E->str());
    return Out;
  }

  logic::LogicContext Ctx;
  std::unique_ptr<Program> P;
  std::unique_ptr<alias::PointsTo> PT;
  std::unique_ptr<alias::ModRef> MR;
};

TEST_F(SignatureTest, Figure2BarSignature) {
  load(BarSource);
  const FuncDecl *Bar = P->findFunction("bar");
  auto ER = preds({"y >= 0", "*q <= y", "y == l1", "y > l2"});
  ProcSignature Sig = computeSignature(Ctx, *P, *Bar, ER, *PT, *MR);

  ASSERT_TRUE(Sig.RetVar != nullptr);
  EXPECT_EQ(Sig.RetVar->Name, "l1");
  // E_f = { *q <= y, y >= 0 }: the predicates free of locals.
  EXPECT_EQ(strs(Sig.Formals),
            (std::vector<std::string>{"y >= 0", "*q <= y"}));
  // E_r = { *q <= y (derefs a formal), y == l1 (about the return var) }.
  EXPECT_EQ(strs(Sig.Returns),
            (std::vector<std::string>{"*q <= y", "y == l1"}));
}

TEST_F(SignatureTest, GlobalsMakeReturnPredicates) {
  load(R"(
    int g;
    int f(int x) {
      int r;
      g = x;
      r = x;
      return r;
    }
  )");
  auto ER = preds({"g == x", "x >= 0", "r == x"});
  ProcSignature Sig =
      computeSignature(Ctx, *P, *P->findFunction("f"), ER, *PT, *MR);
  // g == x references a global: formal predicate AND return predicate.
  EXPECT_EQ(strs(Sig.Formals),
            (std::vector<std::string>{"g == x", "x >= 0"}));
  EXPECT_EQ(strs(Sig.Returns),
            (std::vector<std::string>{"g == x", "r == x"}));
}

TEST_F(SignatureTest, Footnote4DropsModifiedFormals) {
  load(R"(
    int f(int x) {
      int r;
      x = x + 1;
      r = x;
      return r;
    }
  )");
  // r == x mentions the formal x, which f modifies: the caller cannot
  // interpret x as the actual at return, so it leaves E_r.
  auto ER = preds({"r == x"});
  ProcSignature Sig =
      computeSignature(Ctx, *P, *P->findFunction("f"), ER, *PT, *MR);
  EXPECT_TRUE(Sig.Returns.empty());
  // But r == 0 (no formals) stays.
  auto ER2 = preds({"r == 0"});
  ProcSignature Sig2 =
      computeSignature(Ctx, *P, *P->findFunction("f"), ER2, *PT, *MR);
  EXPECT_EQ(strs(Sig2.Returns), (std::vector<std::string>{"r == 0"}));
}

TEST_F(SignatureTest, VoidProcedure) {
  load("int g; void f() { g = 1; }");
  auto ER = preds({"g == 1"});
  ProcSignature Sig =
      computeSignature(Ctx, *P, *P->findFunction("f"), ER, *PT, *MR);
  EXPECT_EQ(Sig.RetVar, nullptr);
  EXPECT_EQ(strs(Sig.Formals), (std::vector<std::string>{"g == 1"}));
  // Mentions a global: reported back to callers.
  EXPECT_EQ(strs(Sig.Returns), (std::vector<std::string>{"g == 1"}));
}

TEST_F(SignatureTest, PurelyLocalPredicatesStayPrivate) {
  load("int f(int x) { int a; a = x; return a; }");
  auto ER = preds({"a > 0"});
  ProcSignature Sig =
      computeSignature(Ctx, *P, *P->findFunction("f"), ER, *PT, *MR);
  EXPECT_TRUE(Sig.Formals.empty());
  // `a` is the return variable: a > 0 is a return predicate.
  EXPECT_EQ(strs(Sig.Returns), (std::vector<std::string>{"a > 0"}));
}

} // namespace
