//===- InterpTest.cpp - Reference interpreter -------------------------------===//

#include "cfront/Interp.h"

#include "cfront/Normalize.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::cfront;

namespace {

class InterpTest : public ::testing::Test {
protected:
  std::unique_ptr<Program> load(const std::string &Source) {
    DiagnosticEngine Diags;
    auto P = frontend(Source, Diags);
    EXPECT_TRUE(P != nullptr) << Diags.str();
    return P;
  }

  logic::ExprRef parse(const std::string &Text) {
    DiagnosticEngine Diags;
    return logic::parseExpr(Ctx, Text, Diags);
  }

  logic::LogicContext Ctx;
};

TEST_F(InterpTest, ArithmeticAndReturn) {
  auto P = load("int f(int x) { int y; y = x * 2 + 1; return y; }");
  Interpreter I(*P, 1);
  auto Out = I.run("f", {Value::makeInt(20)});
  EXPECT_EQ(Out, Interpreter::Outcome::Finished);
  ASSERT_TRUE(I.returnValue().has_value());
  EXPECT_EQ(I.returnValue()->I, 41);
}

TEST_F(InterpTest, LoopsAndBreak) {
  auto P = load(R"(
    int f(int n) {
      int s;
      s = 0;
      while (n > 0) {
        if (n == 3)
          break;
        s = s + n;
        n = n - 1;
      }
      return s;
    }
  )");
  Interpreter I(*P, 1);
  I.run("f", {Value::makeInt(5)});
  EXPECT_EQ(I.returnValue()->I, 5 + 4); // Stops at n == 3.
}

TEST_F(InterpTest, GotoFlow) {
  auto P = load(R"(
    int f(int x) {
      int r;
      r = 0;
      top: r = r + x;
      x = x - 1;
      if (x > 0) goto top;
      return r;
    }
  )");
  Interpreter I(*P, 1);
  I.run("f", {Value::makeInt(4)});
  EXPECT_EQ(I.returnValue()->I, 4 + 3 + 2 + 1);
}

TEST_F(InterpTest, RecursionAndCalls) {
  auto P = load(R"(
    int fact(int n) {
      int r;
      if (n <= 1) { return 1; }
      r = fact(n - 1);
      return r * n;
    }
  )");
  Interpreter I(*P, 1);
  I.run("fact", {Value::makeInt(5)});
  EXPECT_EQ(I.returnValue()->I, 120);
}

TEST_F(InterpTest, PointersAndAddressOf) {
  auto P = load(R"(
    void f() {
      int x;
      int *p;
      x = 1;
      p = &x;
      *p = 42;
      assert(x == 42);
    }
  )");
  Interpreter I(*P, 1);
  EXPECT_EQ(I.run("f", {}), Interpreter::Outcome::Finished);
}

TEST_F(InterpTest, StructsAndLists) {
  auto P = load(R"(
    typedef struct cell { int val; struct cell *next; } *list;
    int sum(list l) {
      int s;
      s = 0;
      while (l != NULL) {
        s = s + l->val;
        l = l->next;
      }
      return s;
    }
  )");
  Interpreter I(*P, 1);
  const RecordDecl *Rec = P->Types.findRecord("cell");
  int N1 = I.allocStruct(Rec), N2 = I.allocStruct(Rec);
  I.setField(N1, "val", Value::makeInt(10));
  I.setField(N1, "next", Value::makePtr(N2));
  I.setField(N2, "val", Value::makeInt(32));
  I.run("sum", {Value::makePtr(N1)});
  EXPECT_EQ(I.returnValue()->I, 42);
}

TEST_F(InterpTest, Arrays) {
  auto P = load(R"(
    int a[4];
    int f() {
      int i;
      int s;
      i = 0;
      s = 0;
      while (i < 4) {
        a[i] = i * i;
        s = s + a[i];
        i = i + 1;
      }
      return s;
    }
  )");
  Interpreter I(*P, 1);
  I.run("f", {});
  EXPECT_EQ(I.returnValue()->I, 0 + 1 + 4 + 9);
}

TEST_F(InterpTest, AssertFailureStops) {
  auto P = load("void f(int x) { assert(x > 0); x = 1; }");
  Interpreter I(*P, 1);
  EXPECT_EQ(I.run("f", {Value::makeInt(-1)}),
            Interpreter::Outcome::AssertFailed);
  ASSERT_TRUE(I.stopStmt() != nullptr);
  EXPECT_EQ(I.stopStmt()->Kind, CStmtKind::Assert);
}

TEST_F(InterpTest, NullDereferenceIsRuntimeError) {
  auto P = load(R"(
    struct s { int v; };
    void f(struct s *p) { p->v = 1; }
  )");
  Interpreter I(*P, 1);
  EXPECT_EQ(I.run("f", {Value::null()}),
            Interpreter::Outcome::RuntimeError);
}

TEST_F(InterpTest, StepLimitOnInfiniteLoop) {
  auto P = load("void f() { int x; x = 0; while (x == 0) { x = 0; } }");
  Interpreter I(*P, 1);
  EXPECT_EQ(I.run("f", {}, nullptr, 1000),
            Interpreter::Outcome::StepLimit);
}

TEST_F(InterpTest, ExternHandlerAndDeterminism) {
  auto P = load(R"(
    int nondet();
    int f() { int x; x = nondet(); return x; }
  )");
  Interpreter I(*P, 7);
  I.setExternHandler("nondet",
                     [](Interpreter &, std::vector<Value> &) {
                       return Value::makeInt(99);
                     });
  I.run("f", {});
  EXPECT_EQ(I.returnValue()->I, 99);
  // Without a handler, values are seeded-deterministic.
  auto P2 = load("int nondet(); int g() { int x; x = nondet(); return x; }");
  Interpreter A(*P2, 7), B(*P2, 7);
  A.run("g", {});
  B.run("g", {});
  EXPECT_EQ(A.returnValue()->I, B.returnValue()->I);
}

TEST_F(InterpTest, EvalLogicAgainstState) {
  auto P = load(R"(
    typedef struct cell { int val; struct cell *next; } *list;
    void f(list curr, int v) {
      L: assert(curr != NULL);
    }
  )");
  Interpreter I(*P, 1);
  const RecordDecl *Rec = P->Types.findRecord("cell");
  int N = I.allocStruct(Rec);
  I.setField(N, "val", Value::makeInt(7));

  struct Probe : StepHook {
    Interpreter *I = nullptr;
    logic::LogicContext *Ctx = nullptr;
    std::optional<Value> CurrNonNull, ValGtV, Undefined;
    void onStep(const Stmt &, bool) override {
      DiagnosticEngine D;
      CurrNonNull = I->evalLogic(logic::parseExpr(*Ctx, "curr != NULL", D));
      ValGtV = I->evalLogic(logic::parseExpr(*Ctx, "curr->val > v", D));
      Undefined = I->evalLogic(logic::parseExpr(*Ctx, "mystery->val", D));
    }
    void afterStore(const Stmt &) override {}
  } Probe;
  Probe.I = &I;
  Probe.Ctx = &Ctx;

  I.run("f", {Value::makePtr(N), Value::makeInt(3)}, &Probe);
  ASSERT_TRUE(Probe.CurrNonNull.has_value());
  EXPECT_EQ(Probe.CurrNonNull->I, 1);
  ASSERT_TRUE(Probe.ValGtV.has_value());
  EXPECT_EQ(Probe.ValGtV->I, 1); // 7 > 3.
  EXPECT_FALSE(Probe.Undefined.has_value());
}

} // namespace
