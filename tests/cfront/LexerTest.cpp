//===- LexerTest.cpp -------------------------------------------------------===//

#include "cfront/Lexer.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::cfront;

namespace {

std::vector<TokKind> kindsOf(const std::string &Source) {
  std::vector<TokKind> Kinds;
  for (const Token &T : tokenize(Source))
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(Lexer, EmptyInput) {
  auto Tokens = tokenize("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokKind::End);
}

TEST(Lexer, KeywordsVsIdentifiers) {
  auto Kinds = kindsOf("int intx while whilex NULL null");
  EXPECT_EQ(Kinds, (std::vector<TokKind>{
                       TokKind::KwInt, TokKind::Ident, TokKind::KwWhile,
                       TokKind::Ident, TokKind::KwNull, TokKind::Ident,
                       TokKind::End}));
}

TEST(Lexer, TwoCharOperators) {
  auto Kinds = kindsOf("-> == != <= >= && || = < >");
  EXPECT_EQ(Kinds, (std::vector<TokKind>{
                       TokKind::Arrow, TokKind::EqEq, TokKind::BangEq,
                       TokKind::Le, TokKind::Ge, TokKind::AmpAmp,
                       TokKind::PipePipe, TokKind::Assign, TokKind::Lt,
                       TokKind::Gt, TokKind::End}));
}

TEST(Lexer, CommentsAreSkipped) {
  auto Kinds = kindsOf("x // line comment\n /* block\n comment */ y");
  EXPECT_EQ(Kinds, (std::vector<TokKind>{TokKind::Ident, TokKind::Ident,
                                         TokKind::End}));
}

TEST(Lexer, IntegerValues) {
  auto Tokens = tokenize("42 0 1234567");
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].IntValue, 42);
  EXPECT_EQ(Tokens[1].IntValue, 0);
  EXPECT_EQ(Tokens[2].IntValue, 1234567);
}

TEST(Lexer, TracksLineAndColumn) {
  auto Tokens = tokenize("a\n  bb\n c");
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Col, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
  EXPECT_EQ(Tokens[2].Loc.Line, 3u);
  EXPECT_EQ(Tokens[2].Loc.Col, 2u);
}

TEST(Lexer, CountLines) {
  EXPECT_EQ(countLines(""), 0u);
  EXPECT_EQ(countLines("one line"), 1u);
  EXPECT_EQ(countLines("a\nb\n"), 2u);
  EXPECT_EQ(countLines("a\nb"), 2u);
}

TEST(Lexer, ErrorTokenForStrayCharacter) {
  auto Tokens = tokenize("x @ y");
  EXPECT_EQ(Tokens[1].Kind, TokKind::Error);
  EXPECT_EQ(Tokens[1].Text, "@");
}

} // namespace
