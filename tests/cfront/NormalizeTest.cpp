//===- NormalizeTest.cpp - Simple intermediate form ------------------------===//

#include "cfront/Normalize.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::cfront;

namespace {

class NormalizeTest : public ::testing::Test {
protected:
  std::unique_ptr<Program> norm(const std::string &Source) {
    DiagnosticEngine Diags;
    auto P = frontend(Source, Diags);
    EXPECT_TRUE(P != nullptr) << Diags.str();
    return P;
  }

  void expectError(const std::string &Source, const std::string &Needle) {
    DiagnosticEngine Diags;
    auto P = frontend(Source, Diags);
    EXPECT_EQ(P, nullptr);
    EXPECT_NE(Diags.str().find(Needle), std::string::npos) << Diags.str();
  }

  /// Checks the Section 4 invariant: every Deref / arrow / index base is
  /// a plain variable and no Call appears below statement level.
  static void checkSimpleExpr(const Expr &E, bool TopCall = false) {
    EXPECT_TRUE(E.Kind != CExprKind::Call || TopCall)
        << "nested call survived normalization: " << E.str();
    if (E.Kind == CExprKind::Unary && E.UOp == UnaryOp::Deref) {
      EXPECT_EQ(E.Ops[0]->Kind, CExprKind::VarRef) << E.str();
    }
    if (E.Kind == CExprKind::Member && E.IsArrow) {
      EXPECT_EQ(E.Ops[0]->Kind, CExprKind::VarRef) << E.str();
    }
    if (E.Kind == CExprKind::Index) {
      EXPECT_EQ(E.Ops[0]->Kind, CExprKind::VarRef) << E.str();
    }
    for (const Expr *Op : E.Ops)
      checkSimpleExpr(*Op);
  }

  static void checkSimpleStmt(const Stmt &S) {
    if (S.Lhs)
      checkSimpleExpr(*S.Lhs);
    if (S.Rhs)
      checkSimpleExpr(*S.Rhs);
    if (S.Cond)
      checkSimpleExpr(*S.Cond);
    if (S.CallE)
      checkSimpleExpr(*S.CallE, /*TopCall=*/true);
    for (const Stmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
      if (Sub)
        checkSimpleStmt(*Sub);
    for (const Stmt *Sub : S.Stmts)
      checkSimpleStmt(*Sub);
  }
};

TEST_F(NormalizeTest, HoistsNestedCall) {
  // The paper's example: z = x + f(y)  =>  t = f(y); z = x + t.
  auto P = norm(R"(
    int f(int y) { return y; }
    void g(int x, int y) {
      int z;
      z = x + f(y);
    }
  )");
  FuncDecl *G = P->Functions[1];
  ASSERT_EQ(G->Body->Stmts.size(), 2u);
  EXPECT_EQ(G->Body->Stmts[0]->Kind, CStmtKind::CallStmt);
  EXPECT_EQ(G->Body->Stmts[1]->Kind, CStmtKind::Assign);
  EXPECT_EQ(G->Body->Stmts[1]->Rhs->str(), "x + __t0");
  checkSimpleStmt(*G->Body);
}

TEST_F(NormalizeTest, SplitsDoubleDeref) {
  auto P = norm(R"(
    void f(int **pp) {
      int x;
      x = **pp;
    }
  )");
  FuncDecl *F = P->Functions[0];
  ASSERT_EQ(F->Body->Stmts.size(), 2u);
  EXPECT_EQ(F->Body->Stmts[0]->Lhs->str(), "__t0");
  EXPECT_EQ(F->Body->Stmts[0]->Rhs->str(), "*pp");
  EXPECT_EQ(F->Body->Stmts[1]->Rhs->str(), "*__t0");
  checkSimpleStmt(*F->Body);
}

TEST_F(NormalizeTest, SplitsArrowChains) {
  auto P = norm(R"(
    struct cell { int val; struct cell *next; };
    void f(struct cell *p) {
      int v;
      v = p->next->next->val;
    }
  )");
  checkSimpleStmt(*P->Functions[0]->Body);
  EXPECT_EQ(P->Functions[0]->Body->Stmts.size(), 3u);
}

TEST_F(NormalizeTest, DotOnDerefBecomesArrow) {
  auto P = norm(R"(
    struct s { int f; };
    void g(struct s *p) {
      int x;
      x = (*p).f;
    }
  )");
  Stmt *S = P->Functions[0]->Body->Stmts[0];
  EXPECT_EQ(S->Rhs->str(), "p->f");
}

TEST_F(NormalizeTest, ScalarConditionsBecomeComparisons) {
  auto P = norm(R"(
    struct node { int mark; struct node *next; };
    void f(struct node *p, int x) {
      while (p)
        p = p->next;
      if (x) x = 0;
      if (!x) x = 1;
    }
  )");
  FuncDecl *F = P->Functions[0];
  EXPECT_EQ(F->Body->Stmts[0]->Cond->str(), "p != NULL");
  EXPECT_EQ(F->Body->Stmts[1]->Cond->str(), "x != 0");
  EXPECT_EQ(F->Body->Stmts[2]->Cond->str(), "!(x != 0)");
}

TEST_F(NormalizeTest, WhileConditionWithCallLowers) {
  auto P = norm(R"(
    int more() { return 1; }
    void f() {
      int n;
      n = 0;
      while (more())
        n = n + 1;
    }
  )");
  FuncDecl *F = P->Functions[1];
  // while(1) { t = more(); if (!(t != 0)) break; body }
  Stmt *W = F->Body->Stmts[1];
  ASSERT_EQ(W->Kind, CStmtKind::While);
  EXPECT_EQ(W->Cond->str(), "1 != 0");
  ASSERT_EQ(W->Body->Kind, CStmtKind::Block);
  EXPECT_EQ(W->Body->Stmts[0]->Kind, CStmtKind::CallStmt);
  EXPECT_EQ(W->Body->Stmts[1]->Kind, CStmtKind::If);
  EXPECT_EQ(W->Body->Stmts[1]->Then->Kind, CStmtKind::Break);
  checkSimpleStmt(*F->Body);
}

TEST_F(NormalizeTest, SingleTrailingReturnKept) {
  auto P = norm(R"(
    int id(int x) { return x; }
  )");
  FuncDecl *F = P->Functions[0];
  ASSERT_EQ(F->Body->Stmts.size(), 1u);
  EXPECT_EQ(F->Body->Stmts.back()->Kind, CStmtKind::Return);
  // No __retval local was synthesized.
  EXPECT_EQ(F->findLocalOrParam("__retval"), nullptr);
}

TEST_F(NormalizeTest, MultipleReturnsFunnelThroughRetval) {
  auto P = norm(R"(
    int sign(int x) {
      if (x > 0) return 1;
      if (x < 0) return -1;
      return 0;
    }
  )");
  FuncDecl *F = P->Functions[0];
  ASSERT_TRUE(F->findLocalOrParam("__retval") != nullptr);
  // Body ends with `__exit: return __retval;`.
  Stmt *Last = F->Body->Stmts.back();
  ASSERT_EQ(Last->Kind, CStmtKind::Label);
  EXPECT_EQ(Last->LabelName, "__exit");
  ASSERT_EQ(Last->Sub->Kind, CStmtKind::Return);
  EXPECT_EQ(Last->Sub->Rhs->str(), "__retval");
  // Exactly one Return remains in the whole body.
  unsigned Returns = 0;
  std::function<void(const Stmt &)> Walk = [&](const Stmt &S) {
    if (S.Kind == CStmtKind::Return)
      ++Returns;
    for (const Stmt *Sub : {S.Then, S.Else, S.Body, S.Sub})
      if (Sub)
        Walk(*Sub);
    for (const Stmt *Sub : S.Stmts)
      Walk(*Sub);
  };
  Walk(*F->Body);
  EXPECT_EQ(Returns, 1u);
}

TEST_F(NormalizeTest, CompoundReturnValueHoisted) {
  auto P = norm("int f(int x) { return x + 1; }");
  FuncDecl *F = P->Functions[0];
  ASSERT_TRUE(F->findLocalOrParam("__retval") != nullptr);
  EXPECT_EQ(F->Body->Stmts[0]->Kind, CStmtKind::Assign);
  EXPECT_EQ(F->Body->Stmts[0]->Lhs->str(), "__retval");
}

TEST_F(NormalizeTest, RejectsBooleanAsValue) {
  expectError("void f(int x) { int y; y = x < 3; }",
              "boolean expression used as a value");
  expectError("void f(int x) { int y; y = !x; }", "boolean operator");
}

TEST_F(NormalizeTest, RejectsCallUnderShortCircuit) {
  expectError(R"(
    int t() { return 1; }
    void f(int x) {
      if (x > 0 && t() > 0) x = 1;
    }
  )",
              "not allowed under");
}

TEST_F(NormalizeTest, PartitionNormalizesCleanly) {
  auto P = norm(R"(
    typedef struct cell { int val; struct cell* next; } *list;
    list partition(list *l, int v) {
      list curr, prev, newl, nextcurr;
      curr = *l;
      prev = NULL;
      newl = NULL;
      while (curr != NULL) {
        nextcurr = curr->next;
        if (curr->val > v) {
          if (prev != NULL)
            prev->next = nextcurr;
          if (curr == *l)
            *l = nextcurr;
          curr->next = newl;
          L: newl = curr;
        } else {
          prev = curr;
        }
        curr = nextcurr;
      }
      return newl;
    }
  )");
  checkSimpleStmt(*P->Functions[0]->Body);
  // No temporaries were needed: the program is already in simple form.
  EXPECT_EQ(P->Functions[0]->Locals.size(), 4u);
}

} // namespace
