//===- ParserTest.cpp - SIL-C parsing --------------------------------------===//

#include "cfront/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::cfront;

namespace {

/// The list partition procedure of Figure 1(a), verbatim modulo layout.
const char *PartitionSource = R"(
typedef struct cell {
  int val;
  struct cell* next;
} *list;

list partition(list *l, int v) {
  list curr, prev, newl, nextcurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextcurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL)
        prev->next = nextcurr;
      if (curr == *l)
        *l = nextcurr;
      curr->next = newl;
      L: newl = curr;
    } else {
      prev = curr;
    }
    curr = nextcurr;
  }
  return newl;
}
)";

class ParserTest : public ::testing::Test {
protected:
  std::unique_ptr<Program> parse(const std::string &Source) {
    DiagnosticEngine Diags;
    auto P = parseProgram(Source, Diags);
    EXPECT_TRUE(P != nullptr) << Diags.str();
    return P;
  }

  void expectError(const std::string &Source, const std::string &Needle) {
    DiagnosticEngine Diags;
    auto P = parseProgram(Source, Diags);
    EXPECT_EQ(P, nullptr);
    EXPECT_NE(Diags.str().find(Needle), std::string::npos) << Diags.str();
  }
};

TEST_F(ParserTest, ParsesPartitionFigure1) {
  auto P = parse(PartitionSource);
  ASSERT_EQ(P->Functions.size(), 1u);
  FuncDecl *F = P->Functions[0];
  EXPECT_EQ(F->Name, "partition");
  ASSERT_EQ(F->Params.size(), 2u);
  EXPECT_EQ(F->Params[0]->Name, "l");
  EXPECT_EQ(F->Params[0]->Ty->str(), "struct cell**");
  EXPECT_EQ(F->Params[1]->Ty->str(), "int");
  EXPECT_EQ(F->Locals.size(), 4u);
  EXPECT_EQ(F->ReturnTy->str(), "struct cell*");
}

TEST_F(ParserTest, TypedefToPointer) {
  auto P = parse("typedef struct n { int v; } *np;\nnp g;\n");
  ASSERT_EQ(P->Globals.size(), 1u);
  EXPECT_EQ(P->Globals[0]->Ty->str(), "struct n*");
}

TEST_F(ParserTest, GlobalsAndArrays) {
  auto P = parse("int x, y;\nint a[10];\nint *p;\n");
  ASSERT_EQ(P->Globals.size(), 4u);
  EXPECT_EQ(P->Globals[2]->Ty->str(), "int[10]");
  EXPECT_EQ(P->Globals[3]->Ty->str(), "int*");
}

TEST_F(ParserTest, ExternFunctionDeclaration) {
  auto P = parse("int nondet();\nvoid f(void) { }\n");
  ASSERT_EQ(P->Functions.size(), 2u);
  EXPECT_TRUE(P->Functions[0]->isExtern());
  EXPECT_FALSE(P->Functions[1]->isExtern());
  EXPECT_TRUE(P->Functions[1]->Params.empty());
}

TEST_F(ParserTest, StatementForms) {
  auto P = parse(R"(
    void f(int x) {
      int y;
      y = 0;
      if (x > 0) y = 1; else y = 2;
      while (y < 10) { y = y + 1; if (y == 5) break; else continue; }
      top: y = y - 1;
      if (y > 0) goto top;
      assert(y <= 0);
      ;
      return;
    }
  )");
  FuncDecl *F = P->Functions[0];
  ASSERT_TRUE(F->Body);
  EXPECT_GE(F->Body->Stmts.size(), 8u);
}

TEST_F(ParserTest, CallsAndInitializers) {
  auto P = parse(R"(
    int g(int a, int b) { return a; }
    void f() {
      int x = 3;
      int y;
      y = g(x, 4);
      g(y, y);
    }
  )");
  FuncDecl *F = P->Functions[1];
  // Initializer becomes an assignment statement.
  ASSERT_GE(F->Body->Stmts.size(), 3u);
  EXPECT_EQ(F->Body->Stmts[0]->Kind, CStmtKind::Assign);
  EXPECT_EQ(F->Body->Stmts[1]->Kind, CStmtKind::CallStmt);
  EXPECT_TRUE(F->Body->Stmts[1]->Lhs != nullptr);
  EXPECT_EQ(F->Body->Stmts[2]->Kind, CStmtKind::CallStmt);
  EXPECT_TRUE(F->Body->Stmts[2]->Lhs == nullptr);
}

TEST_F(ParserTest, ExpressionShapes) {
  auto P = parse(R"(
    struct s { int f; struct s *n; };
    void f(struct s *p, int i) {
      int a[5];
      int x;
      x = p->n->f + a[i + 1] * 2;
      x = -x + (i % 3);
      p->f = 0;
    }
  )");
  Stmt *S = P->Functions[0]->Body->Stmts[0];
  EXPECT_EQ(S->Rhs->str(), "p->n->f + (a[i + 1] * 2)");
}

TEST_F(ParserTest, LabelVsDeclarationDisambiguation) {
  // `list:` must parse as a label even though `list` is a typedef name.
  auto P = parse(R"(
    typedef struct c { int v; } *list;
    void f() {
      int x;
      x = 0;
      list: x = 1;
      if (x < 2) goto list;
    }
  )");
  EXPECT_EQ(P->Functions[0]->Body->Stmts[1]->Kind, CStmtKind::Label);
}

TEST_F(ParserTest, SyntaxErrors) {
  expectError("int f( {", "expected");
  expectError("void f() { x + 1; }", "must be a call");
  expectError("void f() { if x } ", "expected '(' after if");
  expectError("void f() { goto; }", "expected label");
  expectError("int a[x];", "expected array size");
  expectError("unknown g;", "expected a type");
}

TEST_F(ParserTest, RecordsSourceLines) {
  auto P = parse("int x;\nint y;\n");
  EXPECT_EQ(P->SourceLines, 2u);
}

} // namespace
