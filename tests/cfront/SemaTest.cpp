//===- SemaTest.cpp - Name resolution and type checking --------------------===//

#include "cfront/Sema.h"

#include "cfront/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::cfront;

namespace {

class SemaTest : public ::testing::Test {
protected:
  std::unique_ptr<Program> check(const std::string &Source) {
    DiagnosticEngine Diags;
    auto P = parseProgram(Source, Diags);
    EXPECT_TRUE(P != nullptr) << Diags.str();
    EXPECT_TRUE(analyze(*P, Diags)) << Diags.str();
    return P;
  }

  void expectError(const std::string &Source, const std::string &Needle) {
    DiagnosticEngine Diags;
    auto P = parseProgram(Source, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str();
    EXPECT_FALSE(analyze(*P, Diags));
    EXPECT_NE(Diags.str().find(Needle), std::string::npos) << Diags.str();
  }
};

TEST_F(SemaTest, ResolvesLocalsParamsGlobals) {
  auto P = check(R"(
    int g;
    void f(int a) {
      int x;
      x = a + g;
    }
  )");
  Stmt *S = P->Functions[0]->Body->Stmts[0];
  EXPECT_EQ(S->Lhs->Var->Sc, VarDecl::Scope::Local);
  EXPECT_EQ(S->Rhs->Ops[0]->Var->Sc, VarDecl::Scope::Param);
  EXPECT_EQ(S->Rhs->Ops[1]->Var->Sc, VarDecl::Scope::Global);
  EXPECT_EQ(S->Rhs->Ty->str(), "int");
}

TEST_F(SemaTest, TypesPointerChains) {
  auto P = check(R"(
    struct cell { int val; struct cell *next; };
    void f(struct cell *p) {
      int v;
      v = p->next->val;
      p->next = p;
    }
  )");
  Stmt *S = P->Functions[0]->Body->Stmts[0];
  EXPECT_EQ(S->Rhs->Ty->str(), "int");
  Stmt *S2 = P->Functions[0]->Body->Stmts[1];
  EXPECT_EQ(S2->Lhs->Ty->str(), "struct cell*");
}

TEST_F(SemaTest, AssignsDenseStatementIds) {
  auto P = check("void f() { int x; x = 1; x = 2; if (x > 0) x = 3; }");
  EXPECT_GT(P->NumStmts, 4u);
}

TEST_F(SemaTest, NullAssignableToAnyPointer) {
  check(R"(
    struct a { int x; };
    void f(struct a *p, int *q) {
      p = NULL;
      q = NULL;
      if (p == NULL && q != NULL) p = NULL;
    }
  )");
}

TEST_F(SemaTest, PointerComparedToZeroLiteral) {
  // Figure 3 writes `while (prev != 0)` over a pointer.
  check(R"(
    struct node { int mark; struct node *next; };
    void f(struct node *prev) {
      while (prev != 0)
        prev = prev->next;
    }
  )");
}

TEST_F(SemaTest, UndefinedVariable) {
  expectError("void f() { x = 1; }", "undeclared variable 'x'");
}

TEST_F(SemaTest, UndefinedFunction) {
  expectError("void f() { g(); }", "undefined function 'g'");
}

TEST_F(SemaTest, UndefinedLabel) {
  expectError("void f() { goto nowhere; }", "undefined label");
}

TEST_F(SemaTest, TypeMismatches) {
  expectError("void f(int *p) { int x; x = p; }", "cannot assign");
  expectError("struct a { int x; }; struct b { int x; };"
              "void f(struct a *p, struct b *q) { p = q; }",
              "cannot assign");
  expectError("void f(int x) { x = x->val; }", "-> requires");
  expectError("void f(int *p) { int x; x = p + p; }", "arithmetic");
  expectError("void f(int x) { return x; }", "void function returns");
  expectError("int f() { return; }", "must return a value");
}

TEST_F(SemaTest, MismatchedCallArity) {
  expectError("int g(int a) { return a; } void f() { int x; x = g(); }",
              "wrong number of arguments");
}

TEST_F(SemaTest, BreakOutsideLoop) {
  expectError("void f() { break; }", "outside of a loop");
}

TEST_F(SemaTest, DuplicateDeclarations) {
  expectError("int x; int x;", "duplicate global");
  expectError("void f(int a, int a) { }", "duplicate parameter");
  expectError("void f() { int x; int x; }", "duplicate local");
  expectError("void f() { l: ; l: ; }", "duplicate label");
}

TEST_F(SemaTest, ShadowingWarns) {
  DiagnosticEngine Diags;
  auto P = parseProgram("int x; void f() { int x; x = 1; }", Diags);
  ASSERT_TRUE(P != nullptr);
  EXPECT_TRUE(analyze(*P, Diags));
  EXPECT_NE(Diags.str().find("shadows"), std::string::npos);
}

TEST_F(SemaTest, AddressOfRequiresLocation) {
  expectError("void f(int x) { int *p; p = &(x + 1); }",
              "address of a non-location");
  check("void f(int x) { int *p; p = &x; }");
}

} // namespace
