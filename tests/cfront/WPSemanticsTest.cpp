//===- WPSemanticsTest.cpp - Morris' axiom vs. concrete execution -----------===//
//
// The sharpest check of the WP engine: for an assignment s and a
// predicate phi, WP(s, phi) must hold in the pre-state **exactly when**
// phi holds in the post-state (Morris' axiom is an equivalence, not
// just an implication). Verified by executing single-assignment
// procedures over randomized heaps — including aliased configurations
// (p == q, x pointing at a cell's field, ...) that exercise every
// disjunct of the alias case split.
//
//===----------------------------------------------------------------------===//

#include "cfront/Interp.h"
#include "cfront/Normalize.h"
#include "logic/Parser.h"
#include "logic/WP.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::cfront;

namespace {

const char *Stmts[] = {
    "i = j + 1",     "i = p->val",     "*x = j",       "*x = *y",
    "p->val = j",    "p->val = q->val", "p->next = q",  "p = q",
    "x = y",         "p->next = NULL", "i = 3",        "*y = i + j",
};

const char *Preds[] = {
    "i == j",        "i > 0",          "*x <= j",      "*x == *y",
    "p->val > j",    "p == q",         "p->next == q", "q->val == i",
    "p->val == q->val", "p == NULL",   "x == y",       "*y < 3",
};

struct Rng {
  uint64_t State;
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return static_cast<uint32_t>(State >> 32);
  }
  uint32_t range(uint32_t N) { return next() % N; }
};

/// Observes the single assignment: evaluates WP(s, phi) just before it
/// and phi just after.
struct WpProbe : StepHook {
  Interpreter *I = nullptr;
  logic::ExprRef Wp = nullptr, Phi = nullptr;
  std::optional<Value> Before, After;

  void onStep(const Stmt &S, bool) override {
    if (S.Kind == CStmtKind::Assign && !Before)
      Before = I->evalLogic(Wp);
  }
  void afterStore(const Stmt &) override {
    if (!After)
      After = I->evalLogic(Phi);
  }
};

class WPSemantics : public ::testing::TestWithParam<int> {};

TEST_P(WPSemantics, MorrisAxiomIsExact) {
  Rng R{static_cast<uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 5};
  logic::LogicContext Ctx;
  logic::ShapeAliasOracle Oracle;
  logic::WPEngine Engine(Ctx, Oracle);

  for (int Trial = 0; Trial != 24; ++Trial) {
    std::string StmtText = Stmts[R.range(std::size(Stmts))];
    std::string PredText = Preds[R.range(std::size(Preds))];

    std::string Source =
        "typedef struct cell { int val; struct cell *next; } *list;\n"
        "void f(list p, list q, int *x, int *y, int i, int j) {\n  " +
        StmtText + ";\n}\n";
    DiagnosticEngine Diags;
    auto P = frontend(Source, Diags);
    ASSERT_TRUE(P != nullptr) << Diags.str() << Source;

    // The WP of the (single) assignment with respect to the predicate.
    const Stmt *Assign = nullptr;
    std::function<void(const Stmt *)> Find = [&](const Stmt *S) {
      if (S->Kind == CStmtKind::Assign && !Assign)
        Assign = S;
      for (const Stmt *Sub : {S->Then, S->Else, S->Body, S->Sub})
        if (Sub)
          Find(Sub);
      for (const Stmt *Sub : S->Stmts)
        Find(Sub);
    };
    Find(P->findFunction("f")->Body);
    ASSERT_TRUE(Assign != nullptr);

    DiagnosticEngine PD;
    logic::ExprRef Phi = logic::parseExpr(Ctx, PredText, PD);
    ASSERT_TRUE(Phi != nullptr);
    // Rebuild the assignment sides as logic terms via the predicate
    // parser (the statement text is in the predicate language too).
    std::string LhsText = StmtText.substr(0, StmtText.find(" ="));
    std::string RhsText = StmtText.substr(StmtText.find("= ") + 2);
    logic::ExprRef Lhs = logic::parseExpr(Ctx, LhsText, PD);
    logic::ExprRef Rhs = logic::parseExpr(Ctx, RhsText, PD);
    ASSERT_TRUE(Lhs && Rhs) << StmtText;
    logic::ExprRef Wp = Engine.assignment(Lhs, Rhs, Phi);

    // A randomized heap: two cells (possibly shared), int pointers
    // aimed at fields, fresh cells, or aliased with each other.
    Interpreter I(*P, R.next());
    const RecordDecl *Rec = P->Types.findRecord("cell");
    int C1 = I.allocStruct(Rec), C2 = I.allocStruct(Rec);
    I.setField(C1, "val", Value::makeInt(int(R.range(9)) - 4));
    I.setField(C2, "val", Value::makeInt(int(R.range(9)) - 4));
    if (R.range(2))
      I.setField(C1, "next", Value::makePtr(C2));
    if (R.range(2))
      I.setField(C2, "next", Value::makePtr(R.range(2) ? C1 : C2));
    Value PV = Value::makePtr(C1);
    Value QV = R.range(2) ? Value::makePtr(C1) : Value::makePtr(C2);
    int Fresh = I.allocCell(Value::makeInt(int(R.range(9)) - 4));
    Value XV = Value::makePtr(Fresh);
    Value YV = R.range(2) ? XV
                          : Value::makePtr(I.allocCell(
                                Value::makeInt(int(R.range(9)) - 4)));
    Value IV = Value::makeInt(int(R.range(9)) - 4);
    Value JV = Value::makeInt(int(R.range(9)) - 4);

    WpProbe Probe;
    Probe.I = &I;
    Probe.Wp = Wp;
    Probe.Phi = Phi;
    auto Out = I.run("f", {PV, QV, XV, YV, IV, JV}, &Probe);
    ASSERT_EQ(Out, Interpreter::Outcome::Finished) << StmtText;

    if (!Probe.Before || !Probe.After)
      continue; // Undefined (e.g. NULL deref in the predicate): skip.
    EXPECT_EQ(Probe.Before->I != 0, Probe.After->I != 0)
        << "WP(" << StmtText << ", " << PredText << ") = " << Wp->str()
        << "\npre-state value " << Probe.Before->I
        << " but post-state phi " << Probe.After->I;
  }
}

INSTANTIATE_TEST_SUITE_P(Heaps, WPSemantics, ::testing::Range(0, 25));

} // namespace
