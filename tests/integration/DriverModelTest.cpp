//===- DriverModelTest.cpp - SLAM on the Table 1 driver models --------------===//

#include "workloads/Workloads.h"

#include "slam/Cegar.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::workloads;
using slamtool::SlamResult;

namespace {

SlamResult checkDriver(const DriverModel &M) {
  logic::LogicContext Ctx;
  DiagnosticEngine Diags;
  slamtool::PipelineOptions Options;
  Options.C2bp.Cubes.MaxCubeLength = 3;
  auto R = slamtool::checkSafety(M.Source, M.Spec, Ctx, Diags, Options);
  EXPECT_TRUE(R.has_value()) << M.Name << ": " << Diags.str();
  return R.value_or(SlamResult{});
}

TEST(DriverModels, GenerationIsDeterministic) {
  DriverConfig C;
  C.Name = "x";
  C.Seed = 5;
  EXPECT_EQ(generateDriver(C).Source, generateDriver(C).Source);
  C.Seed = 6;
  EXPECT_NE(generateDriver(C).Source, generateDriver(DriverConfig{}).Source);
}

TEST(DriverModels, SizesFollowThePaperOrdering) {
  auto Drivers = table1Drivers();
  ASSERT_EQ(Drivers.size(), 5u);
  auto Lines = [&](const std::string &Name) -> unsigned {
    for (const auto &D : Drivers)
      if (D.Name == Name)
        return D.SourceLines;
    return 0;
  };
  // floppy and srdriver are the big ones; ioctl the smallest.
  EXPECT_GT(Lines("floppy"), Lines("log"));
  EXPECT_GT(Lines("srdriver"), Lines("log"));
  EXPECT_GT(Lines("log"), Lines("openclos"));
  EXPECT_GT(Lines("openclos"), Lines("ioctl"));
}

TEST(DriverModels, FloppyBugIsFound) {
  auto Drivers = table1Drivers();
  SlamResult R = checkDriver(Drivers[0]);
  ASSERT_EQ(Drivers[0].Name, "floppy");
  EXPECT_EQ(R.V, SlamResult::Verdict::BugFound);
  EXPECT_FALSE(R.Trace.empty());
  // The violating path ends inside the lock automaton.
  EXPECT_EQ(R.Trace.back().ProcName, "AcquireLock");
}

TEST(DriverModels, IoctlValidates) {
  auto Drivers = table1Drivers();
  ASSERT_EQ(Drivers[1].Name, "ioctl");
  EXPECT_EQ(checkDriver(Drivers[1]).V, SlamResult::Verdict::Validated);
}

TEST(DriverModels, OpenclosValidates) {
  auto Drivers = table1Drivers();
  ASSERT_EQ(Drivers[2].Name, "openclos");
  EXPECT_EQ(checkDriver(Drivers[2]).V, SlamResult::Verdict::Validated);
}

TEST(DriverModels, SrdriverValidates) {
  auto Drivers = table1Drivers();
  ASSERT_EQ(Drivers[3].Name, "srdriver");
  SlamResult R = checkDriver(Drivers[3]);
  EXPECT_EQ(R.V, SlamResult::Verdict::Validated);
  // Refinement discovered the per-dispatch flag predicates.
  EXPECT_GT(R.Predicates.totalCount(), 2u);
  // "It usually converges in a few iterations."
  EXPECT_LE(R.Iterations, 12);
}

TEST(DriverModels, LogValidates) {
  auto Drivers = table1Drivers();
  ASSERT_EQ(Drivers[4].Name, "log");
  EXPECT_EQ(checkDriver(Drivers[4]).V, SlamResult::Verdict::Validated);
}

TEST(DriverModels, FixedFloppyValidates) {
  // The same floppy model without the planted bug verifies clean —
  // the error is the injected one, not an artifact of the model.
  DriverConfig C{"floppy-fixed", 10, 5, 3, 14, true, false, 11};
  DriverModel M = generateDriver(C);
  EXPECT_EQ(checkDriver(M).V, SlamResult::Verdict::Validated);
}

} // namespace
