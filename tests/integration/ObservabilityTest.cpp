//===- ObservabilityTest.cpp - Tracing + stats across the pipeline --------===//
//
// Runs the whole SLAM loop with the trace recorder installed and checks
// the observability surface end to end: the Chrome trace is valid JSON
// with spans from every pipeline stage (including worker cube-search
// spans when -j > 1), the stats export is valid JSON naming the
// prover/BDD counters, and the flight recorder has one row per CEGAR
// iteration.
//
//===----------------------------------------------------------------------===//

#include "slam/Cegar.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <set>

using namespace slam;
using namespace slam::slamtool;

namespace {

// The classic SLAM locking example: validation needs a Newton round to
// discover the `flag > 0` correlation, so every pipeline stage
// (including refinement) appears in the trace.
const char *LockingSource = R"(
    void AcquireLock() { }
    void ReleaseLock() { }
    int nondet();
    void main() {
      int flag;
      int work;
      flag = nondet();
      work = 0;
      if (flag > 0) {
        AcquireLock();
      }
      work = work + 1;
      if (flag > 0) {
        ReleaseLock();
      }
    }
  )";

struct PipelineRun {
  SlamResult Result;
  std::string TraceDoc;
  std::string StatsDoc;
};

/// Runs checkSafety on the locking example with tracing installed.
PipelineRun runTraced(int Workers) {
  PipelineRun Run;
  TraceRecorder Recorder;
  TraceRecorder::setActive(&Recorder);
  {
    logic::LogicContext Ctx;
    DiagnosticEngine Diags;
    StatsRegistry Stats;
    PipelineOptions Options;
    Options.C2bp.NumWorkers = Workers;
    // The driver's default: bounded cubes make the first abstraction
    // too coarse, so the loop needs a Newton refinement round (which
    // the trace assertions below rely on).
    Options.C2bp.Cubes.MaxCubeLength = 3;
    auto R = checkSafety(LockingSource,
                         SafetySpec::lockDiscipline("AcquireLock",
                                                    "ReleaseLock"),
                         Ctx, Diags, Options, &Stats);
    EXPECT_TRUE(R.has_value()) << Diags.str();
    Run.Result = R.value_or(SlamResult{});
    Run.StatsDoc = statsToJson(Stats);
  }
  TraceRecorder::setActive(nullptr);
  Run.TraceDoc = Recorder.toChromeJson();
  return Run;
}

} // namespace

TEST(Observability, TraceCoversEveryPipelineStage) {
  PipelineRun Run = runTraced(/*Workers=*/2);
  EXPECT_EQ(Run.Result.V, SlamResult::Verdict::Validated);
  EXPECT_TRUE(json::isValid(Run.TraceDoc));
  for (const char *Span :
       {"cfront.parse", "cfront.analyze", "cfront.instrument",
        "cfront.normalize", "alias.points_to", "alias.modref", "c2bp.run",
        "c2bp.cube_search", "prover.query", "bebop.build", "bebop.run",
        "newton.analyze_trace", "slam.iteration"})
    EXPECT_NE(Run.TraceDoc.find(std::string("\"") + Span + "\""),
              std::string::npos)
        << "missing span " << Span;
}

TEST(Observability, WorkerSpansCarryWorkerThreadIds) {
  PipelineRun Run = runTraced(/*Workers=*/2);
  // Cube searches execute on pool workers (tid >= 1); the driver phases
  // stay on the main thread (tid 0). Both must appear.
  EXPECT_NE(Run.TraceDoc.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(Run.TraceDoc.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(Run.TraceDoc.find("worker-1"), std::string::npos);
}

TEST(Observability, StatsExportNamesPipelineCounters) {
  PipelineRun Run = runTraced(/*Workers=*/1);
  EXPECT_TRUE(json::isValid(Run.StatsDoc));
  for (const char *Key :
       {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"prover.calls\"",
        "\"c2bp.cubes_checked\"", "\"bebop.bdd.nodes\"",
        "\"prover.query_us\"", "\"slam.iterations\""})
    EXPECT_NE(Run.StatsDoc.find(Key), std::string::npos)
        << "missing key " << Key;
}

TEST(Observability, FlightLogHasOneRecordPerIteration) {
  PipelineRun Run = runTraced(/*Workers=*/1);
  ASSERT_EQ(Run.Result.FlightLog.size(),
            static_cast<size_t>(Run.Result.Iterations));
  uint64_t TotalProverCalls = 0;
  for (size_t I = 0; I != Run.Result.FlightLog.size(); ++I) {
    const IterationRecord &Rec = Run.Result.FlightLog[I];
    EXPECT_EQ(Rec.Iteration, static_cast<int>(I) + 1);
    EXPECT_GT(Rec.Predicates, 0u);
    EXPECT_GT(Rec.Cubes, 0u);
    EXPECT_GT(Rec.BddNodes, 0u);
    TotalProverCalls += Rec.ProverCalls;
  }
  EXPECT_GT(TotalProverCalls, 0u);
  // Refinement grows the predicate set monotonically.
  for (size_t I = 1; I < Run.Result.FlightLog.size(); ++I)
    EXPECT_GT(Run.Result.FlightLog[I].Predicates,
              Run.Result.FlightLog[I - 1].Predicates);
}

TEST(Observability, FlightLogIsIndependentOfWorkerCount) {
  PipelineRun Seq = runTraced(/*Workers=*/1);
  PipelineRun Par = runTraced(/*Workers=*/2);
  ASSERT_EQ(Seq.Result.FlightLog.size(), Par.Result.FlightLog.size());
  for (size_t I = 0; I != Seq.Result.FlightLog.size(); ++I) {
    const IterationRecord &A = Seq.Result.FlightLog[I];
    const IterationRecord &B = Par.Result.FlightLog[I];
    EXPECT_EQ(A.Predicates, B.Predicates);
    EXPECT_EQ(A.Cubes, B.Cubes);
    EXPECT_EQ(A.BddNodes, B.BddNodes);
    EXPECT_EQ(A.NewPredicates, B.NewPredicates);
  }
}

TEST(Observability, UntracedRunRecordsNothing) {
  ASSERT_EQ(TraceRecorder::active(), nullptr);
  logic::LogicContext Ctx;
  DiagnosticEngine Diags;
  auto R = checkSafety(LockingSource,
                       SafetySpec::lockDiscipline("AcquireLock",
                                                  "ReleaseLock"),
                       Ctx, Diags);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->V, SlamResult::Verdict::Validated);
  // The flight recorder still fills in (it does not depend on tracing).
  EXPECT_EQ(R->FlightLog.size(), static_cast<size_t>(R->Iterations));
}
