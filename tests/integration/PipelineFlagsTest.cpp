//===- PipelineFlagsTest.cpp - The shared command-line parser --------------===//
//
// tools/PipelineFlags.h is the single parser behind slam, c2bp, and
// bebop; these tests pin the contract the three mains rely on: shared
// flags parse identically everywhere, per-tool flags are rejected by
// the other tools, --help exits 0, unknown options and bad positional
// counts exit 2, and the slam driver's k=3 default holds.
//
//===----------------------------------------------------------------------===//

#include "tools/PipelineFlags.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

using namespace slam;
using namespace slam::tools;

namespace {

/// Runs the parser on a synthesized argv (argv[0] included here).
std::optional<int> parse(ToolKind Tool, std::initializer_list<const char *>
                                            Args,
                         PipelineArgs &Out) {
  std::vector<std::string> Store{toolName(Tool)};
  Store.insert(Store.end(), Args.begin(), Args.end());
  std::vector<char *> Argv;
  for (std::string &S : Store)
    Argv.push_back(S.data());
  return parsePipelineFlags(Tool, static_cast<int>(Argv.size()),
                            Argv.data(), Out);
}

} // namespace

TEST(PipelineFlags, SlamDefaults) {
  PipelineArgs PA;
  EXPECT_EQ(parse(ToolKind::Slam, {"prog.c"}, PA), std::nullopt);
  ASSERT_EQ(PA.Inputs.size(), 1u);
  EXPECT_EQ(PA.Inputs[0], "prog.c");
  EXPECT_FALSE(PA.HaveSpec);
  // The paper's k=3 is the driver default (c2bp alone is unlimited).
  EXPECT_EQ(PA.Options.C2bp.Cubes.MaxCubeLength, 3);
  EXPECT_EQ(PA.Options.Cegar.MaxIterations, 24);
  EXPECT_EQ(PA.Options.Cegar.EntryProc, "main");
  EXPECT_TRUE(PA.Options.Cegar.Incremental);
  EXPECT_TRUE(PA.Options.ProverCachePath.empty());

  PipelineArgs PB;
  EXPECT_EQ(parse(ToolKind::C2bp, {"prog.c", "preds.txt"}, PB),
            std::nullopt);
  EXPECT_EQ(PB.Options.C2bp.Cubes.MaxCubeLength, -1);
}

TEST(PipelineFlags, SharedFlagsParseIdenticallyInEveryTool) {
  for (ToolKind Tool :
       {ToolKind::Slam, ToolKind::C2bp, ToolKind::Bebop}) {
    PipelineArgs PA;
    std::optional<int> Exit =
        Tool == ToolKind::C2bp
            ? parse(Tool, {"in.c", "preds.txt", "--trace-out", "t.json",
                           "--stats-json", "s.json", "--report",
                           "--slow-query-ms", "5"},
                    PA)
            : parse(Tool, {"input", "--trace-out", "t.json", "--stats-json",
                           "s.json", "--report", "--slow-query-ms", "5"},
                    PA);
    EXPECT_EQ(Exit, std::nullopt) << toolName(Tool);
    EXPECT_EQ(PA.Options.Obs.TraceOutPath, "t.json") << toolName(Tool);
    EXPECT_EQ(PA.Options.Obs.StatsJsonPath, "s.json") << toolName(Tool);
    EXPECT_TRUE(PA.Options.Obs.Report) << toolName(Tool);
    EXPECT_EQ(PA.Options.Obs.SlowQueryMillis, 5) << toolName(Tool);
  }
}

TEST(PipelineFlags, SlamSpecificFlags) {
  PipelineArgs PA;
  EXPECT_EQ(parse(ToolKind::Slam,
                  {"p.c", "--lock", "Acq,Rel", "--entry", "start",
                   "--max-iters", "7", "-k", "2", "-j", "2",
                   "--prover-cache", "cache.log", "--no-incremental"},
                  PA),
            std::nullopt);
  EXPECT_TRUE(PA.HaveSpec);
  EXPECT_EQ(PA.Options.Cegar.EntryProc, "start");
  EXPECT_EQ(PA.Options.Cegar.MaxIterations, 7);
  EXPECT_EQ(PA.Options.C2bp.Cubes.MaxCubeLength, 2);
  EXPECT_EQ(PA.Options.C2bp.NumWorkers, 2);
  EXPECT_EQ(PA.Options.ProverCachePath, "cache.log");
  EXPECT_FALSE(PA.Options.Cegar.Incremental);
}

TEST(PipelineFlags, MalformedPropertyPairIsAUsageError) {
  PipelineArgs PA;
  EXPECT_EQ(parse(ToolKind::Slam, {"p.c", "--lock", "NoComma"}, PA), 2);
  PipelineArgs PB;
  EXPECT_EQ(parse(ToolKind::Slam, {"p.c", "--irp", ",Half"}, PB), 2);
}

TEST(PipelineFlags, C2bpSpecificFlags) {
  PipelineArgs PA;
  EXPECT_EQ(parse(ToolKind::C2bp,
                  {"p.c", "e.txt", "--no-shared-cache", "--no-cone",
                   "--alias", "andersen", "--stats", "--prover-cache",
                   "c.log"},
                  PA),
            std::nullopt);
  EXPECT_FALSE(PA.Options.C2bp.UseSharedProverCache);
  EXPECT_FALSE(PA.Options.C2bp.Cubes.ConeOfInfluence);
  EXPECT_EQ(PA.Options.C2bp.AliasMode, alias::Mode::Andersen);
  EXPECT_TRUE(PA.Options.PrintStats);
  EXPECT_EQ(PA.Options.ProverCachePath, "c.log");
}

TEST(PipelineFlags, BebopSpecificFlags) {
  PipelineArgs PA;
  EXPECT_EQ(parse(ToolKind::Bebop,
                  {"p.bp", "--entry", "go", "--invariant", "proc", "L1",
                   "--trace"},
                  PA),
            std::nullopt);
  EXPECT_EQ(PA.Options.Bebop.EntryProc, "go");
  EXPECT_EQ(PA.Options.Bebop.InvariantProc, "proc");
  EXPECT_EQ(PA.Options.Bebop.InvariantLabel, "L1");
  EXPECT_TRUE(PA.Options.Bebop.PrintTrace);
}

TEST(PipelineFlags, ToolsRejectEachOthersFlags) {
  // The per-tool sections must not leak: an abstraction knob means
  // nothing to bebop, a model-checking knob nothing to c2bp.
  PipelineArgs PA;
  EXPECT_EQ(parse(ToolKind::Bebop, {"p.bp", "-k", "3"}, PA), 2);
  PipelineArgs PB;
  EXPECT_EQ(parse(ToolKind::C2bp, {"p.c", "e.txt", "--trace"}, PB), 2);
  PipelineArgs PC;
  EXPECT_EQ(parse(ToolKind::Slam, {"p.c", "--alias", "das"}, PC), 2);
  PipelineArgs PD;
  EXPECT_EQ(parse(ToolKind::C2bp, {"p.c", "e.txt", "--no-incremental"},
                  PD),
            2);
}

TEST(PipelineFlags, HelpExitsZeroEverywhere) {
  for (ToolKind Tool :
       {ToolKind::Slam, ToolKind::C2bp, ToolKind::Bebop}) {
    PipelineArgs PA;
    EXPECT_EQ(parse(Tool, {"--help"}, PA), 0) << toolName(Tool);
    PipelineArgs PB;
    EXPECT_EQ(parse(Tool, {"-h"}, PB), 0) << toolName(Tool);
  }
}

TEST(PipelineFlags, UnknownOptionExitsTwoEverywhere) {
  for (ToolKind Tool :
       {ToolKind::Slam, ToolKind::C2bp, ToolKind::Bebop}) {
    PipelineArgs PA;
    EXPECT_EQ(parse(Tool, {"input", "--no-such-flag"}, PA), 2)
        << toolName(Tool);
  }
}

TEST(PipelineFlags, PositionalCountIsEnforced) {
  PipelineArgs PA;
  EXPECT_EQ(parse(ToolKind::Slam, {}, PA), 2);
  PipelineArgs PB;
  EXPECT_EQ(parse(ToolKind::Slam, {"a.c", "b.c"}, PB), 2);
  PipelineArgs PC;
  EXPECT_EQ(parse(ToolKind::C2bp, {"only-one.c"}, PC), 2);
  PipelineArgs PD;
  EXPECT_EQ(parse(ToolKind::Bebop, {"a.bp", "b.bp"}, PD), 2);
}

TEST(PipelineFlags, MissingFlagValueIsAUsageError) {
  PipelineArgs PA;
  EXPECT_EQ(parse(ToolKind::Slam, {"p.c", "--prover-cache"}, PA), 2);
  PipelineArgs PB;
  EXPECT_EQ(parse(ToolKind::Bebop, {"p.bp", "--invariant", "proc"}, PB),
            2);
  PipelineArgs PC;
  EXPECT_EQ(parse(ToolKind::Slam, {"p.c", "-k", "nonsense"}, PC), 2);
}
