//===- SoundnessTest.cpp - The Section 4.6 simulation theorem ----------------===//
//
// Checks C2bp's soundness statement dynamically: run the C program
// concretely while evaluating every predicate in each visited state, and
// verify that each emitted boolean transfer function is consistent with
// the observed transition —
//
//   * assignment `b_i := choose(pos, neg)`: if pos evaluates true over
//     the pre-state bits then the predicate must hold in the post-state;
//     if neg evaluates true it must be false (Section 4.3);
//   * a predicate NOT updated by the abstraction (optimization 2 / the
//     "unaffected" analysis) must have an unchanged concrete value;
//   * the assume guarding the taken branch must not evaluate to false
//     over the current bits (G's soundness, Section 4.4);
//   * the enforce invariant must hold in every visited state
//     (Section 5.1).
//
// Exercised on the paper's partition procedure over randomized input
// lists, and on randomly generated scalar programs with randomly chosen
// predicates (parameterized sweep).
//
//===----------------------------------------------------------------------===//

#include "bp/BPAst.h"
#include "c2bp/C2bp.h"
#include "cfront/Interp.h"
#include "cfront/Normalize.h"

#include <gtest/gtest.h>

#include <map>

using namespace slam;
using namespace slam::cfront;

namespace {

/// Kleene three-valued logic for evaluating boolean-program
/// expressions over concretely observed bits (U = the predicate is
/// undefined in this state, e.g. mentions a NULL dereference).
enum class Tri { F, T, U };

Tri triOf(const std::optional<Value> &V) {
  if (!V || V->K != Value::Kind::Int)
    return Tri::U;
  return V->I != 0 ? Tri::T : Tri::F;
}

Tri triNot(Tri A) {
  return A == Tri::U ? Tri::U : (A == Tri::T ? Tri::F : Tri::T);
}

Tri evalB(const bp::BExpr *E, const std::map<std::string, Tri> &Bits) {
  switch (E->Kind) {
  case bp::BExprKind::Const:
    return E->BoolValue ? Tri::T : Tri::F;
  case bp::BExprKind::Star:
    return Tri::U;
  case bp::BExprKind::VarRef: {
    auto It = Bits.find(E->Name);
    return It == Bits.end() ? Tri::U : It->second;
  }
  case bp::BExprKind::Not:
    return triNot(evalB(E->Ops[0], Bits));
  case bp::BExprKind::And: {
    Tri A = evalB(E->Ops[0], Bits), B = evalB(E->Ops[1], Bits);
    if (A == Tri::F || B == Tri::F)
      return Tri::F;
    if (A == Tri::U || B == Tri::U)
      return Tri::U;
    return Tri::T;
  }
  case bp::BExprKind::Or: {
    Tri A = evalB(E->Ops[0], Bits), B = evalB(E->Ops[1], Bits);
    if (A == Tri::T || B == Tri::T)
      return Tri::T;
    if (A == Tri::U || B == Tri::U)
      return Tri::U;
    return Tri::F;
  }
  case bp::BExprKind::Eq:
  case bp::BExprKind::Ne: {
    Tri A = evalB(E->Ops[0], Bits), B = evalB(E->Ops[1], Bits);
    if (A == Tri::U || B == Tri::U)
      return Tri::U;
    bool Same = A == B;
    return (E->Kind == bp::BExprKind::Eq) == Same ? Tri::T : Tri::F;
  }
  case bp::BExprKind::Choose: {
    Tri Pos = evalB(E->Ops[0], Bits);
    if (Pos == Tri::T)
      return Tri::T;
    Tri Neg = evalB(E->Ops[1], Bits);
    if (Pos == Tri::F && Neg == Tri::T)
      return Tri::F;
    return Tri::U;
  }
  }
  return Tri::U;
}

/// The lockstep checker: observes the concrete run and validates each
/// boolean transfer against it.
class SoundnessHook : public StepHook {
public:
  SoundnessHook(const Program &P, const bp::BProgram &BP,
                const c2bp::PredicateSet &Preds, Interpreter &Interp)
      : Prog(P), Preds(Preds), Interp(Interp) {
    indexOwners();
    indexBPStmts(BP);
  }

  int violations() const { return Violations; }
  int checkedTransfers() const { return Checked; }
  std::string firstViolation() const { return First; }

  void onStep(const Stmt &S, bool CondValue) override {
    const FuncDecl *F = Owner.at(&S);
    auto Bits = valuation(F);
    checkEnforce(F, Bits);
    if (S.Kind == CStmtKind::If || S.Kind == CStmtKind::While)
      checkBranchAssume(S, CondValue, Bits);
    if (S.Kind == CStmtKind::Assign)
      PreBits = Bits; // For afterStore.
  }

  void afterStore(const Stmt &S) override {
    if (S.Kind != CStmtKind::Assign)
      return;
    const FuncDecl *F = Owner.at(&S);
    auto Post = valuation(F);
    checkAssignTransfer(S, F, PreBits, Post);
  }

private:
  using Bits = std::map<std::string, Tri>;

  void indexOwners() {
    std::function<void(const Stmt *, const FuncDecl *)> Rec =
        [&](const Stmt *S, const FuncDecl *F) {
          Owner[S] = F;
          for (const Stmt *Sub : {S->Then, S->Else, S->Body, S->Sub})
            if (Sub)
              Rec(Sub, F);
          for (const Stmt *Sub : S->Stmts)
            Rec(Sub, F);
        };
    for (const FuncDecl *F : Prog.Functions)
      if (F->Body)
        Rec(F->Body, F);
  }

  void indexBPStmts(const bp::BProgram &BP) {
    std::function<void(const bp::BStmt *, const bp::BProc *)> Rec =
        [&](const bp::BStmt *S, const bp::BProc *Proc) {
          if (S->OriginId >= 0)
            ByOrigin[{Proc->Name, S->OriginId}].push_back(S);
          for (const bp::BStmt *Sub : {S->Then, S->Else, S->Body, S->Sub})
            if (Sub)
              Rec(Sub, Proc);
          for (const bp::BStmt *Sub : S->Stmts)
            Rec(Sub, Proc);
        };
    for (const bp::BProc *Proc : BP.Procs) {
      Enforce[Proc->Name] = Proc->Enforce;
      if (Proc->Body)
        Rec(Proc->Body, Proc);
    }
  }

  Bits valuation(const FuncDecl *F) const {
    Bits Out;
    for (logic::ExprRef E : Preds.Globals)
      Out[E->str()] = triOf(Interp.evalLogic(E));
    for (logic::ExprRef E : Preds.forProc(F->Name))
      Out[E->str()] = triOf(Interp.evalLogic(E));
    return Out;
  }

  void fail(const std::string &What) {
    ++Violations;
    if (First.empty())
      First = What;
  }

  void checkEnforce(const FuncDecl *F, const Bits &B) {
    auto It = Enforce.find(F->Name);
    if (It == Enforce.end() || !It->second)
      return;
    if (evalB(It->second, B) == Tri::F)
      fail("enforce invariant violated in " + F->Name);
  }

  void checkBranchAssume(const Stmt &S, bool Taken, const Bits &B) {
    auto It = ByOrigin.find({Owner.at(&S)->Name, static_cast<int>(S.Id)});
    if (It == ByOrigin.end())
      return;
    for (const bp::BStmt *BS : It->second) {
      if (BS->Kind != bp::BStmtKind::Assume ||
          BS->BranchTaken != (Taken ? 1 : 0))
        continue;
      ++Checked;
      if (evalB(BS->Cond, B) == Tri::F)
        fail("assume on the taken branch is false at C stmt " +
             std::to_string(S.Id) + " in " + Owner.at(&S)->Name);
    }
  }

  void checkAssignTransfer(const Stmt &S, const FuncDecl *F,
                           const Bits &Pre, const Bits &Post) {
    auto It = ByOrigin.find({F->Name, static_cast<int>(S.Id)});
    std::map<std::string, const bp::BExpr *> Updates;
    if (It != ByOrigin.end()) {
      for (const bp::BStmt *BS : It->second) {
        if (BS->Kind != bp::BStmtKind::Assign)
          continue;
        for (size_t I = 0; I != BS->Targets.size(); ++I)
          Updates[BS->Targets[I]] = BS->Exprs[I];
      }
    }
    for (const auto &[Name, PostVal] : Post) {
      auto PreIt = Pre.find(Name);
      Tri PreVal = PreIt == Pre.end() ? Tri::U : PreIt->second;
      auto U = Updates.find(Name);
      ++Checked;
      if (U == Updates.end()) {
        // Not updated: the abstraction claims the value is unchanged.
        if (PreVal != Tri::U && PostVal != Tri::U && PreVal != PostVal)
          fail("skipped predicate '" + Name + "' changed across C stmt " +
               std::to_string(S.Id) + " in " + F->Name);
        continue;
      }
      Tri Claimed = evalB(U->second, Pre);
      if (Claimed == Tri::T && PostVal == Tri::F)
        fail("transfer claims '" + Name + "' true but it is false after "
             "C stmt " + std::to_string(S.Id) + " in " + F->Name);
      if (Claimed == Tri::F && PostVal == Tri::T)
        fail("transfer claims '" + Name + "' false but it is true after "
             "C stmt " + std::to_string(S.Id) + " in " + F->Name);
    }
  }

  const Program &Prog;
  const c2bp::PredicateSet &Preds;
  Interpreter &Interp;
  std::map<const Stmt *, const FuncDecl *> Owner;
  std::map<std::pair<std::string, int>, std::vector<const bp::BStmt *>>
      ByOrigin;
  std::map<std::string, const bp::BExpr *> Enforce;
  Bits PreBits;
  int Violations = 0;
  int Checked = 0;
  std::string First;
};

//===----------------------------------------------------------------------===//
// Partition over randomized lists
//===----------------------------------------------------------------------===//

class PartitionSoundness : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSoundness, TransfersSimulateConcreteRuns) {
  const char *Source = R"(
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev, newl, nextcurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextcurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL)
        prev->next = nextcurr;
      if (curr == *l)
        *l = nextcurr;
      curr->next = newl;
      newl = curr;
    } else {
      prev = curr;
    }
    curr = nextcurr;
  }
  return newl;
}
)";
  const char *PredText = R"(
partition:
  curr == NULL, prev == NULL,
  curr->val > v, prev->val > v
)";
  DiagnosticEngine Diags;
  auto P = frontend(Source, Diags);
  ASSERT_TRUE(P != nullptr) << Diags.str();
  logic::LogicContext Ctx;
  auto Preds = c2bp::parsePredicateFile(Ctx, PredText, Diags);
  ASSERT_TRUE(Preds.has_value());
  auto BP = c2bp::abstractProgram(*P, *Preds, Ctx, Diags);
  ASSERT_TRUE(BP != nullptr);

  // A random list per seed.
  int Seed = GetParam();
  Interpreter I(*P, static_cast<uint64_t>(Seed));
  const RecordDecl *Rec = P->Types.findRecord("cell");
  int Head = 0;
  int Length = Seed % 6;
  for (int K = 0; K != Length; ++K) {
    int Node = I.allocStruct(Rec);
    I.setField(Node, "val", Value::makeInt((Seed * (K + 3)) % 17 - 8));
    I.setField(Node, "next",
               Head ? Value::makePtr(Head) : Value::null());
    Head = Node;
  }
  int LCell = I.allocCell(Head ? Value::makePtr(Head) : Value::null());

  SoundnessHook Hook(*P, *BP, *Preds, I);
  auto Out = I.run("partition",
                   {Value::makePtr(LCell), Value::makeInt(Seed % 7 - 3)},
                   &Hook);
  EXPECT_EQ(Out, Interpreter::Outcome::Finished);
  EXPECT_EQ(Hook.violations(), 0) << Hook.firstViolation();
  if (Length > 0) {
    EXPECT_GT(Hook.checkedTransfers(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Lists, PartitionSoundness,
                         ::testing::Range(1, 15));

//===----------------------------------------------------------------------===//
// Random scalar programs with random predicates
//===----------------------------------------------------------------------===//

struct Rng {
  uint64_t State;
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return static_cast<uint32_t>(State >> 32);
  }
  uint32_t range(uint32_t N) { return next() % N; }
};

std::string randomScalarProgram(Rng &R, int NumStmts) {
  static const char *Vars[] = {"a", "b", "c"};
  auto Var = [&R] { return std::string(Vars[R.range(3)]); };
  // A statement assigning to anything except \p Avoid (so loop
  // counters are never clobbered into divergence).
  auto Term = [&](const std::string &Pad, std::string &Out,
                  const std::string &Avoid = "") {
    std::string X = Var();
    while (X == Avoid)
      X = Var();
    switch (R.range(4)) {
    case 0:
      Out += Pad + X + " = " + std::to_string(int(R.range(11)) - 5) + ";\n";
      break;
    case 1:
      Out += Pad + X + " = " + Var() + " + " +
             std::to_string(1 + R.range(4)) + ";\n";
      break;
    case 2:
      Out += Pad + X + " = " + Var() + " - " + Var() + ";\n";
      break;
    default:
      Out += Pad + X + " = " + Var() + " * 2;\n";
      break;
    }
  };
  std::string Out = "void f(int a, int b) {\n  int c;\n  c = 0;\n";
  for (int I = 0; I != NumStmts; ++I) {
    switch (R.range(5)) {
    case 0: {
      Out += "  if (" + Var() +
             (R.range(2) ? " > " : " <= ") +
             std::to_string(int(R.range(9)) - 4) + ") {\n";
      Term("    ", Out);
      Out += "  } else {\n";
      Term("    ", Out);
      Out += "  }\n";
      break;
    }
    case 1: {
      // A bounded countdown loop.
      std::string X = Var();
      Out += "  if (" + X + " > 8) { " + X + " = 8; }\n";
      Out += "  while (" + X + " > 0) {\n    " + X + " = " + X +
             " - 1;\n";
      Term("    ", Out, /*Avoid=*/X);
      Out += "  }\n";
      break;
    }
    default:
      Term("  ", Out);
      break;
    }
  }
  Out += "}\n";
  return Out;
}

std::string randomPredicates(Rng &R, int Count) {
  static const char *Vars[] = {"a", "b", "c"};
  static const char *Ops[] = {"==", "<", "<=", ">", ">="};
  std::string Out = "f:\n";
  for (int I = 0; I != Count; ++I) {
    Out += std::string("  ") + Vars[R.range(3)] + " " + Ops[R.range(5)] +
           " ";
    Out += R.range(2) ? Vars[R.range(3)]
                      : std::to_string(int(R.range(9)) - 4);
    Out += "\n";
  }
  return Out;
}

class RandomSoundness : public ::testing::TestWithParam<int> {};

TEST_P(RandomSoundness, TransfersSimulateConcreteRuns) {
  int Seed = GetParam();
  Rng R{static_cast<uint64_t>(Seed) * 0x9e3779b97f4a7c15ULL + 7};
  std::string Source = randomScalarProgram(R, 4 + Seed % 5);
  std::string PredText = randomPredicates(R, 2 + Seed % 4);

  DiagnosticEngine Diags;
  auto P = frontend(Source, Diags);
  ASSERT_TRUE(P != nullptr) << Diags.str() << "\n" << Source;
  logic::LogicContext Ctx;
  auto Preds = c2bp::parsePredicateFile(Ctx, PredText, Diags);
  ASSERT_TRUE(Preds.has_value()) << PredText;
  c2bp::C2bpOptions Options;
  Options.Cubes.MaxCubeLength = 3;
  auto BP = c2bp::abstractProgram(*P, *Preds, Ctx, Diags, Options);
  ASSERT_TRUE(BP != nullptr);

  // Three concrete runs per program with different inputs.
  for (int Run = 0; Run != 3; ++Run) {
    Interpreter I(*P, static_cast<uint64_t>(Seed * 31 + Run));
    SoundnessHook Hook(*P, *BP, *Preds, I);
    int64_t A = (Seed * 7 + Run * 13) % 19 - 9;
    int64_t B = (Seed * 3 + Run * 5) % 15 - 7;
    auto Out = I.run("f", {Value::makeInt(A), Value::makeInt(B)}, &Hook);
    EXPECT_EQ(Out, Interpreter::Outcome::Finished) << Source;
    EXPECT_EQ(Hook.violations(), 0)
        << Hook.firstViolation() << "\nprogram:\n"
        << Source << "\npredicates:\n"
        << PredText << "\nabstraction:\n"
        << BP->str();
    EXPECT_GT(Hook.checkedTransfers(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, RandomSoundness,
                         ::testing::Range(1, 31));

} // namespace
