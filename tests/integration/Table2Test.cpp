//===- Table2Test.cpp - Full pipeline on the Section 6.2 programs -----------===//

#include "workloads/Workloads.h"

#include "bebop/Bebop.h"
#include "c2bp/C2bp.h"
#include "cfront/Normalize.h"
#include "prover/Prover.h"
#include "slam/Newton.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::workloads;

namespace {

struct RunOutcome {
  bool FrontendOk = false;
  bool Violated = true;
  bool LabelReachable = false;
  uint64_t ProverCalls = 0;
  std::vector<bebop::TraceStep> Trace;
  std::unique_ptr<cfront::Program> Prog;
};

RunOutcome runWorkload(const Workload &W, logic::LogicContext &Ctx,
                       int MaxCubeLength = 3) {
  RunOutcome Out;
  DiagnosticEngine Diags;
  Out.Prog = cfront::frontend(W.Source, Diags);
  EXPECT_TRUE(Out.Prog != nullptr) << W.Name << ": " << Diags.str();
  if (!Out.Prog)
    return Out;
  auto PS = c2bp::parsePredicateFile(Ctx, W.Predicates, Diags);
  EXPECT_TRUE(PS.has_value()) << W.Name << ": " << Diags.str();
  if (!PS)
    return Out;
  Out.FrontendOk = true;
  StatsRegistry Stats;
  c2bp::C2bpOptions Options;
  Options.Cubes.MaxCubeLength = MaxCubeLength;
  auto BP =
      c2bp::abstractProgram(*Out.Prog, *PS, Ctx, Diags, Options, &Stats);
  EXPECT_TRUE(BP != nullptr) << W.Name;
  bebop::Bebop Checker(*BP);
  auto R = Checker.run(W.Entry);
  Out.Violated = R.AssertViolated;
  Out.Trace = std::move(R.Trace);
  Out.ProverCalls = Stats.get("prover.calls");
  if (!W.InvariantLabel.empty())
    Out.LabelReachable = Checker.labelReachable(W.Entry, W.InvariantLabel);
  return Out;
}

TEST(Table2, KmpBoundsValidate) {
  logic::LogicContext Ctx;
  auto R = runWorkload(kmpWorkload(), Ctx);
  ASSERT_TRUE(R.FrontendOk);
  EXPECT_FALSE(R.Violated);
  EXPECT_TRUE(R.LabelReachable);
  EXPECT_GT(R.ProverCalls, 0u);
}

TEST(Table2, QsortBoundsValidate) {
  logic::LogicContext Ctx;
  auto R = runWorkload(qsortWorkload(), Ctx);
  ASSERT_TRUE(R.FrontendOk);
  EXPECT_FALSE(R.Violated);
  EXPECT_TRUE(R.LabelReachable);
}

TEST(Table2, PartitionInvariantHolds) {
  logic::LogicContext Ctx;
  auto R = runWorkload(partitionWorkload(), Ctx, /*MaxCubeLength=*/-1);
  ASSERT_TRUE(R.FrontendOk);
  EXPECT_FALSE(R.Violated);
  EXPECT_TRUE(R.LabelReachable);
}

TEST(Table2, ListfindValidates) {
  logic::LogicContext Ctx;
  auto R = runWorkload(listfindWorkload(), Ctx);
  ASSERT_TRUE(R.FrontendOk);
  EXPECT_FALSE(R.Violated);
}

TEST(Table2, ReverseAbstractCounterexampleIsInfeasible) {
  // With the paper's seven predicates our (locally computed) transfer
  // functions cannot establish the shape invariant outright; the
  // toolkit's guarantee still holds: the abstract counterexample is
  // rejected by Newton, so no spurious error is ever reported.
  logic::LogicContext Ctx;
  auto R = runWorkload(reverseWorkload(), Ctx);
  ASSERT_TRUE(R.FrontendOk);
  if (!R.Violated)
    return; // Even better: the invariant was established.
  ASSERT_FALSE(R.Trace.empty());
  prover::Prover P(Ctx);
  c2bp::PredicateSet Existing;
  auto NR =
      slamtool::analyzeTrace(*R.Prog, R.Trace, Ctx, P, Existing);
  EXPECT_FALSE(NR.Feasible)
      << "the abstract trace must not be concretely executable";
}

TEST(Table2, AllRowsRunThroughC2bp) {
  // The table itself: every row abstracts without diagnostics and
  // reports nonzero prover work.
  logic::LogicContext Ctx;
  for (const Workload *W : table2Workloads()) {
    auto R = runWorkload(*W, Ctx);
    EXPECT_TRUE(R.FrontendOk) << W->Name;
    EXPECT_GT(R.ProverCalls, 0u) << W->Name;
  }
}

} // namespace
