//===- AliasOracleTest.cpp - Syntactic alias rules -------------------------===//

#include "logic/AliasOracle.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::logic;

namespace {

class AliasOracleTest : public ::testing::Test {
protected:
  ExprRef loc(const std::string &Text) {
    DiagnosticEngine Diags;
    ExprRef E = parseExpr(Ctx, Text, Diags);
    EXPECT_TRUE(E && E->isLocation()) << Text;
    return E;
  }

  LogicContext Ctx;
  ShapeAliasOracle Oracle;
};

TEST_F(AliasOracleTest, IdenticalMustAlias) {
  EXPECT_EQ(Oracle.alias(loc("x"), loc("x")), AliasResult::MustAlias);
  EXPECT_EQ(Oracle.alias(loc("p->val"), loc("p->val")),
            AliasResult::MustAlias);
}

TEST_F(AliasOracleTest, DistinctVariablesNeverAlias) {
  EXPECT_EQ(Oracle.alias(loc("x"), loc("y")), AliasResult::NoAlias);
}

TEST_F(AliasOracleTest, FieldsOfDifferentNamesNeverAlias) {
  EXPECT_EQ(Oracle.alias(loc("p->val"), loc("q->next")),
            AliasResult::NoAlias);
}

TEST_F(AliasOracleTest, SameFieldDifferentBaseMayAlias) {
  EXPECT_EQ(Oracle.alias(loc("p->val"), loc("q->val")),
            AliasResult::MayAlias);
}

TEST_F(AliasOracleTest, FieldNeverAliasesVariableOrArrayElement) {
  EXPECT_EQ(Oracle.alias(loc("p->val"), loc("x")), AliasResult::NoAlias);
  EXPECT_EQ(Oracle.alias(loc("a[i]"), loc("p->val")), AliasResult::NoAlias);
}

TEST_F(AliasOracleTest, DerefMayAliasVariable) {
  EXPECT_EQ(Oracle.alias(loc("*p"), loc("x")), AliasResult::MayAlias);
  EXPECT_EQ(Oracle.alias(loc("*p"), loc("*q")), AliasResult::MayAlias);
}

TEST_F(AliasOracleTest, ArrayElements) {
  EXPECT_EQ(Oracle.alias(loc("a[i]"), loc("a[j]")), AliasResult::MayAlias);
  EXPECT_EQ(Oracle.alias(loc("a[i]"), loc("b[i]")), AliasResult::NoAlias);
  EXPECT_EQ(Oracle.alias(loc("a[i]"), loc("x")), AliasResult::NoAlias);
}

} // namespace
