//===- ExprTest.cpp - Interning and smart-constructor laws ----------------===//

#include "logic/Expr.h"

#include <gtest/gtest.h>

using namespace slam::logic;

namespace {

class ExprTest : public ::testing::Test {
protected:
  LogicContext Ctx;
};

TEST_F(ExprTest, InterningGivesPointerEquality) {
  ExprRef A = Ctx.add(Ctx.var("x"), Ctx.intLit(1));
  ExprRef B = Ctx.add(Ctx.var("x"), Ctx.intLit(1));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, Ctx.add(Ctx.var("x"), Ctx.intLit(2)));
}

TEST_F(ExprTest, ConstantFoldingArith) {
  EXPECT_EQ(Ctx.add(Ctx.intLit(2), Ctx.intLit(3)), Ctx.intLit(5));
  EXPECT_EQ(Ctx.sub(Ctx.intLit(2), Ctx.intLit(3)), Ctx.intLit(-1));
  EXPECT_EQ(Ctx.mul(Ctx.intLit(4), Ctx.intLit(3)), Ctx.intLit(12));
  EXPECT_EQ(Ctx.neg(Ctx.intLit(7)), Ctx.intLit(-7));
  EXPECT_EQ(Ctx.neg(Ctx.neg(Ctx.var("x"))), Ctx.var("x"));
}

TEST_F(ExprTest, AdditiveIdentities) {
  ExprRef X = Ctx.var("x");
  EXPECT_EQ(Ctx.add(X, Ctx.intLit(0)), X);
  EXPECT_EQ(Ctx.add(Ctx.intLit(0), X), X);
  EXPECT_EQ(Ctx.mul(X, Ctx.intLit(1)), X);
  EXPECT_EQ(Ctx.mul(X, Ctx.intLit(0)), Ctx.intLit(0));
}

TEST_F(ExprTest, ConstantFoldingCompare) {
  EXPECT_TRUE(Ctx.lt(Ctx.intLit(1), Ctx.intLit(2))->isTrue());
  EXPECT_TRUE(Ctx.ge(Ctx.intLit(1), Ctx.intLit(2))->isFalse());
  EXPECT_TRUE(Ctx.eq(Ctx.var("x"), Ctx.var("x"))->isTrue());
  EXPECT_TRUE(Ctx.ne(Ctx.var("x"), Ctx.var("x"))->isFalse());
  EXPECT_TRUE(Ctx.le(Ctx.var("x"), Ctx.var("x"))->isTrue());
}

TEST_F(ExprTest, NotPushesThroughComparisons) {
  ExprRef Cmp = Ctx.lt(Ctx.var("x"), Ctx.intLit(5));
  EXPECT_EQ(Ctx.notE(Cmp), Ctx.ge(Ctx.var("x"), Ctx.intLit(5)));
  EXPECT_EQ(Ctx.notE(Ctx.notE(Cmp)), Cmp);
  EXPECT_TRUE(Ctx.notE(Ctx.trueE())->isFalse());
}

TEST_F(ExprTest, AndOrUnits) {
  ExprRef P = Ctx.lt(Ctx.var("x"), Ctx.intLit(5));
  EXPECT_EQ(Ctx.andE(P, Ctx.trueE()), P);
  EXPECT_TRUE(Ctx.andE(P, Ctx.falseE())->isFalse());
  EXPECT_EQ(Ctx.orE(P, Ctx.falseE()), P);
  EXPECT_TRUE(Ctx.orE(P, Ctx.trueE())->isTrue());
  EXPECT_EQ(Ctx.andE(P, P), P);
}

TEST_F(ExprTest, AndFlattensAndDetectsContradiction) {
  ExprRef P = Ctx.lt(Ctx.var("x"), Ctx.intLit(5));
  ExprRef Q = Ctx.eq(Ctx.var("y"), Ctx.intLit(0));
  ExprRef Nested = Ctx.andE(Ctx.andE(P, Q), P);
  EXPECT_EQ(Nested->kind(), ExprKind::And);
  EXPECT_EQ(Nested->numOperands(), 2u);
  EXPECT_TRUE(Ctx.andE(P, Ctx.notE(P))->isFalse());
  EXPECT_TRUE(Ctx.orE(P, Ctx.notE(P))->isTrue());
}

TEST_F(ExprTest, AddrOfDerefFolds) {
  ExprRef P = Ctx.var("p");
  EXPECT_EQ(Ctx.addrOf(Ctx.deref(P)), P);
  EXPECT_EQ(Ctx.deref(Ctx.addrOf(Ctx.var("x"))), Ctx.var("x"));
}

TEST_F(ExprTest, PrintsCLikeSyntax) {
  ExprRef Pred = Ctx.gt(Ctx.field(Ctx.deref(Ctx.var("curr")), "val"),
                        Ctx.var("v"));
  EXPECT_EQ(Pred->str(), "curr->val > v");

  ExprRef Deep = Ctx.orE(
      Ctx.andE(Ctx.ne(Ctx.var("curr"), Ctx.nullLit()),
               Ctx.le(Ctx.var("x"), Ctx.intLit(0))),
      Ctx.eq(Ctx.var("prev"), Ctx.nullLit()));
  EXPECT_EQ(Deep->str(), "(curr != NULL && x <= 0) || prev == NULL");

  EXPECT_EQ(Ctx.deref(Ctx.var("p"))->str(), "*p");
  EXPECT_EQ(Ctx.addrOf(Ctx.var("p"))->str(), "&p");
  EXPECT_EQ(Ctx.index(Ctx.var("a"), Ctx.add(Ctx.var("i"), Ctx.intLit(1)))
                ->str(),
            "a[i + 1]");
  EXPECT_EQ(Ctx.field(Ctx.var("s"), "f")->str(), "s.f");
}

TEST_F(ExprTest, PrintsArithmeticPrecedence) {
  ExprRef E = Ctx.mul(Ctx.add(Ctx.var("x"), Ctx.intLit(1)), Ctx.var("y"));
  EXPECT_EQ(E->str(), "(x + 1) * y");
  ExprRef F = Ctx.add(Ctx.mul(Ctx.var("x"), Ctx.intLit(2)), Ctx.var("y"));
  EXPECT_EQ(F->str(), "x * 2 + y");
}

TEST_F(ExprTest, SizeCountsNodes) {
  EXPECT_EQ(Ctx.var("x")->size(), 1u);
  EXPECT_EQ(Ctx.add(Ctx.var("x"), Ctx.intLit(1))->size(), 3u);
  // p->val is Field(Deref(Var)) = 3 nodes.
  EXPECT_EQ(Ctx.field(Ctx.deref(Ctx.var("p")), "val")->size(), 3u);
}

} // namespace
