//===- ExprUtilsTest.cpp - vars/drfs/locations/substitution ---------------===//

#include "logic/ExprUtils.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::logic;

namespace {

class ExprUtilsTest : public ::testing::Test {
protected:
  ExprRef parse(const std::string &Text) {
    DiagnosticEngine Diags;
    ExprRef E = parseExpr(Ctx, Text, Diags);
    EXPECT_TRUE(E != nullptr) << Diags.str();
    return E;
  }

  LogicContext Ctx;
};

TEST_F(ExprUtilsTest, CollectVars) {
  auto Vars = collectVars(parse("curr->val > v && prev == NULL"));
  EXPECT_EQ(Vars, (std::set<std::string>{"curr", "v", "prev"}));
}

TEST_F(ExprUtilsTest, CollectDerefedVars) {
  // The paper's drfs(e): variables dereferenced in e.
  auto Drfs = collectDerefedVars(parse("*q <= y && p->val > a[i]"));
  EXPECT_EQ(Drfs, (std::set<std::string>{"q", "p", "a"}));
  EXPECT_TRUE(collectDerefedVars(parse("x + y < 3")).empty());
}

TEST_F(ExprUtilsTest, CollectLocationsIncludesNested) {
  auto Locs = collectLocations(parse("prev->val > v"));
  // prev->val, prev and v, in first-occurrence order.
  ASSERT_EQ(Locs.size(), 3u);
  EXPECT_EQ(Locs[0]->str(), "prev->val");
  EXPECT_EQ(Locs[1]->str(), "prev");
  EXPECT_EQ(Locs[2]->str(), "v");
}

TEST_F(ExprUtilsTest, Mentions) {
  ExprRef Phi = parse("p->val > v");
  EXPECT_TRUE(mentions(Phi, Ctx.var("p")));
  EXPECT_TRUE(mentions(Phi, Ctx.field(Ctx.deref(Ctx.var("p")), "val")));
  EXPECT_FALSE(mentions(Phi, Ctx.var("q")));
}

TEST_F(ExprUtilsTest, SubstituteVariable) {
  // The paper's WP example: (x+1) < 5 simplifies to x < 4 only after the
  // prover; structurally [x+1/x] gives x + 1 < 5.
  ExprRef Phi = parse("x < 5");
  ExprRef After = substitute(Ctx, Phi, Ctx.var("x"),
                             Ctx.add(Ctx.var("x"), Ctx.intLit(1)));
  EXPECT_EQ(After, parse("x + 1 < 5"));
}

TEST_F(ExprUtilsTest, SubstituteLocation) {
  // prev = curr: (prev == NULL)[curr/prev] = (curr == NULL).
  ExprRef Phi = parse("prev == NULL");
  EXPECT_EQ(substitute(Ctx, Phi, Ctx.var("prev"), Ctx.var("curr")),
            parse("curr == NULL"));
  // (prev->val > v)[curr/prev] = (curr->val > v).
  EXPECT_EQ(substitute(Ctx, parse("prev->val > v"), Ctx.var("prev"),
                       Ctx.var("curr")),
            parse("curr->val > v"));
}

TEST_F(ExprUtilsTest, SubstituteFoldsThroughSmartConstructors) {
  ExprRef Phi = parse("x < 5");
  ExprRef After = substitute(Ctx, Phi, Ctx.var("x"), Ctx.intLit(3));
  EXPECT_TRUE(After->isTrue());
}

TEST_F(ExprUtilsTest, SubstituteAllIsSimultaneous) {
  // Swapping x and y must not cascade.
  ExprRef Phi = parse("x < y");
  ExprRef After = substituteAll(
      Ctx, Phi, {{Ctx.var("x"), Ctx.var("y")}, {Ctx.var("y"), Ctx.var("x")}});
  EXPECT_EQ(After, parse("y < x"));
}

TEST_F(ExprUtilsTest, CloneAcrossContexts) {
  LogicContext Other;
  DiagnosticEngine Diags;
  ExprRef Phi = parseExpr(Other, "p->val > v + 1", Diags);
  ExprRef Here = clone(Ctx, Phi);
  EXPECT_EQ(Here, parse("p->val > v + 1"));
}

} // namespace
