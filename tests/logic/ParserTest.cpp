//===- ParserTest.cpp - Predicate-language parser --------------------------===//

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::logic;

namespace {

class ParserTest : public ::testing::Test {
protected:
  ExprRef parse(const std::string &Text) {
    DiagnosticEngine Diags;
    ExprRef E = parseExpr(Ctx, Text, Diags);
    EXPECT_TRUE(E != nullptr) << Diags.str();
    return E;
  }

  void expectError(const std::string &Text) {
    DiagnosticEngine Diags;
    ExprRef E = parseExpr(Ctx, Text, Diags);
    EXPECT_EQ(E, nullptr) << "parsed: " << (E ? E->str() : "");
    EXPECT_TRUE(Diags.hasErrors());
  }

  LogicContext Ctx;
};

TEST_F(ParserTest, PaperFigure1Predicates) {
  EXPECT_EQ(parse("curr == NULL"), Ctx.eq(Ctx.var("curr"), Ctx.nullLit()));
  EXPECT_EQ(parse("prev == NULL"), Ctx.eq(Ctx.var("prev"), Ctx.nullLit()));
  EXPECT_EQ(parse("curr->val > v"),
            Ctx.gt(Ctx.field(Ctx.deref(Ctx.var("curr")), "val"),
                   Ctx.var("v")));
}

TEST_F(ParserTest, PaperFigure2Predicates) {
  EXPECT_EQ(parse("*q <= y"),
            Ctx.le(Ctx.deref(Ctx.var("q")), Ctx.var("y")));
  EXPECT_EQ(parse("y >= 0"), Ctx.ge(Ctx.var("y"), Ctx.intLit(0)));
  EXPECT_EQ(parse("y == l1"), Ctx.eq(Ctx.var("y"), Ctx.var("l1")));
}

TEST_F(ParserTest, Precedence) {
  // * binds tighter than +, + tighter than <, < tighter than &&.
  EXPECT_EQ(parse("x + 2 * y < 5 && z == 0"),
            Ctx.andE(Ctx.lt(Ctx.add(Ctx.var("x"),
                                    Ctx.mul(Ctx.intLit(2), Ctx.var("y"))),
                            Ctx.intLit(5)),
                     Ctx.eq(Ctx.var("z"), Ctx.intLit(0))));
  // && binds tighter than ||.
  ExprRef E = parse("a == 1 || b == 2 && c == 3");
  ASSERT_EQ(E->kind(), ExprKind::Or);
  EXPECT_EQ(E->op(1)->kind(), ExprKind::And);
}

TEST_F(ParserTest, UnaryOperators) {
  EXPECT_EQ(parse("!(x < 5)"), Ctx.ge(Ctx.var("x"), Ctx.intLit(5)));
  EXPECT_EQ(parse("-x < 0"), Ctx.lt(Ctx.neg(Ctx.var("x")), Ctx.intLit(0)));
  EXPECT_EQ(parse("**pp == 3"),
            Ctx.eq(Ctx.deref(Ctx.deref(Ctx.var("pp"))), Ctx.intLit(3)));
  EXPECT_EQ(parse("&x == p"),
            Ctx.eq(Ctx.addrOf(Ctx.var("x")), Ctx.var("p")));
}

TEST_F(ParserTest, BangOverTermMeansEqualsZero) {
  EXPECT_EQ(parse("!x"), Ctx.eq(Ctx.var("x"), Ctx.intLit(0)));
}

TEST_F(ParserTest, PostfixChains) {
  EXPECT_EQ(parse("p->next->val == 0"),
            Ctx.eq(Ctx.field(Ctx.deref(Ctx.field(Ctx.deref(Ctx.var("p")),
                                                 "next")),
                             "val"),
                   Ctx.intLit(0)));
  EXPECT_EQ(parse("a[i] <= a[j + 1]"),
            Ctx.le(Ctx.index(Ctx.var("a"), Ctx.var("i")),
                   Ctx.index(Ctx.var("a"),
                             Ctx.add(Ctx.var("j"), Ctx.intLit(1)))));
  EXPECT_EQ(parse("s.f == 1"),
            Ctx.eq(Ctx.field(Ctx.var("s"), "f"), Ctx.intLit(1)));
}

TEST_F(ParserTest, BooleanLiterals) {
  EXPECT_TRUE(parse("true")->isTrue());
  EXPECT_TRUE(parse("false")->isFalse());
}

TEST_F(ParserTest, RoundTripThroughPrinter) {
  for (const char *Text :
       {"curr->val > v", "(curr != NULL && x <= 0) || prev == NULL",
        "a[i + 1] <= n", "*q <= y", "&x == p", "x % 2 == 0",
        "h->next == hnext"}) {
    ExprRef E = parse(Text);
    EXPECT_EQ(parse(E->str()), E) << "round-trip failed for " << Text;
  }
}

TEST_F(ParserTest, Errors) {
  expectError("");
  expectError("x +");
  expectError("(x == 1");
  expectError("x == 1 extra");
  expectError("x = 1");  // Single '=' is not a predicate operator.
  expectError("p->5");   // Field must be an identifier.
  expectError("&5 == p");// Address of a non-location.
  expectError("a[1 == 2"); // Missing ']'.
}

} // namespace
