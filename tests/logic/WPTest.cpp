//===- WPTest.cpp - Weakest preconditions (Sections 4.1, 4.2) -------------===//

#include "logic/WP.h"

#include "logic/ExprUtils.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::logic;

namespace {

class WPTest : public ::testing::Test {
protected:
  WPTest() : Engine(Ctx, Oracle) {}

  ExprRef parse(const std::string &Text) {
    DiagnosticEngine Diags;
    ExprRef E = parseExpr(Ctx, Text, Diags);
    EXPECT_TRUE(E != nullptr) << Diags.str();
    return E;
  }

  ExprRef wp(const std::string &Lhs, const std::string &Rhs,
             const std::string &Phi) {
    return Engine.assignment(parse(Lhs), parse(Rhs), parse(Phi));
  }

  LogicContext Ctx;
  ShapeAliasOracle Oracle;
  WPEngine Engine;
};

TEST_F(WPTest, ScalarAssignmentIsSubstitution) {
  // The paper: WP(x=x+1, x<5) = (x+1) < 5.
  EXPECT_EQ(wp("x", "x + 1", "x < 5"), parse("x + 1 < 5"));
}

TEST_F(WPTest, UnrelatedPredicateUnchanged) {
  EXPECT_EQ(wp("x", "3", "y < 5"), parse("y < 5"));
}

TEST_F(WPTest, PaperMorrisExample) {
  // WP(x = 3, *p > 5) = (&x == p && 3 > 5) || (&x != p && *p > 5).
  // Our smart constructors fold 3 > 5 to false, killing that disjunct.
  ExprRef Result = wp("x", "3", "*p > 5");
  EXPECT_EQ(Result, parse("&x != p && *p > 5"));
}

TEST_F(WPTest, StoreThroughPointer) {
  // WP(*p = 3, x > 5): if p aliases x then 3 > 5 (false), else x > 5.
  ExprRef Result = wp("*p", "3", "x > 5");
  EXPECT_EQ(Result, parse("p != &x && x > 5"));
  // WP(*p = 7, x > 5): aliased case becomes 7 > 5 = true.
  EXPECT_EQ(wp("*p", "7", "x > 5"), parse("p == &x || (p != &x && x > 5)"));
}

TEST_F(WPTest, PartitionPrevEqualsCurr) {
  // Figure 1: prev=curr gives {prev==NULL} := {curr==NULL} and
  // {prev->val>v} := {curr->val>v} — the WPs are exactly the curr
  // predicates because none of the list pointers is address-taken...
  // With only shape information prev->val may alias curr->val through
  // the base pointers, but the substitution of prev by curr happens
  // first (it is a must-alias), after which no prev location remains.
  EXPECT_EQ(wp("prev", "curr", "prev == NULL"), parse("curr == NULL"));
  EXPECT_EQ(wp("prev", "curr", "prev->val > v"), parse("curr->val > v"));
}

TEST_F(WPTest, FieldStoreRespectsFieldNames) {
  // *x.next = ... cannot touch ->val predicates.
  ExprRef Result = wp("p->next", "q", "p->val > v");
  EXPECT_EQ(Result, parse("p->val > v"));
}

TEST_F(WPTest, FieldStoreSameFieldSplitsOnBase) {
  // WP(p->val = 0, q->val > v): guard is p == q (same field, bases).
  ExprRef Result = wp("p->val", "0", "q->val > v");
  // Aliased disjunct: 0 > v; non-aliased keeps q->val > v.
  EXPECT_EQ(Result,
            parse("(p == q && 0 > v) || (p != q && q->val > v)"));
}

TEST_F(WPTest, ArrayStoreGuardsOnIndex) {
  // WP(a[i] = 0, a[j] > 5) splits on i == j.
  ExprRef Result = wp("a[i]", "0", "a[j] > 5");
  EXPECT_EQ(Result, parse("i != j && a[j] > 5"));
  // Same index: must alias (identical location).
  EXPECT_EQ(wp("a[i]", "7", "a[i] > 5"), Ctx.trueE());
}

TEST_F(WPTest, DistinctArraysDoNotInterfere) {
  EXPECT_EQ(wp("a[i]", "0", "b[j] > 5"), parse("b[j] > 5"));
}

TEST_F(WPTest, AddressOfIsInvariantUnderAssignment) {
  // Assigning to x does not change &x.
  EXPECT_EQ(wp("x", "1", "&x == p"), parse("&x == p"));
}

TEST_F(WPTest, GuardEqSpecializations) {
  EXPECT_EQ(Engine.guardEq(parse("a[i]"), parse("a[j]")), parse("i == j"));
  EXPECT_EQ(Engine.guardEq(parse("*p"), parse("*q")), parse("p == q"));
  EXPECT_EQ(Engine.guardEq(parse("*p"), parse("x")), parse("p == &x"));
  EXPECT_EQ(Engine.guardEq(parse("p->f"), parse("q->f")), parse("p == q"));
  EXPECT_TRUE(Engine.guardEq(parse("x"), parse("x"))->isTrue());
}

TEST_F(WPTest, SubstituteLocSkipsExactAddrOf) {
  ExprRef Phi = parse("&x == p && x < 5");
  ExprRef After = substituteLoc(Ctx, Phi, Ctx.var("x"), Ctx.intLit(3));
  EXPECT_EQ(After, parse("&x == p"));
}

} // namespace
