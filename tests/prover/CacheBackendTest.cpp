//===- CacheBackendTest.cpp - Persistent prover-cache behavior -------------===//
//
// The on-disk result log under the shared prover cache: structural
// fingerprints as cross-run keys, the round trip through flush/load,
// every corruption mode (bad header, version skew, torn tail,
// conflicting entries) degrading to a cold start instead of a crash,
// and the SharedProverCache integration — disk hits, opposite-polarity
// derivation, and Reservation abandonment.
//
//===----------------------------------------------------------------------===//

#include "prover/CacheBackend.h"

#include "logic/ExprUtils.h"
#include "logic/Parser.h"
#include "prover/Prover.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace slam;
using namespace slam::prover;
using namespace slam::logic;

namespace {

/// A per-test scratch file that starts absent and is deleted on exit.
class ScratchFile {
public:
  explicit ScratchFile(const char *Name)
      : P(::testing::TempDir() + Name) {
    std::remove(P.c_str());
  }
  ~ScratchFile() { std::remove(P.c_str()); }

  const std::string &path() const { return P; }

  void write(const std::string &Text) {
    std::ofstream Out(P, std::ios::trunc);
    Out << Text;
  }

  std::string read() const {
    std::ifstream In(P);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    return Buf.str();
  }

private:
  std::string P;
};

ExprRef parse(LogicContext &Ctx, const std::string &Text) {
  DiagnosticEngine Diags;
  ExprRef E = parseExpr(Ctx, Text, Diags);
  EXPECT_TRUE(E != nullptr) << Diags.str();
  return E;
}

support::Fingerprint fpOf(LogicContext &Ctx, const std::string &Text) {
  return structuralFingerprint(parse(Ctx, Text));
}

const char *ValidHeader = "{\"format\":\"slam-prover-cache\",\"version\":1}";

} // namespace

TEST(StructuralFingerprint, StableAcrossContexts) {
  // Hash-consed ids depend on interning order, so they cannot key a
  // cross-run store; the structural fingerprint must not.
  LogicContext A, B;
  parse(A, "z == 9"); // Skew B's id assignment relative to A's.
  EXPECT_EQ(fpOf(A, "x + 1 < y"), fpOf(B, "x + 1 < y"));
  EXPECT_FALSE(fpOf(A, "x + 1 < y") == fpOf(A, "x + 2 < y"));
  EXPECT_FALSE(fpOf(A, "x < y") == fpOf(A, "y < x"));
}

TEST(FileCacheBackend, MissingFileIsACleanColdStart) {
  ScratchFile F("cache_cold.log");
  FileCacheBackend B(F.path());
  EXPECT_TRUE(B.loadedCleanly());
  EXPECT_EQ(B.loadedEntries(), 0u);
  LogicContext Ctx;
  EXPECT_FALSE(B.probe(fpOf(Ctx, "x == 1"), true).has_value());
}

TEST(FileCacheBackend, RoundTripThroughDisk) {
  ScratchFile F("cache_roundtrip.log");
  LogicContext Ctx;
  support::Fingerprint P1 = fpOf(Ctx, "x == 1");
  support::Fingerprint P2 = fpOf(Ctx, "y < 0 && y > 0");
  {
    FileCacheBackend B(F.path());
    B.record(P1, true, Satisfiability::Sat);
    B.record(P2, false, Satisfiability::Unsat);
    EXPECT_EQ(B.pendingEntries(), 2u);
    std::string Err;
    ASSERT_TRUE(B.flush(&Err)) << Err;
    EXPECT_EQ(B.pendingEntries(), 0u);
  }
  FileCacheBackend B(F.path());
  EXPECT_TRUE(B.loadedCleanly());
  EXPECT_EQ(B.loadedEntries(), 2u);
  EXPECT_EQ(B.probe(P1, true), Satisfiability::Sat);
  EXPECT_EQ(B.probe(P2, false), Satisfiability::Unsat);
  // The other polarity and unseen formulas stay misses.
  EXPECT_FALSE(B.probe(P1, false).has_value());
  EXPECT_FALSE(B.probe(fpOf(Ctx, "x == 2"), true).has_value());
}

TEST(FileCacheBackend, UnknownIsNotPersisted) {
  ScratchFile F("cache_unknown.log");
  LogicContext Ctx;
  FileCacheBackend B(F.path());
  B.record(fpOf(Ctx, "x == 1"), true, Satisfiability::Unknown);
  EXPECT_EQ(B.pendingEntries(), 0u);
  EXPECT_FALSE(B.probe(fpOf(Ctx, "x == 1"), true).has_value());
}

TEST(FileCacheBackend, DuplicateRecordAppendsOnce) {
  ScratchFile F("cache_dup.log");
  LogicContext Ctx;
  support::Fingerprint FP = fpOf(Ctx, "x == 1");
  {
    FileCacheBackend B(F.path());
    B.record(FP, true, Satisfiability::Sat);
    B.record(FP, true, Satisfiability::Sat);
    EXPECT_EQ(B.pendingEntries(), 1u);
    ASSERT_TRUE(B.flush(nullptr));
  }
  // A warm run re-recording a loaded fact appends nothing.
  FileCacheBackend B(F.path());
  B.record(FP, true, Satisfiability::Sat);
  EXPECT_EQ(B.pendingEntries(), 0u);
  ASSERT_TRUE(B.flush(nullptr));
  FileCacheBackend C(F.path());
  EXPECT_EQ(C.loadedEntries(), 1u);
}

TEST(FileCacheBackend, CorruptHeaderFallsBackColdAndHeals) {
  ScratchFile F("cache_badheader.log");
  F.write("not a cache file\n");
  LogicContext Ctx;
  support::Fingerprint FP = fpOf(Ctx, "x == 1");
  {
    FileCacheBackend B(F.path());
    EXPECT_FALSE(B.loadedCleanly());
    EXPECT_EQ(B.loadedEntries(), 0u);
    // The run proceeds; flushing rewrites the file in the current
    // format rather than appending after garbage.
    B.record(FP, true, Satisfiability::Unsat);
    ASSERT_TRUE(B.flush(nullptr));
  }
  FileCacheBackend B(F.path());
  EXPECT_TRUE(B.loadedCleanly());
  EXPECT_EQ(B.loadedEntries(), 1u);
  EXPECT_EQ(B.probe(FP, true), Satisfiability::Unsat);
}

TEST(FileCacheBackend, FutureVersionIsNotTrusted) {
  ScratchFile F("cache_version.log");
  LogicContext Ctx;
  support::Fingerprint FP = fpOf(Ctx, "x == 1");
  F.write("{\"format\":\"slam-prover-cache\",\"version\":2}\n" +
          FP.hex() + " + S\n");
  FileCacheBackend B(F.path());
  EXPECT_FALSE(B.loadedCleanly());
  EXPECT_EQ(B.loadedEntries(), 0u);
  EXPECT_FALSE(B.probe(FP, true).has_value());
}

TEST(FileCacheBackend, TornTailKeepsIntactPrefixAndHeals) {
  ScratchFile F("cache_torn.log");
  LogicContext Ctx;
  support::Fingerprint P1 = fpOf(Ctx, "x == 1");
  support::Fingerprint P2 = fpOf(Ctx, "x == 2");
  // A crash mid-append leaves a torn final line; everything before it
  // is trustworthy.
  F.write(std::string(ValidHeader) + "\n" + P1.hex() + " + S\n" +
          P2.hex() + " - U\n" + P1.hex().substr(0, 11));
  {
    FileCacheBackend B(F.path());
    EXPECT_FALSE(B.loadedCleanly());
    EXPECT_EQ(B.loadedEntries(), 2u);
    EXPECT_EQ(B.probe(P1, true), Satisfiability::Sat);
    EXPECT_EQ(B.probe(P2, false), Satisfiability::Unsat);
    // Even with nothing new recorded, the flush rewrites (and thereby
    // heals) the damaged file — appending would strand entries behind
    // the torn line.
    ASSERT_TRUE(B.flush(nullptr));
  }
  FileCacheBackend B(F.path());
  EXPECT_TRUE(B.loadedCleanly());
  EXPECT_EQ(B.loadedEntries(), 2u);
}

TEST(FileCacheBackend, ConflictingEntriesDropTheKey) {
  ScratchFile F("cache_conflict.log");
  LogicContext Ctx;
  support::Fingerprint P1 = fpOf(Ctx, "x == 1");
  support::Fingerprint P2 = fpOf(Ctx, "x == 2");
  F.write(std::string(ValidHeader) + "\n" + P1.hex() + " + S\n" +
          P2.hex() + " + S\n" + P1.hex() + " + U\n");
  FileCacheBackend B(F.path());
  EXPECT_FALSE(B.loadedCleanly());
  // Neither answer for the conflicted key can be trusted; the other
  // key survives.
  EXPECT_FALSE(B.probe(P1, true).has_value());
  EXPECT_EQ(B.probe(P2, true), Satisfiability::Sat);
}

TEST(SharedProverCache, AnswersFromDiskWithoutReRecording) {
  ScratchFile F("cache_diskhit.log");
  LogicContext Ctx;
  ExprRef Phi = parse(Ctx, "x < 4");
  FileCacheBackend B(F.path());
  B.record(structuralFingerprint(Phi), true, Satisfiability::Sat);
  ASSERT_TRUE(B.flush(nullptr));

  // A fresh run: the in-memory cache is empty, the disk is warm.
  FileCacheBackend Warm(F.path());
  ASSERT_EQ(Warm.loadedEntries(), 1u);
  SharedProverCache C(&Warm);
  auto L = C.lookupOrReserve(Phi);
  EXPECT_EQ(L.Kind, SharedProverCache::Outcome::DiskHit);
  EXPECT_EQ(L.Value, Satisfiability::Sat);
  EXPECT_FALSE(static_cast<bool>(L.Slot));
  // Results that came from the backend are not appended back to it.
  EXPECT_EQ(Warm.pendingEntries(), 0u);
  // The disk answer is now resident in memory.
  EXPECT_EQ(C.lookupOrReserve(Phi).Kind, SharedProverCache::Outcome::Hit);
}

TEST(SharedProverCache, DerivesFromOppositePolarityOnDisk) {
  // The in-memory cache derives Sat(!phi) from Unsat(phi) at publish
  // time; that derivation is never persisted, so a warm run must
  // rediscover it by probing the opposite polarity.
  ScratchFile F("cache_derive.log");
  LogicContext Ctx;
  ExprRef Phi = parse(Ctx, "y == 3 && y == 4");
  FileCacheBackend B(F.path());
  // Stored fact: the *negative* polarity of the base formula is Unsat.
  B.record(structuralFingerprint(Phi), false, Satisfiability::Unsat);
  SharedProverCache C(&B);
  auto L = C.lookupOrReserve(Phi);
  EXPECT_EQ(L.Kind, SharedProverCache::Outcome::DiskHit);
  EXPECT_EQ(L.Value, Satisfiability::Sat);
  EXPECT_EQ(B.pendingEntries(), 1u); // The probe-time record() above.
}

TEST(SharedProverCache, PublishRecordsToBackend) {
  ScratchFile F("cache_publish.log");
  LogicContext Ctx;
  ExprRef Phi = parse(Ctx, "x == 1");
  FileCacheBackend B(F.path());
  SharedProverCache C(&B);
  auto L = C.lookupOrReserve(Phi);
  ASSERT_EQ(L.Kind, SharedProverCache::Outcome::Miss);
  ASSERT_TRUE(static_cast<bool>(L.Slot));
  L.Slot.publish(Satisfiability::Unsat);
  EXPECT_EQ(B.pendingEntries(), 1u);
  EXPECT_EQ(B.probe(structuralFingerprint(Phi), true),
            Satisfiability::Unsat);
  EXPECT_EQ(C.lookupOrReserve(Phi).Kind, SharedProverCache::Outcome::Hit);
}

TEST(SharedProverCache, AbandonedReservationFreesTheSlot) {
  // Destroying an unpublished Reservation (an exception, an Unknown
  // budget bailout) must return the slot to Empty so the query can be
  // retried — not wedge it in-flight forever.
  LogicContext Ctx;
  ExprRef Phi = parse(Ctx, "x == 1");
  SharedProverCache C;
  {
    auto L = C.lookupOrReserve(Phi);
    ASSERT_EQ(L.Kind, SharedProverCache::Outcome::Miss);
    // L.Slot destroyed unpublished.
  }
  auto L2 = C.lookupOrReserve(Phi);
  ASSERT_EQ(L2.Kind, SharedProverCache::Outcome::Miss);
  L2.Slot.publish(Satisfiability::Sat);
  auto L3 = C.lookupOrReserve(Phi);
  EXPECT_EQ(L3.Kind, SharedProverCache::Outcome::Hit);
  EXPECT_EQ(L3.Value, Satisfiability::Sat);
}

TEST(SharedProverCache, MovedFromReservationDoesNotAbandon) {
  LogicContext Ctx;
  ExprRef Phi = parse(Ctx, "x == 1");
  SharedProverCache C;
  auto L = C.lookupOrReserve(Phi);
  ASSERT_EQ(L.Kind, SharedProverCache::Outcome::Miss);
  {
    SharedProverCache::Reservation Moved = std::move(L.Slot);
    EXPECT_FALSE(static_cast<bool>(L.Slot));
    Moved.publish(Satisfiability::Sat);
  }
  // The publish through the moved-to reservation stuck.
  EXPECT_EQ(C.lookupOrReserve(Phi).Kind, SharedProverCache::Outcome::Hit);
}
