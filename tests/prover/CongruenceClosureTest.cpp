//===- CongruenceClosureTest.cpp - EUF -------------------------------------===//

#include "prover/CongruenceClosure.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::prover;
using namespace slam::logic;

namespace {

class CCTest : public ::testing::Test {
protected:
  ExprRef parse(const std::string &Text) {
    DiagnosticEngine Diags;
    ExprRef E = parseExpr(Ctx, Text, Diags);
    EXPECT_TRUE(E != nullptr) << Diags.str();
    return E;
  }

  LogicContext Ctx;
  CongruenceClosure CC;
};

TEST_F(CCTest, SameExprSameId) {
  EXPECT_EQ(CC.addTerm(parse("x")), CC.addTerm(parse("x")));
  EXPECT_NE(CC.addTerm(parse("x")), CC.addTerm(parse("y")));
}

TEST_F(CCTest, TransitivityOfEquality) {
  int X = CC.addTerm(parse("x")), Y = CC.addTerm(parse("y")),
      Z = CC.addTerm(parse("z"));
  EXPECT_TRUE(CC.assertEqual(X, Y));
  EXPECT_TRUE(CC.assertEqual(Y, Z));
  EXPECT_TRUE(CC.areEqual(X, Z));
}

TEST_F(CCTest, CongruenceThroughFields) {
  // p == q implies p->val == q->val (footnote 3's contrapositive rule).
  int P = CC.addTerm(parse("p")), Q = CC.addTerm(parse("q"));
  int PV = CC.addTerm(parse("p->val")), QV = CC.addTerm(parse("q->val"));
  EXPECT_FALSE(CC.areEqual(PV, QV));
  EXPECT_TRUE(CC.assertEqual(P, Q));
  EXPECT_TRUE(CC.areEqual(PV, QV));
}

TEST_F(CCTest, CongruenceAddedAfterMerge) {
  // Terms added after the merge still land in the merged class.
  int P = CC.addTerm(parse("p")), Q = CC.addTerm(parse("q"));
  EXPECT_TRUE(CC.assertEqual(P, Q));
  int PV = CC.addTerm(parse("*p")), QV = CC.addTerm(parse("*q"));
  EXPECT_TRUE(CC.areEqual(PV, QV));
}

TEST_F(CCTest, DisequalityConflict) {
  int X = CC.addTerm(parse("x")), Y = CC.addTerm(parse("y"));
  EXPECT_TRUE(CC.assertDisequal(X, Y));
  EXPECT_FALSE(CC.assertEqual(X, Y));
  EXPECT_TRUE(CC.inConflict());
}

TEST_F(CCTest, DisequalityThroughCongruence) {
  // f(x) != f(y) together with x == y is a conflict.
  int FX = CC.addTerm(parse("*x")), FY = CC.addTerm(parse("*y"));
  int X = CC.addTerm(parse("x")), Y = CC.addTerm(parse("y"));
  EXPECT_TRUE(CC.assertDisequal(FX, FY));
  EXPECT_FALSE(CC.assertEqual(X, Y));
}

TEST_F(CCTest, NestedCongruence) {
  // a == b implies a->next->val == b->next->val (two levels).
  int A = CC.addTerm(parse("a")), B = CC.addTerm(parse("b"));
  int AV = CC.addTerm(parse("a->next->val"));
  int BV = CC.addTerm(parse("b->next->val"));
  EXPECT_TRUE(CC.assertEqual(A, B));
  EXPECT_TRUE(CC.areEqual(AV, BV));
}

TEST_F(CCTest, IntLiteralsShareClassesByValue) {
  int A = CC.addTerm(parse("5")), B = CC.addTerm(parse("5"));
  EXPECT_TRUE(CC.areEqual(A, B));
  EXPECT_FALSE(CC.areEqual(CC.addTerm(parse("5")), CC.addTerm(parse("6"))));
}

TEST_F(CCTest, ArithmeticTermsCongruent) {
  // x == y implies x + 1 == y + 1 when + is uninterpreted.
  int X = CC.addTerm(parse("x")), Y = CC.addTerm(parse("y"));
  int X1 = CC.addTerm(parse("x + 1")), Y1 = CC.addTerm(parse("y + 1"));
  EXPECT_TRUE(CC.assertEqual(X, Y));
  EXPECT_TRUE(CC.areEqual(X1, Y1));
}

} // namespace
