//===- OracleSweepTest.cpp - Prover vs. brute-force enumeration -------------===//
//
// Property test: random formulas over three integer variables with small
// constants, decided both by the prover and by exhaustive enumeration
// over a finite grid. The directions checked:
//
//   * prover says Valid  => no counterexample exists on the grid
//     (soundness of Valid — the answer C2bp's correctness rests on);
//   * prover says Unsat  => no satisfying point exists on the grid;
//   * enumeration finds a model => the prover must not claim Unsat.
//
//===----------------------------------------------------------------------===//

#include "logic/Expr.h"
#include "prover/Prover.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::prover;
using logic::ExprKind;
using logic::ExprRef;

namespace {

struct Rng {
  uint64_t State;
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return static_cast<uint32_t>(State >> 32);
  }
  uint32_t range(uint32_t N) { return next() % N; }
};

/// Random linear term over x, y, z and constants in [-3, 3].
ExprRef randomTerm(logic::LogicContext &Ctx, Rng &R, int Depth) {
  static const char *Vars[] = {"x", "y", "z"};
  if (Depth == 0 || R.range(3) == 0) {
    if (R.range(2))
      return Ctx.var(Vars[R.range(3)]);
    return Ctx.intLit(static_cast<int>(R.range(7)) - 3);
  }
  ExprRef L = randomTerm(Ctx, R, Depth - 1);
  ExprRef Rhs = randomTerm(Ctx, R, Depth - 1);
  switch (R.range(3)) {
  case 0:
    return Ctx.add(L, Rhs);
  case 1:
    return Ctx.sub(L, Rhs);
  default:
    return Ctx.mul(Ctx.intLit(static_cast<int>(R.range(3)) + 1), Rhs);
  }
}

ExprRef randomFormula(logic::LogicContext &Ctx, Rng &R, int Depth) {
  if (Depth == 0 || R.range(3) == 0) {
    ExprRef L = randomTerm(Ctx, R, 1);
    ExprRef Rhs = randomTerm(Ctx, R, 1);
    switch (R.range(6)) {
    case 0:
      return Ctx.eq(L, Rhs);
    case 1:
      return Ctx.ne(L, Rhs);
    case 2:
      return Ctx.lt(L, Rhs);
    case 3:
      return Ctx.le(L, Rhs);
    case 4:
      return Ctx.gt(L, Rhs);
    default:
      return Ctx.ge(L, Rhs);
    }
  }
  switch (R.range(3)) {
  case 0:
    return Ctx.notE(randomFormula(Ctx, R, Depth - 1));
  case 1:
    return Ctx.andE(randomFormula(Ctx, R, Depth - 1),
                    randomFormula(Ctx, R, Depth - 1));
  default:
    return Ctx.orE(randomFormula(Ctx, R, Depth - 1),
                   randomFormula(Ctx, R, Depth - 1));
  }
}

/// Exhaustive evaluation over an assignment.
int64_t evalTerm(ExprRef E, int64_t X, int64_t Y, int64_t Z) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return E->intValue();
  case ExprKind::Var:
    return E->name() == "x" ? X : E->name() == "y" ? Y : Z;
  case ExprKind::Neg:
    return -evalTerm(E->op(0), X, Y, Z);
  case ExprKind::Add:
    return evalTerm(E->op(0), X, Y, Z) + evalTerm(E->op(1), X, Y, Z);
  case ExprKind::Sub:
    return evalTerm(E->op(0), X, Y, Z) - evalTerm(E->op(1), X, Y, Z);
  case ExprKind::Mul:
    return evalTerm(E->op(0), X, Y, Z) * evalTerm(E->op(1), X, Y, Z);
  default:
    assert(false && "unexpected term kind");
    return 0;
  }
}

bool evalFormula(ExprRef E, int64_t X, int64_t Y, int64_t Z) {
  switch (E->kind()) {
  case ExprKind::BoolLit:
    return E->boolValue();
  case ExprKind::Eq:
    return evalTerm(E->op(0), X, Y, Z) == evalTerm(E->op(1), X, Y, Z);
  case ExprKind::Ne:
    return evalTerm(E->op(0), X, Y, Z) != evalTerm(E->op(1), X, Y, Z);
  case ExprKind::Lt:
    return evalTerm(E->op(0), X, Y, Z) < evalTerm(E->op(1), X, Y, Z);
  case ExprKind::Le:
    return evalTerm(E->op(0), X, Y, Z) <= evalTerm(E->op(1), X, Y, Z);
  case ExprKind::Gt:
    return evalTerm(E->op(0), X, Y, Z) > evalTerm(E->op(1), X, Y, Z);
  case ExprKind::Ge:
    return evalTerm(E->op(0), X, Y, Z) >= evalTerm(E->op(1), X, Y, Z);
  case ExprKind::Not:
    return !evalFormula(E->op(0), X, Y, Z);
  case ExprKind::And:
    for (ExprRef Op : E->operands())
      if (!evalFormula(Op, X, Y, Z))
        return false;
    return true;
  case ExprKind::Or:
    for (ExprRef Op : E->operands())
      if (evalFormula(Op, X, Y, Z))
        return true;
    return false;
  default:
    assert(false && "unexpected formula kind");
    return false;
  }
}

/// Does any grid point in [-Lim, Lim]^3 satisfy the formula?
bool gridSat(ExprRef E, int64_t Lim) {
  for (int64_t X = -Lim; X <= Lim; ++X)
    for (int64_t Y = -Lim; Y <= Lim; ++Y)
      for (int64_t Z = -Lim; Z <= Lim; ++Z)
        if (evalFormula(E, X, Y, Z))
          return true;
  return false;
}

class ProverOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProverOracleSweep, AgreesWithEnumeration) {
  Rng R{static_cast<uint64_t>(GetParam()) * 0x2545F4914F6CDD1DULL + 3};
  logic::LogicContext Ctx;
  prover::Prover P(Ctx);

  for (int Trial = 0; Trial != 8; ++Trial) {
    ExprRef Phi = randomFormula(Ctx, R, 3);
    if (!Phi->isFormula())
      continue;
    bool HasModel = Phi->isTrue() || (!Phi->isFalse() && gridSat(Phi, 8));
    Satisfiability S = P.checkSat(Phi);
    if (HasModel)
      EXPECT_NE(S, Satisfiability::Unsat)
          << Phi->str() << " has a model on the grid";
    if (S == Satisfiability::Unsat)
      EXPECT_FALSE(HasModel) << Phi->str();

    // Validity of an implication between two random formulas.
    ExprRef Psi = randomFormula(Ctx, R, 2);
    Validity V = P.implies(Phi, Psi);
    if (V == Validity::Valid) {
      // No grid point may satisfy Phi && !Psi.
      EXPECT_FALSE(gridSat(Ctx.andE(Phi, Ctx.notE(Psi)), 8))
          << Phi->str() << "  =>  " << Psi->str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProverOracleSweep,
                         ::testing::Range(0, 20));

} // namespace
