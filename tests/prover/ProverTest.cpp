//===- ProverTest.cpp - Validity queries as C2bp issues them ---------------===//

#include "prover/Prover.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::prover;
using namespace slam::logic;

namespace {

class ProverTest : public ::testing::Test {
protected:
  ProverTest() : P(Ctx, &Stats) {}

  ExprRef parse(const std::string &Text) {
    DiagnosticEngine Diags;
    ExprRef E = parseExpr(Ctx, Text, Diags);
    EXPECT_TRUE(E != nullptr) << Diags.str();
    return E;
  }

  Validity implies(const std::string &A, const std::string &C) {
    return P.implies(parse(A), parse(C));
  }

  LogicContext Ctx;
  StatsRegistry Stats;
  Prover P;
};

TEST_F(ProverTest, PaperSection41Example) {
  // (x == 2) implies (x < 4); the F_V search relies on this query.
  EXPECT_EQ(implies("x == 2", "x < 4"), Validity::Valid);
  EXPECT_EQ(implies("x < 4", "x == 2"), Validity::Invalid);
}

TEST_F(ProverTest, TautologiesAndContradictions) {
  EXPECT_EQ(P.checkSat(Ctx.trueE()), Satisfiability::Sat);
  EXPECT_EQ(P.checkSat(Ctx.falseE()), Satisfiability::Unsat);
  EXPECT_EQ(implies("x == 1", "x == 1"), Validity::Valid);
  EXPECT_EQ(implies("x == 1 && x == 2", "y == 3"), Validity::Valid);
}

TEST_F(ProverTest, DisjunctiveReasoning) {
  EXPECT_EQ(implies("x == 1 || x == 2", "x >= 1"), Validity::Valid);
  EXPECT_EQ(implies("x == 1 || x == 2", "x <= 1"), Validity::Invalid);
  EXPECT_EQ(implies("x >= 1 && x <= 2", "x == 1 || x == 2"),
            Validity::Valid);
}

TEST_F(ProverTest, PartitionInvariantImpliesNoAlias) {
  // Section 2.2's decision-procedure step: the Bebop invariant at L
  // implies prev != curr.
  EXPECT_EQ(implies("curr != NULL && curr->val > v && "
                    "(prev->val <= v || prev == NULL)",
                    "prev != curr"),
            Validity::Valid);
}

TEST_F(ProverTest, WeakestPreconditionStrengthening) {
  // E(F_V(x < 4)) = (x == 2) from E = {x < 5, x == 2}: check both
  // candidate cubes the search would try.
  EXPECT_EQ(implies("x < 5", "x < 4"), Validity::Invalid);
  EXPECT_EQ(implies("x == 2", "x < 4"), Validity::Valid);
  EXPECT_EQ(implies("x < 5 && x == 2", "x < 4"), Validity::Valid);
}

TEST_F(ProverTest, Figure2AbstractionQueries) {
  // E(F_V(*p + x <= 0)) = (*p <= 0) && (x == 0).
  EXPECT_EQ(implies("*p <= 0 && x == 0", "*p + x <= 0"), Validity::Valid);
  EXPECT_EQ(implies("*p <= 0", "*p + x <= 0"), Validity::Invalid);
  EXPECT_EQ(implies("x == 0", "*p + x <= 0"), Validity::Invalid);
  // And the negative side: !(*p <= 0) && x == 0 implies !(*p + x <= 0).
  EXPECT_EQ(implies("!(*p <= 0) && x == 0", "!(*p + x <= 0)"),
            Validity::Valid);
}

TEST_F(ProverTest, CachingCountsHits) {
  EXPECT_EQ(implies("x == 2", "x < 4"), Validity::Valid);
  uint64_t Calls = P.numCalls();
  EXPECT_EQ(implies("x == 2", "x < 4"), Validity::Valid);
  EXPECT_EQ(P.numCalls(), Calls);
  EXPECT_GE(P.numCacheHits(), 1u);
  EXPECT_EQ(Stats.get("prover.cache_hits"), P.numCacheHits());
}

TEST_F(ProverTest, NegationCanonicalCacheDerivesValidity) {
  // The cube search issues validity pairs: checkSat(psi) right after
  // checkSat(!psi). Unsat(psi) makes !psi valid, so the second query
  // must be answered from the cache under its own statistic.
  ExprRef Phi = parse("x == 1 && x == 2"); // Theory-unsat conjunction.
  EXPECT_EQ(P.checkSat(Phi), Satisfiability::Unsat);
  uint64_t Calls = P.numCalls();
  EXPECT_EQ(P.checkSat(Ctx.notE(Phi)), Satisfiability::Sat);
  EXPECT_EQ(P.numCalls(), Calls); // Derived, not recomputed.
  EXPECT_EQ(P.numNegCacheHits(), 1u);
  EXPECT_EQ(Stats.get("prover.neg_cache_hits"), 1u);
  // Counted apart from exact-entry hits.
  EXPECT_EQ(Stats.get("prover.cache_hits"), P.numCacheHits());
}

TEST_F(ProverTest, NegationCacheDoesNotDeriveFromSat) {
  // Sat(psi) says nothing about !psi; the opposite polarity must be
  // computed, not guessed.
  ExprRef Phi = parse("x == 1 && y == 2");
  EXPECT_EQ(P.checkSat(Phi), Satisfiability::Sat);
  uint64_t Calls = P.numCalls();
  EXPECT_EQ(P.checkSat(Ctx.notE(Phi)), Satisfiability::Sat);
  EXPECT_EQ(P.numCalls(), Calls + 1);
  EXPECT_EQ(P.numNegCacheHits(), 0u);
}

TEST_F(ProverTest, DeepFormulaUsesNoRecursion) {
  // ~100k-node alternating !/ || chain. The skeleton encoder used to
  // recurse per node and overflowed the stack on formulas this deep;
  // the explicit worklist must handle it, and unit propagation must
  // resolve the resulting Tseitin chain without quadratic re-sweeps.
  ExprRef A = parse("x > 0");
  ExprRef Phi = parse("y > 0");
  for (int I = 0; I != 50000; ++I)
    Phi = Ctx.notE(Ctx.orE(A, Phi));
  // Satisfiable: x <= 0 collapses every level to a bare negation, and
  // an even number of negations leaves y > 0, which y = 1 satisfies.
  EXPECT_EQ(P.checkSat(Phi), Satisfiability::Sat);
}

TEST_F(ProverTest, CachingCanBeDisabled) {
  P.setCachingEnabled(false);
  EXPECT_EQ(implies("y == 2", "y < 4"), Validity::Valid);
  uint64_t Calls = P.numCalls();
  EXPECT_EQ(implies("y == 2", "y < 4"), Validity::Valid);
  EXPECT_EQ(P.numCalls(), Calls + 1);
}

TEST_F(ProverTest, PointerReasoning) {
  EXPECT_EQ(implies("p == q", "p->val == q->val"), Validity::Valid);
  EXPECT_EQ(implies("p->val != q->val", "p != q"), Validity::Valid);
  EXPECT_EQ(implies("p != q", "p->val != q->val"), Validity::Invalid);
  EXPECT_EQ(implies("p == &x && q == &x", "p == q"), Validity::Valid);
}

TEST_F(ProverTest, HeapShapePredicates) {
  // From the mark/reverse example's predicate set.
  EXPECT_EQ(implies("this == h && this->next == hnext",
                    "h->next == hnext"),
            Validity::Valid);
  EXPECT_EQ(implies("prev == h && h != 0", "prev != 0"), Validity::Valid);
}

TEST_F(ProverTest, ModularArithmeticIsUninterpretedButCongruent) {
  EXPECT_EQ(implies("x == y", "x % 2 == y % 2"), Validity::Valid);
  // No arithmetic meaning: cannot conclude x % 2 < 2.
  EXPECT_EQ(implies("x >= 0", "x % 2 < 2"), Validity::Invalid);
}

// Property-style sweep: k and k+1 bounds interact correctly for a range
// of constants, exercising normalization of strict/non-strict bounds.
class ProverBoundsSweep : public ProverTest,
                          public ::testing::WithParamInterface<int> {};

TEST_P(ProverBoundsSweep, StrictVsNonStrict) {
  int K = GetParam();
  std::string KS = std::to_string(K);
  std::string K1 = std::to_string(K + 1);
  // x > k <=> x >= k+1 over the integers.
  EXPECT_EQ(implies("x > " + KS, "x >= " + K1), Validity::Valid);
  EXPECT_EQ(implies("x >= " + K1, "x > " + KS), Validity::Valid);
  // x > k does not imply x > k+1.
  EXPECT_EQ(implies("x > " + KS, "x > " + K1), Validity::Invalid);
}

INSTANTIATE_TEST_SUITE_P(Bounds, ProverBoundsSweep,
                         ::testing::Values(-7, -1, 0, 1, 5, 42, 1000));

} // namespace
