//===- RationalTest.cpp ----------------------------------------------------===//

#include "prover/Rational.h"

#include <gtest/gtest.h>

using namespace slam::prover;

TEST(Rational, NormalizesOnConstruction) {
  Rational R(6, 4);
  EXPECT_EQ(R.num(), 3);
  EXPECT_EQ(R.den(), 2);
  Rational N(3, -6);
  EXPECT_EQ(N.num(), -1);
  EXPECT_EQ(N.den(), 2);
}

TEST(Rational, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(0), Rational(0, 5));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, IntegerPredicate) {
  EXPECT_TRUE(Rational(8, 4).isInteger());
  EXPECT_FALSE(Rational(8, 3).isInteger());
}

TEST(Rational, Printing) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-7, 2).str(), "-7/2");
}
