//===- RationalTest.cpp ----------------------------------------------------===//

#include "prover/Rational.h"

#include <gtest/gtest.h>

using namespace slam::prover;

TEST(Rational, NormalizesOnConstruction) {
  Rational R(6, 4);
  EXPECT_EQ(R.num(), 3);
  EXPECT_EQ(R.den(), 2);
  Rational N(3, -6);
  EXPECT_EQ(N.num(), -1);
  EXPECT_EQ(N.den(), 2);
}

TEST(Rational, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(0), Rational(0, 5));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, IntegerPredicate) {
  EXPECT_TRUE(Rational(8, 4).isInteger());
  EXPECT_FALSE(Rational(8, 3).isInteger());
}

TEST(Rational, Printing) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-7, 2).str(), "-7/2");
}

TEST(Rational, OverflowPoisonFromArithmetic) {
  // INT64_MAX/2 * 3 does not fit; the product must poison, not truncate.
  Rational Big(INT64_MAX / 2);
  Rational P = Big * Rational(3);
  EXPECT_TRUE(P.isOverflow());
  EXPECT_FALSE(P.isZero());
  EXPECT_EQ(P.str(), "overflow");

  // Addition of same-sign huge values.
  EXPECT_TRUE((Big + Big + Big).isOverflow());

  // Negating INT64_MIN has no 64-bit representation.
  EXPECT_TRUE((-Rational(INT64_MIN)).isOverflow());

  // Huge denominators that cannot cancel poison too.
  Rational Tiny(1, INT64_MAX);
  EXPECT_TRUE((Tiny * Tiny).isOverflow());
}

TEST(Rational, OverflowPoisonIsSticky) {
  Rational P = Rational::overflow();
  EXPECT_TRUE((P + Rational(1)).isOverflow());
  EXPECT_TRUE((Rational(1) + P).isOverflow());
  EXPECT_TRUE((P - P).isOverflow());
  EXPECT_TRUE((P * Rational(0)).isOverflow());
  EXPECT_TRUE((Rational(1) / P).isOverflow());
  EXPECT_TRUE((-P).isOverflow());
  Rational Acc(5);
  Acc += P;
  EXPECT_TRUE(Acc.isOverflow());
}

TEST(Rational, OverflowDoesNotFireInRange) {
  // Values at the edge of the range are still exact.
  Rational Max(INT64_MAX);
  EXPECT_EQ(Max + Rational(0), Max);
  EXPECT_EQ((Max / Max), Rational(1));
  EXPECT_FALSE((Max - Rational(1)).isOverflow());
  Rational Min(INT64_MIN);
  EXPECT_FALSE((Min + Rational(1)).isOverflow());
  EXPECT_EQ(Min * Rational(1), Min);
}

TEST(Rational, DivideAssign) {
  Rational R(3, 2);
  R /= Rational(3);
  EXPECT_EQ(R, Rational(1, 2));
  R /= Rational(1, 4);
  EXPECT_EQ(R, Rational(2));
}
