//===- SatTest.cpp - DPLL core ---------------------------------------------===//

#include "prover/Sat.h"

#include <gtest/gtest.h>

using namespace slam::prover;

namespace {

TEST(Sat, EmptyInstanceIsSat) {
  SatSolver S;
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(Sat, UnitClause) {
  SatSolver S;
  int A = S.newVar();
  S.addClause({A + 1});
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
}

TEST(Sat, ContradictoryUnits) {
  SatSolver S;
  int A = S.newVar();
  S.addClause({A + 1});
  S.addClause({-(A + 1)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, EmptyClauseIsUnsat) {
  SatSolver S;
  S.addClause({});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, RequiresPropagationChain) {
  // (a) (-a v b) (-b v c) forces c.
  SatSolver S;
  int A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({A + 1});
  S.addClause({-(A + 1), B + 1});
  S.addClause({-(B + 1), C + 1});
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(C));
}

TEST(Sat, PigeonholeTwoIntoOne) {
  // Two pigeons, one hole: p1 v-bar, classic tiny unsat.
  SatSolver S;
  int P1 = S.newVar(), P2 = S.newVar();
  S.addClause({P1 + 1});       // Pigeon 1 in hole.
  S.addClause({P2 + 1});       // Pigeon 2 in hole.
  S.addClause({-(P1 + 1), -(P2 + 1)}); // Not both.
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, ReSolveAfterBlockingClause) {
  SatSolver S;
  int A = S.newVar(), B = S.newVar();
  S.addClause({A + 1, B + 1});
  ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
  // Block the found model, forcing a different one.
  std::vector<int> Block;
  Block.push_back(S.modelValue(A) ? -(A + 1) : (A + 1));
  Block.push_back(S.modelValue(B) ? -(B + 1) : (B + 1));
  S.addClause(Block);
  ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
  // Block again; after at most three models the instance exhausts.
  for (int I = 0; I != 3; ++I) {
    if (S.solve() == SatSolver::Result::Unsat)
      return;
    std::vector<int> Next;
    Next.push_back(S.modelValue(A) ? -(A + 1) : (A + 1));
    Next.push_back(S.modelValue(B) ? -(B + 1) : (B + 1));
    S.addClause(Next);
  }
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

} // namespace
