//===- SimplexTest.cpp - LIA decision procedure ----------------------------===//

#include "prover/Simplex.h"

#include <gtest/gtest.h>

using namespace slam::prover;

namespace {

TEST(Simplex, TrivialBounds) {
  Simplex S;
  int X = S.newVar();
  EXPECT_TRUE(S.assertLower(X, Rational(3)));
  EXPECT_TRUE(S.assertUpper(X, Rational(5)));
  EXPECT_EQ(S.check(), LinResult::Sat);
  EXPECT_GE(S.value(X), Rational(3));
  EXPECT_LE(S.value(X), Rational(5));
}

TEST(Simplex, ImmediateBoundClash) {
  Simplex S;
  int X = S.newVar();
  EXPECT_TRUE(S.assertLower(X, Rational(5)));
  EXPECT_FALSE(S.assertUpper(X, Rational(3)));
}

TEST(Simplex, RowConstraintSat) {
  // x + y <= 4, x >= 2, y >= 1.
  Simplex S;
  int X = S.newVar(), Y = S.newVar();
  int Sum = S.defineVar({{X, Rational(1)}, {Y, Rational(1)}});
  EXPECT_TRUE(S.assertUpper(Sum, Rational(4)));
  EXPECT_TRUE(S.assertLower(X, Rational(2)));
  EXPECT_TRUE(S.assertLower(Y, Rational(1)));
  EXPECT_EQ(S.check(), LinResult::Sat);
  EXPECT_LE(S.value(X) + S.value(Y), Rational(4));
}

TEST(Simplex, RowConstraintUnsat) {
  // x + y <= 3, x >= 2, y >= 2.
  Simplex S;
  int X = S.newVar(), Y = S.newVar();
  int Sum = S.defineVar({{X, Rational(1)}, {Y, Rational(1)}});
  EXPECT_TRUE(S.assertUpper(Sum, Rational(3)));
  EXPECT_TRUE(S.assertLower(X, Rational(2)));
  EXPECT_TRUE(S.assertLower(Y, Rational(2)));
  EXPECT_EQ(S.check(), LinResult::Unsat);
}

TEST(Simplex, ChainOfInequalities) {
  // x < y < z < x is infeasible: encoded as x <= y-1 etc.
  Simplex S;
  int X = S.newVar(), Y = S.newVar(), Z = S.newVar();
  auto Less = [&S](int A, int B) {
    int D = S.defineVar({{A, Rational(1)}, {B, Rational(-1)}});
    return S.assertUpper(D, Rational(-1));
  };
  EXPECT_TRUE(Less(X, Y));
  EXPECT_TRUE(Less(Y, Z));
  EXPECT_TRUE(Less(Z, X));
  EXPECT_EQ(S.check(), LinResult::Unsat);
}

TEST(Simplex, IntegralityBranchAndBound) {
  // 2x = 3 has a rational solution but no integer one.
  Simplex S;
  int X = S.newVar(/*Integer=*/true);
  int Row = S.defineVar({{X, Rational(2)}});
  EXPECT_TRUE(S.assertLower(Row, Rational(3)));
  EXPECT_TRUE(S.assertUpper(Row, Rational(3)));
  EXPECT_EQ(S.check(), LinResult::Unsat);
}

TEST(Simplex, IntegralityFindsIntegerPoint) {
  // 2x + 2y = 4 with x,y in [0,2]: integer solutions exist.
  Simplex S;
  int X = S.newVar(), Y = S.newVar();
  int Row = S.defineVar({{X, Rational(2)}, {Y, Rational(2)}});
  EXPECT_TRUE(S.assertLower(Row, Rational(4)));
  EXPECT_TRUE(S.assertUpper(Row, Rational(4)));
  EXPECT_TRUE(S.assertLower(X, Rational(0)));
  EXPECT_TRUE(S.assertUpper(X, Rational(2)));
  EXPECT_TRUE(S.assertLower(Y, Rational(0)));
  EXPECT_TRUE(S.assertUpper(Y, Rational(2)));
  EXPECT_EQ(S.check(), LinResult::Sat);
  EXPECT_TRUE(S.value(X).isInteger());
  EXPECT_TRUE(S.value(Y).isInteger());
}

TEST(Simplex, RationalVarsSkipBranching) {
  // 2x = 3 is fine for a rational variable.
  Simplex S;
  int X = S.newVar(/*Integer=*/false);
  int Row = S.defineVar({{X, Rational(2)}});
  EXPECT_TRUE(S.assertLower(Row, Rational(3)));
  EXPECT_TRUE(S.assertUpper(Row, Rational(3)));
  EXPECT_EQ(S.check(), LinResult::Sat);
  EXPECT_EQ(S.value(X), Rational(3, 2));
}

TEST(Simplex, ProbesDoNotMutate) {
  Simplex S;
  int X = S.newVar();
  EXPECT_TRUE(S.assertLower(X, Rational(0)));
  EXPECT_TRUE(S.assertUpper(X, Rational(10)));
  EXPECT_EQ(S.check(), LinResult::Sat);
  // Probe x <= -1 is infeasible; x >= 5 is feasible.
  EXPECT_EQ(S.probeUpper({{X, Rational(1)}}, Rational(-1)), LinResult::Unsat);
  EXPECT_EQ(S.probeLower({{X, Rational(1)}}, Rational(5)), LinResult::Sat);
  // The original instance is untouched.
  EXPECT_EQ(S.check(), LinResult::Sat);
}

TEST(Simplex, EqualityEntailmentViaProbes) {
  // 3 <= x <= 3 entails x == 3: both probes x <= 2 and x >= 4 fail.
  Simplex S;
  int X = S.newVar();
  EXPECT_TRUE(S.assertLower(X, Rational(3)));
  EXPECT_TRUE(S.assertUpper(X, Rational(3)));
  EXPECT_EQ(S.probeUpper({{X, Rational(1)}}, Rational(2)), LinResult::Unsat);
  EXPECT_EQ(S.probeLower({{X, Rational(1)}}, Rational(4)), LinResult::Unsat);
}

TEST(Simplex, DenseSystem) {
  // A slightly larger feasible system exercising repeated pivoting:
  // sum of ten variables == 45, each in [0, 9], pairwise chain x_i <= x_{i+1}.
  Simplex S;
  std::vector<int> Vars;
  LinearExpr Sum;
  for (int I = 0; I != 10; ++I) {
    int V = S.newVar();
    Vars.push_back(V);
    Sum[V] = Rational(1);
    EXPECT_TRUE(S.assertLower(V, Rational(0)));
    EXPECT_TRUE(S.assertUpper(V, Rational(9)));
  }
  int Total = S.defineVar(Sum);
  EXPECT_TRUE(S.assertLower(Total, Rational(45)));
  EXPECT_TRUE(S.assertUpper(Total, Rational(45)));
  for (int I = 0; I + 1 != 10; ++I) {
    int D = S.defineVar({{Vars[I], Rational(1)}, {Vars[I + 1], Rational(-1)}});
    EXPECT_TRUE(S.assertUpper(D, Rational(0)));
  }
  EXPECT_EQ(S.check(), LinResult::Sat);
  Rational Acc(0);
  for (int V : Vars)
    Acc += S.value(V);
  EXPECT_EQ(Acc, Rational(45));
}

TEST(Simplex, OverflowPoisonsToUnknown) {
  // Assignment[Y] = 10^6 * X; pushing X near INT64_MAX/4 makes the
  // rippled update overflow 64 bits. The poisoned solver must answer
  // Unknown (in every build mode), never a truncated Sat/Unsat.
  Simplex S;
  int X = S.newVar();
  int Y = S.defineVar({{X, Rational(1000000)}});
  (void)Y;
  EXPECT_TRUE(S.assertLower(X, Rational(INT64_MAX / 4)));
  EXPECT_EQ(S.check(), LinResult::Unknown);
}

TEST(Simplex, OverflowPoisonsProbes) {
  Simplex S;
  int X = S.newVar();
  EXPECT_TRUE(S.assertLower(X, Rational(INT64_MAX / 4)));
  LinearExpr Huge;
  Huge[X] = Rational(1000000);
  EXPECT_EQ(S.probeUpper(Huge, Rational(0)), LinResult::Unknown);
  EXPECT_EQ(S.probeLower(Huge, Rational(0)), LinResult::Unknown);
}

TEST(Simplex, InRangeArithmeticStaysDecided) {
  // Large but representable coefficients still give exact answers.
  Simplex S;
  int X = S.newVar();
  int Y = S.defineVar({{X, Rational(1000000)}});
  EXPECT_TRUE(S.assertLower(X, Rational(1000000)));
  EXPECT_TRUE(S.assertUpper(Y, Rational(999999999999)));
  EXPECT_EQ(S.check(), LinResult::Unsat);
}

} // namespace
