//===- TheoryTest.cpp - EUF + LIA combination -------------------------------===//

#include "prover/Theory.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::prover;
using namespace slam::logic;

namespace {

class TheoryTest : public ::testing::Test {
protected:
  /// Parses "atom" or "!atom" entries into literals.
  TheoryResult check(const std::vector<std::string> &Entries) {
    std::vector<Literal> Lits;
    for (const std::string &Entry : Entries) {
      bool Positive = true;
      std::string Text = Entry;
      if (!Text.empty() && Text[0] == '~') {
        Positive = false;
        Text = Text.substr(1);
      }
      DiagnosticEngine Diags;
      ExprRef E = parseExpr(Ctx, Text, Diags);
      EXPECT_TRUE(E != nullptr) << Diags.str();
      Lits.push_back({E, Positive});
    }
    return checkConjunction(Lits);
  }

  LogicContext Ctx;
};

TEST_F(TheoryTest, EmptyIsSat) { EXPECT_EQ(check({}), TheoryResult::Sat); }

TEST_F(TheoryTest, SimpleArithmeticUnsat) {
  EXPECT_EQ(check({"x < 5", "x > 7"}), TheoryResult::Unsat);
  EXPECT_EQ(check({"x < 5", "x > 3"}), TheoryResult::Sat);
}

TEST_F(TheoryTest, PaperStrengtheningExample) {
  // (x == 2) implies (x < 4): so x == 2 && !(x < 4) is unsat.
  EXPECT_EQ(check({"x == 2", "~x < 4"}), TheoryResult::Unsat);
  // But x == 2 alone does not contradict x < 4.
  EXPECT_EQ(check({"x == 2", "x < 4"}), TheoryResult::Sat);
}

TEST_F(TheoryTest, IntegerTightness) {
  // 3 < x < 5 forces x == 4 over the integers.
  EXPECT_EQ(check({"x > 3", "x < 5", "x != 4"}), TheoryResult::Unsat);
  EXPECT_EQ(check({"x > 3", "x < 5", "x == 4"}), TheoryResult::Sat);
}

TEST_F(TheoryTest, IntegerInfeasibleEquation) {
  // 2x == 7 has no integer solution.
  EXPECT_EQ(check({"2 * x == 7"}), TheoryResult::Unsat);
  EXPECT_EQ(check({"2 * x == 8"}), TheoryResult::Sat);
}

TEST_F(TheoryTest, EqualityChains) {
  EXPECT_EQ(check({"x == y", "y == z", "x != z"}), TheoryResult::Unsat);
  EXPECT_EQ(check({"x == y", "y != z"}), TheoryResult::Sat);
}

TEST_F(TheoryTest, CongruenceOverFields) {
  // p == q && p->val != q->val is unsat (footnote 3).
  EXPECT_EQ(check({"p == q", "p->val != q->val"}), TheoryResult::Unsat);
  EXPECT_EQ(check({"p != q", "p->val != q->val"}), TheoryResult::Sat);
}

TEST_F(TheoryTest, CombinationEUFIntoLIA) {
  // p == q makes p->val and q->val equal numbers, clashing with
  // p->val > v && q->val <= v.
  EXPECT_EQ(check({"p == q", "p->val > v", "q->val <= v"}),
            TheoryResult::Unsat);
  EXPECT_EQ(check({"p->val > v", "q->val <= v"}), TheoryResult::Sat);
}

TEST_F(TheoryTest, CombinationLIAIntoEUF) {
  // x <= y && y <= x entails x == y, so *x != *y becomes a congruence
  // conflict.
  EXPECT_EQ(check({"x <= y", "y <= x", "*x != *y"}), TheoryResult::Unsat);
  EXPECT_EQ(check({"x <= y", "*x != *y"}), TheoryResult::Sat);
}

TEST_F(TheoryTest, ConstantPinning)
{
  // 4 < x < 6 pins x to 5, so *x != *5-style congruences fire. Here:
  // deref of x vs deref of a variable known equal to 5.
  EXPECT_EQ(check({"x > 4", "x < 6", "y == 5", "*x != *y"}),
            TheoryResult::Unsat);
}

TEST_F(TheoryTest, NullIsZero) {
  EXPECT_EQ(check({"p == NULL", "p != 0"}), TheoryResult::Unsat);
  EXPECT_EQ(check({"p == NULL", "p == 0"}), TheoryResult::Sat);
}

TEST_F(TheoryTest, AddressAxioms) {
  // Addresses of distinct variables differ.
  EXPECT_EQ(check({"&x == &y"}), TheoryResult::Unsat);
  EXPECT_EQ(check({"&x != &y"}), TheoryResult::Sat);
  // A variable's address is never NULL.
  EXPECT_EQ(check({"&x == NULL"}), TheoryResult::Unsat);
  EXPECT_EQ(check({"p == &x", "p == NULL"}), TheoryResult::Unsat);
}

TEST_F(TheoryTest, PointerEqualityPropagatesThroughAddr) {
  // p == &x && q == &x forces p == q.
  EXPECT_EQ(check({"p == &x", "q == &x", "p != q"}), TheoryResult::Unsat);
}

TEST_F(TheoryTest, PartitionAliasRefinement) {
  // Section 2.2: the invariant at label L implies *prev and *curr are
  // not aliases. Case 1: prev == NULL && curr != NULL.
  EXPECT_EQ(check({"prev == NULL", "curr != NULL", "prev == curr"}),
            TheoryResult::Unsat);
  // Case 2: prev->val <= v && curr->val > v.
  EXPECT_EQ(check({"prev->val <= v", "curr->val > v", "prev == curr"}),
            TheoryResult::Unsat);
}

TEST_F(TheoryTest, StrictImpliesDisequal) {
  EXPECT_EQ(check({"x < y", "x == y"}), TheoryResult::Unsat);
}

TEST_F(TheoryTest, DivModUninterpreted) {
  // x/2 is uninterpreted but congruent: x == y forces x/2 == y/2.
  EXPECT_EQ(check({"x == y", "x / 2 != y / 2"}), TheoryResult::Unsat);
  // No arithmetic meaning is assumed: x/2 == x is satisfiable.
  EXPECT_EQ(check({"x / 2 == x", "x == 7"}), TheoryResult::Sat);
}

TEST_F(TheoryTest, MixedChain) {
  // y >= 0 && x == 0 && *p <= 0 && *p == y + x forces *p == 0... which
  // is consistent; adding *p <= -1 clashes.
  EXPECT_EQ(check({"y >= 0", "x == 0", "*p == y + x", "*p <= -1"}),
            TheoryResult::Unsat);
  EXPECT_EQ(check({"y >= 0", "x == 0", "*p == y + x", "*p <= 0"}),
            TheoryResult::Sat);
}

} // namespace
