//===- CegarTest.cpp - The SLAM loop end to end ------------------------------===//

#include "slam/Cegar.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::slamtool;

namespace {

class CegarTest : public ::testing::Test {
protected:
  SlamResult check(const std::string &Source,
                   const SafetySpec &Spec =
                       SafetySpec::lockDiscipline("AcquireLock",
                                                  "ReleaseLock")) {
    DiagnosticEngine Diags;
    auto R = checkSafety(Source, Spec, Ctx, Diags, {}, &Stats);
    EXPECT_TRUE(R.has_value()) << Diags.str();
    return R.value_or(SlamResult{});
  }

  logic::LogicContext Ctx;
  StatsRegistry Stats;
};

TEST_F(CegarTest, WellLockedProgramValidates) {
  auto R = check(R"(
    int lock;
    void AcquireLock() { lock = 1; }
    void ReleaseLock() { lock = 0; }
    int nondet();
    void main() {
      int n;
      n = nondet();
      AcquireLock();
      if (n > 0) {
        ReleaseLock();
        AcquireLock();
      }
      ReleaseLock();
    }
  )");
  EXPECT_EQ(R.V, SlamResult::Verdict::Validated);
  EXPECT_EQ(R.Iterations, 1);
}

TEST_F(CegarTest, DoubleAcquireIsABug) {
  auto R = check(R"(
    void AcquireLock() { }
    void ReleaseLock() { }
    void main() {
      AcquireLock();
      AcquireLock();
    }
  )");
  EXPECT_EQ(R.V, SlamResult::Verdict::BugFound);
  EXPECT_FALSE(R.Trace.empty());
}

TEST_F(CegarTest, ReleaseWithoutAcquireIsABug) {
  auto R = check(R"(
    void AcquireLock() { }
    void ReleaseLock() { }
    void main() {
      ReleaseLock();
    }
  )");
  EXPECT_EQ(R.V, SlamResult::Verdict::BugFound);
}

TEST_F(CegarTest, RefinementDiscoversBranchCorrelation) {
  // The classic SLAM example: both branches test the same flag, so the
  // path "skip acquire, do release" is spurious. The seed predicates
  // cannot see that; Newton must discover `flag > 0`.
  auto R = check(R"(
    void AcquireLock() { }
    void ReleaseLock() { }
    int nondet();
    void main() {
      int flag;
      int work;
      flag = nondet();
      work = 0;
      if (flag > 0) {
        AcquireLock();
      }
      work = work + 1;
      if (flag > 0) {
        ReleaseLock();
      }
    }
  )");
  EXPECT_EQ(R.V, SlamResult::Verdict::Validated);
  EXPECT_GT(R.Iterations, 1);
  // The discovered predicate is in the final set.
  bool Found = false;
  for (logic::ExprRef E : R.Predicates.forProc("main"))
    Found |= E->str() == "flag > 0";
  EXPECT_TRUE(Found);
}

TEST_F(CegarTest, RealBugSurvivesRefinement) {
  // The release is guarded by the *wrong* flag polarity: a true bug
  // that refinement must not explain away.
  auto R = check(R"(
    void AcquireLock() { }
    void ReleaseLock() { }
    int nondet();
    void main() {
      int flag;
      flag = nondet();
      if (flag > 0) {
        AcquireLock();
      }
      if (flag <= 0) {
        ReleaseLock();
      }
    }
  )");
  EXPECT_EQ(R.V, SlamResult::Verdict::BugFound);
}

TEST_F(CegarTest, LoopWithLockDiscipline) {
  auto R = check(R"(
    void AcquireLock() { }
    void ReleaseLock() { }
    int nondet();
    void main() {
      int n;
      n = nondet();
      while (n > 0) {
        AcquireLock();
        ReleaseLock();
        n = n - 1;
      }
    }
  )");
  EXPECT_EQ(R.V, SlamResult::Verdict::Validated);
}

TEST_F(CegarTest, IrpDisciplineValidates) {
  auto Spec = SafetySpec::irpDiscipline("CompleteRequest", "MarkPending");
  auto R = check(R"(
    void CompleteRequest() { }
    void MarkPending() { }
    int nondet();
    void main() {
      int status;
      status = nondet();
      if (status == 0) {
        CompleteRequest();
      } else {
        MarkPending();
      }
    }
  )",
                 Spec);
  EXPECT_EQ(R.V, SlamResult::Verdict::Validated);
}

TEST_F(CegarTest, IrpCompleteAfterPendingIsABug) {
  auto Spec = SafetySpec::irpDiscipline("CompleteRequest", "MarkPending");
  auto R = check(R"(
    void CompleteRequest() { }
    void MarkPending() { }
    void main() {
      MarkPending();
      CompleteRequest();
    }
  )",
                 Spec);
  EXPECT_EQ(R.V, SlamResult::Verdict::BugFound);
}

TEST_F(CegarTest, HelperProceduresAreSummarized) {
  auto R = check(R"(
    void AcquireLock() { }
    void ReleaseLock() { }
    void doWork() {
      AcquireLock();
      ReleaseLock();
    }
    void main() {
      doWork();
      doWork();
    }
  )");
  EXPECT_EQ(R.V, SlamResult::Verdict::Validated);
}

TEST_F(CegarTest, StatsRecordIterations) {
  check(R"(
    void AcquireLock() { }
    void ReleaseLock() { }
    void main() { AcquireLock(); ReleaseLock(); }
  )");
  EXPECT_GE(Stats.get("slam.iterations"), 1u);
}

} // namespace
