//===- IncrementalTest.cpp - Cross-iteration and cross-run reuse -----------===//
//
// The two reuse layers behind `--prover-cache` and the abstraction
// memo, checked for the property that makes them safe to ship: they
// change how much work runs, never what the pipeline answers. Memo
// on/off, cold/warm, and corrupt-cache runs must all produce the same
// verdict, iteration count, predicate set, and trace; the stats then
// pin down that the warm paths actually skipped the work.
//
//===----------------------------------------------------------------------===//

#include "slam/Cegar.h"

#include "prover/CacheBackend.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace slam;
using namespace slam::slamtool;

namespace {

// The classic locking example under the driver's k=3 cube bound: the
// first abstraction is too coarse, so validation takes several CEGAR
// iterations — enough for iteration k+1 to reuse iteration k's work.
const char *LockingSource = R"(
    void AcquireLock() { }
    void ReleaseLock() { }
    int nondet();
    void main() {
      int flag;
      int work;
      flag = nondet();
      work = 0;
      if (flag > 0) {
        AcquireLock();
      }
      work = work + 1;
      if (flag > 0) {
        ReleaseLock();
      }
    }
  )";

struct PipeRun {
  SlamResult Result;
  StatsRegistry Stats; // Not movable: filled in place by runPipeline.
};

/// One fresh-process-like pipeline run: its own context, so interned
/// ids differ from every other run's (as they would across processes).
void runPipeline(const PipelineOptions &Options, PipeRun &R) {
  logic::LogicContext Ctx;
  DiagnosticEngine Diags;
  auto Res = checkSafety(LockingSource,
                         SafetySpec::lockDiscipline("AcquireLock",
                                                    "ReleaseLock"),
                         Ctx, Diags, Options, &R.Stats);
  EXPECT_TRUE(Res.has_value()) << Diags.str();
  R.Result = Res.value_or(SlamResult{});
}

PipelineOptions baseOptions() {
  PipelineOptions O;
  O.C2bp.Cubes.MaxCubeLength = 3; // The slam driver's default.
  return O;
}

/// Everything the slam tool prints to stdout, as a comparison key:
/// reuse may only change the stats, never this.
std::string resultKey(const SlamResult &R) {
  std::ostringstream Out;
  Out << static_cast<int>(R.V) << '|' << R.Iterations << '|'
      << R.Predicates.totalCount() << '|';
  for (const auto &Step : R.Trace)
    Out << Step.ProcName << ';';
  return Out.str();
}

} // namespace

TEST(Incremental, MemoDoesNotChangeTheAnswer) {
  PipelineOptions With = baseOptions();
  PipelineOptions Without = baseOptions();
  Without.Cegar.Incremental = false;
  PipeRun A;
  runPipeline(With, A);
  PipeRun B;
  runPipeline(Without, B);
  EXPECT_EQ(A.Result.V, SlamResult::Verdict::Validated);
  EXPECT_EQ(resultKey(A.Result), resultKey(B.Result));
  ASSERT_EQ(A.Result.FlightLog.size(), B.Result.FlightLog.size());
  for (size_t I = 0; I != A.Result.FlightLog.size(); ++I) {
    EXPECT_EQ(A.Result.FlightLog[I].Predicates,
              B.Result.FlightLog[I].Predicates);
    EXPECT_EQ(A.Result.FlightLog[I].NewPredicates,
              B.Result.FlightLog[I].NewPredicates);
  }
  // The memo only ever *removes* cube searches.
  EXPECT_GT(A.Stats.get("c2bp.memo_hits"), 0u);
  EXPECT_EQ(B.Stats.get("c2bp.memo_hits"), 0u);
}

TEST(Incremental, LaterIterationsRecomputeOnlyChangedStatements) {
  PipeRun R;
  runPipeline(baseOptions(), R);
  ASSERT_GE(R.Result.FlightLog.size(), 2u);
  // Iteration 1 has nothing to reuse.
  EXPECT_EQ(R.Result.FlightLog[0].StmtsReused, 0u);
  EXPECT_GT(R.Result.FlightLog[0].StmtsRecomputed, 0u);
  uint64_t Reused = 0;
  for (size_t I = 1; I != R.Result.FlightLog.size(); ++I) {
    const IterationRecord &Rec = R.Result.FlightLog[I];
    Reused += Rec.StmtsReused;
    // New predicates enlarge some cones, so *some* statements rerun —
    // but never more than iteration 1 re-ran from scratch.
    EXPECT_LE(Rec.StmtsRecomputed, R.Result.FlightLog[0].StmtsRecomputed);
  }
  EXPECT_GT(Reused, 0u);
}

TEST(Incremental, NonIncrementalLogsNoReuse) {
  PipelineOptions O = baseOptions();
  O.Cegar.Incremental = false;
  PipeRun R;
  runPipeline(O, R);
  for (const IterationRecord &Rec : R.Result.FlightLog)
    EXPECT_EQ(Rec.StmtsReused, 0u);
}

TEST(Incremental, WarmPersistentCacheSkipsTheProver) {
  std::string Path = ::testing::TempDir() + "incr_warm.log";
  std::remove(Path.c_str());
  PipelineOptions O = baseOptions();
  O.ProverCachePath = Path;

  PipeRun Cold;
  runPipeline(O, Cold);
  uint64_t ColdCalls = Cold.Stats.get("prover.calls");
  EXPECT_GT(ColdCalls, 0u);
  EXPECT_EQ(Cold.Stats.get("prover.disk_cache_hits"), 0u);

  // Same options, fresh context: everything must come back identical,
  // with >= 90% of the prover queries answered from the file.
  PipeRun Warm;
  runPipeline(O, Warm);
  EXPECT_EQ(resultKey(Warm.Result), resultKey(Cold.Result));
  EXPECT_GT(Warm.Stats.get("prover.disk_cache_hits"), 0u);
  EXPECT_LE(Warm.Stats.get("prover.calls") * 10, ColdCalls);

  // The warm flight recorder reports its disk hits per iteration.
  uint64_t Disk = 0;
  for (const IterationRecord &Rec : Warm.Result.FlightLog)
    Disk += Rec.DiskHits;
  EXPECT_EQ(Disk, Warm.Stats.get("prover.disk_cache_hits"));
  std::remove(Path.c_str());
}

TEST(Incremental, InjectedBackendTakesPrecedenceOverPath) {
  // An injected backend (embedders, tests) must win over
  // ProverCachePath — here the path is unwritable garbage that would
  // fail loudly if opened.
  std::string Path = ::testing::TempDir() + "incr_injected.log";
  std::remove(Path.c_str());
  {
    prover::FileCacheBackend Backend(Path);
    PipelineOptions O = baseOptions();
    O.ProverCachePath = "/nonexistent-dir/never-created.log";
    O.Backend = &Backend;

    PipeRun Cold;
    runPipeline(O, Cold);
    uint64_t ColdCalls = Cold.Stats.get("prover.calls");
    EXPECT_GT(ColdCalls, 0u);
    EXPECT_GT(Backend.pendingEntries(), 0u);

    PipeRun Warm;
    runPipeline(O, Warm);
    EXPECT_EQ(resultKey(Warm.Result), resultKey(Cold.Result));
    EXPECT_LE(Warm.Stats.get("prover.calls") * 10, ColdCalls);
  }
  // After the backend's exit flush, so the file is not recreated.
  std::remove(Path.c_str());
}

TEST(Incremental, CorruptCacheFileRunsColdAndHeals) {
  std::string Path = ::testing::TempDir() + "incr_corrupt.log";
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "** not a prover cache **\ngarbage line\n";
  }
  PipelineOptions O = baseOptions();
  O.ProverCachePath = Path;
  PipeRun R;
  runPipeline(O, R);
  // The damaged file cost a warning, not the verdict and not a crash.
  EXPECT_EQ(R.Result.V, SlamResult::Verdict::Validated);
  EXPECT_EQ(R.Stats.get("prover.disk_cache_hits"), 0u);

  // The run's exit flush rewrote the file; a second run is warm.
  PipeRun Warm;
  runPipeline(O, Warm);
  EXPECT_EQ(resultKey(Warm.Result), resultKey(R.Result));
  EXPECT_GT(Warm.Stats.get("prover.disk_cache_hits"), 0u);
  std::remove(Path.c_str());
}

TEST(Incremental, MemoAndPersistentCacheCompose) {
  // Both layers on, parallel workers, warm disk: still the same answer.
  std::string Path = ::testing::TempDir() + "incr_compose.log";
  std::remove(Path.c_str());
  PipelineOptions O = baseOptions();
  O.ProverCachePath = Path;
  O.C2bp.NumWorkers = 2;
  PipeRun Cold;
  runPipeline(O, Cold);
  PipeRun Warm;
  runPipeline(O, Warm);
  EXPECT_EQ(resultKey(Warm.Result), resultKey(Cold.Result));
  EXPECT_GT(Warm.Stats.get("c2bp.memo_hits"), 0u);
  EXPECT_GT(Warm.Stats.get("prover.disk_cache_hits"), 0u);
  std::remove(Path.c_str());
}
