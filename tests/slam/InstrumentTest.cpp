//===- InstrumentTest.cpp - Safety-automaton weaving -------------------------===//

#include "slam/SafetySpec.h"

#include "cfront/Parser.h"
#include "cfront/Sema.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::slamtool;
using namespace slam::cfront;

namespace {

class InstrumentTest : public ::testing::Test {
protected:
  std::unique_ptr<Program> load(const std::string &Source) {
    DiagnosticEngine Diags;
    auto P = parseProgram(Source, Diags);
    EXPECT_TRUE(P != nullptr) << Diags.str();
    EXPECT_TRUE(analyze(*P, Diags)) << Diags.str();
    return P;
  }

  logic::LogicContext Ctx;
};

TEST_F(InstrumentTest, LockSpecShape) {
  SafetySpec S = SafetySpec::lockDiscipline("AcquireLock", "ReleaseLock");
  EXPECT_EQ(S.NumStates, 2);
  EXPECT_EQ(S.Transitions.size(), 4u);
  int Errors = 0;
  for (const auto &T : S.Transitions)
    Errors += T.To == SafetySpec::Error;
  EXPECT_EQ(Errors, 2);
}

TEST_F(InstrumentTest, WeavesStateMachine) {
  auto P = load(R"(
    void AcquireLock() { }
    void ReleaseLock() { }
    void main() {
      AcquireLock();
      ReleaseLock();
    }
  )");
  DiagnosticEngine Diags;
  ASSERT_TRUE(instrument(
      *P, SafetySpec::lockDiscipline("AcquireLock", "ReleaseLock"),
      "main", Diags))
      << Diags.str();

  // The state global exists.
  ASSERT_TRUE(P->findGlobal("__state") != nullptr);
  // main starts by resetting it.
  const Stmt *First = P->findFunction("main")->Body->Stmts.front();
  EXPECT_EQ(First->Kind, CStmtKind::Assign);
  EXPECT_EQ(First->Lhs->Name, "__state");
  // AcquireLock's body begins with the transition chain.
  const FuncDecl *Acq = P->findFunction("AcquireLock");
  ASSERT_FALSE(Acq->Body->Stmts.empty());
  EXPECT_EQ(Acq->Body->Stmts.front()->Kind, CStmtKind::If);
  // The chain contains an error assert.
  std::string Text = printFunction(*Acq);
  EXPECT_NE(Text.find("assert(0 == 1)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("__state = 1"), std::string::npos) << Text;
}

TEST_F(InstrumentTest, ExternMonitoredFunctionGetsBody) {
  auto P = load(R"(
    void KeAcquireSpinLock();
    void KeReleaseSpinLock();
    void main() { KeAcquireSpinLock(); KeReleaseSpinLock(); }
  )");
  DiagnosticEngine Diags;
  ASSERT_TRUE(instrument(*P,
                         SafetySpec::lockDiscipline("KeAcquireSpinLock",
                                                    "KeReleaseSpinLock"),
                         "main", Diags))
      << Diags.str();
  EXPECT_FALSE(P->findFunction("KeAcquireSpinLock")->isExtern());
}

TEST_F(InstrumentTest, MissingFunctionFails) {
  auto P = load("void main() { }");
  DiagnosticEngine Diags;
  EXPECT_FALSE(instrument(
      *P, SafetySpec::lockDiscipline("AcquireLock", "ReleaseLock"),
      "main", Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(InstrumentTest, SeedPredicates) {
  c2bp::PredicateSet Preds;
  seedPredicates(Ctx, SafetySpec::irpDiscipline("Complete", "Pend"),
                 Preds);
  ASSERT_EQ(Preds.Globals.size(), 3u);
  EXPECT_EQ(Preds.Globals[0]->str(), "__state == 0");
  EXPECT_EQ(Preds.Globals[2]->str(), "__state == 2");
}

} // namespace
