//===- NewtonTest.cpp - Feasibility analysis via the full pipeline -----------===//

#include "slam/Newton.h"

#include "bebop/Bebop.h"
#include "c2bp/C2bp.h"
#include "cfront/Normalize.h"

#include <gtest/gtest.h>

using namespace slam;
using namespace slam::slamtool;
using namespace slam::cfront;

namespace {

/// Drives C2bp + Bebop to obtain a genuine abstract trace, then runs
/// Newton on it — the exact dataflow of the SLAM loop.
class NewtonTest : public ::testing::Test {
protected:
  NewtonResult analyze(const std::string &Source,
                       const std::string &PredText) {
    DiagnosticEngine Diags;
    Prog = frontend(Source, Diags);
    EXPECT_TRUE(Prog != nullptr) << Diags.str();
    auto PS = c2bp::parsePredicateFile(Ctx, PredText, Diags);
    EXPECT_TRUE(PS.has_value()) << Diags.str();
    Preds = *PS;
    auto BP = c2bp::abstractProgram(*Prog, Preds, Ctx, Diags);
    EXPECT_TRUE(BP != nullptr);
    bebop::Bebop Checker(*BP);
    auto R = Checker.run("main");
    EXPECT_TRUE(R.AssertViolated) << "test expects an abstract violation";
    prover::Prover P(Ctx);
    return analyzeTrace(*Prog, R.Trace, Ctx, P, Preds);
  }

  logic::LogicContext Ctx;
  std::unique_ptr<Program> Prog;
  c2bp::PredicateSet Preds;
};

TEST_F(NewtonTest, FeasiblePathIsReported) {
  // x starts nondeterministic; the assert genuinely fails.
  auto R = analyze(R"(
    int nondet();
    void main() {
      int x;
      x = nondet();
      assert(x > 0);
    }
  )",
                   "main:\n x == x\n");
  EXPECT_TRUE(R.Feasible);
}

TEST_F(NewtonTest, InfeasiblePathYieldsPredicates) {
  // With no predicates about x, the abstraction cannot see that the
  // assert holds; the spurious trace teaches Newton about x.
  auto R = analyze(R"(
    void main() {
      int x;
      x = 5;
      assert(x == 5);
    }
  )",
                   "main:\n 0 == 0\n");
  EXPECT_FALSE(R.Feasible);
  EXPECT_GT(R.NewPreds.totalCount(), 0u);
  bool Found = false;
  for (logic::ExprRef E : R.NewPreds.forProc("main"))
    Found |= E->str() == "x == 5";
  EXPECT_TRUE(Found) << "expected the WP-derived predicate x == 5";
}

TEST_F(NewtonTest, BranchCorrelationPredicates) {
  auto R = analyze(R"(
    int nondet();
    void main() {
      int f;
      int bad;
      f = nondet();
      bad = 0;
      if (f > 0) {
        bad = 1;
      }
      if (f <= 0) {
        assert(bad == 0);
      }
    }
  )",
                   "main:\n bad == 0\n");
  // The abstract trace takes f > 0 then f <= 0: infeasible.
  EXPECT_FALSE(R.Feasible);
  bool Found = false;
  for (logic::ExprRef E : R.NewPreds.forProc("main"))
    Found |= E->str() == "f > 0" || E->str() == "f <= 0";
  EXPECT_TRUE(Found);
}

TEST_F(NewtonTest, ExistingPredicatesNotRediscovered) {
  auto R = analyze(R"(
    void main() {
      int x;
      x = 5;
      assert(x == 5);
    }
  )",
                   "main:\n y == y\n");
  for (logic::ExprRef E : R.NewPreds.forProc("main"))
    EXPECT_NE(E->str(), "y == y");
}

} // namespace
