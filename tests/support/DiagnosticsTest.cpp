//===- DiagnosticsTest.cpp ------------------------------------------------===//

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace slam;

TEST(Diagnostics, StartsClean) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 0u);
}

TEST(Diagnostics, CountsOnlyErrors) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLoc(1, 1), "w");
  Diags.note(SourceLoc(1, 2), "n");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 3), "e");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, RendersLikeACompiler) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(4, 7), "expected ';'");
  EXPECT_EQ(Diags.str(), "4:7: error: expected ';'\n");
}

TEST(Diagnostics, UnknownLocation) {
  Diagnostic D{DiagKind::Warning, SourceLoc(), "msg"};
  EXPECT_EQ(D.str(), "<unknown>: warning: msg");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(1, 1), "e");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}
