//===- HistogramTest.cpp --------------------------------------------------===//

#include "support/Histogram.h"

#include "support/Json.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace slam;

TEST(Histogram, StartsEmpty) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sumMicros(), 0u);
  EXPECT_EQ(H.maxMicros(), 0u);
  EXPECT_EQ(H.numUsedBuckets(), 0);
}

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 holds exactly 0us; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::bucketFor(0), 0);
  EXPECT_EQ(LatencyHistogram::bucketFor(1), 1);
  EXPECT_EQ(LatencyHistogram::bucketFor(2), 2);
  EXPECT_EQ(LatencyHistogram::bucketFor(3), 2);
  EXPECT_EQ(LatencyHistogram::bucketFor(4), 3);
  EXPECT_EQ(LatencyHistogram::bucketFor(1023), 10);
  EXPECT_EQ(LatencyHistogram::bucketFor(1024), 11);
}

TEST(Histogram, OverflowSamplesLandInLastBucket) {
  LatencyHistogram H;
  H.observe(~0ull);
  EXPECT_EQ(H.bucket(LatencyHistogram::NumBuckets - 1), 1u);
  EXPECT_EQ(H.maxMicros(), ~0ull);
}

TEST(Histogram, ObserveTracksCountSumMax) {
  LatencyHistogram H;
  H.observe(10);
  H.observe(100);
  H.observe(3);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sumMicros(), 113u);
  EXPECT_EQ(H.maxMicros(), 100u);
  EXPECT_EQ(H.bucket(LatencyHistogram::bucketFor(10)), 1u);
}

TEST(Histogram, MergeAddsBucketsAndMaxesMax) {
  LatencyHistogram A, B;
  A.observe(5);
  A.observe(900);
  B.observe(5);
  B.observe(40000);
  A.mergeFrom(B);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_EQ(A.sumMicros(), 5u + 900u + 5u + 40000u);
  EXPECT_EQ(A.maxMicros(), 40000u);
  EXPECT_EQ(A.bucket(LatencyHistogram::bucketFor(5)), 2u);
}

TEST(Stats, GaugeSetMaxKeepsPeak) {
  StatsRegistry Stats;
  Stats.setMax("bdd.nodes", 100);
  Stats.setMax("bdd.nodes", 40); // Lower write must not regress the peak.
  EXPECT_EQ(Stats.get("bdd.nodes"), 100u);
  Stats.setMax("bdd.nodes", 250);
  EXPECT_EQ(Stats.get("bdd.nodes"), 250u);
}

TEST(Stats, MergeSumsCountersButMaxesGauges) {
  // Models per-worker registries folding into the main one: counted
  // work adds up, but peaks must not (no single worker saw the sum).
  StatsRegistry Main, W1, W2;
  W1.add("prover.calls", 10);
  W2.add("prover.calls", 7);
  W1.setMax("bdd.nodes", 500);
  W2.setMax("bdd.nodes", 900);
  Main.mergeFrom(W1);
  Main.mergeFrom(W2);
  EXPECT_EQ(Main.get("prover.calls"), 17u);
  EXPECT_EQ(Main.get("bdd.nodes"), 900u);
}

TEST(Stats, MergeCombinesHistogramsAcrossRegistries) {
  StatsRegistry Main, W1, W2;
  W1.observe("prover.query_us", 12);
  W1.observe("prover.query_us", 300);
  W2.observe("prover.query_us", 12);
  Main.mergeFrom(W1);
  Main.mergeFrom(W2);
  LatencyHistogram H = Main.histogram("prover.query_us");
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sumMicros(), 324u);
  EXPECT_EQ(H.maxMicros(), 300u);
  EXPECT_EQ(H.bucket(LatencyHistogram::bucketFor(12)), 2u);
}

TEST(Stats, StrOmitsHistogramsAndIncludesGauges) {
  StatsRegistry Stats;
  Stats.add("a", 1);
  Stats.setMax("g", 9);
  Stats.observe("h.us", 5);
  EXPECT_EQ(Stats.str(), "a = 1\ng = 9\n");
}

TEST(Stats, JsonExportIsValidAndComplete) {
  StatsRegistry Stats;
  Stats.add("prover.calls", 3);
  Stats.setMax("bdd.nodes", 128);
  Stats.observe("prover.query_us", 50);
  Stats.observe("prover.query_us", 900);
  std::string Doc = statsToJson(Stats);
  EXPECT_TRUE(json::isValid(Doc));
  EXPECT_NE(Doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(Doc.find("\"prover.calls\":3"), std::string::npos);
  EXPECT_NE(Doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(Doc.find("\"bdd.nodes\":128"), std::string::npos);
  EXPECT_NE(Doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(Doc.find("\"count\":2"), std::string::npos);
  EXPECT_NE(Doc.find("\"sum_us\":950"), std::string::npos);
}
