//===- JsonTest.cpp -------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <limits>

using namespace slam;

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json::escape("hello world_123"), "hello world_123");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, EscapesNamedControlCharacters) {
  EXPECT_EQ(json::escape("a\nb"), "a\\nb");
  EXPECT_EQ(json::escape("\t\r\b\f"), "\\t\\r\\b\\f");
}

TEST(JsonEscape, EscapesOtherControlCharactersAsUnicode) {
  EXPECT_EQ(json::escape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
  EXPECT_EQ(json::escape(std::string_view("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscape, PassesNonAsciiBytesThrough) {
  // JSON documents are UTF-8; multi-byte sequences go through verbatim.
  EXPECT_EQ(json::escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, EmitsNestedStructure) {
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.kv("name", "x");
  W.key("values");
  W.beginArray();
  W.value(1);
  W.value(2);
  W.beginObject();
  W.kv("ok", true);
  W.endObject();
  W.endArray();
  W.key("nothing");
  W.null();
  W.endObject();
  EXPECT_TRUE(W.complete());
  EXPECT_EQ(Out,
            "{\"name\":\"x\",\"values\":[1,2,{\"ok\":true}],"
            "\"nothing\":null}");
  EXPECT_TRUE(json::isValid(Out));
}

TEST(JsonWriter, EscapesKeysAndValues) {
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.kv("a\"b", "c\nd");
  W.endObject();
  EXPECT_EQ(Out, "{\"a\\\"b\":\"c\\nd\"}");
  EXPECT_TRUE(json::isValid(Out));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::string Out;
  json::Writer W(Out);
  W.beginArray();
  W.value(1.5);
  W.value(std::numeric_limits<double>::infinity());
  W.value(std::numeric_limits<double>::quiet_NaN());
  W.endArray();
  EXPECT_EQ(Out, "[1.5,null,null]");
  EXPECT_TRUE(json::isValid(Out));
}

TEST(JsonIsValid, AcceptsDocuments) {
  EXPECT_TRUE(json::isValid("{}"));
  EXPECT_TRUE(json::isValid("[]"));
  EXPECT_TRUE(json::isValid("  {\"a\": [1, -2.5, 1e9, true, null]} "));
  EXPECT_TRUE(json::isValid("\"\\u00e9\\n\""));
  EXPECT_TRUE(json::isValid("-0.5"));
}

TEST(JsonIsValid, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::isValid(""));
  EXPECT_FALSE(json::isValid("{"));
  EXPECT_FALSE(json::isValid("{\"a\":}"));
  EXPECT_FALSE(json::isValid("[1,]"));
  EXPECT_FALSE(json::isValid("{\"a\":1}x"));
  EXPECT_FALSE(json::isValid("'single'"));
  EXPECT_FALSE(json::isValid("{\"a\" 1}"));
  EXPECT_FALSE(json::isValid("01"));
  EXPECT_FALSE(json::isValid("\"\\x\""));
  EXPECT_FALSE(json::isValid(std::string_view("\"a\nb\"", 5)));
}
