//===- StatsTest.cpp ------------------------------------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace slam;

TEST(Stats, MissingCounterIsZero) {
  StatsRegistry Stats;
  EXPECT_EQ(Stats.get("nope"), 0u);
}

TEST(Stats, AddAccumulates) {
  StatsRegistry Stats;
  Stats.add("prover.calls");
  Stats.add("prover.calls", 4);
  EXPECT_EQ(Stats.get("prover.calls"), 5u);
}

TEST(Stats, SetOverwrites) {
  StatsRegistry Stats;
  Stats.add("x", 10);
  Stats.set("x", 3);
  EXPECT_EQ(Stats.get("x"), 3u);
}

TEST(Stats, RendersSorted) {
  StatsRegistry Stats;
  Stats.add("b", 2);
  Stats.add("a", 1);
  EXPECT_EQ(Stats.str(), "a = 1\nb = 2\n");
}
