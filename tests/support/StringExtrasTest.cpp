//===- StringExtrasTest.cpp -----------------------------------------------===//

#include "support/StringExtras.h"

#include <gtest/gtest.h>

using namespace slam;

TEST(StringExtras, JoinEmpty) { EXPECT_EQ(join({}, ", "), ""); }

TEST(StringExtras, JoinSingle) { EXPECT_EQ(join({"a"}, ", "), "a"); }

TEST(StringExtras, JoinMany) {
  EXPECT_EQ(join({"a", "b", "c"}, " && "), "a && b && c");
}

TEST(StringExtras, TrimBothSides) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringExtras, SplitAndTrimDropsEmpties) {
  auto Parts = splitAndTrim(" a, b ,, c ,", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "b");
  EXPECT_EQ(Parts[2], "c");
}

TEST(StringExtras, SplitSingleToken) {
  auto Parts = splitAndTrim("hello", ';');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "hello");
}

TEST(StringExtras, StartsWith) {
  EXPECT_TRUE(startsWith("proc foo:", "proc"));
  EXPECT_FALSE(startsWith("pr", "proc"));
  EXPECT_TRUE(startsWith("anything", ""));
}
