//===- ThreadPoolTest.cpp - The work-stealing pool ---------------------------===//

#include "support/ThreadPool.h"

#include "support/Stats.h"

#include <atomic>
#include <gtest/gtest.h>

using namespace slam;

namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numWorkers(), 4u);
  constexpr int N = 1000;
  std::vector<std::atomic<int>> Ran(N);
  for (int I = 0; I != N; ++I)
    Pool.submit([&Ran, I] { Ran[I].fetch_add(1); });
  Pool.wait();
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(Ran[I].load(), 1) << "task " << I;
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool Pool(2);
  Pool.wait();
  Pool.wait(); // Idempotent.
}

TEST(ThreadPoolTest, TasksMaySpawnTasks) {
  // wait() must cover transitively spawned work too.
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int I = 0; I != 8; ++I)
    Pool.submit([&Pool, &Count] {
      Count.fetch_add(1);
      Pool.submit([&Pool, &Count] {
        Count.fetch_add(1);
        Pool.submit([&Count] { Count.fetch_add(1); });
      });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 24);
}

TEST(ThreadPoolTest, CurrentWorkerIdIsStableInsidePool) {
  ThreadPool Pool(4);
  EXPECT_EQ(ThreadPool::currentWorkerId(), -1); // Not a pool thread.
  constexpr int N = 200;
  std::vector<int> Ids(N, -2);
  for (int I = 0; I != N; ++I)
    Pool.submit([&Ids, I] { Ids[I] = ThreadPool::currentWorkerId(); });
  Pool.wait();
  for (int I = 0; I != N; ++I) {
    EXPECT_GE(Ids[I], 0) << "task " << I;
    EXPECT_LT(Ids[I], 4) << "task " << I;
  }
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Wave = 0; Wave != 5; ++Wave) {
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Wave + 1) * 50);
  }
}

TEST(ThreadPoolTest, SingleWorkerStillDrains) {
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

// The per-worker pattern C2bp uses: each worker accumulates into its
// own registry, merged after the pool quiesces.
TEST(ThreadPoolTest, PerWorkerStatsMergeLosslessly) {
  ThreadPool Pool(4);
  std::vector<StatsRegistry> PerWorker(4);
  constexpr int N = 400;
  for (int I = 0; I != N; ++I)
    Pool.submit([&PerWorker] {
      PerWorker[ThreadPool::currentWorkerId()].add("tasks");
    });
  Pool.wait();
  StatsRegistry Total;
  for (const StatsRegistry &R : PerWorker)
    Total.mergeFrom(R);
  EXPECT_EQ(Total.get("tasks"), static_cast<uint64_t>(N));
}

// StatsRegistry itself is thread-safe for concurrent add()s.
TEST(ThreadPoolTest, SharedStatsRegistrySurvivesConcurrentAdds) {
  ThreadPool Pool(4);
  StatsRegistry Shared;
  constexpr int N = 2000;
  for (int I = 0; I != N; ++I)
    Pool.submit([&Shared] { Shared.add("hits"); });
  Pool.wait();
  EXPECT_EQ(Shared.get("hits"), static_cast<uint64_t>(N));
}

} // namespace
