//===- TraceTest.cpp ------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <set>

using namespace slam;

namespace {

/// Installs \p R as the process-global recorder for one test body and
/// restores the previous one on exit (keeps tests order-independent).
class ScopedRecorder {
public:
  explicit ScopedRecorder(TraceRecorder &R)
      : Prev(TraceRecorder::active()) {
    TraceRecorder::setActive(&R);
  }
  ~ScopedRecorder() { TraceRecorder::setActive(Prev); }

private:
  TraceRecorder *Prev;
};

} // namespace

TEST(Trace, DisabledSpansRecordNothing) {
  ASSERT_EQ(TraceRecorder::active(), nullptr);
  {
    TraceSpan Span("noop");
    EXPECT_FALSE(Span.enabled());
    Span.arg("k", std::string("v"));
  }
  TraceRecorder R;
  EXPECT_EQ(R.numEvents(), 0u);
}

TEST(Trace, RecordsNestedSpans) {
  TraceRecorder R;
  ScopedRecorder Install(R);
  // Spins until the recorder clock ticks so the two spans cannot share
  // a start microsecond (starts that tie sort by duration instead).
  auto TickClock = [&R] {
    uint64_t T0 = R.nowUs();
    while (R.nowUs() <= T0) {
    }
  };
  {
    TraceSpan Outer("outer", "test");
    TickClock();
    {
      TraceSpan Inner("inner", "test");
      EXPECT_TRUE(Inner.enabled());
      TickClock();
    }
    TickClock();
  }
  ASSERT_EQ(R.numEvents(), 2u);
  std::vector<TraceEvent> Events = R.sortedEvents();
  // Same thread: sorted by start time, so outer (opened first) leads.
  EXPECT_EQ(Events[0].Name, "outer");
  EXPECT_EQ(Events[1].Name, "inner");
  EXPECT_LT(Events[0].StartUs, Events[1].StartUs);
  // The inner span is contained in the outer one.
  EXPECT_LE(Events[1].StartUs + Events[1].DurUs,
            Events[0].StartUs + Events[0].DurUs);
  EXPECT_EQ(Events[0].Tid, 0); // Main thread.
}

TEST(Trace, CapturesArgs) {
  TraceRecorder R;
  ScopedRecorder Install(R);
  {
    TraceSpan Span("q", "test");
    Span.arg("result", std::string("unsat"));
    Span.arg("count", static_cast<uint64_t>(7));
  }
  std::vector<TraceEvent> Events = R.sortedEvents();
  ASSERT_EQ(Events.size(), 1u);
  ASSERT_EQ(Events[0].Args.size(), 2u);
  EXPECT_EQ(Events[0].Args[0].first, "result");
  EXPECT_EQ(Events[0].Args[0].second, "unsat");
  EXPECT_EQ(Events[0].Args[1].second, "7");
}

TEST(Trace, TagsWorkerThreadIds) {
  TraceRecorder R;
  ScopedRecorder Install(R);
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 16; ++I)
      Pool.submit([] { TraceSpan Span("task", "test"); });
    Pool.wait();
  }
  std::vector<TraceEvent> Events = R.sortedEvents();
  ASSERT_EQ(Events.size(), 16u);
  std::set<int> Tids;
  for (const TraceEvent &E : Events) {
    EXPECT_GE(E.Tid, 1); // Pool workers are tid 1..N, never main's 0.
    EXPECT_LE(E.Tid, 2);
    Tids.insert(E.Tid);
  }
  EXPECT_FALSE(Tids.empty());
}

TEST(Trace, SortedEventsOrderIsDeterministic) {
  TraceRecorder R;
  ScopedRecorder Install(R);
  { TraceSpan A("a", "test"); }
  { TraceSpan B("b", "test"); }
  std::vector<TraceEvent> First = R.sortedEvents();
  std::vector<TraceEvent> Second = R.sortedEvents();
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I != First.size(); ++I) {
    EXPECT_EQ(First[I].Name, Second[I].Name);
    EXPECT_EQ(First[I].Seq, Second[I].Seq);
  }
}

TEST(Trace, ChromeJsonIsValidAndNamesThreads) {
  TraceRecorder R;
  ScopedRecorder Install(R);
  {
    TraceSpan Span("phase \"x\"", "test"); // Name needing escaping.
    Span.arg("file", std::string("a\\b.c"));
  }
  {
    ThreadPool Pool(1);
    Pool.submit([] { TraceSpan Span("worker-task", "test"); });
    Pool.wait();
  }
  std::string Doc = R.toChromeJson();
  EXPECT_TRUE(json::isValid(Doc));
  EXPECT_NE(Doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Doc.find("thread_name"), std::string::npos);
  EXPECT_NE(Doc.find("worker-1"), std::string::npos);
  EXPECT_NE(Doc.find("phase \\\"x\\\""), std::string::npos);
}

TEST(Trace, SlowQueryThresholdDefaultsOff) {
  EXPECT_LT(trace::slowQueryMillis(), 0);
  trace::setSlowQueryMillis(12.5);
  EXPECT_DOUBLE_EQ(trace::slowQueryMillis(), 12.5);
  trace::setSlowQueryMillis(-1.0);
  EXPECT_LT(trace::slowQueryMillis(), 0);
}
