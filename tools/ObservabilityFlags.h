//===- ObservabilityFlags.h - Shared tool observability flags ---*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability flags every driver (slam, c2bp, bebop) accepts:
///
///   --trace-out <file>     write a Chrome trace-event JSON file
///   --stats-json <file>    write the statistics registry as JSON
///   --report               print a human-readable statistics report
///   --slow-query-ms <ms>   log prover queries at/above the threshold
///
/// One parser so the three mains cannot drift apart; each main calls
/// tryParse() from its flag loop, install() before the pipeline runs,
/// and finish() once it has its final StatsRegistry.
///
//===----------------------------------------------------------------------===//

#ifndef TOOLS_OBSERVABILITYFLAGS_H
#define TOOLS_OBSERVABILITYFLAGS_H

#include "support/CliArgs.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

namespace slam {
namespace tools {

class ObservabilityFlags {
public:
  enum class Parse {
    NotMine,  ///< argv[I] is not an observability flag.
    Consumed, ///< Flag (and its value, if any) consumed; I advanced.
    Error,    ///< Flag recognized but malformed; exit 2.
  };

  /// Tries to consume argv[I]; advances I past any flag value.
  Parse tryParse(const char *Tool, int Argc, char **Argv, int &I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", Tool, Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (!std::strcmp(Argv[I], "--trace-out")) {
      const char *V = Value("--trace-out");
      if (!V)
        return Parse::Error;
      TraceOut = V;
      return Parse::Consumed;
    }
    if (!std::strcmp(Argv[I], "--stats-json")) {
      const char *V = Value("--stats-json");
      if (!V)
        return Parse::Error;
      StatsJsonOut = V;
      return Parse::Consumed;
    }
    if (!std::strcmp(Argv[I], "--report")) {
      Report = true;
      return Parse::Consumed;
    }
    if (!std::strcmp(Argv[I], "--slow-query-ms")) {
      const char *V = Value("--slow-query-ms");
      double Ms;
      if (!V || !cli::msArg(Tool, "--slow-query-ms", V, Ms))
        return Parse::Error;
      trace::setSlowQueryMillis(Ms);
      return Parse::Consumed;
    }
    return Parse::NotMine;
  }

  /// Installs the global trace recorder when --trace-out was given.
  /// Call after flag parsing, before any pipeline work.
  void install() {
    if (TraceOut.empty())
      return;
    Recorder = std::make_unique<TraceRecorder>();
    TraceRecorder::setActive(Recorder.get());
  }

  bool wantReport() const { return Report; }

  /// Uninstalls the recorder and writes the requested files. Returns
  /// false (after a message on stderr) if any file cannot be written.
  bool finish(const char *Tool, const StatsRegistry &Stats) {
    bool Ok = true;
    if (Recorder) {
      TraceRecorder::setActive(nullptr);
      std::string Err;
      if (!Recorder->writeChromeJson(TraceOut, &Err)) {
        std::fprintf(stderr, "%s: cannot write trace '%s': %s\n", Tool,
                     TraceOut.c_str(), Err.c_str());
        Ok = false;
      }
    }
    if (!StatsJsonOut.empty()) {
      std::string Doc = statsToJson(Stats);
      std::FILE *F = std::fopen(StatsJsonOut.c_str(), "w");
      if (!F || std::fwrite(Doc.data(), 1, Doc.size(), F) != Doc.size()) {
        std::fprintf(stderr, "%s: cannot write stats '%s'\n", Tool,
                     StatsJsonOut.c_str());
        Ok = false;
      }
      if (F)
        std::fclose(F);
    }
    return Ok;
  }

  /// Compact report used by the c2bp/bebop drivers (slam prints the
  /// CEGAR flight recorder instead): counters/gauges, then one summary
  /// line per latency histogram.
  static void printStatsReport(std::FILE *Out, const StatsRegistry &Stats) {
    std::fprintf(Out, "-- stats --\n%s", Stats.str().c_str());
    for (const auto &[Name, H] : Stats.allHistograms()) {
      if (H.count() == 0)
        continue;
      std::fprintf(Out,
                   "%s: count=%llu mean_us=%.1f max_us=%llu\n", Name.c_str(),
                   static_cast<unsigned long long>(H.count()),
                   static_cast<double>(H.sumMicros()) /
                       static_cast<double>(H.count()),
                   static_cast<unsigned long long>(H.maxMicros()));
    }
  }

private:
  std::string TraceOut;
  std::string StatsJsonOut;
  bool Report = false;
  std::unique_ptr<TraceRecorder> Recorder;
};

} // namespace tools
} // namespace slam

#endif // TOOLS_OBSERVABILITYFLAGS_H
