//===- ObservabilityFlags.h - Shared tool observability plumbing -*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the data-only slamtool::ObservabilityOptions (populated by
/// tools/PipelineFlags.h) into effect: installs the global trace
/// recorder and slow-query threshold before the pipeline runs, and
/// writes the requested trace/stats files afterwards. One
/// implementation so the three mains cannot drift apart; each calls
/// install() before the pipeline and finish() once it has its final
/// StatsRegistry.
///
//===----------------------------------------------------------------------===//

#ifndef TOOLS_OBSERVABILITYFLAGS_H
#define TOOLS_OBSERVABILITYFLAGS_H

#include "slam/Pipeline.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cstdio>
#include <memory>
#include <string>

namespace slam {
namespace tools {

class ObservabilityFlags {
public:
  explicit ObservabilityFlags(const slamtool::ObservabilityOptions &Opts)
      : Opts(Opts) {}

  /// Installs the trace recorder and slow-query threshold. Call after
  /// flag parsing, before any pipeline work.
  void install() {
    if (Opts.SlowQueryMillis >= 0)
      trace::setSlowQueryMillis(Opts.SlowQueryMillis);
    if (Opts.TraceOutPath.empty())
      return;
    Recorder = std::make_unique<TraceRecorder>();
    TraceRecorder::setActive(Recorder.get());
  }

  bool wantReport() const { return Opts.Report; }

  /// Uninstalls the recorder and writes the requested files. Returns
  /// false (after a message on stderr) if any file cannot be written.
  bool finish(const char *Tool, const StatsRegistry &Stats) {
    bool Ok = true;
    if (Recorder) {
      TraceRecorder::setActive(nullptr);
      std::string Err;
      if (!Recorder->writeChromeJson(Opts.TraceOutPath, &Err)) {
        std::fprintf(stderr, "%s: cannot write trace '%s': %s\n", Tool,
                     Opts.TraceOutPath.c_str(), Err.c_str());
        Ok = false;
      }
    }
    if (!Opts.StatsJsonPath.empty()) {
      std::string Doc = statsToJson(Stats);
      std::FILE *F = std::fopen(Opts.StatsJsonPath.c_str(), "w");
      if (!F || std::fwrite(Doc.data(), 1, Doc.size(), F) != Doc.size()) {
        std::fprintf(stderr, "%s: cannot write stats '%s'\n", Tool,
                     Opts.StatsJsonPath.c_str());
        Ok = false;
      }
      if (F)
        std::fclose(F);
    }
    return Ok;
  }

  /// Compact report used by the c2bp/bebop drivers (slam prints the
  /// CEGAR flight recorder instead): counters/gauges, then one summary
  /// line per latency histogram.
  static void printStatsReport(std::FILE *Out, const StatsRegistry &Stats) {
    std::fprintf(Out, "-- stats --\n%s", Stats.str().c_str());
    for (const auto &[Name, H] : Stats.allHistograms()) {
      if (H.count() == 0)
        continue;
      std::fprintf(Out,
                   "%s: count=%llu mean_us=%.1f max_us=%llu\n", Name.c_str(),
                   static_cast<unsigned long long>(H.count()),
                   static_cast<double>(H.sumMicros()) /
                       static_cast<double>(H.count()),
                   static_cast<unsigned long long>(H.maxMicros()));
    }
  }

private:
  slamtool::ObservabilityOptions Opts;
  std::unique_ptr<TraceRecorder> Recorder;
};

} // namespace tools
} // namespace slam

#endif // TOOLS_OBSERVABILITYFLAGS_H
